package bounded_test

import (
	"strings"
	"testing"

	bounded "repro"
)

// TestPublicAPIEndToEnd exercises the README quickstart path through the
// public package only.
func TestPublicAPIEndToEnd(t *testing.T) {
	schema := bounded.Schema{
		"follows": {"src", "dst"},
		"user":    {"uid", "city"},
	}
	A := bounded.NewAccessSchema(
		bounded.Constraint{Rel: "follows", X: []string{"src"}, Y: []string{"dst"}, N: 100},
		bounded.Constraint{Rel: "user", X: []string{"uid"}, Y: []string{"city"}, N: 1},
	)
	db := bounded.NewDB(schema)
	edges := [][2]int64{{1, 2}, {1, 3}, {2, 3}}
	for _, e := range edges {
		if _, err := db.Insert("follows", bounded.Tuple{bounded.Int(e[0]), bounded.Int(e[1])}); err != nil {
			t.Fatal(err)
		}
	}
	for uid, city := range map[int64]string{1: "nyc", 2: "sf", 3: "nyc"} {
		if _, err := db.Insert("user", bounded.Tuple{bounded.Int(uid), bounded.Str(city)}); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := bounded.NewEngine(schema, A, db)
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.Parse("q(city) :- follows(1, d), user(d, city)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("quickstart query not covered:\n%s", res.Explain())
	}
	table, rep, err := eng.Execute(q, bounded.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bounded {
		t.Error("quickstart query should run bounded")
	}
	if table.Len() != 2 { // cities of users 2 and 3: sf, nyc
		t.Errorf("answer size %d, want 2", table.Len())
	}
	sql, err := eng.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "ind_follows_src__dst") {
		t.Errorf("SQL missing index relation: %s", sql)
	}
}

// TestPublicBuilderAPI constructs a query with the algebra combinators.
func TestPublicBuilderAPI(t *testing.T) {
	schema := bounded.Schema{"r": {"a", "b"}}
	A := bounded.NewAccessSchema(
		bounded.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a", "b"}, N: 5},
	)
	q := bounded.Proj(
		bounded.Sel(bounded.R("r", "r1"), bounded.EqC(bounded.A("r1", "a"), bounded.Int(1))),
		bounded.A("r1", "b"),
	)
	res, err := bounded.Check(q, schema, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("builder query should be covered")
	}
	p, err := bounded.BuildPlan(res)
	if err != nil {
		t.Fatal(err)
	}
	if p.Length() == 0 {
		t.Error("empty plan")
	}
	am, err := bounded.MinimizeAccess(res, bounded.MinimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if am.Len() != 1 {
		t.Errorf("minimized schema has %d constraints", am.Len())
	}
	sql, err := bounded.PlanToSQL(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sql, "WITH") {
		t.Errorf("unexpected SQL: %s", sql)
	}
}

func TestParseConstraintPublic(t *testing.T) {
	c, err := bounded.ParseConstraint("r((a,b) -> c, 7)")
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 7 || len(c.X) != 2 {
		t.Errorf("parsed %v", c)
	}
}

// TestToCoveredPublic drives the rewriter through the public surface.
func TestToCoveredPublic(t *testing.T) {
	schema := bounded.Schema{"r": {"a", "b"}}
	// The b → b membership index plays ψ3's role: it lets the guarded
	// difference check candidate b values one tuple at a time.
	A := bounded.NewAccessSchema(
		bounded.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a", "b"}, N: 5},
		bounded.Constraint{Rel: "r", X: []string{"b"}, Y: []string{"b"}, N: 1},
	)
	lhs := bounded.Proj(
		bounded.Sel(bounded.R("r", "l"), bounded.EqC(bounded.A("l", "a"), bounded.Int(1))),
		bounded.A("l", "b"),
	)
	rhs := bounded.Proj(bounded.R("r", "rr"), bounded.A("rr", "b")) // uncovered
	q := bounded.D(lhs, rhs)
	rw, err := bounded.ToCovered(q, schema, A)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Covered {
		t.Errorf("difference guard should cover the query: %v", rw.Applied)
	}
}

package main

import (
	"testing"

	"repro/internal/bench"
)

func tiny() bench.Config {
	return bench.Config{QueryPool: 15, EvalQueries: 2, FullScale: 1.0 / 32, Seed: 2016}
}

func TestRunKnownFigures(t *testing.T) {
	// Cheap figures only; the full sweep is exercised by `-fig all` in CI
	// time budgets or manually.
	for _, fig := range []string{"idx", "5b"} {
		if err := run(fig, tiny()); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("99z", tiny()); err == nil {
		t.Error("unknown figure accepted")
	}
}

// Command benchfig regenerates the figures and tables of the paper's
// experimental study (Section 8) on the synthetic benchmark datasets.
//
// Usage:
//
//	benchfig -fig 6           # Figure 6: covered/bounded % vs ||A||
//	benchfig -fig 5a          # Fig 5(a): AIRCA, vary |D|
//	benchfig -fig 5b          # Fig 5(b): AIRCA, vary #-sel
//	benchfig -fig 5c          # Fig 5(c): AIRCA, vary #-join
//	benchfig -fig 5d          # Fig 5(d): AIRCA, vary ||A||
//	benchfig -fig 5e..5l      # same sweeps for TFACC (e-h) and MCBM (i-l)
//	benchfig -fig idx         # Exp-1(IV): index size and build time
//	benchfig -fig exp2        # Exp-2: analysis latency
//	benchfig -fig all         # everything
//
// Flags -scale, -pool and -queries trade fidelity for runtime.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6, 5a..5l, idx, exp2, all")
	scale := flag.Float64("scale", 1.0, "full-size scale factor")
	pool := flag.Int("pool", 100, "random queries per dataset")
	queries := flag.Int("queries", 5, "covered queries averaged per data point")
	seed := flag.Int64("seed", 2016, "workload seed")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.FullScale = *scale
	cfg.QueryPool = *pool
	cfg.EvalQueries = *queries
	cfg.Seed = *seed

	if err := run(*fig, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(fig string, cfg bench.Config) error {
	w := os.Stdout
	airca, tfacc, mcbm := workload.Airca(), workload.Tfacc(), workload.Mcbm()
	switch fig {
	case "6":
		return bench.Fig6(w, cfg)
	case "5a":
		return bench.Fig5VaryD(w, airca, cfg)
	case "5b":
		return bench.Fig5VarySel(w, airca, cfg)
	case "5c":
		return bench.Fig5VaryJoin(w, airca, cfg)
	case "5d":
		return bench.Fig5VaryA(w, airca, cfg)
	case "5e":
		return bench.Fig5VaryD(w, tfacc, cfg)
	case "5f":
		return bench.Fig5VarySel(w, tfacc, cfg)
	case "5g":
		return bench.Fig5VaryJoin(w, tfacc, cfg)
	case "5h":
		return bench.Fig5VaryA(w, tfacc, cfg)
	case "5i":
		return bench.Fig5VaryD(w, mcbm, cfg)
	case "5j":
		return bench.Fig5VarySel(w, mcbm, cfg)
	case "5k":
		return bench.Fig5VaryJoin(w, mcbm, cfg)
	case "5l":
		return bench.Fig5VaryA(w, mcbm, cfg)
	case "idx":
		return bench.IndexStats(w, cfg)
	case "exp2":
		if err := bench.Exp2(w, cfg); err != nil {
			return err
		}
		return bench.Exp2Elementary(w)
	case "all":
		if err := bench.Fig6(w, cfg); err != nil {
			return err
		}
		for _, d := range workload.All() {
			if err := bench.Fig5VaryD(w, d, cfg); err != nil {
				return err
			}
			if err := bench.Fig5VarySel(w, d, cfg); err != nil {
				return err
			}
			if err := bench.Fig5VaryJoin(w, d, cfg); err != nil {
				return err
			}
			if err := bench.Fig5VaryA(w, d, cfg); err != nil {
				return err
			}
		}
		if err := bench.IndexStats(w, cfg); err != nil {
			return err
		}
		if err := bench.Exp2(w, cfg); err != nil {
			return err
		}
		return bench.Exp2Elementary(w)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

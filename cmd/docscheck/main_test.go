package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates a file tree rooted at dir.
func write(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFlagsMissingPackageDoc(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "internal/widget/widget.go", "package widget\n\nfunc f() {}\n")
	vs, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0], "no package doc comment") {
		t.Fatalf("want one package-doc violation, got %v", vs)
	}
}

func TestCheckStrictPackages(t *testing.T) {
	dir := t.TempDir()
	// Root package: documented package, one documented and one
	// undocumented exported identifier, one unexported (ignored).
	write(t, dir, "api.go", `// Package api is documented.
package api

// Documented is documented.
func Documented() {}

func Bare() {}

type Undoc struct{}

// T is documented.
type T struct{}

// M is documented.
func (T) M() {}

func (T) N() {}

func internalHelper() {}
`)
	// internal/server is also strict.
	write(t, dir, "internal/server/server.go", `// Package server is documented.
package server

const Loose = 1

// Grouped consts share the group comment.
const (
	A = 1
	B = 2
)

var V int
`)
	// Other internal packages only need the package comment.
	write(t, dir, "internal/other/other.go", `// Package other is documented.
package other

func Exported() {}
`)
	vs, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, v := range vs {
		got = append(got, v[strings.LastIndex(v, "exported"):])
	}
	want := []string{
		"exported function Bare has no doc comment",
		"exported type Undoc has no doc comment",
		"exported method N has no doc comment",
		"exported const Loose has no doc comment",
		"exported var V has no doc comment",
	}
	if len(got) != len(want) {
		t.Fatalf("want %d violations %v, got %v", len(want), want, vs)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing violation %q in %v", w, got)
		}
	}
}

// TestCheckRepo runs the gate against the real repository — the same
// assertion CI makes via `make docs-check`.
func TestCheckRepo(t *testing.T) {
	vs, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("repository has documentation violations:\n%s", strings.Join(vs, "\n"))
	}
}

// Command docscheck is the documentation gate run by `make docs-check` and
// CI. It walks the module and fails (exit 1) when:
//
//   - any package (including internal ones) lacks a package doc comment in
//     a non-test file, or
//   - an exported identifier — top-level const, var, type, func or
//     method — in one of the strictly checked packages lacks a doc
//     comment.
//
// The strictly checked packages are the public surface plus the serving
// infrastructure an operator programs against: the root package (the
// bounded API), internal/server (the wire protocol), internal/shard (the
// partitioning, routing and write-path contract documented in
// docs/OPERATIONS.md), internal/cache (the plan-cache semantics every
// invariant rests on), internal/core (the engine surface the router and
// front end build on), internal/store (the storage substrate, including
// the batched write entry point the broadcast apply queue relies on),
// internal/wal (the durability contract: framing, LSN and recovery
// semantics operators rely on when data is on the line),
// internal/follower (the read-replica node an operator deploys and
// monitors),
// internal/bench (the replay benchmark operators quote numbers from),
// internal/exec (the vectorized execution core every answer flows
// through, including the batch operators the residue executor composes)
// and internal/value (the value model and handle interning that equality,
// hashing and key encoding rest on).
// Everything else under internal/ may evolve faster, but its
// package-level story must always be told.
//
// Usage:
//
//	docscheck [module root]      # default "."
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictDirs are module-relative directories whose exported identifiers
// must all carry doc comments.
var strictDirs = map[string]bool{
	".":                 true,
	"internal/server":   true,
	"internal/shard":    true,
	"internal/cache":    true,
	"internal/core":     true,
	"internal/ivm":      true,
	"internal/store":    true,
	"internal/wal":      true,
	"internal/bench":    true,
	"internal/follower": true,
	"internal/exec":     true,
	"internal/value":    true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// check walks every Go package directory under root and collects
// documentation violations, sorted by position.
func check(root string) ([]string, error) {
	var violations []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
			return fs.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		vs, err := checkDir(path, rel)
		if err != nil {
			return err
		}
		violations = append(violations, vs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(violations)
	return violations, nil
}

// checkDir examines one directory's non-test Go files.
func checkDir(dir, rel string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var violations []string
	for _, pkg := range pkgs {
		if pkg.Name == "main" && !strictDirs[rel] {
			// Commands still need a package comment but their internals
			// are not API surface.
			if !hasPackageDoc(pkg) {
				violations = append(violations,
					fmt.Sprintf("%s: package %s has no package doc comment", rel, pkg.Name))
			}
			continue
		}
		if !hasPackageDoc(pkg) {
			violations = append(violations,
				fmt.Sprintf("%s: package %s has no package doc comment", rel, pkg.Name))
		}
		if strictDirs[rel] {
			violations = append(violations, checkExported(fset, pkg)...)
		}
	}
	return violations, nil
}

// hasPackageDoc reports whether any file of the package carries a package
// doc comment.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// checkExported lists exported declarations without doc comments.
func checkExported(fset *token.FileSet, pkg *ast.Package) []string {
	var violations []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		violations = append(violations,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			case *ast.GenDecl:
				violations = append(violations, checkGenDecl(d, report)...)
			}
		}
	}
	return violations
}

// checkGenDecl handles const/var/type declarations.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) []string {
	var violations []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			// A doc comment on the grouped decl covers the whole group.
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
	return violations
}

// exportedRecv reports whether a method receiver's base type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

const q1 = "q(cid) :- friend(0,f), dine(f,cid,5,2015), cafe(cid,'nyc')"

func TestOpsOnFacebook(t *testing.T) {
	for _, op := range []string{"check", "plan", "sql", "minimize", "constraints"} {
		if err := run("facebook", op, q1, 0.05, 1); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
}

func TestOpRun(t *testing.T) {
	if err := run("facebook", "run", q1, 0.05, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestOpsOnBenchmarkDatasets(t *testing.T) {
	if err := run("AIRCA", "check", "q(airline) :- ontime(f, 42, d, airline, m, delay)", 0.05, 1); err != nil {
		t.Errorf("AIRCA check: %v", err)
	}
	if err := run("TFACC", "constraints", "", 0.05, 1); err != nil {
		t.Errorf("TFACC constraints: %v", err)
	}
}

func TestOpServe(t *testing.T) {
	if err := serve("AIRCA", "engine", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0, core.DurableConfig{}, false); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := serve("AIRCA", "engine", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0, core.DurableConfig{}, true); err != nil {
		t.Fatalf("serve -ivm=false: %v", err)
	}
	if err := serve("nosuch", "engine", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 0, 0, 0, core.DurableConfig{}, false); err == nil {
		t.Error("serve accepted an unknown dataset")
	}
	if err := serve("AIRCA", "carrier-pigeon", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 0, 0, 0, core.DurableConfig{}, false); err == nil {
		t.Error("serve accepted an unknown transport")
	}
}

func TestOpServeHTTPTransport(t *testing.T) {
	if err := serve("AIRCA", "http", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0, core.DurableConfig{}, false); err != nil {
		t.Fatalf("serve -transport http: %v", err)
	}
}

func TestOpServeShardedTransport(t *testing.T) {
	if err := serve("AIRCA", "sharded", 2, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0, core.DurableConfig{}, false); err != nil {
		t.Fatalf("serve -transport sharded: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("nosuch", "check", q1, 0.05, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("facebook", "zzz", q1, 0.05, 1); err == nil {
		t.Error("unknown op accepted")
	}
	if err := run("facebook", "check", "", 0.05, 1); err == nil {
		t.Error("missing query accepted")
	}
	if err := run("facebook", "check", "not a query", 0.05, 1); err == nil {
		t.Error("malformed query accepted")
	}
	// plan/sql on an uncovered query must error.
	uncovered := "q(cid) :- dine(0, cid, m, y)"
	if err := run("facebook", "plan", uncovered, 0.05, 1); err == nil {
		t.Error("plan for uncovered query accepted")
	}
	if err := run("facebook", "sql", uncovered, 0.05, 1); err == nil {
		t.Error("sql for uncovered query accepted")
	}
}

func TestOpServeMidReplayReshard(t *testing.T) {
	if err := serve("AIRCA", "sharded", 2, 0, 3, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0, core.DurableConfig{}, false); err != nil {
		t.Fatalf("serve -transport sharded -reshard 3: %v", err)
	}
	if err := serve("AIRCA", "engine", 0, 0, 3, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0, core.DurableConfig{}, false); err == nil {
		t.Error("serve accepted -reshard without a sharded layer")
	}
}

func TestOpReshardValidation(t *testing.T) {
	if err := reshard(":0", 0, 0); err == nil {
		t.Error("reshard accepted a zero target")
	}
}

// TestOpServeDurable drives the serving benchmark on a write-ahead-logged
// layer, single-engine and sharded, into fresh directories. The second run
// into the first directory must refuse: benchmarking over recovered state
// would price replay, not serving.
func TestOpServeDurable(t *testing.T) {
	durable := core.DurableConfig{Dir: t.TempDir(), CheckpointEvery: -1}
	if err := serve("AIRCA", "engine", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0.25, 0, durable, false); err != nil {
		t.Fatalf("serve durable engine: %v", err)
	}
	if err := serve("AIRCA", "engine", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0.25, 0, durable, false); err == nil {
		t.Error("serve reused a directory that already holds log state")
	}
	durable.Dir = t.TempDir()
	if err := serve("AIRCA", "sharded", 2, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0.25, 0, durable, false); err != nil {
		t.Fatalf("serve durable sharded: %v", err)
	}
}

func TestOpServeWriteMix(t *testing.T) {
	if err := serve("AIRCA", "sharded", 2, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0.5, 0, core.DurableConfig{}, false); err != nil {
		t.Fatalf("serve -transport sharded -writemix 0.5: %v", err)
	}
	if err := serve("AIRCA", "engine", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 1.5, 0, core.DurableConfig{}, false); err == nil {
		t.Error("serve accepted a write mix >= 1")
	}
}

func TestOpServeResidueMix(t *testing.T) {
	if err := serve("AIRCA", "sharded", 2, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0.5, core.DurableConfig{}, false); err != nil {
		t.Fatalf("serve -transport sharded -residuemix 0.5: %v", err)
	}
	if err := serve("AIRCA", "engine", 0, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 0.5, core.DurableConfig{}, false); err == nil {
		t.Error("serve accepted -residuemix without a sharded layer")
	}
	if err := serve("AIRCA", "sharded", 2, 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64, 0, 1.0, core.DurableConfig{}, false); err == nil {
		t.Error("serve accepted a residue mix >= 1")
	}
}

// TestValidateFlags pins the up-front CLI validation: nonsense values and
// combinations fail fast with a message naming the offending flag,
// instead of panicking or misbehaving deep into a run.
func TestValidateFlags(t *testing.T) {
	base := func() cliFlags {
		return cliFlags{
			Transport: "engine", Scale: 0.1, PoolSize: 40,
			Clients: 8, Writers: 2, Ops: 10000,
			Timeout: 30 * time.Second,
		}
	}
	cases := []struct {
		name     string
		op       string
		explicit map[string]bool
		mod      func(*cliFlags)
		wantErr  string // substring; empty = must pass
	}{
		{name: "defaults serve", op: "serve", mod: func(*cliFlags) {}},
		{name: "defaults http", op: "http", mod: func(*cliFlags) {}},
		{name: "negative shards", op: "serve",
			mod: func(f *cliFlags) { f.Shards = -2 }, wantErr: "-shards"},
		{name: "negative shards on http", op: "http",
			mod: func(f *cliFlags) { f.Shards = -1 }, wantErr: "-shards"},
		{name: "reshard op without target", op: "reshard",
			mod: func(f *cliFlags) { f.Shards = 0 }, wantErr: "-shards >= 1"},
		{name: "reshard on unsharded serve", op: "serve",
			mod: func(f *cliFlags) { f.ReshardTo = 4 }, wantErr: "sharded serving layer"},
		{name: "reshard with sharded transport ok", op: "serve",
			mod: func(f *cliFlags) { f.ReshardTo = 4; f.Transport = "sharded" }},
		{name: "reshard with shards ok", op: "serve",
			mod: func(f *cliFlags) { f.ReshardTo = 4; f.Shards = 2 }},
		{name: "negative reshard", op: "serve",
			mod: func(f *cliFlags) { f.ReshardTo = -1 }, wantErr: "-reshard"},
		{name: "writemix out of range", op: "serve",
			mod: func(f *cliFlags) { f.WriteMix = 1 }, wantErr: "-writemix"},
		{name: "negative writemix", op: "serve",
			mod: func(f *cliFlags) { f.WriteMix = -0.1 }, wantErr: "-writemix"},
		{name: "residuemix out of range", op: "serve",
			mod: func(f *cliFlags) { f.ResidueMix = 1; f.Shards = 2 }, wantErr: "-residuemix"},
		{name: "residuemix on unsharded serve", op: "serve",
			mod: func(f *cliFlags) { f.ResidueMix = 0.25 }, wantErr: "sharded serving layer"},
		{name: "residuemix with shards ok", op: "serve",
			mod: func(f *cliFlags) { f.ResidueMix = 0.25; f.Shards = 2 }},
		{name: "negative followers", op: "serve",
			mod: func(f *cliFlags) { f.Followers = -1 }, wantErr: "-followers"},
		{name: "followers without follower transport", op: "serve",
			mod: func(f *cliFlags) { f.Followers = 2 }, wantErr: "-transport follower"},
		{name: "follower transport without data-dir", op: "serve",
			mod:     func(f *cliFlags) { f.Transport = "follower" },
			wantErr: "-data-dir"},
		{name: "follower transport with data-dir ok", op: "serve",
			explicit: map[string]bool{"data-dir": true},
			mod: func(f *cliFlags) {
				f.Transport = "follower"
				f.Followers = 2
				f.DataDir = "/var/lib/bounded"
			}},
		{name: "followers on http", op: "http",
			explicit: map[string]bool{"followers": true},
			mod:      func(f *cliFlags) { f.Followers = 1 }, wantErr: "-followers only applies"},
		{name: "primary on serve", op: "serve",
			explicit: map[string]bool{"primary": true},
			mod:      func(f *cliFlags) { f.Primary = "http://127.0.0.1:8080" },
			wantErr:  "-primary only applies"},
		{name: "follow without primary", op: "follow",
			mod:     func(f *cliFlags) { f.DataDir = "/var/lib/bounded-replica" },
			wantErr: "-primary"},
		{name: "follow without data-dir", op: "follow",
			mod:     func(f *cliFlags) { f.Primary = "http://127.0.0.1:8080" },
			wantErr: "-data-dir"},
		{name: "follow ok", op: "follow",
			explicit: map[string]bool{"data-dir": true},
			mod: func(f *cliFlags) {
				f.Primary = "http://127.0.0.1:8080"
				f.DataDir = "/var/lib/bounded-replica"
			}},
		{name: "explicit maxinflight zero", op: "http",
			explicit: map[string]bool{"maxinflight": true},
			mod:      func(f *cliFlags) { f.MaxInFlight = 0 }, wantErr: "-maxinflight 0 is ambiguous"},
		{name: "default maxinflight zero ok", op: "http",
			mod: func(f *cliFlags) { f.MaxInFlight = 0 }},
		{name: "explicit zero timeout", op: "http",
			explicit: map[string]bool{"timeout": true},
			mod:      func(f *cliFlags) { f.Timeout = 0 }, wantErr: "-timeout"},
		{name: "zero pool", op: "serve",
			mod: func(f *cliFlags) { f.PoolSize = 0 }, wantErr: "-pool"},
		{name: "zero clients", op: "serve",
			mod: func(f *cliFlags) { f.Clients = 0 }, wantErr: "-clients"},
		{name: "ops below clients", op: "serve",
			mod: func(f *cliFlags) { f.Ops = 4 }, wantErr: "-ops"},
		{name: "zero scale serve", op: "serve",
			mod: func(f *cliFlags) { f.Scale = 0 }, wantErr: "-scale"},
		{name: "zero scale run", op: "run",
			mod: func(f *cliFlags) { f.Scale = 0 }, wantErr: "-scale"},
		{name: "durable serve ok", op: "serve",
			explicit: map[string]bool{"data-dir": true, "fsync": true},
			mod:      func(f *cliFlags) { f.DataDir = "/var/lib/bounded"; f.Fsync = "commit" }},
		{name: "durable http ok", op: "http",
			explicit: map[string]bool{"data-dir": true, "checkpoint-every": true},
			mod:      func(f *cliFlags) { f.DataDir = "/var/lib/bounded"; f.CheckpointEvery = 5000 }},
		{name: "unknown fsync policy", op: "serve",
			mod:     func(f *cliFlags) { f.DataDir = "/var/lib/bounded"; f.Fsync = "sometimes" },
			wantErr: "-fsync"},
		{name: "fsync without data-dir", op: "serve",
			mod:     func(f *cliFlags) { f.Fsync = "commit" },
			wantErr: "-data-dir"},
		{name: "explicit checkpoint-every zero", op: "http",
			explicit: map[string]bool{"checkpoint-every": true},
			mod:      func(f *cliFlags) { f.DataDir = "/var/lib/bounded"; f.CheckpointEvery = 0 },
			wantErr:  "-checkpoint-every"},
		{name: "checkpoint-every without data-dir", op: "serve",
			explicit: map[string]bool{"checkpoint-every": true},
			mod:      func(f *cliFlags) { f.CheckpointEvery = 5000 },
			wantErr:  "-data-dir"},
		{name: "data-dir on check op", op: "check",
			explicit: map[string]bool{"data-dir": true},
			mod:      func(f *cliFlags) { f.DataDir = "/var/lib/bounded" },
			wantErr:  "-data-dir only applies"},
		{name: "fsync on reshard op", op: "reshard",
			explicit: map[string]bool{"fsync": true},
			mod:      func(f *cliFlags) { f.Shards = 2; f.DataDir = "/var/lib/bounded"; f.Fsync = "commit" },
			wantErr:  "-fsync only applies"},
	}
	for _, tc := range cases {
		f := base()
		tc.mod(&f)
		err := validateFlags(tc.op, tc.explicit, f)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

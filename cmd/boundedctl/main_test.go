package main

import "testing"

const q1 = "q(cid) :- friend(0,f), dine(f,cid,5,2015), cafe(cid,'nyc')"

func TestOpsOnFacebook(t *testing.T) {
	for _, op := range []string{"check", "plan", "sql", "minimize", "constraints"} {
		if err := run("facebook", op, q1, 0.05, 1); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
}

func TestOpRun(t *testing.T) {
	if err := run("facebook", "run", q1, 0.05, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestOpsOnBenchmarkDatasets(t *testing.T) {
	if err := run("AIRCA", "check", "q(airline) :- ontime(f, 42, d, airline, m, delay)", 0.05, 1); err != nil {
		t.Errorf("AIRCA check: %v", err)
	}
	if err := run("TFACC", "constraints", "", 0.05, 1); err != nil {
		t.Errorf("TFACC constraints: %v", err)
	}
}

func TestOpServe(t *testing.T) {
	if err := serve("AIRCA", "engine", 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := serve("nosuch", "engine", 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 0); err == nil {
		t.Error("serve accepted an unknown dataset")
	}
	if err := serve("AIRCA", "carrier-pigeon", 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 0); err == nil {
		t.Error("serve accepted an unknown transport")
	}
}

func TestOpServeHTTPTransport(t *testing.T) {
	if err := serve("AIRCA", "http", 0, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64); err != nil {
		t.Fatalf("serve -transport http: %v", err)
	}
}

func TestOpServeShardedTransport(t *testing.T) {
	if err := serve("AIRCA", "sharded", 2, 0, 0.02, 1, 2, 1, 200, 1.2, 8, 64); err != nil {
		t.Fatalf("serve -transport sharded: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("nosuch", "check", q1, 0.05, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("facebook", "zzz", q1, 0.05, 1); err == nil {
		t.Error("unknown op accepted")
	}
	if err := run("facebook", "check", "", 0.05, 1); err == nil {
		t.Error("missing query accepted")
	}
	if err := run("facebook", "check", "not a query", 0.05, 1); err == nil {
		t.Error("malformed query accepted")
	}
	// plan/sql on an uncovered query must error.
	uncovered := "q(cid) :- dine(0, cid, m, y)"
	if err := run("facebook", "plan", uncovered, 0.05, 1); err == nil {
		t.Error("plan for uncovered query accepted")
	}
	if err := run("facebook", "sql", uncovered, 0.05, 1); err == nil {
		t.Error("sql for uncovered query accepted")
	}
}

func TestOpServeMidReplayReshard(t *testing.T) {
	if err := serve("AIRCA", "sharded", 2, 3, 0.02, 1, 2, 1, 200, 1.2, 8, 64); err != nil {
		t.Fatalf("serve -transport sharded -reshard 3: %v", err)
	}
	if err := serve("AIRCA", "engine", 0, 3, 0.02, 1, 2, 1, 200, 1.2, 8, 64); err == nil {
		t.Error("serve accepted -reshard without a sharded layer")
	}
}

func TestOpReshardValidation(t *testing.T) {
	if err := reshard(":0", 0, 0); err == nil {
		t.Error("reshard accepted a zero target")
	}
}

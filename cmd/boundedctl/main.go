// Command boundedctl is the interactive front door to the bounded
// evaluation framework: it checks coverage, prints bounded plans, minimizes
// access schemas, emits Plan2SQL output and executes queries against the
// built-in benchmark datasets.
//
// Usage:
//
//	boundedctl -dataset facebook -op check -query "q(cid) :- friend(0,f), dine(f,cid,5,2015), cafe(cid,'nyc')"
//	boundedctl -dataset AIRCA -op plan  -query "..."
//	boundedctl -dataset TFACC -op run   -query "..."
//	boundedctl -dataset MCBM  -op sql   -query "..."
//	boundedctl -dataset facebook -op minimize -query "..."
//	boundedctl -dataset facebook -op constraints
//	boundedctl -dataset AIRCA -op serve -clients 8 -ops 10000
//	boundedctl -dataset AIRCA -op serve -transport sharded -shards 4
//	boundedctl -dataset AIRCA -op serve -transport sharded -shards 2 -reshard 4
//	boundedctl -dataset AIRCA -op http -addr :8080
//	boundedctl -dataset AIRCA -op http -shards 4
//	boundedctl -op reshard -addr 127.0.0.1:8080 -shards 6
//	boundedctl -dataset AIRCA -op http -addr :8080 -data-dir /var/lib/bounded
//	boundedctl -op follow -primary http://127.0.0.1:8080 -data-dir /var/lib/bounded-replica -addr :8081
//	boundedctl -dataset AIRCA -op serve -transport follower -followers 2 -data-dir $(mktemp -d)
//
// The serve operation replays a Zipf-skewed mix of repeated workload
// queries from concurrent clients against a mutating database and reports
// throughput, plan-cache hit rate and the cold-vs-cached speedup; with
// -transport http the replay drives the HTTP front end over loopback
// instead of calling the engine in-process, and -reshard N triggers an
// online shard migration halfway through the replay and prices it.
//
// The http operation loads the dataset and serves it over the HTTP/JSON
// front end (internal/server) until SIGINT/SIGTERM, then drains in-flight
// requests and exits. See docs/ARCHITECTURE.md for the endpoints.
//
// The reshard operation is the admin client for a running sharded server:
// it POSTs /reshard to -addr with the -shards target, waits for the move
// to finish, and prints the accounting (rows moved, ring epoch).
//
// The follow operation runs a read replica: it bootstraps from the durable
// primary at -primary (newest checkpoint download, or local recovery when
// -data-dir already holds state), tails the primary's write-ahead log over
// /wal/stream, and serves read-only queries on -addr with the MinLSN
// read-your-writes fence. See docs/OPERATIONS.md for the runbook.
//
// The query language is Datalog-style conjunctive rules combined with
// UNION and EXCEPT; see internal/parser.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/access"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/follower"
	"repro/internal/minimize"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/sqlgen"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "facebook", "dataset: facebook, AIRCA, TFACC, MCBM")
	op := flag.String("op", "check", "operation: check, plan, sql, minimize, run, serve, http, follow, reshard, constraints")
	query := flag.String("query", "", "query in rule syntax")
	scale := flag.Float64("scale", 0.1, "data scale factor for run/serve")
	seed := flag.Int64("seed", 1, "data seed")
	clients := flag.Int("clients", 8, "serve: concurrent query goroutines")
	writers := flag.Int("writers", 2, "serve: concurrent tuple-churn goroutines")
	ops := flag.Int("ops", 10000, "serve: total queries to replay")
	zipf := flag.Float64("zipf", 1.2, "serve: Zipf skew exponent (>1)")
	poolSize := flag.Int("pool", 40, "serve: distinct queries in the replay pool")
	cacheSize := flag.Int("cachesize", 0, "serve: plan-cache capacity (0 = default)")
	transport := flag.String("transport", "engine", "serve: engine (in-process), http (loopback front end), sharded (scatter/gather router) or follower (durable primary + read replicas)")
	followers := flag.Int("followers", 0, "serve: read-replica count for the follower transport (0 = primary-only baseline)")
	primary := flag.String("primary", "", "follow: base URL of the durable primary to replicate, e.g. http://127.0.0.1:8080")
	shards := flag.Int("shards", 0, "serve/http: partition count for the sharded router (0 = unsharded); reshard: target count")
	reshardTo := flag.Int("reshard", 0, "serve: reshard the cluster to this shard count halfway through the replay (0 = off)")
	writeMix := flag.Float64("writemix", 0, "serve: fraction of client ops replayed as tuple writes (delete+reinsert), in [0, 1)")
	residueMix := flag.Float64("residuemix", 0, "serve: fraction of client query ops drawn from non-distributable (residue-routed) shapes, in [0, 1); needs a sharded layer")
	ivmOn := flag.Bool("ivm", true, "serve: maintain materialized answers for hot fingerprints (false = plan-cache-only baseline)")
	addr := flag.String("addr", ":8080", "http: listen address")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "http: per-request timeout")
	maxInFlight := flag.Int("maxinflight", 0, "http: max concurrent queries (unset = 4×GOMAXPROCS, <0 = unlimited)")
	maxRows := flag.Int("maxrows", server.DefaultMaxRows, "http: default row cap per response (<0 = unlimited)")
	dataDir := flag.String("data-dir", "", "serve/http: durable data directory (write-ahead log + checkpoints; empty = in-memory)")
	fsync := flag.String("fsync", "", "serve/http: log sync policy: off, interval or commit (needs -data-dir; unset = off)")
	checkpointEvery := flag.Int64("checkpoint-every", 0, "serve/http: checkpoint every N logged records (needs -data-dir; unset = the engine default)")
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateFlags(*op, explicit, cliFlags{
		Shards:          *shards,
		ReshardTo:       *reshardTo,
		Transport:       *transport,
		Followers:       *followers,
		Primary:         *primary,
		WriteMix:        *writeMix,
		ResidueMix:      *residueMix,
		Scale:           *scale,
		PoolSize:        *poolSize,
		Clients:         *clients,
		Writers:         *writers,
		Ops:             *ops,
		MaxInFlight:     *maxInFlight,
		Timeout:         *timeout,
		DataDir:         *dataDir,
		Fsync:           *fsync,
		CheckpointEvery: *checkpointEvery,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "boundedctl:", err)
		os.Exit(2)
	}

	durable := durableConfig(*dataDir, *fsync, *checkpointEvery)
	switch *op {
	case "serve":
		if err := serve(*dataset, *transport, *shards, *followers, *reshardTo, *scale, *seed, *clients, *writers, *ops, *zipf, *poolSize, *cacheSize, *writeMix, *residueMix, durable, !*ivmOn); err != nil {
			fmt.Fprintln(os.Stderr, "boundedctl:", err)
			os.Exit(1)
		}
	case "reshard":
		if err := reshard(*addr, *shards, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "boundedctl:", err)
			os.Exit(1)
		}
	case "http":
		if err := serveHTTP(*dataset, *shards, *scale, *seed, *addr, *timeout, *maxInFlight, *maxRows, *cacheSize, durable); err != nil {
			fmt.Fprintln(os.Stderr, "boundedctl:", err)
			os.Exit(1)
		}
	case "follow":
		if err := follow(*primary, *addr, *timeout, *maxInFlight, *maxRows, durable); err != nil {
			fmt.Fprintln(os.Stderr, "boundedctl:", err)
			os.Exit(1)
		}
	default:
		if err := run(*dataset, *op, *query, *scale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "boundedctl:", err)
			os.Exit(1)
		}
	}
}

// cliFlags bundles the parsed flag values validateFlags inspects.
type cliFlags struct {
	Shards      int
	ReshardTo   int
	Transport   string
	Followers   int
	Primary     string
	WriteMix    float64
	ResidueMix  float64
	Scale       float64
	PoolSize    int
	Clients     int
	Writers     int
	Ops         int
	MaxInFlight int
	Timeout     time.Duration

	// Durability flags (serve and http only).
	DataDir         string
	Fsync           string
	CheckpointEvery int64
}

// durableConfig assembles the core.DurableConfig the serving operations
// pass down; the zero Dir means in-memory. validateFlags has already
// vetted the combination, so the fsync parse cannot fail here.
func durableConfig(dataDir, fsync string, checkpointEvery int64) core.DurableConfig {
	cfg := core.DurableConfig{Dir: dataDir, CheckpointEvery: checkpointEvery}
	if fsync != "" {
		if p, err := wal.ParsePolicy(fsync); err == nil {
			cfg.WAL.Fsync = p
		}
	}
	return cfg
}

// validateFlags rejects nonsense flag values and combinations up front,
// with actionable messages, before any dataset is generated — a typo must
// fail in milliseconds, not panic or misbehave minutes into a run.
// explicit marks flags the user actually set (flag.Visit), so defaults
// are never second-guessed.
func validateFlags(op string, explicit map[string]bool, f cliFlags) error {
	if f.Shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (0 = unsharded), got %d", f.Shards)
	}
	if explicit["timeout"] && f.Timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", f.Timeout)
	}
	serving := op == "serve" || op == "http" || op == "follow"
	if !serving {
		for _, name := range []string{"data-dir", "fsync", "checkpoint-every"} {
			if explicit[name] {
				return fmt.Errorf("-%s only applies to -op serve, -op http and -op follow, not -op %s", name, op)
			}
		}
	}
	if explicit["primary"] && op != "follow" {
		return fmt.Errorf("-primary only applies to -op follow, not -op %s", op)
	}
	if explicit["followers"] && op != "serve" {
		return fmt.Errorf("-followers only applies to -op serve, not -op %s", op)
	}
	if f.Fsync != "" {
		if _, err := wal.ParsePolicy(f.Fsync); err != nil {
			return fmt.Errorf("-fsync %q: want off, interval or commit", f.Fsync)
		}
		if f.DataDir == "" {
			return fmt.Errorf("-fsync %s needs -data-dir: the sync policy applies to the write-ahead log", f.Fsync)
		}
	}
	if explicit["checkpoint-every"] {
		if f.CheckpointEvery <= 0 {
			return fmt.Errorf("-checkpoint-every must be > 0 (records between checkpoints), got %d", f.CheckpointEvery)
		}
		if f.DataDir == "" {
			return fmt.Errorf("-checkpoint-every needs -data-dir: checkpoints belong to the write-ahead log")
		}
	}
	switch op {
	case "reshard":
		if f.Shards < 1 {
			return fmt.Errorf("-op reshard needs -shards >= 1 (the target partition count), got %d", f.Shards)
		}
	case "serve":
		if f.ReshardTo < 0 {
			return fmt.Errorf("-reshard must be >= 0 (0 = no mid-replay reshard), got %d", f.ReshardTo)
		}
		if f.ReshardTo > 0 && f.Shards == 0 && f.Transport != bench.TransportSharded {
			return fmt.Errorf("-reshard %d needs a sharded serving layer: add -transport sharded or -shards N", f.ReshardTo)
		}
		if f.WriteMix < 0 || f.WriteMix >= 1 {
			return fmt.Errorf("-writemix must be in [0, 1), got %g", f.WriteMix)
		}
		if f.ResidueMix < 0 || f.ResidueMix >= 1 {
			return fmt.Errorf("-residuemix must be in [0, 1), got %g", f.ResidueMix)
		}
		if f.ResidueMix > 0 && f.Shards == 0 && f.Transport != bench.TransportSharded {
			return fmt.Errorf("-residuemix %g needs a sharded serving layer: add -transport sharded or -shards N", f.ResidueMix)
		}
		if f.Followers < 0 {
			return fmt.Errorf("-followers must be >= 0, got %d", f.Followers)
		}
		if f.Followers > 0 && f.Transport != bench.TransportFollower {
			return fmt.Errorf("-followers %d needs -transport follower", f.Followers)
		}
		if f.Transport == bench.TransportFollower && f.DataDir == "" {
			return fmt.Errorf("-transport follower needs -data-dir: the replicas tail a durable primary's log")
		}
		if f.PoolSize < 1 {
			return fmt.Errorf("-pool must be >= 1 (the distinct-query pool size), got %d", f.PoolSize)
		}
		if f.Clients < 1 {
			return fmt.Errorf("-clients must be >= 1, got %d", f.Clients)
		}
		if f.Writers < 0 {
			return fmt.Errorf("-writers must be >= 0, got %d", f.Writers)
		}
		if f.Ops < f.Clients {
			return fmt.Errorf("-ops (%d) must be >= -clients (%d) so every client replays at least one op", f.Ops, f.Clients)
		}
		if f.Scale <= 0 {
			return fmt.Errorf("-scale must be positive, got %g", f.Scale)
		}
	case "http":
		if explicit["maxinflight"] && f.MaxInFlight == 0 {
			return fmt.Errorf("-maxinflight 0 is ambiguous: pass a positive cap, a negative value for unlimited, or leave it unset for the default (4×GOMAXPROCS)")
		}
		if f.Scale <= 0 {
			return fmt.Errorf("-scale must be positive, got %g", f.Scale)
		}
	case "follow":
		if f.Primary == "" {
			return fmt.Errorf("-op follow needs -primary (the durable primary's base URL)")
		}
		if f.DataDir == "" {
			return fmt.Errorf("-op follow needs -data-dir (the replica's own log directory)")
		}
		if explicit["maxinflight"] && f.MaxInFlight == 0 {
			return fmt.Errorf("-maxinflight 0 is ambiguous: pass a positive cap, a negative value for unlimited, or leave it unset for the default (4×GOMAXPROCS)")
		}
	case "run":
		if f.Scale <= 0 {
			return fmt.Errorf("-scale must be positive, got %g", f.Scale)
		}
	}
	return nil
}

func serve(dataset, transport string, shards, followers, reshardTo int, scale float64, seed int64, clients, writers, ops int, zipf float64, poolSize, cacheSize int, writeMix, residueMix float64, durable core.DurableConfig, ivmOff bool) error {
	cfg := bench.DefaultServeConfig()
	cfg.Dataset = dataset
	cfg.Transport = transport
	cfg.Shards = shards
	cfg.Followers = followers
	cfg.ReshardTo = reshardTo
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Clients = clients
	cfg.Writers = writers
	cfg.Ops = ops
	cfg.ZipfS = zipf
	cfg.PoolSize = poolSize
	cfg.CacheSize = cacheSize
	cfg.WriteMix = writeMix
	cfg.ResidueMix = residueMix
	cfg.Durable = durable
	cfg.IVMOff = ivmOff
	res, err := bench.Serve(cfg)
	if err != nil {
		return err
	}
	res.Format(os.Stdout)
	return nil
}

// reshard drives POST /reshard on a running sharded server and reports
// the move. The wait is bounded by the -timeout flag client-side; the
// server's own request timeout also applies, so large moves need both
// raised.
func reshard(addr string, target int, timeout time.Duration) error {
	if target < 1 {
		return fmt.Errorf("reshard needs -shards >= 1, got %d", target)
	}
	if len(addr) > 0 && addr[0] == ':' {
		addr = "127.0.0.1" + addr
	}
	cli := server.NewClient(addr)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	fmt.Printf("resharding %s to %d shards …\n", addr, target)
	rep, err := cli.Reshard(ctx, target, true)
	if err != nil {
		return err
	}
	fmt.Printf("resharded %d→%d: moved %d keyed rows, seeded %d replicated copies, %.1fms; ring epoch %d\n",
		rep.From, rep.To, rep.Moved, rep.Seeded, float64(rep.DurationMicros)/1000, rep.Epoch)
	return nil
}

// serveHTTP loads the dataset with data, builds the serving layer — a
// single engine, or the scatter/gather router over N of them when shards
// is positive; durable when -data-dir is set — and serves it over the
// HTTP/JSON front end until SIGINT/SIGTERM, then shuts down gracefully,
// draining in-flight requests and closing the write-ahead log. A durable
// directory that already holds state wins over the generated dataset:
// the server recovers it and serves the recovered database.
func serveHTTP(dataset string, shards int, scale float64, seed int64, addr string, timeout time.Duration, maxInFlight, maxRows, cacheSize int, durable core.DurableConfig) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	recovering := durable.Dir != "" && wal.HasState(durable.Dir)
	var (
		schema ra.Schema
		A      *access.Schema
		db     *store.DB
		err    error
	)
	if recovering {
		// Recovery replaces the generated seed; only the schema is needed.
		schema, _, _, err = load(dataset, scale, seed, false)
		logger.Info("recovering durable state", "dir", durable.Dir)
	} else {
		schema, A, db, err = load(dataset, scale, seed, true)
	}
	if err != nil {
		return err
	}
	var svc core.Service
	var closer interface{ Close() error }
	if shards > 0 {
		spec := shard.Spec{
			Shards:        shards,
			Keys:          shardKeys(dataset),
			PlanCacheSize: cacheSize,
		}
		var router *shard.Router
		if durable.Dir != "" {
			router, err = shard.OpenDurable(schema, A, db, spec, durable)
			closer = router
		} else {
			router, err = shard.New(schema, A, db, spec)
		}
		if err != nil {
			return err
		}
		logger.Info("sharded cluster built", "router", router.String())
		svc = router
	} else {
		var eng *core.Engine
		if durable.Dir != "" {
			eng, err = core.OpenDurable(schema, A, db, durable)
			closer = eng
		} else {
			eng, err = core.NewEngine(schema, A, db)
		}
		if err != nil {
			return err
		}
		if cacheSize > 0 {
			eng.SetPlanCacheCapacity(cacheSize)
		}
		svc = eng
	}
	if closer != nil {
		defer func() {
			if err := closer.Close(); err != nil {
				logger.Error("closing write-ahead log", "err", err)
			}
		}()
	}
	srv := server.New(svc, server.Config{
		Addr:           addr,
		RequestTimeout: timeout,
		MaxInFlight:    maxInFlight,
		MaxRows:        maxRows,
		Logger:         logger,
	})

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Start() }()
	logger.Info("dataset loaded", "dataset", dataset, "tuples", svc.DBSize(),
		"constraints", svc.AccessSnapshot().Len(), "durable", durable.Dir != "")

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("signal received; draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		<-errCh // http.ErrServerClosed after a clean shutdown
		return nil
	}
}

// follow runs a read replica until SIGINT/SIGTERM: bootstrap (or resume)
// a follower node against the durable primary at primaryURL, then serve
// it read-only over the HTTP/JSON front end on addr. Queries carry the
// MinLSN read-your-writes fence; mutations answer with the read-only
// refusal. Shutdown drains in-flight requests, stops the tail loop and
// closes the local log.
func follow(primaryURL, addr string, timeout time.Duration, maxInFlight, maxRows int, durable core.DurableConfig) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	openCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	node, err := follower.Open(openCtx, follower.Config{
		Primary:         primaryURL,
		DataDir:         durable.Dir,
		WAL:             durable.WAL,
		CheckpointEvery: durable.CheckpointEvery,
		Logger:          logger,
	})
	cancel()
	if err != nil {
		return err
	}
	defer func() {
		if err := node.Close(); err != nil {
			logger.Error("closing follower", "err", err)
		}
	}()
	srv := server.New(node, server.Config{
		Addr:           addr,
		RequestTimeout: timeout,
		MaxInFlight:    maxInFlight,
		MaxRows:        maxRows,
		Logger:         logger,
	})

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Start() }()
	logger.Info("follower serving", "primary", primaryURL, "dir", durable.Dir,
		"applied", node.AppliedLSN(), "resumedFrom", node.ResumedFrom())

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("signal received; draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		<-errCh // http.ErrServerClosed after a clean shutdown
		return nil
	}
}

// shardKeys returns the dataset's declared partition-key assignment, or
// nil (letting shard.DeriveKeys decide) for datasets without one.
func shardKeys(dataset string) map[string]string {
	if d, err := workload.ByName(dataset); err == nil {
		return d.ShardKeys
	}
	return nil
}

func load(dataset string, scale float64, seed int64, withData bool) (ra.Schema, *access.Schema, *store.DB, error) {
	if dataset == "facebook" {
		if withData {
			cfg := workload.DefaultFacebookConfig()
			cfg.Seed = seed
			fb, db, err := workload.GenFacebook(cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return fb.Schema, fb.Access, db, nil
		}
		return workload.FacebookSchema(), workload.FacebookAccess(), nil, nil
	}
	d, err := workload.ByName(dataset)
	if err != nil {
		return nil, nil, nil, err
	}
	if withData {
		db, err := d.Gen(scale, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		return d.Schema, d.Access, db, nil
	}
	return d.Schema, d.Access, nil, nil
}

func run(dataset, op, query string, scale float64, seed int64) error {
	withData := op == "run"
	schema, A, db, err := load(dataset, scale, seed, withData)
	if err != nil {
		return err
	}
	if db == nil {
		db = store.NewDB(schema)
	}
	eng, err := core.NewEngine(schema, A, db)
	if err != nil {
		return err
	}

	if op == "constraints" {
		fmt.Println(A.String())
		return nil
	}
	if query == "" {
		return fmt.Errorf("operation %q needs -query", op)
	}
	q, err := eng.Parse(query)
	if err != nil {
		return err
	}

	switch op {
	case "check":
		res, err := eng.Check(q)
		if err != nil {
			return err
		}
		fmt.Print(res.Explain())
		return nil
	case "plan":
		res, err := eng.Check(q)
		if err != nil {
			return err
		}
		if !res.Covered {
			fmt.Print(res.Explain())
			return fmt.Errorf("query is not covered; no bounded plan")
		}
		p, err := plan.Build(res)
		if err != nil {
			return err
		}
		fmt.Print(p.String())
		fmt.Printf("static access bound: %d tuples\n", p.MaxAccessBound())
		return nil
	case "sql":
		res, err := eng.Check(q)
		if err != nil {
			return err
		}
		if !res.Covered {
			return fmt.Errorf("query is not covered; no bounded SQL")
		}
		p, err := plan.Build(res)
		if err != nil {
			return err
		}
		sql, err := sqlgen.ToSQL(p)
		if err != nil {
			return err
		}
		fmt.Println("-- index relations (offline step C1):")
		for _, ddl := range sqlgen.IndexDDL(res.Access) {
			fmt.Println("--", ddl)
		}
		fmt.Println(sql)
		return nil
	case "minimize":
		res, err := eng.Check(q)
		if err != nil {
			return err
		}
		if !res.Covered {
			return fmt.Errorf("query is not covered")
		}
		am, err := minimize.MinA(res, minimize.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Printf("minimal access schema (%d of %d constraints, ΣN %d of %d):\n",
			am.Len(), A.Len(), am.SumN(), A.SumN())
		fmt.Println(am.String())
		if minimize.IsAcyclic(res) {
			dag, err := minimize.MinADAG(res)
			if err == nil {
				fmt.Printf("minADAG (acyclic case): %d constraints, ΣN %d\n", dag.Len(), dag.SumN())
			}
		}
		return nil
	case "run":
		table, rep, err := eng.Execute(q, core.DefaultOptions())
		if err != nil {
			return err
		}
		mode := "bounded (evalQP)"
		if !rep.Bounded {
			mode = "fallback (evalDBMS)"
		}
		fmt.Printf("mode: %s  covered: %v  rewritten: %v  cache-hit: %v\n",
			mode, rep.Covered, rep.Rewritten, rep.CacheHit)
		cs := eng.CacheStats()
		fmt.Printf("plan cache: %d hits, %d misses, %d evictions, %d entries\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Entries)
		fmt.Printf("accessed %d of %d tuples (%.5f%%) in %v\n",
			rep.Stats.Accessed, db.Size(),
			100*float64(rep.Stats.Accessed)/float64(db.Size()), rep.Stats.Duration)
		rows := table.Sorted()
		fmt.Printf("%d rows:\n", len(rows))
		limit := len(rows)
		if limit > 20 {
			limit = 20
		}
		for _, r := range rows[:limit] {
			fmt.Println(" ", r.String())
		}
		if len(rows) > limit {
			fmt.Printf("  … %d more\n", len(rows)-limit)
		}
		return nil
	default:
		ops := []string{"check", "plan", "sql", "minimize", "run", "constraints", "serve", "http", "follow", "reshard"}
		sort.Strings(ops)
		return fmt.Errorf("unknown op %q (want one of %v)", op, ops)
	}
}

# Tier-1 gate plus the extended checks CI runs on every push.

GO ?= go

.PHONY: check build vet test race fuzz-smoke bench-serve bench-shard bench-durable bench-ivm bench-follower bench-exec docs-check

# check is the full CI pipeline: compile, vet, race-enabled tests, a short
# fuzz smoke of the parser and canonicalizer, and the documentation gate.
check: build vet race fuzz-smoke docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test (and subtest) execution order, flushing out
# inter-test state dependence.
test:
	$(GO) test -shuffle=on ./...

# The pinned lines below run the crash harnesses (SIGKILL mid-write-storm,
# then recovery and a differential sweep against the oracle) and the WAL
# regression tests by name: the suite above runs them too, but a future
# -short would silently drop the subprocess tests, and these lines would
# fail loudly instead.
race:
	$(GO) test -race -shuffle=on ./...
	$(GO) test -race -run 'TestCrashRecovery' -v ./internal/core
	$(GO) test -race -run 'TestFollowerCrashResume' -v ./internal/follower
	$(GO) test -race -shuffle=on -run 'TestRecordsTailReadOpensOnlyFinalSegment|TestRecoverDBRejectsDuplicateLSN' -v ./internal/wal

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=10s ./internal/parser
	$(GO) test -run=^$$ -fuzz=FuzzNormalize -fuzztime=10s ./internal/ra
	$(GO) test -run=^$$ -fuzz=FuzzRouteDecision -fuzztime=10s ./internal/shard
	$(GO) test -run=^$$ -fuzz=FuzzResiduePlan -fuzztime=10s ./internal/shard
	$(GO) test -run=^$$ -fuzz=FuzzDeltaPlan -fuzztime=10s ./internal/ivm
	$(GO) test -run=^$$ -fuzz=FuzzBatchExec -fuzztime=10s ./internal/exec

# bench-exec prints the executor's per-operator micro-benchmarks: the
# batched columnar evaluator against the preserved tuple-at-a-time one on
# selection, join, union and fetch plans, with ns/op and allocs/op
# (-benchmem). The allocation gate (TestExecAllocBudget, run by the normal
# test suite outside -race) requires batched ≤ legacy/5 allocs/op.
bench-exec:
	$(GO) test -run=^$$ -bench=BenchmarkExec -benchmem ./internal/exec

# docs-check is the documentation gate: gofmt-clean sources, vet, and
# cmd/docscheck (package doc comments everywhere; doc comments on every
# exported identifier of the root package and internal/server).
docs-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck

# bench-serve prints the concurrent serving benchmark (QPS, plan-cache hit
# rate, cold-vs-cached speedup) on all three datasets, in-process and (for
# AIRCA) through the HTTP front end over loopback.
bench-serve:
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -transport http
	$(GO) run ./cmd/boundedctl -op serve -dataset TFACC -scale 0.1
	$(GO) run ./cmd/boundedctl -op serve -dataset MCBM -scale 0.1

# bench-shard prices horizontal partitioning: the same Zipf replay against
# the single engine and against the scatter/gather router at 1, 2, 4 and 8
# shards, with the routing-decision breakdown per run, plus one run that
# reshards 2 → 4 live at the replay's halfway mark to price an online
# migration under load, a write-heavy pair (40% of client ops are tuple
# writes) that prices the batched broadcast apply queue against the
# unsharded baseline, and a non-distributable-heavy row (30% of client
# queries residue-routed) that prices the semi-join/shuffle executor.
bench-shard:
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 1
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 2
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 4
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 8
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 2 -reshard 4
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.4
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 4 -writemix 0.4
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 4 -residuemix 0.3

# bench-ivm prices incremental answer maintenance: the same mixed replay
# (20% of client ops are tuple writes) with materialized answers off
# (-ivm=false, plan-cache-only baseline — every repeat re-executes because
# writes keep bumping no state but still contend) and on (hot fingerprints
# cross admission and repeats are served O(answer), with tuple writes
# folded through the delta rules instead of invalidating). The second row
# should show a multiple of the first's QPS; its ivm line reports views
# live, O(answer) serves and delta applies.
bench-ivm:
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.2 -ivm=false
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.2

# bench-follower prices read replicas: the same mixed replay (10% of
# client ops are tuple writes) against a durable primary alone, then with
# one and two followers tailing its write-ahead log. Reads round-robin
# across the replicas carrying a read-your-writes fence (MinLSN = the
# replayer's last acknowledged write), so the QPS column prices fenced
# replica reads, not stale ones. Each row gets its own mktemp -d: the
# benchmark refuses a directory that already holds log state.
bench-follower:
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.1 -transport follower -followers 0 -data-dir $$(mktemp -d)
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.1 -transport follower -followers 1 -data-dir $$(mktemp -d)
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.1 -transport follower -followers 2 -data-dir $$(mktemp -d)

# bench-durable prices the write-ahead log: the same write-heavy replay
# (40% of client ops are tuple writes) in-memory, then logging to a fresh
# temp directory under each fsync policy. fsync=off should sit within ~10%
# of the in-memory row (the log is a buffered sequential append);
# fsync=interval amortizes syncs over a 50ms window; fsync=commit pays a
# disk sync per acknowledged write and prices true no-loss durability.
# Each row gets its own mktemp -d: the benchmark refuses a directory that
# already holds log state.
bench-durable:
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.4
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.4 -data-dir $$(mktemp -d) -fsync off
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.4 -data-dir $$(mktemp -d) -fsync interval
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -writemix 0.4 -data-dir $$(mktemp -d) -fsync commit
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1 -ops 20000 -transport sharded -shards 4 -writemix 0.4 -data-dir $$(mktemp -d) -fsync interval

# Tier-1 gate plus the extended checks CI runs on every push.

GO ?= go

.PHONY: check build vet test race fuzz-smoke bench-serve

# check is the full CI pipeline: compile, vet, race-enabled tests and a
# short fuzz smoke of the parser and canonicalizer.
check: build vet race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=10s ./internal/parser
	$(GO) test -run=^$$ -fuzz=FuzzNormalize -fuzztime=10s ./internal/ra

# bench-serve prints the concurrent serving benchmark (QPS, plan-cache hit
# rate, cold-vs-cached speedup) on all three datasets.
bench-serve:
	$(GO) run ./cmd/boundedctl -op serve -dataset AIRCA -scale 0.1
	$(GO) run ./cmd/boundedctl -op serve -dataset TFACC -scale 0.1
	$(GO) run ./cmd/boundedctl -op serve -dataset MCBM -scale 0.1

// Package bounded is the public API of this repository: a from-scratch Go
// implementation of "An Effective Syntax for Bounded Relational Queries"
// (Cao & Fan, SIGMOD 2016).
//
// A query Q is boundedly evaluable under an access schema A when, on every
// database D satisfying A, Q(D) can be computed by fetching a fraction D_Q
// of D whose size — and the time to identify it — depend on Q and A only,
// never on |D|. Deciding bounded evaluability for full relational algebra
// is undecidable; the paper's answer is an effective syntax, the class of
// *covered* queries: every boundedly evaluable RA query is A-equivalent to
// a covered one, every covered query is boundedly evaluable, and coverage
// is checkable in PTIME.
//
// The package exposes the complete pipeline:
//
//	eng, _ := bounded.NewEngine(schema, accessSchema, db)
//	q, _   := eng.Parse("q(cid) :- friend(0,f), dine(f,cid,5,2015), cafe(cid,'nyc')")
//	res, _ := eng.Check(q)        // CovChk: is q covered?
//	table, report, _ := eng.Execute(q, bounded.DefaultOptions())
//
// Execute runs coverage checking, optional covered-form rewriting, access
// minimization, bounded plan generation and plan execution, falling back
// to a conventional evaluator for uncovered queries. Lower-level pieces
// (plans, minimizers, SQL translation, constraint discovery, the storage
// substrate) live in the internal packages and are re-exported here where
// they form the supported surface.
package bounded

import (
	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/discovery"
	"repro/internal/exec"
	"repro/internal/minimize"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/rewrite"
	"repro/internal/sqlgen"
	"repro/internal/store"
	"repro/internal/value"
)

// Core engine types.
type (
	// Engine processes queries under an access schema (Fig. 4 pipeline).
	// It is safe for concurrent use: executions run in parallel under a
	// shared lock, access-schema mutations are serialized against them,
	// and a sharded LRU plan cache (keyed by the canonical fingerprint of
	// the query) lets repeated Execute calls skip the analysis pipeline.
	// Tuple inserts and deletes keep cached plans valid — the indices I_A
	// are maintained incrementally (Proposition 12) — while schema and
	// access-schema changes invalidate the cache.
	Engine = core.Engine
	// Options tunes Engine.Execute.
	Options = core.Options
	// Report describes how a query was processed.
	Report = core.Report
	// CacheStats reports plan-cache hits, misses and evictions
	// (Engine.CacheStats).
	CacheStats = cache.Stats

	// Schema is a relational schema: base relation → attribute names.
	Schema = ra.Schema
	// Query is a relational algebra query tree.
	Query = ra.Query
	// Attr references an attribute of a relation occurrence.
	Attr = ra.Attr

	// Constraint is an access constraint R(X → Y, N).
	Constraint = access.Constraint
	// AccessSchema is a set of access constraints.
	AccessSchema = access.Schema

	// CoverResult is the outcome of the coverage analysis (CovChk).
	CoverResult = cover.Result
	// Plan is a bounded query plan.
	Plan = plan.Plan
	// Table is a query answer with set semantics.
	Table = exec.Table
	// Stats reports evaluation cost (tuples accessed, duration).
	Stats = exec.Stats
	// DB is the in-memory store holding relations and indices.
	DB = store.DB
	// Value is a scalar constant.
	Value = value.Value
	// Tuple is a row of values.
	Tuple = value.Tuple
	// RewriteResult reports covered-form rewriting.
	RewriteResult = rewrite.Result
	// DiscoveryOptions tunes constraint mining.
	DiscoveryOptions = discovery.Options
	// MinimizeOptions tunes the greedy access minimizer.
	MinimizeOptions = minimize.Options
)

// NewEngine builds an engine over schema and access schema A, building the
// indices I_A on db (an empty DB is created when db is nil).
func NewEngine(schema Schema, A *AccessSchema, db *DB) (*Engine, error) {
	return core.NewEngine(schema, A, db)
}

// DefaultOptions enables rewriting, minimization and baseline fallback.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewDB creates an empty database instance of schema.
func NewDB(schema Schema) *DB { return store.NewDB(schema) }

// NewAccessSchema builds an access schema from constraints, dropping
// duplicates.
func NewAccessSchema(cs ...Constraint) *AccessSchema { return access.NewSchema(cs...) }

// ParseConstraint reads "R(X -> Y, N)" notation.
func ParseConstraint(s string) (Constraint, error) { return access.Parse(s) }

// Check runs CovChk directly: is q covered by A?
func Check(q Query, schema Schema, A *AccessSchema) (*CoverResult, error) {
	norm, err := ra.Normalize(q, schema)
	if err != nil {
		return nil, err
	}
	return cover.Check(norm, schema, A)
}

// Fingerprint returns the canonical fingerprint of q under schema: a
// stable digest invariant under variable renaming, atom reordering,
// redundant equality atoms and union operand order. Fingerprint-equal
// queries evaluate to equal answers on every instance of schema — the key
// the engine's plan cache is built on.
func Fingerprint(q Query, schema Schema) (string, error) {
	return ra.Fingerprint(q, schema)
}

// CanonicalQuery returns the canonical normal form behind Fingerprint.
func CanonicalQuery(q Query, schema Schema) (Query, error) {
	return ra.Canonical(q, schema)
}

// BuildPlan generates a canonical bounded query plan for a covered query
// (algorithm QPlan, Theorem 5).
func BuildPlan(res *CoverResult) (*Plan, error) { return plan.Build(res) }

// MinimizeAccess runs the greedy heuristic minA (Theorem 10(1)).
func MinimizeAccess(res *CoverResult, opts MinimizeOptions) (*AccessSchema, error) {
	return minimize.MinA(res, opts)
}

// ToCovered rewrites q toward an A-equivalent covered query (difference
// guarding and selection pushdown).
func ToCovered(q Query, schema Schema, A *AccessSchema) (*RewriteResult, error) {
	return rewrite.ToCovered(q, schema, A)
}

// PlanToSQL translates a bounded plan into SQL over the index relations
// (Plan2SQL).
func PlanToSQL(p *Plan) (string, error) { return sqlgen.ToSQL(p) }

// Query construction helpers, re-exported from the ra package.
var (
	// R makes a relation occurrence; A an attribute; Eq / EqC equality
	// atoms; Sel, Proj, Prod, Join, U, D compose the algebra.
	R    = ra.R
	A    = ra.A
	Eq   = ra.Eq
	EqC  = ra.EqC
	Sel  = ra.Sel
	Proj = ra.Proj
	Prod = ra.Prod
	Join = ra.Join
	U    = ra.U
	D    = ra.D

	// Int and Str build constants.
	Int = value.NewInt
	Str = value.NewStr
)

package bounded_test

import (
	"fmt"
	"log"

	bounded "repro"
)

// Example demonstrates the full bounded-evaluation pipeline on a toy
// database: declare access constraints, load data, check coverage, and
// execute with bounded data access.
func Example() {
	schema := bounded.Schema{
		"friend": {"pid", "fid"},
		"cafe":   {"cid", "city"},
		"dine":   {"pid", "cid"},
	}
	A := bounded.NewAccessSchema(
		bounded.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000},
		bounded.Constraint{Rel: "dine", X: []string{"pid"}, Y: []string{"cid"}, N: 31},
		bounded.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1},
	)
	db := bounded.NewDB(schema)
	for _, row := range []struct {
		rel string
		t   bounded.Tuple
	}{
		{"friend", bounded.Tuple{bounded.Int(0), bounded.Int(1)}},
		{"friend", bounded.Tuple{bounded.Int(0), bounded.Int(2)}},
		{"dine", bounded.Tuple{bounded.Int(1), bounded.Int(10)}},
		{"dine", bounded.Tuple{bounded.Int(2), bounded.Int(11)}},
		{"cafe", bounded.Tuple{bounded.Int(10), bounded.Str("nyc")}},
		{"cafe", bounded.Tuple{bounded.Int(11), bounded.Str("sf")}},
	} {
		if _, err := db.Insert(row.rel, row.t); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := bounded.NewEngine(schema, A, db)
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.Parse("q(city) :- friend(0, f), dine(f, c), cafe(c, city)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Check(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("covered:", res.Covered)
	table, rep, err := eng.Execute(q, bounded.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bounded:", rep.Bounded)
	for _, row := range table.Sorted() {
		fmt.Println(row)
	}
	// Output:
	// covered: true
	// bounded: true
	// (nyc)
	// (sf)
}

// ExampleFingerprint shows the canonical fingerprint the plan cache is
// keyed on: two syntactically different spellings of the same query —
// renamed variables, reordered atoms — share one fingerprint, so the
// second execution of either is a cache hit for both.
func ExampleFingerprint() {
	schema := bounded.Schema{
		"friend": {"pid", "fid"},
		"dine":   {"pid", "cid"},
	}
	eng, err := bounded.NewEngine(schema, bounded.NewAccessSchema(), nil)
	if err != nil {
		log.Fatal(err)
	}
	a, err := eng.Parse("q(c) :- friend(0, f), dine(f, c)")
	if err != nil {
		log.Fatal(err)
	}
	b, err := eng.Parse("q(x) :- dine(buddy, x), friend(0, buddy)")
	if err != nil {
		log.Fatal(err)
	}
	fa, err := bounded.Fingerprint(a, schema)
	if err != nil {
		log.Fatal(err)
	}
	fb, err := bounded.Fingerprint(b, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equal fingerprints:", fa == fb)
	// Output:
	// equal fingerprints: true
}

// ExampleParseConstraint reads the paper's R(X → Y, N) notation: from pid
// one can fetch at most 31 cid values from dine.
func ExampleParseConstraint() {
	c, err := bounded.ParseConstraint("dine(pid -> cid, 31)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Rel, c.X, c.Y, c.N)
	// Output:
	// dine [pid] [cid] 31
}

// ExampleCheck shows direct use of the coverage checker with the algebra
// builders: an uncovered query reports which attributes cannot be fetched.
func ExampleCheck() {
	schema := bounded.Schema{"dine": {"pid", "cid"}}
	A := bounded.NewAccessSchema(
		bounded.Constraint{Rel: "dine", X: []string{"cid"}, Y: []string{"pid"}, N: 100},
	)
	// All restaurants person 0 dined at — needs pid→cid, but A only has
	// cid→pid.
	q := bounded.Proj(
		bounded.Sel(bounded.R("dine", "d"), bounded.EqC(bounded.A("d", "pid"), bounded.Int(0))),
		bounded.A("d", "cid"),
	)
	res, err := bounded.Check(q, schema, A)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("covered:", res.Covered)
	fmt.Println("fetchable:", res.Fetchable)
	// Output:
	// covered: false
	// fetchable: false
}

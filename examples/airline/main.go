// Airline runs a flight-analysis workload on the synthetic AIRCA dataset
// (US air carriers, Section 8): a multi-way join answered by a bounded plan
// under constraints such as ontime(origin → airline, 28), compared against
// the conventional full-scan evaluator at several dataset sizes — the
// Fig. 5(a) experiment in miniature.
//
//	go run ./examples/airline
package main

import (
	"fmt"
	"log"

	bounded "repro"
	"repro/internal/workload"
)

func main() {
	d := workload.Airca()

	// "Which airlines fly out of airport 42, and in which
	// country are they registered?" — joins ontime with carrier.
	const src = `q(airline, country) :- ontime(f, 42, dst, airline, m, delay), carrier(airline, nm, country)`

	fmt.Println("query:", src)
	for _, scale := range []float64{0.125, 0.5, 1.0} {
		db, err := d.Gen(scale, 7)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := bounded.NewEngine(d.Schema, d.Access, db)
		if err != nil {
			log.Fatal(err)
		}
		q, err := eng.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		table, rep, err := eng.Execute(q, bounded.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		_, base, err := eng.ExecuteBaseline(q)
		if err != nil {
			log.Fatal(err)
		}
		speedup := float64(base.Duration.Nanoseconds()) / float64(rep.Stats.Duration.Nanoseconds()+1)
		fmt.Printf("|D|=%7d  evalQP: %8v (%5d tuples)   evalDBMS: %8v (%7d tuples)   speedup %.1fx   answers %d\n",
			db.Size(), rep.Stats.Duration, rep.Stats.Accessed,
			base.Duration, base.Accessed, speedup, table.Len())
	}

	// Show the SQL a DBMS would execute over the index relations.
	db, err := d.Gen(0.125, 7)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bounded.NewEngine(d.Schema, d.Access, db)
	if err != nil {
		log.Fatal(err)
	}
	q, err := eng.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	sql, err := eng.SQL(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPlan2SQL output:")
	fmt.Println(sql)
}

// Quickstart: define a schema, declare access constraints, load data, and
// run a query through the bounded evaluation pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	bounded "repro"
)

func main() {
	// A tiny social schema: who follows whom, and where users live.
	schema := bounded.Schema{
		"follows": {"src", "dst"},
		"user":    {"uid", "city"},
	}

	// Access constraints: everyone follows at most 100 accounts, and uid is
	// a key for city. Each constraint doubles as an index declaration.
	A := bounded.NewAccessSchema(
		bounded.Constraint{Rel: "follows", X: []string{"src"}, Y: []string{"dst"}, N: 100},
		bounded.Constraint{Rel: "user", X: []string{"uid"}, Y: []string{"city"}, N: 1},
	)

	db := bounded.NewDB(schema)
	for _, edge := range [][2]int64{{1, 2}, {1, 3}, {2, 3}, {3, 4}, {1, 4}} {
		if _, err := db.Insert("follows", bounded.Tuple{bounded.Int(edge[0]), bounded.Int(edge[1])}); err != nil {
			log.Fatal(err)
		}
	}
	cities := map[int64]string{1: "nyc", 2: "sf", 3: "nyc", 4: "tokyo"}
	for uid, city := range cities {
		if _, err := db.Insert("user", bounded.Tuple{bounded.Int(uid), bounded.Str(city)}); err != nil {
			log.Fatal(err)
		}
	}

	eng, err := bounded.NewEngine(schema, A, db)
	if err != nil {
		log.Fatal(err)
	}

	// "Cities of the accounts user 1 follows" — written in the rule
	// language; shared variables are joins, literals are selections.
	q, err := eng.Parse("q(city) :- follows(1, d), user(d, city)")
	if err != nil {
		log.Fatal(err)
	}

	// Is the query covered (and hence boundedly evaluable)?
	res, err := eng.Check(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Explain())

	// Execute: coverage check → access minimization → bounded plan →
	// fetch-only evaluation.
	table, rep, err := eng.Execute(q, bounded.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bounded: %v, accessed %d of %d tuples\n",
		rep.Bounded, rep.Stats.Accessed, db.Size())
	for _, row := range table.Sorted() {
		fmt.Println(" ", row)
	}

	// The same plan as SQL over the index relations (Plan2SQL).
	sql, err := eng.SQL(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL over index relations:")
	fmt.Println(sql)
}

// Traffic exercises constraint discovery and access minimization on the
// synthetic TFACC dataset (UK road accidents, Section 8): it mines access
// constraints from data (the offline step C1 of Fig. 4), answers an
// accident-analysis query with them, and shows minA picking the minimal
// constraint subset (step C3).
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	bounded "repro"
	"repro/internal/minimize"
	"repro/internal/workload"
)

func main() {
	d := workload.Tfacc()
	db, err := d.Gen(0.25, 3)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bounded.NewEngine(d.Schema, d.Access, db)
	if err != nil {
		log.Fatal(err)
	}

	// Discover additional constraints from the instance (TANE-style
	// group-by mining), then install them with their indices.
	opts := bounded.DiscoveryOptions{MaxN: 40, MaxX: 2, MineEmptyX: true, Slack: 1.5, PruneDominated: true}
	found, err := eng.Discover(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-declared constraints: %d; discovered from data: %d\n",
		d.Access.Len(), found.Len())
	if err := eng.AddConstraints(found.Constraints...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total after installation: %d constraints\n\n", eng.AccessSnapshot().Len())

	// "Casualties of accidents handled by police force 7 on day 100, with
	// the vehicles involved."
	const src = `q(aid, cid, vtype) :- accident(aid, 100, 7, sev, dist), casualty(aid, cid, class, csev), vehicle(aid, vid, vtype, age)`
	q, err := eng.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Check(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("covered: %v\n", res.Covered)

	// minA: the minimal subset of constraints that still covers the query
	// (NP-complete in general — Theorem 9 — hence the greedy heuristic).
	am, err := minimize.MinA(res, minimize.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminA kept %d of %d constraints (ΣN %d → %d):\n",
		am.Len(), eng.AccessSnapshot().Len(), eng.AccessSnapshot().SumN(), am.SumN())
	fmt.Println(am)

	table, rep, err := eng.Execute(q, bounded.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanswered with %d tuple accesses out of |D| = %d (%.5f%%): %d rows\n",
		rep.Stats.Accessed, db.Size(),
		100*float64(rep.Stats.Accessed)/float64(db.Size()), table.Len())
	for i, row := range table.Sorted() {
		if i >= 8 {
			fmt.Printf("  … %d more\n", table.Len()-8)
			break
		}
		fmt.Println(" ", row)
	}
}

// Graphsearch reproduces Example 1 of the paper end to end: the Facebook
// Graph Search query Q0 — "restaurants in nyc I have not been to, but in
// which my friends dined in May 2015" — is not itself covered by the access
// schema A0, yet it is boundedly evaluable: the engine rewrites it to the
// A0-equivalent Q0' = Q1 − (Q1 ⋈ Q2) and answers it with a bounded plan
// that fetches a few hundred tuples regardless of how large the social
// graph grows.
//
//	go run ./examples/graphsearch
package main

import (
	"fmt"
	"log"

	bounded "repro"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultFacebookConfig()
	cfg.Persons = 2000
	cfg.Cafes = 500
	fb, db, err := workload.GenFacebook(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bounded.NewEngine(fb.Schema, fb.Access, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d tuples; access schema A0:\n%s\n\n", db.Size(), fb.Access)

	q0 := fb.Q0()
	fmt.Println("Q0 =", q0)

	// Q0 as written is not covered: Q2 (all restaurants I dined in) cannot
	// be fetched via any index of A0.
	res, err := eng.Check(q0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCovChk(Q0): covered = %v\n", res.Covered)

	// Execute runs the rewriter: Q1 − Q2 becomes Q1 − (Q1 ⋈ Q2), which is
	// covered — ψ3's membership index checks "did I dine at cid?" one
	// tuple at a time.
	table, rep, err := eng.Execute(q0, bounded.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewritten: %v (rules: %v), bounded: %v\n",
		rep.Rewritten, rep.RewriteRules, rep.Bounded)
	fmt.Printf("plan length: %d steps, static access bound: %d tuples\n",
		rep.Plan.Length(), rep.Plan.MaxAccessBound())
	fmt.Printf("actual access: %d of %d tuples (%.5f%%)\n",
		rep.Stats.Accessed, db.Size(),
		100*float64(rep.Stats.Accessed)/float64(db.Size()))

	fmt.Printf("\n%d restaurants to try:\n", table.Len())
	for i, row := range table.Sorted() {
		if i >= 10 {
			fmt.Printf("  … %d more\n", table.Len()-10)
			break
		}
		fmt.Println("  cafe", row)
	}

	// Sanity: the conventional evaluator agrees but reads everything.
	baseline, st, err := eng.ExecuteBaseline(q0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevalDBMS agreement: %v (scanned %d tuples — %.0fx more)\n",
		table.Equal(baseline), st.Accessed,
		float64(st.Accessed)/float64(rep.Stats.Accessed))
}

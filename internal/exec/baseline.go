package exec

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// RunBaseline evaluates q the conventional way (evalDBMS): every relation
// occurrence is read by a full scan of whole tuples, constant selections
// are applied after the scan, and equi-joins use hash joins with a
// smallest-first order — a fair model of the MySQL/PostgreSQL behaviour the
// paper observed (entire tables are accessed whenever non-key attributes
// are involved). Its data access is Θ(|D|) by construction. Like Run, the
// evaluation itself is columnar over an arena; BOUNDED_EXEC=legacy selects
// the tuple-at-a-time implementation.
func RunBaseline(q ra.Query, s ra.Schema, db *store.DB) (*Table, Stats, error) {
	if legacyDefault {
		return RunBaselineLegacy(q, s, db)
	}
	start := time.Now()
	var acc accCounter
	a := getArena()
	defer a.release()
	ctx := &evalCtx{a: a, in: a.in, acc: &acc}
	t, _, err := evalBaseline(ctx, q, s, db)
	if err != nil {
		return nil, Stats{}, err
	}
	return t.detach(), acc.stats(start, 0), nil
}

// EvalSubtree evaluates one subtree of a normalized query the
// conventional way and returns the result table together with the
// attribute scope its columns are positionally labeled by. It is the
// sub-plan execution entry point of the sharded residue executor
// (internal/shard): the router recurses over a non-distributable query,
// ships the distributable subtrees to shard engines through this call,
// and combines the pieces itself — column labels are derived
// deterministically from the subtree alone, so tables computed for the
// same subtree on different shards union positionally.
func EvalSubtree(q ra.Query, s ra.Schema, db *store.DB) (*Table, []ra.Attr, Stats, error) {
	start := time.Now()
	var acc accCounter
	a := getArena()
	defer a.release()
	ctx := &evalCtx{a: a, in: a.in, acc: &acc}
	t, attrs, err := evalBaseline(ctx, q, s, db)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	return t.detach(), attrs, acc.stats(start, 0), nil
}

// PredsHold reports whether row, whose columns are positionally described
// by scope, satisfies every predicate. Exported for the sharded residue
// executor's per-row compatibility paths and the legacy evaluator.
func PredsHold(row value.Tuple, scope []ra.Attr, preds []ra.Pred) (bool, error) {
	return predsHold(row, scope, preds)
}

// AttrIndex returns the position of a in attrs, or -1. Exported for the
// residue executor's router-side projection over shipped subtree results.
func AttrIndex(attrs []ra.Attr, a ra.Attr) int {
	return attrIndex(attrs, a)
}

func evalBaseline(ctx *evalCtx, q ra.Query, s ra.Schema, db *store.DB) (*Table, []ra.Attr, error) {
	if ra.IsSPC(q) {
		spc, err := flattenOne(q, s)
		if err != nil {
			return nil, nil, err
		}
		t, err := evalSPCBaseline(ctx, spc, s, db)
		if err != nil {
			return nil, nil, err
		}
		return t, spc.Out, nil
	}
	switch t := q.(type) {
	case *ra.Union:
		l, la, err := evalBaseline(ctx, t.L, s, db)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := evalBaseline(ctx, t.R, s, db)
		if err != nil {
			return nil, nil, err
		}
		out := newCtxTable(ctx, l.Cols, l.n+r.n)
		for j := range out.cols {
			out.cols[j] = append(out.cols[j], l.cols[j][:l.n]...)
			out.cols[j] = append(out.cols[j], r.cols[j][:r.n]...)
		}
		out.setLen(l.n + r.n)
		out.dedupAll()
		noteBatch(out.n)
		return out, la, nil
	case *ra.Diff:
		l, la, err := evalBaseline(ctx, t.L, s, db)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := evalBaseline(ctx, t.R, s, db)
		if err != nil {
			return nil, nil, err
		}
		keep := diffRows(ctx, l, r)
		out := newCtxTable(ctx, l.Cols, len(keep))
		gatherInto(out, l.cols, keep)
		noteBatch(out.n)
		return out, la, nil
	case *ra.Select:
		in, ia, err := evalBaseline(ctx, t.In, s, db)
		if err != nil {
			return nil, nil, err
		}
		keep, err := filterPreds(ctx, in, ia, t.Preds)
		if err != nil {
			return nil, nil, err
		}
		out := newCtxTable(ctx, in.Cols, len(keep))
		gatherInto(out, in.cols, keep)
		noteBatch(out.n)
		return out, ia, nil
	case *ra.Project:
		in, ia, err := evalBaseline(ctx, t.In, s, db)
		if err != nil {
			return nil, nil, err
		}
		pos := make([]int, len(t.Attrs))
		cols := make([]string, len(t.Attrs))
		for i, a := range t.Attrs {
			p := attrIndex(ia, a)
			if p < 0 {
				return nil, nil, fmt.Errorf("exec: projection attribute %s out of scope", a)
			}
			pos[i] = p
			cols[i] = a.String()
		}
		out := newCtxTable(ctx, cols, in.n)
		for j, p := range pos {
			out.cols[j] = append(out.cols[j], in.cols[p][:in.n]...)
		}
		out.setLen(in.n)
		out.dedupAll()
		noteBatch(out.n)
		return out, t.Attrs, nil
	case *ra.Product:
		l, la, err := evalBaseline(ctx, t.L, s, db)
		if err != nil {
			return nil, nil, err
		}
		r, rAttrs, err := evalBaseline(ctx, t.R, s, db)
		if err != nil {
			return nil, nil, err
		}
		out := crossCtx(ctx, l, r, append(append([]string{}, l.Cols...), r.Cols...))
		noteBatch(out.n)
		return out, append(append([]ra.Attr{}, la...), rAttrs...), nil
	default:
		return nil, nil, fmt.Errorf("exec: unknown node %T", q)
	}
}

// filterPreds compiles the selection's predicates against the scope and
// returns the surviving row ids, column-wise like filterRows. A constant
// the evaluation has never interned cannot match any row.
func filterPreds(ctx *evalCtx, in *Table, scope []ra.Attr, preds []ra.Pred) ([]int32, error) {
	keep := ctx.allocInts(in.n)
	for i := 0; i < in.n; i++ {
		keep = append(keep, int32(i))
	}
	for _, p := range preds {
		switch t := p.(type) {
		case ra.EqAttr:
			pa, pb := attrIndex(scope, t.L), attrIndex(scope, t.R)
			if pa < 0 || pb < 0 {
				return nil, fmt.Errorf("exec: selection attribute out of scope in %s", p)
			}
			ca, cb := in.cols[pa], in.cols[pb]
			w := 0
			for _, id := range keep {
				if ca[id] == cb[id] {
					keep[w] = id
					w++
				}
			}
			keep = keep[:w]
		case ra.EqConst:
			pa := attrIndex(scope, t.A)
			if pa < 0 {
				return nil, fmt.Errorf("exec: selection attribute out of scope in %s", p)
			}
			ch := ctx.intern(t.C)
			ca := in.cols[pa]
			w := 0
			for _, id := range keep {
				if ca[id] == ch {
					keep[w] = id
					w++
				}
			}
			keep = keep[:w]
		}
	}
	return keep, nil
}

func flattenOne(q ra.Query, s ra.Schema) (*ra.SPC, error) {
	subs, err := ra.MaxSPC(q, s)
	if err != nil {
		return nil, err
	}
	if len(subs) != 1 {
		return nil, fmt.Errorf("exec: expected one SPC sub-query, got %d", len(subs))
	}
	return subs[0], nil
}

// evalSPCBaseline evaluates a flattened SPC query with full scans and hash
// joins. Tables are keyed by equality-class labels so equi-join conditions
// become natural joins; residual conditions are checked implicitly by class
// construction.
func evalSPCBaseline(ctx *evalCtx, spc *ra.SPC, s ra.Schema, db *store.DB) (*Table, error) {
	var all []ra.Attr
	for _, rel := range spc.Rels {
		names, err := s.Attrs(rel.Base)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			all = append(all, ra.Attr{Rel: rel.Name, Name: n})
		}
	}
	classes := ra.NewClasses(all, spc.Preds)
	if classes.Conflict {
		return newCtxTable(ctx, make([]string, len(spc.Out)), 0), nil
	}

	// Which classes each relation must expose: classes of its attributes in
	// XQs plus classes shared with other relations (join columns).
	classRels := map[ra.Attr]map[string]bool{}
	for _, rel := range spc.Rels {
		names, _ := s.Attrs(rel.Base)
		for _, n := range names {
			rep := classes.Rep(ra.Attr{Rel: rel.Name, Name: n})
			if classRels[rep] == nil {
				classRels[rep] = map[string]bool{}
			}
			classRels[rep][rel.Name] = true
		}
	}
	needed := map[ra.Attr]bool{}
	for _, a := range spc.X {
		needed[classes.Rep(a)] = true
	}
	for rep, rels := range classRels {
		if len(rels) > 1 {
			needed[rep] = true
		}
	}

	// Scan, filter and label each relation.
	tabs := make([]*Table, 0, len(spc.Rels))
	for _, rel := range spc.Rels {
		t, err := scanRelation(ctx, rel, classes, needed, s, db)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, t)
	}
	// Smallest-first hash-join order, joining connected tables before
	// resorting to cross products.
	sort.Slice(tabs, func(i, j int) bool { return tabs[i].Len() < tabs[j].Len() })
	cur := tabs[0]
	rest := tabs[1:]
	for len(rest) > 0 {
		pick := -1
		for i, t := range rest {
			if sharesColumn(cur, t) {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0
		}
		cur = natJoinCtx(ctx, cur, rest[pick])
		noteBatch(cur.n)
		rest = append(rest[:pick], rest[pick+1:]...)
	}

	// Project to output attributes.
	pos := make([]int, len(spc.Out))
	cols := make([]string, len(spc.Out))
	for i, a := range spc.Out {
		lbl := classes.Rep(a).String()
		p := cur.ColPos(lbl)
		if p < 0 {
			return nil, fmt.Errorf("exec: output class %s missing", lbl)
		}
		pos[i] = p
		cols[i] = lbl
	}
	out := newCtxTable(ctx, cols, cur.n)
	for j, p := range pos {
		out.cols[j] = append(out.cols[j], cur.cols[p][:cur.n]...)
	}
	out.setLen(cur.n)
	out.dedupAll()
	noteBatch(out.n)
	return out, nil
}

// scanRelation reads one relation occurrence whole (counted as a scan),
// applies intra-class equality and constant pushdown per tuple in value
// space, and interns only the surviving tuples' needed columns into the
// evaluation's batch — the single point where baseline data enters the
// handle space.
func scanRelation(ctx *evalCtx, rel *ra.Relation, classes *ra.Classes,
	needed map[ra.Attr]bool, s ra.Schema, db *store.DB) (*Table, error) {
	names, err := s.Attrs(rel.Base)
	if err != nil {
		return nil, err
	}
	// Column plan: positions of attributes whose class is needed, in class
	// label order; attributes of the same class must agree, and classes
	// with constants are filtered here (selection pushdown onto the scan).
	type colSpec struct {
		label string
		poss  []int
		cval  value.Value
		has   bool
	}
	byLabel := map[string]*colSpec{}
	var order []*colSpec
	for i, n := range names {
		rep := classes.Rep(ra.Attr{Rel: rel.Name, Name: n})
		if !needed[rep] {
			continue
		}
		lbl := rep.String()
		cs := byLabel[lbl]
		if cs == nil {
			cs = &colSpec{label: lbl}
			if v, ok := classes.Const(rep); ok {
				cs.cval, cs.has = v, true
			}
			byLabel[lbl] = cs
			order = append(order, cs)
		}
		cs.poss = append(cs.poss, i)
	}
	cols := make([]string, len(order))
	for i, cs := range order {
		cols[i] = cs.label
	}
	rows, err := db.Scan(rel.Base) // full-tuple scan, counted
	if err != nil {
		return nil, err
	}
	ctx.acc.addScanned(int64(len(rows)))
	out := newCtxTable(ctx, cols, len(rows))
	out.initSet(len(rows))
rowLoop:
	for _, t := range rows {
		// Validate in value space first: the candidate row is only pushed
		// once it is known to survive, keeping the columns balanced.
		for _, cs := range order {
			v := t[cs.poss[0]]
			for _, p := range cs.poss[1:] {
				if t[p] != v {
					continue rowLoop
				}
			}
			if cs.has && v != cs.cval {
				continue rowLoop
			}
		}
		for ci, cs := range order {
			out.pushCand(ci, ctx.intern(t[cs.poss[0]]))
		}
		out.commitCand()
	}
	noteBatch(out.n)
	return out, nil
}

func sharesColumn(a, b *Table) bool {
	for _, c := range b.Cols {
		if colIndex(a.Cols, c) >= 0 {
			return true
		}
	}
	return false
}

func predsHold(row value.Tuple, scope []ra.Attr, preds []ra.Pred) (bool, error) {
	for _, p := range preds {
		switch t := p.(type) {
		case ra.EqAttr:
			pa, pb := attrIndex(scope, t.L), attrIndex(scope, t.R)
			if pa < 0 || pb < 0 {
				return false, fmt.Errorf("exec: selection attribute out of scope in %s", p)
			}
			if row[pa] != row[pb] {
				return false, nil
			}
		case ra.EqConst:
			pa := attrIndex(scope, t.A)
			if pa < 0 {
				return false, fmt.Errorf("exec: selection attribute out of scope in %s", p)
			}
			if row[pa] != t.C {
				return false, nil
			}
		}
	}
	return true, nil
}

func attrIndex(attrs []ra.Attr, a ra.Attr) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	return -1
}

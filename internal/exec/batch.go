package exec

import "repro/internal/value"

// This file holds the row-hashing and dedup primitives of the columnar
// executor. A "batch" here is a set of parallel []value.Handle columns of
// equal length (the storage behind Table); rows are compared and hashed by
// their handles, which is sound because every column of one evaluation is
// built over one interner, where handle equality is value equality.

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix so that
// sequential handle payloads spread over the hash space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const hashSeed = 0x9e3779b97f4a7c15

// hashRowAll hashes row i across all columns.
func hashRowAll(cols [][]value.Handle, i int) uint64 {
	h := uint64(hashSeed)
	for _, c := range cols {
		h = mix64(h ^ uint64(c[i]))
	}
	return h
}

// hashRowAt hashes row i across the columns at the given positions.
func hashRowAt(cols [][]value.Handle, pos []int, i int) uint64 {
	h := uint64(hashSeed)
	for _, p := range pos {
		h = mix64(h ^ uint64(cols[p][i]))
	}
	return h
}

// rowsEqAt reports whether rows i of a and j of b agree on every column
// (a and b must have the same width and share a handle space).
func rowsEqAt(a [][]value.Handle, i int, b [][]value.Handle, j int) bool {
	for k, c := range a {
		if c[i] != b[k][j] {
			return false
		}
	}
	return true
}

// rowSet is an open-addressing hash set of row ids over a batch's columns:
// idx holds row id + 1 (0 = empty slot) and values are compared back in the
// columns, so the set itself is one flat []int32 — no per-row keys, no
// boxing. Callers size it for the expected row count up front (setSlots);
// insert paths grow it by rehashing from the columns when it passes 3/4
// load.
type rowSet struct {
	idx  []int32
	mask uint32
	cnt  int
}

// setSlots returns the power-of-two slot count for n expected rows.
func setSlots(n int) int {
	s := 8
	for s < 2*n {
		s <<= 1
	}
	return s
}

// reset points the set at a zeroed table of at least slots entries,
// reusing buf when it is large enough. It returns the backing slice for
// the caller to retain.
func (s *rowSet) reset(buf []int32, slots int) []int32 {
	if cap(buf) < slots {
		buf = make([]int32, slots)
	} else {
		buf = buf[:slots]
		clear(buf)
	}
	s.idx = buf
	s.mask = uint32(slots - 1)
	s.cnt = 0
	return buf
}

// distinctOn returns the ids of the first occurrence of every distinct row
// of the n-row batch formed by cols, in first-seen order. Scratch memory
// comes from the evaluation arena.
func distinctOn(ctx *evalCtx, cols [][]value.Handle, n int) []int32 {
	var set rowSet
	set.reset(ctx.allocInts(setSlots(n))[:setSlots(n)], setSlots(n))
	ids := ctx.allocInts(n)
probe:
	for i := 0; i < n; i++ {
		h := hashRowAll(cols, i)
		slot := uint32(h) & set.mask
		for {
			e := set.idx[slot]
			if e == 0 {
				set.idx[slot] = int32(i) + 1
				ids = append(ids, int32(i))
				continue probe
			}
			if rowsEqAt(cols, int(e-1), cols, i) {
				continue probe
			}
			slot = (slot + 1) & set.mask
		}
	}
	return ids
}

package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/store"
	"repro/internal/value"
)

// Stats reports the cost of an evaluation.
type Stats struct {
	// Accessed is the number of tuples read from the database (index
	// fetches for bounded plans, scans for the baseline).
	Accessed int64
	// Fetched / Scanned split Accessed by access path.
	Fetched, Scanned int64
	// Duration is wall-clock evaluation time.
	Duration time.Duration
	// PlanLength is the number of plan steps (0 for the baseline).
	PlanLength int
}

// accCounter tallies one evaluation's data accesses locally, mirroring the
// store's accounting (Fetch: tuples returned, or 1 for an empty probe;
// Scan: tuples read). The DB-global counter is a delta shared by every
// concurrent execution, so per-run Stats must count independently or each
// query would be charged for its neighbours' accesses. Fields are atomic
// because RunParallel workers share one counter.
type accCounter struct {
	fetched, scanned int64
}

func (c *accCounter) addFetched(n int64) { atomic.AddInt64(&c.fetched, n) }
func (c *accCounter) addScanned(n int64) { atomic.AddInt64(&c.scanned, n) }

func (c *accCounter) stats(start time.Time, planLen int) Stats {
	st := Stats{
		Fetched:    atomic.LoadInt64(&c.fetched),
		Scanned:    atomic.LoadInt64(&c.scanned),
		Duration:   time.Since(start),
		PlanLength: planLen,
	}
	st.Accessed = st.Fetched + st.Scanned
	return st
}

// Run executes a bounded query plan against db (evalQP). Indices for every
// constraint referenced by fetch steps must have been built.
//
// Execution is columnar: every step produces an arena-backed batch table,
// the result is detached into self-contained heap storage, and the arena
// returns to its pool — so a steady-state run performs no per-tuple
// allocation. BOUNDED_EXEC=legacy selects the tuple-at-a-time evaluator
// instead (legacy.go).
func Run(p *plan.Plan, db *store.DB) (*Table, Stats, error) {
	if legacyDefault {
		return RunLegacy(p, db)
	}
	start := time.Now()
	var acc accCounter
	a := getArena()
	defer a.release()
	ctx := &evalCtx{a: a, in: a.in, acc: &acc}
	tables := make([]*Table, len(p.Steps))
	for i := range p.Steps {
		t, err := runStep(ctx, p, &p.Steps[i], tables, db)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("exec: step T%d (%s): %w", i, p.Steps[i].Op, err)
		}
		noteBatch(t.Len())
		tables[i] = t
	}
	return tables[p.Result].detach(), acc.stats(start, len(p.Steps)), nil
}

// runStep evaluates one plan step over the batches of its inputs. Every
// operator maintains the invariant that step outputs are duplicate-free:
// Const/Fetch/Project/Union deduplicate explicitly, and
// Filter/Product/Join/Diff preserve distinctness of distinct inputs.
func runStep(ctx *evalCtx, p *plan.Plan, s *plan.Step, tables []*Table, db *store.DB) (*Table, error) {
	switch s.Op {
	case plan.OpConst:
		t := newCtxTable(ctx, s.Cols, len(s.Rows))
		t.initSet(len(s.Rows))
		for _, r := range s.Rows {
			for j := range t.cols {
				t.pushCand(j, ctx.intern(r[j]))
			}
			t.commitCand()
		}
		return t, nil

	case plan.OpFetch:
		return runFetch(ctx, s, tables, db)

	case plan.OpProject:
		in := tables[s.L]
		t := newCtxTable(ctx, s.Cols, in.n)
		for j, p := range s.Pos {
			t.cols[j] = append(t.cols[j], in.cols[p][:in.n]...)
		}
		t.setLen(in.n)
		t.dedupAll()
		return t, nil

	case plan.OpFilter:
		in := tables[s.L]
		keep, err := filterRows(ctx, in, s.Conds)
		if err != nil {
			return nil, err
		}
		t := newCtxTable(ctx, s.Cols, len(keep))
		gatherInto(t, in.cols, keep)
		return t, nil

	case plan.OpProduct:
		return crossCtx(ctx, tables[s.L], tables[s.R], s.Cols), nil

	case plan.OpJoin:
		return natJoinCtx(ctx, tables[s.L], tables[s.R]), nil

	case plan.OpUnion:
		l, r := tables[s.L], tables[s.R]
		t := newCtxTable(ctx, s.Cols, l.n+r.n)
		for j := range t.cols {
			t.cols[j] = append(t.cols[j], l.cols[j][:l.n]...)
			t.cols[j] = append(t.cols[j], r.cols[j][:r.n]...)
		}
		t.setLen(l.n + r.n)
		t.dedupAll()
		return t, nil

	case plan.OpDiff:
		l, r := tables[s.L], tables[s.R]
		keep := diffRows(ctx, l, r)
		t := newCtxTable(ctx, s.Cols, len(keep))
		gatherInto(t, l.cols, keep)
		return t, nil

	default:
		return nil, fmt.Errorf("unknown operator %v", s.Op)
	}
}

// filterRows returns the ids of in's rows satisfying every condition,
// applying conditions column-wise: the first condition scans its columns,
// later ones compact the survivor list in place.
func filterRows(ctx *evalCtx, in *Table, conds []plan.Cond) ([]int32, error) {
	keep := ctx.allocInts(in.n)
	for i := 0; i < in.n; i++ {
		keep = append(keep, int32(i))
	}
	for _, c := range conds {
		if c.IsConst {
			ch := ctx.intern(c.C)
			col := in.cols[c.PosA]
			w := 0
			for _, id := range keep {
				if col[id] == ch {
					keep[w] = id
					w++
				}
			}
			keep = keep[:w]
		} else {
			ca, cb := in.cols[c.PosA], in.cols[c.PosB]
			w := 0
			for _, id := range keep {
				if ca[id] == cb[id] {
					keep[w] = id
					w++
				}
			}
			keep = keep[:w]
		}
	}
	return keep, nil
}

// diffRows returns the ids of l's rows that are absent from r. Both sides
// share the evaluation's interner, so rows compare by handles.
func diffRows(ctx *evalCtx, l, r *Table) []int32 {
	r.ensureSet()
	keep := ctx.allocInts(l.n)
	vals := ctx.allocHandles(len(l.cols))[:len(l.cols)]
	for i := 0; i < l.n; i++ {
		for j, c := range l.cols {
			vals[j] = c[i]
		}
		if !r.lookupRow(vals) {
			keep = append(keep, int32(i))
		}
	}
	return keep
}

// gatherInto fills t's columns with the identified rows of src and
// finalizes the row count (no dedup: a gather of distinct rows is
// distinct). t's columns must have capacity len(ids).
func gatherInto(t *Table, src [][]value.Handle, ids []int32) {
	for j := range t.cols {
		dst := t.cols[j][:len(ids)]
		sc := src[j]
		for k, id := range ids {
			dst[k] = sc[id]
		}
		t.cols[j] = dst
	}
	t.setLen(len(ids))
}

// crossCtx builds the cross product of two batches by tiling the left
// columns and repeating the right ones — distinct × distinct is distinct,
// so no dedup pass is needed.
func crossCtx(ctx *evalCtx, l, r *Table, outCols []string) *Table {
	m := l.n * r.n
	t := newCtxTable(ctx, outCols, m)
	for j := range l.cols {
		dst := t.cols[j][:m]
		sc := l.cols[j]
		w := 0
		for i := 0; i < l.n; i++ {
			v := sc[i]
			for k := 0; k < r.n; k++ {
				dst[w] = v
				w++
			}
		}
		t.cols[j] = dst
	}
	for j := range r.cols {
		dst := t.cols[len(l.cols)+j][:m]
		sc := r.cols[j][:r.n]
		for i := 0; i < l.n; i++ {
			copy(dst[i*r.n:(i+1)*r.n], sc)
		}
		t.cols[len(l.cols)+j] = dst
	}
	t.setLen(m)
	return t
}

// colIndex returns the position of label in cols, or -1 (allocation-free
// replacement for the legacy label→position maps; output widths are small).
func colIndex(cols []string, label string) int {
	for i, c := range cols {
		if c == label {
			return i
		}
	}
	return -1
}

// runFetch implements the fetch operator: the distinct X values of the
// input batch are computed column-wise, all index probes for the batch run
// under one store lock acquisition (store.FetchBatch), and fetched tuples
// are interned and emitted with intra-class equality and constant bindings
// enforced — the same per-tuple semantics as the legacy evaluator, with
// identical access accounting.
func runFetch(ctx *evalCtx, s *plan.Step, tables []*Table, db *store.DB) (*Table, error) {
	out := newCtxTable(ctx, s.Cols, 0)
	out.initSet(16)

	// Constant requirements by output position; MissingHandle = none.
	constAt := ctx.allocHandles(len(s.Cols))[:len(s.Cols)]
	for j := range constAt {
		constAt[j] = value.MissingHandle
	}
	for _, ce := range s.ConstEqs {
		p := colIndex(s.Cols, ce.Label)
		if p < 0 {
			return nil, fmt.Errorf("const requirement on unknown column %s", ce.Label)
		}
		constAt[p] = ctx.intern(ce.C)
	}
	// Index payload position -> output position.
	outPos := ctx.allocInts(len(s.FetchAttrs))[:len(s.FetchAttrs)]
	for i, lbl := range s.FetchLabels {
		p := colIndex(s.Cols, lbl)
		if p < 0 {
			return nil, fmt.Errorf("fetch label %s not among output columns", lbl)
		}
		outPos[i] = int32(p)
	}

	rowbuf := ctx.allocHandles(len(s.Cols))[:len(s.Cols)]
	seen := ctx.allocInts(len(s.Cols))[:len(s.Cols)]

	emit := func(fetched []value.Tuple) {
	rowLoop:
		for _, ft := range fetched {
			for j := range rowbuf {
				rowbuf[j] = value.NullHandle
				seen[j] = 0
			}
			for i, p := range outPos {
				h := ctx.intern(ft[i])
				if seen[p] != 0 {
					// Two index attributes share a class: values must agree.
					if rowbuf[p] != h {
						continue rowLoop
					}
					continue
				}
				if constAt[p] != value.MissingHandle && h != constAt[p] {
					continue rowLoop
				}
				rowbuf[p] = h
				seen[p] = 1
			}
			for j, h := range rowbuf {
				out.pushCand(j, h)
			}
			out.commitCand()
		}
	}

	countFetch := func(fetched []value.Tuple) {
		if len(fetched) == 0 {
			ctx.acc.addFetched(1) // empty probe still touches the index once
		} else {
			ctx.acc.addFetched(int64(len(fetched)))
		}
	}

	if len(s.XCols) == 0 {
		fetched, err := db.Fetch(s.Con, nil)
		if err != nil {
			return nil, err
		}
		countFetch(fetched)
		emit(fetched)
		return out, nil
	}

	in := tables[s.L]
	xcols := make([][]value.Handle, len(s.XCols))
	for i, lbl := range s.XCols {
		p := colIndex(in.Cols, lbl)
		if p < 0 {
			return nil, fmt.Errorf("fetch X column %s missing from input", lbl)
		}
		xcols[i] = in.cols[p]
	}
	ids := distinctOn(ctx, xcols, in.n)
	xs := make([]value.Tuple, len(ids))
	flat := make(value.Tuple, len(ids)*len(xcols))
	for k, id := range ids {
		row := flat[k*len(xcols) : (k+1)*len(xcols) : (k+1)*len(xcols)]
		for j := range xcols {
			row[j] = ctx.decode(xcols[j][id])
		}
		xs[k] = row
	}
	err := db.FetchBatch(s.Con, xs, func(_ int, fetched []value.Tuple) {
		countFetch(fetched)
		emit(fetched)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// natJoinCtx computes the natural join of two batches sharing the
// evaluation's interner: the right side is hashed on the shared labels
// once per batch (with a signature pre-filter when it is large enough),
// the left side probes, and matched pairs are gathered column-wise.
func natJoinCtx(ctx *evalCtx, l, r *Table) *Table {
	var lShared, rShared, rRest []int
	for i, c := range r.Cols {
		if p := colIndex(l.Cols, c); p >= 0 {
			lShared = append(lShared, p)
			rShared = append(rShared, i)
		} else {
			rRest = append(rRest, i)
		}
	}
	outCols := append([]string{}, l.Cols...)
	for _, i := range rRest {
		outCols = append(outCols, r.Cols[i])
	}

	li, ri := hashJoinPairs(ctx, l, r, lShared, rShared)

	out := newCtxTable(ctx, outCols, len(li))
	for j := range l.cols {
		dst := out.cols[j][:len(li)]
		sc := l.cols[j]
		for w, id := range li {
			dst[w] = sc[id]
		}
		out.cols[j] = dst
	}
	for k, rj := range rRest {
		dst := out.cols[len(l.cols)+k][:len(ri)]
		sc := r.cols[rj]
		for w, id := range ri {
			dst[w] = sc[id]
		}
		out.cols[len(l.cols)+k] = dst
	}
	out.setLen(len(li))
	return out
}

// hashJoinPairs returns the matching (left row, right row) id pairs of an
// equi-join on the given key positions. The right side is the build side;
// a signature filter over its key hashes short-circuits probe misses.
func hashJoinPairs(ctx *evalCtx, l, r *Table, lkey, rkey []int) (li, ri []int32) {
	nb := setSlots(r.n)
	head := ctx.allocInts(nb)[:nb]
	clear(head)
	next := ctx.allocInts(r.n)[:r.n]
	hs := ctx.allocHandles(r.n)[:r.n]
	for i := 0; i < r.n; i++ {
		h := hashRowAt(r.cols, rkey, i)
		hs[i] = value.Handle(h)
		b := uint32(h) & uint32(nb-1)
		next[i] = head[b]
		head[b] = int32(i) + 1
	}
	sig := newSigFilter(ctx, hs)

	li = ctx.allocInts(l.n)
	ri = ctx.allocInts(l.n)
	var nHit, nMiss int64
probe:
	for i := 0; i < l.n; i++ {
		h := hashRowAt(l.cols, lkey, i)
		if sig != nil {
			if !sig.may(h) {
				nHit++
				continue probe
			}
			nMiss++
		}
		for e := head[uint32(h)&uint32(nb-1)]; e != 0; e = next[e-1] {
			eq := true
			for k, lp := range lkey {
				if l.cols[lp][i] != r.cols[rkey[k]][e-1] {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
			if len(li) == cap(li) {
				li = ctx.growInts(li, 1)
			}
			if len(ri) == cap(ri) {
				ri = ctx.growInts(ri, 1)
			}
			li = append(li, int32(i))
			ri = append(ri, int32(e-1))
		}
	}
	if sig != nil {
		cSigHit.Add(nHit)
		cSigMiss.Add(nMiss)
	}
	return li, ri
}

// NatJoin computes the natural join of two tables on their shared column
// labels, with output columns l.Cols followed by r's non-shared columns.
// The operands may come from different interners; the result owns a
// detached handle space covering both.
func NatJoin(l, r *Table) *Table {
	s := l.in.CloneTables()
	r2 := alignTo(s, r)
	l2 := &Table{Cols: l.Cols, in: s, cols: l.cols, n: l.n}
	ctx := &evalCtx{in: s}
	out := natJoinCtx(ctx, l2, r2)
	noteBatch(out.n)
	return out
}

// alignTo re-expresses t in the handle space of s, interning values s has
// not seen. s must be privately owned by the caller; t is read-only.
func alignTo(s *value.Interner, t *Table) *Table {
	strs, bigs := t.in.InternRemap(s)
	cols := make([][]value.Handle, len(t.cols))
	for j, c := range t.cols {
		nc := make([]value.Handle, t.n)
		for i := 0; i < t.n; i++ {
			nc[i] = c[i].Remap(strs, bigs)
		}
		cols[j] = nc
	}
	return &Table{Cols: t.Cols, in: s, cols: cols, n: t.n}
}

package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/store"
	"repro/internal/value"
)

// Stats reports the cost of an evaluation.
type Stats struct {
	// Accessed is the number of tuples read from the database (index
	// fetches for bounded plans, scans for the baseline).
	Accessed int64
	// Fetched / Scanned split Accessed by access path.
	Fetched, Scanned int64
	// Duration is wall-clock evaluation time.
	Duration time.Duration
	// PlanLength is the number of plan steps (0 for the baseline).
	PlanLength int
}

// accCounter tallies one evaluation's data accesses locally, mirroring the
// store's accounting (Fetch: tuples returned, or 1 for an empty probe;
// Scan: tuples read). The DB-global counter is a delta shared by every
// concurrent execution, so per-run Stats must count independently or each
// query would be charged for its neighbours' accesses. Fields are atomic
// because RunParallel workers share one counter.
type accCounter struct {
	fetched, scanned int64
}

func (c *accCounter) addFetched(n int64) { atomic.AddInt64(&c.fetched, n) }
func (c *accCounter) addScanned(n int64) { atomic.AddInt64(&c.scanned, n) }

func (c *accCounter) stats(start time.Time, planLen int) Stats {
	st := Stats{
		Fetched:    atomic.LoadInt64(&c.fetched),
		Scanned:    atomic.LoadInt64(&c.scanned),
		Duration:   time.Since(start),
		PlanLength: planLen,
	}
	st.Accessed = st.Fetched + st.Scanned
	return st
}

// Run executes a bounded query plan against db (evalQP). Indices for every
// constraint referenced by fetch steps must have been built.
func Run(p *plan.Plan, db *store.DB) (*Table, Stats, error) {
	start := time.Now()
	var acc accCounter
	tables := make([]*Table, len(p.Steps))
	for i := range p.Steps {
		t, err := runStep(p, &p.Steps[i], tables, db, &acc)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("exec: step T%d (%s): %w", i, p.Steps[i].Op, err)
		}
		tables[i] = t
	}
	return tables[p.Result], acc.stats(start, len(p.Steps)), nil
}

func runStep(p *plan.Plan, s *plan.Step, tables []*Table, db *store.DB, acc *accCounter) (*Table, error) {
	switch s.Op {
	case plan.OpConst:
		t := NewTable(s.Cols)
		for _, r := range s.Rows {
			t.Add(r)
		}
		return t, nil
	case plan.OpFetch:
		return runFetch(s, tables, db, acc)
	case plan.OpProject:
		in := tables[s.L]
		t := NewTable(s.Cols)
		for _, r := range in.rows {
			t.Add(r.Project(s.Pos))
		}
		return t, nil
	case plan.OpFilter:
		in := tables[s.L]
		t := NewTable(s.Cols)
		for _, r := range in.rows {
			if matches(r, s.Conds) {
				t.Add(r)
			}
		}
		return t, nil
	case plan.OpProduct:
		l, r := tables[s.L], tables[s.R]
		t := NewTable(s.Cols)
		for _, a := range l.rows {
			for _, b := range r.rows {
				row := make(value.Tuple, 0, len(a)+len(b))
				row = append(row, a...)
				row = append(row, b...)
				t.Add(row)
			}
		}
		return t, nil
	case plan.OpJoin:
		return NatJoin(tables[s.L], tables[s.R]), nil
	case plan.OpUnion:
		l, r := tables[s.L], tables[s.R]
		t := NewTable(s.Cols)
		for _, a := range l.rows {
			t.Add(a)
		}
		for _, b := range r.rows {
			t.Add(b)
		}
		return t, nil
	case plan.OpDiff:
		l, r := tables[s.L], tables[s.R]
		t := NewTable(s.Cols)
		for k, a := range l.rows {
			if _, ok := r.rows[k]; !ok {
				t.Add(a)
			}
		}
		return t, nil
	default:
		return nil, fmt.Errorf("unknown operator %v", s.Op)
	}
}

func matches(r value.Tuple, conds []plan.Cond) bool {
	for _, c := range conds {
		if c.IsConst {
			if r[c.PosA] != c.C {
				return false
			}
		} else if r[c.PosA] != r[c.PosB] {
			return false
		}
	}
	return true
}

// runFetch implements the fetch operator: for each distinct X value of the
// input it retrieves the distinct XY projections via the constraint's
// index, maps index attributes to output labels, and enforces intra-class
// equality and constant bindings.
func runFetch(s *plan.Step, tables []*Table, db *store.DB, acc *accCounter) (*Table, error) {
	out := NewTable(s.Cols)

	// Output label -> position, constant requirements by position.
	colPos := make(map[string]int, len(s.Cols))
	for i, c := range s.Cols {
		colPos[c] = i
	}
	constAt := make([]value.Value, len(s.Cols))
	constSet := make([]bool, len(s.Cols))
	for _, ce := range s.ConstEqs {
		p, ok := colPos[ce.Label]
		if !ok {
			return nil, fmt.Errorf("const requirement on unknown column %s", ce.Label)
		}
		constAt[p] = ce.C
		constSet[p] = true
	}
	// Index payload position -> output position.
	outPos := make([]int, len(s.FetchAttrs))
	for i, lbl := range s.FetchLabels {
		p, ok := colPos[lbl]
		if !ok {
			return nil, fmt.Errorf("fetch label %s not among output columns", lbl)
		}
		outPos[i] = p
	}

	emit := func(fetched []value.Tuple) {
	rowLoop:
		for _, ft := range fetched {
			row := make(value.Tuple, len(s.Cols))
			seen := make([]bool, len(s.Cols))
			for i, p := range outPos {
				v := ft[i]
				if seen[p] {
					// Two index attributes share a class: values must agree.
					if row[p] != v {
						continue rowLoop
					}
					continue
				}
				if constSet[p] && v != constAt[p] {
					continue rowLoop
				}
				row[p] = v
				seen[p] = true
			}
			out.Add(row)
		}
	}

	countFetch := func(fetched []value.Tuple) {
		if len(fetched) == 0 {
			acc.addFetched(1) // empty probe still touches the index once
		} else {
			acc.addFetched(int64(len(fetched)))
		}
	}

	if len(s.XCols) == 0 {
		fetched, err := db.Fetch(s.Con, nil)
		if err != nil {
			return nil, err
		}
		countFetch(fetched)
		emit(fetched)
		return out, nil
	}

	in := tables[s.L]
	xpos := make([]int, len(s.XCols))
	for i, lbl := range s.XCols {
		p := in.ColPos(lbl)
		if p < 0 {
			return nil, fmt.Errorf("fetch X column %s missing from input", lbl)
		}
		xpos[i] = p
	}
	seenX := map[string]bool{}
	for _, r := range in.rows {
		xv := r.Project(xpos)
		k := xv.Key()
		if seenX[k] {
			continue
		}
		seenX[k] = true
		fetched, err := db.Fetch(s.Con, xv)
		if err != nil {
			return nil, err
		}
		countFetch(fetched)
		emit(fetched)
	}
	return out, nil
}

// NatJoin computes the natural join of two tables on their shared column
// labels, with output columns l.Cols followed by r's non-shared columns.
func NatJoin(l, r *Table) *Table {
	shared := make([]string, 0, 4)
	lset := map[string]int{}
	for i, c := range l.Cols {
		lset[c] = i
	}
	var rShared, rRest []int
	for i, c := range r.Cols {
		if _, ok := lset[c]; ok {
			shared = append(shared, c)
			rShared = append(rShared, i)
		} else {
			rRest = append(rRest, i)
		}
	}
	outCols := append([]string{}, l.Cols...)
	for _, i := range rRest {
		outCols = append(outCols, r.Cols[i])
	}
	out := NewTable(outCols)

	lShared := make([]int, len(shared))
	for i, c := range shared {
		lShared[i] = lset[c]
	}
	// Hash the right side on the shared key.
	hash := map[string][]value.Tuple{}
	for _, rr := range r.rows {
		k := value.KeyOf(rr, rShared)
		hash[k] = append(hash[k], rr)
	}
	for _, lr := range l.rows {
		k := value.KeyOf(lr, lShared)
		for _, rr := range hash[k] {
			row := make(value.Tuple, 0, len(outCols))
			row = append(row, lr...)
			for _, i := range rRest {
				row = append(row, rr[i])
			}
			out.Add(row)
		}
	}
	return out
}

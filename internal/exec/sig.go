package exec

import "repro/internal/value"

// sigFilter is a batch-level signature pre-filter for hash joins, after
// the two-level signature scheme of SchmittKAMM23: the build side's key
// hashes are summarized into a small bitmap once per batch, and probe keys
// whose signature bits are absent skip the hash-table walk entirely. Two
// bits per key are taken from independent halves of the 64-bit row hash,
// so the filter costs one extra word load per probe and pays off whenever
// join selectivity is low (the common case for residue links and
// constraint chases). Words are stored as value.Handle so the bitmap can
// live in the arena's 8-byte slabs; Handle is a uint64 underneath.
type sigFilter struct {
	words []value.Handle
	mask  uint32 // len(words) - 1
}

// sigMinRows gates filter construction: tiny build sides probe faster
// than they filter.
const sigMinRows = 16

// newSigFilter builds a filter over the build side's key hashes, sized at
// roughly 16 bits per key. Returns nil below the build threshold.
func newSigFilter(ctx *evalCtx, hashes []value.Handle) *sigFilter {
	if len(hashes) < sigMinRows {
		return nil
	}
	words := 4
	for words*64 < 16*len(hashes) {
		words <<= 1
	}
	w := ctx.allocHandles(words)[:words]
	clear(w)
	f := &sigFilter{words: w, mask: uint32(words - 1)}
	for _, hh := range hashes {
		h := uint64(hh)
		f.words[uint32(h>>6)&f.mask] |= 1 << (h & 63)
		f.words[uint32(h>>38)&f.mask] |= 1 << ((h >> 32) & 63)
	}
	cSigBuilt.Add(1)
	return f
}

// may reports whether a key with hash h can be on the build side; false
// is definitive.
func (f *sigFilter) may(h uint64) bool {
	return f.words[uint32(h>>6)&f.mask]&(1<<(h&63)) != 0 &&
		f.words[uint32(h>>38)&f.mask]&(1<<((h>>32)&63)) != 0
}

package exec

import (
	"sync"

	"repro/internal/value"
)

// chunkHandles is the number of 8-byte slots per arena chunk (128 KiB).
// Column requests larger than a chunk get a dedicated chunk of their exact
// size, which is dropped again at release so one huge intermediate does
// not pin memory in the pool forever.
const chunkHandles = 16 << 10

// arena is the per-request scratch space of the batched executor: a string
// interner plus bump-allocated slabs for column data ([]value.Handle,
// doubling as []uint64 hash storage) and row-id tables ([]int32). All
// intermediates of one evaluation come from its arena; at the end the
// result batch is detached into a self-contained Table and the arena goes
// back to a sync.Pool wholesale, so steady-state hot-path execution
// allocates (almost) nothing.
//
// An arena is single-goroutine; RunParallel gives each worker its own
// arena and shares only the interner behind a mutex (see evalCtx).
type arena struct {
	in *value.Interner

	hChunks  [][]value.Handle // fixed-size handle chunks, reused across requests
	hCur     int              // index of the chunk being bumped
	hUsed    int              // slots used in the current chunk
	hBig     [][]value.Handle // oversized one-off chunks, dropped at release
	iChunks  [][]int32
	iCur     int
	iUsed    int
	iBig     [][]int32
	retained int64 // bytes held by the reusable chunks
}

// arenaPool recycles arenas across requests. Pool misses are counted so
// /stats can report the executor's pool hit rate.
var arenaPool = sync.Pool{New: func() any {
	cArenaNew.Add(1)
	return &arena{in: value.NewInterner()}
}}

// getArena takes an arena from the pool and marks its memory in use.
func getArena() *arena {
	cArenaGet.Add(1)
	a := arenaPool.Get().(*arena)
	cArenaInUse.Add(a.retained)
	return a
}

// release resets the arena and returns it to the pool. Oversized chunks
// are dropped; regular chunks and the interner's capacity are retained.
func (a *arena) release() {
	a.hBig = nil
	a.iBig = nil
	a.hCur, a.hUsed = 0, 0
	a.iCur, a.iUsed = 0, 0
	a.in.Reset()
	cArenaInUse.Add(-a.retained)
	arenaPool.Put(a)
}

// handles returns a zero-length slice with capacity n backed by the arena.
func (a *arena) handles(n int) []value.Handle {
	if n > chunkHandles {
		c := make([]value.Handle, 0, n)
		a.hBig = append(a.hBig, c)
		return c
	}
	for {
		if a.hCur == len(a.hChunks) {
			a.hChunks = append(a.hChunks, make([]value.Handle, chunkHandles))
			a.retained += chunkHandles * 8
			cArenaInUse.Add(chunkHandles * 8)
		}
		if chunkHandles-a.hUsed >= n {
			c := a.hChunks[a.hCur]
			s := c[a.hUsed : a.hUsed : a.hUsed+n]
			a.hUsed += n
			return s
		}
		a.hCur++
		a.hUsed = 0
	}
}

// growHandles returns s with at least extra free capacity, copying into a
// larger arena slab when needed (the abandoned slab space is reclaimed at
// release).
func (a *arena) growHandles(s []value.Handle, extra int) []value.Handle {
	if cap(s)-len(s) >= extra {
		return s
	}
	want := 2 * cap(s)
	if want < len(s)+extra {
		want = len(s) + extra
	}
	if want < 64 {
		want = 64
	}
	out := a.handles(want)
	return append(out, s...)
}

// ints returns a zero-length []int32 with capacity n backed by the arena.
func (a *arena) ints(n int) []int32 {
	if n > 4*chunkHandles { // int32 chunks hold 4x the slots of a handle chunk
		c := make([]int32, 0, n)
		a.iBig = append(a.iBig, c)
		return c
	}
	for {
		if a.iCur == len(a.iChunks) {
			a.iChunks = append(a.iChunks, make([]int32, 4*chunkHandles))
			a.retained += 4 * chunkHandles * 4
			cArenaInUse.Add(4 * chunkHandles * 4)
		}
		if 4*chunkHandles-a.iUsed >= n {
			c := a.iChunks[a.iCur]
			s := c[a.iUsed : a.iUsed : a.iUsed+n]
			a.iUsed += n
			return s
		}
		a.iCur++
		a.iUsed = 0
	}
}

// growInts is growHandles for []int32.
func (a *arena) growInts(s []int32, extra int) []int32 {
	if cap(s)-len(s) >= extra {
		return s
	}
	want := 2 * cap(s)
	if want < len(s)+extra {
		want = len(s) + extra
	}
	if want < 64 {
		want = 64
	}
	out := a.ints(want)
	return append(out, s...)
}

// zeroedInts returns an n-slot []int32 filled with zeroes (chunk reuse
// leaves stale data behind).
func (a *arena) zeroedInts(n int) []int32 {
	s := a.ints(n)[:n]
	clear(s)
	return s
}

// evalCtx carries one evaluation's shared state: the interner (optionally
// mutex-guarded when RunParallel workers intern concurrently), the memory
// arena of the current worker, and the access counter.
type evalCtx struct {
	a   *arena
	in  *value.Interner
	mu  *sync.Mutex // nil in single-goroutine runs
	acc *accCounter
}

// allocHandles returns a zero-length handle slice with capacity n, from
// the worker's arena when it has one and the heap otherwise (compat-table
// operations run arena-less).
func (c *evalCtx) allocHandles(n int) []value.Handle {
	if c.a != nil {
		return c.a.handles(n)
	}
	return make([]value.Handle, 0, n)
}

// allocInts is allocHandles for []int32.
func (c *evalCtx) allocInts(n int) []int32 {
	if c.a != nil {
		return c.a.ints(n)
	}
	return make([]int32, 0, n)
}

// growHandles extends s by at least extra capacity from the same source
// allocHandles used.
func (c *evalCtx) growHandles(s []value.Handle, extra int) []value.Handle {
	if c.a != nil {
		return c.a.growHandles(s, extra)
	}
	return s // heap slices grow through append
}

// growInts is growHandles for []int32.
func (c *evalCtx) growInts(s []int32, extra int) []int32 {
	if c.a != nil {
		return c.a.growInts(s, extra)
	}
	return s
}

// intern returns v's handle. Inline ints never touch shared state; strings
// and overflow ints lock when the interner is shared.
func (c *evalCtx) intern(v value.Value) value.Handle {
	switch v.K {
	case value.Int:
		if h, ok := value.IntHandle(v.I); ok {
			return h
		}
	case value.Null:
		return value.NullHandle
	}
	if c.mu == nil {
		return c.in.Intern(v)
	}
	c.mu.Lock()
	h := c.in.Intern(v)
	c.mu.Unlock()
	return h
}

// decode returns the value h encodes, locking when the interner is shared
// (a concurrent intern may be growing the tables).
func (c *evalCtx) decode(h value.Handle) value.Value {
	if c.mu == nil {
		return c.in.Decode(h)
	}
	c.mu.Lock()
	v := c.in.Decode(h)
	c.mu.Unlock()
	return v
}

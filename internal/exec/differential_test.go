package exec_test

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/workload"
)

// TestDifferentialRandomQueries is the repository's strongest correctness
// check: on every benchmark dataset, for dozens of randomly generated RA
// queries that are covered, the bounded plan (evalQP) must return exactly
// the conventional evaluator's answer (evalDBMS) while performing zero full
// scans and strictly fewer accesses.
func TestDifferentialRandomQueries(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			db, err := d.Gen(1.0/16, 11)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			params := workload.DefaultQueryParams()
			covered, executed := 0, 0
			for i := 0; i < 80; i++ {
				params.Sel = 3 + rng.Intn(6)
				params.Join = rng.Intn(4)
				params.UniDiff = rng.Intn(3)
				q, err := d.RandomQuery(params, rng)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				res, err := cover.Check(q, d.Schema, d.Access)
				if err != nil {
					t.Fatalf("query %d check: %v", i, err)
				}
				if !res.Covered {
					continue
				}
				covered++
				p, err := plan.Build(res)
				if err != nil {
					t.Fatalf("query %d plan: %v\n%s", i, err, q)
				}
				if err := p.Validate(d.Access); err != nil {
					t.Fatalf("query %d invalid plan: %v", i, err)
				}
				got, st, err := exec.Run(p, db)
				if err != nil {
					t.Fatalf("query %d run: %v\nquery: %s\nplan:\n%s", i, err, q, p)
				}
				want, _, err := exec.RunBaseline(q, d.Schema, db)
				if err != nil {
					t.Fatalf("query %d baseline: %v", i, err)
				}
				if !got.Equal(want) {
					t.Fatalf("query %d answers differ (seed-reproducible)\nquery: %s\nbounded %d rows:\n%s\nbaseline %d rows:\n%s\nplan:\n%s",
						i, q, got.Len(), got, want.Len(), want, p)
				}
				if st.Scanned != 0 {
					t.Errorf("query %d: bounded plan scanned %d tuples", i, st.Scanned)
				}
				executed++
			}
			if covered < 10 {
				t.Errorf("only %d covered queries in the sample — differential test underpowered", covered)
			}
			t.Logf("%s: %d covered queries validated differentially", d.Name, executed)
		})
	}
}

// TestDifferentialFacebookSizes runs the Example 1 covered queries through
// the differential check at several dataset sizes, confirming correctness
// is scale-independent.
func TestDifferentialFacebookSizes(t *testing.T) {
	for _, persons := range []int{40, 160, 640} {
		cfg := workload.DefaultFacebookConfig()
		cfg.Persons = persons
		cfg.Cafes = persons/2 + 1
		cfg.Seed = int64(persons)
		fb, db, err := workload.GenFacebook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for name, q := range map[string]ra.Query{
			"Q1":      fb.Q1(),
			"Q3":      fb.Q3(),
			"Q0Prime": fb.Q0Prime(),
		} {
			norm, err := ra.Normalize(q, fb.Schema)
			if err != nil {
				t.Fatalf("%s@%d: %v", name, persons, err)
			}
			res, err := cover.Check(norm, fb.Schema, fb.Access)
			if err != nil {
				t.Fatalf("%s@%d: %v", name, persons, err)
			}
			p, err := plan.Build(res)
			if err != nil {
				t.Fatalf("%s@%d: %v", name, persons, err)
			}
			got, _, err := exec.Run(p, db)
			if err != nil {
				t.Fatalf("%s@%d: %v", name, persons, err)
			}
			want, _, err := exec.RunBaseline(norm, fb.Schema, db)
			if err != nil {
				t.Fatalf("%s@%d: %v", name, persons, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s@%d: bounded and baseline answers differ", name, persons)
			}
		}
	}
}

package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// randTable builds a random table over the given columns.
func randTable(rng *rand.Rand, cols []string, maxRows, domain int) *Table {
	t := NewTable(cols)
	n := rng.Intn(maxRows + 1)
	for i := 0; i < n; i++ {
		row := make(value.Tuple, len(cols))
		for j := range row {
			row[j] = value.NewInt(int64(rng.Intn(domain)))
		}
		t.Add(row)
	}
	return t
}

// TestNatJoinCommutesOnContent: |L ⋈ R| == |R ⋈ L| and the tuple sets agree
// up to column order.
func TestNatJoinCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randTable(rng, []string{"a", "b"}, 8, 3)
		r := randTable(rng, []string{"b", "c"}, 8, 3)
		lr := NatJoin(l, r)
		rl := NatJoin(r, l)
		if lr.Len() != rl.Len() {
			return false
		}
		// Compare as sets of (a,b,c) regardless of column order.
		canon := func(tb *Table) map[string]bool {
			ia, ib, ic := tb.ColPos("a"), tb.ColPos("b"), tb.ColPos("c")
			out := map[string]bool{}
			for _, row := range tb.Tuples() {
				out[value.KeyOf(row, []int{ia, ib, ic})] = true
			}
			return out
		}
		ca, cb := canon(lr), canon(rl)
		for k := range ca {
			if !cb[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNatJoinIdempotent: T ⋈ T = T.
func TestNatJoinIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng, []string{"a", "b"}, 10, 4)
		j := NatJoin(tb, tb)
		return j.Equal(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNatJoinSubsetOfProduct: the join never produces more rows than the
// Cartesian product, and with no shared columns exactly matches it.
func TestNatJoinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randTable(rng, []string{"a"}, 6, 3)
		r := randTable(rng, []string{"b"}, 6, 3)
		j := NatJoin(l, r)
		return j.Len() == l.Len()*r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randTable(rng, []string{"a", "b"}, 6, 3)
		r := randTable(rng, []string{"b", "c"}, 6, 3)
		j := NatJoin(l, r)
		return j.Len() <= l.Len()*r.Len()
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestJoinWithGuardTables: joining with {()} is identity, with {} is empty
// (the zero-column boolean guard semantics the indexing plans rely on).
func TestJoinGuardLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randTable(rng, []string{"a", "b"}, 10, 4)
		unit := NewTable(nil)
		unit.Add(value.Tuple{})
		empty := NewTable(nil)
		if !NatJoin(tb, unit).Equal(tb) {
			return false
		}
		return NatJoin(tb, empty).Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

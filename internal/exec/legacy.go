// The legacy tuple-at-a-time evaluator: the executor as it was before the
// columnar refactor, kept as (a) the differential oracle FuzzBatchExec and
// the batch-vs-legacy walls compare against, and (b) a build-internal
// escape hatch — setting BOUNDED_EXEC=legacy routes Run, RunParallel and
// RunBaseline through it process-wide. It allocates a map and a key string
// per tuple per operator by design; the allocation benchmarks use it as
// the "before" measurement.
package exec

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// legacyDefault routes the exported entry points through the legacy
// evaluator when the process was started with BOUNDED_EXEC=legacy.
var legacyDefault = os.Getenv("BOUNDED_EXEC") == "legacy"

// legacyTable is the pre-refactor row-map table: tuples keyed by their
// encoded strings.
type legacyTable struct {
	cols []string
	rows map[string]value.Tuple
}

func newLegacyTable(cols []string) *legacyTable {
	return &legacyTable{cols: cols, rows: map[string]value.Tuple{}}
}

func (t *legacyTable) add(row value.Tuple) { t.rows[row.Key()] = row }

func (t *legacyTable) colPos(label string) int {
	for i, c := range t.cols {
		if c == label {
			return i
		}
	}
	return -1
}

// toTable converts the map representation into the columnar Table the
// public API returns.
func (t *legacyTable) toTable() *Table {
	out := NewTableSized(t.cols, len(t.rows))
	for _, r := range t.rows {
		out.Add(r)
	}
	return out
}

// RunLegacy executes a bounded plan with the tuple-at-a-time evaluator.
// Answers and Stats match Run exactly; only the execution strategy (and
// its allocation profile) differs.
func RunLegacy(p *plan.Plan, db *store.DB) (*Table, Stats, error) {
	start := time.Now()
	var acc accCounter
	tables := make([]*legacyTable, len(p.Steps))
	for i := range p.Steps {
		t, err := runStepLegacy(&p.Steps[i], tables, db, &acc)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("exec: step T%d (%s): %w", i, p.Steps[i].Op, err)
		}
		tables[i] = t
	}
	return tables[p.Result].toTable(), acc.stats(start, len(p.Steps)), nil
}

func runStepLegacy(s *plan.Step, tables []*legacyTable, db *store.DB, acc *accCounter) (*legacyTable, error) {
	switch s.Op {
	case plan.OpConst:
		t := newLegacyTable(s.Cols)
		for _, r := range s.Rows {
			t.add(r)
		}
		return t, nil
	case plan.OpFetch:
		return runFetchLegacy(s, tables, db, acc)
	case plan.OpProject:
		in := tables[s.L]
		t := newLegacyTable(s.Cols)
		for _, r := range in.rows {
			t.add(r.Project(s.Pos))
		}
		return t, nil
	case plan.OpFilter:
		in := tables[s.L]
		t := newLegacyTable(s.Cols)
		for _, r := range in.rows {
			if matchesLegacy(r, s.Conds) {
				t.add(r)
			}
		}
		return t, nil
	case plan.OpProduct:
		l, r := tables[s.L], tables[s.R]
		t := newLegacyTable(s.Cols)
		for _, a := range l.rows {
			for _, b := range r.rows {
				row := make(value.Tuple, 0, len(a)+len(b))
				row = append(row, a...)
				row = append(row, b...)
				t.add(row)
			}
		}
		return t, nil
	case plan.OpJoin:
		return natJoinLegacy(tables[s.L], tables[s.R]), nil
	case plan.OpUnion:
		l, r := tables[s.L], tables[s.R]
		t := newLegacyTable(s.Cols)
		for _, a := range l.rows {
			t.add(a)
		}
		for _, b := range r.rows {
			t.add(b)
		}
		return t, nil
	case plan.OpDiff:
		l, r := tables[s.L], tables[s.R]
		t := newLegacyTable(s.Cols)
		for k, a := range l.rows {
			if _, ok := r.rows[k]; !ok {
				t.add(a)
			}
		}
		return t, nil
	default:
		return nil, fmt.Errorf("unknown operator %v", s.Op)
	}
}

func matchesLegacy(r value.Tuple, conds []plan.Cond) bool {
	for _, c := range conds {
		if c.IsConst {
			if r[c.PosA] != c.C {
				return false
			}
		} else if r[c.PosA] != r[c.PosB] {
			return false
		}
	}
	return true
}

// runFetchLegacy is the tuple-at-a-time fetch operator: one store probe
// per distinct X value, per-row output assembly with intra-class equality
// and constant checks.
func runFetchLegacy(s *plan.Step, tables []*legacyTable, db *store.DB, acc *accCounter) (*legacyTable, error) {
	out := newLegacyTable(s.Cols)

	colPos := make(map[string]int, len(s.Cols))
	for i, c := range s.Cols {
		colPos[c] = i
	}
	constAt := make([]value.Value, len(s.Cols))
	constSet := make([]bool, len(s.Cols))
	for _, ce := range s.ConstEqs {
		p, ok := colPos[ce.Label]
		if !ok {
			return nil, fmt.Errorf("const requirement on unknown column %s", ce.Label)
		}
		constAt[p] = ce.C
		constSet[p] = true
	}
	outPos := make([]int, len(s.FetchAttrs))
	for i, lbl := range s.FetchLabels {
		p, ok := colPos[lbl]
		if !ok {
			return nil, fmt.Errorf("fetch label %s not among output columns", lbl)
		}
		outPos[i] = p
	}

	emit := func(fetched []value.Tuple) {
	rowLoop:
		for _, ft := range fetched {
			row := make(value.Tuple, len(s.Cols))
			seen := make([]bool, len(s.Cols))
			for i, p := range outPos {
				v := ft[i]
				if seen[p] {
					// Two index attributes share a class: values must agree.
					if row[p] != v {
						continue rowLoop
					}
					continue
				}
				if constSet[p] && v != constAt[p] {
					continue rowLoop
				}
				row[p] = v
				seen[p] = true
			}
			out.add(row)
		}
	}

	countFetch := func(fetched []value.Tuple) {
		if len(fetched) == 0 {
			acc.addFetched(1) // empty probe still touches the index once
		} else {
			acc.addFetched(int64(len(fetched)))
		}
	}

	if len(s.XCols) == 0 {
		fetched, err := db.Fetch(s.Con, nil)
		if err != nil {
			return nil, err
		}
		countFetch(fetched)
		emit(fetched)
		return out, nil
	}

	in := tables[s.L]
	xpos := make([]int, len(s.XCols))
	for i, lbl := range s.XCols {
		p := in.colPos(lbl)
		if p < 0 {
			return nil, fmt.Errorf("fetch X column %s missing from input", lbl)
		}
		xpos[i] = p
	}
	seenX := map[string]bool{}
	for _, r := range in.rows {
		xv := r.Project(xpos)
		k := xv.Key()
		if seenX[k] {
			continue
		}
		seenX[k] = true
		fetched, err := db.Fetch(s.Con, xv)
		if err != nil {
			return nil, err
		}
		countFetch(fetched)
		emit(fetched)
	}
	return out, nil
}

// natJoinLegacy is the tuple-at-a-time natural join (right side hashed by
// encoded key strings).
func natJoinLegacy(l, r *legacyTable) *legacyTable {
	lset := map[string]int{}
	for i, c := range l.cols {
		lset[c] = i
	}
	var lShared, rShared, rRest []int
	for i, c := range r.cols {
		if p, ok := lset[c]; ok {
			lShared = append(lShared, p)
			rShared = append(rShared, i)
		} else {
			rRest = append(rRest, i)
		}
	}
	outCols := append([]string{}, l.cols...)
	for _, i := range rRest {
		outCols = append(outCols, r.cols[i])
	}
	out := newLegacyTable(outCols)

	hash := map[string][]value.Tuple{}
	for _, rr := range r.rows {
		k := value.KeyOf(rr, rShared)
		hash[k] = append(hash[k], rr)
	}
	for _, lr := range l.rows {
		k := value.KeyOf(lr, lShared)
		for _, rr := range hash[k] {
			row := make(value.Tuple, 0, len(outCols))
			row = append(row, lr...)
			for _, i := range rRest {
				row = append(row, rr[i])
			}
			out.add(row)
		}
	}
	return out
}

// RunBaselineLegacy evaluates q the conventional way with the
// tuple-at-a-time evaluator. Answers and Stats match RunBaseline exactly.
func RunBaselineLegacy(q ra.Query, s ra.Schema, db *store.DB) (*Table, Stats, error) {
	start := time.Now()
	var acc accCounter
	t, _, err := evalBaselineLegacy(q, s, db, &acc)
	if err != nil {
		return nil, Stats{}, err
	}
	return t.toTable(), acc.stats(start, 0), nil
}

func evalBaselineLegacy(q ra.Query, s ra.Schema, db *store.DB, acc *accCounter) (*legacyTable, []ra.Attr, error) {
	if ra.IsSPC(q) {
		spc, err := flattenOne(q, s)
		if err != nil {
			return nil, nil, err
		}
		t, err := evalSPCLegacy(spc, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		return t, spc.Out, nil
	}
	switch t := q.(type) {
	case *ra.Union:
		l, la, err := evalBaselineLegacy(t.L, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := evalBaselineLegacy(t.R, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		out := newLegacyTable(l.cols)
		for _, a := range l.rows {
			out.add(a)
		}
		for _, b := range r.rows {
			out.add(b)
		}
		return out, la, nil
	case *ra.Diff:
		l, la, err := evalBaselineLegacy(t.L, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := evalBaselineLegacy(t.R, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		out := newLegacyTable(l.cols)
		for k, a := range l.rows {
			if _, ok := r.rows[k]; !ok {
				out.add(a)
			}
		}
		return out, la, nil
	case *ra.Select:
		in, ia, err := evalBaselineLegacy(t.In, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		out := newLegacyTable(in.cols)
		for _, row := range in.rows {
			ok, err := predsHold(row, ia, t.Preds)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				out.add(row)
			}
		}
		return out, ia, nil
	case *ra.Project:
		in, ia, err := evalBaselineLegacy(t.In, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		pos := make([]int, len(t.Attrs))
		cols := make([]string, len(t.Attrs))
		for i, a := range t.Attrs {
			p := attrIndex(ia, a)
			if p < 0 {
				return nil, nil, fmt.Errorf("exec: projection attribute %s out of scope", a)
			}
			pos[i] = p
			cols[i] = a.String()
		}
		out := newLegacyTable(cols)
		for _, row := range in.rows {
			out.add(row.Project(pos))
		}
		return out, t.Attrs, nil
	case *ra.Product:
		l, la, err := evalBaselineLegacy(t.L, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		r, rAttrs, err := evalBaselineLegacy(t.R, s, db, acc)
		if err != nil {
			return nil, nil, err
		}
		out := newLegacyTable(append(append([]string{}, l.cols...), r.cols...))
		for _, a := range l.rows {
			for _, b := range r.rows {
				row := make(value.Tuple, 0, len(a)+len(b))
				row = append(row, a...)
				row = append(row, b...)
				out.add(row)
			}
		}
		return out, append(append([]ra.Attr{}, la...), rAttrs...), nil
	default:
		return nil, nil, fmt.Errorf("exec: unknown node %T", q)
	}
}

func evalSPCLegacy(spc *ra.SPC, s ra.Schema, db *store.DB, acc *accCounter) (*legacyTable, error) {
	var all []ra.Attr
	for _, rel := range spc.Rels {
		names, err := s.Attrs(rel.Base)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			all = append(all, ra.Attr{Rel: rel.Name, Name: n})
		}
	}
	classes := ra.NewClasses(all, spc.Preds)
	if classes.Conflict {
		return newLegacyTable(make([]string, len(spc.Out))), nil
	}

	classRels := map[ra.Attr]map[string]bool{}
	for _, rel := range spc.Rels {
		names, _ := s.Attrs(rel.Base)
		for _, n := range names {
			rep := classes.Rep(ra.Attr{Rel: rel.Name, Name: n})
			if classRels[rep] == nil {
				classRels[rep] = map[string]bool{}
			}
			classRels[rep][rel.Name] = true
		}
	}
	needed := map[ra.Attr]bool{}
	for _, a := range spc.X {
		needed[classes.Rep(a)] = true
	}
	for rep, rels := range classRels {
		if len(rels) > 1 {
			needed[rep] = true
		}
	}

	tabs := make([]*legacyTable, 0, len(spc.Rels))
	for _, rel := range spc.Rels {
		t, err := scanRelationLegacy(rel, classes, needed, s, db, acc)
		if err != nil {
			return nil, err
		}
		tabs = append(tabs, t)
	}
	sort.Slice(tabs, func(i, j int) bool { return len(tabs[i].rows) < len(tabs[j].rows) })
	cur := tabs[0]
	rest := tabs[1:]
	for len(rest) > 0 {
		pick := -1
		for i, t := range rest {
			if sharesColumnLegacy(cur, t) {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0
		}
		cur = natJoinLegacy(cur, rest[pick])
		rest = append(rest[:pick], rest[pick+1:]...)
	}

	pos := make([]int, len(spc.Out))
	cols := make([]string, len(spc.Out))
	for i, a := range spc.Out {
		lbl := classes.Rep(a).String()
		p := cur.colPos(lbl)
		if p < 0 {
			return nil, fmt.Errorf("exec: output class %s missing", lbl)
		}
		pos[i] = p
		cols[i] = lbl
	}
	out := newLegacyTable(cols)
	for _, row := range cur.rows {
		out.add(row.Project(pos))
	}
	return out, nil
}

func scanRelationLegacy(rel *ra.Relation, classes *ra.Classes,
	needed map[ra.Attr]bool, s ra.Schema, db *store.DB, acc *accCounter) (*legacyTable, error) {
	names, err := s.Attrs(rel.Base)
	if err != nil {
		return nil, err
	}
	type colSpec struct {
		label string
		poss  []int
		cval  value.Value
		has   bool
	}
	byLabel := map[string]*colSpec{}
	var order []string
	for i, n := range names {
		rep := classes.Rep(ra.Attr{Rel: rel.Name, Name: n})
		if !needed[rep] {
			continue
		}
		lbl := rep.String()
		cs := byLabel[lbl]
		if cs == nil {
			cs = &colSpec{label: lbl}
			if v, ok := classes.Const(rep); ok {
				cs.cval, cs.has = v, true
			}
			byLabel[lbl] = cs
			order = append(order, lbl)
		}
		cs.poss = append(cs.poss, i)
	}
	cols := append([]string{}, order...)
	out := newLegacyTable(cols)
	rows, err := db.Scan(rel.Base) // full-tuple scan, counted
	if err != nil {
		return nil, err
	}
	acc.addScanned(int64(len(rows)))
rowLoop:
	for _, t := range rows {
		row := make(value.Tuple, len(cols))
		for ci, lbl := range order {
			cs := byLabel[lbl]
			v := t[cs.poss[0]]
			for _, p := range cs.poss[1:] {
				if t[p] != v {
					continue rowLoop
				}
			}
			if cs.has && v != cs.cval {
				continue rowLoop
			}
			row[ci] = v
		}
		out.add(row)
	}
	return out, nil
}

func sharesColumnLegacy(a, b *legacyTable) bool {
	for _, c := range b.cols {
		if a.colPos(c) >= 0 {
			return true
		}
	}
	return false
}

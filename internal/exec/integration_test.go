package exec_test

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/workload"
)

// TestExample1Pipeline drives the whole stack on the Graph Search scenario
// of Example 1: coverage analysis, plan generation, bounded execution, and
// agreement with the conventional evaluator.
func TestExample1Pipeline(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatalf("GenFacebook: %v", err)
	}
	if err := db.SatisfiesAll(fb.Access); err != nil {
		t.Fatalf("generated data violates A0: %v", err)
	}

	cases := []struct {
		name    string
		q       ra.Query
		covered bool
	}{
		{"Q1", fb.Q1(), true},
		{"Q2", fb.Q2(), false},
		{"Q0", fb.Q0(), false},
		{"Q3", fb.Q3(), true},
		{"Q0Prime", fb.Q0Prime(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := ra.Normalize(tc.q, fb.Schema)
			if err != nil {
				t.Fatalf("normalize: %v", err)
			}
			res, err := cover.Check(q, fb.Schema, fb.Access)
			if err != nil {
				t.Fatalf("cover.Check: %v", err)
			}
			if res.Covered != tc.covered {
				t.Fatalf("covered = %v, want %v\n%s", res.Covered, tc.covered, res.Explain())
			}
			if !tc.covered {
				return
			}
			p, err := plan.Build(res)
			if err != nil {
				t.Fatalf("plan.Build: %v", err)
			}
			if err := p.Validate(fb.Access); err != nil {
				t.Fatalf("plan invalid: %v\n%s", err, p)
			}
			got, st, err := exec.Run(p, db)
			if err != nil {
				t.Fatalf("exec.Run: %v\n%s", err, p)
			}
			want, bst, err := exec.RunBaseline(q, fb.Schema, db)
			if err != nil {
				t.Fatalf("exec.RunBaseline: %v", err)
			}
			if !got.Equal(want) {
				t.Fatalf("bounded answer differs from baseline:\nbounded (%d rows):\n%s\nbaseline (%d rows):\n%s\nplan:\n%s",
					got.Len(), got, want.Len(), want, p)
			}
			if st.Scanned != 0 {
				t.Errorf("bounded plan performed %d full-scan accesses", st.Scanned)
			}
			if bst.Scanned == 0 {
				t.Errorf("baseline performed no scans — not a fair baseline")
			}
			if st.Accessed >= bst.Accessed {
				t.Errorf("bounded plan accessed %d ≥ baseline %d tuples", st.Accessed, bst.Accessed)
			}
		})
	}
}

// TestQ0PrimeAgreesWithQ0 checks the A0-equivalence claim of Example 1:
// on data satisfying A0, Q0 and Q0Prime return the same answer, so the
// bounded plan for Q0Prime answers the non-covered Q0.
func TestQ0PrimeAgreesWithQ0(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatalf("GenFacebook: %v", err)
	}
	q0, err := ra.Normalize(fb.Q0(), fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	q0p, err := ra.Normalize(fb.Q0Prime(), fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := exec.RunBaseline(q0, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := exec.RunBaseline(q0p, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("Q0 and Q0Prime disagree:\nQ0:\n%s\nQ0':\n%s", a, b)
	}
}

// TestBoundedAccessIndependentOfD grows the dataset and checks that the
// bounded plan's data access does not grow with |D| while the baseline's
// does — the defining property of bounded evaluability.
func TestBoundedAccessIndependentOfD(t *testing.T) {
	var boundedAccess [2]int64
	var baselineAccess [2]int64
	sizes := []int{300, 1200}
	for i, n := range sizes {
		cfg := workload.DefaultFacebookConfig()
		cfg.Persons = n
		cfg.Cafes = n / 2
		fb, db, err := workload.GenFacebook(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q, err := ra.Normalize(fb.Q0Prime(), fb.Schema)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cover.Check(q, fb.Schema, fb.Access)
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(res)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := exec.Run(p, db)
		if err != nil {
			t.Fatal(err)
		}
		_, bst, err := exec.RunBaseline(q, fb.Schema, db)
		if err != nil {
			t.Fatal(err)
		}
		boundedAccess[i] = st.Accessed
		baselineAccess[i] = bst.Accessed
	}
	if baselineAccess[1] < baselineAccess[0]*2 {
		t.Errorf("baseline access did not grow with |D|: %v", baselineAccess)
	}
	// The bounded plan depends on p0's neighbourhood only; allow slack for
	// p0 acquiring a few more friends in the larger population.
	if boundedAccess[1] > boundedAccess[0]*3 {
		t.Errorf("bounded access grew with |D|: %v", boundedAccess)
	}
}

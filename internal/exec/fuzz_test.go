package exec_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/store"
	"repro/internal/workload"
)

// batchFuzzHarness is built once per process: the AIRCA dataset and one
// generated instance shared by every fuzz iteration (executions only read).
type batchFuzzHarnessT struct {
	d   *workload.Dataset
	db  *store.DB
	err error
}

var (
	batchFuzzOnce sync.Once
	batchFuzzH    batchFuzzHarnessT
)

func batchFuzzHarness() *batchFuzzHarnessT {
	batchFuzzOnce.Do(func() {
		d, err := workload.ByName("AIRCA")
		if err != nil {
			batchFuzzH.err = err
			return
		}
		db, err := d.Gen(0.05, 11)
		if err != nil {
			batchFuzzH.err = err
			return
		}
		batchFuzzH.d = d
		batchFuzzH.db = db
	})
	return &batchFuzzH
}

// checkBatchLegacy generates one query from the parameters and asserts the
// batched executor agrees with the preserved tuple-at-a-time evaluator on
// every observable: bounded answers, baseline answers, parallel answers,
// and the access statistics both report.
func checkBatchLegacy(t *testing.T, seed int64, sel, join, unidiff uint8) {
	t.Helper()
	h := batchFuzzHarness()
	if h.err != nil {
		t.Fatalf("harness: %v", h.err)
	}
	rng := rand.New(rand.NewSource(seed))
	params := workload.DefaultQueryParams()
	params.Sel = 1 + int(sel)%6
	params.Join = int(join) % 4
	params.UniDiff = int(unidiff) % 3
	q, err := h.d.RandomQuery(params, rng)
	if err != nil {
		t.Skip()
	}

	// Baseline pair runs on every query; the bounded pair additionally
	// needs coverage.
	want, wantSt, errL := exec.RunBaselineLegacy(q, h.d.Schema, h.db)
	got, gotSt, errB := exec.RunBaseline(q, h.d.Schema, h.db)
	if (errL == nil) != (errB == nil) {
		t.Fatalf("baseline error divergence on %s: legacy %v, batched %v", q, errL, errB)
	}
	if errL == nil {
		if !got.Equal(want) {
			t.Fatalf("baseline answer divergence on %s: batched %d rows, legacy %d rows\nbatched:\n%s\nlegacy:\n%s",
				q, got.Len(), want.Len(), got, want)
		}
		if gotSt.Accessed != wantSt.Accessed {
			t.Fatalf("baseline access divergence on %s: batched %d, legacy %d", q, gotSt.Accessed, wantSt.Accessed)
		}
	}

	res, err := cover.Check(q, h.d.Schema, h.d.Access)
	if err != nil || !res.Covered {
		return
	}
	p, err := plan.Build(res)
	if err != nil {
		t.Fatalf("plan build on covered %s: %v", q, err)
	}
	want, wantSt, errL = exec.RunLegacy(p, h.db)
	got, gotSt, errB = exec.Run(p, h.db)
	if (errL == nil) != (errB == nil) {
		t.Fatalf("bounded error divergence on %s: legacy %v, batched %v", q, errL, errB)
	}
	if errL != nil {
		return
	}
	if !got.Equal(want) {
		t.Fatalf("bounded answer divergence on %s: batched %d rows, legacy %d rows\nbatched:\n%s\nlegacy:\n%s\nplan:\n%s",
			q, got.Len(), want.Len(), got, want, p)
	}
	if gotSt.Accessed != wantSt.Accessed {
		t.Fatalf("bounded access divergence on %s: batched %d, legacy %d\nplan:\n%s", q, gotSt.Accessed, wantSt.Accessed, p)
	}
	par, parSt, err := exec.RunParallel(p, h.db, 4)
	if err != nil {
		t.Fatalf("parallel run on %s: %v", q, err)
	}
	if !par.Equal(want) {
		t.Fatalf("parallel answer divergence on %s: parallel %d rows, legacy %d rows", q, par.Len(), want.Len())
	}
	if parSt.Accessed != wantSt.Accessed {
		t.Fatalf("parallel access divergence on %s: parallel %d, legacy %d", q, parSt.Accessed, wantSt.Accessed)
	}
}

// batchFuzzSeeds are the corpus the fuzzer mutates and the replay test
// pins: selection-heavy, join-heavy, and union/difference shapes.
var batchFuzzSeeds = [][4]int64{
	{1, 2, 0, 0},
	{2, 4, 1, 0},
	{3, 1, 2, 1},
	{4, 3, 0, 2},
	{5, 5, 3, 1},
	{6, 2, 1, 2},
	{7, 1, 3, 0},
	{8, 6, 2, 2},
}

// FuzzBatchExec is the vectorized executor's differential oracle: for
// arbitrary generator parameters, the batched evaluators (Run, RunBaseline,
// RunParallel) must return exactly the answers AND the access statistics of
// the preserved tuple-at-a-time evaluator. CI runs it briefly on every
// build (make fuzz-smoke); any crasher replays deterministically from its
// corpus file.
func FuzzBatchExec(f *testing.F) {
	for _, s := range batchFuzzSeeds {
		f.Add(s[0], uint8(s[1]), uint8(s[2]), uint8(s[3]))
	}
	f.Fuzz(func(t *testing.T, seed int64, sel, join, unidiff uint8) {
		checkBatchLegacy(t, seed, sel, join, unidiff)
	})
}

// TestBatchLegacyReplay replays the fuzz corpus seeds (and a sweep of
// deterministic extras) as a plain test, so the batched-vs-legacy
// equivalence is exercised on every `go test` run, not only under the
// fuzzer.
func TestBatchLegacyReplay(t *testing.T) {
	for _, s := range batchFuzzSeeds {
		checkBatchLegacy(t, s[0], uint8(s[1]), uint8(s[2]), uint8(s[3]))
	}
	for seed := int64(100); seed < 140; seed++ {
		checkBatchLegacy(t, seed, uint8(seed%7), uint8(seed%5), uint8(seed%3))
	}
}

// Exported batch operators over detached Tables: the building blocks the
// sharded residue executor (internal/shard) combines router-side. Unlike
// the plan operators in run.go these cross evaluation boundaries — their
// operands come from different engines with different interners — so each
// operator first brings its inputs into one handle space (reusing the left
// operand's ids via CloneTables and remapping only the right) and then
// works column-wise, never materializing per-row maps or key strings.
package exec

import (
	"fmt"

	"repro/internal/ra"
	"repro/internal/value"
)

// FilterTable returns the rows of in satisfying every predicate, with
// in's columns positionally described by scope. Constants are matched by
// handle lookup: a constant the table's interner has never seen matches
// nothing.
func FilterTable(in *Table, scope []ra.Attr, preds []ra.Pred) (*Table, error) {
	keep := make([]int32, 0, in.n)
	for i := 0; i < in.n; i++ {
		keep = append(keep, int32(i))
	}
	for _, p := range preds {
		switch t := p.(type) {
		case ra.EqAttr:
			pa, pb := attrIndex(scope, t.L), attrIndex(scope, t.R)
			if pa < 0 || pb < 0 {
				return nil, fmt.Errorf("exec: selection attribute out of scope in %s", p)
			}
			ca, cb := in.cols[pa], in.cols[pb]
			w := 0
			for _, id := range keep {
				if ca[id] == cb[id] {
					keep[w] = id
					w++
				}
			}
			keep = keep[:w]
		case ra.EqConst:
			pa := attrIndex(scope, t.A)
			if pa < 0 {
				return nil, fmt.Errorf("exec: selection attribute out of scope in %s", p)
			}
			ch, ok := in.in.LookupHandle(t.C)
			if !ok {
				keep = keep[:0]
				continue
			}
			ca := in.cols[pa]
			w := 0
			for _, id := range keep {
				if ca[id] == ch {
					keep[w] = id
					w++
				}
			}
			keep = keep[:w]
		}
	}
	out := &Table{Cols: in.Cols, in: in.in, cols: make([][]value.Handle, len(in.cols))}
	gatherHeap(out, in.cols, keep)
	noteBatch(out.n)
	return out, nil
}

// ProjectTable projects in onto the column positions pos, relabeled cols,
// deduplicating the result (set semantics).
func ProjectTable(in *Table, pos []int, cols []string) *Table {
	out := &Table{Cols: cols, in: in.in, cols: make([][]value.Handle, len(cols))}
	for j, p := range pos {
		c := make([]value.Handle, in.n)
		copy(c, in.cols[p][:in.n])
		out.cols[j] = c
	}
	out.setLen(in.n)
	out.dedupAll()
	noteBatch(out.n)
	return out
}

// UnionTables returns the set union of the given tables (nil entries are
// skipped; cols labels the result when every entry is nil). The tables may
// come from different interners; entries sharing the first non-nil table's
// interner — scatter/gather fragments usually do not, bucket-join outputs
// always do — are appended without remapping.
func UnionTables(cols []string, ts ...*Table) *Table {
	var base *Table
	total := 0
	for _, t := range ts {
		if t == nil {
			continue
		}
		if base == nil {
			base = t
		}
		total += t.n
	}
	if base == nil {
		return NewTable(cols)
	}
	s := base.in.CloneTables()
	out := &Table{Cols: cols, in: s, cols: make([][]value.Handle, len(cols))}
	for j := range out.cols {
		out.cols[j] = make([]value.Handle, 0, total)
	}
	for _, t := range ts {
		if t == nil {
			continue
		}
		if t.in == base.in {
			// Same source interner: s preserves its ids, handles are valid
			// as they are.
			for j := range out.cols {
				out.cols[j] = append(out.cols[j], t.cols[j][:t.n]...)
			}
			continue
		}
		strs, bigs := t.in.InternRemap(s)
		for j := range out.cols {
			c := t.cols[j]
			for i := 0; i < t.n; i++ {
				out.cols[j] = append(out.cols[j], c[i].Remap(strs, bigs))
			}
		}
	}
	out.setLen(total)
	out.dedupAll()
	noteBatch(out.n)
	return out
}

// DiffTables returns the rows of l absent from r (set difference). The
// probe remaps l's handles into r's space read-only: an l value r's
// interner has never seen cannot be in r.
func DiffTables(l, r *Table) *Table {
	r.ensureSet()
	var strs, bigs []value.Handle
	if l.in != r.in {
		strs, bigs = l.in.LookupRemap(r.in)
	}
	vals := make([]value.Handle, len(l.cols))
	keep := make([]int32, 0, l.n)
rowLoop:
	for i := 0; i < l.n; i++ {
		for j, c := range l.cols {
			rv := c[i]
			if strs != nil || bigs != nil {
				rv = rv.Remap(strs, bigs)
				if rv == value.MissingHandle {
					keep = append(keep, int32(i))
					continue rowLoop
				}
			}
			vals[j] = rv
		}
		if !r.lookupRow(vals) {
			keep = append(keep, int32(i))
		}
	}
	out := &Table{Cols: l.Cols, in: l.in, cols: make([][]value.Handle, len(l.cols))}
	gatherHeap(out, l.cols, keep)
	noteBatch(out.n)
	return out
}

// CrossTables returns the cross product of l and r with columns l.Cols
// followed by r.Cols. Distinct × distinct is distinct, so no dedup pass
// runs.
func CrossTables(l, r *Table) *Table {
	s := l.in.CloneTables()
	r2 := alignTo(s, r)
	l2 := &Table{Cols: l.Cols, in: s, cols: l.cols, n: l.n}
	ctx := &evalCtx{in: s}
	out := crossCtx(ctx, l2, r2, append(append([]string{}, l.Cols...), r.Cols...))
	noteBatch(out.n)
	return out
}

// gatherHeap copies the identified rows of src into out's (heap) columns.
func gatherHeap(out *Table, src [][]value.Handle, ids []int32) {
	for j := range out.cols {
		dst := make([]value.Handle, len(ids))
		sc := src[j]
		for k, id := range ids {
			dst[k] = sc[id]
		}
		out.cols[j] = dst
	}
	out.setLen(len(ids))
}

// ShuffleJoin is the batched semi-join + hash-shuffle join of the
// distributed residue executor: both sides are brought into one handle
// space, right rows without a left join partner are dropped (semi-join
// reduction), and the survivors of both sides are bucketed by join-key
// hash so the per-bucket joins can run concurrently on the member pools.
// Equal keys hash to equal buckets, so the bucket joins partition the true
// join and their outputs merge by set union.
type ShuffleJoin struct {
	outCols []string
	in      *value.Interner // the shared handle space
	l, r    *Table          // aligned views of the operands
	lpos    []int           // join-key columns of l
	rpos    []int           // join-key columns of r
	lb, rb  [][]int32       // per-bucket row ids
	shipped int64
}

// NewShuffleJoin prepares the shuffle of l ⋈ r on the key columns lpos /
// rpos into nb buckets: it aligns the operands, runs the semi-join
// reduction, buckets the surviving rows, and accounts the encoded volume
// the buckets received — what the shuffle would put on the wire in a
// multi-node deployment.
func NewShuffleJoin(l, r *Table, lpos, rpos []int, nb int) *ShuffleJoin {
	s := l.in.CloneTables()
	sj := &ShuffleJoin{
		outCols: append(append([]string{}, l.Cols...), r.Cols...),
		in:      s,
		l:       &Table{Cols: l.Cols, in: s, cols: l.cols, n: l.n},
		r:       alignTo(s, r),
		lpos:    lpos,
		rpos:    rpos,
		lb:      make([][]int32, nb),
		rb:      make([][]int32, nb),
	}

	// Left key set for the semi-join, open-addressed over l's key columns.
	slots := setSlots(sj.l.n)
	idx := make([]int32, slots)
	mask := uint32(slots - 1)
	for i := 0; i < sj.l.n; i++ {
		h := hashRowAt(sj.l.cols, sj.lpos, i)
		slot := uint32(h) & mask
		dup := false
		for idx[slot] != 0 {
			if sj.keyEq(sj.l, int(idx[slot]-1), sj.l, sj.lpos, i) {
				dup = true
				break
			}
			slot = (slot + 1) & mask
		}
		if !dup {
			idx[slot] = int32(i) + 1
		}
	}

	// Bucket by key hash; both sides share one handle space, so equal keys
	// land in equal buckets. Every left row ships; right rows ship only
	// when the semi-join finds a partner.
	var buf []byte
	rowBytes := func(t *Table, i int) int64 {
		buf = buf[:0]
		for _, c := range t.cols {
			buf = value.AppendKey(buf, s.Decode(c[i]))
		}
		return int64(len(buf))
	}
	for i := 0; i < sj.l.n; i++ {
		b := int(hashRowAt(sj.l.cols, sj.lpos, i) % uint64(nb))
		sj.lb[b] = append(sj.lb[b], int32(i))
		sj.shipped += rowBytes(sj.l, i)
	}
	for i := 0; i < sj.r.n; i++ {
		h := hashRowAt(sj.r.cols, sj.rpos, i)
		slot := uint32(h) & mask
		hit := false
		for idx[slot] != 0 {
			if sj.keyEq(sj.l, int(idx[slot]-1), sj.r, sj.rpos, i) {
				hit = true
				break
			}
			slot = (slot + 1) & mask
		}
		if !hit {
			continue
		}
		b := int(h % uint64(nb))
		sj.rb[b] = append(sj.rb[b], int32(i))
		sj.shipped += rowBytes(sj.r, i)
	}
	return sj
}

// keyEq reports whether the join key of t's row i equals the key of u's
// row j (key columns given by sj.lpos for l-side tables and the pos
// argument for the other side).
func (sj *ShuffleJoin) keyEq(t *Table, i int, u *Table, upos []int, j int) bool {
	for k, lp := range sj.lpos {
		if t.cols[lp][i] != u.cols[upos[k]][j] {
			return false
		}
	}
	return true
}

// Buckets returns the number of shuffle buckets.
func (sj *ShuffleJoin) Buckets() int { return len(sj.lb) }

// BytesShipped returns the encoded row volume the buckets received.
func (sj *ShuffleJoin) BytesShipped() int64 { return sj.shipped }

// JoinBucket hash-joins one bucket and returns its output (nil when the
// bucket is empty on either side). Safe to call concurrently for distinct
// buckets: it only compares and gathers handles in the prepared shared
// space, never interning.
func (sj *ShuffleJoin) JoinBucket(b int) *Table {
	li, ri := sj.lb[b], sj.rb[b]
	if len(li) == 0 || len(ri) == 0 {
		return nil
	}
	slots := setSlots(len(ri))
	head := make([]int32, slots)
	next := make([]int32, len(ri))
	mask := uint32(slots - 1)
	for k, id := range ri {
		h := hashRowAt(sj.r.cols, sj.rpos, int(id))
		slot := uint32(h) & mask
		next[k] = head[slot]
		head[slot] = int32(k) + 1
	}
	var lo, ro []int32
	for _, lid := range li {
		h := hashRowAt(sj.l.cols, sj.lpos, int(lid))
		for e := head[uint32(h)&mask]; e != 0; e = next[e-1] {
			rid := ri[e-1]
			if sj.keyEq(sj.l, int(lid), sj.r, sj.rpos, int(rid)) {
				lo = append(lo, lid)
				ro = append(ro, rid)
			}
		}
	}
	out := &Table{Cols: sj.outCols, in: sj.in, cols: make([][]value.Handle, len(sj.outCols))}
	for j := range sj.l.cols {
		dst := make([]value.Handle, len(lo))
		sc := sj.l.cols[j]
		for k, id := range lo {
			dst[k] = sc[id]
		}
		out.cols[j] = dst
	}
	for j := range sj.r.cols {
		dst := make([]value.Handle, len(ro))
		sc := sj.r.cols[j]
		for k, id := range ro {
			dst[k] = sc[id]
		}
		out.cols[len(sj.l.cols)+j] = dst
	}
	out.setLen(len(lo))
	noteBatch(out.n)
	return out
}

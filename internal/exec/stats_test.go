package exec

import (
	"sync"
	"testing"

	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// Per-run Stats must count only the run's own accesses: the DB-global
// counter is shared, so concurrent executions using a global delta would
// charge each query for its neighbours' reads.
func TestStatsIsolatedAcrossConcurrentRuns(t *testing.T) {
	s := ra.Schema{"r": {"a", "b"}}
	db := store.NewDB(s)
	for i := int64(0); i < 50; i++ {
		if _, err := db.Insert("r", value.Tuple{value.NewInt(i), value.NewInt(i % 5)}); err != nil {
			t.Fatal(err)
		}
	}
	q := ra.Proj(ra.Sel(ra.R("r", "r1"), ra.EqC(ra.A("r1", "b"), value.NewInt(1))), ra.A("r1", "a"))
	norm, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}

	_, serial, err := RunBaseline(norm, s, db)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Accessed != 50 {
		t.Fatalf("serial baseline accessed %d, want 50", serial.Accessed)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, st, err := RunBaseline(norm, s, db)
				if err != nil {
					errs <- err
					return
				}
				if st.Accessed != serial.Accessed {
					errs <- errStats{got: st.Accessed, want: serial.Accessed}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errStats struct{ got, want int64 }

func (e errStats) Error() string {
	return "concurrent run counted neighbours' accesses: got " +
		value.NewInt(e.got).String() + ", want " + value.NewInt(e.want).String()
}

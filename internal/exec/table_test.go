package exec

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func iv(i int) value.Value { return value.NewInt(int64(i)) }

func TestTableSetSemantics(t *testing.T) {
	tb := NewTable([]string{"a"})
	tb.Add(value.Tuple{iv(1)})
	tb.Add(value.Tuple{iv(1)})
	tb.Add(value.Tuple{iv(2)})
	if tb.Len() != 2 {
		t.Errorf("Len = %d, want 2 (set semantics)", tb.Len())
	}
	if !tb.Has(value.Tuple{iv(1)}) || tb.Has(value.Tuple{iv(3)}) {
		t.Error("Has wrong")
	}
}

func TestZeroColumnTable(t *testing.T) {
	empty := NewTable(nil)
	if empty.Len() != 0 {
		t.Error("zero-col table should start empty")
	}
	exists := NewTable(nil)
	exists.Add(value.Tuple{})
	if exists.Len() != 1 {
		t.Error("zero-col table can hold exactly the empty tuple")
	}
	exists.Add(value.Tuple{})
	if exists.Len() != 1 {
		t.Error("empty tuple duplicated")
	}
	// Natural join with a zero-column table acts as a boolean guard.
	data := NewTable([]string{"a"})
	data.Add(value.Tuple{iv(1)})
	if got := NatJoin(data, exists); got.Len() != 1 {
		t.Errorf("join with {()} lost rows: %d", got.Len())
	}
	if got := NatJoin(data, empty); got.Len() != 0 {
		t.Errorf("join with {} kept rows: %d", got.Len())
	}
}

func TestNatJoinSharedColumns(t *testing.T) {
	l := NewTable([]string{"a", "b"})
	l.Add(value.Tuple{iv(1), iv(10)})
	l.Add(value.Tuple{iv(2), iv(20)})
	r := NewTable([]string{"b", "c"})
	r.Add(value.Tuple{iv(10), iv(100)})
	r.Add(value.Tuple{iv(10), iv(101)})
	r.Add(value.Tuple{iv(30), iv(300)})
	j := NatJoin(l, r)
	if len(j.Cols) != 3 || j.Cols[0] != "a" || j.Cols[1] != "b" || j.Cols[2] != "c" {
		t.Fatalf("join cols = %v", j.Cols)
	}
	if j.Len() != 2 {
		t.Errorf("join size = %d, want 2", j.Len())
	}
	if !j.Has(value.Tuple{iv(1), iv(10), iv(100)}) {
		t.Error("missing join row")
	}
}

func TestNatJoinNoSharedIsProduct(t *testing.T) {
	l := NewTable([]string{"a"})
	l.Add(value.Tuple{iv(1)})
	l.Add(value.Tuple{iv(2)})
	r := NewTable([]string{"b"})
	r.Add(value.Tuple{iv(10)})
	j := NatJoin(l, r)
	if j.Len() != 2 {
		t.Errorf("cross join size = %d", j.Len())
	}
}

func TestNatJoinMultipleSharedColumns(t *testing.T) {
	l := NewTable([]string{"a", "b"})
	l.Add(value.Tuple{iv(1), iv(2)})
	l.Add(value.Tuple{iv(1), iv(3)})
	r := NewTable([]string{"a", "b", "c"})
	r.Add(value.Tuple{iv(1), iv(2), iv(9)})
	j := NatJoin(l, r)
	if j.Len() != 1 {
		t.Errorf("two-column join size = %d, want 1", j.Len())
	}
}

func TestTableEqualIgnoresColumnNames(t *testing.T) {
	a := NewTable([]string{"x"})
	a.Add(value.Tuple{iv(1)})
	b := NewTable([]string{"y"})
	b.Add(value.Tuple{iv(1)})
	if !a.Equal(b) {
		t.Error("Equal should compare contents positionally")
	}
	b.Add(value.Tuple{iv(2)})
	if a.Equal(b) {
		t.Error("different sizes equal")
	}
	c := NewTable([]string{"x"})
	c.Add(value.Tuple{iv(3)})
	d := NewTable([]string{"x"})
	d.Add(value.Tuple{iv(4)})
	if c.Equal(d) {
		t.Error("different contents equal")
	}
}

func TestTableSortedAndString(t *testing.T) {
	tb := NewTable([]string{"a"})
	tb.Add(value.Tuple{iv(2)})
	tb.Add(value.Tuple{iv(1)})
	sorted := tb.Sorted()
	if sorted[0][0] != iv(1) || sorted[1][0] != iv(2) {
		t.Errorf("Sorted = %v", sorted)
	}
	s := tb.String()
	if !strings.Contains(s, "[a]") || !strings.Contains(s, "(1)") {
		t.Errorf("String = %q", s)
	}
	if tb.ColPos("a") != 0 || tb.ColPos("zzz") != -1 {
		t.Error("ColPos wrong")
	}
}

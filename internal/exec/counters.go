package exec

import "sync/atomic"

// Process-wide executor telemetry, surfaced by /stats (internal/server).
// The counters are monotonic atomics updated on the hot path with one add
// per batch or probe, never per row of a loop body.
var (
	cBatches    atomic.Int64 // batches (operator output tables) finalized
	cBatchRows  atomic.Int64 // rows across those batches
	cArenaGet   atomic.Int64 // arena checkouts (requests served)
	cArenaNew   atomic.Int64 // pool misses that built a fresh arena
	cArenaInUse atomic.Int64 // bytes currently retained by checked-out arenas
	cSigBuilt   atomic.Int64 // join signature filters built
	cSigHit     atomic.Int64 // probes skipped by the signature filter
	cSigMiss    atomic.Int64 // probes the filter let through to the hash table
)

// Counters is a snapshot of the executor's process-wide telemetry.
type Counters struct {
	// Batches and Rows describe operator output volume; Rows/Batches is
	// the mean batch width.
	Batches, Rows int64
	// ArenaGets counts arena checkouts (one per evaluation per worker) and
	// ArenaNews the subset that missed the pool; 1 - News/Gets is the pool
	// hit rate.
	ArenaGets, ArenaNews int64
	// ArenaBytesInUse is the memory retained by currently checked-out
	// arenas.
	ArenaBytesInUse int64
	// SigBuilt, SigHit and SigMiss describe the join signature pre-filter:
	// Hit counts probes it rejected before the hash table, Miss the probes
	// it passed through.
	SigBuilt, SigHit, SigMiss int64
}

// ReadCounters snapshots the executor telemetry.
func ReadCounters() Counters {
	return Counters{
		Batches:         cBatches.Load(),
		Rows:            cBatchRows.Load(),
		ArenaGets:       cArenaGet.Load(),
		ArenaNews:       cArenaNew.Load(),
		ArenaBytesInUse: cArenaInUse.Load(),
		SigBuilt:        cSigBuilt.Load(),
		SigHit:          cSigHit.Load(),
		SigMiss:         cSigMiss.Load(),
	}
}

// noteBatch records one finalized operator output of n rows.
func noteBatch(n int) {
	cBatches.Add(1)
	cBatchRows.Add(int64(n))
}

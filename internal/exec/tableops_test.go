package exec_test

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/value"
)

func mkTable(cols []string, rows ...value.Tuple) *exec.Table {
	t := exec.NewTableSized(cols, len(rows))
	for _, r := range rows {
		t.Add(r)
	}
	return t
}

func iv(i int64) value.Value  { return value.NewInt(i) }
func sv(s string) value.Value { return value.NewStr(s) }

var filterScope = []ra.Attr{{Rel: "r", Name: "a"}, {Rel: "r", Name: "b"}, {Rel: "r", Name: "c"}}

func filterInput() *exec.Table {
	return mkTable([]string{"a", "b", "c"},
		value.Tuple{iv(1), sv("x"), iv(1)},
		value.Tuple{iv(2), sv("x"), iv(3)},
		value.Tuple{iv(4), sv("y"), iv(4)},
	)
}

func TestFilterTable(t *testing.T) {
	in := filterInput()
	got, err := exec.FilterTable(in, filterScope, []ra.Pred{
		ra.EqAttr{L: filterScope[0], R: filterScope[2]},
		ra.EqConst{A: filterScope[1], C: sv("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mkTable([]string{"a", "b", "c"}, value.Tuple{iv(1), sv("x"), iv(1)})
	if !got.Equal(want) {
		t.Fatalf("filter gave:\n%s\nwant:\n%s", got, want)
	}

	// A constant the table's interner never saw matches nothing.
	got, err = exec.FilterTable(in, filterScope, []ra.Pred{
		ra.EqConst{A: filterScope[1], C: sv("never-interned")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("unseen constant matched %d rows", got.Len())
	}

	// Out-of-scope attributes are errors on both predicate forms.
	oos := ra.Attr{Rel: "s", Name: "z"}
	if _, err := exec.FilterTable(in, filterScope, []ra.Pred{ra.EqAttr{L: oos, R: filterScope[0]}}); err == nil {
		t.Fatal("EqAttr out of scope must error")
	}
	if _, err := exec.FilterTable(in, filterScope, []ra.Pred{ra.EqConst{A: oos, C: iv(1)}}); err == nil {
		t.Fatal("EqConst out of scope must error")
	}
}

func TestProjectTable(t *testing.T) {
	in := filterInput()
	got := exec.ProjectTable(in, []int{1}, []string{"b"})
	want := mkTable([]string{"b"}, value.Tuple{sv("x")}, value.Tuple{sv("y")})
	if !got.Equal(want) {
		t.Fatalf("project gave:\n%s\nwant:\n%s", got, want)
	}
}

func TestUnionTables(t *testing.T) {
	cols := []string{"a", "b"}
	if got := exec.UnionTables(cols, nil, nil); got.Len() != 0 || len(got.Cols) != 2 {
		t.Fatalf("all-nil union gave %d rows over %v", got.Len(), got.Cols)
	}

	l := mkTable(cols, value.Tuple{iv(1), sv("x")}, value.Tuple{iv(2), sv("y")})
	// Same-interner entry (l twice) plus a cross-interner entry with one
	// overlapping and one fresh row.
	r := mkTable(cols, value.Tuple{iv(2), sv("y")}, value.Tuple{iv(3), sv("z")})
	got := exec.UnionTables(cols, l, nil, l, r)
	want := mkTable(cols,
		value.Tuple{iv(1), sv("x")},
		value.Tuple{iv(2), sv("y")},
		value.Tuple{iv(3), sv("z")},
	)
	if !got.Equal(want) {
		t.Fatalf("union gave:\n%s\nwant:\n%s", got, want)
	}
}

func TestDiffTables(t *testing.T) {
	cols := []string{"a", "b"}
	l := mkTable(cols,
		value.Tuple{iv(1), sv("x")},
		value.Tuple{iv(2), sv("y")},
		value.Tuple{iv(3), sv("z")},
	)

	// Same-interner right side: a filter of l shares its handle space.
	scope := []ra.Attr{{Rel: "r", Name: "a"}, {Rel: "r", Name: "b"}}
	r, err := exec.FilterTable(l, scope, []ra.Pred{ra.EqConst{A: scope[1], C: sv("y")}})
	if err != nil {
		t.Fatal(err)
	}
	got := exec.DiffTables(l, r)
	want := mkTable(cols, value.Tuple{iv(1), sv("x")}, value.Tuple{iv(3), sv("z")})
	if !got.Equal(want) {
		t.Fatalf("same-interner diff gave:\n%s\nwant:\n%s", got, want)
	}

	// Cross-interner right side: "z" is absent from r2's interner entirely,
	// exercising the MissingHandle keep path.
	r2 := mkTable(cols, value.Tuple{iv(1), sv("x")}, value.Tuple{iv(9), sv("w")})
	got = exec.DiffTables(l, r2)
	want = mkTable(cols, value.Tuple{iv(2), sv("y")}, value.Tuple{iv(3), sv("z")})
	if !got.Equal(want) {
		t.Fatalf("cross-interner diff gave:\n%s\nwant:\n%s", got, want)
	}
}

func TestCrossTables(t *testing.T) {
	l := mkTable([]string{"a"}, value.Tuple{iv(1)}, value.Tuple{iv(2)})
	r := mkTable([]string{"b"}, value.Tuple{sv("x")}, value.Tuple{sv("y")}, value.Tuple{sv("z")})
	got := exec.CrossTables(l, r)
	if got.Len() != 6 {
		t.Fatalf("cross product has %d rows, want 6", got.Len())
	}
	for _, a := range []int64{1, 2} {
		for _, b := range []string{"x", "y", "z"} {
			if !got.Has(value.Tuple{iv(a), sv(b)}) {
				t.Fatalf("cross product misses (%d, %s)", a, b)
			}
		}
	}
}

func TestShuffleJoin(t *testing.T) {
	lrows := []value.Tuple{
		{iv(1), sv("k1")},
		{iv(2), sv("k2")},
		{iv(3), sv("k1")},
	}
	rrows := []value.Tuple{
		{sv("k1"), sv("p")},
		{sv("k2"), sv("q")},
		{sv("k3"), sv("dropped")}, // no left partner: semi-join removes it
	}
	l := mkTable([]string{"a", "b"}, lrows...)
	r := mkTable([]string{"b", "c"}, rrows...)

	const nb = 4
	sj := exec.NewShuffleJoin(l, r, []int{1}, []int{0}, nb)
	if sj.Buckets() != nb {
		t.Fatalf("Buckets() = %d, want %d", sj.Buckets(), nb)
	}

	// Every left row ships; right rows ship only with a partner.
	wantShipped := int64(0)
	for _, row := range lrows {
		wantShipped += int64(len(row.Key()))
	}
	for _, row := range rrows[:2] {
		wantShipped += int64(len(row.Key()))
	}
	if sj.BytesShipped() != wantShipped {
		t.Fatalf("BytesShipped() = %d, want %d", sj.BytesShipped(), wantShipped)
	}

	// The bucket joins must partition the true join: their union equals the
	// nested-loop result.
	outCols := []string{"a", "b", "b", "c"}
	want := exec.NewTable(outCols)
	for _, lr := range lrows {
		for _, rr := range rrows {
			if lr[1] == rr[0] {
				want.Add(value.Tuple{lr[0], lr[1], rr[0], rr[1]})
			}
		}
	}
	parts := make([]*exec.Table, nb)
	for b := 0; b < nb; b++ {
		parts[b] = sj.JoinBucket(b)
	}
	got := exec.UnionTables(outCols, parts...)
	if !got.Equal(want) {
		t.Fatalf("shuffle join gave:\n%s\nwant:\n%s", got, want)
	}
}

func TestShuffleJoinEmptyBuckets(t *testing.T) {
	l := mkTable([]string{"a"}, value.Tuple{sv("k1")})
	r := mkTable([]string{"b"}, value.Tuple{sv("other")})
	sj := exec.NewShuffleJoin(l, r, []int{0}, []int{0}, 3)
	for b := 0; b < sj.Buckets(); b++ {
		if out := sj.JoinBucket(b); out != nil {
			t.Fatalf("bucket %d of a partnerless join gave %d rows", b, out.Len())
		}
	}
}

func TestReadCounters(t *testing.T) {
	before := exec.ReadCounters()
	l := mkTable([]string{"a"}, value.Tuple{iv(1)}, value.Tuple{iv(2)})
	r := mkTable([]string{"a"}, value.Tuple{iv(2)})
	exec.DiffTables(l, r)
	after := exec.ReadCounters()
	if after.Batches <= before.Batches {
		t.Fatalf("Batches did not advance: %d -> %d", before.Batches, after.Batches)
	}
	if after.Rows < before.Rows {
		t.Fatalf("Rows went backwards: %d -> %d", before.Rows, after.Rows)
	}
}

package exec_test

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/workload"
)

// TestParallelMatchesSequential runs every covered random query through
// both executors with several worker counts; answers must be identical.
func TestParallelMatchesSequential(t *testing.T) {
	d := workload.Tfacc()
	db, err := d.Gen(1.0/16, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	params := workload.DefaultQueryParams()
	checked := 0
	for i := 0; i < 40 && checked < 12; i++ {
		params.Sel = 3 + rng.Intn(5)
		params.Join = rng.Intn(4)
		params.UniDiff = rng.Intn(3)
		q, err := d.RandomQuery(params, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cover.Check(q, d.Schema, d.Access)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered {
			continue
		}
		p, err := plan.Build(res)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := exec.Run(p, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, st, err := exec.RunParallel(p, db, workers)
			if err != nil {
				t.Fatalf("query %d workers %d: %v", i, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("query %d workers %d: parallel answer differs", i, workers)
			}
			if st.Scanned != 0 {
				t.Errorf("parallel run scanned")
			}
		}
		checked++
	}
	if checked < 5 {
		t.Errorf("only %d covered queries exercised", checked)
	}
}

// TestParallelQ0Prime runs the Example 1 plan with high concurrency (the
// race detector patrols the access counters and table sharing).
func TestParallelQ0Prime(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	norm, err := ra.Normalize(fb.Q0Prime(), fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Check(norm, fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := exec.Run(p, db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, _, err := exec.RunParallel(p, db, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatal("parallel answer differs")
		}
	}
}

// TestParallelPropagatesErrors: a plan with a fetch lacking its index must
// fail cleanly, not hang.
func TestParallelPropagatesErrors(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	norm, err := ra.Normalize(fb.Q1(), fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Check(norm, fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: point a fetch step at a constraint with no index.
	for i := range p.Steps {
		if p.Steps[i].Op == plan.OpFetch {
			p.Steps[i].Con.N++
			p.Steps[i].Con.Rel = "friend"
			p.Steps[i].Con.X = []string{"fid"}
			p.Steps[i].Con.Y = []string{"pid"}
			p.Steps[i].XCols = p.Steps[i].XCols[:0]
			p.Steps[i].Con.X = nil
			break
		}
	}
	if _, _, err := exec.RunParallel(p, db, 4); err == nil {
		t.Fatal("expected error from sabotaged plan")
	}
}

package exec

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/store"
)

// RunParallel executes a bounded plan like Run, but evaluates independent
// steps concurrently: the plan DAG is processed by a worker pool, each step
// starting as soon as its inputs are ready. Fetching plans for different
// attributes and indexing plans for different relations are mutually
// independent, so wide plans (many relations, many unit fetches) gain real
// parallelism; answers are identical to Run's.
//
// Memory layout: every worker draws intermediates from its own pooled
// arena, while all workers share one interner (the first arena's) behind a
// mutex — inline-int handles never touch it, and string interning is the
// only synchronized step, so cross-step handle comparisons stay valid
// without any per-row locking. Step outputs are finalized before they are
// published to dependents; dependents only read them.
func RunParallel(p *plan.Plan, db *store.DB, workers int) (*Table, Stats, error) {
	if legacyDefault {
		return RunLegacy(p, db)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	var acc accCounter

	n := len(p.Steps)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	arenas := make([]*arena, workers)
	for w := range arenas {
		arenas[w] = getArena()
	}
	defer func() {
		for _, a := range arenas {
			a.release()
		}
	}()
	var inMu sync.Mutex
	shared := arenas[0].in

	tables := make([]*Table, n)
	// dependents[i] lists steps waiting on step i; missing[i] counts
	// unfinished inputs of step i.
	dependents := make([][]int, n)
	missing := make([]int, n)
	for i := range p.Steps {
		s := &p.Steps[i]
		for _, in := range []int{s.L, s.R} {
			if in >= 0 {
				dependents[in] = append(dependents[in], i)
				missing[i]++
			}
		}
	}

	// ready is buffered for all steps, so sends never block.
	ready := make(chan int, n)
	var (
		mu       sync.Mutex
		done     int
		firstErr error
		wg       sync.WaitGroup
	)
	for i := range p.Steps {
		if missing[i] == 0 {
			ready <- i
		}
	}

	// finish records a step's outcome and releases its dependents. Every
	// step flows through exactly once — after an error, later steps are
	// drained as skipped — so done reaches n and ready closes.
	finish := func(id int, t *Table, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("exec: step T%d (%s): %w", id, p.Steps[id].Op, err)
		}
		tables[id] = t
		done++
		for _, d := range dependents[id] {
			missing[d]--
			if missing[d] == 0 {
				ready <- d
			}
		}
		if done == n {
			close(ready)
		}
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		ctx := &evalCtx{a: arenas[w], in: shared, mu: &inMu, acc: &acc}
		go func() {
			defer wg.Done()
			for id := range ready {
				if failed() {
					finish(id, nil, nil) // drain without executing
					continue
				}
				t, err := runStep(ctx, p, &p.Steps[id], tables, db)
				if err == nil {
					noteBatch(t.Len())
				}
				finish(id, t, err)
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, Stats{}, firstErr
	}
	return tables[p.Result].detach(), acc.stats(start, n), nil
}

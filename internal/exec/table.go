// Package exec executes bounded query plans against the store (evalQP) and
// provides a conventional DBMS-style evaluator (evalDBMS) that scans whole
// relations and hash-joins full tuples — the baseline of Section 8. Both
// report exact access statistics so experiments can compute P(D_Q).
//
// The executor is columnar: a Table stores one []value.Handle slice per
// column over a per-table (or per-evaluation) string interner, operators
// work on whole columns, and intermediates draw their memory from a pooled
// per-request arena that is returned wholesale when the evaluation ends.
// The legacy tuple-at-a-time evaluator survives in legacy.go as the
// differential oracle and can be selected process-wide with
// BOUNDED_EXEC=legacy.
package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// Table is a set-semantics result table with labeled columns, stored
// column-wise: cols[j][i] is the handle of row i's value in column j,
// resolved by the table's interner. A zero-column table is either empty or
// the singleton {()}, representing a boolean.
//
// Concurrency contract: Add mutates the table and its interner and must be
// single-goroutine; all read methods (Has, Len, Tuples, Sorted, Equal,
// String) are safe to call concurrently once no more Adds happen — lazy
// membership-index builds are internally synchronized.
type Table struct {
	Cols []string

	in   *value.Interner
	cols [][]value.Handle
	n    int
	a    *arena // non-nil while backed by an evaluation arena

	// set is the membership index (row dedup). It is built eagerly by
	// deduplicating constructors and lazily — under mu, signalled through
	// setReady — by the first reader that needs it.
	mu       sync.Mutex
	setReady atomic.Bool
	set      rowSet
}

// NewTable creates an empty heap-backed table with the given column labels.
func NewTable(cols []string) *Table {
	return NewTableSized(cols, 0)
}

// NewTableSized is NewTable with a row-capacity hint, pre-sizing the
// columns and the dedup index for bulk loading (the IVM publish path).
func NewTableSized(cols []string, capacity int) *Table {
	t := &Table{Cols: cols, in: value.NewInterner(), cols: make([][]value.Handle, len(cols))}
	for j := range t.cols {
		t.cols[j] = make([]value.Handle, 0, capacity)
	}
	t.initSet(capacity)
	return t
}

// newCtxTable creates an arena-backed intermediate table for one
// evaluation: columns come from the worker's arena and the interner is the
// evaluation's shared one. The dedup index is NOT initialized — operators
// that need dedup call initSet or dedupAll themselves.
func newCtxTable(ctx *evalCtx, cols []string, capacity int) *Table {
	t := &Table{Cols: cols, in: ctx.in, a: ctx.a, cols: make([][]value.Handle, len(cols))}
	for j := range t.cols {
		t.cols[j] = ctx.allocHandles(capacity)
	}
	return t
}

// initSet points the dedup index at a fresh zeroed table sized for
// capacity rows, allocated from the table's arena when it has one.
func (t *Table) initSet(capacity int) {
	slots := setSlots(capacity)
	var buf []int32
	if t.a != nil {
		buf = t.a.ints(slots)[:slots]
		clear(buf)
	} else {
		buf = make([]int32, slots)
	}
	t.set.reset(buf, slots)
	t.setReady.Store(true)
}

// ensureSet builds the membership index on first use after a non-dedup
// constructor (or detach) skipped it. Safe under concurrent readers; the
// lazy build always uses heap memory because the reader's goroutine does
// not own the builder's arena.
func (t *Table) ensureSet() {
	if t.setReady.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.setReady.Load() {
		return
	}
	slots := setSlots(t.n)
	buf := make([]int32, slots)
	t.set.reset(buf, slots)
	for i := 0; i < t.n; i++ {
		h := hashRowAll(t.cols, i)
		slot := uint32(h) & t.set.mask
		for t.set.idx[slot] != 0 {
			slot = (slot + 1) & t.set.mask
		}
		t.set.idx[slot] = int32(i) + 1
	}
	t.set.cnt = t.n
	t.setReady.Store(true)
}

// growSet doubles the index and rehashes every live row.
func (t *Table) growSet() {
	slots := len(t.set.idx) * 2
	var buf []int32
	if t.a != nil {
		buf = t.a.ints(slots)[:slots]
		clear(buf)
	} else {
		buf = make([]int32, slots)
	}
	t.set.reset(buf, slots)
	for i := 0; i < t.n; i++ {
		h := hashRowAll(t.cols, i)
		slot := uint32(h) & t.set.mask
		for t.set.idx[slot] != 0 {
			slot = (slot + 1) & t.set.mask
		}
		t.set.idx[slot] = int32(i) + 1
	}
	t.set.cnt = t.n
}

// pushCand writes h as column j of the candidate row at index n. Every
// column must be pushed before commitCand decides the row's fate.
func (t *Table) pushCand(j int, h value.Handle) {
	c := t.cols[j]
	if len(c) == cap(c) && t.a != nil {
		c = t.a.growHandles(c, 1)
	}
	t.cols[j] = append(c, h)
}

// commitCand deduplicates the candidate row written by pushCand: a new row
// is kept (true), a duplicate is truncated away (false). The dedup index
// must be initialized.
func (t *Table) commitCand() bool {
	if len(t.cols) == 0 {
		if t.n == 0 {
			t.n = 1
			return true
		}
		return false
	}
	h := hashRowAll(t.cols, t.n)
	slot := uint32(h) & t.set.mask
	for {
		e := t.set.idx[slot]
		if e == 0 {
			t.set.idx[slot] = int32(t.n) + 1
			t.set.cnt++
			t.n++
			if 4*t.set.cnt >= 3*len(t.set.idx) {
				t.growSet()
			}
			return true
		}
		if rowsEqAt(t.cols, int(e-1), t.cols, t.n) {
			for j := range t.cols {
				t.cols[j] = t.cols[j][:t.n]
			}
			return false
		}
		slot = (slot + 1) & t.set.mask
	}
}

// setLen finalizes a bulk write of m rows whose distinctness the operator
// guarantees (filters, joins and products of distinct inputs); the dedup
// index stays unbuilt until a reader needs it.
func (t *Table) setLen(m int) {
	t.n = m
}

// dedupAll compacts a bulk write of t.n candidate rows in place, dropping
// duplicates and building the membership index sized for the batch.
func (t *Table) dedupAll() {
	m := t.n
	if len(t.cols) == 0 {
		if m > 1 {
			t.n = 1
		}
		t.setReady.Store(true)
		return
	}
	t.initSet(m)
	w := 0
	for i := 0; i < m; i++ {
		h := hashRowAll(t.cols, i)
		slot := uint32(h) & t.set.mask
		dup := false
		for {
			e := t.set.idx[slot]
			if e == 0 {
				t.set.idx[slot] = int32(w) + 1
				t.set.cnt++
				break
			}
			if rowsEqAt(t.cols, int(e-1), t.cols, i) {
				dup = true
				break
			}
			slot = (slot + 1) & t.set.mask
		}
		if dup {
			continue
		}
		if w != i {
			for j := range t.cols {
				t.cols[j][w] = t.cols[j][i]
			}
		}
		w++
	}
	t.n = w
	for j := range t.cols {
		t.cols[j] = t.cols[j][:w]
	}
}

// lookupRow reports whether the table contains the row given as handles in
// the table's own interner space. The dedup index must be ready.
func (t *Table) lookupRow(vals []value.Handle) bool {
	if len(t.cols) == 0 {
		return t.n > 0
	}
	h := uint64(hashSeed)
	for _, v := range vals {
		h = mix64(h ^ uint64(v))
	}
	slot := uint32(h) & t.set.mask
	for {
		e := t.set.idx[slot]
		if e == 0 {
			return false
		}
		eq := true
		for j, c := range t.cols {
			if c[e-1] != vals[j] {
				eq = false
				break
			}
		}
		if eq {
			return true
		}
		slot = (slot + 1) & t.set.mask
	}
}

// detach copies the table out of its evaluation arena into self-contained
// heap storage with a private interner, so the arena can be recycled while
// the result lives on. The membership index is rebuilt lazily on demand.
func (t *Table) detach() *Table {
	out := &Table{Cols: t.Cols, in: t.in.CloneTables(), n: t.n, cols: make([][]value.Handle, len(t.cols))}
	for j, c := range t.cols {
		nc := make([]value.Handle, t.n)
		copy(nc, c[:t.n])
		out.cols[j] = nc
	}
	return out
}

// Add inserts a tuple (set semantics). The tuple length must match Cols.
// Add is a mutation: single-goroutine, and only on tables the caller owns
// (NewTable results — not operator outputs, which may share an interner).
func (t *Table) Add(row value.Tuple) {
	t.ensureSet()
	for j := range t.cols {
		t.pushCand(j, t.in.Intern(row[j]))
	}
	t.commitCand()
}

// Has reports whether the table contains the tuple.
func (t *Table) Has(row value.Tuple) bool {
	if len(row) != len(t.cols) {
		return false
	}
	t.ensureSet()
	vals := make([]value.Handle, len(row))
	for j, v := range row {
		h, ok := t.in.LookupHandle(v)
		if !ok {
			return false
		}
		vals[j] = h
	}
	return t.lookupRow(vals)
}

// Len returns the number of tuples.
func (t *Table) Len() int { return t.n }

// Tuples returns the tuples in unspecified order.
func (t *Table) Tuples() []value.Tuple {
	out := make([]value.Tuple, t.n)
	flat := make(value.Tuple, t.n*len(t.cols))
	for i := 0; i < t.n; i++ {
		row := flat[i*len(t.cols) : (i+1)*len(t.cols) : (i+1)*len(t.cols)]
		for j, c := range t.cols {
			row[j] = t.in.Decode(c[i])
		}
		out[i] = row
	}
	return out
}

// Sorted returns the tuples in lexicographic order, for deterministic
// output.
func (t *Table) Sorted() []value.Tuple {
	out := t.Tuples()
	value.SortTuples(out)
	return out
}

// ColPos returns the position of a column label, or -1.
func (t *Table) ColPos(label string) int {
	for i, c := range t.Cols {
		if c == label {
			return i
		}
	}
	return -1
}

// String renders the table (sorted) for debugging and golden tests.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s]\n", strings.Join(t.Cols, ", "))
	for _, r := range t.Sorted() {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Equal reports whether two tables hold the same tuple sets (columns are
// compared positionally by content only).
func (t *Table) Equal(u *Table) bool {
	if t.n != u.n || len(t.cols) != len(u.cols) {
		return t.n == u.n && t.n == 0
	}
	if t.n == 0 {
		return true
	}
	if len(t.cols) == 0 {
		return true // both the singleton {()}
	}
	u.ensureSet()
	strs, bigs := t.in.LookupRemap(u.in)
	vals := make([]value.Handle, len(t.cols))
	for i := 0; i < t.n; i++ {
		for j, c := range t.cols {
			rv := c[i].Remap(strs, bigs)
			if rv == value.MissingHandle {
				return false // a value u has never seen
			}
			vals[j] = rv
		}
		if !u.lookupRow(vals) {
			return false
		}
	}
	return true
}

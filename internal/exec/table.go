// Package exec executes bounded query plans against the store (evalQP) and
// provides a conventional DBMS-style evaluator (evalDBMS) that scans whole
// relations and hash-joins full tuples — the baseline of Section 8. Both
// report exact access statistics so experiments can compute P(D_Q).
package exec

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Table is a set-semantics result table with labeled columns. A zero-column
// table is either empty or the singleton {()}, representing a boolean.
type Table struct {
	Cols []string
	rows map[string]value.Tuple
}

// NewTable creates an empty table with the given column labels.
func NewTable(cols []string) *Table {
	return &Table{Cols: cols, rows: map[string]value.Tuple{}}
}

// Add inserts a tuple (set semantics). The tuple length must match Cols.
func (t *Table) Add(row value.Tuple) {
	t.rows[row.Key()] = row
}

// Has reports whether the table contains the tuple.
func (t *Table) Has(row value.Tuple) bool {
	_, ok := t.rows[row.Key()]
	return ok
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.rows) }

// Tuples returns the tuples in unspecified order.
func (t *Table) Tuples() []value.Tuple {
	out := make([]value.Tuple, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, r)
	}
	return out
}

// Sorted returns the tuples in lexicographic order, for deterministic
// output.
func (t *Table) Sorted() []value.Tuple {
	out := t.Tuples()
	value.SortTuples(out)
	return out
}

// ColPos returns the position of a column label, or -1.
func (t *Table) ColPos(label string) int {
	for i, c := range t.Cols {
		if c == label {
			return i
		}
	}
	return -1
}

// String renders the table (sorted) for debugging and golden tests.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s]\n", strings.Join(t.Cols, ", "))
	for _, r := range t.Sorted() {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Equal reports whether two tables hold the same tuple sets (columns are
// compared positionally by content only).
func (t *Table) Equal(u *Table) bool {
	if t.Len() != u.Len() {
		return false
	}
	for k := range t.rows {
		if _, ok := u.rows[k]; !ok {
			return false
		}
	}
	return true
}

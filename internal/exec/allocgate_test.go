//go:build !race

package exec_test

import (
	"os"
	"testing"

	"repro/internal/exec"
)

// TestExecAllocBudget is the CI allocation gate: on every operator-family
// plan the batched executor must allocate at least 5x less per evaluation
// than the preserved tuple-at-a-time evaluator. Guarded by !race because
// race instrumentation changes allocation counts.
func TestExecAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short")
	}
	if os.Getenv("BOUNDED_EXEC") == "legacy" {
		t.Skip("BOUNDED_EXEC=legacy routes Run through the legacy evaluator; nothing to compare")
	}
	h := benchPlans()
	if h.err != nil {
		t.Fatalf("harness: %v", h.err)
	}
	for kind, p := range h.plans {
		batched := testing.AllocsPerRun(30, func() {
			if _, _, err := exec.Run(p, h.db); err != nil {
				t.Fatal(err)
			}
		})
		legacy := testing.AllocsPerRun(30, func() {
			if _, _, err := exec.RunLegacy(p, h.db); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%s: batched %.0f allocs/op, legacy %.0f allocs/op (%.1fx)", kind, batched, legacy, legacy/batched)
		if batched*5 > legacy {
			t.Errorf("%s: batched executor allocates %.0f/op, legacy %.0f/op — below the 5x budget", kind, batched, legacy)
		}
	}
}

package exec_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// benchPlans builds one hand-crafted micro-plan per operator family over a
// synthetic relation, so each benchmark measures one operator's per-tuple
// behaviour instead of whatever mix a generated query happens to contain.
// Built once per process; executions only read the DB.
type benchPlansT struct {
	db    *store.DB
	plans map[string]*plan.Plan // select / join / union / fetch
	err   error
}

var (
	benchPlansOnce sync.Once
	benchPlansH    benchPlansT
)

// benchRows is the batch size every micro-plan pushes through its
// operator; large enough that per-tuple costs dominate fixed setup.
const benchRows = 4096

func benchPlans() *benchPlansT {
	benchPlansOnce.Do(func() {
		benchPlansH.err = buildBenchPlans(&benchPlansH)
	})
	return &benchPlansH
}

func buildBenchPlans(h *benchPlansT) error {
	const (
		nKeys  = 256 // distinct fetch keys
		fanout = benchRows / nKeys
	)
	h.db = store.NewDB(ra.Schema{"r": {"a", "b", "c"}})
	con := access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b", "c"}, N: fanout}
	for k := 0; k < nKeys; k++ {
		for f := 0; f < fanout; f++ {
			row := value.Tuple{
				value.NewInt(int64(k)),
				value.NewStr(fmt.Sprintf("name-%03d", (k*fanout+f)%512)),
				value.NewInt(int64(f)),
			}
			if _, err := h.db.Insert("r", row); err != nil {
				return err
			}
		}
	}
	if _, err := h.db.BuildIndex(con); err != nil {
		return err
	}

	// Shared constant inputs: wide has benchRows rows over (a, b, c) with
	// a == c on half of them; narrowL/narrowR join on b with ~2 partners
	// per left row.
	wide := make([]value.Tuple, benchRows)
	for i := range wide {
		c := int64(i)
		if i%2 == 0 {
			c = int64(i % 97)
		}
		wide[i] = value.Tuple{
			value.NewInt(int64(i % 97)),
			value.NewStr(fmt.Sprintf("name-%03d", i%512)),
			value.NewInt(c),
		}
	}
	narrowL := make([]value.Tuple, benchRows)
	for i := range narrowL {
		narrowL[i] = value.Tuple{value.NewInt(int64(i)), value.NewInt(int64(i % (benchRows / 2)))}
	}
	narrowR := make([]value.Tuple, benchRows/2)
	for i := range narrowR {
		narrowR[i] = value.Tuple{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("name-%03d", i%512))}
	}
	xs := make([]value.Tuple, nKeys)
	for k := range xs {
		xs[k] = value.Tuple{value.NewInt(int64(k))}
	}

	h.plans = map[string]*plan.Plan{
		"fetch": {Result: 1, FetchSteps: []int{1}, Steps: []plan.Step{
			{ID: 0, Op: plan.OpConst, Cols: []string{"x"}, L: -1, R: -1, Rows: xs},
			{ID: 1, Op: plan.OpFetch, Cols: []string{"x", "b", "c"}, L: 0, R: -1,
				Occ: "r", Con: con, XCols: []string{"x"},
				FetchAttrs:  []string{"a", "b", "c"},
				FetchLabels: []string{"x", "b", "c"}},
		}},
		"select": {Result: 1, Steps: []plan.Step{
			{ID: 0, Op: plan.OpConst, Cols: []string{"a", "b", "c"}, L: -1, R: -1, Rows: wide},
			{ID: 1, Op: plan.OpFilter, Cols: []string{"a", "b", "c"}, L: 0, R: -1,
				Conds: []plan.Cond{
					{PosA: 0, PosB: 2},
					{PosA: 1, C: value.NewStr("name-007"), IsConst: true},
				}},
		}},
		"join": {Result: 2, Steps: []plan.Step{
			{ID: 0, Op: plan.OpConst, Cols: []string{"a", "b"}, L: -1, R: -1, Rows: narrowL},
			{ID: 1, Op: plan.OpConst, Cols: []string{"b", "c"}, L: -1, R: -1, Rows: narrowR},
			{ID: 2, Op: plan.OpJoin, Cols: []string{"a", "b", "c"}, L: 0, R: 1},
		}},
		"union": {Result: 2, Steps: []plan.Step{
			{ID: 0, Op: plan.OpConst, Cols: []string{"a", "b", "c"}, L: -1, R: -1, Rows: wide[:benchRows/2]},
			{ID: 1, Op: plan.OpConst, Cols: []string{"a", "b", "c"}, L: -1, R: -1, Rows: wide[benchRows/4:]},
			{ID: 2, Op: plan.OpUnion, Cols: []string{"a", "b", "c"}, L: 0, R: 1},
		}},
	}

	// Sanity: both executors agree on every micro-plan before anything is
	// measured.
	for kind, p := range h.plans {
		got, _, err := exec.Run(p, h.db)
		if err != nil {
			return fmt.Errorf("%s: batched: %w", kind, err)
		}
		want, _, err := exec.RunLegacy(p, h.db)
		if err != nil {
			return fmt.Errorf("%s: legacy: %w", kind, err)
		}
		if got.Len() == 0 || !got.Equal(want) {
			return fmt.Errorf("%s: micro-plan disagreement (batched %d rows, legacy %d rows)", kind, got.Len(), want.Len())
		}
	}
	return nil
}

// benchOp measures one operator family's plan through the batched and the
// legacy executor; `make bench-exec` reports both with -benchmem so the
// allocation win is visible per operator.
func benchOp(b *testing.B, kind string) {
	h := benchPlans()
	if h.err != nil {
		b.Fatalf("harness: %v", h.err)
	}
	p := h.plans[kind]
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := exec.Run(p, h.db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := exec.RunLegacy(p, h.db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExecSelect(b *testing.B) { benchOp(b, "select") }
func BenchmarkExecJoin(b *testing.B)   { benchOp(b, "join") }
func BenchmarkExecUnion(b *testing.B)  { benchOp(b, "union") }
func BenchmarkExecFetch(b *testing.B)  { benchOp(b, "fetch") }

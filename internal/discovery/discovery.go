// Package discovery mines access constraints from data (Section 7, C1):
// a TANE-style search over candidate attribute sets X and targets Y using
// group-by counting on (samples of) relation instances, keeping
// R(X → Y, N) whenever the observed fan-out N is within a threshold.
// Discovered constraints hold on the sampled instance by construction;
// bounds that later grow are relaxed by store.Maintain.
package discovery

import (
	"sort"

	"repro/internal/access"
	"repro/internal/store"
	"repro/internal/value"
)

// Options controls the search.
type Options struct {
	// MaxN keeps only constraints with observed fan-out ≤ MaxN.
	MaxN int
	// MaxX bounds |X| (1 or 2 are typical; 0 also mines ∅ → Y domain
	// constraints such as R(∅ → month, 12)).
	MaxX int
	// MineEmptyX additionally mines ∅ → Y constraints when the whole
	// column has at most MaxN distinct values.
	MineEmptyX bool
	// SampleLimit caps the rows examined per relation (0 = all).
	SampleLimit int
	// Slack multiplies the observed fan-out before storing N, leaving
	// headroom for future inserts (1.0 = exact).
	Slack float64
	// PruneDominated drops X → Y when some X' ⊂ X already yields a
	// constraint on Y (TANE's minimality pruning).
	PruneDominated bool
}

// DefaultOptions mirrors the paper's setting: small fan-outs, X of size ≤ 2.
func DefaultOptions() Options {
	return Options{MaxN: 64, MaxX: 2, MineEmptyX: true, Slack: 1.0, PruneDominated: true}
}

// Discover mines an access schema from the current instance of db.
func Discover(db *store.DB, opts Options) (*access.Schema, error) {
	if opts.MaxN <= 0 {
		opts.MaxN = 64
	}
	if opts.Slack < 1.0 {
		opts.Slack = 1.0
	}
	var found []access.Constraint
	for _, relName := range db.Schema.Relations() {
		cs, err := discoverRel(db, relName, opts)
		if err != nil {
			return nil, err
		}
		found = append(found, cs...)
	}
	return access.NewSchema(found...), nil
}

func discoverRel(db *store.DB, relName string, opts Options) ([]access.Constraint, error) {
	rel, err := db.Rel(relName)
	if err != nil {
		return nil, err
	}
	rows, err := db.Rows(relName)
	if err != nil {
		return nil, err
	}
	if opts.SampleLimit > 0 && len(rows) > opts.SampleLimit {
		rows = rows[:opts.SampleLimit]
	}
	attrs := rel.Attrs
	var out []access.Constraint
	// covered[y] records the (X, N) pairs already yielding a constraint on
	// y, for dominance pruning.
	type prior struct {
		xpos []int
		n    int
	}
	covered := map[string][]prior{}

	addIfBounded := func(xpos []int, ypos int) {
		y := attrs[ypos]
		fan := maxFanOut(rows, xpos, ypos)
		if fan == 0 || fan > opts.MaxN {
			return
		}
		n := int(float64(fan) * opts.Slack)
		if n < fan {
			n = fan
		}
		if opts.PruneDominated {
			// A superset X with no tighter bound adds nothing: some X' ⊆ X
			// already fetches y at cost ≤ n.
			for _, prev := range covered[y] {
				if subset(prev.xpos, xpos) && prev.n <= n {
					return
				}
			}
		}
		x := make([]string, len(xpos))
		for i, p := range xpos {
			x[i] = attrs[p]
		}
		out = append(out, access.Constraint{Rel: relName, X: x, Y: []string{y}, N: n})
		covered[y] = append(covered[y], prior{xpos: xpos, n: n})
	}

	// Level 0: domain constraints ∅ → Y.
	if opts.MineEmptyX {
		for y := range attrs {
			addIfBounded(nil, y)
		}
	}
	// Level 1: single-attribute X.
	if opts.MaxX >= 1 {
		for x := range attrs {
			for y := range attrs {
				if y == x {
					continue
				}
				addIfBounded([]int{x}, y)
			}
		}
	}
	// Level 2: attribute pairs.
	if opts.MaxX >= 2 {
		for x1 := 0; x1 < len(attrs); x1++ {
			for x2 := x1 + 1; x2 < len(attrs); x2++ {
				for y := range attrs {
					if y == x1 || y == x2 {
						continue
					}
					addIfBounded([]int{x1, x2}, y)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// maxFanOut computes max_x |{distinct y : (x,y) ∈ rows}| by group-by
// counting. xpos may be empty (global distinct count).
func maxFanOut(rows []value.Tuple, xpos []int, ypos int) int {
	groups := map[string]map[value.Value]bool{}
	for _, t := range rows {
		k := value.KeyOf(t, xpos)
		g := groups[k]
		if g == nil {
			g = map[value.Value]bool{}
			groups[k] = g
		}
		g[t[ypos]] = true
	}
	maxN := 0
	for _, g := range groups {
		if len(g) > maxN {
			maxN = len(g)
		}
	}
	return maxN
}

func subset(a, b []int) bool {
	set := map[int]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// MembershipConstraints builds indexing constraints R(X → X, 1) for the
// given attribute sets — membership-check indices like ψ3 of Example 1,
// which group-by mining cannot produce (they are trivially satisfied).
func MembershipConstraints(rel string, xs [][]string) []access.Constraint {
	out := make([]access.Constraint, 0, len(xs))
	for _, x := range xs {
		out = append(out, access.Constraint{Rel: rel, X: x, Y: x, N: 1})
	}
	return out
}

package discovery

import (
	"testing"

	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workload"
)

func iv(i int) value.Value { return value.NewInt(int64(i)) }

// plantedDB builds r(a,b,c) where b = a%5 (FD a→b up to fan 1), c has a
// tiny domain {0,1,2} (∅→c), and a is unbounded.
func plantedDB(t *testing.T) *store.DB {
	t.Helper()
	db := store.NewDB(ra.Schema{"r": {"a", "b", "c"}})
	for a := 0; a < 200; a++ {
		if _, err := db.Insert("r", value.Tuple{iv(a), iv(a % 5), iv(a % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDiscoverPlantedConstraints(t *testing.T) {
	db := plantedDB(t)
	opts := DefaultOptions()
	opts.MaxN = 10
	A, err := Discover(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int{}
	for _, c := range A.Constraints {
		byKey[c.Key()] = c.N
	}
	if n, ok := byKey["r(a->b)"]; !ok || n != 1 {
		t.Errorf("missing planted FD r(a->b,1): %v", byKey)
	}
	if n, ok := byKey["r(->c)"]; !ok || n != 3 {
		t.Errorf("missing domain constraint r(∅->c,3): %v", byKey)
	}
	// a has 200 distinct values: no b→a or ∅→a within MaxN=10.
	if _, ok := byKey["r(b->a)"]; ok {
		t.Error("discovered unbounded fan r(b->a)")
	}
	if _, ok := byKey["r(->a)"]; ok {
		t.Error("discovered unbounded domain r(∅->a)")
	}
	// All discovered constraints must hold on the instance.
	if err := db.SatisfiesAll(A); err != nil {
		t.Errorf("discovered constraint violated: %v", err)
	}
}

func TestPruneDominated(t *testing.T) {
	db := plantedDB(t)
	opts := DefaultOptions()
	opts.MaxN = 10
	A, err := Discover(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int{}
	for _, c := range A.Constraints {
		byKey[c.Key()] = c.N
	}
	// a→b (N=1) dominates (a,c)→b (also N=1): the superset is pruned.
	if _, ok := byKey["r(a,c->b)"]; ok {
		t.Error("dominated constraint r(a,c->b) not pruned")
	}
	// a→c (N=1) is tighter than ∅→c (N=3), so it survives, but it in turn
	// dominates (a,b)→c.
	if _, ok := byKey["r(a->c)"]; !ok {
		t.Error("tighter constraint r(a->c) wrongly pruned by looser ∅->c")
	}
	if _, ok := byKey["r(a,b->c)"]; ok {
		t.Error("dominated constraint r(a,b->c) not pruned")
	}
	// Without pruning the superset constraints appear.
	opts.PruneDominated = false
	A2, err := Discover(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range A2.Constraints {
		if c.Key() == "r(a,c->b)" {
			found = true
		}
	}
	if !found {
		t.Error("unpruned discovery lost a valid constraint")
	}
}

func TestSlackInflatesN(t *testing.T) {
	db := plantedDB(t)
	opts := DefaultOptions()
	opts.MaxN = 10
	opts.Slack = 2.0
	A, err := Discover(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range A.Constraints {
		if c.Key() == "r(a->b)" && c.N != 2 {
			t.Errorf("slack 2.0 should double N: got %d", c.N)
		}
	}
}

func TestSampleLimit(t *testing.T) {
	db := plantedDB(t)
	opts := DefaultOptions()
	opts.MaxN = 10
	opts.SampleLimit = 10
	if _, err := Discover(db, opts); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipConstraints(t *testing.T) {
	cs := MembershipConstraints("dine", [][]string{{"pid", "cid"}, {"cid"}})
	if len(cs) != 2 {
		t.Fatalf("got %d constraints", len(cs))
	}
	if !cs[0].IsIndexing() || !cs[1].IsIndexing() {
		t.Error("membership constraints must be indexing constraints")
	}
	if cs[0].N != 1 {
		t.Error("membership N must be 1")
	}
}

// TestDiscoverOnBenchmarkData: mining a real generated dataset returns a
// non-trivial schema that the instance satisfies.
func TestDiscoverOnBenchmarkData(t *testing.T) {
	d := workload.Airca()
	db, err := d.Gen(1.0/32, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxN = 40
	opts.SampleLimit = 2000
	A, err := Discover(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if A.Len() < 10 {
		t.Errorf("discovered only %d constraints", A.Len())
	}
	// Note: with SampleLimit, constraints hold on the sample; verify on
	// the full instance only for those mined without sampling.
	opts.SampleLimit = 0
	A2, err := Discover(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SatisfiesAll(A2); err != nil {
		t.Errorf("full-scan discovery produced violated constraint: %v", err)
	}
}

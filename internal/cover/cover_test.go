package cover

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/value"
)

// ex1Schema is the Example 1 setting: friend/dine/cafe with A0.
func ex1Schema() (ra.Schema, *access.Schema) {
	s := ra.Schema{
		"friend": {"pid", "fid"},
		"dine":   {"pid", "cid", "month", "year"},
		"cafe":   {"cid", "city"},
	}
	A := access.NewSchema(
		access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000},
		access.Constraint{Rel: "dine", X: []string{"pid", "year", "month"}, Y: []string{"cid"}, N: 31},
		access.Constraint{Rel: "dine", X: []string{"pid", "cid"}, Y: []string{"pid", "cid"}, N: 1},
		access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1},
	)
	return s, A
}

func ex1Q1() ra.Query {
	p0, may, y, nyc := value.NewInt(0), value.NewInt(5), value.NewInt(2015), value.NewStr("nyc")
	return ra.Proj(
		ra.Sel(ra.Prod(ra.R("friend", "f"), ra.R("dine", "d"), ra.R("cafe", "c")),
			ra.EqC(ra.A("f", "pid"), p0),
			ra.Eq(ra.A("f", "fid"), ra.A("d", "pid")),
			ra.EqC(ra.A("d", "month"), may),
			ra.EqC(ra.A("d", "year"), y),
			ra.Eq(ra.A("d", "cid"), ra.A("c", "cid")),
			ra.EqC(ra.A("c", "city"), nyc),
		),
		ra.A("c", "cid"),
	)
}

func ex1Q2() ra.Query {
	return ra.Proj(
		ra.Sel(ra.R("dine", "d2"), ra.EqC(ra.A("d2", "pid"), value.NewInt(0))),
		ra.A("d2", "cid"),
	)
}

func TestExample1Q1Covered(t *testing.T) {
	s, A := ex1Schema()
	res, err := Check(ex1Q1(), s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered || !res.Fetchable || !res.Indexed {
		t.Fatalf("Q1 should be covered:\n%s", res.Explain())
	}
	if len(res.Subs) != 1 {
		t.Fatalf("Q1 has %d max SPC sub-queries", len(res.Subs))
	}
	sub := res.Subs[0]
	// The chosen index for cafe must be ψ4 (the only one).
	if got := sub.IndexBy["c"].Base.Key(); got != "cafe(cid->city)" {
		t.Errorf("cafe indexed by %s", got)
	}
	// dine is indexed by ψ2 (N=31), not ψ3 (which lacks month/year in XY).
	if got := sub.IndexBy["d"].Base.N; got != 31 {
		t.Errorf("dine indexed with N=%d, want 31", got)
	}
}

func TestExample1Q2NotCovered(t *testing.T) {
	s, A := ex1Schema()
	res, err := Check(ex1Q2(), s, A)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatal("Q2 must not be covered under A0")
	}
	if res.Fetchable {
		t.Error("Q2 must not be fetchable (cid unreachable from pid alone)")
	}
	// The missing attribute is the cid class.
	if len(res.Subs[0].Missing) == 0 {
		t.Error("no missing attributes reported")
	}
	exp := res.Explain()
	if !strings.Contains(exp, "covered: false") {
		t.Errorf("Explain: %q", exp)
	}
}

func TestExample1Q0DiffCoverage(t *testing.T) {
	s, A := ex1Schema()
	q0 := ra.D(ex1Q1(), ex1Q2())
	res, err := Check(q0, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Error("Q0 = Q1 − Q2 must not be covered (Q2 is not)")
	}
	if len(res.Subs) != 2 {
		t.Errorf("Q0 has %d max SPC sub-queries, want 2", len(res.Subs))
	}
}

func TestEmptyXConstraintSeedsCoverage(t *testing.T) {
	s := ra.Schema{"cal": {"month", "day"}}
	A := access.NewSchema(
		access.Constraint{Rel: "cal", X: nil, Y: []string{"month"}, N: 12},
		access.Constraint{Rel: "cal", X: []string{"month"}, Y: []string{"day"}, N: 31},
	)
	// q: all (month, day) pairs — no constants at all, yet covered via
	// ∅ → month → day.
	q := ra.Proj(ra.R("cal", "c"), ra.A("c", "month"), ra.A("c", "day"))
	res, err := Check(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("query should be covered via ∅→month:\n%s", res.Explain())
	}
}

func TestIndexedRequiresSameTupleCondition(t *testing.T) {
	s := ra.Schema{"r": {"a", "b", "c"}}
	// b and c are both fetchable from a, but no constraint has both b and c
	// in XY, so tuples (b,c) cannot be validated as coming from one tuple.
	A := access.NewSchema(
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3},
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"c"}, N: 3},
	)
	q := ra.Proj(
		ra.Sel(ra.R("r", "r1"), ra.EqC(ra.A("r1", "a"), value.NewInt(1))),
		ra.A("r1", "b"), ra.A("r1", "c"),
	)
	res, err := Check(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fetchable {
		t.Error("b and c are individually fetchable")
	}
	if res.Indexed {
		t.Error("no constraint covers {a,b,c} in one XY — must not be indexed")
	}
	// Adding a combined constraint fixes it.
	A2 := access.NewSchema(append(A.Constraints,
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b", "c"}, N: 9})...)
	res2, err := Check(q, s, A2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Covered {
		t.Errorf("combined constraint should cover:\n%s", res2.Explain())
	}
}

func TestEqualityPropagatesCoverageAcrossRelations(t *testing.T) {
	s := ra.Schema{"r": {"a", "b"}, "s": {"b", "c"}}
	A := access.NewSchema(
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 4},
		access.Constraint{Rel: "s", X: []string{"b"}, Y: []string{"c"}, N: 4},
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a"}, N: 1},
	)
	q := ra.Proj(
		ra.Sel(ra.Prod(ra.R("r", "r1"), ra.R("s", "s1")),
			ra.EqC(ra.A("r1", "a"), value.NewInt(7)),
			ra.Eq(ra.A("r1", "b"), ra.A("s1", "b"))),
		ra.A("s1", "c"),
	)
	res, err := Check(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("chain a→b=b→c should be covered:\n%s", res.Explain())
	}
	// Removing the r constraint breaks the chain.
	res2, err := Check(q, s, A.Without("r(a->b)"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Covered {
		t.Error("broken chain still covered")
	}
}

func TestConstantOnlyQueryCovered(t *testing.T) {
	s := ra.Schema{"r": {"a", "b"}}
	A := access.NewSchema(
		access.Constraint{Rel: "r", X: []string{"a", "b"}, Y: []string{"a", "b"}, N: 1},
	)
	// Both attributes constant: fetchable trivially, indexed via the
	// membership constraint.
	q := ra.Proj(
		ra.Sel(ra.R("r", "r1"),
			ra.EqC(ra.A("r1", "a"), value.NewInt(1)),
			ra.EqC(ra.A("r1", "b"), value.NewInt(2))),
		ra.A("r1", "a"),
	)
	res, err := Check(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("constant membership query should be covered:\n%s", res.Explain())
	}
}

func TestNoConstraintsNothingCovered(t *testing.T) {
	s := ra.Schema{"r": {"a"}}
	q := ra.Proj(ra.R("r", "r1"), ra.A("r1", "a"))
	res, err := Check(q, s, access.NewSchema())
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered || res.Indexed || res.Fetchable {
		t.Error("query covered under empty access schema")
	}
}

func TestCheckRejectsInvalidQuery(t *testing.T) {
	s := ra.Schema{"r": {"a"}}
	if _, err := Check(ra.R("zzz", "z"), s, access.NewSchema()); err == nil {
		t.Error("expected validation error")
	}
}

func TestUsedConstraintKeys(t *testing.T) {
	s, A := ex1Schema()
	res, err := Check(ex1Q1(), s, A)
	if err != nil {
		t.Fatal(err)
	}
	used := res.UsedConstraintKeys()
	for _, want := range []string{"friend(pid->fid)", "dine(pid,year,month->cid)", "cafe(cid->city)"} {
		if !used[want] {
			t.Errorf("used set missing %s: %v", want, used)
		}
	}
	if used["dine(pid,cid->pid,cid)"] {
		t.Error("ψ3 should not be needed for Q1")
	}
}

func TestCoveredAttrsSorted(t *testing.T) {
	s, A := ex1Schema()
	res, _ := Check(ex1Q1(), s, A)
	attrs := res.Subs[0].CoveredAttrs()
	for i := 1; i < len(attrs); i++ {
		if attrs[i].Less(attrs[i-1]) {
			t.Errorf("CoveredAttrs not sorted: %v", attrs)
		}
	}
}

func TestConflictingConstantsStillAnalyzable(t *testing.T) {
	s := ra.Schema{"r": {"a", "b"}}
	A := access.NewSchema(access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a", "b"}, N: 2})
	q := ra.Proj(
		ra.Sel(ra.R("r", "r1"),
			ra.EqC(ra.A("r1", "a"), value.NewInt(1)),
			ra.EqC(ra.A("r1", "a"), value.NewInt(2))),
		ra.A("r1", "b"),
	)
	res, err := Check(q, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Subs[0].Classes.Conflict {
		t.Error("conflict not detected")
	}
	// The unsatisfiable query is still covered (constant class is seed).
	if !res.Covered {
		t.Errorf("unsatisfiable but syntactically covered query rejected:\n%s", res.Explain())
	}
}

package cover_test

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
	"repro/internal/plan"
	"repro/internal/workload"
)

// TestCoveredImpliesPlanExists is Theorem 2(2) exercised mechanically:
// every random query CovChk declares covered must yield a valid canonical
// bounded plan with a finite data-independent access bound — without
// touching any data. This is the pure meta-level soundness check; the
// differential tests in internal/exec add the data-level half.
func TestCoveredImpliesPlanExists(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(123))
			params := workload.DefaultQueryParams()
			coveredCount := 0
			for i := 0; i < 150; i++ {
				params.Sel = 3 + rng.Intn(7)
				params.Join = rng.Intn(6)
				params.UniDiff = rng.Intn(6)
				q, err := d.RandomQuery(params, rng)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cover.Check(q, d.Schema, d.Access)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Covered {
					// Theorem consistency: covered = fetchable ∧ indexed.
					if res.Fetchable && res.Indexed {
						t.Fatalf("not covered but fetchable and indexed: %s", q)
					}
					continue
				}
				coveredCount++
				if !res.Fetchable || !res.Indexed {
					t.Fatalf("covered but not fetchable/indexed: %s", q)
				}
				p, err := plan.Build(res)
				if err != nil {
					t.Fatalf("covered query has no plan (Theorem 2(2) violated): %v\n%s", err, q)
				}
				if err := p.Validate(d.Access); err != nil {
					t.Fatalf("generated plan invalid: %v", err)
				}
				conflicted := false
				for _, sub := range res.Subs {
					if sub.Classes.Conflict {
						conflicted = true
					}
				}
				// Provably empty sub-queries compile to constants and may
				// access nothing; otherwise the bound must be positive.
				if !conflicted && p.MaxAccessBound() <= 0 {
					t.Fatalf("covered query with non-positive access bound: %s", q)
				}
				if p.MaxAccessBound() < 0 {
					t.Fatalf("negative access bound: %s", q)
				}
				// Lemma 8: plan length bounded by O(|Q||A|).
				if p.Length() > 10*len(res.Subs)*(d.Access.Size()+100) {
					t.Errorf("plan length %d suspiciously large", p.Length())
				}
			}
			if coveredCount == 0 {
				t.Error("no covered queries sampled — test is vacuous")
			}
			t.Logf("%s: %d covered queries planned", d.Name, coveredCount)
		})
	}
}

// TestMonotonicity: adding constraints never un-covers a query
// (cov(Q,A) ⊆ cov(Q,A′) for A ⊆ A′).
func TestCoverageMonotonicity(t *testing.T) {
	d := workload.Airca()
	rng := rand.New(rand.NewSource(321))
	params := workload.DefaultQueryParams()
	half := d.AccessFraction(0.5)
	for i := 0; i < 60; i++ {
		params.Sel = 4 + rng.Intn(5)
		params.Join = rng.Intn(4)
		q, err := d.RandomQuery(params, rng)
		if err != nil {
			t.Fatal(err)
		}
		small, err := cover.Check(q, d.Schema, half)
		if err != nil {
			t.Fatal(err)
		}
		if !small.Covered {
			continue
		}
		full, err := cover.Check(q, d.Schema, d.Access)
		if err != nil {
			t.Fatal(err)
		}
		if !full.Covered {
			t.Fatalf("query covered by half schema but not full (monotonicity violated): %s", q)
		}
	}
}

// Package cover implements CovChk (Section 4): deciding in O(|Q|²+|A|) time
// whether an RA query Q is covered by an access schema A, i.e. whether every
// max SPC sub-query of Q is both fetchable via A (Lemma 4: ΣQs,A ⊨ X̂C → X̂Qs)
// and indexed by A. Covered queries are the paper's effective syntax for
// boundedly evaluable RA queries (Theorem 2).
package cover

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/fd"
	"repro/internal/ra"
)

// Sub is the coverage analysis of one max SPC sub-query.
type Sub struct {
	SPC     *ra.SPC
	Classes *ra.Classes
	// FDs is ΣQs,A: the induced FDs over class representatives. Each FD is
	// tagged with the base-constraint key it was induced from.
	FDs *fd.Set
	// ConstClasses is X̂Qs_C: representatives of classes bound to constants.
	ConstClasses []ra.Attr
	// XHat is X̂Qs = ρU(XQs), de-duplicated.
	XHat []ra.Attr
	// Cov is the chase result: the closure of ConstClasses under FDs,
	// which coincides with cov(Qs,A) at class level (proof of Lemma 4).
	Cov *fd.Derived
	// Fetchable reports XQs ⊆ cov(Qs,A).
	Fetchable bool
	// Missing lists the uncovered classes of X̂Qs when not fetchable.
	Missing []ra.Attr
	// Indexed reports that every relation occurrence has an indexing
	// constraint; IndexBy records the chosen one (minimal N) per occurrence.
	Indexed    bool
	IndexBy    map[string]access.ActualConstraint
	NotIndexed []string
}

// Result is the full coverage analysis of a query.
type Result struct {
	Query  ra.Query
	Schema ra.Schema
	Access *access.Schema
	Act    *access.Actualized
	Subs   []*Sub

	Covered   bool
	Fetchable bool
	Indexed   bool
}

// Check runs algorithm CovChk on normalized query q under access schema A.
func Check(q ra.Query, s ra.Schema, A *access.Schema) (*Result, error) {
	if err := ra.Validate(q, s); err != nil {
		return nil, err
	}
	subsSPC, err := ra.MaxSPC(q, s)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Query:     q,
		Schema:    s,
		Access:    A,
		Act:       A.Actualize(q),
		Covered:   true,
		Fetchable: true,
		Indexed:   true,
	}
	for _, spc := range subsSPC {
		sub, err := checkSub(spc, s, res.Act)
		if err != nil {
			return nil, err
		}
		res.Subs = append(res.Subs, sub)
		res.Fetchable = res.Fetchable && sub.Fetchable
		res.Indexed = res.Indexed && sub.Indexed
	}
	res.Covered = res.Fetchable && res.Indexed
	return res, nil
}

func checkSub(spc *ra.SPC, s ra.Schema, act *access.Actualized) (*Sub, error) {
	// Register every attribute of every occurrence, not only XQs: induced
	// FDs range over all attributes of the occurrences (their X sides may
	// use attributes outside XQs).
	var all []ra.Attr
	for _, rel := range spc.Rels {
		names, err := s.Attrs(rel.Base)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			all = append(all, ra.Attr{Rel: rel.Name, Name: n})
		}
	}
	classes := ra.NewClasses(all, spc.Preds)

	sub := &Sub{
		SPC:          spc,
		Classes:      classes,
		FDs:          &fd.Set{},
		ConstClasses: classes.ConstClasses(),
		XHat:         classes.Reps(spc.X),
		IndexBy:      map[string]access.ActualConstraint{},
	}

	// Induced FDs ΣQs,A: one per actualized constraint on an occurrence of
	// this sub-query, unified via ρU.
	for _, rel := range spc.Rels {
		for _, ac := range act.ByRel[rel.Name] {
			sub.FDs.Add(fd.FD{
				L:   classes.Reps(ac.XAttrs(rel.Name)),
				R:   classes.Reps(ac.YAttrs(rel.Name)),
				Src: ac.Base.Key(),
				N:   ac.N,
			})
		}
	}

	// Fetchable: ΣQs,A ⊨ X̂C → X̂Qs (Lemma 4), computed as the chase
	// cov(Qs,A) = closure of the constant classes.
	sub.Cov = sub.FDs.Closure(sub.ConstClasses)
	sub.Missing = sub.FDs.Missing(sub.ConstClasses, sub.XHat)
	sub.Fetchable = len(sub.Missing) == 0

	// Indexed: each occurrence S needs a constraint S(X→Y,N) with
	// S[X] ⊆ cov(Qs,A) and X^S_Qs ⊆ S[XY].
	sub.Indexed = true
	for _, rel := range spc.Rels {
		need := spc.RelAttrs(rel.Name)
		best, ok := chooseIndex(act.ByRel[rel.Name], rel.Name, need, classes, sub.Cov)
		if !ok {
			sub.Indexed = false
			sub.NotIndexed = append(sub.NotIndexed, rel.Name)
			continue
		}
		sub.IndexBy[rel.Name] = best
	}
	sort.Strings(sub.NotIndexed)
	return sub, nil
}

// chooseIndex picks the indexing constraint with the smallest N among the
// candidates that satisfy the indexed-by condition for occurrence rel.
func chooseIndex(cands []access.ActualConstraint, rel string, need []ra.Attr,
	classes *ra.Classes, cov *fd.Derived) (access.ActualConstraint, bool) {
	var best access.ActualConstraint
	found := false
	for _, ac := range cands {
		if !covers(ac, rel, need, classes, cov) {
			continue
		}
		if !found || ac.N < best.N {
			best = ac
			found = true
		}
	}
	return best, found
}

func covers(ac access.ActualConstraint, rel string, need []ra.Attr,
	classes *ra.Classes, cov *fd.Derived) bool {
	for _, x := range ac.XAttrs(rel) {
		if !cov.In[classes.Rep(x)] {
			return false
		}
	}
	inXY := map[string]bool{}
	for _, x := range ac.X {
		inXY[x] = true
	}
	for _, y := range ac.Y {
		inXY[y] = true
	}
	for _, a := range need {
		if !inXY[a.Name] {
			return false
		}
	}
	return true
}

// CoveredAttrs returns cov(Qs,A) as a sorted list of class representatives.
func (s *Sub) CoveredAttrs() []ra.Attr {
	out := make([]ra.Attr, 0, len(s.Cov.Order))
	out = append(out, s.Cov.Order...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Explain renders a human-readable coverage report.
func (r *Result) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", r.Query.String())
	fmt.Fprintf(&sb, "covered: %v (fetchable: %v, indexed: %v)\n", r.Covered, r.Fetchable, r.Indexed)
	for i, sub := range r.Subs {
		fmt.Fprintf(&sb, "max SPC sub-query #%d: %s\n", i+1, sub.SPC.Root.String())
		fmt.Fprintf(&sb, "  fetchable: %v", sub.Fetchable)
		if !sub.Fetchable {
			parts := make([]string, len(sub.Missing))
			for j, a := range sub.Missing {
				parts[j] = a.String()
			}
			fmt.Fprintf(&sb, " (missing: %s)", strings.Join(parts, ", "))
		}
		sb.WriteByte('\n')
		fmt.Fprintf(&sb, "  indexed: %v", sub.Indexed)
		if !sub.Indexed {
			fmt.Fprintf(&sb, " (no index for: %s)", strings.Join(sub.NotIndexed, ", "))
		}
		sb.WriteByte('\n')
		rels := make([]string, 0, len(sub.IndexBy))
		for rel := range sub.IndexBy {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			fmt.Fprintf(&sb, "  index %s via %s\n", rel, sub.IndexBy[rel].Constraint.String())
		}
	}
	return sb.String()
}

// UsedConstraintKeys returns the keys of the base constraints referenced by
// the analysis: all constraints inducing FDs used in some chase derivation
// of a needed class, plus the chosen indexing constraints. It is the support
// set the minimizers start from.
func (r *Result) UsedConstraintKeys() map[string]bool {
	used := map[string]bool{}
	for _, sub := range r.Subs {
		// Walk back the chase derivations of the needed classes.
		var mark func(a ra.Attr)
		seen := map[ra.Attr]bool{}
		mark = func(a ra.Attr) {
			if seen[a] {
				return
			}
			seen[a] = true
			why, ok := sub.Cov.Why[a]
			if !ok || why < 0 {
				return
			}
			f := sub.FDs.FDs[why]
			if f.Src != "" {
				used[f.Src] = true
			}
			for _, l := range f.L {
				mark(l)
			}
		}
		for _, a := range sub.XHat {
			mark(a)
		}
		for rel, ac := range sub.IndexBy {
			used[ac.Base.Key()] = true
			// The X side of the chosen index must itself stay covered.
			for _, x := range ac.XAttrs(rel) {
				mark(sub.Classes.Rep(x))
			}
		}
	}
	return used
}

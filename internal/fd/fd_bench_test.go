package fd

import (
	"fmt"
	"testing"

	"repro/internal/ra"
)

// BenchmarkClosure measures the linear-time FD closure on a chain of n
// dependencies — the inner loop of CovChk (Lemma 4).
func BenchmarkClosure(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			s := &Set{}
			for i := 0; i < n; i++ {
				s.Add(FD{
					L: []ra.Attr{ra.A("r", fmt.Sprintf("a%d", i))},
					R: []ra.Attr{ra.A("r", fmt.Sprintf("a%d", i+1))},
				})
			}
			seed := []ra.Attr{ra.A("r", "a0")}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := s.Closure(seed)
				if len(d.Order) != n+1 {
					b.Fatalf("closure size %d", len(d.Order))
				}
			}
		})
	}
}

// BenchmarkClosureWide measures closure with wide left-hand sides.
func BenchmarkClosureWide(b *testing.B) {
	s := &Set{}
	attrs := make([]ra.Attr, 64)
	for i := range attrs {
		attrs[i] = ra.A("r", fmt.Sprintf("a%d", i))
	}
	for i := 0; i+4 < len(attrs); i++ {
		s.Add(FD{L: attrs[i : i+4], R: attrs[i+4 : i+5]})
	}
	seed := attrs[:4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Closure(seed)
	}
}

package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ra"
)

func a(n string) ra.Attr { return ra.A("r", n) }

func TestClosureBasicChain(t *testing.T) {
	s := &Set{}
	s.Add(FD{L: []ra.Attr{a("x")}, R: []ra.Attr{a("y")}, Src: "c1"})
	s.Add(FD{L: []ra.Attr{a("y")}, R: []ra.Attr{a("z")}, Src: "c2"})
	d := s.Closure([]ra.Attr{a("x")})
	for _, n := range []string{"x", "y", "z"} {
		if !d.In[a(n)] {
			t.Errorf("%s not in closure", n)
		}
	}
	if d.Why[a("x")] != -1 {
		t.Error("seed attribute should have Why = -1")
	}
	if d.Why[a("y")] != 0 || d.Why[a("z")] != 1 {
		t.Errorf("Why chain wrong: %v", d.Why)
	}
}

func TestClosureMultiAttributeLHS(t *testing.T) {
	s := &Set{}
	s.Add(FD{L: []ra.Attr{a("x"), a("y")}, R: []ra.Attr{a("z")}})
	d := s.Closure([]ra.Attr{a("x")})
	if d.In[a("z")] {
		t.Error("FD fired with incomplete LHS")
	}
	d = s.Closure([]ra.Attr{a("x"), a("y")})
	if !d.In[a("z")] {
		t.Error("FD did not fire with complete LHS")
	}
}

func TestClosureEmptyLHSFiresImmediately(t *testing.T) {
	s := &Set{}
	s.Add(FD{L: nil, R: []ra.Attr{a("m")}})
	d := s.Closure(nil)
	if !d.In[a("m")] {
		t.Error("∅ → m should fire with empty seed")
	}
}

func TestClosureDuplicateLHSAttrs(t *testing.T) {
	s := &Set{}
	// Duplicated attribute in LHS must be counted once.
	s.Add(FD{L: []ra.Attr{a("x"), a("x")}, R: []ra.Attr{a("y")}})
	d := s.Closure([]ra.Attr{a("x")})
	if !d.In[a("y")] {
		t.Error("FD with duplicate LHS attr never fired")
	}
}

func TestImpliesAndMissing(t *testing.T) {
	s := &Set{}
	s.Add(FD{L: []ra.Attr{a("x")}, R: []ra.Attr{a("y")}})
	if !s.Implies([]ra.Attr{a("x")}, []ra.Attr{a("x"), a("y")}) {
		t.Error("Implies false negative")
	}
	if s.Implies([]ra.Attr{a("y")}, []ra.Attr{a("x")}) {
		t.Error("Implies false positive (FDs are not symmetric)")
	}
	miss := s.Missing([]ra.Attr{a("y")}, []ra.Attr{a("x"), a("y"), a("x")})
	if len(miss) != 1 || miss[0] != a("x") {
		t.Errorf("Missing = %v", miss)
	}
}

func TestClosureCycle(t *testing.T) {
	s := &Set{}
	s.Add(FD{L: []ra.Attr{a("x")}, R: []ra.Attr{a("y")}})
	s.Add(FD{L: []ra.Attr{a("y")}, R: []ra.Attr{a("x")}})
	d := s.Closure([]ra.Attr{a("x")})
	if !d.In[a("y")] {
		t.Error("cycle broke closure")
	}
	if len(d.Order) != 2 {
		t.Errorf("Order = %v", d.Order)
	}
}

// TestClosureMonotone: adding seeds never shrinks the closure.
func TestClosureMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c", "d", "e"}
		s := &Set{}
		for i := 0; i < rng.Intn(8); i++ {
			var l, r []ra.Attr
			for j := 0; j < 1+rng.Intn(2); j++ {
				l = append(l, a(names[rng.Intn(len(names))]))
			}
			for j := 0; j < 1+rng.Intn(2); j++ {
				r = append(r, a(names[rng.Intn(len(names))]))
			}
			s.Add(FD{L: l, R: r})
		}
		seed1 := []ra.Attr{a(names[rng.Intn(len(names))])}
		seed2 := append(append([]ra.Attr{}, seed1...), a(names[rng.Intn(len(names))]))
		d1 := s.Closure(seed1)
		d2 := s.Closure(seed2)
		for at := range d1.In {
			if !d2.In[at] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestClosureIsFixpoint: re-running closure on its own result adds nothing,
// and every FD whose LHS is inside the closure has its RHS inside too.
func TestClosureIsFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c", "d", "e", "f"}
		s := &Set{}
		for i := 0; i < rng.Intn(10); i++ {
			var l, r []ra.Attr
			for j := 0; j < 1+rng.Intn(3); j++ {
				l = append(l, a(names[rng.Intn(len(names))]))
			}
			r = append(r, a(names[rng.Intn(len(names))]))
			s.Add(FD{L: l, R: r})
		}
		d := s.Closure([]ra.Attr{a("a")})
		for _, f := range s.FDs {
			allIn := true
			for _, l := range f.L {
				if !d.In[l] {
					allIn = false
					break
				}
			}
			if allIn {
				for _, r := range f.R {
					if !d.In[r] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDerivedContains(t *testing.T) {
	s := &Set{}
	d := s.Closure([]ra.Attr{a("x")})
	if !d.Contains([]ra.Attr{a("x")}) || d.Contains([]ra.Attr{a("y")}) {
		t.Error("Contains wrong")
	}
}

func TestFDString(t *testing.T) {
	f := FD{L: []ra.Attr{a("x"), a("y")}, R: []ra.Attr{a("z")}}
	if f.String() != "r.x,r.y -> r.z" {
		t.Errorf("String = %q", f.String())
	}
}

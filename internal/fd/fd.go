// Package fd implements functional dependencies over unified attribute
// classes and the linear-time closure/implication algorithm (Beeri &
// Bernstein) that Lemma 4 reduces fetchability checking to: an SPC
// sub-query Qs is fetchable via A iff ΣQs,A ⊨ X̂C → X̂Qs.
package fd

import (
	"sort"
	"strings"

	"repro/internal/ra"
)

// FD is a functional dependency L → R over class representatives, tagged
// with the key of the access constraint it was induced from (empty for
// synthetic FDs).
type FD struct {
	L, R []ra.Attr
	// Src is the Key() of the (base) access constraint that induced this FD.
	Src string
	// N is the cardinality bound of the inducing constraint.
	N int
}

// String renders the FD as L -> R.
func (f FD) String() string {
	return joinAttrs(f.L) + " -> " + joinAttrs(f.R)
}

func joinAttrs(attrs []ra.Attr) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// Set is a collection of FDs supporting linear-time closure.
type Set struct {
	FDs []FD
}

// Add appends an FD.
func (s *Set) Add(f FD) { s.FDs = append(s.FDs, f) }

// Closure computes the attribute closure of seed under the FDs using the
// counting algorithm: O(total FD length) after setup. The returned Derived
// records, for each newly derived attribute, the index of the FD that first
// produced it (the chase step), which the plan generator and minimizers use.
func (s *Set) Closure(seed []ra.Attr) *Derived {
	d := &Derived{
		In:  map[ra.Attr]bool{},
		Why: map[ra.Attr]int{},
	}
	for _, a := range seed {
		if !d.In[a] {
			d.In[a] = true
			d.Why[a] = -1 // seed
			d.Order = append(d.Order, a)
		}
	}
	// counter[i] = number of attributes of FDs[i].L not yet in the closure.
	counter := make([]int, len(s.FDs))
	// watch maps attribute -> FDs waiting on it.
	watch := map[ra.Attr][]int{}
	queue := make([]ra.Attr, 0, len(seed))
	for i, f := range s.FDs {
		need := 0
		seen := map[ra.Attr]bool{}
		for _, a := range f.L {
			if seen[a] {
				continue
			}
			seen[a] = true
			if !d.In[a] {
				need++
				watch[a] = append(watch[a], i)
			}
		}
		counter[i] = need
		if need == 0 {
			// FD fires immediately.
			for _, r := range f.R {
				if !d.In[r] {
					d.In[r] = true
					d.Why[r] = i
					d.Order = append(d.Order, r)
					queue = append(queue, r)
				}
			}
		}
	}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for _, i := range watch[a] {
			counter[i]--
			if counter[i] == 0 {
				for _, r := range s.FDs[i].R {
					if !d.In[r] {
						d.In[r] = true
						d.Why[r] = i
						d.Order = append(d.Order, r)
						queue = append(queue, r)
					}
				}
			}
		}
		delete(watch, a)
	}
	return d
}

// Implies reports whether the set logically implies seed → goal, i.e.
// goal ⊆ closure(seed).
func (s *Set) Implies(seed, goal []ra.Attr) bool {
	d := s.Closure(seed)
	for _, g := range goal {
		if !d.In[g] {
			return false
		}
	}
	return true
}

// Missing returns the attributes of goal not derivable from seed, sorted.
func (s *Set) Missing(seed, goal []ra.Attr) []ra.Attr {
	d := s.Closure(seed)
	var out []ra.Attr
	seen := map[ra.Attr]bool{}
	for _, g := range goal {
		if !d.In[g] && !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Derived is the result of a closure computation.
type Derived struct {
	// In is membership in the closure.
	In map[ra.Attr]bool
	// Why maps each derived attribute to the index of the FD that first
	// produced it; -1 for seed attributes.
	Why map[ra.Attr]int
	// Order lists the closure in derivation order (seeds first).
	Order []ra.Attr
}

// Contains reports whether all of attrs are in the closure.
func (d *Derived) Contains(attrs []ra.Attr) bool {
	for _, a := range attrs {
		if !d.In[a] {
			return false
		}
	}
	return true
}

package server

import (
	"context"
	"strings"
	"testing"
)

// TestClientResponseLimit pins the oversized-response contract: a body
// over the client's cap fails with an explicit limit error — naming the
// remedy — instead of being silently truncated into a JSON parse error,
// and a response exactly within the cap still decodes.
func TestClientResponseLimit(t *testing.T) {
	_, c := startServer(t, testEngine(t), Config{})
	ctx := context.Background()
	const q = "q(f) :- friend(0, f)"

	// Sanity: the query works at the default limit.
	resp, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount == 0 {
		t.Fatal("probe query returned no rows; the limit test needs a non-trivial body")
	}

	c.SetMaxResponseBytes(16)
	_, err = c.Query(ctx, q)
	if err == nil {
		t.Fatal("oversized response decoded despite the 16-byte client limit")
	}
	if !strings.Contains(err.Error(), "exceeds the client's 16-byte limit") {
		t.Fatalf("error = %v, want an explicit response-limit error", err)
	}
	if strings.Contains(err.Error(), "unexpected end of JSON") {
		t.Fatalf("error = %v, leaks the old truncated-JSON failure", err)
	}

	// Restore a workable limit: same client, same query, success again —
	// the limit gates size, it does not poison the connection.
	c.SetMaxResponseBytes(1 << 20)
	if _, err := c.Query(ctx, q); err != nil {
		t.Fatalf("query after raising the limit: %v", err)
	}

	// Error responses respect the cap too, and <= 0 is ignored.
	c.SetMaxResponseBytes(0)
	if _, err := c.Query(ctx, q); err != nil {
		t.Fatalf("SetMaxResponseBytes(0) must be a no-op: %v", err)
	}
}

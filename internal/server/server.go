// Package server is the HTTP/JSON network front end over the serving
// layer: it exposes a core.Engine — the bounded-evaluation pipeline of
// conf_sigmod_CaoF16 (Fig. 4) behind the PR 1 plan cache — to remote
// clients, turning the in-process engine into the long-lived multi-client
// service that bounded evaluation is designed for (repeated queries over a
// mutating database, answered by fetching a bounded fraction of it).
//
// Endpoints:
//
//	POST /query    execute a rule-language query; rows + plan/cache/boundedness metadata
//	POST /insert   insert a batch of tuples into one relation
//	POST /delete   delete a batch of tuples from one relation
//	POST /reshard  change the shard count of a sharded serving layer online
//	GET  /schema   relational schema + installed access constraints
//	GET  /stats    plan-cache counters, DB/index sizes, request accounting,
//	               ring epoch + migration progress when sharded
//	GET  /healthz  liveness probe
//
// The server preserves the serving-layer invariant: tuple writes through
// /insert and /delete keep every cached plan valid (the indices I_A are
// maintained incrementally, Proposition 12), so the engine version reported
// in responses does not change under data churn; only access-schema
// changes bump it and purge the cache.
//
// Concurrency is bounded by a semaphore on /query (MaxInFlight); each
// request runs under a deadline (RequestTimeout) and is logged
// structurally via log/slog. Shutdown drains in-flight requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ivm"
	"repro/internal/parser"
	"repro/internal/ra"
	"repro/internal/shard"
	"repro/internal/value"
	"repro/internal/wal"
)

// Config tunes a Server. The zero value is usable: DefaultConfig fills in
// every field New would otherwise default.
type Config struct {
	// Addr is the listen address for Start ("host:port"; ":0" picks a free
	// port). Ignored by Serve, which takes its own listener.
	Addr string
	// RequestTimeout bounds each request end to end; a /query that
	// overruns it answers 504. 0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing /query requests; excess
	// requests wait their turn until their deadline. 0 means
	// 4×GOMAXPROCS; negative means unlimited.
	MaxInFlight int
	// MaxRows is the default row cap on /query responses when the request
	// does not set one. 0 means DefaultMaxRows; negative means unlimited.
	MaxRows int
	// Options is the base execution options for /query; per-request fields
	// (Parallel, Workers, NoCache) override it. The zero Options means
	// core.DefaultOptions().
	Options *core.Options
	// Logger receives one structured line per request. nil means
	// slog.Default.
	Logger *slog.Logger
}

// Defaults for Config fields left zero.
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxRows        = 1000
)

// DefaultConfig returns the configuration New applies over a zero Config.
func DefaultConfig() Config {
	opts := core.DefaultOptions()
	return Config{
		Addr:           ":8080",
		RequestTimeout: DefaultRequestTimeout,
		MaxInFlight:    4 * runtime.GOMAXPROCS(0),
		MaxRows:        DefaultMaxRows,
		Options:        &opts,
	}
}

// Server serves a core.Engine over HTTP. Create one with New, start it
// with Start (own listener) or Serve (caller's listener), stop it with
// Shutdown. A Server is safe for concurrent use and for concurrent
// engine access by other parties — all engine state it reads is behind
// the engine's own synchronization.
type Server struct {
	eng  core.Service
	cfg  Config
	base core.Options
	mux  *http.ServeMux
	hs   *http.Server

	// sem bounds in-flight /query executions; nil = unlimited.
	sem chan struct{}
	// canon caches the canonical rule text of /query responses keyed by
	// the raw request text, so the hot path (repeated queries, the plan
	// cache's own regime) skips re-canonicalizing and re-formatting.
	// Safe to cache unconditionally: the rendering depends only on the
	// query and the relational schema, which is fixed for the engine's
	// lifetime — never on data or access-schema state.
	canon *cache.Cache

	start    time.Time
	requests atomic.Int64
	inFlight atomic.Int64
	// resharding serializes POST /reshard at the HTTP layer: the router's
	// own in-progress error is check-then-act from out here (a background
	// call is accepted before the migration becomes observable), so the
	// overlap answer 409 is enforced with this flag instead.
	resharding atomic.Bool

	listener net.Listener
	addrCh   chan string

	// repl tracks connected followers and snapshot downloads for the
	// /stats replication block. Purely observational: stream correctness
	// never depends on it (a follower resumes from its own local LSN).
	repl replRegistry

	// hookBeforeExecute, when set, runs in the execution goroutine before
	// the engine is called. Tests use it to hold queries in flight
	// deterministically; it is never set in production.
	hookBeforeExecute func()
}

// New builds a Server over eng — a single *core.Engine or any other
// core.Service implementation, such as the sharded router of
// internal/shard; the front end is agnostic to which one it is serving.
// Zero fields of cfg take the DefaultConfig values.
func New(eng core.Service, cfg Config) *Server {
	def := DefaultConfig()
	if cfg.Addr == "" {
		cfg.Addr = def.Addr
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = def.RequestTimeout
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = def.MaxInFlight
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = def.MaxRows
	}
	if cfg.Options == nil {
		cfg.Options = def.Options
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		eng:    eng,
		cfg:    cfg,
		base:   *cfg.Options,
		start:  time.Now(),
		addrCh: make(chan string, 1),
		canon:  cache.New(1024, 8),
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /insert", s.handleInsert)
	s.mux.HandleFunc("POST /delete", s.handleDelete)
	s.mux.HandleFunc("POST /reshard", s.handleReshard)
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /wal/stream", s.handleWALStream)
	s.mux.HandleFunc("GET /wal/snapshot", s.handleWALSnapshot)
	s.mux.HandleFunc("POST /wal/ack", s.handleWALAck)
	s.hs = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the server's root handler: the route mux wrapped with
// the per-request deadline and the structured request log.
func (s *Server) Handler() http.Handler {
	return s.logged(s.timed(s.mux))
}

// Start listens on cfg.Addr and serves until Shutdown. It blocks like
// http.Server.ListenAndServe and returns http.ErrServerClosed after a
// clean shutdown. Addr reports the bound address once listening.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown, blocking like http.Server.Serve.
func (s *Server) Serve(ln net.Listener) error {
	s.listener = ln
	select {
	case s.addrCh <- ln.Addr().String():
	default:
	}
	s.cfg.Logger.Info("server listening", "addr", ln.Addr().String())
	return s.hs.Serve(ln)
}

// Addr blocks until the server is listening and returns its bound address
// ("127.0.0.1:54321"). It is intended for tests and in-process harnesses
// that Start the server on ":0" in a goroutine.
func (s *Server) Addr() string {
	addr := <-s.addrCh
	// Re-stock so repeated calls keep answering.
	select {
	case s.addrCh <- addr:
	default:
	}
	return addr
}

// Shutdown stops accepting connections and waits for in-flight requests
// to finish, up to ctx's deadline (http.Server.Shutdown semantics).
func (s *Server) Shutdown(ctx context.Context) error {
	s.cfg.Logger.Info("server shutting down",
		"requests", s.requests.Load(), "inFlight", s.inFlight.Load())
	return s.hs.Shutdown(ctx)
}

// timed wraps next with the per-request deadline. The replication stream
// is exempt: it is a deliberately long-lived response that ends when the
// follower disconnects, not when a request deadline fires.
func (s *Server) timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/wal/stream" {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.NewResponseController reach the underlying writer, so
// the replication stream can flush through the logging wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// logged wraps next with request counting and one slog line per request.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		s.cfg.Logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", time.Since(t0),
			"remote", r.RemoteAddr,
		)
	})
}

// writeJSON answers with a JSON body and the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// writeError answers with an ErrorResponse.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// readBody decodes a JSON request body into dst, rejecting trailing data.
func readBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// acquire claims a /query slot, waiting until the request deadline. It
// reports whether the slot was obtained; on false the caller must not
// release.
func (s *Server) acquire(ctx context.Context) bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// queryOutcome carries an Execute result across the timeout boundary.
type queryOutcome struct {
	resp *QueryResponse
	code int
	err  error
}

// handleQuery parses, executes and renders one query. Execution runs in
// its own goroutine so a deadline overrun can answer 504 immediately; the
// abandoned execution finishes in the background and its slot is released
// only then, so MaxInFlight still bounds true engine concurrency.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := readBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"query\""))
		return
	}
	ctx := r.Context()
	if !s.acquire(ctx) {
		if clientGone(ctx) {
			writeError(w, statusClientClosedRequest,
				errors.New("client closed the request while waiting for a slot"))
			return
		}
		writeError(w, http.StatusServiceUnavailable,
			errors.New("server at capacity; retry later"))
		return
	}
	done := make(chan queryOutcome, 1)
	go func() {
		defer s.release()
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		if s.hookBeforeExecute != nil {
			s.hookBeforeExecute()
		}
		done <- s.runQuery(ctx, req)
	}()
	select {
	case out := <-done:
		if out.err != nil {
			writeError(w, out.code, out.err)
			return
		}
		writeJSON(w, http.StatusOK, out.resp)
	case <-ctx.Done():
		if clientGone(ctx) {
			// The connection is gone; the status only reaches the log.
			writeError(w, statusClientClosedRequest,
				errors.New("client closed the request mid-execution"))
			return
		}
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("query did not finish within %v", s.cfg.RequestTimeout))
	}
}

// statusClientClosedRequest labels requests whose client disconnected or
// canceled before the server finished — nginx's non-standard 499, kept
// distinct from 503/504 so operator dashboards don't count client
// disconnects as server capacity or timeout incidents.
const statusClientClosedRequest = 499

// clientGone reports whether ctx ended because the caller went away
// (disconnect, client-side cancel) rather than because the server's
// per-request deadline expired.
func clientGone(ctx context.Context) bool {
	return !errors.Is(context.Cause(ctx), context.DeadlineExceeded)
}

// lsnWaiter is implemented by core.Service implementations that apply a
// replicated log asynchronously (the follower node): WaitLSN blocks until
// the applied watermark reaches lsn or ctx ends. The front end uses it
// for the read-your-writes fence of QueryRequest.MinLSN.
type lsnWaiter interface {
	WaitLSN(ctx context.Context, lsn uint64) error
}

// runQuery is the synchronous body of handleQuery. ctx carries the
// request deadline into the MinLSN fence; execution itself is bounded by
// the outer select in handleQuery.
func (s *Server) runQuery(ctx context.Context, req QueryRequest) queryOutcome {
	if req.MinLSN > 0 {
		// Read-your-writes fence: on a follower, block until the applied
		// watermark covers the LSN the client observed on its last write.
		// A primary (anything without an asynchronous apply watermark)
		// trivially satisfies the fence — the LSN was assigned there.
		if fw, ok := s.eng.(lsnWaiter); ok {
			if err := fw.WaitLSN(ctx, req.MinLSN); err != nil {
				return queryOutcome{code: http.StatusGatewayTimeout,
					err: fmt.Errorf("replica did not reach LSN %d before the deadline: %w", req.MinLSN, err)}
			}
		}
	}
	q, err := s.eng.Parse(req.Query)
	if err != nil {
		return queryOutcome{code: http.StatusUnprocessableEntity, err: err}
	}
	opts := s.base
	if req.Parallel {
		opts.Parallel = true
		opts.Workers = req.Workers
	}
	if req.NoCache {
		opts.Cache = false
	}
	table, rep, err := s.eng.Execute(q, opts)
	if err != nil {
		return queryOutcome{code: http.StatusInternalServerError, err: err}
	}

	resp := &QueryResponse{
		Columns:       table.Cols,
		RowCount:      table.Len(),
		Covered:       rep.Covered,
		Rewritten:     rep.Rewritten,
		RewriteRules:  rep.RewriteRules,
		Bounded:       rep.Bounded,
		CacheHit:      rep.CacheHit,
		Materialized:  rep.Materialized,
		PlanLength:    rep.Stats.PlanLength,
		Accessed:      rep.Stats.Accessed,
		Fetched:       rep.Stats.Fetched,
		Scanned:       rep.Stats.Scanned,
		ElapsedMicros: rep.Stats.Duration.Microseconds(),
		CompileMicros: (rep.CheckTime + rep.MinimizeTime + rep.PlanTime).Microseconds(),
		Version:       rep.Version,
	}
	resp.Canonical = s.canonicalText(req.Query, q)

	limit := s.cfg.MaxRows
	if req.MaxRows != 0 {
		limit = req.MaxRows
	}
	rows := table.Sorted()
	if limit >= 0 && len(rows) > limit {
		rows = rows[:limit]
		resp.Truncated = true
	}
	resp.Rows = make([][]wireValue, len(rows))
	for i, row := range rows {
		resp.Rows[i] = encodeTuple(row)
	}
	return queryOutcome{resp: resp, code: http.StatusOK}
}

// canonicalText renders q's canonical form back into rule syntax, cached
// by the raw request text. The text is advisory: queries outside the rule
// fragment cache and return "".
func (s *Server) canonicalText(src string, q ra.Query) string {
	if v, ok := s.canon.Get(src); ok {
		return v.(string)
	}
	var text string
	if canon, err := ra.Canonical(q, s.eng.Schema()); err == nil {
		if t, err := parser.Format(canon, s.eng.Schema()); err == nil {
			text = t
		}
	}
	s.canon.Put(src, text)
	return text
}

// handleInsert applies a tuple-insert batch.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, s.eng.Insert)
}

// handleDelete applies a tuple-delete batch.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, s.eng.Delete)
}

// handleMutate is the shared body of /insert and /delete. Tuple writes
// deliberately do not touch the plan cache: incremental ⟨A, I_A⟩
// maintenance keeps every cached plan valid (Proposition 12), which the
// unchanged Version in the response makes observable.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request,
	apply func(string, value.Tuple) (bool, error)) {
	var req MutateRequest
	if err := readBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Relation == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"relation\""))
		return
	}
	applied := 0
	for i, wt := range req.Tuples {
		if err := r.Context().Err(); err != nil {
			status := http.StatusGatewayTimeout
			if clientGone(r.Context()) {
				status = statusClientClosedRequest
			}
			writeError(w, status,
				fmt.Errorf("mutation batch interrupted after %d of %d tuples", i, len(req.Tuples)))
			return
		}
		changed, err := apply(req.Relation, decodeTuple(wt))
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("tuple %d: %w", i, err))
			return
		}
		if changed {
			applied++
		}
	}
	resp := MutateResponse{
		Relation:  req.Relation,
		Requested: len(req.Tuples),
		Applied:   applied,
		Version:   s.eng.Version(),
	}
	if d, ok := s.eng.(durabler); ok {
		// The log LSN after the batch: a client that stamps it as MinLSN
		// on a follower read is guaranteed to observe this batch.
		if ws, on := d.DurabilityStats(); on {
			resp.LSN = ws.LastLSN
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSchema renders the relational schema and the installed access
// schema from a lock-consistent snapshot.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	A := s.eng.AccessSnapshot()
	resp := SchemaResponse{
		Relations:   map[string][]string{},
		Constraints: make([]WireConstraint, 0, A.Len()),
		Version:     s.eng.Version(),
	}
	for _, rel := range s.eng.Schema().Relations() {
		attrs, err := s.eng.Schema().Attrs(rel)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Relations[rel] = attrs
	}
	for _, c := range A.Constraints {
		resp.Constraints = append(resp.Constraints, WireConstraint{
			Rel: c.Rel, X: c.X, Y: c.Y, N: c.N,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// perShardStatser is implemented by sharded core.Service implementations
// (the router of internal/shard) that can break /stats down by engine.
type perShardStatser interface {
	PerShardStats() []core.EngineStat
}

// resharder is implemented by core.Service implementations that can
// change their shard count online (the router of internal/shard). The
// front end exposes it as POST /reshard and folds RingStatus into /stats.
type resharder interface {
	Reshard(ctx context.Context, targetN int) (*shard.ReshardReport, error)
	RingStatus() shard.RingStatus
}

// writePather is implemented by core.Service implementations with an
// asynchronous broadcast write pipeline, a routing layer and a
// distributed residue executor (the router of internal/shard); /stats
// folds all three counter sets in for operators.
type writePather interface {
	ApplyQueueStats() shard.ApplyQueueStats
	RouteStats() shard.RouteStats
	ResidueStats() shard.ResidueStats
}

// healther is implemented by core.Service implementations that can fail
// partially (a durable engine or router whose log or apply pipeline hit
// an error). A non-nil Health turns GET /healthz into 503 "degraded"
// with the first retained error.
type healther interface {
	Health() error
}

// durabler is implemented by core.Service implementations backed by a
// write-ahead log (core.OpenDurable, shard.OpenDurable); /stats folds
// the log counters in for operators.
type durabler interface {
	DurabilityStats() (wal.Stats, bool)
}

// ivmStatser is implemented by core.Service implementations that
// maintain materialized answers for hot fingerprints (core.Engine,
// shard.Router); /stats folds the view counters in for operators.
type ivmStatser interface {
	IVMStats() ivm.Stats
}

// handleReshard is the admin endpoint for online rebalancing. It answers
// 501 on an unsharded serving layer and 409 while another move is in
// flight. With "wait" the move runs under the request deadline (abort on
// timeout, so operators should raise the server timeout for big moves);
// without it the move runs in the background under the server's own
// lifetime and progress is visible in GET /stats.
func (s *Server) handleReshard(w http.ResponseWriter, r *http.Request) {
	rs, ok := s.eng.(resharder)
	if !ok {
		writeError(w, http.StatusNotImplemented,
			errors.New("serving layer is not sharded; start with -shards to enable /reshard"))
		return
	}
	var req ReshardRequest
	if err := readBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Shards < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("\"shards\" must be >= 1, got %d", req.Shards))
		return
	}
	if !s.resharding.CompareAndSwap(false, true) {
		writeError(w, http.StatusConflict, shard.ErrReshardInProgress)
		return
	}
	if !req.Wait {
		s.cfg.Logger.Info("reshard accepted", "target", req.Shards)
		go func() {
			defer s.resharding.Store(false)
			if rep, err := rs.Reshard(context.Background(), req.Shards); err != nil {
				s.cfg.Logger.Error("reshard failed", "target", req.Shards, "err", err)
			} else {
				s.cfg.Logger.Info("reshard complete", "from", rep.From, "to", rep.To,
					"moved", rep.Moved, "seeded", rep.Seeded, "epoch", rep.Epoch,
					"duration", rep.Duration)
			}
		}()
		writeJSON(w, http.StatusAccepted, ReshardResponse{Accepted: true, To: req.Shards})
		return
	}
	rep, err := rs.Reshard(r.Context(), req.Shards)
	s.resharding.Store(false)
	switch {
	case errors.Is(err, shard.ErrReshardInProgress):
		// A move started outside this server (in-process caller).
		writeError(w, http.StatusConflict, err)
		return
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("reshard aborted and rolled back: %w", err))
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, ReshardResponse{
		From:           rep.From,
		To:             rep.To,
		Moved:          rep.Moved,
		Seeded:         rep.Seeded,
		Epoch:          rep.Epoch,
		DurationMicros: rep.Duration.Microseconds(),
	})
}

// handleStats renders plan-cache counters and size/request accounting,
// plus a per-shard breakdown when the service is a sharded cluster.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Sample the apply queue before DBSize/IndexEntries: those fence (they
	// drain the queue for read-your-writes), and the depth gauge should
	// report the backlog as it stood when the request arrived, not after
	// the drain.
	var applyW *ApplyStatsWire
	var routesW *RouteStatsWire
	var residueW *ResidueStatsWire
	if wp, ok := s.eng.(writePather); ok {
		aq := wp.ApplyQueueStats()
		applyW = &ApplyStatsWire{
			Enqueued: aq.Enqueued,
			Applied:  aq.Applied,
			Depth:    aq.Depth,
			Batches:  aq.Batches,
			MaxBatch: aq.MaxBatch,
			Errors:   aq.Errors,
		}
		rt := wp.RouteStats()
		routesW = &RouteStatsWire{
			Single:    rt.Single,
			Double:    rt.Double,
			Scattered: rt.Scattered,
			Residue:   rt.Residue,
		}
		rd := wp.ResidueStats()
		residueW = &ResidueStatsWire{
			SemiJoins:     rd.SemiJoins,
			Shuffles:      rd.Shuffles,
			BroadcastRels: rd.BroadcastRels,
			Repartitions:  rd.Repartitions,
			BytesShipped:  rd.BytesShipped,
		}
	}
	var duraW *DurabilityWire
	if d, ok := s.eng.(durabler); ok {
		if ws, on := d.DurabilityStats(); on {
			duraW = &DurabilityWire{
				LastLSN:       ws.LastLSN,
				CheckpointLSN: ws.CheckpointLSN,
				Segments:      ws.Segments,
				SegmentBytes:  ws.SegmentBytes,
				Appends:       ws.Appends,
				Checkpoints:   ws.Checkpoints,
				Fsync:         ws.Fsync,
				Fsyncs:        ws.Fsyncs,
			}
			if ws.Fsyncs > 0 {
				duraW.FsyncMeanMicros = float64(ws.FsyncTotalMicros) / float64(ws.Fsyncs)
			}
		}
	}
	var ivmW *IVMStatsWire
	if iv, ok := s.eng.(ivmStatser); ok {
		st := iv.IVMStats()
		if st.Budget > 0 {
			ivmW = &IVMStatsWire{
				Materialized: st.Materialized,
				Budget:       st.Budget,
				Admitted:     st.Admitted,
				Evicted:      st.Evicted,
				Purged:       st.Purged,
				Hits:         st.Hits,
				DeltaApplies: st.DeltaApplies,
				Fallbacks:    st.Fallbacks,
				Denied:       st.Denied,
			}
		}
	}
	cs := s.eng.CacheStats()
	resp := StatsResponse{
		Cache:         cacheWire(cs),
		Executor:      execWire(exec.ReadCounters()),
		Apply:         applyW,
		Routes:        routesW,
		Residue:       residueW,
		Durability:    duraW,
		IVM:           ivmW,
		Replication:   s.replicationStats(),
		Follower:      s.followerStats(),
		DBSize:        s.eng.DBSize(),
		IndexEntries:  s.eng.IndexEntries(),
		Version:       s.eng.Version(),
		Requests:      s.requests.Load(),
		InFlight:      s.inFlight.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if ps, ok := s.eng.(perShardStatser); ok {
		for _, st := range ps.PerShardStats() {
			resp.Shards = append(resp.Shards, ShardStatsWire{
				Label:        st.Label,
				Queries:      st.Queries,
				Cache:        cacheWire(st.Cache),
				DBSize:       st.DBSize,
				IndexEntries: st.IndexEntries,
				Version:      st.Version,
			})
		}
	}
	if rs, ok := s.eng.(resharder); ok {
		status := rs.RingStatus()
		ring := &RingStatsWire{Epoch: status.Epoch, Shards: status.Shards, Vnodes: status.Vnodes}
		if m := status.Migration; m != nil {
			ring.Migration = &MigrationWire{
				From: m.From, To: m.To, Phase: m.Phase, Moved: m.Moved, Total: m.Total,
			}
		}
		resp.Ring = ring
	}
	writeJSON(w, http.StatusOK, resp)
}

// execWire converts the executor's process-wide counters to their JSON
// form, deriving the mean batch width and the arena pool hit rate.
func execWire(c exec.Counters) ExecStatsWire {
	w := ExecStatsWire{
		Batches:    c.Batches,
		Rows:       c.Rows,
		ArenaGets:  c.ArenaGets,
		ArenaNews:  c.ArenaNews,
		ArenaBytes: c.ArenaBytesInUse,
		SigBuilt:   c.SigBuilt,
		SigHit:     c.SigHit,
		SigMiss:    c.SigMiss,
	}
	if c.Batches > 0 {
		w.RowsPerBatch = float64(c.Rows) / float64(c.Batches)
	}
	if c.ArenaGets > 0 {
		w.PoolHitRate = 1 - float64(c.ArenaNews)/float64(c.ArenaGets)
	}
	return w
}

// cacheWire converts plan-cache counters to their JSON form.
func cacheWire(cs cache.Stats) CacheStatsWire {
	return CacheStatsWire{
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Evictions: cs.Evictions,
		Purges:    cs.Purges,
		Entries:   cs.Entries,
		HitRate:   cs.HitRate(),
	}
}

// handleHealth answers the liveness probe: 200 "ok" normally, 503
// "degraded" once the serving layer has retained a write-pipeline
// failure (an apply-queue batch rejection, or a log append/fsync/checkpoint
// error on a durable engine). The first error sticks until restart —
// after it, acknowledged writes may be missing from the log, so
// orchestrators should replace the process and let recovery replay the
// intact prefix.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.eng.(healther); ok {
		if err := h.Health(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				HealthResponse{Status: "degraded", Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

package server

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/ivm"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// testEngine builds a small covered scenario: the Example-1 graph-search
// schema with friend/dine/cafe and unit access constraints.
func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	schema := ra.Schema{
		"friend": {"pid", "fid"},
		"cafe":   {"cid", "city"},
		"dine":   {"pid", "cid"},
	}
	A := access.NewSchema(
		access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000},
		access.Constraint{Rel: "dine", X: []string{"pid"}, Y: []string{"cid"}, N: 31},
		access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1},
	)
	db := store.NewDB(schema)
	rows := []struct {
		rel string
		t   value.Tuple
	}{
		{"friend", value.Tuple{value.NewInt(0), value.NewInt(1)}},
		{"friend", value.Tuple{value.NewInt(0), value.NewInt(2)}},
		{"dine", value.Tuple{value.NewInt(1), value.NewInt(10)}},
		{"dine", value.Tuple{value.NewInt(2), value.NewInt(11)}},
		{"cafe", value.Tuple{value.NewInt(10), value.NewStr("nyc")}},
		{"cafe", value.Tuple{value.NewInt(11), value.NewStr("sf")}},
	}
	for _, r := range rows {
		if _, err := db.Insert(r.rel, r.t); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := core.NewEngine(schema, A, db)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// startServer launches srv on a loopback listener and returns a ready
// client. The server is shut down when the test ends.
func startServer(t testing.TB, eng core.Service, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := New(eng, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	c := NewClient(srv.Addr())
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, c
}

const friendQuery = "q(city) :- friend(0, f), dine(f, c), cafe(c, city)"

func TestQueryEndpoint(t *testing.T) {
	_, c := startServer(t, testEngine(t), Config{})
	ctx := context.Background()

	resp, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Covered || !resp.Bounded {
		t.Fatalf("want covered bounded query, got covered=%v bounded=%v", resp.Covered, resp.Bounded)
	}
	if resp.CacheHit {
		t.Fatal("first execution must be a cache miss")
	}
	if resp.RowCount != 2 || len(resp.Rows) != 2 {
		t.Fatalf("want 2 rows, got rowCount=%d len=%d", resp.RowCount, len(resp.Rows))
	}
	got := resp.RowTuples()
	if got[0][0].S != "nyc" || got[1][0].S != "sf" {
		t.Fatalf("unexpected rows %v", got)
	}
	if resp.Canonical == "" {
		t.Fatal("want canonical rule text for a rule-shaped query")
	}
	if resp.Accessed == 0 {
		t.Fatal("want nonzero access accounting")
	}

	resp2, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.CacheHit {
		t.Fatal("second execution must be a plan-cache hit")
	}
	if resp2.CompileMicros != 0 {
		t.Fatalf("cache hit must skip compilation, got %dµs", resp2.CompileMicros)
	}

	// A renamed, reordered variant shares the canonical fingerprint and
	// therefore hits too.
	variant := "q(town) :- cafe(x, town), dine(fr, x), friend(0, fr)"
	resp3, err := c.Query(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if !resp3.CacheHit {
		t.Fatal("canonically equal variant must hit the plan cache")
	}
}

func TestQueryOptions(t *testing.T) {
	_, c := startServer(t, testEngine(t), Config{})
	ctx := context.Background()

	// NoCache bypasses the plan cache.
	if _, err := c.Query(ctx, friendQuery); err != nil {
		t.Fatal(err)
	}
	resp, err := c.QueryOpts(ctx, QueryRequest{Query: friendQuery, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("noCache execution must not hit the cache")
	}

	// MaxRows truncates but reports the true cardinality.
	resp, err = c.QueryOpts(ctx, QueryRequest{Query: friendQuery, MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.RowCount != 2 || !resp.Truncated {
		t.Fatalf("want 1 of 2 rows truncated, got len=%d rowCount=%d truncated=%v",
			len(resp.Rows), resp.RowCount, resp.Truncated)
	}

	// Parallel execution returns the same answer.
	resp, err = c.QueryOpts(ctx, QueryRequest{Query: friendQuery, Parallel: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != 2 {
		t.Fatalf("parallel execution: want 2 rows, got %d", resp.RowCount)
	}
}

func TestQueryErrors(t *testing.T) {
	_, c := startServer(t, testEngine(t), Config{})
	ctx := context.Background()

	cases := []struct {
		name   string
		query  string
		status int
	}{
		{"empty", "", http.StatusBadRequest},
		{"syntax", "q(x) :- nope(", http.StatusUnprocessableEntity},
		{"unknown relation", "q(x) :- nosuch(x)", http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		_, err := c.Query(ctx, tc.query)
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: want *APIError, got %v", tc.name, err)
		}
		if apiErr.Status != tc.status {
			t.Fatalf("%s: want status %d, got %d (%s)", tc.name, tc.status, apiErr.Status, apiErr.Message)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post("http://"+strings.TrimPrefix(c.base, "http://")+"/query",
		"application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: want 400, got %d", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get("http://" + strings.TrimPrefix(c.base, "http://") + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: want 405, got %d", resp.StatusCode)
	}
}

// TestMutationKeepsPlansValid pins the PR 1 invariant on the wire: tuple
// writes leave the engine version unchanged and cached plans keep serving
// (and see the new data); access-schema changes bump the version.
func TestMutationKeepsPlansValid(t *testing.T) {
	eng := testEngine(t)
	_, c := startServer(t, eng, Config{})
	ctx := context.Background()

	warm, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}

	ins, err := c.Insert(ctx, "friend", []value.Tuple{
		{value.NewInt(0), value.NewInt(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ins.Applied != 1 || ins.Requested != 1 {
		t.Fatalf("want 1/1 applied, got %d/%d", ins.Applied, ins.Requested)
	}
	if ins.Version != warm.Version {
		t.Fatalf("tuple insert changed engine version %d -> %d", warm.Version, ins.Version)
	}
	if _, err := c.Insert(ctx, "dine", []value.Tuple{{value.NewInt(3), value.NewInt(12)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ctx, "cafe", []value.Tuple{{value.NewInt(12), value.NewStr("berlin")}}); err != nil {
		t.Fatal(err)
	}

	after, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !after.CacheHit {
		t.Fatal("cached plan must keep serving across tuple writes")
	}
	if after.RowCount != 3 {
		t.Fatalf("cached plan must see inserted data: want 3 rows, got %d", after.RowCount)
	}

	// Re-inserting an existing tuple is a set-semantics no-op.
	again, err := c.Insert(ctx, "friend", []value.Tuple{{value.NewInt(0), value.NewInt(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if again.Applied != 0 {
		t.Fatalf("duplicate insert: want 0 applied, got %d", again.Applied)
	}

	del, err := c.Delete(ctx, "friend", []value.Tuple{{value.NewInt(0), value.NewInt(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if del.Applied != 1 || del.Version != warm.Version {
		t.Fatalf("delete: want 1 applied at version %d, got %d at %d",
			warm.Version, del.Applied, del.Version)
	}
	final, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !final.CacheHit || final.RowCount != 2 {
		t.Fatalf("after delete: want cache hit with 2 rows, got hit=%v rows=%d",
			final.CacheHit, final.RowCount)
	}

	// An access-schema change, by contrast, must bump the version.
	if err := eng.AddConstraints(access.Constraint{
		Rel: "cafe", X: []string{"city"}, Y: []string{"cid"}, N: 100,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != warm.Version+1 {
		t.Fatalf("constraint change: want version %d, got %d", warm.Version+1, st.Version)
	}
	miss, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit {
		t.Fatal("plan compiled before a schema change must not be served after it")
	}

	// Mutation error paths.
	_, err = c.Insert(ctx, "nosuch", []value.Tuple{{value.NewInt(1)}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown relation: want 422, got %v", err)
	}
	_, err = c.Insert(ctx, "friend", []value.Tuple{{value.NewInt(1)}})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("arity mismatch: want 422, got %v", err)
	}
}

func TestSchemaAndStats(t *testing.T) {
	_, c := startServer(t, testEngine(t), Config{})
	ctx := context.Background()

	sch, err := c.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Relations) != 3 {
		t.Fatalf("want 3 relations, got %d", len(sch.Relations))
	}
	if got := sch.Relations["friend"]; len(got) != 2 || got[0] != "pid" || got[1] != "fid" {
		t.Fatalf("friend attrs: got %v", got)
	}
	if len(sch.Constraints) != 3 {
		t.Fatalf("want 3 constraints, got %d", len(sch.Constraints))
	}

	if _, err := c.Query(ctx, friendQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(ctx, friendQuery); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits < 1 || st.Cache.Misses < 1 || st.Cache.Entries < 1 {
		t.Fatalf("cache counters not reported: %+v", st.Cache)
	}
	if st.DBSize != 6 {
		t.Fatalf("want dbSize 6, got %d", st.DBSize)
	}
	if st.IndexEntries == 0 {
		t.Fatal("want nonzero index entries")
	}
	if st.Requests < 3 {
		t.Fatalf("want request accounting, got %d", st.Requests)
	}
	// The executor block is always present: the two queries above ran
	// through the vectorized core, so batch and arena counters moved.
	ex := st.Executor
	if ex.Batches <= 0 || ex.ArenaGets <= 0 {
		t.Fatalf("executor counters not reported: %+v", ex)
	}
	if ex.RowsPerBatch < 0 || ex.PoolHitRate < 0 || ex.PoolHitRate > 1 {
		t.Fatalf("derived executor metrics out of range: %+v", ex)
	}
}

// TestIVMStatsAndMaterializedFlag pins the wire surface of answer
// maintenance: once a fingerprint crosses admission, repeats carry
// materialized=true, a mutation through the wire is visible on the very
// next (still materialized) read, and /stats carries the ivm block.
func TestIVMStatsAndMaterializedFlag(t *testing.T) {
	eng := testEngine(t)
	eng.SetIVMConfig(ivm.Config{Budget: 8, MinHits: 1, MinScore: 0, MaxViewRows: 1 << 18})
	_, c := startServer(t, eng, Config{})
	ctx := context.Background()

	first, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if first.Materialized {
		t.Fatal("first execution cannot be served from a view")
	}
	if _, err := c.Query(ctx, friendQuery); err != nil {
		t.Fatal(err) // plan-cache hit; admission happens after this run
	}
	third, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Materialized || !third.CacheHit {
		t.Fatalf("third execution should be O(answer): materialized=%v cacheHit=%v",
			third.Materialized, third.CacheHit)
	}

	// A write through the wire must be folded into the maintained answer
	// before the next read returns.
	if _, err := c.Insert(ctx, "cafe", []value.Tuple{{value.NewInt(12), value.NewStr("austin")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ctx, "dine", []value.Tuple{{value.NewInt(1), value.NewInt(12)}}); err != nil {
		t.Fatal(err)
	}
	after, err := c.Query(ctx, friendQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Materialized {
		t.Fatal("maintained view should survive a write, not fall back")
	}
	if after.RowCount != 3 {
		t.Fatalf("maintained answer stale after write: %d rows, want 3", after.RowCount)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.IVM == nil {
		t.Fatal("stats response missing the ivm block")
	}
	if st.IVM.Materialized == 0 || st.IVM.Hits < 2 || st.IVM.Admitted == 0 {
		t.Fatalf("ivm accounting not reported: %+v", st.IVM)
	}
	if st.IVM.DeltaApplies == 0 {
		t.Fatalf("mutations were not counted as delta applies: %+v", st.IVM)
	}
	if st.IVM.Budget != 8 {
		t.Fatalf("ivm budget: got %d, want 8", st.IVM.Budget)
	}
}

// TestConcurrentQueries hammers the server from many client goroutines
// while writers churn tuples, the regime the serving layer is built for.
// Run under -race this is the race-cleanliness acceptance check.
func TestConcurrentQueries(t *testing.T) {
	_, c := startServer(t, testEngine(t), Config{})
	ctx := context.Background()

	queries := []string{
		friendQuery,
		"q(town) :- cafe(x, town), dine(fr, x), friend(0, fr)",
		"q(c) :- dine(1, c)",
		"q(f) :- friend(0, f)",
	}
	const (
		clients = 8
		perC    = 50
	)
	var wg sync.WaitGroup
	var failures atomic.Int64
	stop := make(chan struct{})

	// Two writers churn a tuple in and out for the duration.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tup := value.Tuple{value.NewInt(int64(100 + w)), value.NewInt(999)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Insert(ctx, "friend", []value.Tuple{tup}); err != nil {
					failures.Add(1)
					return
				}
				if _, err := c.Delete(ctx, "friend", []value.Tuple{tup}); err != nil {
					failures.Add(1)
					return
				}
			}
		}(w)
	}

	var clientWG sync.WaitGroup
	for i := 0; i < clients; i++ {
		clientWG.Add(1)
		go func(i int) {
			defer clientWG.Done()
			for j := 0; j < perC; j++ {
				q := queries[(i+j)%len(queries)]
				if _, err := c.Query(ctx, q); err != nil {
					failures.Add(1)
					return
				}
			}
		}(i)
	}
	clientWG.Wait()
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d concurrent requests failed", n)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.HitRate < 0.9 {
		t.Fatalf("want >=90%% hit rate on a 4-query replay, got %.1f%%", 100*st.Cache.HitRate)
	}
}

// TestGracefulShutdownMidLoad holds queries in flight, shuts the server
// down, and asserts that the in-flight requests complete while new
// connections are refused.
func TestGracefulShutdownMidLoad(t *testing.T) {
	eng := testEngine(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := New(eng, Config{Logger: logger, RequestTimeout: 10 * time.Second})

	gate := make(chan struct{})
	var held atomic.Int64
	srv.hookBeforeExecute = func() {
		held.Add(1)
		<-gate
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	c := NewClient(srv.Addr())
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	const inFlight = 4
	results := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			_, err := c.Query(context.Background(), friendQuery)
			results <- err
		}()
	}
	// Wait until all requests are held inside the execution goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for held.Load() < inFlight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests in flight", held.Load(), inFlight)
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The listener closes promptly: new connections must fail while the
	// held requests are still in flight.
	newConnRefused := false
	for i := 0; i < 100; i++ {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			newConnRefused = true
			break
		}
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !newConnRefused {
		t.Fatal("shutdown did not close the listener")
	}

	// Release the held queries; they must all complete successfully.
	close(gate)
	for i := 0; i < inFlight; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight request failed during graceful shutdown: %v", err)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve: want http.ErrServerClosed, got %v", err)
	}
}

// TestCapacityLimit fills the in-flight semaphore and asserts that an
// excess request times out with 503 instead of executing.
func TestCapacityLimit(t *testing.T) {
	eng := testEngine(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := New(eng, Config{
		Logger:         logger,
		MaxInFlight:    2,
		RequestTimeout: 200 * time.Millisecond,
	})
	gate := make(chan struct{})
	srv.hookBeforeExecute = func() { <-gate }
	defer close(gate)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	c := NewClient(srv.Addr())
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Occupy both slots.
	occupied := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Query(context.Background(), friendQuery)
			occupied <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("slots not occupied in time")
		}
		time.Sleep(time.Millisecond)
	}

	// The third request cannot get a slot before its deadline.
	_, err = c.Query(context.Background(), friendQuery)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 at capacity, got %v", err)
	}

	// The occupied slots are 504s: their deadline passed while held. Both
	// outcomes (timeout answer, then background completion) are fine; the
	// point is the server stays responsive.
	for i := 0; i < 2; i++ {
		if err := <-occupied; err == nil {
			t.Fatal("held query should have timed out")
		} else if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
			t.Fatalf("want 504 for held query, got %v", err)
		}
	}
}

// TestRequestTimeout holds a single query past its deadline and asserts
// the 504 answer.
func TestRequestTimeout(t *testing.T) {
	eng := testEngine(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := New(eng, Config{Logger: logger, RequestTimeout: 100 * time.Millisecond})
	gate := make(chan struct{})
	srv.hookBeforeExecute = func() { <-gate }
	defer close(gate)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	c := NewClient(srv.Addr())
	if err := c.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	_, err = c.Query(context.Background(), friendQuery)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("want 504 on timeout, got %v", err)
	}
}

// TestWireValueRoundTrip exercises the kind-faithful JSON encoding,
// including 64-bit integers beyond float64 precision.
func TestWireValueRoundTrip(t *testing.T) {
	eng := testEngine(t)
	_, c := startServer(t, eng, Config{})
	ctx := context.Background()

	big := int64(1) << 60
	if _, err := c.Insert(ctx, "friend", []value.Tuple{{value.NewInt(0), value.NewInt(big)}}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(ctx, "q(f) :- friend(0, f)")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range resp.RowTuples() {
		if row[0].K == value.Int && row[0].I == big {
			found = true
		}
	}
	if !found {
		t.Fatalf("1<<60 did not round-trip; rows %v", resp.RowTuples())
	}
}

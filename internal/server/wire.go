package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/value"
)

// QueryRequest is the body of POST /query. Query is a query in the rule
// language of internal/parser; the remaining fields tune execution the way
// core.Options does, starting from the engine's defaults.
type QueryRequest struct {
	// Query is the query text, e.g.
	// "q(cid) :- friend(0,f), dine(f,cid), cafe(cid,'nyc')".
	Query string `json:"query"`
	// Parallel executes the bounded plan with exec.RunParallel using
	// Workers goroutines (0 = GOMAXPROCS).
	Parallel bool `json:"parallel,omitempty"`
	Workers  int  `json:"workers,omitempty"`
	// NoCache bypasses the plan cache for this request: the full analysis
	// pipeline runs even for a previously seen query.
	NoCache bool `json:"noCache,omitempty"`
	// MaxRows caps the number of rows returned (0 = the server's default;
	// negative = unlimited). RowCount always reports the full answer size.
	MaxRows int `json:"maxRows,omitempty"`
	// MinLSN is the read-your-writes fence for follower reads: the query
	// blocks until the server's applied watermark reaches this LSN (504 if
	// the deadline passes first). Clients stamp the LSN returned by their
	// last mutation. Ignored by a primary, which assigned the LSN and
	// trivially satisfies the fence.
	MinLSN uint64 `json:"minLSN,omitempty"`
}

// QueryResponse is the answer to POST /query: the result rows plus the
// plan/cache/boundedness metadata of core.Report.
type QueryResponse struct {
	// Columns and Rows are the result table. Values encode kind-faithfully:
	// Int as a JSON number, Str as a JSON string, Null as null.
	Columns []string      `json:"columns"`
	Rows    [][]wireValue `json:"rows"`
	// RowCount is the full answer cardinality; Truncated reports that Rows
	// was capped below it by MaxRows.
	RowCount  int  `json:"rowCount"`
	Truncated bool `json:"truncated,omitempty"`

	// Canonical is the canonical form of the query rendered back into rule
	// syntax (the plan-cache identity), when it is expressible there.
	Canonical string `json:"canonical,omitempty"`

	// Covered / Rewritten / Bounded / CacheHit mirror core.Report: whether
	// the (possibly rewritten) query is covered by the access schema,
	// whether covered-form rewriting changed it, whether the bounded
	// evaluator ran (false = conventional fallback), and whether the
	// compile artifact came from the plan cache.
	Covered      bool     `json:"covered"`
	Rewritten    bool     `json:"rewritten,omitempty"`
	RewriteRules []string `json:"rewriteRules,omitempty"`
	Bounded      bool     `json:"bounded"`
	CacheHit     bool     `json:"cacheHit"`
	// Materialized reports that the answer was served from an
	// incrementally maintained materialization (no plan ran at all);
	// always paired with CacheHit.
	Materialized bool `json:"materialized,omitempty"`
	// PlanLength is the number of bounded plan steps (0 on the fallback).
	PlanLength int `json:"planLength,omitempty"`

	// Accessed / Fetched / Scanned count tuples read during evaluation,
	// split by access path; ElapsedMicros is evaluation wall time and
	// CompileMicros the analysis time (0 on a cache hit).
	Accessed      int64 `json:"accessed"`
	Fetched       int64 `json:"fetched,omitempty"`
	Scanned       int64 `json:"scanned,omitempty"`
	ElapsedMicros int64 `json:"elapsedMicros"`
	CompileMicros int64 `json:"compileMicros,omitempty"`

	// Version is the engine's access-schema generation the execution ran
	// under, read while the engine lock was held (core.Report.Version) —
	// a CacheHit response always carries the version its plan was
	// compiled at.
	Version uint64 `json:"version"`
}

// MutateRequest is the body of POST /insert and POST /delete: a batch of
// tuples for one relation. Tuple values follow the wire encoding of
// QueryResponse rows (numbers, strings, null).
type MutateRequest struct {
	Relation string        `json:"relation"`
	Tuples   [][]wireValue `json:"tuples"`
}

// MutateResponse reports a mutation batch. Applied counts tuples actually
// inserted (new) or deleted (present); set semantics make re-inserting an
// existing tuple or deleting an absent one a no-op counted only in
// Requested. Version is the engine's current access-schema generation;
// tuple writes themselves never advance it — cached plans stay valid
// under them (Proposition 12) — so it moves only if a constraint change
// lands concurrently.
type MutateResponse struct {
	Relation  string `json:"relation"`
	Requested int    `json:"requested"`
	Applied   int    `json:"applied"`
	Version   uint64 `json:"version"`
	// LSN is the write-ahead-log position after this batch on a durable
	// serving layer (0 otherwise). A client that stamps it as MinLSN on a
	// follower read is guaranteed to observe the batch.
	LSN uint64 `json:"lsn,omitempty"`
}

// WALAckRequest is the body of POST /wal/ack: a follower reporting its
// applied watermark for the primary's replication /stats block.
type WALAckRequest struct {
	// ID is the follower's stable identity (the id it streams under).
	ID string `json:"id"`
	// LSN is the follower's applied watermark.
	LSN uint64 `json:"lsn"`
}

// WireConstraint is the JSON form of an access constraint R(X → Y, N).
type WireConstraint struct {
	Rel string   `json:"rel"`
	X   []string `json:"x"`
	Y   []string `json:"y"`
	N   int      `json:"n"`
}

// SchemaResponse is the answer to GET /schema: the relational schema and
// the current access schema.
type SchemaResponse struct {
	// Relations maps base relation name to attribute names in order.
	Relations map[string][]string `json:"relations"`
	// Constraints is the installed access schema.
	Constraints []WireConstraint `json:"constraints"`
	Version     uint64           `json:"version"`
}

// CacheStatsWire is the JSON form of the plan-cache counters.
type CacheStatsWire struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Purges    int64   `json:"purges"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hitRate"`
}

// StatsResponse is the answer to GET /stats: plan-cache counters, database
// and index sizes, and the server's own request accounting.
type StatsResponse struct {
	Cache CacheStatsWire `json:"cache"`
	// DBSize is total tuples across base relations; IndexEntries total
	// entries across the indices I_A. Behind a sharded router these are
	// logical sizes (each broadcast copy counted once) while the Shards
	// breakdown reports physical per-engine sizes.
	DBSize       int64  `json:"dbSize"`
	IndexEntries int64  `json:"indexEntries"`
	Version      uint64 `json:"version"`
	// Requests counts HTTP requests served since start; InFlight is the
	// number of /query executions currently running.
	Requests      int64   `json:"requests"`
	InFlight      int64   `json:"inFlight"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Shards is the per-engine breakdown when the served core.Service is a
	// sharded cluster (absent for a single engine). Operators read it for
	// routing and data skew: Queries counts the queries each engine
	// executed (a scatter counts on every shard it touched).
	Shards []ShardStatsWire `json:"shards,omitempty"`
	// Ring is the consistent-hash placement state (epoch, size, in-flight
	// migration), present only for a sharded cluster.
	Ring *RingStatsWire `json:"ring,omitempty"`
	// Apply is the apply-queue snapshot (asynchronous broadcast write
	// backlog and batching), present only for a sharded cluster.
	Apply *ApplyStatsWire `json:"apply,omitempty"`
	// Routes is the routing-decision breakdown, present only for a sharded
	// cluster.
	Routes *RouteStatsWire `json:"routes,omitempty"`
	// Residue is the distributed residue-executor breakdown (semi-joins,
	// shuffles, placement changes), present only for a sharded cluster.
	Residue *ResidueStatsWire `json:"residue,omitempty"`
	// Durability is the write-ahead-log snapshot, present only when the
	// serving layer was started durable (-data-dir).
	Durability *DurabilityWire `json:"durability,omitempty"`
	// IVM is the materialized-answer snapshot (incremental view
	// maintenance for hot fingerprints); absent when disabled. Behind a
	// sharded router the counters are summed across engines.
	IVM *IVMStatsWire `json:"ivm,omitempty"`
	// Executor is the vectorized execution core's process-wide telemetry
	// (batch volume, arena pooling, join signature pre-filter). Always
	// present: every answer flows through the executor.
	Executor ExecStatsWire `json:"executor"`
	// Replication is the primary-side follower accounting (connected
	// followers, acked LSNs, lag), present once a follower has connected
	// to or bootstrapped from this durable serving layer.
	Replication *ReplicationWire `json:"replication,omitempty"`
	// Follower is the replica-side view when the served core.Service is a
	// follower node: where it replicates from and how far it has applied.
	Follower *FollowerStatsWire `json:"follower,omitempty"`
}

// ExecStatsWire is the executor block in GET /stats: process-wide
// counters of the vectorized execution core (internal/exec), read with
// one atomic load each. All counters are monotonic since process start.
type ExecStatsWire struct {
	// Batches counts operator output tables finalized; Rows the rows
	// across them; RowsPerBatch their ratio (the mean batch width an
	// operator hands downstream).
	Batches      int64   `json:"batches"`
	Rows         int64   `json:"rows"`
	RowsPerBatch float64 `json:"rowsPerBatch"`
	// ArenaGets counts arena checkouts (one per evaluation per worker),
	// ArenaNews the subset that missed the sync.Pool and built a fresh
	// arena, PoolHitRate 1 - News/Gets, and ArenaBytes the memory
	// currently retained by checked-out arenas.
	ArenaGets   int64   `json:"arenaGets"`
	ArenaNews   int64   `json:"arenaNews"`
	PoolHitRate float64 `json:"poolHitRate"`
	ArenaBytes  int64   `json:"arenaBytes"`
	// SigBuilt counts join signature pre-filters built; SigHit the probes
	// they rejected before the hash table; SigMiss the probes passed
	// through. Hit/(Hit+Miss) is the filter's selectivity on this
	// workload.
	SigBuilt int64 `json:"sigBuilt"`
	SigHit   int64 `json:"sigHit"`
	SigMiss  int64 `json:"sigMiss"`
}

// ReplicationWire is the primary-side replication block in GET /stats.
type ReplicationWire struct {
	// Followers lists every follower that has connected (or acked) since
	// start, by id.
	Followers []FollowerConnWire `json:"followers"`
	// SnapshotsServed counts checkpoint downloads from /wal/snapshot —
	// follower bootstraps (a resuming follower downloads nothing).
	SnapshotsServed int64 `json:"snapshotsServed"`
}

// FollowerConnWire is one follower's entry in the replication block.
type FollowerConnWire struct {
	// ID is the identity the follower presented on /wal/stream.
	ID string `json:"id"`
	// Connected reports a live stream; SentLSN is the last record written
	// to it and AckedLSN the follower's last reported applied watermark.
	Connected bool   `json:"connected"`
	SentLSN   uint64 `json:"sentLSN"`
	AckedLSN  uint64 `json:"ackedLSN"`
	// LagRecords is the primary's last LSN minus AckedLSN; LagBytes is a
	// segment-granularity upper bound on the unacked log bytes. Alert on
	// sustained growth of either (see docs/OPERATIONS.md).
	LagRecords int64 `json:"lagRecords"`
	LagBytes   int64 `json:"lagBytes"`
	// ConnectedSeconds is the current stream's age (connected followers);
	// LastSeenSeconds the time since the follower was last heard from
	// (disconnected ones).
	ConnectedSeconds float64 `json:"connectedSeconds,omitempty"`
	LastSeenSeconds  float64 `json:"lastSeenSeconds,omitempty"`
}

// FollowerStatsWire is the follower-side replication block in GET /stats
// of a follower node.
type FollowerStatsWire struct {
	// Primary is the URL this node replicates from; ID the identity it
	// streams under.
	Primary string `json:"primary"`
	ID      string `json:"id"`
	// AppliedLSN is the local applied watermark; PrimaryLSN the last LSN
	// the primary reported (via records or heartbeats). Their difference
	// is the replica lag in records.
	AppliedLSN uint64 `json:"appliedLSN"`
	PrimaryLSN uint64 `json:"primaryLSN"`
	// Streaming reports a live stream connection; LastContactSeconds is
	// the time since the last frame (records and heartbeats alike).
	Streaming          bool    `json:"streaming"`
	LastContactSeconds float64 `json:"lastContactSeconds"`
	// RecordsApplied counts records applied since this process started;
	// Reconnects counts stream (re)connections; SnapshotsFetched counts
	// checkpoint bootstraps (0 after a restart that resumed locally).
	RecordsApplied   int64 `json:"recordsApplied"`
	Reconnects       int64 `json:"reconnects"`
	SnapshotsFetched int64 `json:"snapshotsFetched"`
}

// IVMStatsWire is the materialized-answer snapshot in GET /stats.
type IVMStatsWire struct {
	// Materialized is the number of live views; Budget the configured
	// ceiling (summed across engines on a sharded cluster).
	Materialized int `json:"materialized"`
	Budget       int `json:"budget"`
	// Admitted / Evicted / Purged count view lifecycle events.
	Admitted int64 `json:"admitted"`
	Evicted  int64 `json:"evicted,omitempty"`
	Purged   int64 `json:"purged,omitempty"`
	// Hits counts answers served straight from a view; DeltaApplies
	// counts tuple writes folded into views.
	Hits         int64 `json:"hits"`
	DeltaApplies int64 `json:"deltaApplies"`
	// Fallbacks counts views dropped on an inapplicable delta; Denied
	// counts rejected materialization attempts.
	Fallbacks int64 `json:"fallbacks,omitempty"`
	Denied    int64 `json:"denied,omitempty"`
}

// DurabilityWire is the write-ahead-log snapshot in GET /stats of a
// durable serving layer.
type DurabilityWire struct {
	// LastLSN is the highest log sequence number assigned; CheckpointLSN
	// the LSN the latest durable checkpoint covers. Their difference is
	// the replay debt a crash right now would pay.
	LastLSN       uint64 `json:"lastLSN"`
	CheckpointLSN uint64 `json:"checkpointLSN"`
	// Segments and SegmentBytes describe the live log files on disk.
	Segments     int   `json:"segments"`
	SegmentBytes int64 `json:"segmentBytes"`
	// Appends counts records logged since open; Checkpoints the
	// checkpoints written since open.
	Appends     int64 `json:"appends"`
	Checkpoints int64 `json:"checkpoints"`
	// Fsync is the configured sync policy ("off", "interval", "commit");
	// Fsyncs counts fsync calls on the append path and FsyncMeanMicros is
	// their observed mean latency.
	Fsync           string  `json:"fsync"`
	Fsyncs          int64   `json:"fsyncs"`
	FsyncMeanMicros float64 `json:"fsyncMeanMicros"`
}

// ApplyStatsWire is the apply-queue snapshot in GET /stats: the
// asynchronous per-relation write pipeline that batches broadcast
// applications onto non-anchor shards (internal/shard). Sampled before
// the fencing reads of the same /stats response, so Depth reflects the
// backlog at request arrival.
type ApplyStatsWire struct {
	// Enqueued counts asynchronous writes accepted since start; Applied is
	// the watermark (writes that have reached every target engine); Depth
	// is their difference — the current watermark lag in ops.
	Enqueued int64 `json:"enqueued"`
	Applied  int64 `json:"applied"`
	Depth    int64 `json:"depth"`
	// Batches counts batched applications (one engine write-lock
	// acquisition each); MaxBatch is the largest batch so far.
	Batches  int64 `json:"batches"`
	MaxBatch int64 `json:"maxBatch"`
	// Errors counts batch applications a target store rejected (at least
	// one op failed); non-zero indicates a bug, since writes are validated
	// on the anchor before they are enqueued.
	Errors int64 `json:"errors"`
}

// RouteStatsWire is the routing-decision breakdown in GET /stats.
type RouteStatsWire struct {
	// Single counts single-shard executions; Double keyed reads that
	// double-routed to two owners mid-reshard (each one a two-owner
	// gather); Scattered full scatter/gather executions; Residue
	// executions decomposed by the distributed residue executor.
	Single    int64 `json:"single"`
	Double    int64 `json:"double"`
	Scattered int64 `json:"scattered"`
	Residue   int64 `json:"residue"`
}

// ResidueStatsWire is the distributed residue-executor breakdown in GET
// /stats. Operators read it to size the broadcast set and to see how much
// row volume non-distributable joins would ship in a multi-node
// deployment.
type ResidueStatsWire struct {
	// SemiJoins counts semi-join reductions performed; Shuffles the hash
	// shuffles that followed them.
	SemiJoins int64 `json:"semiJoins"`
	Shuffles  int64 `json:"shuffles"`
	// BroadcastRels is the number of relations currently placed by
	// broadcast (full copy on every shard).
	BroadcastRels int `json:"broadcastRels"`
	// Repartitions counts completed online placement changes (including
	// automatic demotions of overgrown broadcast relations).
	Repartitions int64 `json:"repartitions"`
	// BytesShipped is the encoded row volume handed to shuffle buckets —
	// the traffic the shuffles would put on the wire across nodes.
	BytesShipped int64 `json:"bytesShipped"`
}

// ShardStatsWire is one engine of a sharded cluster in GET /stats.
type ShardStatsWire struct {
	// Label identifies the engine: "shard/0" … "shard/N-1".
	Label string `json:"label"`
	// Queries counts query executions routed to this engine.
	Queries int64 `json:"queries"`
	// Cache is the engine's own plan-cache counters.
	Cache CacheStatsWire `json:"cache"`
	// DBSize and IndexEntries are the engine-local physical sizes.
	DBSize       int64 `json:"dbSize"`
	IndexEntries int64 `json:"indexEntries"`
	// Version is the engine's access-schema generation; all engines of a
	// healthy cluster report the same value.
	Version uint64 `json:"version"`
}

// ReshardRequest is the body of POST /reshard: change the live shard
// count of a sharded serving layer online.
type ReshardRequest struct {
	// Shards is the target partition count (>= 1).
	Shards int `json:"shards"`
	// Wait blocks the request until the move completes and reports the
	// full ReshardResponse; without it the server answers 202 immediately
	// and the migration runs in the background (progress via GET /stats).
	Wait bool `json:"wait,omitempty"`
}

// ReshardResponse reports a reshard. A waited call carries the full
// accounting; an accepted background call sets Accepted and To only.
type ReshardResponse struct {
	// Accepted is true for a background (non-wait) call that was started.
	Accepted bool `json:"accepted,omitempty"`
	// From and To are the shard counts before and after the move.
	From int `json:"from,omitempty"`
	To   int `json:"to"`
	// Moved counts keyed rows that changed owner; Seeded counts
	// broadcast row copies streamed onto engines created by growth.
	Moved  int64 `json:"moved,omitempty"`
	Seeded int64 `json:"seeded,omitempty"`
	// Epoch is the ring epoch after the flip.
	Epoch uint64 `json:"epoch,omitempty"`
	// DurationMicros is the wall time of the whole move.
	DurationMicros int64 `json:"durationMicros,omitempty"`
}

// MigrationWire is an in-flight shard migration in GET /stats.
type MigrationWire struct {
	// From and To are the shard counts the migration moves between.
	From int `json:"from"`
	To   int `json:"to"`
	// Phase is "copy" (streaming, old ring serving), "cleanup" (flipped,
	// sweeping stragglers) or "abort" (rolling back).
	Phase string `json:"phase"`
	// Moved counts rows streamed so far out of an estimated Total.
	Moved int64 `json:"moved"`
	Total int64 `json:"total"`
}

// RingStatsWire is the consistent-hash placement state in GET /stats.
type RingStatsWire struct {
	// Epoch is the ring generation (starts at 1, +1 per completed
	// reshard).
	Epoch uint64 `json:"epoch"`
	// Shards is the live partition count; Vnodes the virtual nodes each
	// shard contributes to the ring.
	Shards int `json:"shards"`
	Vnodes int `json:"vnodes"`
	// Migration is present only while a reshard is in flight.
	Migration *MigrationWire `json:"migration,omitempty"`
}

// HealthResponse is the answer to GET /healthz: Status "ok" (200), or
// "degraded" (503) when the serving layer's write pipeline has failed —
// Error then carries the first retained failure. A degraded durable
// server may be missing acknowledged writes from its log and should be
// restarted so recovery can replay the intact prefix.
type HealthResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// wireValue adapts value.Value to its JSON wire form: Int ↔ JSON number,
// Str ↔ JSON string, Null ↔ null. Decoding goes through json.Number so
// 64-bit integers round-trip without float64 precision loss.
type wireValue struct {
	v value.Value
}

// MarshalJSON encodes the wrapped value kind-faithfully.
func (w wireValue) MarshalJSON() ([]byte, error) {
	switch w.v.K {
	case value.Int:
		return json.Marshal(w.v.I)
	case value.Str:
		return json.Marshal(w.v.S)
	default:
		return []byte("null"), nil
	}
}

// UnmarshalJSON decodes a JSON scalar into a value.Value.
func (w *wireValue) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	switch t := raw.(type) {
	case nil:
		w.v = value.Value{}
	case string:
		w.v = value.NewStr(t)
	case json.Number:
		i, err := t.Int64()
		if err != nil {
			return fmt.Errorf("server: non-integer number %q in tuple", t.String())
		}
		w.v = value.NewInt(i)
	case bool:
		return fmt.Errorf("server: boolean values are not part of the data model")
	default:
		return fmt.Errorf("server: value must be a number, string or null, got %T", raw)
	}
	return nil
}

// encodeTuple converts a store tuple to its wire form.
func encodeTuple(t value.Tuple) []wireValue {
	out := make([]wireValue, len(t))
	for i, v := range t {
		out[i] = wireValue{v}
	}
	return out
}

// decodeTuple converts a wire tuple back to a store tuple.
func decodeTuple(ws []wireValue) value.Tuple {
	out := make(value.Tuple, len(ws))
	for i, w := range ws {
		out[i] = w.v
	}
	return out
}

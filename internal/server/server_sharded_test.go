package server

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/value"
	"repro/internal/workload"
)

// shardedService builds a 3-shard router over a small AIRCA instance.
func shardedService(t testing.TB) (*shard.Router, *core.Engine) {
	t.Helper()
	d, err := workload.ByName("AIRCA")
	if err != nil {
		t.Fatal(err)
	}
	dbShard, err := d.Gen(0.03, 11)
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.New(d.Schema, d.Access, dbShard, shard.Spec{Shards: 3, Keys: d.ShardKeys})
	if err != nil {
		t.Fatal(err)
	}
	dbSingle, err := d.Gen(0.03, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d.Schema, d.Access, dbSingle)
	if err != nil {
		t.Fatal(err)
	}
	return router, eng
}

// TestServerOverShardedRouter proves the front end serves a sharded
// cluster through the same code path as a single engine: /query answers
// match the single-engine server row for row, writes route through the
// cluster without moving the version, and /stats carries the per-shard
// breakdown.
func TestServerOverShardedRouter(t *testing.T) {
	router, eng := shardedService(t)
	_, shardedCli := startServer(t, router, Config{MaxRows: -1})
	_, singleCli := startServer(t, eng, Config{MaxRows: -1})
	ctx := context.Background()

	queries := []string{
		`q(airline) :- ontime(f, 42, d, airline, m, delay)`,                                             // single-shard fast path
		`q(origin, dest) :- ontime(f, origin, dest, 3, m, delay)`,                                       // scatter, uncovered
		`q(city) :- ontime(123, origin, dest, al, m, delay), airport(origin, city, st)`,                 // scatter, covered
		`q(origin, dest, cause) :- ontime(77, origin, dest, al, m, delay), delaycause(77, cause, mins)`, // distributed residue
	}
	for _, src := range queries {
		want, err := singleCli.Query(ctx, src)
		if err != nil {
			t.Fatalf("single %q: %v", src, err)
		}
		got, err := shardedCli.Query(ctx, src)
		if err != nil {
			t.Fatalf("sharded %q: %v", src, err)
		}
		if got.RowCount != want.RowCount {
			t.Errorf("%q: rowCount %d (sharded) vs %d (single)", src, got.RowCount, want.RowCount)
		}
		if got.Covered != want.Covered || got.Bounded != want.Bounded {
			t.Errorf("%q: verdicts covered=%v bounded=%v vs covered=%v bounded=%v",
				src, got.Covered, got.Bounded, want.Covered, want.Bounded)
		}
	}

	// Writes through the sharded server: version must not move.
	tup := value.Tuple{value.NewInt(880001), value.NewInt(42), value.NewInt(7),
		value.NewInt(3), value.NewInt(2), value.NewInt(15)}
	mres, err := shardedCli.Insert(ctx, "ontime", []value.Tuple{tup})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Applied != 1 || mres.Version != 0 {
		t.Errorf("insert applied=%d version=%d, want 1 and 0", mres.Applied, mres.Version)
	}
	// A broadcast-relation write fans out through the apply queue (anchor
	// synchronous, remaining members enqueued).
	ctup := value.Tuple{value.NewInt(9777), value.NewInt(1), value.NewInt(1)}
	if _, err := shardedCli.Insert(ctx, "carrier", []value.Tuple{ctup}); err != nil {
		t.Fatal(err)
	}

	stats, err := shardedCli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 3 {
		t.Fatalf("stats.Shards has %d entries, want 3 shards", len(stats.Shards))
	}
	var physical int64
	for _, s := range stats.Shards {
		physical += s.DBSize
	}
	if physical < stats.DBSize {
		t.Errorf("per-shard sizes sum to %d, below the logical size %d", physical, stats.DBSize)
	}
	// The single-engine server must not report a breakdown or a ring.
	sstats, err := singleCli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sstats.Shards) != 0 {
		t.Errorf("single-engine stats unexpectedly carries %d shard entries", len(sstats.Shards))
	}
	if sstats.Ring != nil {
		t.Errorf("single-engine stats unexpectedly carries ring state: %+v", sstats.Ring)
	}
	if stats.Ring == nil || stats.Ring.Shards != 3 || stats.Ring.Epoch != 1 {
		t.Errorf("sharded stats ring = %+v, want 3 shards at epoch 1", stats.Ring)
	}
	// Write-path observability: the sharded server reports the broadcast
	// apply queue, the routing breakdown and the residue-executor
	// counters; the single engine reports none of them.
	if stats.Apply == nil {
		t.Fatal("sharded stats missing the apply-queue block")
	}
	if stats.Apply.Enqueued == 0 {
		t.Error("apply queue reports no enqueued writes after an insert")
	}
	if stats.Apply.Errors != 0 {
		t.Errorf("apply queue reports %d store errors", stats.Apply.Errors)
	}
	if stats.Routes == nil {
		t.Fatal("sharded stats missing the routing breakdown")
	}
	if got := stats.Routes.Single + stats.Routes.Double + stats.Routes.Scattered + stats.Routes.Residue; got == 0 {
		t.Error("routing breakdown is all zero after served queries")
	}
	if stats.Routes.Residue == 0 {
		t.Error("residue-routed probe not counted in the routing breakdown")
	}
	if stats.Residue == nil {
		t.Fatal("sharded stats missing the residue block")
	}
	if stats.Residue.BroadcastRels == 0 {
		t.Error("residue block reports no broadcast relations on AIRCA")
	}
	if stats.Residue.SemiJoins < 0 || stats.Residue.Shuffles < 0 || stats.Residue.BytesShipped < 0 {
		t.Errorf("implausible residue counters: %+v", stats.Residue)
	}
	if sstats.Apply != nil || sstats.Routes != nil || sstats.Residue != nil {
		t.Errorf("single-engine stats unexpectedly carries write-path blocks: apply=%+v routes=%+v residue=%+v",
			sstats.Apply, sstats.Routes, sstats.Residue)
	}
}

// TestReshardEndpoint drives an online reshard over the wire: grow 3→5
// with wait, verify the epoch moved and /stats reflects the new layout,
// confirm answers are unchanged, then check the endpoint's guard rails
// (bad target, unsharded server).
func TestReshardEndpoint(t *testing.T) {
	router, eng := shardedService(t)
	_, cli := startServer(t, router, Config{MaxRows: -1})
	_, singleCli := startServer(t, eng, Config{MaxRows: -1})
	ctx := context.Background()

	const probe = `q(airline) :- ontime(f, 42, d, airline, m, delay)`
	before, err := cli.Query(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := cli.Reshard(ctx, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 3 || rep.To != 5 || rep.Epoch != 2 {
		t.Fatalf("reshard response: %+v", rep)
	}
	if rep.Moved == 0 || rep.Seeded == 0 {
		t.Errorf("grow reported moved=%d seeded=%d, want both > 0", rep.Moved, rep.Seeded)
	}

	after, err := cli.Query(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if after.RowCount != before.RowCount {
		t.Errorf("answer changed across reshard: %d rows vs %d", after.RowCount, before.RowCount)
	}
	stats, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ring == nil || stats.Ring.Shards != 5 || stats.Ring.Epoch != 2 || stats.Ring.Migration != nil {
		t.Errorf("ring after reshard = %+v, want 5 shards at epoch 2, no migration", stats.Ring)
	}
	if len(stats.Shards) != 5 {
		t.Errorf("stats.Shards has %d entries after grow, want 5 shards", len(stats.Shards))
	}

	// Guard rails: invalid target and unsharded serving layer.
	if _, err := cli.Reshard(ctx, 0, true); err == nil {
		t.Error("reshard to 0 shards did not fail")
	}
	_, err = singleCli.Reshard(ctx, 2, true)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != 501 {
		t.Errorf("reshard on unsharded server: err=%v, want 501 APIError", err)
	}
}

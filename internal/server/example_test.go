package server_test

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/ra"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/value"
)

// Example starts the HTTP front end on a loopback listener and drives it
// through the typed client: run a query, read the boundedness and cache
// metadata, mutate a tuple, and watch the cached plan keep serving.
func Example() {
	// The Example-1 graph-search scenario: who dined where, bounded by
	// access constraints.
	schema := ra.Schema{
		"friend": {"pid", "fid"},
		"cafe":   {"cid", "city"},
		"dine":   {"pid", "cid"},
	}
	A := access.NewSchema(
		access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000},
		access.Constraint{Rel: "dine", X: []string{"pid"}, Y: []string{"cid"}, N: 31},
		access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1},
	)
	db := store.NewDB(schema)
	for _, row := range []struct {
		rel string
		t   value.Tuple
	}{
		{"friend", value.Tuple{value.NewInt(0), value.NewInt(1)}},
		{"dine", value.Tuple{value.NewInt(1), value.NewInt(10)}},
		{"cafe", value.Tuple{value.NewInt(10), value.NewStr("nyc")}},
	} {
		if _, err := db.Insert(row.rel, row.t); err != nil {
			log.Fatal(err)
		}
	}
	eng, err := core.NewEngine(schema, A, db)
	if err != nil {
		log.Fatal(err)
	}

	// Serve on an ephemeral loopback port; discard the request log.
	srv := server.New(eng, server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	ctx := context.Background()
	c := server.NewClient(srv.Addr())
	if err := c.WaitReady(ctx, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// First execution compiles; the response carries the full metadata.
	resp, err := c.Query(ctx, "q(city) :- friend(0, f), dine(f, c), cafe(c, city)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("covered:", resp.Covered, "bounded:", resp.Bounded, "cacheHit:", resp.CacheHit)
	for _, row := range resp.RowTuples() {
		fmt.Println("row:", row)
	}

	// A tuple insert keeps the cached plan valid: the repeat run is a
	// cache hit and sees the new data.
	if _, err := c.Insert(ctx, "friend", []value.Tuple{{value.NewInt(0), value.NewInt(2)}}); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Insert(ctx, "dine", []value.Tuple{{value.NewInt(2), value.NewInt(11)}}); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Insert(ctx, "cafe", []value.Tuple{{value.NewInt(11), value.NewStr("sf")}}); err != nil {
		log.Fatal(err)
	}
	resp, err = c.Query(ctx, "q(city) :- friend(0, f), dine(f, c), cafe(c, city)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after insert — cacheHit:", resp.CacheHit, "rows:", resp.RowCount)

	// Output:
	// covered: true bounded: true cacheHit: false
	// row: (nyc)
	// after insert — cacheHit: true rows: 2
}

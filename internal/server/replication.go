package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/wal"
)

// This file is the primary side of WAL replication: GET /wal/snapshot
// streams the newest checkpoint file verbatim for follower bootstrap,
// GET /wal/stream tails the log as chunked CRC frames from ?after=LSN,
// and POST /wal/ack lets followers report their applied watermark for the
// /stats replication block. The wire format of the stream is exactly the
// on-disk segment format, so followers verify and decode it with the same
// code that reads their own log.

// walStreamHeartbeat is how often an idle stream emits a heartbeat frame
// (keeping the connection alive and shipping the primary's last LSN to
// caught-up followers).
const walStreamHeartbeat = time.Second

// walSource is implemented by core.Service implementations backed by a
// write-ahead log that replication can tail (core.Engine, shard.Router,
// and the follower node itself — cascading a stream re-serves the same
// LSN sequence). WAL may return nil when durability is off.
type walSource interface {
	WAL() *wal.Log
}

// followerSider is implemented by services that ARE followers (the node
// of internal/follower); /stats folds their replica view in and /wal/ack
// style lag is read from the other side.
type followerSider interface {
	FollowerStatus() FollowerStatsWire
}

// replRegistry tracks follower connections and acks for /stats. The zero
// value is ready to use.
type replRegistry struct {
	mu        sync.Mutex
	followers map[string]*followerConn
	snapshots int64
}

// followerConn is the primary's view of one follower, keyed by the id the
// follower presents on /wal/stream and /wal/ack.
type followerConn struct {
	id        string
	connected bool
	since     time.Time
	lastSeen  time.Time
	sentLSN   uint64
	ackedLSN  uint64
}

// connect registers (or reconnects) follower id and returns its entry.
func (rr *replRegistry) connect(id string) *followerConn {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.followers == nil {
		rr.followers = map[string]*followerConn{}
	}
	fc := rr.followers[id]
	if fc == nil {
		fc = &followerConn{id: id}
		rr.followers[id] = fc
	}
	fc.connected = true
	fc.since = time.Now()
	fc.lastSeen = fc.since
	return fc
}

// disconnect marks follower id as gone (its acked LSN is retained for
// lag reporting until it reconnects).
func (rr *replRegistry) disconnect(id string) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if fc := rr.followers[id]; fc != nil {
		fc.connected = false
		fc.lastSeen = time.Now()
	}
}

// sent records the last LSN written to follower id's stream.
func (rr *replRegistry) sent(id string, lsn uint64) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if fc := rr.followers[id]; fc != nil {
		fc.sentLSN = lsn
		fc.lastSeen = time.Now()
	}
}

// ack records follower id's applied watermark (monotone).
func (rr *replRegistry) ack(id string, lsn uint64) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.followers == nil {
		rr.followers = map[string]*followerConn{}
	}
	fc := rr.followers[id]
	if fc == nil {
		fc = &followerConn{id: id}
		rr.followers[id] = fc
	}
	if lsn > fc.ackedLSN {
		fc.ackedLSN = lsn
	}
	fc.lastSeen = time.Now()
}

// snapshotServed counts one bootstrap download.
func (rr *replRegistry) snapshotServed() {
	rr.mu.Lock()
	rr.snapshots++
	rr.mu.Unlock()
}

// walLog returns the service's log, or nil when the service is not a
// durable wal source.
func (s *Server) walLog() *wal.Log {
	if src, ok := s.eng.(walSource); ok {
		return src.WAL()
	}
	return nil
}

// handleWALStream serves GET /wal/stream?after=LSN[&id=NAME]: every log
// record past after as CRC frames, then live appends as they land, with
// heartbeat frames while idle. The response never ends on its own — the
// follower disconnects (or the server shuts down). Answers 501 without a
// WAL and 410 Gone when after predates the oldest retained segment (the
// follower must re-bootstrap from /wal/snapshot).
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	log := s.walLog()
	if log == nil {
		writeError(w, http.StatusNotImplemented,
			errors.New("serving layer is not durable; start with -data-dir to enable replication"))
		return
	}
	var after uint64
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid \"after\": %w", err))
			return
		}
		after = n
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		id = r.RemoteAddr
	}
	// Fail fast on a pruned position before committing to a 200 stream:
	// the follower reads the status code to decide bootstrap vs resume.
	if oldest, ok := log.OldestLSN(); ok && after+1 < oldest {
		writeError(w, http.StatusGone,
			fmt.Errorf("records after %d already pruned (oldest retained LSN %d); re-bootstrap from /wal/snapshot", after, oldest))
		return
	}
	rc := http.NewResponseController(w)
	fc := s.repl.connect(id)
	defer s.repl.disconnect(id)
	s.cfg.Logger.Info("wal stream connected", "id", id, "after", after)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	flush := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		return rc.Flush()
	}
	err := log.Tail(r.Context(), after, walStreamHeartbeat, func(rec wal.Record) error {
		frame, err := wal.EncodeFrame(rec)
		if err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		if rec.Kind != wal.KindHeartbeat {
			fc.noteSent(&s.repl, rec.LSN)
		}
		return nil
	}, flush)
	s.cfg.Logger.Info("wal stream closed", "id", id, "sent", fc.sentSnapshot(&s.repl), "err", err)
}

// noteSent updates the sent watermark under the registry lock.
func (fc *followerConn) noteSent(rr *replRegistry, lsn uint64) {
	rr.mu.Lock()
	fc.sentLSN = lsn
	fc.lastSeen = time.Now()
	rr.mu.Unlock()
}

// sentSnapshot reads the sent watermark under the registry lock.
func (fc *followerConn) sentSnapshot(rr *replRegistry) uint64 {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return fc.sentLSN
}

// handleWALSnapshot serves the newest checkpoint file verbatim (wal
// header + store snapshot) with the covered LSN in X-Checkpoint-LSN. A
// follower pipes the body into wal.InstallCheckpoint and recovers.
func (s *Server) handleWALSnapshot(w http.ResponseWriter, r *http.Request) {
	log := s.walLog()
	if log == nil {
		writeError(w, http.StatusNotImplemented,
			errors.New("serving layer is not durable; start with -data-dir to enable replication"))
		return
	}
	// Retry once: the newest checkpoint can be pruned between listing and
	// open (an unlinked-but-open file keeps streaming fine; losing the
	// race before open does not).
	for attempt := 0; ; attempt++ {
		path, lsn, ok, err := wal.LatestCheckpoint(log.Dir())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, errors.New("no checkpoint available yet"))
			return
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) && attempt == 0 {
				continue
			}
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		defer f.Close()
		s.repl.snapshotServed()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Checkpoint-LSN", strconv.FormatUint(lsn, 10))
		w.WriteHeader(http.StatusOK)
		_, _ = io.Copy(w, f)
		return
	}
}

// handleWALAck records a follower's applied watermark: POST /wal/ack
// {"id": ..., "lsn": ...}. Purely observational (the /stats lag figures);
// a follower that never acks still replicates correctly.
func (s *Server) handleWALAck(w http.ResponseWriter, r *http.Request) {
	var req WALAckRequest
	if err := readBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"id\""))
		return
	}
	s.repl.ack(req.ID, req.LSN)
	writeJSON(w, http.StatusOK, struct{}{})
}

// replicationStats builds the primary-side /stats block: nil unless the
// service has a WAL and at least one follower has ever connected or
// bootstrapped.
func (s *Server) replicationStats() *ReplicationWire {
	log := s.walLog()
	if log == nil {
		return nil
	}
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	if len(s.repl.followers) == 0 && s.repl.snapshots == 0 {
		return nil
	}
	last := log.LastLSN()
	out := &ReplicationWire{SnapshotsServed: s.repl.snapshots}
	now := time.Now()
	for _, fc := range s.repl.followers {
		fw := FollowerConnWire{
			ID:        fc.id,
			Connected: fc.connected,
			SentLSN:   fc.sentLSN,
			AckedLSN:  fc.ackedLSN,
		}
		if fc.ackedLSN < last {
			fw.LagRecords = int64(last - fc.ackedLSN)
		}
		fw.LagBytes = log.BytesSince(fc.ackedLSN)
		if fc.connected {
			fw.ConnectedSeconds = now.Sub(fc.since).Seconds()
		} else if !fc.lastSeen.IsZero() {
			fw.LastSeenSeconds = now.Sub(fc.lastSeen).Seconds()
		}
		out.Followers = append(out.Followers, fw)
	}
	sortFollowerWires(out.Followers)
	return out
}

// sortFollowerWires orders the follower list by id for stable output.
func sortFollowerWires(fs []FollowerConnWire) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].ID < fs[j-1].ID; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// followerStats builds the follower-side /stats block (nil when the
// service is not a follower node).
func (s *Server) followerStats() *FollowerStatsWire {
	if fs, ok := s.eng.(followerSider); ok {
		st := fs.FollowerStatus()
		return &st
	}
	return nil
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// durableTestEngine builds the graph-search scenario of testEngine on a
// durable engine logging to dir.
func durableTestEngine(t *testing.T, dir string) *core.Engine {
	t.Helper()
	schema := ra.Schema{
		"friend": {"pid", "fid"},
		"cafe":   {"cid", "city"},
		"dine":   {"pid", "cid"},
	}
	A := access.NewSchema(
		access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000},
		access.Constraint{Rel: "dine", X: []string{"pid"}, Y: []string{"cid"}, N: 31},
		access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1},
	)
	db := store.NewDB(schema)
	if _, err := db.Insert("friend", value.Tuple{value.NewInt(0), value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	eng, err := core.OpenDurable(schema, A, db, core.DurableConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// getJSON fetches a path from the running server and decodes the body,
// returning the HTTP status.
func getJSON(t *testing.T, addr, path string, dst any) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestDurableStatsAndHealthDegradation serves a durable engine, checks
// that /stats carries the write-ahead-log block, then breaks the log out
// from under the server and requires /healthz to flip to 503 "degraded"
// with the first retained error.
func TestDurableStatsAndHealthDegradation(t *testing.T) {
	eng := durableTestEngine(t, t.TempDir())
	srv, c := startServer(t, eng, Config{})
	ctx := context.Background()

	var hr HealthResponse
	if code := getJSON(t, srv.Addr(), "/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthy durable server: got %d %q", code, hr.Status)
	}
	if _, err := c.Insert(ctx, "dine", []value.Tuple{
		{value.NewInt(1), value.NewInt(10)},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil {
		t.Fatal("durable server reports no durability block in /stats")
	}
	if st.Durability.Fsync != "off" {
		t.Fatalf("default fsync policy on the wire = %q, want off", st.Durability.Fsync)
	}
	if st.Durability.Appends < 1 || st.Durability.LastLSN < 1 {
		t.Fatalf("insert not visible in durability stats: %+v", st.Durability)
	}
	if st.Durability.Checkpoints < 1 {
		t.Fatalf("boot checkpoint not visible in durability stats: %+v", st.Durability)
	}

	// Break durability: close the log while the server keeps serving. The
	// next write must be rejected and health must flip degraded.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(ctx, "dine", []value.Tuple{
		{value.NewInt(2), value.NewInt(11)},
	}); err == nil {
		t.Fatal("write with a dead log was acknowledged")
	}
	if code := getJSON(t, srv.Addr(), "/healthz", &hr); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded server answered /healthz with %d", code)
	}
	if hr.Status != "degraded" || hr.Error == "" {
		t.Fatalf("degraded health body = %+v", hr)
	}
	// Queries keep working while degraded: reads are served from memory.
	if _, err := c.Query(ctx, friendQuery); err != nil {
		t.Fatal(err)
	}
}

// TestNonDurableHealthUnchanged pins the default: a plain in-memory
// engine answers /healthz 200 and reports no durability block.
func TestNonDurableHealthUnchanged(t *testing.T) {
	srv, c := startServer(t, testEngine(t), Config{})
	var hr HealthResponse
	if code := getJSON(t, srv.Addr(), "/healthz", &hr); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("got %d %q", code, hr.Status)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability != nil {
		t.Fatalf("in-memory engine reports durability block %+v", st.Durability)
	}
}

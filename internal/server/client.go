package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/value"
)

// Client is a typed HTTP client for a Server. It is the programmatic face
// of the wire protocol: the loopback benchmark, the examples and external
// Go callers all talk to the front end through it. A Client is safe for
// concurrent use.
//
// Deadlines are the caller's: every method takes a context, and a Client
// imposes no transport timeout of its own, so a server configured for
// long-running queries is not cut off client-side. Pass a context with a
// deadline to bound an individual call.
type Client struct {
	base    string
	hc      *http.Client
	maxBody int64
}

// DefaultMaxResponseBytes is the response-size cap a NewClient applies;
// SetMaxResponseBytes overrides it.
const DefaultMaxResponseBytes int64 = 64 << 20

// NewClient returns a client for the server at base, e.g.
// "http://127.0.0.1:8080". A scheme-less base is assumed http.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
			},
		},
		maxBody: DefaultMaxResponseBytes,
	}
}

// SetMaxResponseBytes changes the client's response-size cap: a response
// body larger than n bytes is rejected with a clear error instead of
// being truncated. n <= 0 is ignored. Call it before issuing requests; it
// is not synchronized with in-flight calls.
func (c *Client) SetMaxResponseBytes(n int64) {
	if n > 0 {
		c.maxBody = n
	}
}

// Query executes a rule-language query with the server's default options.
func (c *Client) Query(ctx context.Context, query string) (*QueryResponse, error) {
	return c.QueryOpts(ctx, QueryRequest{Query: query})
}

// QueryOpts executes a query with explicit request options.
func (c *Client) QueryOpts(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.post(ctx, "/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Insert adds a batch of tuples to one relation.
func (c *Client) Insert(ctx context.Context, relation string, tuples []value.Tuple) (*MutateResponse, error) {
	return c.mutate(ctx, "/insert", relation, tuples)
}

// Delete removes a batch of tuples from one relation.
func (c *Client) Delete(ctx context.Context, relation string, tuples []value.Tuple) (*MutateResponse, error) {
	return c.mutate(ctx, "/delete", relation, tuples)
}

func (c *Client) mutate(ctx context.Context, path, relation string, tuples []value.Tuple) (*MutateResponse, error) {
	req := MutateRequest{Relation: relation, Tuples: make([][]wireValue, len(tuples))}
	for i, t := range tuples {
		req.Tuples[i] = encodeTuple(t)
	}
	var resp MutateResponse
	if err := c.post(ctx, path, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Reshard asks a sharded server to change its live shard count. With
// wait the call blocks until the move completes (bounded by ctx and the
// server's request timeout) and returns the full accounting; without it
// the server answers once the move is accepted and GET /stats reports
// progress. Servers over an unsharded engine answer 501.
func (c *Client) Reshard(ctx context.Context, shards int, wait bool) (*ReshardResponse, error) {
	var resp ReshardResponse
	if err := c.post(ctx, "/reshard", ReshardRequest{Shards: shards, Wait: wait}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Schema fetches the relational schema and access constraints.
func (c *Client) Schema(ctx context.Context) (*SchemaResponse, error) {
	var resp SchemaResponse
	if err := c.get(ctx, "/schema", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches plan-cache counters and server accounting.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.get(ctx, "/stats", &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health probes /healthz, returning nil when the server answers ok.
func (c *Client) Health(ctx context.Context) error {
	var resp HealthResponse
	if err := c.get(ctx, "/healthz", &resp); err != nil {
		return err
	}
	if resp.Status != "ok" {
		return fmt.Errorf("server: health status %q", resp.Status)
	}
	return nil
}

// WaitReady polls /healthz until the server answers or the deadline
// passes — the startup handshake for callers that just launched one.
func (c *Client) WaitReady(ctx context.Context, d time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	var lastErr error
	for {
		if lastErr = c.Health(ctx); lastErr == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: not ready after %v: %w", d, lastErr)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// WALSnapshot downloads the primary's newest checkpoint for follower
// bootstrap. The returned body is a verbatim checkpoint file (pipe it
// into wal.InstallCheckpoint); lsn is the LSN it covers. The caller must
// Close the body.
func (c *Client) WALSnapshot(ctx context.Context) (body io.ReadCloser, lsn uint64, err error) {
	res, err := c.stream(ctx, "/wal/snapshot")
	if err != nil {
		return nil, 0, err
	}
	lsn, err = strconv.ParseUint(res.Header.Get("X-Checkpoint-LSN"), 10, 64)
	if err != nil {
		res.Body.Close()
		return nil, 0, fmt.Errorf("server: /wal/snapshot: bad X-Checkpoint-LSN: %w", err)
	}
	return res.Body, lsn, nil
}

// WALStream opens the replication stream: every log record past after as
// CRC frames (decode with wal.ReadFrames), then live appends and idle
// heartbeats until the caller closes the body or ctx ends. id is the
// follower identity shown in the primary's replication /stats. A 410
// APIError means after predates the primary's retained log — re-bootstrap
// from WALSnapshot.
func (c *Client) WALStream(ctx context.Context, after uint64, id string) (io.ReadCloser, error) {
	path := "/wal/stream?after=" + strconv.FormatUint(after, 10)
	if id != "" {
		path += "&id=" + url.QueryEscape(id)
	}
	res, err := c.stream(ctx, path)
	if err != nil {
		return nil, err
	}
	return res.Body, nil
}

// WALAck reports a follower's applied watermark to the primary (purely
// observational: it feeds the replication /stats block).
func (c *Client) WALAck(ctx context.Context, id string, lsn uint64) error {
	return c.post(ctx, "/wal/ack", WALAckRequest{ID: id, LSN: lsn}, nil)
}

// stream issues a GET whose 2xx body is returned unread for the caller to
// consume incrementally; non-2xx answers become *APIError like do.
func (c *Client) stream(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if res.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
		res.Body.Close()
		var e ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, &APIError{Status: res.StatusCode, Message: e.Error}
		}
		return nil, &APIError{Status: res.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return res, nil
}

// RowTuples converts a response's rows back into store tuples.
func (r *QueryResponse) RowTuples() []value.Tuple {
	out := make([]value.Tuple, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = decodeTuple(row)
	}
	return out
}

func (c *Client) post(ctx context.Context, path string, body, dst any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, dst)
}

func (c *Client) get(ctx context.Context, path string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, dst)
}

// do runs the request and decodes the JSON answer, converting non-2xx
// responses into *APIError. A response body over the client's size cap is
// rejected explicitly — reading one byte past the cap distinguishes
// "too large" from "exactly at the cap" — rather than silently truncated
// into a confusing JSON parse error.
func (c *Client) do(req *http.Request, dst any) error {
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, c.maxBody+1))
	if err != nil {
		return err
	}
	if int64(len(body)) > c.maxBody {
		return fmt.Errorf("server: %s response exceeds the client's %d-byte limit; raise it with SetMaxResponseBytes or cap the answer (e.g. maxRows)",
			req.URL.Path, c.maxBody)
	}
	if res.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return &APIError{Status: res.StatusCode, Message: e.Error}
		}
		return &APIError{Status: res.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	if dst == nil {
		return nil
	}
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("server: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}

// APIError is a non-2xx answer from the server.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error text.
	Message string
}

// Error renders the status and message.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

package access

import (
	"strings"
	"testing"

	"repro/internal/ra"
)

func testSchema() ra.Schema {
	return ra.Schema{
		"r": {"a", "b", "c"},
		"s": {"a", "d"},
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"r(a -> b, 10)",
		"r((a,b) -> c, 5)",
		"r( -> b, 12)",
		"r(∅ -> b, 12)",
		"s(a -> (a,d), 1)",
	}
	for _, src := range cases {
		c, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		c2, err := Parse(c.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", c.String(), err)
			continue
		}
		if c.Key() != c2.Key() || c.N != c2.N {
			t.Errorf("round trip %q -> %q changed constraint", src, c.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"r(a -> b)",      // no N
		"r a -> b, 3",    // no parens
		"r(a b, 3)",      // no arrow
		"r(a -> , 3)",    // empty Y
		"r(a -> b, xyz)", // bad N
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestValidate(t *testing.T) {
	s := testSchema()
	good := Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	if err := good.Validate(s); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	bad := []Constraint{
		{Rel: "zzz", X: []string{"a"}, Y: []string{"b"}, N: 3},
		{Rel: "r", X: []string{"zzz"}, Y: []string{"b"}, N: 3},
		{Rel: "r", X: []string{"a"}, Y: []string{"zzz"}, N: 3},
		{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 0},
		{Rel: "r", X: []string{"a"}, Y: nil, N: 3},
	}
	for _, c := range bad {
		if err := c.Validate(s); err == nil {
			t.Errorf("invalid constraint %v accepted", c)
		}
	}
}

func TestIsIndexingAndUnit(t *testing.T) {
	idx := Constraint{Rel: "r", X: []string{"a", "b"}, Y: []string{"b", "a"}, N: 1}
	if !idx.IsIndexing() {
		t.Error("X→X (order-insensitive) with N=1 should be indexing")
	}
	notIdx := Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 1}
	if notIdx.IsIndexing() {
		t.Error("a→b should not be indexing")
	}
	if !notIdx.IsUnit() {
		t.Error("a→b is a unit constraint")
	}
	if idx.IsUnit() {
		t.Error("two-attribute constraint is not unit")
	}
}

func TestSchemaDedupAndOps(t *testing.T) {
	c1 := Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	c1dup := Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 99} // same key
	c2 := Constraint{Rel: "s", X: []string{"a"}, Y: []string{"d"}, N: 5}
	A := NewSchema(c1, c1dup, c2)
	if A.Len() != 2 {
		t.Fatalf("dedup failed: %d constraints", A.Len())
	}
	if A.SumN() != 8 {
		t.Errorf("SumN = %d, want 8", A.SumN())
	}
	if got := A.Without(c1.Key()); got.Len() != 1 || got.Constraints[0].Rel != "s" {
		t.Errorf("Without = %v", got)
	}
	sub := A.Subset(map[string]bool{c2.Key(): true})
	if sub.Len() != 1 || sub.Constraints[0].Rel != "s" {
		t.Errorf("Subset = %v", sub)
	}
	if len(A.ForRel("r")) != 1 || len(A.ForRel("zzz")) != 0 {
		t.Error("ForRel wrong")
	}
	if A.Size() != c1.Size()+c2.Size() {
		t.Errorf("Size = %d", A.Size())
	}
}

func TestActualize(t *testing.T) {
	A := NewSchema(
		Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3},
		Constraint{Rel: "s", X: []string{"a"}, Y: []string{"d"}, N: 5},
	)
	q := ra.Prod(ra.R("r", "r1"), ra.Prod(ra.R("r", "r2"), ra.R("s", "s1")))
	act := A.Actualize(q)
	if len(act.All) != 3 {
		t.Fatalf("actualized %d constraints, want 3 (two r occurrences + one s)", len(act.All))
	}
	if len(act.ByRel["r1"]) != 1 || len(act.ByRel["r2"]) != 1 || len(act.ByRel["s1"]) != 1 {
		t.Errorf("ByRel = %v", act.ByRel)
	}
	ac := act.ByRel["r2"][0]
	if ac.Constraint.Rel != "r2" || ac.Base.Rel != "r" {
		t.Errorf("actualized constraint %v has wrong provenance", ac)
	}
	if ac.N != 3 {
		t.Errorf("actualized N = %d", ac.N)
	}
	// Lemma 1: |A'| accounting.
	if act.Size() != 3*3 {
		t.Errorf("actualized size = %d", act.Size())
	}
}

func TestXAttrsYAttrs(t *testing.T) {
	c := Constraint{Rel: "r", X: []string{"a", "b"}, Y: []string{"c"}, N: 2}
	xs := c.XAttrs("occ")
	if len(xs) != 2 || xs[0] != ra.A("occ", "a") || xs[1] != ra.A("occ", "b") {
		t.Errorf("XAttrs = %v", xs)
	}
	ys := c.YAttrs("occ")
	if len(ys) != 1 || ys[0] != ra.A("occ", "c") {
		t.Errorf("YAttrs = %v", ys)
	}
}

func TestStringFormat(t *testing.T) {
	c := Constraint{Rel: "r", X: nil, Y: []string{"b"}, N: 12}
	if !strings.Contains(c.String(), "∅") {
		t.Errorf("empty X not rendered as ∅: %s", c.String())
	}
	A := NewSchema(c)
	if !strings.Contains(A.String(), "r(∅ -> b, 12)") {
		t.Errorf("schema string = %q", A.String())
	}
}

// Package access implements access schemas: sets of access constraints of
// the form R(X → Y, N) combining a cardinality bound with an index
// (Section 2). It provides actualization of constraints onto the relation
// occurrences of a normalized query (Lemma 1) and a textual format used by
// the tools.
package access

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ra"
)

// Constraint is an access constraint ψ = R(X → Y, N): for any X-value there
// are at most N distinct Y-values in any instance satisfying ψ, retrievable
// via an index on X. X may be empty (∅ → Y, N): at most N distinct Y values
// exist overall.
type Constraint struct {
	Rel string   // base relation (or occurrence name once actualized)
	X   []string // index attributes; may be empty
	Y   []string // fetched attributes
	N   int      // cardinality bound
}

// Key returns a canonical identity string for the constraint.
func (c Constraint) Key() string {
	return c.Rel + "(" + strings.Join(c.X, ",") + "->" + strings.Join(c.Y, ",") + ")"
}

// String renders the constraint in the paper's notation.
func (c Constraint) String() string {
	x := strings.Join(c.X, ",")
	if x == "" {
		x = "∅"
	}
	return fmt.Sprintf("%s(%s -> %s, %d)", c.Rel, x, strings.Join(c.Y, ","), c.N)
}

// Size returns the length |ψ| of the constraint: its attribute count plus one.
func (c Constraint) Size() int { return len(c.X) + len(c.Y) + 1 }

// IsIndexing reports whether c has the form R(X → X, 1), an indexing
// constraint of the elementary case of Section 6.
func (c Constraint) IsIndexing() bool {
	if c.N != 1 || len(c.X) != len(c.Y) {
		return false
	}
	xs := append([]string(nil), c.X...)
	ys := append([]string(nil), c.Y...)
	sort.Strings(xs)
	sort.Strings(ys)
	for i := range xs {
		if xs[i] != ys[i] {
			return false
		}
	}
	return true
}

// IsUnit reports whether |X| = |Y| = 1 (a unit constraint of Section 6).
func (c Constraint) IsUnit() bool { return len(c.X) == 1 && len(c.Y) == 1 }

// XAttrs returns X as attribute references on occurrence rel.
func (c Constraint) XAttrs(rel string) []ra.Attr {
	out := make([]ra.Attr, len(c.X))
	for i, x := range c.X {
		out[i] = ra.Attr{Rel: rel, Name: x}
	}
	return out
}

// YAttrs returns Y as attribute references on occurrence rel.
func (c Constraint) YAttrs(rel string) []ra.Attr {
	out := make([]ra.Attr, len(c.Y))
	for i, y := range c.Y {
		out[i] = ra.Attr{Rel: rel, Name: y}
	}
	return out
}

// Validate checks the constraint against a schema.
func (c Constraint) Validate(s ra.Schema) error {
	if _, ok := s[c.Rel]; !ok {
		return fmt.Errorf("access: constraint %s: unknown relation", c)
	}
	if c.N < 1 {
		return fmt.Errorf("access: constraint %s: N must be ≥ 1", c)
	}
	if len(c.Y) == 0 {
		return fmt.Errorf("access: constraint %s: empty Y", c)
	}
	for _, a := range c.X {
		if !s.HasAttr(c.Rel, a) {
			return fmt.Errorf("access: constraint %s: unknown attribute %s", c, a)
		}
	}
	for _, a := range c.Y {
		if !s.HasAttr(c.Rel, a) {
			return fmt.Errorf("access: constraint %s: unknown attribute %s", c, a)
		}
	}
	return nil
}

// Schema is an access schema A: a set of access constraints over a
// relational schema.
type Schema struct {
	Constraints []Constraint
}

// NewSchema builds an access schema, rejecting duplicates.
func NewSchema(cs ...Constraint) *Schema {
	s := &Schema{}
	seen := map[string]bool{}
	for _, c := range cs {
		if !seen[c.Key()] {
			seen[c.Key()] = true
			s.Constraints = append(s.Constraints, c)
		}
	}
	return s
}

// Validate checks every constraint against rs.
func (s *Schema) Validate(rs ra.Schema) error {
	for _, c := range s.Constraints {
		if err := c.Validate(rs); err != nil {
			return err
		}
	}
	return nil
}

// Len returns ‖A‖, the number of constraints.
func (s *Schema) Len() int { return len(s.Constraints) }

// Size returns |A|, the total length of the constraints.
func (s *Schema) Size() int {
	n := 0
	for _, c := range s.Constraints {
		n += c.Size()
	}
	return n
}

// ForRel returns the constraints on base (or occurrence) relation rel.
func (s *Schema) ForRel(rel string) []Constraint {
	var out []Constraint
	for _, c := range s.Constraints {
		if c.Rel == rel {
			out = append(out, c)
		}
	}
	return out
}

// Subset returns a new schema containing the constraints with the given
// keys, preserving order.
func (s *Schema) Subset(keys map[string]bool) *Schema {
	out := &Schema{}
	for _, c := range s.Constraints {
		if keys[c.Key()] {
			out.Constraints = append(out.Constraints, c)
		}
	}
	return out
}

// Without returns a new schema with the constraint identified by key removed.
func (s *Schema) Without(key string) *Schema {
	out := &Schema{Constraints: make([]Constraint, 0, len(s.Constraints))}
	for _, c := range s.Constraints {
		if c.Key() != key {
			out.Constraints = append(out.Constraints, c)
		}
	}
	return out
}

// SumN returns Σ_{ψ∈A} N_ψ, the objective of the access minimization
// problem of Section 6.
func (s *Schema) SumN() int {
	n := 0
	for _, c := range s.Constraints {
		n += c.N
	}
	return n
}

// String lists the constraints one per line.
func (s *Schema) String() string {
	lines := make([]string, len(s.Constraints))
	for i, c := range s.Constraints {
		lines[i] = c.String()
	}
	return strings.Join(lines, "\n")
}

// Actualize computes the actualized access schema A' of A on normalized
// query q (Lemma 1): each constraint φ = R(X→Y,N) yields one actualized
// constraint S(X→Y,N) per occurrence S renaming R in q. The result maps
// occurrence names; Base tracks provenance back to A.
func (s *Schema) Actualize(q ra.Query) *Actualized {
	act := &Actualized{ByRel: map[string][]ActualConstraint{}}
	for _, occ := range ra.Relations(q) {
		for _, c := range s.ForRel(occ.Base) {
			ac := ActualConstraint{
				Constraint: Constraint{Rel: occ.Name, X: c.X, Y: c.Y, N: c.N},
				Base:       c,
			}
			act.ByRel[occ.Name] = append(act.ByRel[occ.Name], ac)
			act.All = append(act.All, ac)
		}
	}
	return act
}

// ActualConstraint is a constraint actualized on a relation occurrence,
// remembering the base constraint of A it came from.
type ActualConstraint struct {
	Constraint
	Base Constraint
}

// Actualized is the actualized access schema of A on a query.
type Actualized struct {
	All   []ActualConstraint
	ByRel map[string][]ActualConstraint
}

// Size returns |A'| of the actualized schema.
func (a *Actualized) Size() int {
	n := 0
	for _, c := range a.All {
		n += c.Constraint.Size()
	}
	return n
}

// Parse reads a constraint in the textual form "R(X -> Y, N)" where X and Y
// are comma-separated attribute lists and X may be empty or "∅".
func Parse(s string) (Constraint, error) {
	var c Constraint
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return c, fmt.Errorf("access: malformed constraint %q", s)
	}
	c.Rel = strings.TrimSpace(s[:open])
	body := strings.TrimSpace(s)
	body = body[open+1 : len(body)-1]
	arrow := strings.Index(body, "->")
	if arrow < 0 {
		return c, fmt.Errorf("access: constraint %q lacks '->'", s)
	}
	comma := strings.LastIndexByte(body, ',')
	if comma < arrow {
		return c, fmt.Errorf("access: constraint %q lacks cardinality", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(body[comma+1:]))
	if err != nil {
		return c, fmt.Errorf("access: constraint %q: bad N: %v", s, err)
	}
	c.N = n
	c.X = splitAttrs(body[:arrow])
	c.Y = splitAttrs(body[arrow+2 : comma])
	if len(c.Y) == 0 {
		return c, fmt.Errorf("access: constraint %q has empty Y", s)
	}
	return c, nil
}

func splitAttrs(s string) []string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	s = strings.TrimSpace(s)
	if s == "" || s == "∅" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

package ra

import (
	"testing"

	"repro/internal/value"
)

func benchQuery() Query {
	return Proj(
		Sel(Prod(R("r", "x"), R("s", "y"), R("t", "z")),
			Eq(A("x", "b"), A("y", "b")),
			Eq(A("y", "c"), A("z", "c")),
			EqC(A("x", "a"), value.NewInt(1)),
			EqC(A("z", "a"), value.NewInt(2))),
		A("y", "c"),
	)
}

func BenchmarkFingerprint(b *testing.B) {
	q := benchQuery()
	s := fpSchema
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fingerprint(q, s); err != nil {
			b.Fatal(err)
		}
	}
}

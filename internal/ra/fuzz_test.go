package ra_test

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

var fuzzSchema = ra.Schema{
	"r": {"a", "b"},
	"s": {"b", "c"},
	"t": {"a", "c"},
}

// fuzzDB is a tiny instance with overlapping values so joins, selections
// and differences all produce non-trivial answers.
func fuzzDB() *store.DB {
	db := store.NewDB(fuzzSchema)
	ins := func(rel string, rows ...[2]int64) {
		for _, r := range rows {
			if _, err := db.Insert(rel, value.Tuple{value.NewInt(r[0]), value.NewInt(r[1])}); err != nil {
				panic(err)
			}
		}
	}
	ins("r", [2]int64{1, 1}, [2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 1}, [2]int64{-3, 7})
	ins("s", [2]int64{1, 2}, [2]int64{2, 2}, [2]int64{3, 4}, [2]int64{7, 1})
	ins("t", [2]int64{1, 2}, [2]int64{2, 4}, [2]int64{3, 3})
	return db
}

// FuzzNormalize checks, for every pair of parseable queries:
//   - Canonical is idempotent and fingerprint-preserving,
//   - canonicalization preserves semantics (the canonical query evaluates
//     to the same answer as the original on a concrete instance),
//   - fingerprint-equal queries evaluate to equal results — the soundness
//     property the plan cache rests on.
func FuzzNormalize(f *testing.F) {
	seeds := [][2]string{
		{`q(x) :- r(x, y), s(y, z)`, `q(p) :- s(w, z2), r(p, w)`},
		{`q(a) :- r(a, 7)`, `q(b) :- r(b, 7)`},
		{`q(x) :- r(x, y), s(y, 2)`, `q(x) :- r(x, y), s(y, 3)`},
		{`(q(c) :- r(c, 1)) UNION (q(c) :- s(c, 2))`, `(q(c) :- s(c, 2)) UNION (q(c) :- r(c, 1))`},
		{`(q(c) :- r(c, 1)) EXCEPT (q(c) :- s(c, 2))`, `(q(c) :- s(c, 2)) EXCEPT (q(c) :- r(c, 1))`},
		{`q(x, z) :- r(x, y), s(y, z), t(x, z)`, `q(x, z) :- t(x, z), s(y, z), r(x, y)`},
		{`q(y) :- r(1, y)`, `q(y) :- r(y, 1)`},
		{`q(x) :- r(x, b), r(b, x)`, `q(x) :- r(b, x), r(x, b)`},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, src1, src2 string) {
		q1, err := parser.Parse(src1, fuzzSchema)
		if err != nil {
			return
		}
		checkCanonical(t, q1, db, src1)

		q2, err := parser.Parse(src2, fuzzSchema)
		if err != nil {
			return
		}
		fp1, err1 := ra.Fingerprint(q1, fuzzSchema)
		fp2, err2 := ra.Fingerprint(q2, fuzzSchema)
		if err1 != nil || err2 != nil {
			t.Fatalf("fingerprint errors: %v / %v", err1, err2)
		}
		if fp1 != fp2 {
			return
		}
		// Equal fingerprints promise equal answers.
		t1, ok1 := evalSmall(t, q1, db)
		t2, ok2 := evalSmall(t, q2, db)
		if !ok1 || !ok2 {
			return
		}
		if !t1.Equal(t2) {
			t.Fatalf("fingerprint-equal queries disagree:\nq1: %q -> %s\nq2: %q -> %s",
				src1, t1.String(), src2, t2.String())
		}
	})
}

func checkCanonical(t *testing.T, q ra.Query, db *store.DB, src string) {
	t.Helper()
	c1, err := ra.Canonical(q, fuzzSchema)
	if err != nil {
		t.Fatalf("canonical of accepted query errored: %v (src %q)", err, src)
	}
	c2, err := ra.Canonical(c1, fuzzSchema)
	if err != nil {
		t.Fatalf("re-canonicalization errored: %v (src %q)", err, src)
	}
	fq, err := ra.Fingerprint(q, fuzzSchema)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := ra.Fingerprint(c1, fuzzSchema)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ra.Fingerprint(c2, fuzzSchema)
	if err != nil {
		t.Fatal(err)
	}
	if fq != f1 || f1 != f2 {
		t.Fatalf("canonicalization not idempotent/stable for %q: %s %s %s", src, fq, f1, f2)
	}
	// Canonicalization preserves semantics on a concrete instance.
	orig, ok1 := evalSmall(t, q, db)
	canon, ok2 := evalSmall(t, c1, db)
	if ok1 != ok2 {
		t.Fatalf("canonical query evaluability differs for %q", src)
	}
	if ok1 && !orig.Equal(canon) {
		t.Fatalf("canonicalization changed the answer of %q:\norig: %s\ncanon: %s",
			src, orig.String(), canon.String())
	}
}

// evalSmall evaluates q with the conventional evaluator, skipping queries
// whose product width would make the baseline explode (the fuzzer can
// stack many atoms; 6 relation occurrences over 5-row tables is plenty).
func evalSmall(t *testing.T, q ra.Query, db *store.DB) (*exec.Table, bool) {
	t.Helper()
	if len(ra.Relations(q)) > 6 {
		return nil, false
	}
	norm, err := ra.Normalize(q, fuzzSchema)
	if err != nil {
		t.Fatalf("normalize of accepted query: %v", err)
	}
	table, _, err := exec.RunBaseline(norm, fuzzSchema, db)
	if err != nil {
		t.Fatalf("baseline evaluation failed: %v", err)
	}
	return table, true
}

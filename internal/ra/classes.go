package ra

import (
	"sort"

	"repro/internal/value"
)

// Classes is the transitive closure ΣQ of the equality atoms of an SPC
// sub-query, represented as a union-find over attribute occurrences with a
// per-class constant binding. The unification function ρU of Section 4 is
// realised by Rep, which returns a deterministic class representative.
type Classes struct {
	parent map[Attr]Attr
	rank   map[Attr]int
	consts map[Attr]value.Value // keyed by root
	rep    map[Attr]Attr        // root -> lexicographically least member
	// Conflict is true when ΣQ derives c = c' for distinct constants,
	// i.e. the sub-query is unsatisfiable. Analysis still proceeds.
	Conflict bool
	members  map[Attr][]Attr // root -> members (built on Finalize)
	final    bool
}

// NewClasses builds the equality closure of preds over the attributes of an
// SPC sub-query. All attributes in attrs are registered even when they occur
// in no predicate (singleton classes).
func NewClasses(attrs []Attr, preds []Pred) *Classes {
	c := &Classes{
		parent: map[Attr]Attr{},
		rank:   map[Attr]int{},
		consts: map[Attr]value.Value{},
		rep:    map[Attr]Attr{},
	}
	for _, a := range attrs {
		c.add(a)
	}
	for _, p := range preds {
		switch t := p.(type) {
		case EqAttr:
			c.add(t.L)
			c.add(t.R)
			c.union(t.L, t.R)
		case EqConst:
			c.add(t.A)
			c.bind(t.A, t.C)
		}
	}
	c.finalize()
	return c
}

func (c *Classes) add(a Attr) {
	if _, ok := c.parent[a]; !ok {
		c.parent[a] = a
		c.rank[a] = 0
	}
}

func (c *Classes) find(a Attr) Attr {
	root := a
	for c.parent[root] != root {
		root = c.parent[root]
	}
	for c.parent[a] != root {
		c.parent[a], a = root, c.parent[a]
	}
	return root
}

func (c *Classes) union(a, b Attr) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	if c.rank[ra] < c.rank[rb] {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	if c.rank[ra] == c.rank[rb] {
		c.rank[ra]++
	}
	va, oka := c.consts[ra]
	vb, okb := c.consts[rb]
	switch {
	case oka && okb && va != vb:
		c.Conflict = true
	case okb && !oka:
		c.consts[ra] = vb
	}
	delete(c.consts, rb)
}

func (c *Classes) bind(a Attr, v value.Value) {
	r := c.find(a)
	if old, ok := c.consts[r]; ok && old != v {
		c.Conflict = true
		return
	}
	c.consts[r] = v
}

// finalize computes deterministic representatives (least member per class).
func (c *Classes) finalize() {
	c.members = map[Attr][]Attr{}
	for a := range c.parent {
		r := c.find(a)
		c.members[r] = append(c.members[r], a)
	}
	for r, ms := range c.members {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Less(ms[j]) })
		c.rep[r] = ms[0]
	}
	c.final = true
}

// Rep returns ρU(a): the deterministic representative of a's class.
// Attributes that were never registered represent themselves.
func (c *Classes) Rep(a Attr) Attr {
	if _, ok := c.parent[a]; !ok {
		return a
	}
	return c.rep[c.find(a)]
}

// Reps maps Rep over a slice, de-duplicating while preserving order.
func (c *Classes) Reps(attrs []Attr) []Attr {
	out := make([]Attr, 0, len(attrs))
	seen := map[Attr]bool{}
	for _, a := range attrs {
		r := c.Rep(a)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Same reports whether ΣQ ⊢ a = b.
func (c *Classes) Same(a, b Attr) bool {
	if a == b {
		return true
	}
	_, oka := c.parent[a]
	_, okb := c.parent[b]
	if !oka || !okb {
		return false
	}
	return c.find(a) == c.find(b)
}

// Const returns the constant bound to a's class, if ΣQ ⊢ a = c.
func (c *Classes) Const(a Attr) (value.Value, bool) {
	if _, ok := c.parent[a]; !ok {
		return value.Value{}, false
	}
	v, ok := c.consts[c.find(a)]
	return v, ok
}

// Members returns all attributes in a's class, sorted.
func (c *Classes) Members(a Attr) []Attr {
	if _, ok := c.parent[a]; !ok {
		return []Attr{a}
	}
	return c.members[c.find(a)]
}

// ConstClasses returns the representatives of all classes bound to a
// constant, sorted: the set X̂ Qs_C of Table 1.
func (c *Classes) ConstClasses() []Attr {
	out := make([]Attr, 0, len(c.consts))
	for r := range c.consts {
		out = append(out, c.rep[r])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AllReps returns the representatives of every class, sorted.
func (c *Classes) AllReps() []Attr {
	out := make([]Attr, 0, len(c.rep))
	for _, r := range c.rep {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

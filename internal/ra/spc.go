package ra

import "fmt"

// SPC is a flattened max SPC sub-query Qs of an RA query Q (Section 3):
// a sub-tree built solely from selection, projection, Cartesian product and
// relation occurrences, maximal in Q with respect to sub-tree containment.
type SPC struct {
	// Root is the sub-tree this SPC flattens.
	Root Query
	// Rels are the relation occurrences of the sub-query, left to right.
	Rels []*Relation
	// Preds are all equality atoms of all selections in the sub-query.
	Preds []Pred
	// Out are the output attributes of Root.
	Out []Attr
	// X is XQs: all attributes occurring in a selection condition or a
	// projection list anywhere in the sub-query (a superset of the paper's
	// definition when projections are nested, which is sound).
	X []Attr
}

// IsSPC reports whether q is built only from S, P, C and relation nodes.
func IsSPC(q Query) bool {
	switch t := q.(type) {
	case *Relation:
		return true
	case *Select:
		return IsSPC(t.In)
	case *Project:
		return IsSPC(t.In)
	case *Product:
		return IsSPC(t.L) && IsSPC(t.R)
	default:
		return false
	}
}

// MaxSPC returns the set S_Q of all max SPC sub-queries of q, in a
// deterministic left-to-right order. q must be normalized and valid for s.
func MaxSPC(q Query, s Schema) ([]*SPC, error) {
	var out []*SPC
	var visit func(Query) error
	visit = func(n Query) error {
		if IsSPC(n) {
			spc, err := flattenSPC(n, s)
			if err != nil {
				return err
			}
			out = append(out, spc)
			return nil
		}
		for _, c := range n.Children() {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(q); err != nil {
		return nil, err
	}
	return out, nil
}

func flattenSPC(root Query, s Schema) (*SPC, error) {
	spc := &SPC{Root: root}
	outAttrs, err := OutAttrs(root, s)
	if err != nil {
		return nil, err
	}
	spc.Out = outAttrs

	seen := map[Attr]bool{}
	addX := func(a Attr) {
		if !seen[a] {
			seen[a] = true
			spc.X = append(spc.X, a)
		}
	}
	var walk func(Query) error
	walk = func(n Query) error {
		switch t := n.(type) {
		case *Relation:
			spc.Rels = append(spc.Rels, t)
		case *Select:
			spc.Preds = append(spc.Preds, t.Preds...)
			for _, p := range t.Preds {
				for _, a := range predAttrs(p) {
					addX(a)
				}
			}
			return walk(t.In)
		case *Project:
			for _, a := range t.Attrs {
				addX(a)
			}
			return walk(t.In)
		case *Product:
			if err := walk(t.L); err != nil {
				return err
			}
			return walk(t.R)
		default:
			return fmt.Errorf("ra: node %T inside SPC sub-query", n)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	// The topmost output attributes always count toward XQs even when the
	// sub-query has no explicit projection (e.g. a bare σ over a product).
	for _, a := range outAttrs {
		addX(a)
	}
	return spc, nil
}

// RelAttrs returns the attributes of occurrence rel that are in XQs,
// i.e. the set X^S_Qs of Table 1.
func (q *SPC) RelAttrs(rel string) []Attr {
	var out []Attr
	for _, a := range q.X {
		if a.Rel == rel {
			out = append(out, a)
		}
	}
	return out
}

// HasRel reports whether occurrence name occurs in this sub-query.
func (q *SPC) HasRel(name string) bool {
	for _, r := range q.Rels {
		if r.Name == name {
			return true
		}
	}
	return false
}

package ra

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// randQuery builds a random small query over testSchema, possibly with
// clashing occurrence names to exercise renaming.
func randQuery(rng *rand.Rand, depth int) Query {
	if depth <= 0 || rng.Intn(3) == 0 {
		bases := []string{"r", "s", "t"}
		base := bases[rng.Intn(len(bases))]
		names := []string{"", base, "x1", "x2"}
		return R(base, names[rng.Intn(len(names))])
	}
	switch rng.Intn(5) {
	case 0:
		in := randQuery(rng, depth-1)
		return &Select{In: in, Preds: nil}
	case 1:
		in := randQuery(rng, depth-1)
		return &Project{In: in, Attrs: nil} // fixed up by caller validation path
	case 2:
		return &Product{L: randQuery(rng, depth-1), R: randQuery(rng, depth-1)}
	default:
		// Set ops need equal arity; use two relation occurrences of the
		// same base for guaranteed compatibility.
		l := R("r", "")
		r := R("r", "")
		if rng.Intn(2) == 0 {
			return &Union{L: l, R: r}
		}
		return &Diff{L: l, R: r}
	}
}

// TestNormalizeIdempotent: normalizing a normalized query changes nothing
// (names are already unique, so the copy is structurally identical).
func TestNormalizeIdempotent(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := randQuery(rng, 3)
		// Projections with empty attr lists are invalid; patch them out by
		// skipping queries that fail to normalize in the first place.
		n1, err := Normalize(q, s)
		if err != nil {
			continue
		}
		n2, err := Normalize(n1, s)
		if err != nil {
			t.Fatalf("re-normalize failed: %v\nquery: %s", err, n1)
		}
		if n1.String() != n2.String() {
			t.Fatalf("normalize not idempotent:\n%s\nvs\n%s", n1, n2)
		}
	}
}

// TestNormalizePreservesShape: node kinds and counts are unchanged.
func TestNormalizePreservesShape(t *testing.T) {
	s := testSchema()
	rng := rand.New(rand.NewSource(11))
	count := func(q Query) (n int) {
		Walk(q, func(Query) { n++ })
		return
	}
	for i := 0; i < 200; i++ {
		q := randQuery(rng, 3)
		norm, err := Normalize(q, s)
		if err != nil {
			continue
		}
		if count(q) != count(norm) {
			t.Fatalf("normalize changed node count: %d vs %d", count(q), count(norm))
		}
		if Size(q) != Size(norm) {
			t.Fatalf("normalize changed |Q|: %d vs %d", Size(q), Size(norm))
		}
	}
}

// TestNormalizeKeepsConstants: constants in predicates survive renaming.
func TestNormalizeKeepsConstants(t *testing.T) {
	s := testSchema()
	mk := func() Query {
		return Sel(R("r", ""), EqC(A("r", "a"), value.NewInt(42)))
	}
	q := U(mk(), mk())
	norm, err := Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	Walk(norm, func(n Query) {
		if sel, ok := n.(*Select); ok {
			for _, p := range sel.Preds {
				if ec, ok := p.(EqConst); ok && ec.C == value.NewInt(42) {
					found++
				}
			}
		}
	})
	if found != 2 {
		t.Errorf("found %d constants after normalize, want 2", found)
	}
}

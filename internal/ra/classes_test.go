package ra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func attrs4() []Attr {
	return []Attr{A("r", "a"), A("r", "b"), A("s", "a"), A("s", "b")}
}

func TestClassesTransitivity(t *testing.T) {
	as := attrs4()
	c := NewClasses(as, []Pred{
		Eq(as[0], as[1]),
		Eq(as[1], as[2]),
	})
	if !c.Same(as[0], as[2]) {
		t.Error("transitivity: a=b, b=c should give a=c")
	}
	if c.Same(as[0], as[3]) {
		t.Error("unrelated attributes unified")
	}
}

func TestClassesConstantPropagation(t *testing.T) {
	as := attrs4()
	c := NewClasses(as, []Pred{
		Eq(as[0], as[1]),
		EqC(as[1], value.NewInt(7)),
	})
	v, ok := c.Const(as[0])
	if !ok || v != value.NewInt(7) {
		t.Errorf("constant not propagated through class: %v, %v", v, ok)
	}
	if _, ok := c.Const(as[3]); ok {
		t.Error("constant leaked to unrelated attribute")
	}
}

func TestClassesConflict(t *testing.T) {
	as := attrs4()
	c := NewClasses(as, []Pred{
		EqC(as[0], value.NewInt(1)),
		Eq(as[0], as[1]),
		EqC(as[1], value.NewInt(2)),
	})
	if !c.Conflict {
		t.Error("conflicting constants not detected")
	}
	// Conflict via union of two constant-bound classes.
	c2 := NewClasses(as, []Pred{
		EqC(as[0], value.NewInt(1)),
		EqC(as[1], value.NewInt(2)),
		Eq(as[0], as[1]),
	})
	if !c2.Conflict {
		t.Error("conflict on union not detected")
	}
}

func TestRepDeterministicMinimum(t *testing.T) {
	as := attrs4()
	// Union in two different orders; representative must be the
	// lexicographic minimum either way.
	c1 := NewClasses(as, []Pred{Eq(as[2], as[0]), Eq(as[0], as[1])})
	c2 := NewClasses(as, []Pred{Eq(as[1], as[0]), Eq(as[0], as[2])})
	if c1.Rep(as[2]) != c2.Rep(as[2]) {
		t.Errorf("rep differs by union order: %v vs %v", c1.Rep(as[2]), c2.Rep(as[2]))
	}
	if c1.Rep(as[2]) != as[0] { // r.a is the lexicographic minimum
		t.Errorf("rep = %v, want %v", c1.Rep(as[2]), as[0])
	}
}

func TestRepsDeduplicates(t *testing.T) {
	as := attrs4()
	c := NewClasses(as, []Pred{Eq(as[0], as[1])})
	reps := c.Reps([]Attr{as[0], as[1], as[3]})
	if len(reps) != 2 {
		t.Errorf("Reps = %v, want 2 entries", reps)
	}
}

func TestConstClassesSorted(t *testing.T) {
	as := attrs4()
	c := NewClasses(as, []Pred{
		EqC(as[3], value.NewInt(1)),
		EqC(as[0], value.NewInt(2)),
	})
	cc := c.ConstClasses()
	if len(cc) != 2 || cc[1].Less(cc[0]) {
		t.Errorf("ConstClasses = %v", cc)
	}
}

func TestMembersSorted(t *testing.T) {
	as := attrs4()
	c := NewClasses(as, []Pred{Eq(as[2], as[0]), Eq(as[3], as[2])})
	m := c.Members(as[0])
	if len(m) != 3 {
		t.Fatalf("Members = %v", m)
	}
	for i := 1; i < len(m); i++ {
		if m[i].Less(m[i-1]) {
			t.Errorf("Members not sorted: %v", m)
		}
	}
}

func TestUnregisteredAttrSelfRep(t *testing.T) {
	c := NewClasses(nil, nil)
	ghost := A("ghost", "x")
	if c.Rep(ghost) != ghost {
		t.Error("unregistered attribute should represent itself")
	}
	if c.Same(ghost, A("ghost", "y")) {
		t.Error("unregistered attributes should not be unified")
	}
}

// TestSameIsEquivalenceRelation checks reflexivity, symmetry and
// transitivity on random equality graphs.
func TestSameIsEquivalenceRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var as []Attr
		for i := 0; i < 6; i++ {
			as = append(as, A("r", string(rune('a'+i))))
		}
		var preds []Pred
		for i := 0; i < rng.Intn(8); i++ {
			preds = append(preds, Eq(as[rng.Intn(len(as))], as[rng.Intn(len(as))]))
		}
		c := NewClasses(as, preds)
		for _, x := range as {
			if !c.Same(x, x) {
				return false
			}
			for _, y := range as {
				if c.Same(x, y) != c.Same(y, x) {
					return false
				}
				for _, z := range as {
					if c.Same(x, y) && c.Same(y, z) && !c.Same(x, z) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRepIsClassInvariant: all members of a class share the representative,
// and the representative is a member.
func TestRepIsClassInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var as []Attr
		for i := 0; i < 5; i++ {
			as = append(as, A("r", string(rune('a'+i))))
		}
		var preds []Pred
		for i := 0; i < rng.Intn(6); i++ {
			preds = append(preds, Eq(as[rng.Intn(len(as))], as[rng.Intn(len(as))]))
		}
		c := NewClasses(as, preds)
		for _, x := range as {
			rep := c.Rep(x)
			if !c.Same(x, rep) {
				return false
			}
			for _, m := range c.Members(x) {
				if c.Rep(m) != rep {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

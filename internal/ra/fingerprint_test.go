package ra

import (
	"testing"

	"repro/internal/value"
)

var fpSchema = Schema{
	"r": {"a", "b"},
	"s": {"b", "c"},
	"t": {"a", "c"},
}

func fp(t *testing.T, q Query) string {
	t.Helper()
	f, err := Fingerprint(q, fpSchema)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// Two rules that differ only in atom order and variable (occurrence) names
// must share a fingerprint.
func TestFingerprintAtomOrderAndRenaming(t *testing.T) {
	q1 := Proj(
		Sel(Prod(R("r", "x"), R("s", "y")),
			Eq(A("x", "b"), A("y", "b")),
			EqC(A("x", "a"), value.NewInt(1))),
		A("y", "c"),
	)
	q2 := Proj(
		Sel(Prod(R("s", "p"), R("r", "q")),
			EqC(A("q", "a"), value.NewInt(1)),
			Eq(A("p", "b"), A("q", "b"))),
		A("p", "c"),
	)
	if fp(t, q1) != fp(t, q2) {
		t.Error("atom order / renaming changed the fingerprint")
	}
}

// Chain- and star-shaped equality conditions with the same closure fold to
// the same canonical predicates.
func TestFingerprintEqualityClosure(t *testing.T) {
	mk := func(preds ...Pred) Query {
		return Proj(
			Sel(Prod(R("r", "r1"), R("s", "s1"), R("t", "t1")), preds...),
			A("r1", "a"),
		)
	}
	chain := mk(
		Eq(A("r1", "b"), A("s1", "b")),
		Eq(A("s1", "c"), A("t1", "c")),
		Eq(A("r1", "a"), A("t1", "a")),
	)
	reordered := mk(
		Eq(A("t1", "a"), A("r1", "a")),
		Eq(A("s1", "b"), A("r1", "b")),
		Eq(A("t1", "c"), A("s1", "c")),
	)
	withNoise := mk(
		Eq(A("r1", "b"), A("s1", "b")),
		Eq(A("r1", "b"), A("s1", "b")), // duplicate
		Eq(A("r1", "a"), A("r1", "a")), // reflexive
		Eq(A("s1", "c"), A("t1", "c")),
		Eq(A("r1", "a"), A("t1", "a")),
	)
	if fp(t, chain) != fp(t, reordered) {
		t.Error("flipped equality atoms changed the fingerprint")
	}
	if fp(t, chain) != fp(t, withNoise) {
		t.Error("redundant atoms changed the fingerprint")
	}
}

// Projecting either member of an equality class is the same query.
func TestFingerprintProjectionClassFolding(t *testing.T) {
	mk := func(out Attr) Query {
		return Proj(
			Sel(Prod(R("r", "r1"), R("s", "s1")), Eq(A("r1", "b"), A("s1", "b"))),
			out,
		)
	}
	if fp(t, mk(A("r1", "b"))) != fp(t, mk(A("s1", "b"))) {
		t.Error("projection through an equality class changed the fingerprint")
	}
}

func TestFingerprintUnionCommutes(t *testing.T) {
	l := Proj(Sel(R("r", "r1"), EqC(A("r1", "a"), value.NewInt(1))), A("r1", "b"))
	r := Proj(Sel(R("s", "s1"), EqC(A("s1", "c"), value.NewInt(2))), A("s1", "b"))
	if fp(t, U(Clone(l), Clone(r))) != fp(t, U(Clone(r), Clone(l))) {
		t.Error("union operand order changed the fingerprint")
	}
	// Difference is NOT commutative.
	if fp(t, D(Clone(l), Clone(r))) == fp(t, D(Clone(r), Clone(l))) {
		t.Error("difference operand order must matter")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := Proj(Sel(R("r", "r1"), EqC(A("r1", "a"), value.NewInt(1))), A("r1", "b"))
	diffConst := Proj(Sel(R("r", "r1"), EqC(A("r1", "a"), value.NewInt(2))), A("r1", "b"))
	diffAttr := Proj(Sel(R("r", "r1"), EqC(A("r1", "b"), value.NewInt(1))), A("r1", "a"))
	strConst := Proj(Sel(R("r", "r1"), EqC(A("r1", "a"), value.NewStr("1"))), A("r1", "b"))
	if fp(t, base) == fp(t, diffConst) {
		t.Error("different constants collided")
	}
	if fp(t, base) == fp(t, diffAttr) {
		t.Error("different attributes collided")
	}
	if fp(t, base) == fp(t, strConst) {
		t.Error("int and string constants collided")
	}
}

// Canonicalization is idempotent: canonical form is a fixpoint.
func TestCanonicalIdempotent(t *testing.T) {
	q := U(
		Proj(
			Sel(Prod(R("s", "y"), R("r", "x"), R("r", "z")),
				Eq(A("x", "b"), A("y", "b")),
				Eq(A("z", "a"), A("x", "a")),
				EqC(A("z", "b"), value.NewInt(7))),
			A("y", "c"), A("x", "a"),
		),
		Proj(Sel(R("t", "t1"), EqC(A("t1", "a"), value.NewInt(3))), A("t1", "c"), A("t1", "a")),
	)
	c1, err := Canonical(q, fpSchema)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Canonical(c1, fpSchema)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(c1) != serialize(c2) {
		t.Errorf("canonical form is not a fixpoint:\n%s\n%s", serialize(c1), serialize(c2))
	}
	if fp(t, q) != fp(t, c1) {
		t.Error("canonicalization changed the fingerprint")
	}
}

// The canonical query must remain valid and keep the projection width.
func TestCanonicalStaysValid(t *testing.T) {
	q := Proj(
		Sel(Prod(R("r", "r1"), R("s", "s1")), Eq(A("r1", "b"), A("s1", "b"))),
		A("r1", "a"), A("s1", "c"),
	)
	cq, err := Canonical(q, fpSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(cq, fpSchema); err != nil {
		t.Fatalf("canonical query invalid: %v", err)
	}
	attrs, err := OutAttrs(cq, fpSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 {
		t.Fatalf("arity changed: %v", attrs)
	}
}

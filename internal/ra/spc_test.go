package ra

import (
	"testing"

	"repro/internal/value"
)

func TestIsSPC(t *testing.T) {
	spc := Proj(Sel(Prod(R("r", "r1"), R("s", "s1"))), A("r1", "a"))
	if !IsSPC(spc) {
		t.Error("SPC tree not recognized")
	}
	if IsSPC(U(R("r", "r1"), R("r", "r2"))) {
		t.Error("union recognized as SPC")
	}
	if IsSPC(Proj(U(R("r", "r1"), R("r", "r2")), A("r1", "a"))) {
		t.Error("projection over union recognized as SPC")
	}
}

func TestMaxSPCSingle(t *testing.T) {
	s := testSchema()
	q := Proj(Sel(Prod(R("r", "r1"), R("s", "s1")),
		Eq(A("r1", "b"), A("s1", "b"))), A("s1", "c"))
	subs, err := MaxSPC(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatalf("got %d max SPC sub-queries, want 1", len(subs))
	}
	spc := subs[0]
	if spc.Root != q {
		t.Error("max SPC root should be the whole query")
	}
	if len(spc.Rels) != 2 {
		t.Errorf("Rels = %v", spc.Rels)
	}
	if len(spc.Preds) != 1 {
		t.Errorf("Preds = %v", spc.Preds)
	}
}

func TestMaxSPCAcrossSetOps(t *testing.T) {
	s := testSchema()
	mk := func(occ string) Query {
		return Proj(Sel(R("r", occ), EqC(A(occ, "a"), value.NewInt(1))), A(occ, "b"))
	}
	q := D(U(mk("x"), mk("y")), mk("z"))
	subs, err := MaxSPC(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d max SPC sub-queries, want 3", len(subs))
	}
	// Maximality: none of the roots should be a strict sub-tree of another
	// SPC sub-tree. Here each is a direct operand of a set operator.
	names := map[string]bool{}
	for _, sub := range subs {
		if len(sub.Rels) != 1 {
			t.Errorf("sub-query has %d relations", len(sub.Rels))
		}
		names[sub.Rels[0].Name] = true
	}
	for _, want := range []string{"x", "y", "z"} {
		if !names[want] {
			t.Errorf("missing sub-query for occurrence %s", want)
		}
	}
}

func TestMaxSPCWithOuterSelect(t *testing.T) {
	s := testSchema()
	// A selection above a union is NOT part of any SPC sub-query.
	inner := U(Proj(R("r", "x"), A("x", "a")), Proj(R("r", "y"), A("y", "a")))
	q := Sel(inner, EqC(A("x", "a"), value.NewInt(3)))
	subs, err := MaxSPC(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d sub-queries, want 2", len(subs))
	}
}

func TestSPCXIncludesPredsProjectionsAndOutput(t *testing.T) {
	s := testSchema()
	q := Proj(Sel(Prod(R("r", "r1"), R("s", "s1")),
		Eq(A("r1", "b"), A("s1", "b")),
		EqC(A("r1", "a"), value.NewInt(1))), A("s1", "c"))
	subs, err := MaxSPC(q, s)
	if err != nil {
		t.Fatal(err)
	}
	x := map[Attr]bool{}
	for _, a := range subs[0].X {
		x[a] = true
	}
	for _, want := range []Attr{A("r1", "a"), A("r1", "b"), A("s1", "b"), A("s1", "c")} {
		if !x[want] {
			t.Errorf("XQs missing %v (got %v)", want, subs[0].X)
		}
	}
	if x[A("s1", "zzz")] {
		t.Error("XQs contains nonsense")
	}
}

func TestSPCBareRelationOutputInX(t *testing.T) {
	s := testSchema()
	subs, err := MaxSPC(R("r", "r1"), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs[0].X) != 2 {
		t.Errorf("bare relation XQs = %v, want both output attributes", subs[0].X)
	}
}

func TestRelAttrsAndHasRel(t *testing.T) {
	s := testSchema()
	q := Proj(Sel(Prod(R("r", "r1"), R("s", "s1")),
		Eq(A("r1", "b"), A("s1", "b"))), A("s1", "c"))
	subs, _ := MaxSPC(q, s)
	spc := subs[0]
	ra1 := spc.RelAttrs("r1")
	if len(ra1) != 1 || ra1[0] != A("r1", "b") {
		t.Errorf("RelAttrs(r1) = %v", ra1)
	}
	if !spc.HasRel("s1") || spc.HasRel("nope") {
		t.Error("HasRel wrong")
	}
}

package ra

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Canonical returns a canonical normal form of q: relation occurrences are
// renamed to position-independent names, conjuncts of a product under a
// projection are put in a stable order, union operands are sorted,
// duplicate and reflexive equality atoms are folded away, and each
// selection's equality atoms are re-emitted in a canonical star shape per
// equivalence class (constants attached to the class representative).
// The result is A-equivalent to q on every instance: atom reordering is
// sound because projections and selections address columns by name, and
// union is commutative; only Diff and raw positional contexts keep their
// operand order.
//
// Two queries that differ only in variable naming, atom order within a
// rule body, redundant equality atoms, or union operand order canonicalize
// to the same tree, which is what makes Fingerprint usable as a plan-cache
// key.
func Canonical(q Query, s Schema) (Query, error) {
	norm, err := Normalize(q, s)
	if err != nil {
		return nil, err
	}
	return canonicalize(norm), nil
}

// Fingerprint returns a stable hex digest identifying q up to canonical
// form: Fingerprint(q1) == Fingerprint(q2) implies q1 and q2 evaluate to
// the same answer (as a set of rows) on every database of s. The converse
// does not hold — semantically equal but structurally dissimilar queries
// may fingerprint apart, costing a cache miss, never a wrong answer.
func Fingerprint(q Query, s Schema) (string, error) {
	norm, err := Normalize(q, s)
	if err != nil {
		return "", err
	}
	return FingerprintNormalized(norm), nil
}

// FingerprintNormalized is Fingerprint for a query that is already in the
// normal form Normalize produces (all relation occurrences distinct and
// valid against the schema); it skips re-normalization, which matters on
// the plan-cache hit path where the fingerprint is the whole cost.
func FingerprintNormalized(norm Query) string {
	sum := sha256.Sum256([]byte(serialize(canonicalize(norm))))
	return hex.EncodeToString(sum[:])
}

// canonicalize runs the rename-free pipeline on an already normalized
// query: structural reordering, then global canonical renaming, then
// predicate re-emission under the new names.
func canonicalize(norm Query) Query {
	sigs := signatures(norm)
	restructured := canonOrder(norm, false, sigs)
	seq := 0
	ren := map[string]string{}
	for _, r := range Relations(restructured) {
		seq++
		ren[r.Name] = fmt.Sprintf("%s~%d", r.Base, seq)
	}
	renamed := renameAll(restructured, ren)
	return canonPreds(renamed)
}

// --- structural reordering -------------------------------------------------

// canonOrder reorders commutative structure. sortable reports whether the
// current subtree's column order is insulated from the result by an
// enclosing Project (columns addressed by name), so products below may be
// freely reordered; Union and Diff consume columns positionally and reset
// it.
func canonOrder(q Query, sortable bool, sigs map[string]string) Query {
	switch t := q.(type) {
	case *Relation:
		return t
	case *Project:
		// A projection addresses its input by attribute name: everything
		// below (until the next positional operator) may be reordered.
		return &Project{In: canonOrder(t.In, true, sigs), Attrs: append([]Attr(nil), t.Attrs...)}
	case *Select:
		return &Select{In: canonOrder(t.In, sortable, sigs), Preds: append([]Pred(nil), t.Preds...)}
	case *Product:
		leaves := flattenProduct(t)
		for i, l := range leaves {
			leaves[i] = canonOrder(l, sortable, sigs)
		}
		if sortable {
			leaves = sortLeaves(leaves, sigs)
		}
		out := leaves[0]
		for _, l := range leaves[1:] {
			out = &Product{L: out, R: l}
		}
		return out
	case *Union:
		leaves := flattenUnion(t)
		for i, l := range leaves {
			leaves[i] = canonOrder(l, false, sigs)
		}
		// Union is commutative and associative; order operands by their
		// standalone canonical serialization, which is name-independent.
		// Each operand is re-canonicalized here, so deeply nested unions
		// pay O(depth) extra passes — fine for paper-scale queries (a
		// handful of operands); a memoized bottom-up key would be the
		// upgrade if query shapes ever grow.
		keys := make([]string, len(leaves))
		for i, l := range leaves {
			keys[i] = serialize(canonicalize(l))
		}
		idx := make([]int, len(leaves))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		sorted := make([]Query, len(leaves))
		for i, j := range idx {
			sorted[i] = leaves[j]
		}
		leaves = sorted
		out := leaves[0]
		for _, l := range leaves[1:] {
			out = &Union{L: out, R: l}
		}
		return out
	case *Diff:
		return &Diff{L: canonOrder(t.L, false, sigs), R: canonOrder(t.R, false, sigs)}
	default:
		panic(fmt.Sprintf("ra: unknown query node %T", q))
	}
}

// flattenProduct returns the non-product leaves of a product tree in
// left-to-right order.
func flattenProduct(q Query) []Query {
	if p, ok := q.(*Product); ok {
		return append(flattenProduct(p.L), flattenProduct(p.R)...)
	}
	return []Query{q}
}

// flattenUnion returns the non-union leaves of a union tree in order.
func flattenUnion(q Query) []Query {
	if u, ok := q.(*Union); ok {
		return append(flattenUnion(u.L), flattenUnion(u.R)...)
	}
	return []Query{q}
}

// sortLeaves stably orders product conjuncts by a name-independent key:
// relation occurrences use their structural signature, other subtrees their
// standalone canonical serialization. Ties keep the original order, which
// preserves determinism without claiming full graph canonization (query
// isomorphism is GI-hard; a coarse signature only costs cache misses).
func sortLeaves(leaves []Query, sigs map[string]string) []Query {
	keys := make([]string, len(leaves))
	for i, l := range leaves {
		if r, ok := l.(*Relation); ok {
			keys[i] = "r:" + sigs[r.Name]
		} else {
			keys[i] = "q:" + serialize(canonicalize(l))
		}
	}
	idx := make([]int, len(leaves))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]Query, len(leaves))
	for i, j := range idx {
		out[i] = leaves[j]
	}
	return out
}

// --- occurrence signatures -------------------------------------------------

// signatures assigns every relation occurrence a name-independent
// structural signature by color refinement: round 0 is the base relation
// name; a refinement round folds in the occurrence's equality classes
// (join partners by their previous-round signature, bound constants) and
// its projection positions. A second round runs only when the first
// leaves duplicate signatures — whether it does is a property of the
// signature multiset, not of occurrence order, so the adaptive cutoff is
// itself canonical.
func signatures(q Query) map[string]string {
	rels := Relations(q)
	cur := make(map[string]string, len(rels))
	for _, r := range rels {
		cur[r.Name] = r.Base
	}

	// Round-independent structure: the equality classes of every Select
	// (computed once) and the projection features. A projected attribute
	// stands for its whole equality class (π_a(σ_{a=b}E) ≡ π_b(σ_{a=b}E)),
	// so the output feature attaches to every member of the class — head
	// signatures must not depend on which member the query projected.
	classesBySel := map[*Select][]eqClass{}
	getClasses := func(sel *Select) []eqClass {
		cls, ok := classesBySel[sel]
		if !ok {
			cls = classesOf(sel.Preds)
			classesBySel[sel] = cls
		}
		return cls
	}
	var selects []*Select
	headFeats := map[string][]string{}
	Walk(q, func(n Query) {
		switch t := n.(type) {
		case *Select:
			getClasses(t)
			selects = append(selects, t)
		case *Project:
			var classes []eqClass
			if sel, ok := t.In.(*Select); ok {
				classes = getClasses(sel)
			}
			for i, a := range t.Attrs {
				members := []Attr{a}
				for _, cls := range classes {
					for _, m := range cls.attrs {
						if m == a {
							members = cls.attrs
							break
						}
					}
				}
				for _, m := range members {
					headFeats[m.Rel] = append(headFeats[m.Rel], fmt.Sprintf("h:%d:%s", i, m.Name))
				}
			}
		}
	})

	round := func(cur map[string]string) map[string]string {
		feats := make(map[string][]string, len(rels))
		for occ, hf := range headFeats {
			feats[occ] = append([]string(nil), hf...)
		}
		for _, sel := range selects {
			for _, cls := range classesBySel[sel] {
				constKey := constsKey(cls.consts)
				for _, a := range cls.attrs {
					others := make([]string, 0, len(cls.attrs)-1)
					for _, b := range cls.attrs {
						if b == a {
							continue
						}
						others = append(others, cur[b.Rel]+"."+b.Name)
					}
					sort.Strings(others)
					feats[a.Rel] = append(feats[a.Rel],
						"e:"+a.Name+":["+strings.Join(others, ",")+"]:{"+constKey+"}")
				}
			}
		}
		next := make(map[string]string, len(cur))
		for _, r := range rels {
			fs := feats[r.Name]
			sort.Strings(fs)
			next[r.Name] = r.Base + "|" + strings.Join(fs, ";")
		}
		return next
	}

	s1 := round(cur)
	if allDistinct(s1) {
		return s1
	}
	return round(s1)
}

// allDistinct reports whether every occurrence already has a unique
// signature — an order-independent property of the map's value multiset.
func allDistinct(sigs map[string]string) bool {
	seen := make(map[string]bool, len(sigs))
	for _, s := range sigs {
		if seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// --- predicate canonicalization -------------------------------------------

type eqClass struct {
	attrs  []Attr
	consts []value.Value
}

// classesOf computes the equality equivalence classes of a conjunction:
// union-find over attr=attr atoms, constants attached to their attr's
// class. Classes are returned with attrs sorted and duplicate constants
// folded, ordered by their least attribute.
func classesOf(preds []Pred) []eqClass {
	parent := map[Attr]Attr{}
	var find func(a Attr) Attr
	find = func(a Attr) Attr {
		if p, ok := parent[a]; ok && p != a {
			r := find(p)
			parent[a] = r
			return r
		}
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
		return parent[a]
	}
	union := func(a, b Attr) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Deterministic root: keep the lexicographically smaller.
			if rb.Less(ra) {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	consts := map[Attr][]value.Value{}
	for _, p := range preds {
		switch t := p.(type) {
		case EqAttr:
			union(t.L, t.R)
		case EqConst:
			find(t.A)
			consts[t.A] = append(consts[t.A], t.C)
		}
	}
	members := map[Attr][]Attr{}
	for a := range parent {
		r := find(a)
		members[r] = append(members[r], a)
	}
	out := make([]eqClass, 0, len(members))
	for r, ms := range members {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Less(ms[j]) })
		var cs []value.Value
		for _, a := range ms {
			cs = append(cs, consts[a]...)
		}
		sort.Slice(cs, func(i, j int) bool { return valueLess(cs[i], cs[j]) })
		// Fold duplicate constants.
		dedup := cs[:0]
		for i, c := range cs {
			if i == 0 || cs[i-1] != c {
				dedup = append(dedup, c)
			}
		}
		out = append(out, eqClass{attrs: ms, consts: dedup})
		_ = r
	}
	sort.Slice(out, func(i, j int) bool { return out[i].attrs[0].Less(out[j].attrs[0]) })
	return out
}

func valueLess(a, b value.Value) bool {
	if a.K != b.K {
		return a.K < b.K
	}
	return a.Less(b)
}

func constsKey(cs []value.Value) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.SQL()
	}
	return strings.Join(parts, ",")
}

// canonPreds rebuilds every selection's predicate list from its equality
// classes: for each class the least attribute is the representative, joined
// to every other member and to each distinct constant. This folds duplicate
// atoms, drops reflexive a = a atoms, and makes chain- vs star-shaped
// join conditions with the same closure render identically. A class bound
// to two different constants keeps both atoms (the selection is provably
// empty, and canonical form preserves that).
func canonPreds(q Query) Query {
	switch t := q.(type) {
	case *Relation:
		return t
	case *Select:
		in := canonPreds(t.In)
		var preds []Pred
		for _, cls := range classesOf(t.Preds) {
			rep := cls.attrs[0]
			for _, a := range cls.attrs[1:] {
				preds = append(preds, EqAttr{L: rep, R: a})
			}
			for _, c := range cls.consts {
				preds = append(preds, EqConst{A: rep, C: c})
			}
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i].String() < preds[j].String() })
		if len(preds) == 0 {
			return in
		}
		return &Select{In: in, Preds: preds}
	case *Project:
		in := canonPreds(t.In)
		attrs := t.Attrs
		// Fold each projected attribute through the equality classes of
		// the selection directly below: all members carry equal values, so
		// projecting the class representative is equivalent and canonical.
		if sel, ok := in.(*Select); ok {
			rep := map[Attr]Attr{}
			for _, cls := range classesOf(sel.Preds) {
				for _, m := range cls.attrs {
					rep[m] = cls.attrs[0]
				}
			}
			folded := make([]Attr, len(attrs))
			for i, a := range attrs {
				if r, ok := rep[a]; ok {
					folded[i] = r
				} else {
					folded[i] = a
				}
			}
			attrs = folded
		}
		return &Project{In: in, Attrs: attrs}
	case *Product:
		return &Product{L: canonPreds(t.L), R: canonPreds(t.R)}
	case *Union:
		return &Union{L: canonPreds(t.L), R: canonPreds(t.R)}
	case *Diff:
		return &Diff{L: canonPreds(t.L), R: canonPreds(t.R)}
	default:
		panic(fmt.Sprintf("ra: unknown query node %T", q))
	}
}

// renameAll applies the occurrence renaming to every relation, predicate
// and projection attribute of the tree.
func renameAll(q Query, ren map[string]string) Query {
	switch t := q.(type) {
	case *Relation:
		name := t.Name
		if nn, ok := ren[name]; ok {
			name = nn
		}
		return &Relation{Name: name, Base: t.Base}
	case *Select:
		return &Select{In: renameAll(t.In, ren), Preds: rewritePreds(t.Preds, ren)}
	case *Project:
		attrs := make([]Attr, len(t.Attrs))
		for i, a := range t.Attrs {
			attrs[i] = renameAttr(a, ren)
		}
		return &Project{In: renameAll(t.In, ren), Attrs: attrs}
	case *Product:
		return &Product{L: renameAll(t.L, ren), R: renameAll(t.R, ren)}
	case *Union:
		return &Union{L: renameAll(t.L, ren), R: renameAll(t.R, ren)}
	case *Diff:
		return &Diff{L: renameAll(t.L, ren), R: renameAll(t.R, ren)}
	default:
		panic(fmt.Sprintf("ra: unknown query node %T", q))
	}
}

// serialize renders a canonicalized tree as an unambiguous string; equal
// strings mean structurally identical trees.
func serialize(q Query) string {
	var sb strings.Builder
	writeSerial(&sb, q)
	return sb.String()
}

func writeSerial(sb *strings.Builder, q Query) {
	switch t := q.(type) {
	case *Relation:
		sb.WriteString("rel(")
		sb.WriteString(t.Base)
		sb.WriteString(" as ")
		sb.WriteString(t.Name)
		sb.WriteString(")")
	case *Select:
		sb.WriteString("sel[")
		for i, p := range t.Preds {
			if i > 0 {
				sb.WriteString(";")
			}
			sb.WriteString(p.String())
		}
		sb.WriteString("](")
		writeSerial(sb, t.In)
		sb.WriteString(")")
	case *Project:
		sb.WriteString("proj[")
		for i, a := range t.Attrs {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(a.String())
		}
		sb.WriteString("](")
		writeSerial(sb, t.In)
		sb.WriteString(")")
	case *Product:
		sb.WriteString("prod(")
		writeSerial(sb, t.L)
		sb.WriteString(",")
		writeSerial(sb, t.R)
		sb.WriteString(")")
	case *Union:
		sb.WriteString("uni(")
		writeSerial(sb, t.L)
		sb.WriteString(",")
		writeSerial(sb, t.R)
		sb.WriteString(")")
	case *Diff:
		sb.WriteString("diff(")
		writeSerial(sb, t.L)
		sb.WriteString(",")
		writeSerial(sb, t.R)
		sb.WriteString(")")
	default:
		panic(fmt.Sprintf("ra: unknown query node %T", q))
	}
}

// Package ra defines the relational algebra (RA) queries studied by the
// paper: selection, projection, Cartesian product, union, set difference and
// renaming over a relational schema. It provides the normal form of Section 2
// (all relation occurrences distinct), query trees, max SPC sub-query
// extraction, and the equality-atom closure ΣQ used throughout the coverage
// analysis.
package ra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Schema maps base relation names to their ordered attribute names.
type Schema map[string][]string

// Attrs returns the attribute list of base relation rel.
func (s Schema) Attrs(rel string) ([]string, error) {
	a, ok := s[rel]
	if !ok {
		return nil, fmt.Errorf("ra: unknown relation %q", rel)
	}
	return a, nil
}

// HasAttr reports whether base relation rel declares attribute name.
func (s Schema) HasAttr(rel, name string) bool {
	for _, a := range s[rel] {
		if a == name {
			return true
		}
	}
	return false
}

// Relations returns the base relation names in sorted order.
func (s Schema) Relations() []string {
	out := make([]string, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	for r, as := range s {
		out[r] = append([]string(nil), as...)
	}
	return out
}

// Attr identifies an attribute of a particular relation occurrence in a
// normalized query: Rel is the occurrence name (after renaming), Name the
// attribute name.
type Attr struct {
	Rel  string
	Name string
}

// String renders the attribute as rel.name.
func (a Attr) String() string { return a.Rel + "." + a.Name }

// Less orders attributes lexicographically; used to pick deterministic
// equivalence-class representatives for the unification function ρU.
func (a Attr) Less(b Attr) bool {
	if a.Rel != b.Rel {
		return a.Rel < b.Rel
	}
	return a.Name < b.Name
}

// Pred is an equality atom of a selection condition: either attr = attr or
// attr = constant, the forms the paper's ΣQ is built from.
type Pred interface {
	predNode()
	String() string
}

// EqAttr is the equality atom L = R between two attributes.
type EqAttr struct{ L, R Attr }

// EqConst is the equality atom A = C between an attribute and a constant.
type EqConst struct {
	A Attr
	C value.Value
}

func (EqAttr) predNode()  {}
func (EqConst) predNode() {}

func (p EqAttr) String() string  { return p.L.String() + " = " + p.R.String() }
func (p EqConst) String() string { return p.A.String() + " = " + p.C.SQL() }

// Query is a node of an RA query tree.
type Query interface {
	// Children returns the sub-queries of this node.
	Children() []Query
	// String renders the query as an RA expression.
	String() string
	queryNode()
}

// Relation is a (possibly renamed) occurrence of a base relation.
// Name is the occurrence name; Base the schema relation it renames.
// In the normal form of Section 2 every occurrence Name is distinct.
type Relation struct {
	Name string
	Base string
}

// Select applies a conjunction of equality atoms to its input.
type Select struct {
	In    Query
	Preds []Pred
}

// Project restricts the input to the listed attributes.
type Project struct {
	In    Query
	Attrs []Attr
}

// Product is the Cartesian product of two sub-queries.
type Product struct{ L, R Query }

// Union is set union; operands must have the same arity.
type Union struct{ L, R Query }

// Diff is set difference; operands must have the same arity.
type Diff struct{ L, R Query }

func (*Relation) queryNode() {}
func (*Select) queryNode()   {}
func (*Project) queryNode()  {}
func (*Product) queryNode()  {}
func (*Union) queryNode()    {}
func (*Diff) queryNode()     {}

// Children implements Query.
func (q *Relation) Children() []Query { return nil }

// Children implements Query.
func (q *Select) Children() []Query { return []Query{q.In} }

// Children implements Query.
func (q *Project) Children() []Query { return []Query{q.In} }

// Children implements Query.
func (q *Product) Children() []Query { return []Query{q.L, q.R} }

// Children implements Query.
func (q *Union) Children() []Query { return []Query{q.L, q.R} }

// Children implements Query.
func (q *Diff) Children() []Query { return []Query{q.L, q.R} }

func (q *Relation) String() string {
	if q.Name == "" || q.Name == q.Base {
		return q.Base
	}
	return fmt.Sprintf("ρ[%s](%s)", q.Name, q.Base)
}

func (q *Select) String() string {
	preds := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		preds[i] = p.String()
	}
	return fmt.Sprintf("σ[%s](%s)", strings.Join(preds, " ∧ "), q.In.String())
}

func (q *Project) String() string {
	attrs := make([]string, len(q.Attrs))
	for i, a := range q.Attrs {
		attrs[i] = a.String()
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(attrs, ", "), q.In.String())
}

func (q *Product) String() string {
	return fmt.Sprintf("(%s × %s)", q.L.String(), q.R.String())
}

func (q *Union) String() string {
	return fmt.Sprintf("(%s ∪ %s)", q.L.String(), q.R.String())
}

func (q *Diff) String() string {
	return fmt.Sprintf("(%s − %s)", q.L.String(), q.R.String())
}

// --- convenience constructors -------------------------------------------

// R constructs a relation occurrence of base with occurrence name.
// An empty name defaults to the base name.
func R(base, name string) *Relation {
	if name == "" {
		name = base
	}
	return &Relation{Name: name, Base: base}
}

// A constructs an attribute reference rel.name.
func A(rel, name string) Attr { return Attr{Rel: rel, Name: name} }

// Eq constructs the atom l = r.
func Eq(l, r Attr) Pred { return EqAttr{L: l, R: r} }

// EqC constructs the atom a = c.
func EqC(a Attr, c value.Value) Pred { return EqConst{A: a, C: c} }

// Sel wraps q in a selection; with no predicates it returns q unchanged.
func Sel(q Query, preds ...Pred) Query {
	if len(preds) == 0 {
		return q
	}
	return &Select{In: q, Preds: preds}
}

// Proj wraps q in a projection.
func Proj(q Query, attrs ...Attr) Query { return &Project{In: q, Attrs: attrs} }

// Prod folds qs into a left-deep Cartesian product.
func Prod(qs ...Query) Query {
	if len(qs) == 0 {
		panic("ra: Prod of zero queries")
	}
	out := qs[0]
	for _, q := range qs[1:] {
		out = &Product{L: out, R: q}
	}
	return out
}

// Join is selection over a product: σ_preds(l × r).
func Join(l, r Query, preds ...Pred) Query { return Sel(&Product{L: l, R: r}, preds...) }

// U constructs l ∪ r.
func U(l, r Query) Query { return &Union{L: l, R: r} }

// D constructs l − r.
func D(l, r Query) Query { return &Diff{L: l, R: r} }

// --- structural helpers ---------------------------------------------------

// Walk visits every node of the query tree in pre-order.
func Walk(q Query, fn func(Query)) {
	fn(q)
	for _, c := range q.Children() {
		Walk(c, fn)
	}
}

// Relations returns all relation occurrences in q, in left-to-right order.
func Relations(q Query) []*Relation {
	var out []*Relation
	Walk(q, func(n Query) {
		if r, ok := n.(*Relation); ok {
			out = append(out, r)
		}
	})
	return out
}

// Size returns |Q|: the number of operators, relation occurrences,
// predicates and projection attributes in the query.
func Size(q Query) int {
	n := 0
	Walk(q, func(node Query) {
		n++
		switch t := node.(type) {
		case *Select:
			n += len(t.Preds)
		case *Project:
			n += len(t.Attrs)
		}
	})
	return n
}

// OutAttrs computes the output attribute list of q under schema s.
// For Union/Diff the left operand's attributes name the output.
func OutAttrs(q Query, s Schema) ([]Attr, error) {
	switch t := q.(type) {
	case *Relation:
		names, err := s.Attrs(t.Base)
		if err != nil {
			return nil, err
		}
		out := make([]Attr, len(names))
		for i, n := range names {
			out[i] = Attr{Rel: t.Name, Name: n}
		}
		return out, nil
	case *Select:
		return OutAttrs(t.In, s)
	case *Project:
		return append([]Attr(nil), t.Attrs...), nil
	case *Product:
		l, err := OutAttrs(t.L, s)
		if err != nil {
			return nil, err
		}
		r, err := OutAttrs(t.R, s)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case *Union:
		return setOpAttrs(t.L, t.R, s, "∪")
	case *Diff:
		return setOpAttrs(t.L, t.R, s, "−")
	default:
		return nil, fmt.Errorf("ra: unknown query node %T", q)
	}
}

func setOpAttrs(l, r Query, s Schema, op string) ([]Attr, error) {
	la, err := OutAttrs(l, s)
	if err != nil {
		return nil, err
	}
	ra, err := OutAttrs(r, s)
	if err != nil {
		return nil, err
	}
	if len(la) != len(ra) {
		return nil, fmt.Errorf("ra: %s operands have arities %d and %d", op, len(la), len(ra))
	}
	return la, nil
}

// Validate checks q against schema s: every relation occurrence exists,
// occurrence names are unique (the normal form of Section 2), every
// referenced attribute is in scope, and set operands are union-compatible.
func Validate(q Query, s Schema) error {
	seen := map[string]bool{}
	for _, r := range Relations(q) {
		if _, ok := s[r.Base]; !ok {
			return fmt.Errorf("ra: unknown base relation %q", r.Base)
		}
		if seen[r.Name] {
			return fmt.Errorf("ra: duplicate relation occurrence %q (normalize first)", r.Name)
		}
		seen[r.Name] = true
	}
	return validateScopes(q, s)
}

func validateScopes(q Query, s Schema) error {
	for _, c := range q.Children() {
		if err := validateScopes(c, s); err != nil {
			return err
		}
	}
	switch t := q.(type) {
	case *Select:
		in, err := OutAttrs(t.In, s)
		if err != nil {
			return err
		}
		scope := attrSet(in)
		for _, p := range t.Preds {
			for _, a := range predAttrs(p) {
				if !scope[a] {
					return fmt.Errorf("ra: selection attribute %s not in scope", a)
				}
			}
		}
	case *Project:
		in, err := OutAttrs(t.In, s)
		if err != nil {
			return err
		}
		scope := attrSet(in)
		for _, a := range t.Attrs {
			if !scope[a] {
				return fmt.Errorf("ra: projection attribute %s not in scope", a)
			}
		}
	case *Union, *Diff:
		if _, err := OutAttrs(q, s); err != nil {
			return err
		}
	}
	return nil
}

func attrSet(attrs []Attr) map[Attr]bool {
	m := make(map[Attr]bool, len(attrs))
	for _, a := range attrs {
		m[a] = true
	}
	return m
}

func predAttrs(p Pred) []Attr {
	switch t := p.(type) {
	case EqAttr:
		return []Attr{t.L, t.R}
	case EqConst:
		return []Attr{t.A}
	default:
		return nil
	}
}

// Normalize returns a copy of q in which every relation occurrence has a
// distinct name (Lemma 1's renaming). Occurrences whose names are already
// unique are kept; clashes get suffixed fresh names, and attribute
// references inside the *scope of that occurrence's subtree* are rewritten
// consistently. Queries built with distinct occurrence names pass through
// unchanged.
func Normalize(q Query, s Schema) (Query, error) {
	counts := map[string]int{}
	out := normalize(q, counts)
	if err := Validate(out, s); err != nil {
		return nil, err
	}
	return out, nil
}

func normalize(q Query, counts map[string]int) Query {
	switch t := q.(type) {
	case *Relation:
		name := t.Name
		if name == "" {
			name = t.Base
		}
		counts[name]++
		if counts[name] > 1 {
			fresh := fmt.Sprintf("%s_%d", name, counts[name])
			// Fresh names may themselves collide with user-chosen names;
			// keep bumping until unique.
			for counts[fresh] > 0 {
				counts[name]++
				fresh = fmt.Sprintf("%s_%d", name, counts[name])
			}
			counts[fresh]++
			return &Relation{Name: fresh, Base: t.Base}
		}
		return &Relation{Name: name, Base: t.Base}
	case *Select:
		in := normalize(t.In, counts)
		preds := rewritePreds(t.Preds, renamingOf(t.In, in))
		return &Select{In: in, Preds: preds}
	case *Project:
		in := normalize(t.In, counts)
		ren := renamingOf(t.In, in)
		attrs := make([]Attr, len(t.Attrs))
		for i, a := range t.Attrs {
			attrs[i] = renameAttr(a, ren)
		}
		return &Project{In: in, Attrs: attrs}
	case *Product:
		l := normalize(t.L, counts)
		r := normalize(t.R, counts)
		return &Product{L: l, R: r}
	case *Union:
		return &Union{L: normalize(t.L, counts), R: normalize(t.R, counts)}
	case *Diff:
		return &Diff{L: normalize(t.L, counts), R: normalize(t.R, counts)}
	default:
		panic(fmt.Sprintf("ra: unknown query node %T", q))
	}
}

// renamingOf pairs the relation occurrences of the original subtree with the
// normalized subtree (same shape) and returns old-name → new-name.
func renamingOf(orig, norm Query) map[string]string {
	o := Relations(orig)
	n := Relations(norm)
	ren := make(map[string]string, len(o))
	for i := range o {
		oldName := o[i].Name
		if oldName == "" {
			oldName = o[i].Base
		}
		if oldName != n[i].Name {
			ren[oldName] = n[i].Name
		}
	}
	return ren
}

func renameAttr(a Attr, ren map[string]string) Attr {
	if nn, ok := ren[a.Rel]; ok {
		return Attr{Rel: nn, Name: a.Name}
	}
	return a
}

func rewritePreds(preds []Pred, ren map[string]string) []Pred {
	out := make([]Pred, len(preds))
	for i, p := range preds {
		switch t := p.(type) {
		case EqAttr:
			out[i] = EqAttr{L: renameAttr(t.L, ren), R: renameAttr(t.R, ren)}
		case EqConst:
			out[i] = EqConst{A: renameAttr(t.A, ren), C: t.C}
		default:
			out[i] = p
		}
	}
	return out
}

// Clone returns a deep copy of q.
func Clone(q Query) Query {
	switch t := q.(type) {
	case *Relation:
		cp := *t
		return &cp
	case *Select:
		return &Select{In: Clone(t.In), Preds: append([]Pred(nil), t.Preds...)}
	case *Project:
		return &Project{In: Clone(t.In), Attrs: append([]Attr(nil), t.Attrs...)}
	case *Product:
		return &Product{L: Clone(t.L), R: Clone(t.R)}
	case *Union:
		return &Union{L: Clone(t.L), R: Clone(t.R)}
	case *Diff:
		return &Diff{L: Clone(t.L), R: Clone(t.R)}
	default:
		panic(fmt.Sprintf("ra: unknown query node %T", q))
	}
}

package ra

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func testSchema() Schema {
	return Schema{
		"r": {"a", "b"},
		"s": {"b", "c"},
		"t": {"c", "d"},
	}
}

func TestOutAttrs(t *testing.T) {
	s := testSchema()
	q := Proj(
		Sel(Prod(R("r", "r1"), R("s", "s1")), Eq(A("r1", "b"), A("s1", "b"))),
		A("r1", "a"), A("s1", "c"),
	)
	out, err := OutAttrs(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != A("r1", "a") || out[1] != A("s1", "c") {
		t.Errorf("OutAttrs = %v", out)
	}

	prod := Prod(R("r", "r1"), R("s", "s1"))
	out, err = OutAttrs(prod, s)
	if err != nil {
		t.Fatal(err)
	}
	want := []Attr{A("r1", "a"), A("r1", "b"), A("s1", "b"), A("s1", "c")}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("product OutAttrs[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestOutAttrsArityMismatch(t *testing.T) {
	s := testSchema()
	q := U(R("r", "r1"), Proj(R("s", "s1"), A("s1", "c")))
	if _, err := OutAttrs(q, s); err == nil {
		t.Error("expected arity error for union of arity 2 and 1")
	}
}

func TestValidateUnknownRelation(t *testing.T) {
	if err := Validate(R("nosuch", "x"), testSchema()); err == nil {
		t.Error("expected error for unknown relation")
	}
}

func TestValidateDuplicateOccurrence(t *testing.T) {
	q := Prod(R("r", "r1"), R("r", "r1"))
	if err := Validate(q, testSchema()); err == nil {
		t.Error("expected error for duplicate occurrence names")
	}
}

func TestValidateOutOfScopeAttr(t *testing.T) {
	q := Sel(R("r", "r1"), EqC(A("s1", "c"), value.NewInt(1)))
	if err := Validate(q, testSchema()); err == nil {
		t.Error("expected error for out-of-scope selection attribute")
	}
	q2 := Proj(R("r", "r1"), A("r1", "zzz"))
	if err := Validate(q2, testSchema()); err == nil {
		t.Error("expected error for unknown projection attribute")
	}
}

func TestNormalizeRenamesDuplicates(t *testing.T) {
	s := testSchema()
	// Two unnamed occurrences of r joined on b; predicates must follow the
	// renamed occurrence.
	q := Sel(Prod(R("r", ""), R("r", "")), Eq(A("r", "a"), A("r", "b")))
	norm, err := Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	rels := Relations(norm)
	if len(rels) != 2 || rels[0].Name == rels[1].Name {
		t.Fatalf("normalize kept duplicate names: %v, %v", rels[0], rels[1])
	}
	if err := Validate(norm, s); err != nil {
		t.Fatalf("normalized query invalid: %v", err)
	}
}

func TestNormalizePreservesDistinctNames(t *testing.T) {
	s := testSchema()
	q := Prod(R("r", "x"), R("r", "y"))
	norm, err := Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	rels := Relations(norm)
	if rels[0].Name != "x" || rels[1].Name != "y" {
		t.Errorf("distinct names were rewritten: %v", rels)
	}
}

func TestNormalizeRewritesPredsInScope(t *testing.T) {
	s := testSchema()
	// Each branch selects on its own occurrence of r, both named "r".
	mk := func() Query {
		return Proj(Sel(R("r", ""), EqC(A("r", "a"), value.NewInt(1))), A("r", "b"))
	}
	q := U(mk(), mk())
	norm, err := Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(norm, s); err != nil {
		t.Fatalf("predicates not rewritten with renames: %v", err)
	}
	// The two branches must reference different occurrences.
	u := norm.(*Union)
	lRel := Relations(u.L)[0].Name
	rRel := Relations(u.R)[0].Name
	if lRel == rRel {
		t.Errorf("branches share occurrence %q", lRel)
	}
}

func TestNormalizeFreshNameCollision(t *testing.T) {
	s := testSchema()
	// User already took the name "r_2"; normalize must not reuse it.
	q := Prod(Prod(R("r", "r"), R("r", "r_2")), R("r", "r"))
	norm, err := Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, rel := range Relations(norm) {
		if seen[rel.Name] {
			t.Fatalf("duplicate occurrence %q after normalize", rel.Name)
		}
		seen[rel.Name] = true
	}
}

func TestSizeCountsOperatorsPredsAttrs(t *testing.T) {
	q := Proj(Sel(R("r", "r1"), EqC(A("r1", "a"), value.NewInt(1))), A("r1", "b"))
	// project(1) + attr(1) + select(1) + pred(1) + relation(1) = 5
	if got := Size(q); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := Sel(R("r", "r1"), EqC(A("r1", "a"), value.NewInt(1)))
	cp := Clone(q).(*Select)
	cp.In.(*Relation).Name = "changed"
	if q.(*Select).In.(*Relation).Name != "r1" {
		t.Error("Clone shares relation nodes")
	}
}

func TestStringRendering(t *testing.T) {
	q := D(Proj(R("r", "r1"), A("r1", "a")), Proj(R("s", "s1"), A("s1", "b")))
	str := q.String()
	for _, frag := range []string{"π", "−", "r1", "s1"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() = %q missing %q", str, frag)
		}
	}
}

func TestWalkOrder(t *testing.T) {
	q := U(R("r", "r1"), R("s", "s1"))
	var names []string
	Walk(q, func(n Query) {
		if rel, ok := n.(*Relation); ok {
			names = append(names, rel.Name)
		}
	})
	if len(names) != 2 || names[0] != "r1" || names[1] != "s1" {
		t.Errorf("Walk order = %v", names)
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	if !s.HasAttr("r", "a") || s.HasAttr("r", "zzz") || s.HasAttr("zzz", "a") {
		t.Error("HasAttr wrong")
	}
	rels := s.Relations()
	if len(rels) != 3 || rels[0] != "r" {
		t.Errorf("Relations = %v", rels)
	}
	cl := s.Clone()
	cl["r"][0] = "mutated"
	if s["r"][0] != "a" {
		t.Error("Clone shares attribute slices")
	}
}

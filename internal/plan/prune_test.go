package plan_test

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/workload"
)

func TestPruneKeepsAnswer(t *testing.T) {
	fb, db, err := workload.GenFacebook(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []ra.Query{fb.Q1(), fb.Q3(), fb.Q0Prime()} {
		res := checkedResult(t, q, fb.Schema, fb.Access)
		p, err := plan.Build(res)
		if err != nil {
			t.Fatal(err)
		}
		pruned := p.Prune()
		if pruned.Length() > p.Length() {
			t.Errorf("pruning grew the plan: %d > %d", pruned.Length(), p.Length())
		}
		if err := pruned.Validate(fb.Access); err != nil {
			t.Fatalf("pruned plan invalid: %v", err)
		}
		a, _, err := exec.Run(p, db)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := exec.Run(pruned, db)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Error("pruning changed the answer")
		}
	}
}

func TestPruneRemovesOrphans(t *testing.T) {
	fb, _, err := workload.GenFacebook(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	res := checkedResult(t, fb.Q0Prime(), fb.Schema, fb.Access)
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	pruned := p.Prune()
	// Every step of the pruned plan must be reachable from the result.
	reach := map[int]bool{pruned.Result: true}
	for i := pruned.Length() - 1; i >= 0; i-- {
		if !reach[i] {
			t.Fatalf("step T%d unreachable after pruning", i)
		}
		s := pruned.Steps[i]
		if s.L >= 0 {
			reach[s.L] = true
		}
		if s.R >= 0 {
			reach[s.R] = true
		}
	}
}

package plan_test

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/workload"
)

// TestExample2PlanStructure checks that the generated bounded plan for Q1
// has the structure of Example 2: a constant seed {p0}, a fetch on friend
// via ψ1, a fetch on dine via ψ2 downstream of the friend fetch, and a
// fetch on cafe via ψ4 downstream of the dine fetch.
func TestExample2PlanStructure(t *testing.T) {
	fb, _, err := workload.GenFacebook(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	res := checkedResult(t, fb.Q1(), fb.Schema, fb.Access)
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}

	// Locate the first fetch per base relation.
	fetchOf := map[string]int{}
	for _, fi := range p.FetchSteps {
		s := p.Steps[fi]
		if _, ok := fetchOf[s.Con.Rel]; !ok {
			fetchOf[s.Con.Rel] = fi
		}
	}
	for _, rel := range []string{"friend", "dine", "cafe"} {
		if _, ok := fetchOf[rel]; !ok {
			t.Fatalf("no fetch on %s\n%s", rel, p)
		}
	}

	// Dependency order: friend before dine before cafe, transitively.
	if !dependsOn(p, fetchOf["dine"], fetchOf["friend"]) {
		t.Errorf("dine fetch does not depend on friend fetch\n%s", p)
	}
	if !dependsOn(p, fetchOf["cafe"], fetchOf["dine"]) {
		t.Errorf("cafe fetch does not depend on dine fetch\n%s", p)
	}

	// The friend fetch is driven by the constant {p0}.
	friend := p.Steps[fetchOf["friend"]]
	if friend.L < 0 {
		t.Fatal("friend fetch has no input")
	}
	constSeed := false
	var walk func(int)
	seen := map[int]bool{}
	walk = func(id int) {
		if id < 0 || seen[id] {
			return
		}
		seen[id] = true
		if p.Steps[id].Op == plan.OpConst && len(p.Steps[id].Rows) == 1 {
			constSeed = true
		}
		walk(p.Steps[id].L)
		walk(p.Steps[id].R)
	}
	walk(friend.L)
	if !constSeed {
		t.Errorf("friend fetch not seeded by a constant\n%s", p)
	}
}

// dependsOn reports whether step a transitively reads step b.
func dependsOn(p *plan.Plan, a, b int) bool {
	seen := map[int]bool{}
	var walk func(int) bool
	walk = func(id int) bool {
		if id < 0 || seen[id] {
			return false
		}
		seen[id] = true
		if id == b {
			return true
		}
		return walk(p.Steps[id].L) || walk(p.Steps[id].R)
	}
	return walk(p.Steps[a].L) || walk(p.Steps[a].R)
}

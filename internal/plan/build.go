package plan

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/hypergraph"
	"repro/internal/ra"
	"repro/internal/value"
)

// edge payloads of the ⟨Q,A⟩-hypergraph (Appendix A).
type ConstEdge struct {
	Sub   int
	Class ra.Attr
	Val   value.Value
}

type FDEdge struct {
	Sub int
	Occ string
	AC  access.ActualConstraint
}

type SplitEdge struct {
	Sub   int
	Class ra.Attr
}

// Builder carries the state of one QPlan invocation.
type builder struct {
	res   *cover.Result
	plan  *Plan
	graph *hypergraph.Graph
	deriv *hypergraph.Derivation
	root  hypergraph.NodeID
	// unit[node] memoizes the step computing the unit fetching plan ξcF for
	// a class node (single column) or the fetch table for a Y~ node.
	unit map[hypergraph.NodeID]int
	// fetchMemo / prodMemo share identical fetch and product steps, keeping
	// the plan length within the O(|Q||A|) bound of Lemma 8.
	fetchMemo map[string]int
	prodMemo  map[string]int
	// subByRoot locates the coverage analysis of each max SPC sub-query.
	subByRoot map[ra.Query]*subCtx
}

type subCtx struct {
	idx int
	sub *cover.Sub
}

// Build runs algorithm QPlan: given a coverage analysis whose query is
// covered, it returns a canonical bounded query plan (Theorem 5).
func Build(res *cover.Result) (*Plan, error) {
	if !res.Covered {
		return nil, fmt.Errorf("plan: query is not covered by the access schema")
	}
	b := &builder{
		res:       res,
		plan:      &Plan{Result: -1},
		unit:      map[hypergraph.NodeID]int{},
		fetchMemo: map[string]int{},
		prodMemo:  map[string]int{},
		subByRoot: map[ra.Query]*subCtx{},
	}
	for i, sub := range res.Subs {
		b.subByRoot[sub.SPC.Root] = &subCtx{idx: i, sub: sub}
	}
	b.buildHypergraph()
	b.deriv = b.graph.Derive(b.root)

	resultStep, _, err := b.evalNode(res.Query)
	if err != nil {
		return nil, err
	}
	b.plan.Result = resultStep
	return b.plan, nil
}

// Hypergraph builds the ⟨Q,A⟩-hypergraph G_{Q,A} for a covered query,
// exposed for the minimizers (minADAG, minAE) which search it for weighted
// shortest hyperpaths. The returned root is the dummy node r.
func Hypergraph(res *cover.Result) (*hypergraph.Graph, hypergraph.NodeID) {
	b := &builder{res: res}
	b.buildHypergraph()
	return b.graph, b.root
}

// ClassLabel names the hypergraph node / plan column of a class
// representative within sub-query si.
func ClassLabel(si int, rep ra.Attr) string {
	return fmt.Sprintf("s%d.%s.%s", si, rep.Rel, rep.Name)
}

func (b *builder) buildHypergraph() {
	g := hypergraph.New()
	b.graph = g
	b.root = g.Node("r")
	for si, sub := range b.res.Subs {
		// Constant classes: hyperedges from r (case (3) of Appendix A).
		for _, rep := range sub.ConstClasses {
			v, _ := sub.Classes.Const(rep)
			n := g.Node(ClassLabel(si, rep))
			g.AddEdge([]hypergraph.NodeID{b.root}, n, 0, ConstEdge{Sub: si, Class: rep, Val: v})
		}
		// Induced FDs: X → Y~ weighted N, then Y~ → Yi weighted 0
		// (cases (1)-(2); the weights realise §6.2's weighted hypergraph).
		for _, rel := range sub.SPC.Rels {
			for _, ac := range b.res.Act.ByRel[rel.Name] {
				lReps := sub.Classes.Reps(ac.XAttrs(rel.Name))
				rReps := sub.Classes.Reps(ac.YAttrs(rel.Name))
				yNode := g.Node(fmt.Sprintf("s%d~%s", si, ac.Key()))
				head := make([]hypergraph.NodeID, 0, len(lReps))
				if len(lReps) == 0 {
					head = append(head, b.root)
				}
				for _, l := range lReps {
					head = append(head, g.Node(ClassLabel(si, l)))
				}
				g.AddEdge(head, yNode, int64(ac.N), FDEdge{Sub: si, Occ: rel.Name, AC: ac})
				for _, r := range rReps {
					g.AddEdge([]hypergraph.NodeID{yNode}, g.Node(ClassLabel(si, r)),
						0, SplitEdge{Sub: si, Class: r})
				}
			}
		}
	}
}

// unitPlan returns the memoized step computing the unit fetching plan for
// the given hypergraph node (procedure transQP / Γr of Lemma 7).
func (b *builder) unitPlan(node hypergraph.NodeID) (int, error) {
	if id, ok := b.unit[node]; ok {
		return id, nil
	}
	ei := b.deriv.Via[node]
	if ei < 0 {
		return -1, fmt.Errorf("plan: node %s has no derivation (query not fetchable?)", b.graph.Label(node))
	}
	e := b.graph.Edges[ei]
	var id int
	switch payload := e.Payload.(type) {
	case ConstEdge:
		id = b.plan.add(Step{
			Op:   OpConst,
			Cols: []string{ClassLabel(payload.Sub, payload.Class)},
			Rows: []value.Tuple{{payload.Val}},
			L:    -1, R: -1,
		})
	case FDEdge:
		fid, err := b.fetchStep(payload)
		if err != nil {
			return -1, err
		}
		id = fid
	case SplitEdge:
		// head is the Y~ node; project its fetch table to this class.
		srcID, err := b.unitPlan(e.Head[0])
		if err != nil {
			return -1, err
		}
		label := ClassLabel(payload.Sub, payload.Class)
		pos := colPos(b.plan.Steps[srcID].Cols, label)
		if pos < 0 {
			return -1, fmt.Errorf("plan: column %s missing from fetch output", label)
		}
		id = b.plan.add(Step{
			Op:   OpProject,
			Cols: []string{label},
			Pos:  []int{pos},
			L:    srcID, R: -1,
		})
	default:
		return -1, fmt.Errorf("plan: unknown edge payload %T", e.Payload)
	}
	b.unit[node] = id
	return id, nil
}

// fetchStep emits the product-of-heads + fetch for an induced FD edge,
// producing a table over the classes of X ∪ Y of the constraint.
func (b *builder) fetchStep(p FDEdge) (int, error) {
	memoKey := fmt.Sprintf("f|%d|%s|%s", p.Sub, p.Occ, p.AC.Key())
	if id, ok := b.fetchMemo[memoKey]; ok {
		return id, nil
	}
	sub := b.res.Subs[p.Sub].Classes
	xReps := sub.Reps(p.AC.XAttrs(p.Occ))

	src := -1
	xCols := make([]string, len(p.AC.X))
	if len(xReps) > 0 {
		var err error
		src, err = b.productOfClasses(p.Sub, xReps)
		if err != nil {
			return -1, err
		}
		srcCols := b.plan.Steps[src].Cols
		for i, xa := range p.AC.XAttrs(p.Occ) {
			label := ClassLabel(p.Sub, sub.Rep(xa))
			if colPos(srcCols, label) < 0 {
				return -1, fmt.Errorf("plan: X column %s missing", label)
			}
			xCols[i] = label
		}
	}

	attrs := IndexCols(p.AC.Constraint)
	labels := make([]string, len(attrs))
	cols := make([]string, 0, len(attrs))
	seen := map[string]bool{}
	var constEqs []ConstCond
	for i, a := range attrs {
		rep := sub.Rep(ra.Attr{Rel: p.Occ, Name: a})
		labels[i] = ClassLabel(p.Sub, rep)
		if !seen[labels[i]] {
			seen[labels[i]] = true
			cols = append(cols, labels[i])
			if v, ok := sub.Const(rep); ok {
				constEqs = append(constEqs, ConstCond{Label: labels[i], C: v})
			}
		}
	}
	id := b.plan.add(Step{
		Op:          OpFetch,
		Cols:        cols,
		L:           src,
		R:           -1,
		Occ:         p.Occ,
		Con:         p.AC.Base,
		XCols:       xCols,
		FetchAttrs:  attrs,
		FetchLabels: labels,
		ConstEqs:    constEqs,
	})
	b.fetchMemo[memoKey] = id
	return id, nil
}

// productOfClasses produces a step whose columns are the unit plans of the
// given class representatives (one column per class).
func (b *builder) productOfClasses(si int, reps []ra.Attr) (int, error) {
	memoKey := fmt.Sprintf("p|%d", si)
	for _, r := range reps {
		memoKey += "|" + r.String()
	}
	if id, ok := b.prodMemo[memoKey]; ok {
		return id, nil
	}
	ids := make([]int, len(reps))
	for i, rep := range reps {
		node, ok := b.graph.Lookup(ClassLabel(si, rep))
		if !ok {
			return -1, fmt.Errorf("plan: no hypergraph node for class %s", rep)
		}
		id, err := b.unitPlan(node)
		if err != nil {
			return -1, err
		}
		ids[i] = id
	}
	cur := ids[0]
	for _, id := range ids[1:] {
		cur = b.plan.add(Step{
			Op:   OpProduct,
			Cols: append(append([]string{}, b.plan.Steps[cur].Cols...), b.plan.Steps[id].Cols...),
			L:    cur, R: id,
		})
	}
	b.prodMemo[memoKey] = cur
	return cur, nil
}

// indexingPlan emits the unit indexing plan ξcI(S) for occurrence rel of
// sub-query si: candidates (product of unit fetching plans) are validated
// against tuples fetched via the chosen indexing constraint, ensuring all
// attribute combinations come from the same stored tuple (Section 5.1).
// It returns the step and the class labels of X^S_Qs, sorted.
func (b *builder) indexingPlan(si int, sub *cover.Sub, rel string) (int, []string, error) {
	classes := sub.Classes
	idxCon, ok := sub.IndexBy[rel]
	if !ok {
		return -1, nil, fmt.Errorf("plan: occurrence %s has no indexing constraint", rel)
	}
	needReps := classes.Reps(sub.SPC.RelAttrs(rel))
	xReps := classes.Reps(idxCon.XAttrs(rel))

	// allReps = needReps ∪ xReps, deterministic order.
	allReps := append([]ra.Attr{}, needReps...)
	inNeed := map[ra.Attr]bool{}
	for _, r := range needReps {
		inNeed[r] = true
	}
	for _, r := range xReps {
		if !inNeed[r] {
			allReps = append(allReps, r)
		}
	}

	needLabels := make([]string, len(needReps))
	for i, r := range needReps {
		needLabels[i] = ClassLabel(si, r)
	}
	sort.Strings(needLabels)

	// Fetched tuples via the indexing constraint.
	fetchID, err := b.fetchStep(FDEdge{Sub: si, Occ: rel, AC: idxCon})
	if err != nil {
		return -1, nil, err
	}

	var validated int
	if len(allReps) == 0 {
		// The occurrence contributes only (non)emptiness: a zero-column
		// existence table.
		validated = b.plan.add(Step{
			Op: OpProject, Cols: nil, Pos: nil, L: fetchID, R: -1,
		})
		return validated, nil, nil
	}

	cand, err := b.productOfClasses(si, allReps)
	if err != nil {
		return -1, nil, err
	}
	// Natural join validates: shared labels cover allReps because
	// X^S_Qs ⊆ XY (indexed condition) and X ⊆ shared by construction.
	validated = b.plan.add(Step{
		Op:   OpJoin,
		Cols: joinCols(b.plan.Steps[cand].Cols, b.plan.Steps[fetchID].Cols),
		L:    cand, R: fetchID,
	})
	// Project to the needed classes.
	pos := make([]int, len(needLabels))
	vcols := b.plan.Steps[validated].Cols
	for i, lbl := range needLabels {
		pos[i] = colPos(vcols, lbl)
		if pos[i] < 0 {
			return -1, nil, fmt.Errorf("plan: needed column %s missing after indexing join", lbl)
		}
	}
	out := b.plan.add(Step{
		Op:   OpProject,
		Cols: needLabels,
		Pos:  pos,
		L:    validated, R: -1,
	})
	return out, needLabels, nil
}

// spcEval builds the evaluation of one max SPC sub-query: the natural join
// of the indexing plans of its occurrences (join conditions are implicit in
// the shared class labels), projected to the sub-query's output attributes.
func (b *builder) spcEval(ctx *subCtx) (int, []ra.Attr, error) {
	sub := ctx.sub
	spc := sub.SPC
	if sub.Classes.Conflict {
		// ΣQ derives c = c' for distinct constants: the answer is empty.
		empty := b.plan.add(Step{
			Op:   OpConst,
			Cols: make([]string, len(spc.Out)),
			L:    -1, R: -1,
		})
		return empty, spc.Out, nil
	}
	cur := -1
	for _, rel := range spc.Rels {
		id, _, err := b.indexingPlan(ctx.idx, sub, rel.Name)
		if err != nil {
			return -1, nil, err
		}
		if cur < 0 {
			cur = id
			continue
		}
		cur = b.plan.add(Step{
			Op:   OpJoin,
			Cols: joinCols(b.plan.Steps[cur].Cols, b.plan.Steps[id].Cols),
			L:    cur, R: id,
		})
	}
	// Project to output attributes (by class label; duplicates allowed).
	cols := b.plan.Steps[cur].Cols
	pos := make([]int, len(spc.Out))
	outCols := make([]string, len(spc.Out))
	for i, a := range spc.Out {
		lbl := ClassLabel(ctx.idx, sub.Classes.Rep(a))
		p := colPos(cols, lbl)
		if p < 0 {
			return -1, nil, fmt.Errorf("plan: output attribute %s (class %s) not available", a, lbl)
		}
		pos[i] = p
		outCols[i] = lbl
	}
	out := b.plan.add(Step{
		Op:   OpProject,
		Cols: outCols,
		Pos:  pos,
		L:    cur, R: -1,
	})
	return out, spc.Out, nil
}

// evalNode recursively builds the evaluation plan ξcE: max SPC sub-queries
// become their canonical sub-plans; set operators, and any selections or
// projections sitting above them, are applied positionally.
func (b *builder) evalNode(q ra.Query) (int, []ra.Attr, error) {
	if ctx, ok := b.subByRoot[q]; ok {
		return b.spcEval(ctx)
	}
	switch t := q.(type) {
	case *ra.Union, *ra.Diff:
		var l, r ra.Query
		var op Op
		if u, ok := q.(*ra.Union); ok {
			l, r, op = u.L, u.R, OpUnion
		} else {
			d := q.(*ra.Diff)
			l, r, op = d.L, d.R, OpDiff
		}
		li, la, err := b.evalNode(l)
		if err != nil {
			return -1, nil, err
		}
		ri, _, err := b.evalNode(r)
		if err != nil {
			return -1, nil, err
		}
		if len(b.plan.Steps[li].Cols) != len(b.plan.Steps[ri].Cols) {
			return -1, nil, fmt.Errorf("plan: set operands have different arities")
		}
		id := b.plan.add(Step{
			Op:   op,
			Cols: append([]string{}, b.plan.Steps[li].Cols...),
			L:    li, R: ri,
		})
		return id, la, nil
	case *ra.Select:
		ci, ca, err := b.evalNode(t.In)
		if err != nil {
			return -1, nil, err
		}
		conds, err := condsFor(t.Preds, ca)
		if err != nil {
			return -1, nil, err
		}
		id := b.plan.add(Step{
			Op:    OpFilter,
			Cols:  append([]string{}, b.plan.Steps[ci].Cols...),
			Conds: conds,
			L:     ci, R: -1,
		})
		return id, ca, nil
	case *ra.Project:
		ci, ca, err := b.evalNode(t.In)
		if err != nil {
			return -1, nil, err
		}
		pos := make([]int, len(t.Attrs))
		cols := make([]string, len(t.Attrs))
		ccols := b.plan.Steps[ci].Cols
		for i, a := range t.Attrs {
			p := attrPos(ca, a)
			if p < 0 {
				return -1, nil, fmt.Errorf("plan: projection attribute %s not in scope", a)
			}
			pos[i] = p
			cols[i] = ccols[p]
		}
		id := b.plan.add(Step{Op: OpProject, Cols: cols, Pos: pos, L: ci, R: -1})
		return id, t.Attrs, nil
	case *ra.Product:
		li, la, err := b.evalNode(t.L)
		if err != nil {
			return -1, nil, err
		}
		ri, raAttrs, err := b.evalNode(t.R)
		if err != nil {
			return -1, nil, err
		}
		id := b.plan.add(Step{
			Op:   OpProduct,
			Cols: append(append([]string{}, b.plan.Steps[li].Cols...), b.plan.Steps[ri].Cols...),
			L:    li, R: ri,
		})
		return id, append(append([]ra.Attr{}, la...), raAttrs...), nil
	default:
		return -1, nil, fmt.Errorf("plan: unexpected node %T outside SPC sub-queries", q)
	}
}

func condsFor(preds []ra.Pred, scope []ra.Attr) ([]Cond, error) {
	conds := make([]Cond, 0, len(preds))
	for _, p := range preds {
		switch t := p.(type) {
		case ra.EqAttr:
			pa, pb := attrPos(scope, t.L), attrPos(scope, t.R)
			if pa < 0 || pb < 0 {
				return nil, fmt.Errorf("plan: selection attribute out of scope in %s", p)
			}
			conds = append(conds, Cond{PosA: pa, PosB: pb})
		case ra.EqConst:
			pa := attrPos(scope, t.A)
			if pa < 0 {
				return nil, fmt.Errorf("plan: selection attribute out of scope in %s", p)
			}
			conds = append(conds, Cond{PosA: pa, C: t.C, IsConst: true})
		}
	}
	return conds, nil
}

func attrPos(attrs []ra.Attr, a ra.Attr) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	return -1
}

func colPos(cols []string, label string) int {
	for i, c := range cols {
		if c == label {
			return i
		}
	}
	return -1
}

// joinCols computes the output columns of a natural join: left's columns
// followed by right's non-shared columns.
func joinCols(l, r []string) []string {
	out := append([]string{}, l...)
	shared := map[string]bool{}
	for _, c := range l {
		shared[c] = true
	}
	for _, c := range r {
		if !shared[c] {
			out = append(out, c)
		}
	}
	return out
}

// Package plan implements boundedly evaluable query plans (Section 2,
// Appendix A) and algorithm QPlan (Section 5): given a query covered by an
// access schema, it generates a canonical bounded query plan consisting of a
// fetching plan, an indexing plan and an evaluation plan, of length
// O(|Q||A|), in O(|Q|(|Q|+|A|)) time.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/value"
)

// Op enumerates plan step operators. Fetch is the data-access operator of
// bounded plans; Join and Filter are syntactic sugar over σ/π/× kept
// first-class so the executor can implement them efficiently.
type Op uint8

const (
	// OpConst produces a constant table.
	OpConst Op = iota
	// OpFetch retrieves ∪_{x∈T} D_{XY}(X = x) via the index of an access
	// constraint — the only operator that touches stored data.
	OpFetch
	// OpProject projects the input to selected columns (by position).
	OpProject
	// OpFilter applies equality conditions (by position).
	OpFilter
	// OpProduct is Cartesian product.
	OpProduct
	// OpJoin is natural join on the shared column labels of its inputs.
	OpJoin
	// OpUnion is positional set union.
	OpUnion
	// OpDiff is positional set difference.
	OpDiff
)

var opNames = [...]string{"const", "fetch", "project", "filter", "product", "join", "union", "diff"}

// String names the operator.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// Cond is an equality condition of an OpFilter step: column PosA equals
// column PosB, or column PosA equals the constant C when IsConst is set.
type Cond struct {
	PosA, PosB int
	C          value.Value
	IsConst    bool
}

// ConstCond requires the fetch output column with the given label to equal C.
type ConstCond struct {
	Label string
	C     value.Value
}

// Step is one operation of a plan. Inputs are earlier steps (L, R; -1 when
// unused), so a plan is a DAG presented in topological order, matching the
// sequential form T1 = δ1, …, Tn = δn of Appendix A.
type Step struct {
	ID   int
	Op   Op
	Cols []string // output column labels
	L, R int      // input step ids; -1 when unused

	// OpConst
	Rows []value.Tuple

	// OpFetch
	Occ string            // relation occurrence being fetched
	Con access.Constraint // base constraint R(X→Y,N) backing the fetch
	// XCols are the labels in step L providing the X values, parallel to
	// Con.X. Empty for constraints with X = ∅ (then L is -1).
	XCols []string
	// FetchAttrs lists the attributes of the index payload (X then Y,
	// de-duplicated) and FetchLabels the output label each maps to;
	// distinct attributes mapping to the same label must be equal.
	FetchAttrs  []string
	FetchLabels []string
	// ConstEqs are constant requirements on fetched columns.
	ConstEqs []ConstCond

	// OpProject
	Pos []int

	// OpFilter
	Conds []Cond
}

// Plan is a bounded query plan: a topologically ordered step list whose
// final step computes the query answer.
type Plan struct {
	Steps  []Step
	Result int
	// FetchSteps indexes the fetch steps for validity checking and stats.
	FetchSteps []int
}

// Length returns the number of steps, the plan-length measure of Lemma 8.
func (p *Plan) Length() int { return len(p.Steps) }

// add appends a step, assigning its ID.
func (p *Plan) add(s Step) int {
	s.ID = len(p.Steps)
	if s.Op == OpFetch {
		p.FetchSteps = append(p.FetchSteps, s.ID)
	}
	p.Steps = append(p.Steps, s)
	return s.ID
}

// Validate checks structural sanity and the bounded-evaluability side
// condition: every fetch is backed by a constraint present in A.
func (p *Plan) Validate(A *access.Schema) error {
	if p.Result < 0 || p.Result >= len(p.Steps) {
		return fmt.Errorf("plan: result step %d out of range", p.Result)
	}
	known := map[string]bool{}
	for _, c := range A.Constraints {
		known[c.Key()] = true
	}
	for i, s := range p.Steps {
		if s.ID != i {
			return fmt.Errorf("plan: step %d has ID %d", i, s.ID)
		}
		if s.L >= i || s.R >= i {
			return fmt.Errorf("plan: step %d references later step", i)
		}
		switch s.Op {
		case OpFetch:
			if !known[s.Con.Key()] {
				return fmt.Errorf("plan: step %d fetches via %s not in A", i, s.Con)
			}
			if len(s.XCols) != len(s.Con.X) {
				return fmt.Errorf("plan: step %d has %d X columns for %s", i, len(s.XCols), s.Con)
			}
			if len(s.XCols) > 0 && s.L < 0 {
				return fmt.Errorf("plan: step %d fetch needs an input", i)
			}
			if len(s.FetchAttrs) != len(s.FetchLabels) {
				return fmt.Errorf("plan: step %d fetch attr/label mismatch", i)
			}
		case OpProject:
			if s.L < 0 {
				return fmt.Errorf("plan: step %d project lacks input", i)
			}
			for _, pos := range s.Pos {
				if pos < 0 || pos >= len(p.Steps[s.L].Cols) {
					return fmt.Errorf("plan: step %d projects position %d out of range", i, pos)
				}
			}
		case OpProduct, OpJoin, OpUnion, OpDiff:
			if s.L < 0 || s.R < 0 {
				return fmt.Errorf("plan: step %d binary op lacks inputs", i)
			}
			if s.Op == OpUnion || s.Op == OpDiff {
				if len(p.Steps[s.L].Cols) != len(p.Steps[s.R].Cols) {
					return fmt.Errorf("plan: step %d set op arity mismatch", i)
				}
			}
		}
	}
	return nil
}

// MaxAccessBound returns a static upper bound on the number of tuples the
// plan can access: the product-sum over fetch steps of the cardinality
// bounds along their input chains. It is the quantity the paper bounds by
// Q and A only (e.g. 470 000 for Q0 under A0); infinite loops are
// impossible since plans are DAGs.
func (p *Plan) MaxAccessBound() int64 {
	// card[i] bounds the number of rows step i can produce.
	card := make([]int64, len(p.Steps))
	var total int64
	for i, s := range p.Steps {
		switch s.Op {
		case OpConst:
			card[i] = int64(len(s.Rows))
		case OpFetch:
			in := int64(1)
			if s.L >= 0 {
				in = card[s.L]
			}
			rows := in * int64(s.Con.N)
			card[i] = rows
			total += rows
		case OpProject, OpFilter:
			card[i] = card[s.L]
		case OpProduct, OpJoin:
			card[i] = card[s.L] * card[s.R]
		case OpUnion:
			card[i] = card[s.L] + card[s.R]
		case OpDiff:
			card[i] = card[s.L]
		}
		if card[i] < 0 { // overflow guard
			card[i] = 1 << 60
		}
	}
	return total
}

// String renders the plan in the T1 = δ1, … form of the paper.
func (p *Plan) String() string {
	var sb strings.Builder
	for _, s := range p.Steps {
		fmt.Fprintf(&sb, "T%d = ", s.ID)
		switch s.Op {
		case OpConst:
			rows := make([]string, len(s.Rows))
			for i, r := range s.Rows {
				rows[i] = r.String()
			}
			fmt.Fprintf(&sb, "{%s}", strings.Join(rows, ", "))
		case OpFetch:
			src := "∅"
			if s.L >= 0 {
				src = fmt.Sprintf("X ∈ T%d", s.L)
			}
			fmt.Fprintf(&sb, "fetch(%s, %s, (%s))", src, s.Occ, strings.Join(s.Con.Y, ","))
		case OpProject:
			fmt.Fprintf(&sb, "π[%s](T%d)", strings.Join(s.Cols, ","), s.L)
		case OpFilter:
			fmt.Fprintf(&sb, "σ[%d conds](T%d)", len(s.Conds), s.L)
		case OpProduct:
			fmt.Fprintf(&sb, "T%d × T%d", s.L, s.R)
		case OpJoin:
			fmt.Fprintf(&sb, "T%d ⋈ T%d", s.L, s.R)
		case OpUnion:
			fmt.Fprintf(&sb, "T%d ∪ T%d", s.L, s.R)
		case OpDiff:
			fmt.Fprintf(&sb, "T%d − T%d", s.L, s.R)
		}
		if len(s.Cols) > 0 {
			fmt.Fprintf(&sb, "   /* cols: %s */", strings.Join(s.Cols, ", "))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "result: T%d\n", p.Result)
	return sb.String()
}

// IndexCols returns the column attribute list of the index payload for
// constraint c: X then Y with duplicates removed. Store and executor share
// this layout.
func IndexCols(c access.Constraint) []string {
	out := make([]string, 0, len(c.X)+len(c.Y))
	seen := map[string]bool{}
	for _, a := range c.X {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range c.Y {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

package plan_test

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

func checkedResult(t *testing.T, q ra.Query, s ra.Schema, A *access.Schema) *cover.Result {
	t.Helper()
	norm, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Check(norm, s, A)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildRejectsUncovered(t *testing.T) {
	fb := &workload.Facebook{
		Schema: workload.FacebookSchema(),
		Access: workload.FacebookAccess(),
		Me:     value.NewInt(0),
	}
	res := checkedResult(t, fb.Q2(), fb.Schema, fb.Access)
	if res.Covered {
		t.Fatal("Q2 unexpectedly covered")
	}
	if _, err := plan.Build(res); err == nil {
		t.Error("Build accepted an uncovered query")
	}
}

func TestBuildQ1PlanShape(t *testing.T) {
	fb, _, err := workload.GenFacebook(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	res := checkedResult(t, fb.Q1(), fb.Schema, fb.Access)
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(fb.Access); err != nil {
		t.Fatalf("invalid plan: %v\n%s", err, p)
	}
	if len(p.FetchSteps) == 0 {
		t.Fatal("plan has no fetch steps")
	}
	// Every fetch must use a constraint of A0 — Validate checks this; also
	// check the friend fetch uses ψ1.
	foundFriend := false
	for _, fi := range p.FetchSteps {
		s := p.Steps[fi]
		if s.Con.Rel == "friend" {
			foundFriend = true
			if s.Con.N != 5000 {
				t.Errorf("friend fetch via N=%d", s.Con.N)
			}
		}
	}
	if !foundFriend {
		t.Error("no fetch on friend")
	}
	// Rendering sanity.
	str := p.String()
	if !strings.Contains(str, "fetch") || !strings.Contains(str, "result:") {
		t.Errorf("plan rendering: %q", str)
	}
}

func TestQ0PrimeAccessBoundIndependentOfData(t *testing.T) {
	fb, _, err := workload.GenFacebook(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	res := checkedResult(t, fb.Q0Prime(), fb.Schema, fb.Access)
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	bound := p.MaxAccessBound()
	if bound <= 0 {
		t.Fatal("access bound must be positive")
	}
	// The bound is a function of Q and A only: building the plan again
	// gives the same number, and it is in the ballpark the paper derives
	// for Q0 under A0 (≈ 470 000 — ours differs by plan shape but must
	// stay well under |friend|·|dine| style data-dependent counts).
	res2 := checkedResult(t, fb.Q0Prime(), fb.Schema, fb.Access)
	p2, err := plan.Build(res2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.MaxAccessBound() != bound {
		t.Errorf("access bound not deterministic: %d vs %d", bound, p2.MaxAccessBound())
	}
	if bound > 100_000_000 {
		t.Errorf("access bound %d implausibly large", bound)
	}
}

func TestPlanLengthWithinTheorem5Bound(t *testing.T) {
	fb, _, err := workload.GenFacebook(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []ra.Query{fb.Q1(), fb.Q3(), fb.Q0Prime()} {
		res := checkedResult(t, q, fb.Schema, fb.Access)
		p, err := plan.Build(res)
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 8: length O(|Q||A|). Use a generous constant.
		limit := 8 * ra.Size(res.Query) * (fb.Access.Size() + 1)
		if p.Length() > limit {
			t.Errorf("plan length %d exceeds O(|Q||A|) bound %d", p.Length(), limit)
		}
	}
}

func TestIndexCols(t *testing.T) {
	c := access.Constraint{Rel: "r", X: []string{"a", "b"}, Y: []string{"b", "c"}, N: 1}
	got := plan.IndexCols(c)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("IndexCols = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IndexCols[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestHypergraphExposure(t *testing.T) {
	fb, _, err := workload.GenFacebook(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	res := checkedResult(t, fb.Q1(), fb.Schema, fb.Access)
	g, root := plan.Hypergraph(res)
	if g.NumNodes() < 5 {
		t.Errorf("hypergraph too small: %d nodes", g.NumNodes())
	}
	d := g.Derive(root)
	// Every needed class node must be derivable for a covered query
	// (Lemma 7).
	for si, sub := range res.Subs {
		for _, rep := range sub.XHat {
			node, ok := g.Lookup(plan.ClassLabel(si, rep))
			if !ok {
				t.Fatalf("no node for class %v", rep)
			}
			if !d.Reached[node] {
				t.Errorf("class %v not derivable despite coverage", rep)
			}
		}
	}
	if !g.Acyclic() {
		t.Log("note: Example 1 hypergraph has cycles via membership constraints")
	}
}

func smallCfg() workload.FacebookConfig {
	cfg := workload.DefaultFacebookConfig()
	cfg.Persons = 50
	cfg.Cafes = 30
	return cfg
}

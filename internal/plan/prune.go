package plan

// Prune returns an equivalent plan with all steps unreachable from the
// result step removed and IDs renumbered. Memoized construction can leave
// a few orphan steps when an indexing constraint's fetch output supersedes
// a unit fetching plan; pruning keeps executed plans minimal without
// changing the computed answer.
func (p *Plan) Prune() *Plan {
	live := make([]bool, len(p.Steps))
	var mark func(int)
	mark = func(id int) {
		if id < 0 || live[id] {
			return
		}
		live[id] = true
		mark(p.Steps[id].L)
		mark(p.Steps[id].R)
	}
	mark(p.Result)

	remap := make([]int, len(p.Steps))
	out := &Plan{}
	for i := range p.Steps {
		if !live[i] {
			remap[i] = -1
			continue
		}
		s := p.Steps[i] // copy
		if s.L >= 0 {
			s.L = remap[s.L]
		}
		if s.R >= 0 {
			s.R = remap[s.R]
		}
		remap[i] = out.add(s)
	}
	out.Result = remap[p.Result]
	return out
}

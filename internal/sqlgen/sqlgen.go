// Package sqlgen implements Plan2SQL (Section 7): translating a bounded
// query plan into a SQL query over the index relations I_A, so bounded
// evaluation can run on top of an existing DBMS. Each index relation
// ind_<constraint> is the partial table π_XY(D_R) hashed on X; the emitted
// SQL accesses only those relations, never the underlying D.
package sqlgen

import (
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/plan"
)

// IndexRelName returns the SQL name of the index relation for constraint c,
// e.g. ind_dine_pid_year_month__cid.
func IndexRelName(c access.Constraint) string {
	parts := []string{"ind", c.Rel}
	parts = append(parts, c.X...)
	name := strings.Join(parts, "_") + "__" + strings.Join(c.Y, "_")
	return sanitize(name)
}

// ColName converts a plan column label into a SQL identifier.
func ColName(label string) string {
	if label == "" {
		return "dummy"
	}
	return sanitize(label)
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// ToSQL translates a bounded plan into a single SQL statement using common
// table expressions, one per plan step; the final SELECT returns the query
// answer. The SQL touches only index relations (ind_*), mirroring the
// bounded plan's data access.
func ToSQL(p *plan.Plan) (string, error) {
	var ctes []string
	for i := range p.Steps {
		body, err := stepSQL(p, &p.Steps[i])
		if err != nil {
			return "", err
		}
		ctes = append(ctes, fmt.Sprintf("t%d AS (\n%s\n)", i, indent(body, "  ")))
	}
	final := fmt.Sprintf("SELECT DISTINCT %s FROM t%d", selectList(p.Steps[p.Result].Cols), p.Result)
	return "WITH " + strings.Join(ctes, ",\n") + "\n" + final, nil
}

func selectList(cols []string) string {
	if len(cols) == 0 {
		return "1 AS dummy"
	}
	out := make([]string, len(cols))
	for i := range cols {
		out[i] = uniqueColName(cols, i)
	}
	return strings.Join(out, ", ")
}

// uniqueColName disambiguates duplicate labels in projection outputs.
func uniqueColName(cols []string, i int) string {
	name := ColName(cols[i])
	dup := 0
	for j := 0; j < i; j++ {
		if cols[j] == cols[i] {
			dup++
		}
	}
	if dup > 0 {
		return fmt.Sprintf("%s_%d", name, dup)
	}
	return name
}

func stepSQL(p *plan.Plan, s *plan.Step) (string, error) {
	switch s.Op {
	case plan.OpConst:
		return constSQL(s), nil
	case plan.OpFetch:
		return fetchSQL(p, s)
	case plan.OpProject:
		in := p.Steps[s.L]
		cols := make([]string, len(s.Pos))
		for i, pos := range s.Pos {
			cols[i] = fmt.Sprintf("%s AS %s", uniqueColName(in.Cols, pos), uniqueColName(s.Cols, i))
		}
		if len(cols) == 0 {
			return fmt.Sprintf("SELECT DISTINCT 1 AS dummy FROM t%d", s.L), nil
		}
		return fmt.Sprintf("SELECT DISTINCT %s FROM t%d", strings.Join(cols, ", "), s.L), nil
	case plan.OpFilter:
		in := p.Steps[s.L]
		var conds []string
		for _, c := range s.Conds {
			if c.IsConst {
				conds = append(conds, fmt.Sprintf("%s = %s", uniqueColName(in.Cols, c.PosA), c.C.SQL()))
			} else {
				conds = append(conds, fmt.Sprintf("%s = %s", uniqueColName(in.Cols, c.PosA), uniqueColName(in.Cols, c.PosB)))
			}
		}
		where := ""
		if len(conds) > 0 {
			where = " WHERE " + strings.Join(conds, " AND ")
		}
		return fmt.Sprintf("SELECT DISTINCT %s FROM t%d%s", selectList(in.Cols), s.L, where), nil
	case plan.OpProduct:
		l, r := p.Steps[s.L], p.Steps[s.R]
		cols := make([]string, 0, len(s.Cols))
		for i := range l.Cols {
			cols = append(cols, "a."+uniqueColName(l.Cols, i))
		}
		for i := range r.Cols {
			cols = append(cols, "b."+uniqueColName(r.Cols, i))
		}
		sel := strings.Join(cols, ", ")
		if sel == "" {
			sel = "1 AS dummy"
		}
		return fmt.Sprintf("SELECT DISTINCT %s FROM t%d a CROSS JOIN t%d b", sel, s.L, s.R), nil
	case plan.OpJoin:
		return joinSQL(p, s), nil
	case plan.OpUnion:
		return fmt.Sprintf("SELECT %s FROM t%d UNION SELECT %s FROM t%d",
			selectList(p.Steps[s.L].Cols), s.L, selectList(p.Steps[s.R].Cols), s.R), nil
	case plan.OpDiff:
		return fmt.Sprintf("SELECT %s FROM t%d EXCEPT SELECT %s FROM t%d",
			selectList(p.Steps[s.L].Cols), s.L, selectList(p.Steps[s.R].Cols), s.R), nil
	default:
		return "", fmt.Errorf("sqlgen: unknown operator %v", s.Op)
	}
}

func constSQL(s *plan.Step) string {
	if len(s.Rows) == 0 {
		// Empty table with the right arity.
		cols := make([]string, len(s.Cols))
		for i := range s.Cols {
			cols[i] = "NULL AS " + uniqueColName(s.Cols, i)
		}
		sel := strings.Join(cols, ", ")
		if sel == "" {
			sel = "1 AS dummy"
		}
		return fmt.Sprintf("SELECT %s WHERE 1 = 0", sel)
	}
	var rows []string
	for _, r := range s.Rows {
		cols := make([]string, len(r))
		for i, v := range r {
			cols[i] = fmt.Sprintf("%s AS %s", v.SQL(), uniqueColName(s.Cols, i))
		}
		sel := strings.Join(cols, ", ")
		if sel == "" {
			sel = "1 AS dummy"
		}
		rows = append(rows, "SELECT "+sel)
	}
	return strings.Join(rows, " UNION ")
}

func fetchSQL(p *plan.Plan, s *plan.Step) (string, error) {
	rel := IndexRelName(s.Con)
	// Map output columns: first index attribute carrying each label wins;
	// later attributes with the same label become equality conditions.
	assigned := map[string]string{} // label -> index attr expression
	var conds []string
	for i, a := range s.FetchAttrs {
		lbl := s.FetchLabels[i]
		expr := "i." + sanitize(a)
		if prev, ok := assigned[lbl]; ok {
			conds = append(conds, fmt.Sprintf("%s = %s", prev, expr))
		} else {
			assigned[lbl] = expr
		}
	}
	for _, ce := range s.ConstEqs {
		expr, ok := assigned[ce.Label]
		if !ok {
			return "", fmt.Errorf("sqlgen: const condition on unknown label %s", ce.Label)
		}
		conds = append(conds, fmt.Sprintf("%s = %s", expr, ce.C.SQL()))
	}
	sel := make([]string, len(s.Cols))
	for i, lbl := range s.Cols {
		sel[i] = fmt.Sprintf("%s AS %s", assigned[lbl], uniqueColName(s.Cols, i))
	}
	selStr := strings.Join(sel, ", ")
	if selStr == "" {
		selStr = "1 AS dummy"
	}
	from := rel + " i"
	if s.L >= 0 && len(s.XCols) > 0 {
		in := p.Steps[s.L]
		var on []string
		for i, xa := range s.Con.X {
			pos := -1
			for j, c := range in.Cols {
				if c == s.XCols[i] {
					pos = j
					break
				}
			}
			if pos < 0 {
				return "", fmt.Errorf("sqlgen: X column %s missing", s.XCols[i])
			}
			on = append(on, fmt.Sprintf("i.%s = s.%s", sanitize(xa), uniqueColName(in.Cols, pos)))
		}
		from = fmt.Sprintf("%s JOIN t%d s ON %s", from, s.L, strings.Join(on, " AND "))
	}
	where := ""
	if len(conds) > 0 {
		where = " WHERE " + strings.Join(conds, " AND ")
	}
	return fmt.Sprintf("SELECT DISTINCT %s FROM %s%s", selStr, from, where), nil
}

func joinSQL(p *plan.Plan, s *plan.Step) string {
	l, r := p.Steps[s.L], p.Steps[s.R]
	lset := map[string]int{}
	for i, c := range l.Cols {
		lset[c] = i
	}
	var on []string
	var extra []string
	for i, c := range r.Cols {
		if li, ok := lset[c]; ok {
			on = append(on, fmt.Sprintf("a.%s = b.%s", uniqueColName(l.Cols, li), uniqueColName(r.Cols, i)))
		} else {
			extra = append(extra, "b."+uniqueColName(r.Cols, i))
		}
	}
	cols := make([]string, 0, len(s.Cols))
	for i := range l.Cols {
		cols = append(cols, "a."+uniqueColName(l.Cols, i))
	}
	cols = append(cols, extra...)
	sel := strings.Join(cols, ", ")
	if sel == "" {
		sel = "1 AS dummy"
	}
	join := fmt.Sprintf("t%d a JOIN t%d b", s.L, s.R)
	if len(on) == 0 {
		join = fmt.Sprintf("t%d a CROSS JOIN t%d b", s.L, s.R)
		return fmt.Sprintf("SELECT DISTINCT %s FROM %s", sel, join)
	}
	return fmt.Sprintf("SELECT DISTINCT %s FROM %s ON %s", sel, join, strings.Join(on, " AND "))
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// IndexDDL emits CREATE TABLE + CREATE INDEX statements for the index
// relations of an access schema, the offline step C1 of the framework.
func IndexDDL(A *access.Schema) []string {
	var out []string
	for _, c := range A.Constraints {
		cols := plan.IndexCols(c)
		defs := make([]string, len(cols))
		for i, col := range cols {
			defs[i] = sanitize(col) + " TEXT"
		}
		name := IndexRelName(c)
		out = append(out, fmt.Sprintf("CREATE TABLE %s (%s);", name, strings.Join(defs, ", ")))
		if len(c.X) > 0 {
			xs := make([]string, len(c.X))
			for i, x := range c.X {
				xs[i] = sanitize(x)
			}
			out = append(out, fmt.Sprintf("CREATE INDEX idx_%s ON %s (%s);", name, name, strings.Join(xs, ", ")))
		}
	}
	return out
}

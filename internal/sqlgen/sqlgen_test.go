package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/plan"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

func facebook() *workload.Facebook {
	return &workload.Facebook{
		Schema: workload.FacebookSchema(),
		Access: workload.FacebookAccess(),
		Me:     value.NewInt(0),
	}
}

func buildPlan(t *testing.T, q ra.Query, s ra.Schema, A *access.Schema) *plan.Plan {
	t.Helper()
	norm, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Check(norm, s, A)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(res)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestToSQLQ1Structure(t *testing.T) {
	fb := facebook()
	p := buildPlan(t, fb.Q1(), fb.Schema, fb.Access)
	sql, err := ToSQL(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sql, "WITH ") {
		t.Errorf("SQL should use CTEs: %q", sql[:40])
	}
	// Only index relations are referenced — never the base tables.
	lower := strings.ToLower(sql)
	for _, base := range []string{" friend ", " dine ", " cafe "} {
		if strings.Contains(lower, base) {
			t.Errorf("SQL references base relation%q", base)
		}
	}
	if !strings.Contains(sql, "ind_friend_pid__fid") {
		t.Errorf("SQL missing friend index relation:\n%s", sql)
	}
	if !strings.Contains(sql, "ind_dine_pid_year_month__cid") {
		t.Errorf("SQL missing dine index relation:\n%s", sql)
	}
	// One CTE per plan step plus the final select.
	if got := strings.Count(sql, " AS (\n"); got != p.Length() {
		t.Errorf("SQL has %d CTEs for %d steps", got, p.Length())
	}
	if !balancedParens(sql) {
		t.Error("unbalanced parentheses in SQL")
	}
	// Constants of the query must appear.
	for _, lit := range []string{"2015", "5", "'nyc'"} {
		if !strings.Contains(sql, lit) {
			t.Errorf("SQL missing literal %s", lit)
		}
	}
}

func TestToSQLDiffUsesExcept(t *testing.T) {
	fb := facebook()
	p := buildPlan(t, fb.Q0Prime(), fb.Schema, fb.Access)
	sql, err := ToSQL(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "EXCEPT") {
		t.Error("set difference should translate to EXCEPT")
	}
	if !balancedParens(sql) {
		t.Error("unbalanced parentheses")
	}
}

func TestIndexRelName(t *testing.T) {
	c := access.Constraint{Rel: "dine", X: []string{"pid", "year", "month"}, Y: []string{"cid"}, N: 31}
	if got := IndexRelName(c); got != "ind_dine_pid_year_month__cid" {
		t.Errorf("IndexRelName = %q", got)
	}
	empty := access.Constraint{Rel: "cal", X: nil, Y: []string{"month"}, N: 12}
	if got := IndexRelName(empty); got != "ind_cal__month" {
		t.Errorf("IndexRelName(∅ X) = %q", got)
	}
}

func TestColNameSanitizes(t *testing.T) {
	if got := ColName("s0.dine.cid"); got != "s0_dine_cid" {
		t.Errorf("ColName = %q", got)
	}
	if got := ColName(""); got != "dummy" {
		t.Errorf("ColName(\"\") = %q", got)
	}
}

func TestIndexDDL(t *testing.T) {
	fb := facebook()
	ddl := IndexDDL(fb.Access)
	// One CREATE TABLE per constraint; CREATE INDEX only for non-empty X.
	tables, indexes := 0, 0
	for _, stmt := range ddl {
		if strings.HasPrefix(stmt, "CREATE TABLE") {
			tables++
		}
		if strings.HasPrefix(stmt, "CREATE INDEX") {
			indexes++
		}
	}
	if tables != fb.Access.Len() {
		t.Errorf("%d CREATE TABLE for %d constraints", tables, fb.Access.Len())
	}
	if indexes != fb.Access.Len() { // all four constraints have X ≠ ∅
		t.Errorf("%d CREATE INDEX statements", indexes)
	}
}

func TestToSQLDeterministic(t *testing.T) {
	fb := facebook()
	p := buildPlan(t, fb.Q1(), fb.Schema, fb.Access)
	a, err := ToSQL(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ToSQL(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ToSQL is not deterministic")
	}
}

func balancedParens(s string) bool {
	depth := 0
	for _, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}

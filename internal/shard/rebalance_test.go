package shard

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// assertDifferential runs every workload template on both engines and
// fails on any row-set or verdict mismatch.
func assertDifferential(t *testing.T, label string, eng *core.Engine, router *Router, d *workload.Dataset) {
	t.Helper()
	for _, tpl := range d.Templates() {
		q, err := eng.Parse(tpl.Src)
		if err != nil {
			t.Fatalf("%s/%s: parse: %v", label, tpl.Name, err)
		}
		want, wantRep, err := eng.Execute(q, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s/%s: oracle: %v", label, tpl.Name, err)
		}
		got, gotRep, err := router.Execute(q, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s/%s: sharded: %v", label, tpl.Name, err)
		}
		if !want.Equal(got) {
			t.Errorf("%s/%s: rows differ: %d vs %d", label, tpl.Name, want.Len(), got.Len())
		}
		if wantRep.Covered != gotRep.Covered || wantRep.Bounded != gotRep.Bounded {
			t.Errorf("%s/%s: verdicts differ: covered %v/%v bounded %v/%v", label, tpl.Name,
				wantRep.Covered, gotRep.Covered, wantRep.Bounded, gotRep.Bounded)
		}
	}
}

// assertPlacement fails unless every member holds only the keyed rows the
// live ring assigns it (no leftovers) and exactly the anchor's copy of
// every broadcast relation. The apply lanes are fenced first so pending
// broadcast copies cannot read as divergence.
func assertPlacement(t *testing.T, label string, router *Router) {
	t.Helper()
	router.aq.fenceAll()
	st := router.state.Load()
	ps := router.part.Load()
	for _, rel := range router.schema.Relations() {
		pos, partitioned := ps.keyPos[rel]
		anchorRows, err := st.members[0].eng.DB().Rows(rel)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range st.members {
			rows, err := m.eng.DB().Rows(rel)
			if err != nil {
				t.Fatal(err)
			}
			if !partitioned {
				if len(rows) != len(anchorRows) {
					t.Errorf("%s: shard %d holds %d rows of broadcast %s, anchor has %d",
						label, i, len(rows), rel, len(anchorRows))
					continue
				}
				if i > 0 {
					for _, r := range anchorRows {
						if ok, _ := m.eng.DB().Has(rel, r); !ok {
							t.Errorf("%s: shard %d missing a broadcast %s row the anchor holds", label, i, rel)
							break
						}
					}
				}
				continue
			}
			for _, r := range rows {
				if o := st.ring.OwnerOf(r[pos]); o != i {
					t.Errorf("%s: shard %d holds leftover %s row owned by %d", label, i, rel, o)
				}
			}
		}
	}
}

// TestReshardGrowShrink is the quiescent end-to-end: grow 2→4, then
// shrink 4→2, asserting after each move that answers still match the
// single-engine oracle, placement is exact, the epoch advanced, versions
// stay in lockstep, and tuple movement never bumped any Version.
func TestReshardGrowShrink(t *testing.T) {
	eng, router, d := buildPair(t, "AIRCA", 2)
	v0 := router.Version()
	e0 := router.RingEpoch()
	assertDifferential(t, "before", eng, router, d)

	rep, err := router.Reshard(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 2 || rep.To != 4 || rep.Epoch != e0+1 {
		t.Fatalf("grow report: %+v", rep)
	}
	if rep.Moved == 0 {
		t.Fatal("grow moved no rows")
	}
	if got := router.NumShards(); got != 4 {
		t.Fatalf("NumShards after grow = %d", got)
	}
	if got := len(router.PerShardStats()); got != 4 {
		t.Fatalf("PerShardStats after grow has %d entries, want 4 shards", got)
	}
	if router.Version() != v0 {
		t.Fatalf("grow bumped Version %d -> %d", v0, router.Version())
	}
	for _, st := range router.PerShardStats() {
		if st.Version != v0 {
			t.Errorf("%s at version %d after grow, want %d", st.Label, st.Version, v0)
		}
	}
	assertPlacement(t, "after grow", router)
	assertDifferential(t, "after grow", eng, router, d)

	rep, err = router.Reshard(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != 4 || rep.To != 2 || rep.Epoch != e0+2 {
		t.Fatalf("shrink report: %+v", rep)
	}
	if got := router.NumShards(); got != 2 {
		t.Fatalf("NumShards after shrink = %d", got)
	}
	if router.Version() != v0 {
		t.Fatalf("shrink bumped Version %d -> %d", v0, router.Version())
	}
	assertPlacement(t, "after shrink", router)
	assertDifferential(t, "after shrink", eng, router, d)
	if status := router.RingStatus(); status.Migration != nil || status.Epoch != e0+2 || status.Shards != 2 {
		t.Fatalf("RingStatus after shrink: %+v", status)
	}
}

// TestReshardMinimalMovement pins the point of consistent hashing at the
// data layer: growing N→N+1 streams roughly 1/(N+1) of the keyed rows,
// not a reshuffle of everything.
func TestReshardMinimalMovement(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 4)
	// Keyed rows live disjointly across the members; their sum is the
	// logical keyed row count.
	var keyed int64
	st := router.state.Load()
	for rel := range router.part.Load().keyPos {
		for _, m := range st.members {
			rows, err := m.eng.DB().Rows(rel)
			if err != nil {
				t.Fatal(err)
			}
			keyed += int64(len(rows))
		}
	}
	rep, err := router.Reshard(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(rep.Moved) / float64(keyed)
	// 1/5 expected; allow generous slack for hash variance on a small
	// instance and for the dataset's skewed key populations.
	if frac > 0.35 {
		t.Errorf("grow 4→5 moved %.2f of keyed rows (%d/%d), want ~0.20", frac, rep.Moved, keyed)
	}
	if rep.Seeded == 0 {
		t.Error("growth seeded no broadcast rows onto the fresh engine")
	}
	assertPlacement(t, "after grow", router)
}

// TestReshardAbort cancels a migration mid-copy and asserts the rollback:
// same epoch, same shard count, exact placement under the old ring, and
// oracle-equal answers.
func TestReshardAbort(t *testing.T) {
	eng, router, d := buildPair(t, "AIRCA", 2)
	ctx, cancel := context.WithCancel(context.Background())
	batches := 0
	router.hookMigBatch = func() {
		batches++
		if batches == 3 {
			cancel()
		}
	}
	_, err := router.Reshard(ctx, 4)
	if err == nil {
		t.Fatal("cancelled Reshard returned nil error")
	}
	router.hookMigBatch = nil
	if got := router.NumShards(); got != 2 {
		t.Fatalf("NumShards after abort = %d, want 2", got)
	}
	if got := router.RingEpoch(); got != 1 { // unchanged from New's initial epoch
		t.Fatalf("abort moved the epoch to %d", got)
	}
	if status := router.RingStatus(); status.Migration != nil {
		t.Fatalf("migration still visible after abort: %+v", status.Migration)
	}
	assertPlacement(t, "after abort", router)
	assertDifferential(t, "after abort", eng, router, d)
	// The cluster must accept a fresh Reshard after an abort.
	if _, err := router.Reshard(context.Background(), 3); err != nil {
		t.Fatalf("reshard after abort: %v", err)
	}
	assertPlacement(t, "after retry", router)
	assertDifferential(t, "after retry", eng, router, d)
}

// TestReshardValidation covers the argument and concurrency guards.
func TestReshardValidation(t *testing.T) {
	_, router, _ := buildPair(t, "MCBM", 2)
	if _, err := router.Reshard(context.Background(), 0); err == nil {
		t.Error("Reshard(0) did not fail")
	}
	rep, err := router.Reshard(context.Background(), 2)
	if err != nil || rep.Moved != 0 {
		t.Errorf("same-size reshard: rep=%+v err=%v", rep, err)
	}
	// Hold a migration open and assert overlap is refused.
	hold := make(chan struct{})
	held := make(chan struct{})
	once := false
	router.hookMigBatch = func() {
		if !once {
			once = true
			close(held)
			<-hold
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := router.Reshard(context.Background(), 3)
		done <- err
	}()
	<-held
	if _, err := router.Reshard(context.Background(), 4); err != ErrReshardInProgress {
		t.Errorf("overlapping reshard: err=%v, want ErrReshardInProgress", err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("held reshard failed: %v", err)
	}
	router.hookMigBatch = nil
	if got := router.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d after reshard to 3", got)
	}
}

// TestReshardKeepsCachedPlans asserts the serving-layer invariant across
// a membership change: a plan cached before Reshard keeps serving after
// it (same fingerprint, no recompile) on surviving engines, and a repeat
// query still sees every row.
func TestReshardKeepsCachedPlans(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	q, err := router.Parse(`q(airline) :- ontime(f, 42, d, airline, m, delay)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	want, _, err := router.Execute(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.Reshard(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	got, rep, err := router.Execute(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("keyed answer changed across reshard: %d vs %d rows", want.Len(), got.Len())
	}
	// The key 42 may now live on a different shard (cold cache there), but
	// if it stayed put the old plan must still be serving.
	owner := router.ownerOf(value.NewInt(42))
	_ = rep
	if owner < 2 && !rep.CacheHit {
		t.Errorf("key stayed on surviving shard %d but the cached plan was recompiled", owner)
	}
	// A second repeat must hit wherever it lives now.
	_, rep2, err := router.Execute(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.CacheHit {
		t.Error("repeat query after reshard missed the plan cache")
	}
}

// TestReshardWritesDuringMigration drives writes through every migration
// phase via the batch hook and asserts none are lost and no deleted
// tuple survives anywhere.
func TestReshardWritesDuringMigration(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	fresh := func(i int64) value.Tuple {
		return value.Tuple{value.NewInt(900000 + i), value.NewInt(i), value.NewInt(12),
			value.NewInt(7), value.NewInt(1), value.NewInt(30)}
	}
	// A broadcast-relation tuple deleted mid-migration must not be
	// resurrected by the seeding loop from a stale anchor probe — the
	// anchor commits broadcast writes synchronously, so the stripe-locked
	// presence probe is exact.
	repFresh := func(i int64) value.Tuple {
		return value.Tuple{value.NewInt(9100 + i), value.NewStr("Mig Air"), value.NewInt(1)}
	}
	// Tuples inserted then deleted mid-migration must be gone everywhere;
	// tuples inserted and kept must be exactly at their new owner.
	var step int64
	router.hookMigBatch = func() {
		i := step
		step++
		keep := fresh(2*i + 1)
		tomb := fresh(2 * i)
		if _, err := router.Insert("ontime", keep); err != nil {
			t.Error(err)
		}
		if _, err := router.Insert("ontime", tomb); err != nil {
			t.Error(err)
		}
		if _, err := router.Delete("ontime", tomb); err != nil {
			t.Error(err)
		}
		if _, err := router.Insert("carrier", repFresh(i)); err != nil {
			t.Error(err)
		}
		if _, err := router.Delete("carrier", repFresh(i)); err != nil {
			t.Error(err)
		}
	}
	if _, err := router.Reshard(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	router.hookMigBatch = nil
	if step == 0 {
		t.Fatal("migration hook never ran")
	}
	assertPlacement(t, "after migration writes", router)
	for i := int64(0); i < step; i++ {
		keep, tomb := fresh(2*i+1), fresh(2*i)
		owner := router.ownerOf(keep[1])
		if ok, _ := router.state.Load().members[owner].eng.DB().Has("ontime", keep); !ok {
			t.Fatalf("kept tuple %d missing from its owner shard", i)
		}
		for s, m := range router.state.Load().members {
			if ok, _ := m.eng.DB().Has("ontime", tomb); ok {
				t.Errorf("deleted tuple %d survives on shard %d", i, s)
			}
			if ok, _ := m.eng.DB().Has("carrier", repFresh(i)); ok {
				t.Errorf("deleted broadcast tuple %d resurrected on shard %d", i, s)
			}
		}
	}
}

// TestDeleteVerdictDuringCleanup pins the write-verdict source while the
// post-flip sweep runs: a delete of a live (new-owner-held) tuple whose
// old-owner copy the sweep has already removed must still report
// changed=true — the verdict comes from the owner under the readers'
// ring, not from a shard the migration has drained.
func TestDeleteVerdictDuringCleanup(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	checked := false
	router.hookMigBatch = func() {
		mig := router.mig.Load()
		if checked || mig == nil || mig.phase.Load() != phaseCleanup {
			return
		}
		// Find a moved row the sweep has already taken from its old owner
		// but that is still live at its new owner. Candidate rows come from
		// the new members' slices — the union over them covers the keyed
		// relation.
		for rel, pos := range router.part.Load().keyPos {
			for _, src := range mig.newMembers {
				rows, err := src.eng.DB().Rows(rel)
				if err != nil {
					continue
				}
				for _, tt := range rows {
					oldM := mig.oldMembers[mig.oldRing.OwnerOf(tt[pos])]
					newM := mig.newMembers[mig.newRing.OwnerOf(tt[pos])]
					if oldM == newM {
						continue
					}
					hasOld, _ := oldM.eng.DB().Has(rel, tt)
					hasNew, _ := newM.eng.DB().Has(rel, tt)
					if hasOld || !hasNew {
						continue
					}
					checked = true
					ch, err := router.Delete(rel, tt)
					if err != nil {
						t.Errorf("delete during cleanup: %v", err)
						return
					}
					if !ch {
						t.Errorf("delete of a live %s tuple during cleanup reported changed=false", rel)
					}
					return
				}
			}
		}
	}
	if _, err := router.Reshard(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	router.hookMigBatch = nil
	if !checked {
		t.Skip("sweep produced no observable old-owner gap; scenario not exercised this run")
	}
	assertPlacement(t, "after cleanup-phase delete", router)
}

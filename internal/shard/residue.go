// Distributed residue execution: evaluating queries whose shape does not
// distribute as a whole, without any engine that holds a full copy of the
// database. The router decomposes the normalized query by the same
// per-subtree classification routing uses (dist in route.go):
//
//   - a complete subtree (only broadcast relations below) is shipped to
//     one member, picked by structural hash for plan/scan affinity;
//   - a partitioned subtree (distributes over the sharding) is shipped
//     to every member concurrently on the bounded worker pools and the
//     fragments are unioned — the scatter/gather merge, reused at
//     subtree granularity;
//   - the operators above the shipped subtrees — the residue proper —
//     run router-side: selections filter, projections project, unions
//     and differences combine by set semantics, and a non-co-located
//     join runs as a semi-join reduction followed by a hash shuffle over
//     the member pools (shuffle.go).
//
// Subtrees are evaluated through core.Engine.EvalSubtree (conventional
// evaluation), whose column labels are derived deterministically from the
// subtree alone — so fragments of the same subtree computed on different
// shards union positionally, exactly like whole-query scatter/gather.
//
// # Soundness of early key filtering
//
// The shuffle joins two subtree results only on their linked equality
// classes and drops pairs with mismatched link values before the parent
// selection runs. This is sound: link classes between two product
// branches arise only from EqAttr chains, and every chain edge is a
// selection predicate that is an ancestor of both endpoint occurrences —
// normalization gives occurrences globally unique names and validates
// predicate scope, so an edge's selection necessarily dominates both
// sides it equates. Each edge is therefore enforced either inside a
// shipped subtree (the subtree's own selections run within conventional
// evaluation) or at a dominating router-side selection above the product;
// dropping pairs the chain already condemns can never change the final
// answer. Scope validation also means occurrences under a Diff or Union
// right operand are invisible above it, so every chain edge crossing into
// such a subtree is enforced before its output row set is formed — early
// filtering stays exact even under difference ancestors.
//
// # Consistency
//
// The executor runs under the router's read fence (Execute holds rs
// shared) with one ring state and one placement state captured for the
// whole query, and Execute fences the apply-queue lanes of every
// broadcast relation the query reads before evaluation starts. Both
// migration protocols (rebalance.go, repartition.go) drain readers after
// their flips and before their sweeps, so every member set the executor
// unions over holds a complete — possibly surplus, never deficient —
// cover of each subtree's data, and set-union merging makes surplus
// copies harmless.
package shard

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ra"
)

// execResidue answers a query routed to the distributed residue executor.
// The report mirrors a single engine's: the routing anchor analyzes the
// query once (coverage verdicts are data-independent, so any member's
// verdict is the cluster's), uncovered queries fail with
// core.ErrNotCovered exactly like a single engine unless the baseline
// fallback is on, and the stats aggregate the work of every shipped
// subtree.
func (r *Router) execResidue(norm ra.Query, fp string, opts core.Options, st *ringState, ps *partState) (*exec.Table, *core.Report, error) {
	start := time.Now()
	rep, err := st.members[0].eng.Analyze(norm, fp, opts)
	if err != nil {
		return nil, nil, err
	}
	if !rep.Covered && !opts.FallbackToBaseline {
		return nil, rep, core.ErrNotCovered
	}
	re := &residueEval{r: r, st: st, ps: ps, cl: collectClasses(norm)}
	out, _, err := re.eval(norm)
	if err != nil {
		return nil, nil, err
	}
	rep.Stats = re.stats
	rep.Stats.Duration = time.Since(start)
	return out, rep, nil
}

// residueEval is the per-query state of one residue execution: the
// captured routing views, the query's equality classes, and the
// accumulated access stats of every shipped subtree.
type residueEval struct {
	r  *Router
	st *ringState
	ps *partState
	cl *classes

	mu    sync.Mutex
	stats exec.Stats
}

// addStats folds one shipped subtree's access counters into the query's.
func (re *residueEval) addStats(s exec.Stats) {
	re.mu.Lock()
	re.stats.Accessed += s.Accessed
	re.stats.Fetched += s.Fetched
	re.stats.Scanned += s.Scanned
	re.mu.Unlock()
}

// eval evaluates one subtree, shipping it whole when its classification
// allows and decomposing it otherwise. It returns the result table and
// the attribute scope positionally labeling its columns.
func (re *residueEval) eval(q ra.Query) (*exec.Table, []ra.Attr, error) {
	switch re.r.dist(q, re.cl, re.st.ring, re.ps) {
	case stComplete:
		// Any member holds all data below q; pick by structural hash so
		// repeats reuse the same member's caches.
		m := re.st.members[int(structHash(q)%uint64(len(re.st.members)))]
		return re.onMember(m, q)
	case stPartitioned:
		return re.scatterEval(q)
	}
	switch t := q.(type) {
	case *ra.Select:
		if p, ok := t.In.(*ra.Product); ok {
			return re.selectOverProduct(t.Preds, p)
		}
		in, ia, err := re.eval(t.In)
		if err != nil {
			return nil, nil, err
		}
		out, err := exec.FilterTable(in, ia, t.Preds)
		if err != nil {
			return nil, nil, err
		}
		return out, ia, nil
	case *ra.Project:
		in, ia, err := re.eval(t.In)
		if err != nil {
			return nil, nil, err
		}
		pos := make([]int, len(t.Attrs))
		cols := make([]string, len(t.Attrs))
		for i, a := range t.Attrs {
			p := exec.AttrIndex(ia, a)
			if p < 0 {
				return nil, nil, fmt.Errorf("shard: residue projection attribute %s out of scope", a)
			}
			pos[i] = p
			cols[i] = a.String()
		}
		return exec.ProjectTable(in, pos, cols), t.Attrs, nil
	case *ra.Union:
		l, la, err := re.eval(t.L)
		if err != nil {
			return nil, nil, err
		}
		rt, _, err := re.eval(t.R)
		if err != nil {
			return nil, nil, err
		}
		return exec.UnionTables(l.Cols, l, rt), la, nil
	case *ra.Diff:
		l, la, err := re.eval(t.L)
		if err != nil {
			return nil, nil, err
		}
		rt, _, err := re.eval(t.R)
		if err != nil {
			return nil, nil, err
		}
		return exec.DiffTables(l, rt), la, nil
	case *ra.Product:
		return re.joinProduct(t)
	default:
		return nil, nil, fmt.Errorf("shard: residue executor cannot evaluate %T", q)
	}
}

// selectOverProduct pushes a residual selection's predicates into the
// product branch whose scope covers them before either branch is
// evaluated. Without the pushdown a constant-bound residue join would
// materialize the full cross product router-side and only then filter —
// quadratic in the branch sizes; with it, each shipped branch filters on
// the members' indices first and the product sees only surviving rows. A
// predicate moves only when every attribute it references lies in one
// branch's scope, so the conjunction commutes with the product and the
// satisfying row set is unchanged; cross-branch predicates stay above the
// join, where joinProduct additionally pre-filters on the linked equality
// classes.
func (re *residueEval) selectOverProduct(preds []ra.Pred, p *ra.Product) (*exec.Table, []ra.Attr, error) {
	lscope, err := ra.OutAttrs(p.L, re.r.schema)
	if err != nil {
		return nil, nil, err
	}
	rscope, err := ra.OutAttrs(p.R, re.r.schema)
	if err != nil {
		return nil, nil, err
	}
	inScope := func(pr ra.Pred, scope []ra.Attr) bool {
		switch t := pr.(type) {
		case ra.EqConst:
			return exec.AttrIndex(scope, t.A) >= 0
		case ra.EqAttr:
			return exec.AttrIndex(scope, t.L) >= 0 && exec.AttrIndex(scope, t.R) >= 0
		}
		return false
	}
	var lp, rp, rest []ra.Pred
	for _, pr := range preds {
		switch {
		case inScope(pr, lscope):
			lp = append(lp, pr)
		case inScope(pr, rscope):
			rp = append(rp, pr)
		default:
			rest = append(rest, pr)
		}
	}
	join := p
	if len(lp) > 0 || len(rp) > 0 {
		nl, nr := p.L, p.R
		if len(lp) > 0 {
			nl = &ra.Select{In: nl, Preds: lp}
		}
		if len(rp) > 0 {
			nr = &ra.Select{In: nr, Preds: rp}
		}
		join = &ra.Product{L: nl, R: nr}
	}
	out, attrs, err := re.eval(join)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) == 0 {
		return out, attrs, nil
	}
	filtered, err := exec.FilterTable(out, attrs, rest)
	if err != nil {
		return nil, nil, err
	}
	return filtered, attrs, nil
}

// onMember ships subtree q to one member and folds its stats in.
func (re *residueEval) onMember(m *member, q ra.Query) (*exec.Table, []ra.Attr, error) {
	m.queries.Add(1)
	t, attrs, s, err := m.eng.EvalSubtree(q)
	if err != nil {
		return nil, nil, err
	}
	re.addStats(s)
	return t, attrs, nil
}

// scatterEval ships subtree q to every member concurrently on the
// bounded worker pools and unions the fragments positionally — the
// scatter/gather merge at subtree granularity. Column labels are
// deterministic per subtree, so the fragments agree on layout; set-union
// deduplication makes any surplus mid-migration copies harmless.
func (re *residueEval) scatterEval(q ra.Query) (*exec.Table, []ra.Attr, error) {
	members := re.st.members
	if len(members) == 1 {
		return re.onMember(members[0], q)
	}
	tables := make([]*exec.Table, len(members))
	attrs := make([][]ra.Attr, len(members))
	stats := make([]exec.Stats, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i := range members {
		i := i
		wg.Add(1)
		members[i].pool.submit(func() {
			defer wg.Done()
			members[i].queries.Add(1)
			tables[i], attrs[i], stats[i], errs[i] = members[i].eng.EvalSubtree(q)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for _, s := range stats {
		re.addStats(s)
	}
	return exec.UnionTables(tables[0].Cols, tables...), attrs[0], nil
}

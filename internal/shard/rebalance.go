// Online rebalancing: Reshard grows or shrinks the cluster while queries
// and writes keep flowing, and every intermediate state answers exactly
// like a single engine. The protocol is a three-phase state machine built
// on two invariants:
//
//  1. Whichever ring the readers are currently routed by, every shard
//     holds a complete slice of the keys that ring assigns it.
//  2. A delete reaches every engine that could hold a copy of the tuple,
//     so no stale copy outlives it.
//
// Phases (writeTargets in shard.go implements the per-phase write rules):
//
//	prepare  Under the constraint lock, build the target ring and — when
//	         growing — fresh engines carrying the current access schema,
//	         synced to the cluster version. Fresh engines immediately join
//	         constraint fan-outs, so schema changes mid-migration cannot
//	         skew them.
//	copy     Publish the migration (readers stay on the old ring; writes
//	         double-apply under both rings), then stream every row whose
//	         owner differs between the rings from its old owner to its new
//	         one in stripe-locked steps: a row is copied only if it still
//	         exists at its old owner at the instant of the copy, so a
//	         concurrent delete can never be resurrected. Broadcast
//	         relations stream to fresh engines the same way, with the
//	         anchor (member 0, synchronous for every broadcast write) as
//	         the source of truth.
//	flip     Swap the ring state atomically (epoch+1). Readers move to the
//	         new ring, whose owners are complete: every moved row was
//	         either copied or double-written. Old-epoch routing decisions
//	         die with the epoch stamp.
//	cleanup  Surviving shards sweep out the rows the new ring no longer
//	         assigns them; shrunk-away engines are dropped wholesale.
//	         Inserts already go only to new owners, so the sweep converges;
//	         deletes still cover old owners, so a tuple deleted mid-sweep
//	         loses both copies.
//
// A context cancellation during copy aborts: the abort phase mirrors
// cleanup under the old ring (sweep copied rows back out of surviving
// targets, drop fresh engines) and the cluster returns to its pre-call
// state. After the flip the remaining work is bounded local cleanup, so
// Reshard always runs it to completion and cancellation no longer
// applies.
//
// Between publishing a phase change and acting on its assumptions the
// rebalancer passes a stripe barrier — acquiring and releasing every
// write stripe — so every in-flight write that loaded the previous phase
// has drained before the scan that relies on the new rules begins.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// ErrReshardInProgress is returned by Reshard when another reshard is
// still running; the cluster supports one membership change at a time.
var ErrReshardInProgress = errors.New("shard: a reshard is already in progress")

// migBatchRows is how many candidate rows a migration scan handles
// between context checks (and the test hook).
const migBatchRows = 512

// Migration phases; the write rules per phase live in writeTargets.
const (
	phaseCopy int32 = iota
	phaseCleanup
	phaseAbort
)

// phaseNames renders migration phases for RingStatus.
var phaseNames = map[int32]string{
	phaseCopy:    "copy",
	phaseCleanup: "cleanup",
	phaseAbort:   "abort",
}

// migration is the shared state of one in-flight Reshard, published on
// Router.mig for the write path and the status endpoints.
type migration struct {
	phase            atomic.Int32
	oldRing, newRing *Ring
	oldMembers       []*member
	newMembers       []*member
	// fresh are the engines created for growth (a subset of newMembers);
	// empty when shrinking.
	fresh []*member
	// moved counts keyed rows streamed between owners and seeded counts
	// replicated rows copied onto fresh engines; total is the move plan's
	// size (both kinds), estimated once when the plan is computed.
	moved, seeded, total atomic.Int64
}

// ReshardReport summarizes a completed Reshard.
type ReshardReport struct {
	// From and To are the shard counts before and after.
	From, To int
	// Moved is the number of keyed rows that changed owner — the
	// consistent-hashing minimum, about 1/max(From, To) of the keyed
	// data. Seeded is the number of replicated row copies streamed onto
	// engines created by growth (zero when shrinking).
	Moved, Seeded int64
	// Epoch is the ring epoch after the flip.
	Epoch uint64
	// Duration is the wall time of the whole operation.
	Duration time.Duration
}

// MigrationProgress describes an in-flight migration for RingStatus.
type MigrationProgress struct {
	// From and To are the shard counts the migration is moving between.
	From, To int
	// Phase is "copy", "cleanup" or "abort".
	Phase string
	// Moved counts rows streamed so far out of an estimated Total (the
	// move plan measured at start; concurrent writes can drift it).
	Moved, Total int64
}

// RingStatus is the observable placement state: the epoch and size of the
// live ring, and the in-flight migration when a Reshard is running.
type RingStatus struct {
	// Epoch is the current ring epoch (starts at 1, +1 per flip).
	Epoch uint64
	// Shards is the live partition count; Vnodes the virtual nodes per
	// shard on the ring.
	Shards, Vnodes int
	// Migration is nil when the cluster is stable.
	Migration *MigrationProgress
}

// RingStatus returns the current placement state for /stats and tools.
func (r *Router) RingStatus() RingStatus {
	st := r.state.Load()
	out := RingStatus{Epoch: st.epoch, Shards: len(st.members), Vnodes: st.ring.Vnodes()}
	if mig := r.mig.Load(); mig != nil {
		out.Migration = &MigrationProgress{
			From:  len(mig.oldMembers),
			To:    len(mig.newMembers),
			Phase: phaseNames[mig.phase.Load()],
			Moved: mig.moved.Load() + mig.seeded.Load(),
			Total: mig.total.Load(),
		}
	}
	return out
}

// Reshard changes the live shard count to targetN while queries and
// writes keep flowing, streaming only the rows whose ring owner changes
// (about |moved|/|keyed| ≈ 1/max(N, targetN) of the keyed data, the
// consistent-hashing minimum). Every query answered at any point during
// the operation is exactly the single-engine answer; tuple movement never
// bumps any engine's Version, so cached plans keep serving throughout.
//
// Reshard returns ErrReshardInProgress if another call is still running.
// Cancelling ctx during the copy phase aborts and rolls the cluster back
// to its previous state; after the internal flip the operation is
// committed and runs its bounded cleanup regardless of ctx.
func (r *Router) Reshard(ctx context.Context, targetN int) (*ReshardReport, error) {
	if targetN < 1 {
		return nil, fmt.Errorf("shard: Reshard target must be >= 1, got %d", targetN)
	}
	if !r.rmu.TryLock() {
		return nil, ErrReshardInProgress
	}
	defer r.rmu.Unlock()
	start := time.Now()
	st := r.state.Load()
	oldN := len(st.members)
	if targetN == oldN {
		return &ReshardReport{From: oldN, To: targetN, Epoch: st.epoch}, nil
	}
	// Drop materialized answers before the bulk copy: maintaining views
	// tuple-by-tuple through a whole-slice migration costs more than the
	// views are worth, and hot fingerprints re-earn them afterwards.
	r.PurgeMaterializations()
	newRing := NewRing(targetN, st.ring.Vnodes())

	// Prepare: target membership, with fresh engines for growth built and
	// published under the constraint lock so schema fan-outs include them
	// from the first possible moment.
	newMembers := make([]*member, targetN)
	copy(newMembers, st.members[:min(oldN, targetN)])
	var fresh []*member
	r.cmu.Lock()
	A := r.anchor().AccessSnapshot()
	for i := oldN; i < targetN; i++ {
		eng, err := core.NewEngine(r.schema, A, store.NewDB(r.schema))
		if err != nil {
			r.cmu.Unlock()
			return nil, err
		}
		eng.SyncVersion(r.anchor().Version())
		if r.spec.PlanCacheSize > 0 {
			eng.SetPlanCacheCapacity(r.spec.PlanCacheSize)
		}
		if cfg := r.ivmCfg.Load(); cfg != nil {
			eng.SetIVMConfig(*cfg)
		}
		m := newMember(eng)
		newMembers[i] = m
		fresh = append(fresh, m)
	}
	r.fresh = fresh
	r.cmu.Unlock()

	// Prewarm: compile the router's recently routed queries into the fresh
	// engines' plan caches before they can receive any traffic, so the
	// first post-flip queries hit warm caches instead of paying a cold
	// compile per fresh shard.
	r.prewarmFresh(fresh)

	mig := &migration{
		oldRing:    st.ring,
		newRing:    newRing,
		oldMembers: st.members,
		newMembers: newMembers,
		fresh:      fresh,
	}
	mig.total.Store(r.planSize(mig))

	// Copy: publish, drain in-flight stable-mode writes, then stream.
	r.mig.Store(mig)
	r.stripeBarrier()
	if err := r.copyPhase(ctx, mig); err != nil {
		r.abort(mig)
		return nil, err
	}

	// Flip: readers move to the new ring atomically; decisions cached
	// under the old epoch are dead on arrival. The read fence then drains
	// every query that loaded the pre-flip state — such a query may be
	// mid-gather over the old member set, and the cleanup sweep must not
	// delete moved rows out from under it (for growth they exist nowhere
	// else in that set). The stripe barrier does the same for writes.
	next := &ringState{epoch: st.epoch + 1, ring: newRing, members: newMembers}
	r.state.Store(next)
	mig.phase.Store(phaseCleanup)
	r.rs.Lock()
	r.rs.Unlock() //nolint:staticcheck // immediate unlock: the pair is a reader drain, not a critical section
	r.stripeBarrier()
	r.cleanupPhase(mig)
	r.mig.Store(nil)
	r.cmu.Lock()
	r.fresh = nil
	r.cmu.Unlock()
	// Drain the apply queue before reporting: broadcast copies enqueued
	// for engines the shrink dropped are flushed out of the lanes, and
	// callers reading any member right after a reshard (operators, tests)
	// see every write the migration raced with.
	r.aq.fenceAll()
	return &ReshardReport{
		From:     oldN,
		To:       targetN,
		Moved:    mig.moved.Load(),
		Seeded:   mig.seeded.Load(),
		Epoch:    next.epoch,
		Duration: time.Since(start),
	}, nil
}

// planSize estimates the move plan: keyed rows whose owner differs
// between the rings (read from each old member's own slice), plus
// broadcast rows to seed onto each fresh engine (read from the anchor,
// which holds every broadcast relation in full). It reads without
// charging accesses and without locks held long, so it is an estimate
// under churn — used for progress only.
func (r *Router) planSize(mig *migration) int64 {
	ps := r.part.Load()
	var total int64
	for rel, pos := range ps.keyPos {
		for _, m := range mig.oldMembers {
			rows, err := m.eng.DB().Rows(rel)
			if err != nil {
				continue
			}
			for _, t := range rows {
				if mig.oldMembers[mig.oldRing.OwnerOf(t[pos])] != mig.newMembers[mig.newRing.OwnerOf(t[pos])] {
					total++
				}
			}
		}
	}
	if len(mig.fresh) > 0 {
		anchor := mig.oldMembers[0]
		for _, rel := range r.schema.Relations() {
			if _, partitioned := ps.keyPos[rel]; partitioned {
				continue
			}
			// Rows snapshots under the store lock; Relation.Len would read
			// the live row map racily against concurrent writers.
			if rows, err := anchor.eng.DB().Rows(rel); err == nil {
				total += int64(len(rows)) * int64(len(mig.fresh))
			}
		}
	}
	return total
}

// stripeBarrier acquires and releases every write stripe, so every write
// that began under the previous migration phase has finished before the
// caller proceeds. Writers load the phase after taking their stripe, so
// any write starting after the barrier sees the new phase.
func (r *Router) stripeBarrier() {
	for i := range r.wmu {
		r.wmu[i].Lock()
		r.wmu[i].Unlock() //nolint:staticcheck // immediate unlock: the pair is a drain, not a critical section
	}
}

// migStep runs the per-batch bookkeeping of a migration scan: the test
// hook (if any) and the context check. It returns ctx.Err() when the scan
// should stop.
func (r *Router) migStep(ctx context.Context) error {
	if r.hookMigBatch != nil {
		r.hookMigBatch()
	}
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// copyPhase streams every row whose owner changes to its new owner. Rows
// are copied under their write stripe and only if still present at the
// source, so migration can never resurrect a concurrently deleted tuple;
// rows written during the phase are double-applied by writeTargets and
// need no copying.
//
// Broadcast relations seed fresh engines from the anchor, which commits
// every broadcast write synchronously — so the stripe-locked presence
// probe is always current, and no apply-queue fence is needed: a delete
// acknowledged after the snapshot has already left the anchor, fails the
// probe, and is never resurrected (the copy the queue still owes the
// other members is the queue's business, not the seeder's). Keyed rows
// move from each old owner's own slice, which is written synchronously
// always.
func (r *Router) copyPhase(ctx context.Context, mig *migration) error {
	ps := r.part.Load()
	// Seed broadcast relations onto fresh engines (growth only).
	if len(mig.fresh) > 0 {
		anchor := mig.oldMembers[0]
		for _, rel := range r.schema.Relations() {
			if _, partitioned := ps.keyPos[rel]; partitioned {
				continue
			}
			rows, err := anchor.eng.DB().Rows(rel)
			if err != nil {
				return err
			}
			for i, t := range rows {
				if i%migBatchRows == 0 {
					if err := r.migStep(ctx); err != nil {
						return err
					}
				}
				mu := &r.wmu[stripeOf(rel, t)]
				mu.Lock()
				ok, err := anchor.eng.DB().Has(rel, t)
				if err == nil && ok {
					for _, m := range mig.fresh {
						if _, err = m.eng.Insert(rel, t); err != nil {
							break
						}
					}
				}
				mu.Unlock()
				if err != nil {
					return err
				}
				if ok {
					mig.seeded.Add(int64(len(mig.fresh)))
				}
			}
		}
	}
	// Move keyed rows whose owner changed, sourcing each old owner's own
	// slice.
	for rel, pos := range ps.keyPos {
		for _, src := range mig.oldMembers {
			rows, err := src.eng.DB().Rows(rel)
			if err != nil {
				return err
			}
			for i, t := range rows {
				if i%migBatchRows == 0 {
					if err := r.migStep(ctx); err != nil {
						return err
					}
				}
				oldM := mig.oldMembers[mig.oldRing.OwnerOf(t[pos])]
				newM := mig.newMembers[mig.newRing.OwnerOf(t[pos])]
				if oldM == newM {
					continue
				}
				mu := &r.wmu[stripeOf(rel, t)]
				mu.Lock()
				ok, err := oldM.eng.DB().Has(rel, t)
				if err == nil && ok {
					_, err = newM.eng.Insert(rel, t)
				}
				mu.Unlock()
				if err != nil {
					return err
				}
				if ok {
					mig.moved.Add(1)
				}
			}
		}
	}
	return nil
}

// cleanupPhase sweeps surviving members clean of the keyed rows the new
// ring assigns elsewhere. Engines the shrink removed are simply dropped —
// they are no longer referenced by the live state or the constraint
// fan-out. The sweep runs to completion regardless of context: after the
// flip the migration is committed.
func (r *Router) cleanupPhase(mig *migration) {
	for i, m := range mig.oldMembers {
		if i >= len(mig.newMembers) || mig.newMembers[i] != m {
			continue // shrunk away: dropped wholesale
		}
		r.sweep(m, i, mig.newRing)
	}
}

// abort rolls a failed copy phase back: surviving members sweep out the
// copies the migration added (rows the OLD ring assigns elsewhere), fresh
// engines are dropped, and the cluster returns to its pre-Reshard state.
func (r *Router) abort(mig *migration) {
	mig.phase.Store(phaseAbort)
	r.stripeBarrier()
	for i, m := range mig.oldMembers {
		r.sweep(m, i, mig.oldRing)
	}
	r.mig.Store(nil)
	r.cmu.Lock()
	r.fresh = nil
	r.cmu.Unlock()
	r.aq.fenceAll()
}

// sweep deletes from member m (at ring index i) every keyed row that ring
// assigns to a different shard, one stripe-locked row at a time so it
// serializes with concurrent writes.
func (r *Router) sweep(m *member, i int, ring *Ring) {
	for rel, pos := range r.part.Load().keyPos {
		rows, err := m.eng.DB().Rows(rel)
		if err != nil {
			continue
		}
		for j, t := range rows {
			if j%migBatchRows == 0 {
				_ = r.migStep(nil)
			}
			if ring.OwnerOf(t[pos]) == i {
				continue
			}
			mu := &r.wmu[stripeOf(rel, t)]
			mu.Lock()
			_, _ = m.eng.Delete(rel, t)
			mu.Unlock()
		}
	}
}

// Routing analysis: decide, per normalized query, whether one shard can
// answer it exactly, whether scatter/gather over all shards is exact, or
// whether the query must be decomposed by the distributed residue
// executor (residue.go).
//
// The analysis is conservative — it may send a distributable query to the
// residue executor, never the reverse — and rests on two facts about hash
// partitioning. First, selection, projection, product and union all
// distribute over a disjoint partition of one input relation, so a query
// that reads at most one partitioned relation per conjunctive block can
// be evaluated on every shard independently and the answers unioned.
// Second, access constraints are anti-monotone: every shard's slice is a
// subset of the full instance, so D ⊨ A implies Dᵢ ⊨ A, and each shard's
// coverage verdict, indices and bounded plans remain valid on its slice.
// The cases that do NOT distribute as a whole are a difference whose
// right operand reads a partitioned relation (set difference does not
// distribute over a partition of its right side) and a join of two
// partitioned relations that is not on their partition keys (matching
// tuples may live on different shards); both go to the residue executor,
// which reuses the same dist classification per subtree to ship the
// distributable pieces and stitch the rest together router-side.
//
// The analysis is a pure function of the query, one ring and one
// placement assignment: decisions are cached per (ring epoch, placement
// generation), and during a migration the same routine runs against the
// incoming ring to find the double-routing target.
package shard

import (
	"repro/internal/ra"
	"repro/internal/value"
)

// routeKind is the strategy choice for one query.
type routeKind int

// Routing strategies, ordered by preference.
const (
	routeSingle routeKind = iota
	routeScatter
	routeResidue
)

// decision is the outcome of route: a strategy, the target shard for
// routeSingle, whether that target was pinned by partition-key constants
// (keyed) rather than by cache-affinity hashing, the broadcast relations
// the query reads (whose apply-queue lanes Execute fences for
// read-your-writes), and the (ring epoch, placement generation) the
// decision was computed under (stale stamps are recomputed).
type decision struct {
	kind  routeKind
	shard int
	keyed bool
	brels []string
	epoch uint64
	pgen  uint64
}

// route analyzes a normalized query against a ring over n members and a
// placement assignment, and picks the cheapest exact strategy.
func (r *Router) route(norm ra.Query, ring *Ring, n int, ps *partState) decision {
	var parts []ra.Attr // partition-key attribute of each partitioned occurrence
	var brels []string  // broadcast relations read (deduplicated)
	seenB := map[string]bool{}
	for _, occ := range ra.Relations(norm) {
		if key, ok := ps.keys[occ.Base]; ok {
			parts = append(parts, ra.Attr{Rel: occ.Name, Name: key})
		} else if !seenB[occ.Base] {
			seenB[occ.Base] = true
			brels = append(brels, occ.Base)
		}
	}
	if len(parts) == 0 {
		// Only broadcast relations: any shard holds all the data. Pick
		// one by structural hash so repeats of the same query reuse the
		// same shard's plan cache.
		return decision{kind: routeSingle, shard: int(structHash(norm) % uint64(n)), brels: brels}
	}
	cl := collectClasses(norm)
	// Covered-access fast path: every partitioned occurrence pins its
	// partition key to a constant, and all constants live on one shard.
	target := -1
	for _, key := range parts {
		c, ok := cl.constOf(key)
		if !ok {
			target = -1
			break
		}
		s := ring.OwnerOf(c)
		if target == -1 {
			target = s
		} else if s != target {
			target = -1
			break
		}
	}
	if target >= 0 {
		return decision{kind: routeSingle, shard: target, keyed: true, brels: brels}
	}
	if r.dist(norm, cl, ring, ps) != stUnsafe {
		return decision{kind: routeScatter, brels: brels}
	}
	return decision{kind: routeResidue, brels: brels}
}

// Distribution statuses of a query subtree: complete means every shard
// computes the full true result (only replicated relations below);
// partitioned means the shards' results union to the true result; unsafe
// means neither is guaranteed.
const (
	stComplete = iota
	stPartitioned
	stUnsafe
)

// dist classifies a subtree. Classes cl carry the equality atoms of the
// whole normalized query; any atom equating attributes of two occurrences
// necessarily sits in a selection dominating both (occurrence names are
// unique and scoped), so using them at a product below is sound.
func (r *Router) dist(q ra.Query, cl *classes, ring *Ring, ps *partState) int {
	switch t := q.(type) {
	case *ra.Relation:
		if _, ok := ps.keys[t.Base]; ok {
			return stPartitioned
		}
		return stComplete
	case *ra.Select:
		return r.dist(t.In, cl, ring, ps)
	case *ra.Project:
		return r.dist(t.In, cl, ring, ps)
	case *ra.Product:
		l, rr := r.dist(t.L, cl, ring, ps), r.dist(t.R, cl, ring, ps)
		if l == stUnsafe || rr == stUnsafe {
			return stUnsafe
		}
		if l == stPartitioned && rr == stPartitioned {
			// A join of two partitioned sides is exact only when every
			// matching pair is co-located: all partition keys below this
			// product must be equated (or pinned to keys of one shard).
			if !r.coLocated(t, cl, ring, ps) {
				return stUnsafe
			}
			return stPartitioned
		}
		if l == stPartitioned || rr == stPartitioned {
			return stPartitioned
		}
		return stComplete
	case *ra.Union:
		l, rr := r.dist(t.L, cl, ring, ps), r.dist(t.R, cl, ring, ps)
		if l == stUnsafe || rr == stUnsafe {
			return stUnsafe
		}
		if l == stComplete && rr == stComplete {
			return stComplete
		}
		return stPartitioned
	case *ra.Diff:
		l, rr := r.dist(t.L, cl, ring, ps), r.dist(t.R, cl, ring, ps)
		if l == stUnsafe || rr != stComplete {
			// L − R distributes over a partition of L but not of R: a row
			// surviving on one shard might be cancelled by an R-tuple
			// living on another.
			return stUnsafe
		}
		return l
	default:
		return stUnsafe
	}
}

// coLocated reports whether all partition-key attributes of partitioned
// occurrences under q are forced equal (one equality class) or pinned to
// constants hashing to one shard — either way, tuples that can join are
// on the same shard.
func (r *Router) coLocated(q ra.Query, cl *classes, ring *Ring, ps *partState) bool {
	roots := map[ra.Attr]bool{}
	var keys []ra.Attr
	for _, occ := range ra.Relations(q) {
		if key, ok := ps.keys[occ.Base]; ok {
			a := ra.Attr{Rel: occ.Name, Name: key}
			keys = append(keys, a)
			roots[cl.find(a)] = true
		}
	}
	if len(roots) <= 1 {
		return true
	}
	shard := -1
	for _, a := range keys {
		c, ok := cl.constOf(a)
		if !ok {
			return false
		}
		s := ring.OwnerOf(c)
		if shard == -1 {
			shard = s
		} else if s != shard {
			return false
		}
	}
	return true
}

// classes is a union-find over attribute occurrences with an optional
// constant per class, built from every equality atom of the query.
type classes struct {
	parent map[ra.Attr]ra.Attr
	consts map[ra.Attr]value.Value
}

// collectClasses gathers the equality atoms of every selection in norm.
// Occurrence names are globally unique after normalization, so one global
// structure is sound: an atom can only reference occurrences in its own
// scope, and scopes never alias.
func collectClasses(norm ra.Query) *classes {
	cl := &classes{parent: map[ra.Attr]ra.Attr{}, consts: map[ra.Attr]value.Value{}}
	ra.Walk(norm, func(n ra.Query) {
		sel, ok := n.(*ra.Select)
		if !ok {
			return
		}
		for _, p := range sel.Preds {
			switch t := p.(type) {
			case ra.EqAttr:
				cl.union(t.L, t.R)
			case ra.EqConst:
				cl.bind(t.A, t.C)
			}
		}
	})
	return cl
}

func (cl *classes) find(a ra.Attr) ra.Attr {
	p, ok := cl.parent[a]
	if !ok || p == a {
		return a
	}
	root := cl.find(p)
	cl.parent[a] = root
	return root
}

func (cl *classes) union(a, b ra.Attr) {
	ra_, rb := cl.find(a), cl.find(b)
	if ra_ == rb {
		return
	}
	cl.parent[ra_] = rb
	if c, ok := cl.consts[ra_]; ok {
		delete(cl.consts, ra_)
		if _, exists := cl.consts[rb]; !exists {
			cl.consts[rb] = c
		}
	}
}

func (cl *classes) bind(a ra.Attr, c value.Value) {
	root := cl.find(a)
	if _, exists := cl.consts[root]; !exists {
		cl.consts[root] = c
	}
}

// constOf returns the constant a is equated to, if any.
func (cl *classes) constOf(a ra.Attr) (value.Value, bool) {
	c, ok := cl.consts[cl.find(a)]
	return c, ok
}

// structHash digests the structure of a normalized query for shard
// affinity of unpartitioned queries: node kinds, relation bases, and
// predicate content. Collisions only co-locate two queries on a shard;
// they never affect correctness.
func structHash(q ra.Query) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	ra.Walk(q, func(n ra.Query) {
		switch t := n.(type) {
		case *ra.Relation:
			mix("R")
			mix(t.Base)
		case *ra.Select:
			mix("S")
			for _, p := range t.Preds {
				mix(p.String())
			}
		case *ra.Project:
			mix("P")
			for _, a := range t.Attrs {
				mix(a.Name)
			}
		case *ra.Product:
			mix("X")
		case *ra.Union:
			mix("U")
		case *ra.Diff:
			mix("D")
		}
	})
	return h
}

package shard

import (
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workload"
)

// durableSpec is the cluster shape the durable tests run: enough shards
// that partitioned and broadcast write fan-outs both occur.
func durableSpec() Spec { return Spec{Shards: 3} }

// durableCfg is a low-churn durable config: fsync off (the page cache
// survives in-process "crashes"), tiny segments so rolling is exercised,
// no automatic checkpoints unless a test opts in.
func durableCfg(dir string) core.DurableConfig {
	cfg := core.DurableConfig{Dir: dir, CheckpointEvery: -1}
	cfg.WAL.SegmentBytes = 16 << 10
	return cfg
}

// durableRows clones up to n rows of rel out of db for storm material.
func durableRows(t *testing.T, db *store.DB, rel string, n int) []value.Tuple {
	t.Helper()
	rows, err := db.Rows(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < n {
		n = len(rows)
	}
	out := make([]value.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].Clone()
	}
	return out
}

// assertClusterMatchesOracle runs every workload template on both
// services and requires identical tables.
func assertClusterMatchesOracle(t *testing.T, d *workload.Dataset, got, want core.Service) {
	t.Helper()
	opts := core.DefaultOptions()
	for _, tpl := range d.Templates() {
		q, err := want.Parse(tpl.Src)
		if err != nil {
			t.Fatal(err)
		}
		wt, _, err := want.Execute(q, opts)
		if err != nil {
			t.Fatalf("%s: oracle: %v", tpl.Name, err)
		}
		gt, _, err := got.Execute(q, opts)
		if err != nil {
			t.Fatalf("%s: recovered: %v", tpl.Name, err)
		}
		if !gt.Equal(wt) {
			t.Errorf("%s: recovered answer differs from oracle", tpl.Name)
		}
	}
}

// TestDurableRouterRecoversAndMatchesOracle drives a durable cluster
// through tuple churn, a batchy delete/reinsert mix, an explicit
// checkpoint mid-history and constraint churn, crashes it without Close,
// and proves both recovery paths — back into a cluster and into a single
// engine — reproduce the oracle's answers exactly.
func TestDurableRouterRecoversAndMatchesOracle(t *testing.T) {
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenDurable(d.Schema, d.Access, db, durableSpec(), durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: an in-memory single engine over an identical seed, fed the
	// same mutations.
	odb, err := d.Gen(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.NewEngine(d.Schema, d.Access, odb)
	if err != nil {
		t.Fatal(err)
	}

	// Storm material comes from the seed instance db, which OpenDurable
	// read but did not consume.
	rows := durableRows(t, db, "ontime", 60)
	for i, row := range rows {
		switch i % 3 {
		case 0:
			if _, err := r.Delete("ontime", row); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Delete("ontime", row); err != nil {
				t.Fatal(err)
			}
		case 1:
			// Delete and re-insert: recovery must preserve per-tuple order.
			if _, err := r.Delete("ontime", row); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Delete("ontime", row); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Insert("ontime", row); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Insert("ontime", row); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Checkpoint mid-history: recovery below must splice snapshot + suffix.
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, ok := r.DurabilityStats()
	if !ok || st.Checkpoints < 2 { // boot checkpoint + explicit
		t.Fatalf("expected boot+explicit checkpoints, stats %+v ok=%v", st, ok)
	}
	// Writes past the checkpoint, on a broadcast relation too (fan-out
	// write path through the apply lane).
	planes := durableRows(t, db, "plane", 10)
	for _, row := range planes {
		if _, err := r.Delete("plane", row); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.Delete("plane", row); err != nil {
			t.Fatal(err)
		}
	}
	// Constraint churn: add a fresh constraint, remove an existing one.
	extra := access.Constraint{Rel: "ontime", X: []string{"airline"}, Y: []string{"origin"}, N: 150}
	drop := access.Constraint{Rel: "delaycause", X: []string{"fid"}, Y: []string{"cause"}, N: 5}
	if err := r.AddConstraints(extra); err != nil {
		t.Fatal(err)
	}
	if err := oracle.AddConstraints(extra); err != nil {
		t.Fatal(err)
	}
	if !r.RemoveConstraint(drop) || !oracle.RemoveConstraint(drop) {
		t.Fatal("constraint to remove was not installed")
	}
	if err := r.Health(); err != nil {
		t.Fatalf("durable cluster degraded: %v", err)
	}
	// Abrupt stop: no Close.

	rec, err := OpenDurable(d.Schema, nil, nil, durableSpec(), durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.DBSize() != oracle.DBSize() {
		t.Fatalf("recovered |D| = %d, oracle %d", rec.DBSize(), oracle.DBSize())
	}
	wantCons := oracle.AccessSnapshot().Constraints
	gotCons := rec.AccessSnapshot().Constraints
	if len(gotCons) != len(wantCons) {
		t.Fatalf("recovered ‖A‖ = %d, oracle %d", len(gotCons), len(wantCons))
	}
	wantKeys := map[string]bool{}
	for _, c := range wantCons {
		wantKeys[c.Key()] = true
	}
	for _, c := range gotCons {
		if !wantKeys[c.Key()] {
			t.Errorf("recovered unexpected constraint %v", c)
		}
	}
	assertClusterMatchesOracle(t, d, rec, oracle)

	// The same directory recovers into a single engine with identical
	// answers: the log records ops in per-tuple stripe order, so cluster
	// and single-engine recovery are interchangeable.
	single, err := core.OpenDurable(d.Schema, nil, nil, durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.DBSize() != oracle.DBSize() {
		t.Fatalf("single-engine recovery |D| = %d, oracle %d", single.DBSize(), oracle.DBSize())
	}
	assertClusterMatchesOracle(t, d, single, oracle)
}

func TestDurableRouterAutoCheckpoint(t *testing.T) {
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	size := db.Size()
	cfg := durableCfg(dir)
	cfg.CheckpointEvery = 40
	r, err := OpenDurable(d.Schema, d.Access, db, durableSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := durableRows(t, db, "ontime", 100)
	for _, row := range rows {
		if _, err := r.Delete("ontime", row); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Insert("ontime", row); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint runs on a background goroutine; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := r.DurabilityStats()
		if st.Checkpoints >= 2 { // boot checkpoint + at least one automatic
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 200 writes (cadence 40): %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(d.Schema, nil, nil, durableSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.DBSize() != size {
		t.Fatalf("recovered |D| = %d, want %d", rec.DBSize(), size)
	}
}

// TestDurableRouterWriteAfterCloseDegrades proves the health surface: a
// write that can no longer reach the log is rejected, and the first
// failure is retained so the serving layer reports degraded from then on.
func TestDurableRouterWriteAfterCloseDegrades(t *testing.T) {
	d := workload.Airca()
	dir := t.TempDir()
	db, err := d.Gen(0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenDurable(d.Schema, d.Access, db, durableSpec(), durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Health(); err != nil {
		t.Fatalf("fresh durable cluster degraded: %v", err)
	}
	rows := durableRows(t, db, "ontime", 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Delete("ontime", rows[0]); err == nil {
		t.Fatal("write after Close was acknowledged")
	}
	if err := r.Health(); err == nil {
		t.Fatal("health still reports ok after a lost write")
	}
}

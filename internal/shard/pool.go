// Bounded per-shard execution worker pools for scatter/gather. Before
// them, every gather spawned one goroutine per member per request, so the
// number of live execution goroutines scaled as requests × shards — under
// a loaded front end (MaxInFlight defaults to 4×GOMAXPROCS) that is an
// unbounded-feeling spawn storm of mostly-runnable goroutines thrashing
// the scheduler. Each member now owns a small pool bounded by GOMAXPROCS:
// gather submits its per-shard execution as a task, total execution
// goroutines are capped at shards × GOMAXPROCS, and a submit that finds
// the pool's queue full runs the task on the caller's goroutine — built-in
// backpressure that also makes deadlock impossible (a gather can always
// finish with no pool capacity at all).
package shard

import (
	"runtime"
	"sync/atomic"
)

// gatherWorkers is the per-member worker bound. One shard cannot use more
// parallelism than the host offers, and gather tasks are CPU-bound plan
// executions, so GOMAXPROCS is the natural ceiling.
func gatherWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 2 {
		return n
	}
	return 2
}

// workerPool runs tasks on at most limit goroutines. Workers are
// transient: one is spawned when a task arrives and none is running under
// the limit, and it exits as soon as the queue is empty — an idle or
// dropped member (after a shrink Reshard) holds no resident goroutines.
type workerPool struct {
	tasks  chan func()
	active atomic.Int32
	limit  int32
}

// newWorkerPool returns a pool bounded at limit workers with a task queue
// of 4×limit.
func newWorkerPool(limit int) *workerPool {
	if limit < 1 {
		limit = 1
	}
	return &workerPool{tasks: make(chan func(), 4*limit), limit: int32(limit)}
}

// submit schedules fn on a pool worker; when the queue is full it runs fn
// on the caller's goroutine instead, so submit never blocks and the
// submitting gather always makes progress.
func (p *workerPool) submit(fn func()) {
	select {
	case p.tasks <- fn:
		p.maybeSpawn()
	default:
		fn()
	}
}

// maybeSpawn starts a worker when under the limit.
func (p *workerPool) maybeSpawn() {
	for {
		n := p.active.Load()
		if n >= p.limit {
			return
		}
		if p.active.CompareAndSwap(n, n+1) {
			go p.work()
			return
		}
	}
}

// work drains the queue and exits when it is empty. The recheck after the
// decrement closes the race with a submit that saw the pool at its limit
// an instant before this worker left.
func (p *workerPool) work() {
	for {
		select {
		case fn := <-p.tasks:
			fn()
		default:
			p.active.Add(-1)
			if len(p.tasks) > 0 {
				p.maybeSpawn()
			}
			return
		}
	}
}

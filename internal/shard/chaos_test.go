package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/ivm"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

// The differential chaos harness: seeded goroutines fire queries, tuple
// writes and constraint toggles at a sharded router while Reshard(2→4)
// and Reshard(4→2) run underneath, and every checked query answer is
// asserted equal to a single-engine oracle — before, during and after
// each move. Run under -race this is the package's strongest evidence
// that online rebalancing never serves a wrong answer.
//
// Determinism strategy: a world lock (RWMutex) makes the comparisons
// meaningful without serializing the chaos. Writers and the constraint
// toggler apply each operation to BOTH the router and the oracle while
// holding the lock shared, so any number run concurrently; the checker
// takes it exclusively, which quiesces mutations (both sides have applied
// identical operation sets) but deliberately NOT the migration — row
// movement keeps running through every check, which is exactly what the
// test is probing. Writers touch disjoint tuple sets so their
// router/oracle pairs cannot interleave into divergent states.

// chaosWorld pairs the router with its single-engine oracle.
type chaosWorld struct {
	t      *testing.T
	d      *workload.Dataset
	oracle *core.Engine
	router *Router
	lock   sync.RWMutex
	parsed []ra.Query
	names  []string
}

func newChaosWorld(t *testing.T, shards int) *chaosWorld {
	t.Helper()
	eng, router, d := buildPair(t, "AIRCA", shards)
	// Materialization asymmetry: the router's members admit a view on the
	// very first plan-cache hit, the oracle never materializes — so every
	// check compares delta-maintained answers against freshly executed
	// ones, and a wrong delta rule diverges immediately.
	eng.SetIVMConfig(ivm.Config{})
	router.SetIVMConfig(ivm.Config{Budget: 32, MinHits: 1, MinScore: 0, MaxViewRows: 1 << 18})
	w := &chaosWorld{t: t, d: d, oracle: eng, router: router}
	for _, src := range []string{
		`q(airline) :- ontime(f, 42, d, airline, m, delay)`,                                                                                           // keyed fast path (double-routed mid-move)
		`q(origin, dest) :- ontime(f, origin, dest, 3, m, delay)`,                                                                                     // scatter, uncovered
		`q(city) :- ontime(123, origin, dest, al, m, delay), airport(origin, city, st)`,                                                               // scatter, covered
		`q(origin, dest, cause) :- ontime(77, origin, dest, al, m, delay), delaycause(77, cause, mins)`,                                               // residue: cross-keyed product, no link (nested loop)
		`q(origin, cause) :- ontime(f, origin, dest, al, m, delay), delaycause(f, cause, mins)`,                                                       // residue: semi-join + shuffle on the fid link
		`(q(origin) :- ontime(f, origin, dest, al, m, delay)) EXCEPT (q(origin) :- delaycause(f2, origin, mins))`,                                     // residue: difference over a partitioned right operand
		`q(cname) :- carrier(3, cname, country)`,                                                                                                      // broadcast-only single shard
		`(q(airline) :- ontime(f, 42, d, airline, m, delay)) EXCEPT (q(airline) :- carrier(airline, nm, 0), ontime(f2, 42, d2, airline, m2, delay2))`, // non-monotone keyed (never double-routed)
		`q(dest) :- ontime(f, 42, dest, 7, m, delay)`,                                                                                                 // IVM probe: hot keyed single-shard, maintained under the ontime churn
		`q(country) :- carrier(9500, cname, country)`,                                                                                                 // IVM probe: broadcast-only, maintained through the apply queue's batched lane
		`(q(cname) :- carrier(al, cname, country)) EXCEPT (q(cname) :- carrier(al2, cname, 2))`,                                                       // IVM probe: Diff-shaped over the churned broadcast relation (membership flips)
	} {
		q, err := router.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		w.parsed = append(w.parsed, q)
		w.names = append(w.names, src)
	}
	return w
}

// check runs every probe query on both sides under the exclusive lock and
// fails on any divergence. Mutations are quiesced; migration is not.
func (w *chaosWorld) check(label string) {
	w.t.Helper()
	w.lock.Lock()
	defer w.lock.Unlock()
	for i, q := range w.parsed {
		want, wantRep, err := w.oracle.Execute(q, core.DefaultOptions())
		if err != nil {
			w.t.Fatalf("%s: oracle %s: %v", label, w.names[i], err)
		}
		got, gotRep, err := w.router.Execute(q, core.DefaultOptions())
		if err != nil {
			w.t.Fatalf("%s: sharded %s: %v", label, w.names[i], err)
		}
		if !want.Equal(got) {
			w.t.Errorf("%s: %s: %d rows sharded vs %d oracle", label, w.names[i], got.Len(), want.Len())
		}
		if wantRep.Covered != gotRep.Covered || wantRep.Bounded != gotRep.Bounded {
			w.t.Errorf("%s: %s: verdict covered %v/%v bounded %v/%v", label, w.names[i],
				gotRep.Covered, wantRep.Covered, gotRep.Bounded, wantRep.Bounded)
		}
	}
}

// applyBoth applies one tuple write to router and oracle under the shared
// lock.
func (w *chaosWorld) applyBoth(del bool, rel string, t value.Tuple) error {
	w.lock.RLock()
	defer w.lock.RUnlock()
	if del {
		if _, err := w.router.Delete(rel, t); err != nil {
			return err
		}
		_, err := w.oracle.Delete(rel, t)
		return err
	}
	if _, err := w.router.Insert(rel, t); err != nil {
		return err
	}
	_, err := w.oracle.Insert(rel, t)
	return err
}

// TestChaosReshardDifferential is the acceptance run: queries, batch
// writes and constraint toggles race two live reshards, with oracle
// checks before, during and after each move, and a no-toggle phase
// proving tuple movement alone never bumps Version.
func TestChaosReshardDifferential(t *testing.T) {
	w := newChaosWorld(t, 2)
	router := w.router

	// Throttle migration batches so moves stay in flight long enough for
	// mid-move checks, and hand the main goroutine a token per batch.
	tokens := make(chan struct{}, 1)
	router.hookMigBatch = func() {
		select {
		case tokens <- struct{}{}:
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)

	// Writers: disjoint fresh-tuple ranges plus disjoint samples of live
	// rows, each op applied to both sides. Samples come from the oracle,
	// which holds the identical full instance.
	rows, err := w.oracle.DB().Rows("ontime")
	if err != nil {
		t.Fatal(err)
	}
	const writers = 3
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			base := int64(800000 + 10000*wid)
			for n := int64(0); !stop.Load(); n++ {
				fresh := value.Tuple{value.NewInt(base + n%64), value.NewInt(n % 97), value.NewInt(12),
					value.NewInt(7), value.NewInt(1), value.NewInt(30)}
				sample := rows[(wid*977+int(n))%len(rows)]
				for _, op := range []struct {
					del bool
					t   value.Tuple
				}{{false, fresh}, {true, sample}, {false, sample}, {true, fresh}} {
					if err := w.applyBoth(op.del, "ontime", op.t); err != nil {
						errCh <- fmt.Errorf("writer %d: %w", wid, err)
						return
					}
				}
			}
		}(i)
	}

	// Broadcast writer: churns a fresh carrier range so the asynchronous
	// apply lane (anchor sync, other members queued) runs hot through both
	// reshards — the probes reading carrier fence it on every check.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := int64(0); !stop.Load(); n++ {
			fresh := value.Tuple{value.NewInt(9500 + n%32), value.NewInt(901), value.NewInt(2)}
			if err := w.applyBoth(false, "carrier", fresh); err != nil {
				errCh <- fmt.Errorf("broadcast writer: %w", err)
				return
			}
			if err := w.applyBoth(true, "carrier", fresh); err != nil {
				errCh <- fmt.Errorf("broadcast writer: %w", err)
				return
			}
		}
	}()

	// Constraint toggler: add/remove the same constraint on both sides
	// within one shared-lock hold, so checks always see identical access
	// schemas.
	var toggling atomic.Bool
	toggling.Store(true)
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := access.Constraint{Rel: "plane", X: []string{"model"}, Y: []string{"tailnum"}, N: 5000}
		for !stop.Load() {
			w.lock.RLock()
			// Re-check under the lock: once the main goroutine has parked
			// the toggler and run an exclusive-lock check, no new pair may
			// start, or it would race the no-bump version snapshot.
			if !toggling.Load() {
				w.lock.RUnlock()
				time.Sleep(time.Millisecond)
				continue
			}
			err1 := router.AddConstraints(c)
			err2 := w.oracle.AddConstraints(c)
			router.RemoveConstraint(c)
			w.oracle.RemoveConstraint(c)
			w.lock.RUnlock()
			if err1 != nil || err2 != nil {
				errCh <- fmt.Errorf("toggle: router %v, oracle %v", err1, err2)
				return
			}
		}
	}()

	// reshard drives one move while the main goroutine interleaves
	// mid-move checks every time a migration batch completes.
	reshard := func(target int, label string) int {
		done := make(chan error, 1)
		go func() {
			_, err := router.Reshard(context.Background(), target)
			done <- err
		}()
		mid := 0
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return mid
			case <-tokens:
				if router.RingStatus().Migration != nil {
					w.check("during " + label)
					mid++
				}
			}
		}
	}

	w.check("before 2→4")
	mid1 := reshard(4, "2→4")
	w.check("after 2→4")
	if got := router.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d after grow", got)
	}

	// Phase two runs with the toggler parked: any Version movement now
	// could only come from tuple movement, which must never cause one.
	// The exclusive-lock check drains any in-flight toggle pair before
	// the version snapshot.
	toggling.Store(false)
	w.check("before 4→2")
	v0 := router.Version()
	mid2 := reshard(2, "4→2")
	w.check("after 4→2")
	if v1 := router.Version(); v1 != v0 {
		t.Errorf("tuple movement bumped Version %d → %d during 4→2", v0, v1)
	}

	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if mid1 == 0 || mid2 == 0 {
		t.Errorf("no mid-migration checks ran (grow %d, shrink %d) — harness lost its 'during' coverage", mid1, mid2)
	}
	stats := router.PerShardStats()
	for _, st := range stats[1:] {
		if st.Version != stats[0].Version {
			t.Errorf("version skew after chaos: %s at %d, %s at %d",
				stats[0].Label, stats[0].Version, st.Label, st.Version)
		}
	}
	// The IVM probes must actually have exercised maintenance: views
	// admitted on member engines, delta rules folded the chaos writes in.
	// (Reshards purge materializations, so the checks around each move
	// re-admit; the counters are cumulative and survive the purges.)
	if ivmSt := router.IVMStats(); ivmSt.Admitted == 0 || ivmSt.DeltaApplies == 0 {
		t.Errorf("IVM probes never exercised maintenance: admitted %d, delta applies %d, hits %d",
			ivmSt.Admitted, ivmSt.DeltaApplies, ivmSt.Hits)
	}
	assertPlacement(t, "after chaos", router)
}

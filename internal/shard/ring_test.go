package shard

import (
	"testing"

	"repro/internal/value"
)

// ringKeys synthesizes n distinct partition-key values shaped like the
// workloads' keys (small dense integers).
func ringKeys(n int) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		out[i] = value.NewInt(int64(i))
	}
	return out
}

// TestRingDistribution is the load-balance property test: hashing a dense
// keyed-row population onto the ring must land within ±15% of uniform on
// every shard at N ∈ {2, 4, 8}.
func TestRingDistribution(t *testing.T) {
	const keys = 40000
	vals := ringKeys(keys)
	for _, n := range []int{2, 4, 8} {
		ring := NewRing(n, DefaultVnodes)
		counts := make([]int, n)
		for _, v := range vals {
			counts[ring.OwnerOf(v)]++
		}
		uniform := float64(keys) / float64(n)
		for s, c := range counts {
			dev := (float64(c) - uniform) / uniform
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("N=%d shard %d holds %d keys, %.1f%% off uniform (limit ±15%%); counts=%v",
					n, s, c, 100*dev, counts)
			}
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing law the rebalancer's
// cost model rests on: growing N → N+1 must move at most ~1/(N+1)+ε of the
// keyed rows, and every key that does move must move TO the new shard —
// growth never shuffles keys between surviving shards.
func TestRingMinimalMovement(t *testing.T) {
	const keys = 40000
	const eps = 0.05
	vals := ringKeys(keys)
	for n := 2; n <= 8; n++ {
		before := NewRing(n, DefaultVnodes)
		after := NewRing(n+1, DefaultVnodes)
		moved := 0
		for _, v := range vals {
			a, b := before.OwnerOf(v), after.OwnerOf(v)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("N=%d→%d: key %v moved %d→%d, not to the new shard", n, n+1, v, a, b)
			}
		}
		frac := float64(moved) / float64(keys)
		if limit := 1.0/float64(n+1) + eps; frac > limit {
			t.Errorf("N=%d→%d moved %.3f of keys, want <= %.3f", n, n+1, frac, limit)
		}
		if moved == 0 {
			t.Errorf("N=%d→%d moved nothing; new shard owns no keys", n, n+1)
		}
	}
}

// TestRingDeterminism asserts two rings built with the same parameters
// agree on every owner — placement must be a pure function of (N, vnodes),
// or routers rebuilt from a spec would disagree with their own data.
func TestRingDeterminism(t *testing.T) {
	a, b := NewRing(5, 64), NewRing(5, 64)
	for _, v := range ringKeys(2000) {
		if a.OwnerOf(v) != b.OwnerOf(v) {
			t.Fatalf("rings disagree on %v", v)
		}
	}
	if a.Shards() != 5 || a.Vnodes() != 64 {
		t.Fatalf("ring reports Shards=%d Vnodes=%d", a.Shards(), a.Vnodes())
	}
}

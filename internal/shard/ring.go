// Consistent-hash ring: the placement function behind the router. Tuples
// of a partitioned relation land on the shard that owns the hash of their
// partition-key value, where ownership is decided by a ring of virtual
// nodes rather than hash(key) % N. The payoff is the minimal-movement law:
// growing the cluster from N to N+1 shards only inserts the new shard's
// virtual nodes into the ring, so only the keys falling into the stolen
// arcs change owner — about 1/(N+1) of them — and shrinking removes one
// shard's nodes, moving only the keys that shard owned. Everything else
// stays put, which is what makes online rebalancing (rebalance.go) a
// bounded stream instead of a full reshuffle.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// DefaultVnodes is the number of virtual nodes each shard contributes to
// a Ring when Spec.Vnodes is zero. More virtual nodes flatten the keyed-row
// distribution (the property test pins ±15% of uniform) at the cost of a
// larger ring to search; 512 per shard keeps worst-case skew under ~10%
// while staying well inside the bound.
const DefaultVnodes = 512

// mix64 is the 64-bit avalanche finalizer (MurmurHash3 fmix64). FNV-1a
// alone clusters badly on the short, similar strings that name virtual
// nodes and encode small integer keys; finalizing spreads both uniformly
// around the circle, which the ±15% distribution bound depends on.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the shard that owns the arc ending at it.
type ringPoint struct {
	h     uint64
	shard int
}

// Ring is an immutable consistent-hash ring over shard indices 0..N-1.
// Build one with NewRing; share it freely — all methods are read-only, so
// a Ring is safe for concurrent use.
//
// Rings are deterministic: NewRing(n, v) always produces the same point
// set, and the point set of NewRing(n+1, v) is a superset of NewRing(n, v),
// which is exactly the property the rebalancer's move plans rely on.
type Ring struct {
	n      int
	vnodes int
	points []ringPoint
}

// NewRing builds the ring for n shards with vnodes virtual nodes per shard
// (vnodes <= 0 means DefaultVnodes). n must be >= 1.
func NewRing(n, vnodes int) *Ring {
	if n < 1 {
		panic(fmt.Sprintf("shard: NewRing with %d shards", n))
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{n: n, vnodes: vnodes, points: make([]ringPoint, 0, n*vnodes)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				h:     mix64(hashKey(fmt.Sprintf("shard/%d/vnode/%d", s, v))),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Colliding points order by shard so every ring with the same
		// membership resolves the tie identically.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards the ring places keys on.
func (r *Ring) Shards() int { return r.n }

// Vnodes returns the virtual nodes contributed per shard.
func (r *Ring) Vnodes() int { return r.vnodes }

// Owner returns the shard owning hash position h: the shard of the first
// virtual node at or clockwise of h, wrapping at the top of the circle.
func (r *Ring) Owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// OwnerOf returns the shard owning partition-key value v. The same value
// owns the same shard regardless of which relation carries it, so
// co-partitioned joins stay shard-local.
func (r *Ring) OwnerOf(v value.Value) int {
	return r.Owner(mix64(hashKey(value.Tuple{v}.Key())))
}

// Package shard partitions the bounded-evaluation serving layer across N
// independent core.Engine instances and routes queries and writes among
// them, scaling the single-engine ceiling horizontally while preserving
// every per-engine invariant (the PR 1 plan-cache validity rules) shard by
// shard.
//
// # Partitioning
//
// Each relation is either partitioned — its tuples are distributed across
// the shards by a hash of one attribute, the relation's partition key,
// chosen from the X side of its access constraints — or replicated, with a
// full copy on every shard. Small or unkeyed relations are replicated;
// DeriveKeys implements the default policy and Spec.Keys overrides it.
// One extra engine, the replica, holds a full copy of the database and
// answers the residue of queries whose shape cannot be distributed.
//
// Placement is a consistent-hash ring of virtual nodes (ring.go), not
// hash % N: the ring can grow or shrink one shard at a time while moving
// only ~1/N of the keyed rows, which is what makes Reshard (rebalance.go)
// an online operation instead of a rebuild. The live ring is versioned by
// an epoch; routing decisions are stamped with the epoch they were made
// under and re-derived when it moves.
//
// # Routing
//
// For every query the router picks the cheapest correct strategy:
//
//   - single-shard fast path: if the query touches no partitioned
//     relation, any shard can answer it (the router picks one by query
//     hash, keeping each shard's plan cache hot on its own residents).
//     If every partitioned occurrence binds its partition key to a
//     constant — the covered-access case, where the indexed atoms of the
//     query pin the key — and all constants hash to the same shard, that
//     shard alone holds every relevant tuple and answers exactly.
//   - scatter/gather: when the query's shape distributes over the
//     partitioning (see route.go for the analysis), all shards execute it
//     concurrently and the router merges rows (set union), access counts
//     (sums) and boundedness verdicts (conjunction). Bounded plans make
//     scatter cheap: on shards that hold no matching slice of the
//     partitioned relation, the plan's first fetch comes back empty and
//     the execution finishes in microseconds.
//   - replica fallback: queries that neither fast-path nor distribute
//     (e.g. a difference whose right side reads a partitioned relation
//     without binding its key) run on the replica, which is an ordinary
//     single engine over the full database.
//
// While a Reshard is migrating rows, keyed fast-path reads of monotone
// queries additionally double-route to the key's owner under both the old
// and the new ring and union the answers, so a key mid-move is answered
// from wherever its rows currently live (rebalance.go documents why every
// phase stays exact).
//
// Writes route to the owning shard by the ring (or to every shard for
// replicated relations) plus the replica, so each engine's incremental
// ⟨A, I_A⟩ maintenance keeps its cached plans valid — the serving-layer
// invariant holds per shard, and Version never moves under tuple churn,
// including the churn of migration itself. Access-schema changes fan out
// to every engine and bump all versions in lockstep.
//
// The shard-side write commits synchronously under its ordering stripe;
// the replica's copy is applied asynchronously through a batched apply
// queue (applyqueue.go) so the replica's single store lock is taken once
// per batch instead of once per write. Replica-routed reads drain the
// queue up to the writes they could depend on first (the watermark
// fence), so read-your-writes holds and answers remain identical to a
// single engine at every instant.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// DefaultMinPartitionRows is the replicate-everywhere threshold of
// DeriveKeys: relations with fewer rows are cheaper to copy to every
// shard than to split.
const DefaultMinPartitionRows = 256

// Spec configures a Router.
type Spec struct {
	// Shards is the initial number of partitions (>= 1). Reshard can grow
	// or shrink the live count afterwards; NumShards reports it.
	Shards int
	// Keys maps relation name to its partition-key attribute. Relations
	// absent from the map are replicated on every shard. nil means
	// DeriveKeys(schema, A, db, DefaultMinPartitionRows).
	Keys map[string]string
	// PlanCacheSize overrides each engine's plan-cache capacity
	// (0 = the core default). Engines created by Reshard growth inherit it.
	PlanCacheSize int
	// Vnodes is the virtual nodes per shard on the consistent-hash ring
	// (0 = DefaultVnodes).
	Vnodes int
}

// DeriveKeys picks a partition key per relation from the access schema:
// the attribute that appears in the X (index) side of the most
// non-membership constraints, breaking ties toward shorter X lists and
// then lexicographically — the attribute the covered workload most often
// binds. Relations with no such attribute, or with fewer than minRows
// tuples in db (skipped when db is nil or minRows <= 0), are left out of
// the map and therefore replicated.
func DeriveKeys(schema ra.Schema, A *access.Schema, db *store.DB, minRows int) map[string]string {
	keys := map[string]string{}
	for _, rel := range schema.Relations() {
		if db != nil && minRows > 0 {
			rr, err := db.Rel(rel)
			if err != nil || rr.Len() < minRows {
				continue
			}
		}
		type cand struct {
			attr    string
			score   int
			minXLen int
		}
		var best *cand
		for _, a := range schema[rel] {
			c := cand{attr: a, minXLen: 1 << 30}
			for _, con := range A.ForRel(rel) {
				if con.IsIndexing() && len(con.X) == 1 {
					continue // membership R(a → a, 1): holds vacuously, no signal
				}
				for _, x := range con.X {
					if x == a {
						c.score++
						if len(con.X) < c.minXLen {
							c.minXLen = len(con.X)
						}
						break
					}
				}
			}
			if c.score == 0 {
				continue
			}
			if best == nil || c.score > best.score ||
				(c.score == best.score && (c.minXLen < best.minXLen ||
					(c.minXLen == best.minXLen && c.attr < best.attr))) {
				cc := c
				best = &cc
			}
		}
		if best != nil {
			keys[rel] = best.attr
		}
	}
	return keys
}

// wstripes is the number of write-ordering stripes; writes to the same
// tuple serialize on one stripe so the owning shard and the replica
// always apply them in the same order. Reshard's copy and cleanup loops
// take the same stripe per row, which is how migration serializes against
// concurrent writes of the rows it is moving.
const wstripes = 256

// member is one shard engine plus its router-side execution counter and
// its bounded gather worker pool. Members are identified by pointer: a
// Reshard that grows the cluster keeps the surviving members and appends
// fresh ones, so counters carry across ring changes.
type member struct {
	eng     *core.Engine
	queries atomic.Int64
	// pool bounds this member's concurrent gather executions (pool.go); a
	// member dropped by a shrink simply stops receiving tasks.
	pool *workerPool
}

// newMember wraps an engine as a cluster member with its worker pool.
func newMember(eng *core.Engine) *member {
	return &member{eng: eng, pool: newWorkerPool(gatherWorkers())}
}

// ringState is the immutable routing view swapped atomically at each ring
// epoch: the ring, the member engines it places keys on, and the epoch
// number. Readers load it once per query, so a query never observes a
// half-flipped ring.
type ringState struct {
	epoch   uint64
	ring    *Ring
	members []*member
}

// Router partitions a database across N core.Engine shards plus a full
// replica and implements core.Service over the cluster, so the HTTP front
// end (internal/server) and the replay harness (internal/bench) serve it
// exactly like a single engine.
//
// A Router is safe for concurrent use. All reads and writes must go
// through it once it is built: New adopts the source database as the
// replica, and writes applied directly to any member engine would
// diverge from the cluster.
type Router struct {
	schema ra.Schema
	spec   Spec
	ref    *core.Engine
	// keyPos maps each partitioned relation to the column position of its
	// partition key.
	keyPos map[string]int

	// state is the live routing view (ring, members, epoch), swapped
	// atomically by Reshard's flip.
	state atomic.Pointer[ringState]
	// mig is the in-flight migration, nil when the cluster is stable.
	mig atomic.Pointer[migration]
	// rs is the read fence: every Execute holds it shared from the moment
	// it loads state until its engines have answered, and Reshard's flip
	// takes it exclusively (and releases immediately) before the cleanup
	// sweep — so no query that routed by the old ring can still be
	// running when the sweep starts deleting moved rows from old owners.
	rs sync.RWMutex

	// wmu stripes same-tuple writes into a fixed order across engines.
	wmu [wstripes]sync.Mutex
	// cmu serializes access-schema mutations so concurrent
	// AddConstraints / RemoveConstraint calls cannot interleave their
	// per-engine fan-outs and break version lockstep. It also guards
	// fresh: engines a growing Reshard has built but not yet flipped in,
	// which must join the fan-out the moment they can receive queries.
	cmu   sync.Mutex
	fresh []*member
	// rmu serializes Reshard calls; TryLock turns overlap into an error.
	rmu sync.Mutex

	// decisions caches routing decisions by query fingerprint. Routing
	// depends on the canonical query, the (immutable) partition spec and
	// the ring epoch — never on data or the access schema — so every
	// entry is stamped with its epoch and ignored once the ring moves.
	decisions *cache.Cache

	// aq is the replica apply pipeline: shard-side writes commit
	// synchronously, the replica's copies are enqueued here and applied in
	// batches (applyqueue.go). Replica-routed reads fence on it first.
	aq *applyQueue

	// hmu guards history: the normalized form and options of recently
	// routed queries, keyed by fingerprint. Reshard growth replays it
	// against fresh engines to prewarm their plan caches before the flip.
	// Bounded at historyCap; recorded only on decision-cache misses, so
	// the hot path never touches it.
	hmu     sync.Mutex
	history map[string]prewarmEntry

	// refQueries counts executions routed to the replica.
	refQueries atomic.Int64
	// routed counts routing decisions by kind; doubled counts keyed
	// fast-path reads that double-routed to two owners mid-migration
	// (executed via gather, reported separately from Single).
	routed  [3]atomic.Int64
	doubled atomic.Int64

	// hookMigBatch, when set, runs between migration batches. Tests use it
	// to slow or freeze a migration deterministically; it is never set in
	// production.
	hookMigBatch func()

	// wal, when non-nil, makes the cluster durable (built by OpenDurable,
	// never set after traffic starts): every tuple write is appended to
	// the log by the apply queue before it is acknowledged, constraint
	// changes are logged under cmu, and checkpoints snapshot the replica —
	// the one engine holding the full instance — at a fenced LSN. ckEvery
	// is the automatic checkpoint cadence in logged records (<= 0 off),
	// ckBusy collapses concurrent triggers to one background checkpoint.
	wal     *wal.Log
	ckEvery int64
	ckBusy  atomic.Bool
}

// New partitions db across spec.Shards engines and returns the router.
// Partitioned relations are split by consistent hash of their key
// attribute, replicated ones copied to every shard; db itself becomes the
// replica, so the caller must route all subsequent reads and writes
// through the returned Router.
func New(schema ra.Schema, A *access.Schema, db *store.DB, spec Spec) (*Router, error) {
	if spec.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", spec.Shards)
	}
	if db == nil {
		db = store.NewDB(schema)
	}
	if spec.Keys == nil {
		spec.Keys = DeriveKeys(schema, A, db, DefaultMinPartitionRows)
	}
	if spec.Vnodes <= 0 {
		spec.Vnodes = DefaultVnodes
	}
	keyPos := map[string]int{}
	for rel, attr := range spec.Keys {
		attrs, ok := schema[rel]
		if !ok {
			return nil, fmt.Errorf("shard: partition key on unknown relation %q", rel)
		}
		pos := -1
		for i, a := range attrs {
			if a == attr {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("shard: relation %s has no attribute %q to partition by", rel, attr)
		}
		keyPos[rel] = pos
	}
	r := &Router{
		schema:    schema,
		spec:      spec,
		keyPos:    keyPos,
		decisions: cache.New(4096, 8),
		history:   map[string]prewarmEntry{},
	}
	ring := NewRing(spec.Shards, spec.Vnodes)
	dbs := make([]*store.DB, spec.Shards)
	for i := range dbs {
		dbs[i] = store.NewDB(schema)
	}
	for _, rel := range schema.Relations() {
		rows, err := db.Rows(rel)
		if err != nil {
			return nil, err
		}
		pos, partitioned := keyPos[rel]
		for _, t := range rows {
			if partitioned {
				if _, err := dbs[ring.OwnerOf(t[pos])].Insert(rel, t); err != nil {
					return nil, err
				}
				continue
			}
			for _, sdb := range dbs {
				if _, err := sdb.Insert(rel, t); err != nil {
					return nil, err
				}
			}
		}
	}
	members := make([]*member, spec.Shards)
	for i, sdb := range dbs {
		eng, err := core.NewEngine(schema, A, sdb)
		if err != nil {
			return nil, err
		}
		members[i] = newMember(eng)
	}
	ref, err := core.NewEngine(schema, A, db)
	if err != nil {
		return nil, err
	}
	r.ref = ref
	r.aq = newApplyQueue(ref.DB(), nil)
	r.state.Store(&ringState{epoch: 1, ring: ring, members: members})
	if spec.PlanCacheSize > 0 {
		r.SetPlanCacheCapacity(spec.PlanCacheSize)
	}
	return r, nil
}

// OpenDurable opens (or creates) a durable cluster backed by the log in
// cfg.Dir. Recovery mirrors core.OpenDurable: when the directory holds
// prior state, db and A are IGNORED — the newest loadable checkpoint is
// loaded, the log suffix replayed onto it, and the recovered database is
// re-partitioned across spec.Shards fresh engines (indices rebuilt once
// per engine). On a fresh directory the provided db and A are adopted
// and an initial checkpoint makes the seed durable immediately. The log
// records replica-ordered ops, so a single engine and a cluster recover
// to identical logical states from the same directory.
func OpenDurable(schema ra.Schema, A *access.Schema, db *store.DB, spec Spec, cfg core.DurableConfig) (*Router, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shard: durable router needs a data directory")
	}
	rec, err := wal.RecoverDB(cfg.Dir, schema)
	if err != nil {
		return nil, err
	}
	if rec.Found {
		db = rec.DB
		A = access.NewSchema(rec.Constraints...)
	} else if A == nil {
		A = access.NewSchema()
	}
	log, err := wal.Open(cfg.Dir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	r, err := New(schema, A, db, spec)
	if err != nil {
		log.Close()
		return nil, err
	}
	r.wal = log
	r.ckEvery = cfg.Every()
	r.aq.wal = log
	if !rec.Found {
		if err := log.WriteCheckpoint(log.LastLSN(), r.ref.DB().Save); err != nil {
			log.Close()
			return nil, err
		}
	}
	return r, nil
}

// Router implements core.Service.
var _ core.Service = (*Router)(nil)

// hashKey hashes a canonical byte encoding to a shard-selection value.
// The same function is used for every relation, so equal key values land
// on the same shard regardless of which relation carries them — the
// property co-partitioned joins rely on.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ownerOf returns the index of the shard owning tuples whose partition
// key is v under the current ring.
func (r *Router) ownerOf(v value.Value) int {
	return r.state.Load().ring.OwnerOf(v)
}

// NumShards returns the live number of partitions (excluding the
// replica); Reshard changes it.
func (r *Router) NumShards() int { return len(r.state.Load().members) }

// RingEpoch returns the current ring epoch. It starts at 1 and advances
// by one at each Reshard flip; routing decisions cached under an older
// epoch are never used again.
func (r *Router) RingEpoch() uint64 { return r.state.Load().epoch }

// Keys returns the partition-key assignment in effect (a copy).
func (r *Router) Keys() map[string]string {
	out := make(map[string]string, len(r.spec.Keys))
	for k, v := range r.spec.Keys {
		out[k] = v
	}
	return out
}

// Schema returns the relational schema the cluster is bound to. The
// returned map is shared and must be treated as read-only.
func (r *Router) Schema() ra.Schema { return r.schema }

// Parse parses a query in the textual rule language.
func (r *Router) Parse(src string) (ra.Query, error) {
	return parser.Parse(src, r.schema)
}

// Execute normalizes q, picks a routing strategy (single shard,
// scatter/gather, or the replica; see the package comment) and returns
// the merged answer. Results are identical to a single engine over the
// unpartitioned database — including while a Reshard is migrating rows.
//
// The analysis is amortized: the query is normalized and fingerprinted
// once, the routing decision is cached under the fingerprint and the ring
// epoch (sound: the fingerprint identifies the canonical query including
// its constants, and routing depends only on the query, the fixed
// partitioning and the ring), and the fingerprint is handed to the member
// engines so none of them repeats the work.
func (r *Router) Execute(q ra.Query, opts core.Options) (*exec.Table, *core.Report, error) {
	norm, err := ra.Normalize(q, r.schema)
	if err != nil {
		return nil, nil, err
	}
	fp := ra.FingerprintNormalized(norm)
	r.rs.RLock()
	defer r.rs.RUnlock()
	st := r.state.Load()
	var dec decision
	if v, ok := r.decisions.Get(fp); ok && v.(decision).epoch == st.epoch {
		dec = v.(decision)
	} else {
		dec = r.route(norm, st.ring, len(st.members))
		dec.epoch = st.epoch
		r.decisions.Put(fp, dec)
		if opts.Cache {
			r.remember(fp, norm, opts)
		}
	}
	switch dec.kind {
	case routeSingle:
		m := st.members[dec.shard]
		if mig := r.mig.Load(); mig != nil && dec.keyed {
			if sec := r.secondaryOwner(norm, st, mig); sec != nil && sec != m {
				// A keyed read whose owner differs between the rings runs as
				// a two-owner gather; counted as Double, not Single, so
				// RouteStats does not under-report gather load mid-reshard.
				r.doubled.Add(1)
				return r.gather(norm, fp, opts, []*member{m, sec})
			}
		}
		r.routed[routeSingle].Add(1)
		m.queries.Add(1)
		return m.eng.ExecuteNormalized(norm, fp, opts)
	case routeFallback:
		r.routed[routeFallback].Add(1)
		r.refQueries.Add(1)
		// The replica lags the shards by the apply-queue backlog; drain up
		// to this instant's enqueue point so the fallback answer includes
		// every write that has already been acknowledged.
		r.aq.fenceAll()
		return r.ref.ExecuteNormalized(norm, fp, opts)
	}
	r.routed[routeScatter].Add(1)
	return r.gather(norm, fp, opts, st.members)
}

// historyCap bounds the prewarm history; beyond it new fingerprints are
// not recorded (the hottest queries are seen first, which is what
// prewarming is for).
const historyCap = 512

// prewarmEntry is one remembered query: its normalized form plus the
// analysis-shaping options it ran under, enough to recompile it on a
// fresh engine.
type prewarmEntry struct {
	norm              ra.Query
	minimize, rewrite bool
}

// remember records a query for Reshard's plan-cache prewarming. Called on
// decision-cache misses only (first sighting per fingerprint and epoch).
func (r *Router) remember(fp string, norm ra.Query, opts core.Options) {
	r.hmu.Lock()
	defer r.hmu.Unlock()
	if _, ok := r.history[fp]; ok {
		return
	}
	if len(r.history) >= historyCap {
		return
	}
	r.history[fp] = prewarmEntry{norm: norm, minimize: opts.Minimize, rewrite: opts.Rewrite}
}

// prewarmFresh compiles the remembered query history into the plan caches
// of engines a growing Reshard has just built, before they can receive
// traffic: compilation is data-independent, so the fresh engines start
// with the same hot set the surviving members already cached instead of
// paying a cold compile per query after the flip. Best effort — a query
// that no longer compiles is skipped.
func (r *Router) prewarmFresh(fresh []*member) {
	if len(fresh) == 0 {
		return
	}
	r.hmu.Lock()
	entries := make(map[string]prewarmEntry, len(r.history))
	for fp, e := range r.history {
		entries[fp] = e
	}
	r.hmu.Unlock()
	for _, m := range fresh {
		for fp, e := range entries {
			opts := core.Options{Cache: true, Minimize: e.minimize, Rewrite: e.rewrite}
			_ = m.eng.Prewarm(e.norm, fp, opts)
		}
	}
}

// secondaryOwner resolves the double-routing target for a keyed fast-path
// query while a migration is in flight: the owner of the same key
// constants under the ring the live state is NOT using. It returns nil
// when the query does not single-shard under the other ring, or when it
// is not monotone — a difference evaluated over a mid-copy partial slice
// could fabricate rows its full slice would cancel, so non-monotone
// queries stay on the exact owner (which every migration phase keeps
// complete; see rebalance.go).
func (r *Router) secondaryOwner(norm ra.Query, st *ringState, mig *migration) *member {
	otherRing, otherMembers := mig.newRing, mig.newMembers
	if st.ring == mig.newRing {
		otherRing, otherMembers = mig.oldRing, mig.oldMembers
	}
	if !monotone(norm) {
		return nil
	}
	dec := r.route(norm, otherRing, len(otherMembers))
	if dec.kind != routeSingle || !dec.keyed {
		return nil
	}
	return otherMembers[dec.shard]
}

// monotone reports whether norm contains no difference — the condition
// under which evaluating it over a subset of the database can only lose
// rows, never invent them, making a union with the exact owner's answer
// exact.
func monotone(norm ra.Query) bool {
	ok := true
	ra.Walk(norm, func(n ra.Query) {
		if _, isDiff := n.(*ra.Diff); isDiff {
			ok = false
		}
	})
	return ok
}

// gather executes norm on every given member concurrently and merges the
// results: rows by set union, access counts by summation, coverage and
// boundedness verdicts by conjunction. Scatter/gather runs it over the
// full member set; double-routed fast-path reads over the two owners of a
// mid-migration key. Per-shard executions run on each member's bounded
// worker pool (pool.go), so concurrent gathers share shards × GOMAXPROCS
// execution goroutines instead of spawning one per member per request.
// On any member error the first error (in member order) is returned and
// every sibling result is discarded.
func (r *Router) gather(norm ra.Query, fp string, opts core.Options, members []*member) (*exec.Table, *core.Report, error) {
	start := time.Now()
	tables := make([]*exec.Table, len(members))
	reports := make([]*core.Report, len(members))
	errs := make([]error, len(members))
	if len(members) == 1 {
		members[0].queries.Add(1)
		tables[0], reports[0], errs[0] = members[0].eng.ExecuteNormalized(norm, fp, opts)
	} else {
		var wg sync.WaitGroup
		for i := range members {
			i := i
			wg.Add(1)
			members[i].pool.submit(func() {
				defer wg.Done()
				members[i].queries.Add(1)
				tables[i], reports[i], errs[i] = members[i].eng.ExecuteNormalized(norm, fp, opts)
			})
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	out := exec.NewTable(tables[0].Cols)
	for _, t := range tables {
		for _, row := range t.Tuples() {
			out.Add(row)
		}
	}
	rep := *reports[0]
	for _, sub := range reports[1:] {
		rep.Covered = rep.Covered && sub.Covered
		rep.Bounded = rep.Bounded && sub.Bounded
		rep.CacheHit = rep.CacheHit && sub.CacheHit
		rep.Stats.Accessed += sub.Stats.Accessed
		rep.Stats.Fetched += sub.Stats.Fetched
		rep.Stats.Scanned += sub.Stats.Scanned
		if sub.CheckTime > rep.CheckTime {
			rep.CheckTime = sub.CheckTime
		}
		if sub.PlanTime > rep.PlanTime {
			rep.PlanTime = sub.PlanTime
		}
		if sub.MinimizeTime > rep.MinimizeTime {
			rep.MinimizeTime = sub.MinimizeTime
		}
		if sub.Version > rep.Version {
			rep.Version = sub.Version
		}
	}
	rep.Stats.Duration = time.Since(start)
	return out, &rep, nil
}

// stripeOf picks the write-ordering stripe for one tuple.
func stripeOf(rel string, t value.Tuple) uint64 {
	return hashKey(rel+"\x00"+t.Key()) % wstripes
}

// Insert adds a tuple to the cluster: to the owning shard for a
// partitioned relation (or every shard for a replicated one)
// synchronously, and to the replica through the batched apply queue.
// Same-tuple writes are ordered by an internal stripe lock so all member
// engines converge to the same state. Each engine maintains its indices
// incrementally, so cached plans everywhere remain valid and Version does
// not change. During a migration the write additionally covers the key's
// owner under the incoming ring (rebalance.go).
func (r *Router) Insert(rel string, t value.Tuple) (bool, error) {
	return r.mutate(rel, t, false)
}

// Delete removes a tuple from the cluster, routing like Insert. During
// and just after a migration, deletes cover the owner under both rings so
// no stale copy of the tuple can outlive it.
func (r *Router) Delete(rel string, t value.Tuple) (bool, error) {
	return r.mutate(rel, t, true)
}

// mutate applies one tuple write: validate against the schema up front,
// commit synchronously to the shard-side targets chosen by writeTargets
// under the current ring state and migration phase, then enqueue the
// replica's copy on the apply queue — all under the tuple's ordering
// stripe, which is what keeps the queue's per-stripe FIFO equal to the
// order the shards saw. The first target always holds a complete slice
// for the tuple under the ring readers are routed by, so its verdict is
// the caller's result (identical to what the replica will report when the
// queued op lands).
func (r *Router) mutate(rel string, t value.Tuple, del bool) (bool, error) {
	attrs, ok := r.schema[rel]
	if !ok {
		return false, fmt.Errorf("shard: unknown relation %q", rel)
	}
	if !del && len(t) != len(attrs) {
		return false, fmt.Errorf("shard: %s expects %d values, got %d", rel, len(attrs), len(t))
	}
	pos, partitioned := r.keyPos[rel]
	if partitioned && pos >= len(t) {
		return false, fmt.Errorf("shard: %s expects %d values, got %d", rel, len(attrs), len(t))
	}
	apply := (*core.Engine).Insert
	if del {
		apply = (*core.Engine).Delete
	}
	// Clone before enqueueing: the queued op outlives this call, and the
	// caller is free to reuse its tuple slice afterwards.
	t = t.Clone()
	stripe := stripeOf(rel, t)
	mu := &r.wmu[stripe]
	mu.Lock()
	defer mu.Unlock()
	var changed bool
	for i, m := range r.writeTargets(rel, t, pos, partitioned, del) {
		ch, err := apply(m.eng, rel, t)
		if err != nil {
			return false, err
		}
		if i == 0 {
			changed = ch
		}
	}
	// In durable mode the enqueue appends to the write-ahead log before the
	// write is acknowledged; a log failure rejects the write (and poisons
	// the log — Health reports the retained error until restart).
	if _, err := r.aq.enqueue(stripe, rel, t, del); err != nil {
		return false, err
	}
	r.maybeCheckpoint()
	return changed, nil
}

// maybeCheckpoint starts a background checkpoint when the replay debt
// passed the configured cadence and none is already running.
func (r *Router) maybeCheckpoint() {
	if r.wal == nil || r.ckEvery <= 0 || r.wal.SinceCheckpoint() < r.ckEvery {
		return
	}
	if !r.ckBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer r.ckBusy.Store(false)
		_ = r.Checkpoint() // failure is retained by the log; Health reports it
	}()
}

// Checkpoint writes a durable, LSN-stamped snapshot of the replica — the
// one engine holding the full instance — and prunes log segments it makes
// dead. The stamp W is read under cmu, so no constraint record can be
// mid-append (constraint changes log under cmu, after they are applied to
// the replica); the fence then drains every tuple op with LSN <= W into
// the replica before the snapshot is taken. Concurrent writes during the
// (long) save only add ops beyond the stamp, which replay tolerates.
// No-op on a non-durable router.
func (r *Router) Checkpoint() error {
	if r.wal == nil {
		return nil
	}
	r.cmu.Lock()
	lsn := r.wal.LastLSN()
	r.cmu.Unlock()
	r.aq.fence(lsn)
	return r.wal.WriteCheckpoint(lsn, r.ref.DB().Save)
}

// Close drains the apply queue, then flushes and closes the write-ahead
// log. Queries remain possible; further writes fail. No-op on a
// non-durable router.
func (r *Router) Close() error {
	if r.wal == nil {
		return nil
	}
	r.aq.fenceAll()
	return r.wal.Close()
}

// Health reports nil while the cluster's write pipeline is intact. A
// non-nil error is the first replica-apply rejection or log append/fsync/
// checkpoint failure — from then on acknowledged writes may be missing
// from the replica or the log, and the process should be restarted
// (recovery replays the intact prefix). Apply errors are reported even on
// a non-durable router.
func (r *Router) Health() error {
	if err := r.aq.health(); err != nil {
		return err
	}
	if r.wal != nil {
		return r.wal.Err()
	}
	return nil
}

// DurabilityStats returns the write-ahead-log counters and ok=true when
// the router is durable.
func (r *Router) DurabilityStats() (wal.Stats, bool) {
	if r.wal == nil {
		return wal.Stats{}, false
	}
	return r.wal.Stats(), true
}

// writeTargets picks the member engines one tuple write must reach,
// ordered so the FIRST target is always the owner under the ring the
// readers are currently routed by — its slice is complete there, so its
// apply verdict is the caller's result. Stable cluster: the ring owner
// (partitioned) or every member (replicated). Mid-migration the rules
// are phase-dependent so that the readers' ring always sees a complete
// slice, and no copy of a deleted tuple survives anywhere:
//
//   - copy (readers on the old ring): apply under both rings, old owner
//     first — the old owner stays exact for reads, the new owner fills
//     in for the flip.
//   - cleanup (flipped; readers on the new ring): inserts go to the new
//     owner only, so the straggler sweep cannot leak fresh copies onto
//     shards that no longer own them; deletes also cover the old owner —
//     new owner first, since the sweep may already have emptied the old
//     one — to kill any not-yet-swept copy.
//   - abort (rolling back; readers on the old ring): the mirror image —
//     inserts to the old owner only, deletes cover both, old owner
//     first.
func (r *Router) writeTargets(rel string, t value.Tuple, pos int, partitioned, del bool) []*member {
	mig := r.mig.Load()
	if mig == nil {
		st := r.state.Load()
		if partitioned {
			return []*member{st.members[st.ring.OwnerOf(t[pos])]}
		}
		return st.members
	}
	phase := mig.phase.Load()
	if partitioned {
		oldM := mig.oldMembers[mig.oldRing.OwnerOf(t[pos])]
		newM := mig.newMembers[mig.newRing.OwnerOf(t[pos])]
		switch {
		case del && phase == phaseCleanup:
			if oldM == newM {
				return []*member{newM}
			}
			return []*member{newM, oldM}
		case del || phase == phaseCopy:
			if oldM == newM {
				return []*member{oldM}
			}
			return []*member{oldM, newM}
		case phase == phaseCleanup:
			return []*member{newM}
		default: // phaseAbort insert
			return []*member{oldM}
		}
	}
	switch {
	case del || phase == phaseCopy:
		return unionMembers(mig.oldMembers, mig.newMembers)
	case phase == phaseCleanup:
		return mig.newMembers
	default: // phaseAbort insert
		return mig.oldMembers
	}
}

// unionMembers merges two member slices, deduplicating by identity.
func unionMembers(a, b []*member) []*member {
	out := make([]*member, 0, len(a)+len(b))
	seen := make(map[*member]bool, len(a)+len(b))
	for _, s := range [][]*member{a, b} {
		for _, m := range s {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// AddConstraints installs extra access constraints on every engine of the
// cluster, building their indices shard-locally and bumping every
// engine's version in lockstep (each engine purges its own plan cache).
// Constraints are validated up front, and the replica — the only engine
// holding the full instance — goes first: a constraint the full database
// violates fails there before any shard is touched, and replica success
// implies shard success because every shard's slice is a subset (access
// constraints are anti-monotone). Mutations are serialized against each
// other so concurrent calls cannot skew versions across engines; engines
// a growing Reshard has already built join the fan-out immediately.
func (r *Router) AddConstraints(cs ...access.Constraint) error {
	for _, c := range cs {
		if err := c.Validate(r.schema); err != nil {
			return err
		}
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	// Drain the apply queue first: the replica is the validation oracle,
	// and its index build must see every write acknowledged before this
	// call.
	r.aq.fenceAll()
	if err := r.ref.AddConstraints(cs...); err != nil {
		return err
	}
	// Log after the replica accepted (the log must only contain applicable
	// records) and before returning, so the change is durable by the time
	// it is acknowledged. cmu orders constraint records against each other
	// and against checkpoint stamps.
	if r.wal != nil {
		for _, c := range cs {
			if err := r.aq.logRecord(wal.Record{Kind: wal.KindAddConstraint, Con: c}); err != nil {
				return err
			}
		}
	}
	for _, eng := range r.shardEnginesLocked() {
		if err := eng.AddConstraints(cs...); err != nil {
			return fmt.Errorf("shard: cluster left inconsistent by partial constraint install: %w", err)
		}
	}
	return nil
}

// RemoveConstraint uninstalls a constraint on every engine, dropping the
// shard-local indices and bumping every version. It reports whether the
// constraint was present.
func (r *Router) RemoveConstraint(c access.Constraint) bool {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	r.aq.fenceAll()
	found := r.ref.RemoveConstraint(c)
	if found && r.wal != nil {
		// A log failure here is retained by the queue and surfaced by
		// Health; the in-memory removal stands either way.
		_ = r.aq.logRecord(wal.Record{Kind: wal.KindRemoveConstraint, Con: c})
	}
	for _, eng := range r.shardEnginesLocked() {
		if eng.RemoveConstraint(c) {
			found = true
		}
	}
	return found
}

// shardEnginesLocked lists every non-replica engine a schema mutation
// must reach — the live members plus any engines a growing Reshard has
// built but not yet flipped in. Callers must hold cmu.
func (r *Router) shardEnginesLocked() []*core.Engine {
	st := r.state.Load()
	out := make([]*core.Engine, 0, len(st.members)+len(r.fresh))
	seen := make(map[*core.Engine]bool, len(st.members)+len(r.fresh))
	for _, m := range st.members {
		if !seen[m.eng] {
			seen[m.eng] = true
			out = append(out, m.eng)
		}
	}
	for _, m := range r.fresh {
		if !seen[m.eng] {
			seen[m.eng] = true
			out = append(out, m.eng)
		}
	}
	return out
}

// engines lists every member engine: the shards (plus pending Reshard
// growth engines), then the replica.
func (r *Router) engines() []*core.Engine {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return append(r.shardEnginesLocked(), r.ref)
}

// AccessSnapshot returns a consistent copy of the installed access
// schema (identical on every engine of a healthy cluster).
func (r *Router) AccessSnapshot() *access.Schema {
	return r.ref.AccessSnapshot()
}

// Version returns the cluster's access-schema generation. All engines
// move in lockstep because every mutation fans out through the router;
// tuple movement during Reshard never touches it.
func (r *Router) Version() uint64 { return r.ref.Version() }

// CacheStats returns the plan-cache counters summed across every engine
// (shards and replica).
func (r *Router) CacheStats() cache.Stats {
	var out cache.Stats
	for _, eng := range r.engines() {
		s := eng.CacheStats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Purges += s.Purges
		out.Entries += s.Entries
	}
	return out
}

// SetPlanCacheCapacity resizes every engine's plan cache, dropping all
// entries; capacity <= 0 disables caching cluster-wide.
func (r *Router) SetPlanCacheCapacity(capacity int) {
	for _, eng := range r.engines() {
		eng.SetPlanCacheCapacity(capacity)
	}
}

// DBSize returns the logical |D|: the replica's size, which counts every
// tuple exactly once regardless of replication. It drains the apply queue
// first so acknowledged writes are counted.
func (r *Router) DBSize() int64 {
	r.aq.fenceAll()
	return r.ref.DBSize()
}

// IndexEntries returns the logical |I_A|, measured on the replica after
// draining the apply queue.
func (r *Router) IndexEntries() int64 {
	r.aq.fenceAll()
	return r.ref.IndexEntries()
}

// ApplyQueueStats returns an observability snapshot of the replica apply
// pipeline: backlog depth (watermark lag), batching counters and store
// errors. Surfaced by GET /stats for operators watching the write path.
func (r *Router) ApplyQueueStats() ApplyQueueStats { return r.aq.stats() }

// RouteStats counts routing decisions since the router was built.
type RouteStats struct {
	// Single counts queries answered by exactly one shard (unpartitioned
	// queries and the covered-access fast path).
	Single int64
	// Double counts keyed fast-path reads that double-routed to the key's
	// owner under both rings of an in-flight migration — each one is a
	// two-owner gather, not a single-shard execution.
	Double int64
	// Scattered counts scatter/gather executions (each runs on every
	// shard).
	Scattered int64
	// Fallback counts executions routed to the full replica.
	Fallback int64
}

// RouteStats returns the routing-decision counters.
func (r *Router) RouteStats() RouteStats {
	return RouteStats{
		Single:    r.routed[routeSingle].Load(),
		Double:    r.doubled.Load(),
		Scattered: r.routed[routeScatter].Load(),
		Fallback:  r.routed[routeFallback].Load(),
	}
}

// PerShardStats returns one observability snapshot per member engine —
// live shards labeled "shard/i" in order, then the replica — for the
// /stats per-shard breakdown. Queries counts executions routed to each
// engine; comparing them across shards exposes routing skew, and
// comparing DBSize exposes data skew.
func (r *Router) PerShardStats() []core.EngineStat {
	st := r.state.Load()
	out := make([]core.EngineStat, 0, len(st.members)+1)
	for i, m := range st.members {
		es := m.eng.Stat()
		es.Label = fmt.Sprintf("shard/%d", i)
		es.Queries = m.queries.Load()
		out = append(out, es)
	}
	es := r.ref.Stat()
	es.Label = "replica"
	es.Queries = r.refQueries.Load()
	out = append(out, es)
	return out
}

// String summarizes the partitioning for logs and tools.
func (r *Router) String() string {
	rels := make([]string, 0, len(r.spec.Keys))
	for rel, key := range r.spec.Keys {
		rels = append(rels, rel+"/"+key)
	}
	sort.Strings(rels)
	st := r.state.Load()
	return fmt.Sprintf("shard.Router{shards: %d, epoch: %d, partitioned: %v}",
		len(st.members), st.epoch, rels)
}

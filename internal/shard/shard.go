// Package shard partitions the bounded-evaluation serving layer across N
// independent core.Engine instances and routes queries and writes among
// them, scaling the single-engine ceiling horizontally while preserving
// every per-engine invariant (the PR 1 plan-cache validity rules) shard by
// shard. No engine holds the full database: the per-node footprint is
// O(|D|/N) for partitioned data plus the broadcast set.
//
// # Partitioning
//
// Each relation is either partitioned — its tuples are distributed across
// the shards by a hash of one attribute, the relation's partition key,
// chosen from the X side of its access constraints — or broadcast, with a
// full copy on every shard. Small or unkeyed relations are broadcast;
// DeriveKeys implements the default policy and Spec.Keys overrides it.
// The assignment is not fixed for the life of the cluster: Repartition
// (repartition.go) changes one relation's placement online — key to key,
// key to broadcast, or broadcast to key — and a broadcast relation that
// grows past Spec.BroadcastMaxRows is demoted to partitioned
// automatically. The live assignment is versioned by a generation
// counter, exactly as the ring is versioned by an epoch.
//
// Placement of partitioned tuples is a consistent-hash ring of virtual
// nodes (ring.go), not hash % N: the ring can grow or shrink one shard at
// a time while moving only ~1/N of the keyed rows, which is what makes
// Reshard (rebalance.go) an online operation instead of a rebuild.
// Routing decisions are stamped with the (epoch, generation) they were
// made under and re-derived when either moves.
//
// # Routing
//
// For every query the router picks the cheapest correct strategy:
//
//   - single-shard fast path: if the query touches no partitioned
//     relation, any shard can answer it (the router picks one by query
//     hash, keeping each shard's plan cache hot on its own residents).
//     If every partitioned occurrence binds its partition key to a
//     constant — the covered-access case, where the indexed atoms of the
//     query pin the key — and all constants hash to the same shard, that
//     shard alone holds every relevant tuple and answers exactly.
//   - scatter/gather: when the query's shape distributes over the
//     partitioning (see route.go for the analysis), all shards execute it
//     concurrently and the router merges rows (set union), access counts
//     (sums) and boundedness verdicts (conjunction). Bounded plans make
//     scatter cheap: on shards that hold no matching slice of the
//     partitioned relation, the plan's first fetch comes back empty and
//     the execution finishes in microseconds.
//   - distributed residue: queries that neither fast-path nor distribute
//     as a whole (e.g. a difference whose right side reads a partitioned
//     relation without binding its key, or a join of two partitioned
//     relations off their keys) are decomposed by the router
//     (residue.go): maximal distributable subtrees are shipped to the
//     shards and unioned, non-co-located joins run as a semi-join
//     reduction followed by a hash shuffle over the member worker pools
//     (shuffle.go), and the remaining operators are applied router-side.
//     No engine with a full copy of the database exists any more.
//
// While a Reshard is migrating rows, keyed fast-path reads of monotone
// queries additionally double-route to the key's owner under both the old
// and the new ring and union the answers, so a key mid-move is answered
// from wherever its rows currently live (rebalance.go documents why every
// phase stays exact).
//
// # Writes
//
// Writes route to the owning shard by the ring for partitioned relations,
// synchronously, under a tuple-ordering stripe. Broadcast writes commit
// synchronously on the anchor — member 0, which survives every reshard —
// and the copies for the other members are enqueued on a batched,
// per-relation apply queue (applyqueue.go). A read that depends on
// broadcast relation R fences R's lane first (the per-relation watermark
// fence), so read-your-writes holds per relation and a backlog on an
// unrelated relation never stalls the read. Each engine's incremental
// ⟨A, I_A⟩ maintenance keeps its cached plans valid — the serving-layer
// invariant holds per shard, and Version never moves under tuple churn,
// including the churn of migration itself. Access-schema changes fan out
// to every engine and bump all versions in lockstep.
package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ivm"
	"repro/internal/parser"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// DefaultMinPartitionRows is the broadcast-everywhere threshold of
// DeriveKeys: relations with fewer rows are cheaper to copy to every
// shard than to split.
const DefaultMinPartitionRows = 256

// DefaultBroadcastMaxRows is the growth threshold at which a broadcast
// relation is automatically demoted to partitioned: once its logical row
// count exceeds this, keeping a copy on every shard costs more memory
// than the fan-in it saves, so the router triggers a background
// Repartition onto a derived key.
const DefaultBroadcastMaxRows = 4096

// Spec configures a Router.
type Spec struct {
	// Shards is the initial number of partitions (>= 1). Reshard can grow
	// or shrink the live count afterwards; NumShards reports it.
	Shards int
	// Keys maps relation name to its partition-key attribute. Relations
	// absent from the map are broadcast to every shard. nil means
	// DeriveKeys(schema, A, db, DefaultMinPartitionRows). This is the
	// initial assignment; Repartition moves it afterwards and Keys()
	// reports the live one.
	Keys map[string]string
	// PlanCacheSize overrides each engine's plan-cache capacity
	// (0 = the core default). Engines created by Reshard growth inherit it.
	PlanCacheSize int
	// Vnodes is the virtual nodes per shard on the consistent-hash ring
	// (0 = DefaultVnodes).
	Vnodes int
	// BroadcastMaxRows is the row count past which a broadcast relation
	// is demoted to partitioned by a background Repartition
	// (0 = DefaultBroadcastMaxRows, negative = never demote).
	BroadcastMaxRows int
}

// DeriveKeys picks a partition key per relation from the access schema:
// the attribute that appears in the X (index) side of the most
// non-membership constraints, breaking ties toward shorter X lists and
// then lexicographically — the attribute the covered workload most often
// binds. Relations with no such attribute, or with fewer than minRows
// tuples in db (skipped when db is nil or minRows <= 0), are left out of
// the map and therefore broadcast.
func DeriveKeys(schema ra.Schema, A *access.Schema, db *store.DB, minRows int) map[string]string {
	keys := map[string]string{}
	for _, rel := range schema.Relations() {
		if db != nil && minRows > 0 {
			rr, err := db.Rel(rel)
			if err != nil || rr.Len() < minRows {
				continue
			}
		}
		if attr, ok := deriveKey(schema, A, rel); ok {
			keys[rel] = attr
		}
	}
	return keys
}

// deriveKey scores one relation's attributes against the access schema
// and returns the best partition key, or ok=false when no attribute
// appears on the X side of any non-membership constraint.
func deriveKey(schema ra.Schema, A *access.Schema, rel string) (string, bool) {
	type cand struct {
		attr    string
		score   int
		minXLen int
	}
	var best *cand
	for _, a := range schema[rel] {
		c := cand{attr: a, minXLen: 1 << 30}
		for _, con := range A.ForRel(rel) {
			if con.IsIndexing() && len(con.X) == 1 {
				continue // membership R(a → a, 1): holds vacuously, no signal
			}
			for _, x := range con.X {
				if x == a {
					c.score++
					if len(con.X) < c.minXLen {
						c.minXLen = len(con.X)
					}
					break
				}
			}
		}
		if c.score == 0 {
			continue
		}
		if best == nil || c.score > best.score ||
			(c.score == best.score && (c.minXLen < best.minXLen ||
				(c.minXLen == best.minXLen && c.attr < best.attr))) {
			cc := c
			best = &cc
		}
	}
	if best == nil {
		return "", false
	}
	return best.attr, true
}

// wstripes is the number of write-ordering stripes; writes to the same
// tuple serialize on one stripe so every engine applies them in the same
// order. Reshard's and Repartition's copy and cleanup loops take the same
// stripe per row, which is how migration serializes against concurrent
// writes of the rows it is moving.
const wstripes = 256

// member is one shard engine plus its router-side execution counter and
// its bounded gather worker pool. Members are identified by pointer: a
// Reshard that grows the cluster keeps the surviving members and appends
// fresh ones, so counters carry across ring changes.
type member struct {
	eng     *core.Engine
	queries atomic.Int64
	// pool bounds this member's concurrent gather executions (pool.go); a
	// member dropped by a shrink simply stops receiving tasks.
	pool *workerPool
}

// newMember wraps an engine as a cluster member with its worker pool.
func newMember(eng *core.Engine) *member {
	return &member{eng: eng, pool: newWorkerPool(gatherWorkers())}
}

// ringState is the immutable routing view swapped atomically at each ring
// epoch: the ring, the member engines it places keys on, and the epoch
// number. Readers load it once per query, so a query never observes a
// half-flipped ring.
type ringState struct {
	epoch   uint64
	ring    *Ring
	members []*member
}

// partState is the immutable placement assignment swapped atomically at
// each Repartition flip: which relations are partitioned, by which
// attribute, and the column position of that attribute. Readers load it
// once per query; the generation stamps cached routing decisions the same
// way the ring epoch does.
type partState struct {
	gen    uint64
	keys   map[string]string
	keyPos map[string]int
}

// placement returns the members that must hold tuple t of rel under this
// assignment: the ring owner of its key when partitioned, every member
// when broadcast.
func (ps *partState) placement(rel string, t value.Tuple, st *ringState) []*member {
	if pos, ok := ps.keyPos[rel]; ok {
		return []*member{st.members[st.ring.OwnerOf(t[pos])]}
	}
	return st.members
}

// Router partitions a database across N core.Engine shards and implements
// core.Service over the cluster, so the HTTP front end (internal/server)
// and the replay harness (internal/bench) serve it exactly like a single
// engine. No member holds the full database; queries whose shape cannot
// be distributed are decomposed and executed across the shards by the
// residue executor (residue.go).
//
// A Router is safe for concurrent use. All reads and writes must go
// through it once it is built: New consumes the source database to build
// the shard slices, and writes applied directly to any member engine
// would diverge from the cluster.
type Router struct {
	schema ra.Schema
	spec   Spec

	// part is the live placement assignment (partition keys and their
	// column positions), swapped atomically by Repartition's flip.
	part atomic.Pointer[partState]

	// state is the live routing view (ring, members, epoch), swapped
	// atomically by Reshard's flip.
	state atomic.Pointer[ringState]
	// mig is the in-flight membership migration, nil when stable.
	mig atomic.Pointer[migration]
	// rp is the in-flight placement migration, nil when stable. mig and
	// rp are mutually exclusive: both run under rmu.
	rp atomic.Pointer[repartition]
	// rs is the read fence: every Execute holds it shared from the moment
	// it loads state until its engines have answered, and the flips of
	// Reshard and Repartition take it exclusively (and release
	// immediately) before their cleanup sweeps — so no query that routed
	// by the old view can still be running when the sweep starts deleting
	// moved rows.
	rs sync.RWMutex

	// wmu stripes same-tuple writes into a fixed order across engines.
	wmu [wstripes]sync.Mutex
	// cmu serializes access-schema mutations so concurrent
	// AddConstraints / RemoveConstraint calls cannot interleave their
	// per-engine fan-outs and break version lockstep. It also guards
	// fresh: engines a growing Reshard has built but not yet flipped in,
	// which must join the fan-out the moment they can receive queries.
	cmu   sync.Mutex
	fresh []*member
	// rmu serializes Reshard and Repartition calls; TryLock turns overlap
	// into an error.
	rmu sync.Mutex

	// ivmCfg is the last SetIVMConfig fan-out, replayed onto engines a
	// growing Reshard builds; nil means engines keep their default.
	ivmCfg atomic.Pointer[ivm.Config]

	// decisions caches routing decisions by query fingerprint. Routing
	// depends on the canonical query, the placement assignment and the
	// ring — never on data or the access schema — so every entry is
	// stamped with its (epoch, generation) and ignored once either moves.
	decisions *cache.Cache

	// aq is the broadcast apply pipeline: the anchor's write commits
	// synchronously, the other members' copies are enqueued here per
	// relation and applied in batches (applyqueue.go). Reads fence the
	// lanes of the broadcast relations they touch first.
	aq *applyQueue

	// sizes tracks the logical row count per relation, maintained by the
	// first (verdict-source) apply of every write, so DBSize needs no
	// fence and no full engine: the sum counts every tuple exactly once
	// regardless of replication or migration copies.
	sizes map[string]*atomic.Int64

	// demoting has one latch per relation; set while a growth-triggered
	// background demotion of that broadcast relation is in flight, so one
	// burst of inserts starts one Repartition.
	demoting map[string]*atomic.Bool

	// hmu guards history: the normalized form and options of recently
	// routed queries, keyed by fingerprint. Reshard growth replays it
	// against fresh engines to prewarm their plan caches before the flip.
	// Bounded at historyCap; recorded only on decision-cache misses, so
	// the hot path never touches it.
	hmu     sync.Mutex
	history map[string]prewarmEntry

	// routed counts routing decisions by kind; doubled counts keyed
	// fast-path reads that double-routed to two owners mid-migration
	// (executed via gather, reported separately from Single).
	routed  [3]atomic.Int64
	doubled atomic.Int64

	// Residue-execution counters (residue.go, shuffle.go,
	// repartition.go), surfaced by ResidueStats.
	resSemiJoins    atomic.Int64
	resShuffles     atomic.Int64
	resRepartitions atomic.Int64
	resBytesShipped atomic.Int64

	// hookMigBatch, when set, runs between migration batches. Tests use it
	// to slow or freeze a migration deterministically; it is never set in
	// production.
	hookMigBatch func()

	// wal, when non-nil, makes the cluster durable (built by OpenDurable,
	// never set after traffic starts): every tuple write is appended to
	// the log by the apply queue before it is acknowledged, constraint
	// changes are logged under cmu, and checkpoints snapshot a logical
	// image assembled from the shard slices at a stamped LSN. ckEvery
	// is the automatic checkpoint cadence in logged records (<= 0 off),
	// ckBusy collapses concurrent triggers to one background checkpoint.
	wal     *wal.Log
	ckEvery int64
	ckBusy  atomic.Bool
}

// New partitions db across spec.Shards engines and returns the router.
// Partitioned relations are split by consistent hash of their key
// attribute, broadcast ones copied to every shard; db itself is only a
// source and is not retained, so the caller must route all subsequent
// reads and writes through the returned Router.
func New(schema ra.Schema, A *access.Schema, db *store.DB, spec Spec) (*Router, error) {
	if spec.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", spec.Shards)
	}
	if db == nil {
		db = store.NewDB(schema)
	}
	if spec.Keys == nil {
		spec.Keys = DeriveKeys(schema, A, db, DefaultMinPartitionRows)
	}
	if spec.Vnodes <= 0 {
		spec.Vnodes = DefaultVnodes
	}
	keys := make(map[string]string, len(spec.Keys))
	keyPos := map[string]int{}
	for rel, attr := range spec.Keys {
		attrs, ok := schema[rel]
		if !ok {
			return nil, fmt.Errorf("shard: partition key on unknown relation %q", rel)
		}
		pos := -1
		for i, a := range attrs {
			if a == attr {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("shard: relation %s has no attribute %q to partition by", rel, attr)
		}
		keys[rel] = attr
		keyPos[rel] = pos
	}
	r := &Router{
		schema:    schema,
		spec:      spec,
		decisions: cache.New(4096, 8),
		history:   map[string]prewarmEntry{},
		sizes:     map[string]*atomic.Int64{},
		demoting:  map[string]*atomic.Bool{},
	}
	r.part.Store(&partState{gen: 1, keys: keys, keyPos: keyPos})
	ring := NewRing(spec.Shards, spec.Vnodes)
	dbs := make([]*store.DB, spec.Shards)
	for i := range dbs {
		dbs[i] = store.NewDB(schema)
	}
	for _, rel := range schema.Relations() {
		r.sizes[rel] = &atomic.Int64{}
		r.demoting[rel] = &atomic.Bool{}
		rows, err := db.Rows(rel)
		if err != nil {
			return nil, err
		}
		r.sizes[rel].Store(int64(len(rows)))
		pos, partitioned := keyPos[rel]
		for _, t := range rows {
			if partitioned {
				if _, err := dbs[ring.OwnerOf(t[pos])].Insert(rel, t); err != nil {
					return nil, err
				}
				continue
			}
			for _, sdb := range dbs {
				if _, err := sdb.Insert(rel, t); err != nil {
					return nil, err
				}
			}
		}
	}
	members := make([]*member, spec.Shards)
	for i, sdb := range dbs {
		eng, err := core.NewEngine(schema, A, sdb)
		if err != nil {
			return nil, err
		}
		members[i] = newMember(eng)
	}
	r.aq = newApplyQueue(schema, nil)
	r.state.Store(&ringState{epoch: 1, ring: ring, members: members})
	if spec.PlanCacheSize > 0 {
		r.SetPlanCacheCapacity(spec.PlanCacheSize)
	}
	return r, nil
}

// OpenDurable opens (or creates) a durable cluster backed by the log in
// cfg.Dir. Recovery mirrors core.OpenDurable: when the directory holds
// prior state, db and A are IGNORED — the newest loadable checkpoint is
// loaded, the log suffix replayed onto it, and the recovered database is
// re-partitioned across spec.Shards fresh engines (indices rebuilt once
// per engine). On a fresh directory the provided db and A are adopted
// and an initial checkpoint makes the seed durable immediately. The log
// records logically ordered ops over the whole instance, so a single
// engine and a cluster recover to identical logical states from the same
// directory. Placement (partition keys) is not logical state and is not
// logged; recovery re-derives it from spec.Keys.
func OpenDurable(schema ra.Schema, A *access.Schema, db *store.DB, spec Spec, cfg core.DurableConfig) (*Router, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("shard: durable router needs a data directory")
	}
	rec, err := wal.RecoverDB(cfg.Dir, schema)
	if err != nil {
		return nil, err
	}
	if rec.Found {
		db = rec.DB
		A = access.NewSchema(rec.Constraints...)
	} else if A == nil {
		A = access.NewSchema()
	}
	log, err := wal.Open(cfg.Dir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	r, err := New(schema, A, db, spec)
	if err != nil {
		log.Close()
		return nil, err
	}
	r.wal = log
	r.ckEvery = cfg.Every()
	r.aq.wal = log
	if !rec.Found {
		if err := r.Checkpoint(); err != nil {
			log.Close()
			return nil, err
		}
	}
	return r, nil
}

// Router implements core.Service.
var _ core.Service = (*Router)(nil)

// hashKey hashes a canonical byte encoding to a shard-selection value.
// The same function is used for every relation, so equal key values land
// on the same shard regardless of which relation carries them — the
// property co-partitioned joins rely on.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// anchor returns member 0's engine — the member that survives every
// reshard and commits every broadcast write synchronously, making it the
// consistent source for the access schema, versions and broadcast rows.
func (r *Router) anchor() *core.Engine {
	return r.state.Load().members[0].eng
}

// ownerOf returns the index of the shard owning tuples whose partition
// key is v under the current ring.
func (r *Router) ownerOf(v value.Value) int {
	return r.state.Load().ring.OwnerOf(v)
}

// NumShards returns the live number of partitions; Reshard changes it.
func (r *Router) NumShards() int { return len(r.state.Load().members) }

// RingEpoch returns the current ring epoch. It starts at 1 and advances
// by one at each Reshard flip; routing decisions cached under an older
// epoch are never used again.
func (r *Router) RingEpoch() uint64 { return r.state.Load().epoch }

// Keys returns the live partition-key assignment (a copy). Relations
// absent from the map are broadcast.
func (r *Router) Keys() map[string]string {
	ps := r.part.Load()
	out := make(map[string]string, len(ps.keys))
	for k, v := range ps.keys {
		out[k] = v
	}
	return out
}

// Schema returns the relational schema the cluster is bound to. The
// returned map is shared and must be treated as read-only.
func (r *Router) Schema() ra.Schema { return r.schema }

// Parse parses a query in the textual rule language.
func (r *Router) Parse(src string) (ra.Query, error) {
	return parser.Parse(src, r.schema)
}

// Execute normalizes q, picks a routing strategy (single shard,
// scatter/gather, or distributed residue; see the package comment) and
// returns the merged answer. Results are identical to a single engine
// over the unpartitioned database — including while a Reshard or
// Repartition is migrating rows.
//
// The analysis is amortized: the query is normalized and fingerprinted
// once, the routing decision is cached under the fingerprint, the ring
// epoch and the placement generation (sound: the fingerprint identifies
// the canonical query including its constants, and routing depends only
// on the query, the placement and the ring), and the fingerprint is
// handed to the member engines so none of them repeats the work.
//
// Read-your-writes: before touching any engine the router fences the
// apply-queue lanes of exactly the broadcast relations the query reads
// (dec.brels) — acknowledged writes to those relations are applied
// everywhere first, while backlogs on unrelated relations are left alone.
func (r *Router) Execute(q ra.Query, opts core.Options) (*exec.Table, *core.Report, error) {
	norm, err := ra.Normalize(q, r.schema)
	if err != nil {
		return nil, nil, err
	}
	fp := ra.FingerprintNormalized(norm)
	r.rs.RLock()
	defer r.rs.RUnlock()
	st := r.state.Load()
	ps := r.part.Load()
	var dec decision
	if v, ok := r.decisions.Get(fp); ok && v.(decision).epoch == st.epoch && v.(decision).pgen == ps.gen {
		dec = v.(decision)
	} else {
		dec = r.route(norm, st.ring, len(st.members), ps)
		dec.epoch = st.epoch
		dec.pgen = ps.gen
		r.decisions.Put(fp, dec)
		if opts.Cache {
			r.remember(fp, norm, opts)
		}
	}
	for _, rel := range dec.brels {
		r.aq.fenceRel(rel)
	}
	switch dec.kind {
	case routeSingle:
		m := st.members[dec.shard]
		if mig := r.mig.Load(); mig != nil && dec.keyed {
			if sec := r.secondaryOwner(norm, st, ps, mig); sec != nil && sec != m {
				// A keyed read whose owner differs between the rings runs as
				// a two-owner gather; counted as Double, not Single, so
				// RouteStats does not under-report gather load mid-reshard.
				r.doubled.Add(1)
				return r.gather(norm, fp, opts, []*member{m, sec})
			}
		}
		r.routed[routeSingle].Add(1)
		m.queries.Add(1)
		return m.eng.ExecuteNormalized(norm, fp, opts)
	case routeResidue:
		r.routed[routeResidue].Add(1)
		return r.execResidue(norm, fp, opts, st, ps)
	}
	r.routed[routeScatter].Add(1)
	return r.gather(norm, fp, opts, st.members)
}

// historyCap bounds the prewarm history; beyond it new fingerprints are
// not recorded (the hottest queries are seen first, which is what
// prewarming is for).
const historyCap = 512

// prewarmEntry is one remembered query: its normalized form plus the
// analysis-shaping options it ran under, enough to recompile it on a
// fresh engine.
type prewarmEntry struct {
	norm              ra.Query
	minimize, rewrite bool
}

// remember records a query for Reshard's plan-cache prewarming. Called on
// decision-cache misses only (first sighting per fingerprint and epoch).
func (r *Router) remember(fp string, norm ra.Query, opts core.Options) {
	r.hmu.Lock()
	defer r.hmu.Unlock()
	if _, ok := r.history[fp]; ok {
		return
	}
	if len(r.history) >= historyCap {
		return
	}
	r.history[fp] = prewarmEntry{norm: norm, minimize: opts.Minimize, rewrite: opts.Rewrite}
}

// prewarmFresh compiles the remembered query history into the plan caches
// of engines a growing Reshard has just built, before they can receive
// traffic: compilation is data-independent, so the fresh engines start
// with the same hot set the surviving members already cached instead of
// paying a cold compile per query after the flip. Best effort — a query
// that no longer compiles is skipped.
func (r *Router) prewarmFresh(fresh []*member) {
	if len(fresh) == 0 {
		return
	}
	r.hmu.Lock()
	entries := make(map[string]prewarmEntry, len(r.history))
	for fp, e := range r.history {
		entries[fp] = e
	}
	r.hmu.Unlock()
	for _, m := range fresh {
		for fp, e := range entries {
			opts := core.Options{Cache: true, Minimize: e.minimize, Rewrite: e.rewrite}
			_ = m.eng.Prewarm(e.norm, fp, opts)
		}
	}
}

// secondaryOwner resolves the double-routing target for a keyed fast-path
// query while a migration is in flight: the owner of the same key
// constants under the ring the live state is NOT using. It returns nil
// when the query does not single-shard under the other ring, or when it
// is not monotone — a difference evaluated over a mid-copy partial slice
// could fabricate rows its full slice would cancel, so non-monotone
// queries stay on the exact owner (which every migration phase keeps
// complete; see rebalance.go).
func (r *Router) secondaryOwner(norm ra.Query, st *ringState, ps *partState, mig *migration) *member {
	otherRing, otherMembers := mig.newRing, mig.newMembers
	if st.ring == mig.newRing {
		otherRing, otherMembers = mig.oldRing, mig.oldMembers
	}
	if !monotone(norm) {
		return nil
	}
	dec := r.route(norm, otherRing, len(otherMembers), ps)
	if dec.kind != routeSingle || !dec.keyed {
		return nil
	}
	return otherMembers[dec.shard]
}

// monotone reports whether norm contains no difference — the condition
// under which evaluating it over a subset of the database can only lose
// rows, never invent them, making a union with the exact owner's answer
// exact.
func monotone(norm ra.Query) bool {
	ok := true
	ra.Walk(norm, func(n ra.Query) {
		if _, isDiff := n.(*ra.Diff); isDiff {
			ok = false
		}
	})
	return ok
}

// gather executes norm on every given member concurrently and merges the
// results: rows by set union, access counts by summation, coverage and
// boundedness verdicts by conjunction. Scatter/gather runs it over the
// full member set; double-routed fast-path reads over the two owners of a
// mid-migration key. Per-shard executions run on each member's bounded
// worker pool (pool.go), so concurrent gathers share shards × GOMAXPROCS
// execution goroutines instead of spawning one per member per request.
// On any member error the first error (in member order) is returned and
// every sibling result is discarded.
func (r *Router) gather(norm ra.Query, fp string, opts core.Options, members []*member) (*exec.Table, *core.Report, error) {
	start := time.Now()
	tables := make([]*exec.Table, len(members))
	reports := make([]*core.Report, len(members))
	errs := make([]error, len(members))
	if len(members) == 1 {
		members[0].queries.Add(1)
		tables[0], reports[0], errs[0] = members[0].eng.ExecuteNormalized(norm, fp, opts)
	} else {
		var wg sync.WaitGroup
		for i := range members {
			i := i
			wg.Add(1)
			members[i].pool.submit(func() {
				defer wg.Done()
				members[i].queries.Add(1)
				tables[i], reports[i], errs[i] = members[i].eng.ExecuteNormalized(norm, fp, opts)
			})
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	out := exec.UnionTables(tables[0].Cols, tables...)
	rep := *reports[0]
	for _, sub := range reports[1:] {
		rep.Covered = rep.Covered && sub.Covered
		rep.Bounded = rep.Bounded && sub.Bounded
		rep.CacheHit = rep.CacheHit && sub.CacheHit
		rep.Stats.Accessed += sub.Stats.Accessed
		rep.Stats.Fetched += sub.Stats.Fetched
		rep.Stats.Scanned += sub.Stats.Scanned
		if sub.CheckTime > rep.CheckTime {
			rep.CheckTime = sub.CheckTime
		}
		if sub.PlanTime > rep.PlanTime {
			rep.PlanTime = sub.PlanTime
		}
		if sub.MinimizeTime > rep.MinimizeTime {
			rep.MinimizeTime = sub.MinimizeTime
		}
		if sub.Version > rep.Version {
			rep.Version = sub.Version
		}
	}
	rep.Stats.Duration = time.Since(start)
	return out, &rep, nil
}

// stripeOf picks the write-ordering stripe for one tuple.
func stripeOf(rel string, t value.Tuple) uint64 {
	return hashKey(rel+"\x00"+t.Key()) % wstripes
}

// Insert adds a tuple to the cluster: synchronously to the owning shard
// for a partitioned relation; for a broadcast relation synchronously to
// the anchor and through the batched per-relation apply queue to the
// rest. Same-tuple writes are ordered by an internal stripe lock so all
// member engines converge to the same state. Each engine maintains its
// indices incrementally, so cached plans everywhere remain valid and
// Version does not change. During a migration the write additionally
// covers the tuple's placement under the incoming ring or key
// (rebalance.go, repartition.go).
func (r *Router) Insert(rel string, t value.Tuple) (bool, error) {
	return r.mutate(rel, t, false)
}

// Delete removes a tuple from the cluster, routing like Insert. During
// and just after a migration, deletes cover the tuple's placement under
// both views so no stale copy of the tuple can outlive it.
func (r *Router) Delete(rel string, t value.Tuple) (bool, error) {
	return r.mutate(rel, t, true)
}

// mutate applies one tuple write: validate against the schema up front,
// then under the tuple's ordering stripe commit synchronously to the
// targets chosen by writeTargets and hand the rest to the apply queue.
// The first target always holds a complete slice for the tuple under the
// view readers are currently routed by, so its verdict is the caller's
// result and it maintains the logical size counter.
//
// For a broadcast relation in steady state only the anchor (targets[0])
// is synchronous: the other members' copies are enqueued on the
// relation's lane — the enqueue happens under the stripe, which makes
// lane order equal stripe order per tuple. While the relation itself is
// being repartitioned every target is synchronous (its lane was fenced
// empty when the move started), and partitioned writes are always
// synchronous, passing through the queue only to obtain a write-ahead-log
// LSN in durable mode.
func (r *Router) mutate(rel string, t value.Tuple, del bool) (bool, error) {
	attrs, ok := r.schema[rel]
	if !ok {
		return false, fmt.Errorf("shard: unknown relation %q", rel)
	}
	if !del && len(t) != len(attrs) {
		return false, fmt.Errorf("shard: %s expects %d values, got %d", rel, len(attrs), len(t))
	}
	apply := (*core.Engine).Insert
	if del {
		apply = (*core.Engine).Delete
	}
	// Clone before enqueueing: the queued op outlives this call, and the
	// caller is free to reuse its tuple slice afterwards.
	t = t.Clone()
	stripe := stripeOf(rel, t)
	mu := &r.wmu[stripe]
	mu.Lock()
	// Load the placement under the stripe: Repartition publishes its new
	// state before its stripe barrier, so every write past the barrier
	// sees it.
	ps := r.part.Load()
	pos, partitioned := ps.keyPos[rel]
	rp := r.rp.Load()
	relMoving := rp != nil && rp.rel == rel
	if (partitioned || relMoving) && len(t) != len(attrs) {
		mu.Unlock()
		return false, fmt.Errorf("shard: %s expects %d values, got %d", rel, len(attrs), len(t))
	}
	targets := r.writeTargets(rel, t, pos, partitioned, del, rp)
	asyncOK := !partitioned && !relMoving && len(targets) > 1
	changed, err := apply(targets[0].eng, rel, t)
	if err != nil {
		mu.Unlock()
		return false, err
	}
	if asyncOK {
		engs := make([]*core.Engine, 0, len(targets)-1)
		for _, m := range targets[1:] {
			engs = append(engs, m.eng)
		}
		// In durable mode the enqueue appends to the write-ahead log before
		// the write is acknowledged; a log failure rejects the write (and
		// poisons the log — Health reports the retained error until
		// restart).
		if _, err := r.aq.enqueue(rel, t, del, engs); err != nil {
			mu.Unlock()
			return false, err
		}
	} else {
		for _, m := range targets[1:] {
			if _, err := apply(m.eng, rel, t); err != nil {
				mu.Unlock()
				return false, err
			}
		}
		if r.wal != nil {
			if _, err := r.aq.enqueue(rel, t, del, nil); err != nil {
				mu.Unlock()
				return false, err
			}
		}
	}
	if changed {
		if del {
			r.sizes[rel].Add(-1)
		} else {
			r.sizes[rel].Add(1)
		}
	}
	mu.Unlock()
	r.maybeCheckpoint()
	if changed && !del && !partitioned && !relMoving {
		r.maybeDemote(rel)
	}
	return changed, nil
}

// maybeDemote triggers a background Repartition of a broadcast relation
// whose logical row count has outgrown the broadcast threshold, onto a
// key derived from the access schema (first schema attribute when none
// scores). The per-relation latch collapses a burst of inserts to one
// attempt; a failed or skipped attempt (e.g. a Reshard in flight) clears
// the latch so a later insert retries.
func (r *Router) maybeDemote(rel string) {
	max := r.spec.BroadcastMaxRows
	if max == 0 {
		max = DefaultBroadcastMaxRows
	}
	if max < 0 || r.sizes[rel].Load() <= int64(max) {
		return
	}
	latch := r.demoting[rel]
	if !latch.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer latch.Store(false)
		key, ok := deriveKey(r.schema, r.anchor().AccessSnapshot(), rel)
		if !ok {
			key = r.schema[rel][0]
		}
		_, _ = r.Repartition(context.Background(), rel, key)
	}()
}

// maybeCheckpoint starts a background checkpoint when the replay debt
// passed the configured cadence and none is already running.
func (r *Router) maybeCheckpoint() {
	if r.wal == nil || r.ckEvery <= 0 || r.wal.SinceCheckpoint() < r.ckEvery {
		return
	}
	if !r.ckBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer r.ckBusy.Store(false)
		_ = r.Checkpoint() // failure is retained by the log; Health reports it
	}()
}

// Checkpoint writes a durable, LSN-stamped snapshot of the logical
// database — assembled from the shard slices, since no single engine
// holds it — and prunes log segments it makes dead. The stamp W is read
// under cmu, so no constraint record can be mid-append (constraint
// changes log under cmu, after they are applied to the anchor). No fence
// is needed for the rows: every op with LSN <= W finished its synchronous
// applies before its LSN was assigned, and the assembly reads only
// synchronously written placements — the anchor for broadcast relations,
// the owners for partitioned ones (every member, since mid-migration
// copies are deduplicated by SaveSnapshot and the readers' view is always
// complete across the member union). Ops beyond the stamp are repaired by
// idempotent in-order replay, exactly as for a single engine. No-op on a
// non-durable router.
func (r *Router) Checkpoint() error {
	if r.wal == nil {
		return nil
	}
	r.cmu.Lock()
	lsn := r.wal.LastLSN()
	cons := r.anchor().AccessSnapshot().Constraints
	r.cmu.Unlock()
	st := r.state.Load()
	ps := r.part.Load()
	rels := make(map[string][]value.Tuple, len(r.schema))
	for _, rel := range r.schema.Relations() {
		if _, partitioned := ps.keyPos[rel]; partitioned {
			var all []value.Tuple
			for _, m := range st.members {
				rows, err := m.eng.DB().Rows(rel)
				if err != nil {
					return err
				}
				all = append(all, rows...)
			}
			rels[rel] = all
			continue
		}
		rows, err := st.members[0].eng.DB().Rows(rel)
		if err != nil {
			return err
		}
		rels[rel] = rows
	}
	return r.wal.WriteCheckpoint(lsn, func(w io.Writer) error {
		return store.SaveSnapshot(w, r.schema, cons, rels)
	})
}

// Close drains the apply queue, then flushes and closes the write-ahead
// log. Queries remain possible; further writes fail. No-op on a
// non-durable router.
func (r *Router) Close() error {
	if r.wal == nil {
		return nil
	}
	r.aq.fenceAll()
	return r.wal.Close()
}

// Health reports nil while the cluster's write pipeline is intact. A
// non-nil error is the first broadcast-apply rejection or log append/
// fsync/checkpoint failure — from then on acknowledged writes may be
// missing from some member or the log, and the process should be
// restarted (recovery replays the intact prefix). Apply errors are
// reported even on a non-durable router.
func (r *Router) Health() error {
	if err := r.aq.health(); err != nil {
		return err
	}
	if r.wal != nil {
		return r.wal.Err()
	}
	return nil
}

// DurabilityStats returns the write-ahead-log counters and ok=true when
// the router is durable.
func (r *Router) DurabilityStats() (wal.Stats, bool) {
	if r.wal == nil {
		return wal.Stats{}, false
	}
	return r.wal.Stats(), true
}

// WAL exposes the router's write-ahead log for read-side consumers (the
// replication stream endpoint). Nil when the router is not durable.
func (r *Router) WAL() *wal.Log { return r.wal }

// writeTargets picks the member engines one tuple write must reach,
// ordered so the FIRST target is always complete for the tuple under the
// view the readers are currently routed by — its apply verdict is the
// caller's result. Stable cluster: the ring owner (partitioned) or every
// member, anchor first (broadcast). While the relation's own placement is
// moving (Repartition) the targets are the union of its old and new
// placements with phase rules mirroring Reshard's; while the ring is
// moving (Reshard) the rules are phase-dependent so that the readers'
// ring always sees a complete slice, and no copy of a deleted tuple
// survives anywhere:
//
//   - copy (readers on the old view): apply under both views, old
//     placement first — it stays exact for reads, the new placement
//     fills in for the flip.
//   - cleanup (flipped; readers on the new view): inserts go to the new
//     placement only, so the straggler sweep cannot leak fresh copies
//     onto shards that no longer hold the tuple; deletes also cover the
//     old placement — new first, since the sweep may already have
//     emptied the old one — to kill any not-yet-swept copy.
//   - abort (rolling back; readers on the old view): the mirror image —
//     inserts to the old placement only, deletes cover both, old first.
func (r *Router) writeTargets(rel string, t value.Tuple, pos int, partitioned, del bool, rp *repartition) []*member {
	if rp != nil && rp.rel == rel {
		st := r.state.Load()
		oldT := rp.oldPS.placement(rel, t, st)
		newT := rp.newPS.placement(rel, t, st)
		switch phase := rp.phase.Load(); {
		case del && phase == phaseCleanup:
			return unionMembers(newT, oldT)
		case del || phase == phaseCopy:
			return unionMembers(oldT, newT)
		case phase == phaseCleanup:
			return newT
		default: // phaseAbort insert
			return oldT
		}
	}
	mig := r.mig.Load()
	if mig == nil {
		st := r.state.Load()
		if partitioned {
			return []*member{st.members[st.ring.OwnerOf(t[pos])]}
		}
		return st.members
	}
	phase := mig.phase.Load()
	if partitioned {
		oldM := mig.oldMembers[mig.oldRing.OwnerOf(t[pos])]
		newM := mig.newMembers[mig.newRing.OwnerOf(t[pos])]
		switch {
		case del && phase == phaseCleanup:
			if oldM == newM {
				return []*member{newM}
			}
			return []*member{newM, oldM}
		case del || phase == phaseCopy:
			if oldM == newM {
				return []*member{oldM}
			}
			return []*member{oldM, newM}
		case phase == phaseCleanup:
			return []*member{newM}
		default: // phaseAbort insert
			return []*member{oldM}
		}
	}
	switch {
	case del || phase == phaseCopy:
		return unionMembers(mig.oldMembers, mig.newMembers)
	case phase == phaseCleanup:
		return mig.newMembers
	default: // phaseAbort insert
		return mig.oldMembers
	}
}

// unionMembers merges two member slices, deduplicating by identity.
func unionMembers(a, b []*member) []*member {
	out := make([]*member, 0, len(a)+len(b))
	seen := make(map[*member]bool, len(a)+len(b))
	for _, s := range [][]*member{a, b} {
		for _, m := range s {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// AddConstraints installs extra access constraints on every engine of the
// cluster, building their indices shard-locally and bumping every
// engine's version in lockstep (each engine purges its own plan cache).
// Constraints are validated against the schema up front; index builds do
// not themselves enforce bounds, so there is no data-dependent failure to
// order around. The anchor goes first — its version and access snapshot
// are the cluster's reference — and the change is logged (durable mode)
// after the anchor accepted it and before it is acknowledged. Mutations
// are serialized against each other so concurrent calls cannot skew
// versions across engines; engines a growing Reshard has already built
// join the fan-out immediately. The apply queue is drained first so every
// member's index build sees every acknowledged write.
func (r *Router) AddConstraints(cs ...access.Constraint) error {
	for _, c := range cs {
		if err := c.Validate(r.schema); err != nil {
			return err
		}
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	r.aq.fenceAll()
	engs := r.shardEnginesLocked()
	if err := engs[0].AddConstraints(cs...); err != nil {
		return err
	}
	// Log after the anchor accepted (the log must only contain applicable
	// records) and before returning, so the change is durable by the time
	// it is acknowledged. cmu orders constraint records against each other
	// and against checkpoint stamps.
	if r.wal != nil {
		for _, c := range cs {
			if err := r.aq.logRecord(wal.Record{Kind: wal.KindAddConstraint, Con: c}); err != nil {
				return err
			}
		}
	}
	for _, eng := range engs[1:] {
		if err := eng.AddConstraints(cs...); err != nil {
			return fmt.Errorf("shard: cluster left inconsistent by partial constraint install: %w", err)
		}
	}
	return nil
}

// RemoveConstraint uninstalls a constraint on every engine, dropping the
// shard-local indices and bumping every version. It reports whether the
// constraint was present.
func (r *Router) RemoveConstraint(c access.Constraint) bool {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	r.aq.fenceAll()
	engs := r.shardEnginesLocked()
	found := engs[0].RemoveConstraint(c)
	if found && r.wal != nil {
		// A log failure here is retained by the queue and surfaced by
		// Health; the in-memory removal stands either way.
		_ = r.aq.logRecord(wal.Record{Kind: wal.KindRemoveConstraint, Con: c})
	}
	for _, eng := range engs[1:] {
		if eng.RemoveConstraint(c) {
			found = true
		}
	}
	return found
}

// shardEnginesLocked lists every engine a schema mutation must reach —
// the live members (anchor first) plus any engines a growing Reshard has
// built but not yet flipped in. Callers must hold cmu.
func (r *Router) shardEnginesLocked() []*core.Engine {
	st := r.state.Load()
	out := make([]*core.Engine, 0, len(st.members)+len(r.fresh))
	seen := make(map[*core.Engine]bool, len(st.members)+len(r.fresh))
	for _, m := range st.members {
		if !seen[m.eng] {
			seen[m.eng] = true
			out = append(out, m.eng)
		}
	}
	for _, m := range r.fresh {
		if !seen[m.eng] {
			seen[m.eng] = true
			out = append(out, m.eng)
		}
	}
	return out
}

// engines lists every member engine (plus pending Reshard growth
// engines).
func (r *Router) engines() []*core.Engine {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return r.shardEnginesLocked()
}

// AccessSnapshot returns a consistent copy of the installed access
// schema (identical on every engine of a healthy cluster), read from the
// anchor.
func (r *Router) AccessSnapshot() *access.Schema {
	return r.anchor().AccessSnapshot()
}

// Version returns the cluster's access-schema generation. All engines
// move in lockstep because every mutation fans out through the router;
// tuple movement during Reshard or Repartition never touches it.
func (r *Router) Version() uint64 { return r.anchor().Version() }

// CacheStats returns the plan-cache counters summed across every engine.
func (r *Router) CacheStats() cache.Stats {
	var out cache.Stats
	for _, eng := range r.engines() {
		s := eng.CacheStats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Purges += s.Purges
		out.Entries += s.Entries
	}
	return out
}

// SetPlanCacheCapacity resizes every engine's plan cache, dropping all
// entries; capacity <= 0 disables caching cluster-wide.
func (r *Router) SetPlanCacheCapacity(capacity int) {
	for _, eng := range r.engines() {
		eng.SetPlanCacheCapacity(capacity)
	}
}

// IVMStats returns the materialized-answer counters merged across every
// engine. Budget sums too, so it reads as the cluster-wide view capacity.
func (r *Router) IVMStats() ivm.Stats {
	var out ivm.Stats
	for _, eng := range r.engines() {
		out = out.Merge(eng.IVMStats())
	}
	return out
}

// SetIVMConfig replaces the materialization policy on every engine,
// dropping all live views; engines created by later Reshard growth
// inherit it. A config with Budget <= 0 disables incremental answer
// maintenance cluster-wide.
func (r *Router) SetIVMConfig(cfg ivm.Config) {
	r.ivmCfg.Store(&cfg)
	for _, eng := range r.engines() {
		eng.SetIVMConfig(cfg)
	}
}

// PurgeMaterializations drops every live materialized answer on every
// engine. Reshard and Repartition call it before their bulk copy phases:
// views would stay coherent through the move (migration copies flow
// through the same engine write paths as client writes), but paying
// per-tuple delta maintenance for a whole-slice copy is pure waste, and
// the rows land on engines whose fingerprints never earned them.
func (r *Router) PurgeMaterializations() {
	for _, eng := range r.engines() {
		eng.PurgeMaterializations()
	}
}

// DBSize returns the logical |D|: every tuple counted exactly once
// regardless of replication or in-flight migration copies. It is
// maintained by the write path (the verdict-source apply of each write),
// so it needs no fence and no engine that holds the full database.
func (r *Router) DBSize() int64 {
	var n int64
	for _, s := range r.sizes {
		n += s.Load()
	}
	return n
}

// IndexEntries returns the logical |I_A|, summed per relation from the
// engines that hold it: the anchor for broadcast relations, every member
// for partitioned ones. Stable-state slices are disjoint, so the sum is
// exact; while a migration has rows double-placed the sum can count an
// entry twice, making it a (briefly held) upper bound — acceptable for
// the observability surface it feeds.
func (r *Router) IndexEntries() int64 {
	st := r.state.Load()
	ps := r.part.Load()
	var n int64
	for _, rel := range r.schema.Relations() {
		if _, partitioned := ps.keyPos[rel]; partitioned {
			for _, m := range st.members {
				n += m.eng.DB().IndexEntriesFor(rel)
			}
			continue
		}
		n += st.members[0].eng.DB().IndexEntriesFor(rel)
	}
	return n
}

// ApplyQueueStats returns an observability snapshot of the broadcast
// apply pipeline: backlog depth (watermark lag), batching counters and
// store errors. Surfaced by GET /stats for operators watching the write
// path.
func (r *Router) ApplyQueueStats() ApplyQueueStats { return r.aq.stats() }

// RouteStats counts routing decisions since the router was built.
type RouteStats struct {
	// Single counts queries answered by exactly one shard (unpartitioned
	// queries and the covered-access fast path).
	Single int64
	// Double counts keyed fast-path reads that double-routed to the key's
	// owner under both rings of an in-flight migration — each one is a
	// two-owner gather, not a single-shard execution.
	Double int64
	// Scattered counts scatter/gather executions (each runs on every
	// shard).
	Scattered int64
	// Residue counts executions decomposed by the distributed residue
	// executor (residue.go) — queries whose shape neither single-shards
	// nor scatters as a whole.
	Residue int64
}

// RouteStats returns the routing-decision counters.
func (r *Router) RouteStats() RouteStats {
	return RouteStats{
		Single:    r.routed[routeSingle].Load(),
		Double:    r.doubled.Load(),
		Scattered: r.routed[routeScatter].Load(),
		Residue:   r.routed[routeResidue].Load(),
	}
}

// ResidueStats counts the work of the distributed residue executor and
// the placement migrator, surfaced by GET /stats.
type ResidueStats struct {
	// SemiJoins counts semi-join reductions applied before a shuffle;
	// Shuffles counts hash-shuffle joins executed over the member pools.
	SemiJoins, Shuffles int64
	// BroadcastRels is the number of relations currently broadcast to
	// every shard (the non-partitioned set).
	BroadcastRels int
	// Repartitions counts completed placement changes (Repartition calls
	// and automatic demotions).
	Repartitions int64
	// BytesShipped approximates the volume moved between members by
	// shuffles: the encoded size of every row handed to a shuffle bucket.
	BytesShipped int64
}

// ResidueStats returns the residue-execution counters.
func (r *Router) ResidueStats() ResidueStats {
	ps := r.part.Load()
	return ResidueStats{
		SemiJoins:     r.resSemiJoins.Load(),
		Shuffles:      r.resShuffles.Load(),
		BroadcastRels: len(r.schema.Relations()) - len(ps.keys),
		Repartitions:  r.resRepartitions.Load(),
		BytesShipped:  r.resBytesShipped.Load(),
	}
}

// RouteKind reports the strategy Execute would pick for q right now:
// "single", "scatter" or "residue". Exposed for workload tooling
// (internal/bench) that wants to classify candidate queries without
// executing them.
func (r *Router) RouteKind(q ra.Query) (string, error) {
	norm, err := ra.Normalize(q, r.schema)
	if err != nil {
		return "", err
	}
	st := r.state.Load()
	dec := r.route(norm, st.ring, len(st.members), r.part.Load())
	switch dec.kind {
	case routeSingle:
		return "single", nil
	case routeScatter:
		return "scatter", nil
	default:
		return "residue", nil
	}
}

// PerShardStats returns one observability snapshot per member engine —
// live shards labeled "shard/i" in order — for the /stats per-shard
// breakdown. Queries counts executions routed to each engine (including
// subtree executions shipped by the residue executor); comparing them
// across shards exposes routing skew, and comparing DBSize exposes data
// skew.
func (r *Router) PerShardStats() []core.EngineStat {
	st := r.state.Load()
	out := make([]core.EngineStat, 0, len(st.members))
	for i, m := range st.members {
		es := m.eng.Stat()
		es.Label = fmt.Sprintf("shard/%d", i)
		es.Queries = m.queries.Load()
		out = append(out, es)
	}
	return out
}

// String summarizes the partitioning for logs and tools.
func (r *Router) String() string {
	ps := r.part.Load()
	rels := make([]string, 0, len(ps.keys))
	for rel, key := range ps.keys {
		rels = append(rels, rel+"/"+key)
	}
	sort.Strings(rels)
	st := r.state.Load()
	return fmt.Sprintf("shard.Router{shards: %d, epoch: %d, partitioned: %v}",
		len(st.members), st.epoch, rels)
}

// Package shard partitions the bounded-evaluation serving layer across N
// independent core.Engine instances and routes queries and writes among
// them, scaling the single-engine ceiling horizontally while preserving
// every per-engine invariant (the PR 1 plan-cache validity rules) shard by
// shard.
//
// # Partitioning
//
// Each relation is either partitioned — its tuples are distributed across
// the shards by a hash of one attribute, the relation's partition key,
// chosen from the X side of its access constraints — or replicated, with a
// full copy on every shard. Small or unkeyed relations are replicated;
// DeriveKeys implements the default policy and Spec.Keys overrides it.
// One extra engine, the replica, holds a full copy of the database and
// answers the residue of queries whose shape cannot be distributed.
//
// # Routing
//
// For every query the router picks the cheapest correct strategy:
//
//   - single-shard fast path: if the query touches no partitioned
//     relation, any shard can answer it (the router picks one by query
//     hash, keeping each shard's plan cache hot on its own residents).
//     If every partitioned occurrence binds its partition key to a
//     constant — the covered-access case, where the indexed atoms of the
//     query pin the key — and all constants hash to the same shard, that
//     shard alone holds every relevant tuple and answers exactly.
//   - scatter/gather: when the query's shape distributes over the
//     partitioning (see route.go for the analysis), all shards execute it
//     concurrently and the router merges rows (set union), access counts
//     (sums) and boundedness verdicts (conjunction). Bounded plans make
//     scatter cheap: on shards that hold no matching slice of the
//     partitioned relation, the plan's first fetch comes back empty and
//     the execution finishes in microseconds.
//   - replica fallback: queries that neither fast-path nor distribute
//     (e.g. a difference whose right side reads a partitioned relation
//     without binding its key) run on the replica, which is an ordinary
//     single engine over the full database.
//
// Writes route to the owning shard by the same hash (or to every shard
// for replicated relations) plus the replica, so each engine's
// incremental ⟨A, I_A⟩ maintenance keeps its cached plans valid — the
// serving-layer invariant holds per shard, and Version never moves under
// tuple churn. Access-schema changes fan out to every engine and bump all
// versions in lockstep.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// DefaultMinPartitionRows is the replicate-everywhere threshold of
// DeriveKeys: relations with fewer rows are cheaper to copy to every
// shard than to split.
const DefaultMinPartitionRows = 256

// Spec configures a Router.
type Spec struct {
	// Shards is the number of partitions (>= 1).
	Shards int
	// Keys maps relation name to its partition-key attribute. Relations
	// absent from the map are replicated on every shard. nil means
	// DeriveKeys(schema, A, db, DefaultMinPartitionRows).
	Keys map[string]string
	// PlanCacheSize overrides each engine's plan-cache capacity
	// (0 = the core default).
	PlanCacheSize int
}

// DeriveKeys picks a partition key per relation from the access schema:
// the attribute that appears in the X (index) side of the most
// non-membership constraints, breaking ties toward shorter X lists and
// then lexicographically — the attribute the covered workload most often
// binds. Relations with no such attribute, or with fewer than minRows
// tuples in db (skipped when db is nil or minRows <= 0), are left out of
// the map and therefore replicated.
func DeriveKeys(schema ra.Schema, A *access.Schema, db *store.DB, minRows int) map[string]string {
	keys := map[string]string{}
	for _, rel := range schema.Relations() {
		if db != nil && minRows > 0 {
			rr, err := db.Rel(rel)
			if err != nil || rr.Len() < minRows {
				continue
			}
		}
		type cand struct {
			attr    string
			score   int
			minXLen int
		}
		var best *cand
		for _, a := range schema[rel] {
			c := cand{attr: a, minXLen: 1 << 30}
			for _, con := range A.ForRel(rel) {
				if con.IsIndexing() && len(con.X) == 1 {
					continue // membership R(a → a, 1): holds vacuously, no signal
				}
				for _, x := range con.X {
					if x == a {
						c.score++
						if len(con.X) < c.minXLen {
							c.minXLen = len(con.X)
						}
						break
					}
				}
			}
			if c.score == 0 {
				continue
			}
			if best == nil || c.score > best.score ||
				(c.score == best.score && (c.minXLen < best.minXLen ||
					(c.minXLen == best.minXLen && c.attr < best.attr))) {
				cc := c
				best = &cc
			}
		}
		if best != nil {
			keys[rel] = best.attr
		}
	}
	return keys
}

// wstripes is the number of write-ordering stripes; writes to the same
// tuple serialize on one stripe so the owning shard and the replica
// always apply them in the same order.
const wstripes = 256

// Router partitions a database across N core.Engine shards plus a full
// replica and implements core.Service over the cluster, so the HTTP front
// end (internal/server) and the replay harness (internal/bench) serve it
// exactly like a single engine.
//
// A Router is safe for concurrent use. All reads and writes must go
// through it once it is built: New adopts the source database as the
// replica, and writes applied directly to any member engine would
// diverge from the cluster.
type Router struct {
	schema ra.Schema
	spec   Spec
	shards []*core.Engine
	ref    *core.Engine
	// keyPos maps each partitioned relation to the column position of its
	// partition key.
	keyPos map[string]int

	// wmu stripes same-tuple writes into a fixed order across engines.
	wmu [wstripes]sync.Mutex
	// cmu serializes access-schema mutations so concurrent
	// AddConstraints / RemoveConstraint calls cannot interleave their
	// per-engine fan-outs and break version lockstep.
	cmu sync.Mutex

	// decisions caches routing decisions by query fingerprint. Routing
	// depends only on the canonical query and the (immutable) partition
	// spec, never on data or the access schema, so entries stay valid for
	// the router's lifetime.
	decisions *cache.Cache

	// queries counts executions per engine (shards, then the replica).
	queries []atomic.Int64
	// routed counts routing decisions by kind.
	routed [3]atomic.Int64
}

// New partitions db across spec.Shards engines and returns the router.
// Partitioned relations are split by hash of their key attribute,
// replicated ones copied to every shard; db itself becomes the replica,
// so the caller must route all subsequent reads and writes through the
// returned Router.
func New(schema ra.Schema, A *access.Schema, db *store.DB, spec Spec) (*Router, error) {
	if spec.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards must be >= 1, got %d", spec.Shards)
	}
	if db == nil {
		db = store.NewDB(schema)
	}
	if spec.Keys == nil {
		spec.Keys = DeriveKeys(schema, A, db, DefaultMinPartitionRows)
	}
	keyPos := map[string]int{}
	for rel, attr := range spec.Keys {
		attrs, ok := schema[rel]
		if !ok {
			return nil, fmt.Errorf("shard: partition key on unknown relation %q", rel)
		}
		pos := -1
		for i, a := range attrs {
			if a == attr {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("shard: relation %s has no attribute %q to partition by", rel, attr)
		}
		keyPos[rel] = pos
	}
	r := &Router{
		schema:    schema,
		spec:      spec,
		keyPos:    keyPos,
		queries:   make([]atomic.Int64, spec.Shards+1),
		decisions: cache.New(4096, 8),
	}
	dbs := make([]*store.DB, spec.Shards)
	for i := range dbs {
		dbs[i] = store.NewDB(schema)
	}
	for _, rel := range schema.Relations() {
		rows, err := db.Rows(rel)
		if err != nil {
			return nil, err
		}
		pos, partitioned := keyPos[rel]
		for _, t := range rows {
			if partitioned {
				if _, err := dbs[r.ownerOf(t[pos])].Insert(rel, t); err != nil {
					return nil, err
				}
				continue
			}
			for _, sdb := range dbs {
				if _, err := sdb.Insert(rel, t); err != nil {
					return nil, err
				}
			}
		}
	}
	r.shards = make([]*core.Engine, spec.Shards)
	for i, sdb := range dbs {
		eng, err := core.NewEngine(schema, A, sdb)
		if err != nil {
			return nil, err
		}
		r.shards[i] = eng
	}
	ref, err := core.NewEngine(schema, A, db)
	if err != nil {
		return nil, err
	}
	r.ref = ref
	if spec.PlanCacheSize > 0 {
		r.SetPlanCacheCapacity(spec.PlanCacheSize)
	}
	return r, nil
}

// Router implements core.Service.
var _ core.Service = (*Router)(nil)

// hashKey hashes a canonical byte encoding to a shard-selection value.
// The same function is used for every relation, so equal key values land
// on the same shard regardless of which relation carries them — the
// property co-partitioned joins rely on.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ownerOf returns the shard owning tuples whose partition key is v.
func (r *Router) ownerOf(v value.Value) int {
	return int(hashKey(value.Tuple{v}.Key()) % uint64(r.spec.Shards))
}

// NumShards returns the number of partitions (excluding the replica).
func (r *Router) NumShards() int { return r.spec.Shards }

// Keys returns the partition-key assignment in effect (a copy).
func (r *Router) Keys() map[string]string {
	out := make(map[string]string, len(r.spec.Keys))
	for k, v := range r.spec.Keys {
		out[k] = v
	}
	return out
}

// Schema returns the relational schema the cluster is bound to. The
// returned map is shared and must be treated as read-only.
func (r *Router) Schema() ra.Schema { return r.schema }

// Parse parses a query in the textual rule language.
func (r *Router) Parse(src string) (ra.Query, error) {
	return parser.Parse(src, r.schema)
}

// Execute normalizes q, picks a routing strategy (single shard,
// scatter/gather, or the replica; see the package comment) and returns
// the merged answer. Results are identical to a single engine over the
// unpartitioned database.
//
// The analysis is amortized: the query is normalized and fingerprinted
// once, the routing decision is cached under the fingerprint (sound: the
// fingerprint identifies the canonical query including its constants,
// and routing depends only on the query and the fixed partitioning), and
// the fingerprint is handed to the member engines so none of them repeats
// the work.
func (r *Router) Execute(q ra.Query, opts core.Options) (*exec.Table, *core.Report, error) {
	norm, err := ra.Normalize(q, r.schema)
	if err != nil {
		return nil, nil, err
	}
	fp := ra.FingerprintNormalized(norm)
	var dec decision
	if v, ok := r.decisions.Get(fp); ok {
		dec = v.(decision)
	} else {
		dec = r.route(norm)
		r.decisions.Put(fp, dec)
	}
	r.routed[dec.kind].Add(1)
	switch dec.kind {
	case routeSingle:
		r.queries[dec.shard].Add(1)
		return r.shards[dec.shard].ExecuteNormalized(norm, fp, opts)
	case routeFallback:
		r.queries[r.spec.Shards].Add(1)
		return r.ref.ExecuteNormalized(norm, fp, opts)
	}
	return r.scatter(norm, fp, opts)
}

// scatter executes norm on every shard concurrently and merges the
// results: rows by set union, access counts by summation, coverage and
// boundedness verdicts by conjunction.
func (r *Router) scatter(norm ra.Query, fp string, opts core.Options) (*exec.Table, *core.Report, error) {
	start := time.Now()
	tables := make([]*exec.Table, len(r.shards))
	reports := make([]*core.Report, len(r.shards))
	errs := make([]error, len(r.shards))
	if len(r.shards) == 1 {
		r.queries[0].Add(1)
		tables[0], reports[0], errs[0] = r.shards[0].ExecuteNormalized(norm, fp, opts)
	} else {
		var wg sync.WaitGroup
		for i := range r.shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.queries[i].Add(1)
				tables[i], reports[i], errs[i] = r.shards[i].ExecuteNormalized(norm, fp, opts)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	out := exec.NewTable(tables[0].Cols)
	for _, t := range tables {
		for _, row := range t.Tuples() {
			out.Add(row)
		}
	}
	rep := *reports[0]
	for _, sub := range reports[1:] {
		rep.Covered = rep.Covered && sub.Covered
		rep.Bounded = rep.Bounded && sub.Bounded
		rep.CacheHit = rep.CacheHit && sub.CacheHit
		rep.Stats.Accessed += sub.Stats.Accessed
		rep.Stats.Fetched += sub.Stats.Fetched
		rep.Stats.Scanned += sub.Stats.Scanned
		if sub.CheckTime > rep.CheckTime {
			rep.CheckTime = sub.CheckTime
		}
		if sub.PlanTime > rep.PlanTime {
			rep.PlanTime = sub.PlanTime
		}
		if sub.MinimizeTime > rep.MinimizeTime {
			rep.MinimizeTime = sub.MinimizeTime
		}
		if sub.Version > rep.Version {
			rep.Version = sub.Version
		}
	}
	rep.Stats.Duration = time.Since(start)
	return out, &rep, nil
}

// stripeOf picks the write-ordering stripe for one tuple.
func stripeOf(rel string, t value.Tuple) uint64 {
	return hashKey(rel+"\x00"+t.Key()) % wstripes
}

// Insert adds a tuple to the cluster: to the owning shard for a
// partitioned relation (or every shard for a replicated one) and to the
// replica. Same-tuple writes are ordered by an internal stripe lock so
// all member engines converge to the same state. Each engine maintains
// its indices incrementally, so cached plans everywhere remain valid and
// Version does not change.
func (r *Router) Insert(rel string, t value.Tuple) (bool, error) {
	return r.mutate(rel, t, (*core.Engine).Insert)
}

// Delete removes a tuple from the cluster, routing like Insert.
func (r *Router) Delete(rel string, t value.Tuple) (bool, error) {
	return r.mutate(rel, t, (*core.Engine).Delete)
}

// mutate applies one tuple write to the replica first (whose verdict and
// validation error become the caller's result) and then to the owning
// shard or, for replicated relations, to every shard.
func (r *Router) mutate(rel string, t value.Tuple,
	apply func(*core.Engine, string, value.Tuple) (bool, error)) (bool, error) {
	pos, partitioned := r.keyPos[rel]
	if partitioned && pos >= len(t) {
		return false, fmt.Errorf("shard: %s expects %d values, got %d", rel, len(r.schema[rel]), len(t))
	}
	mu := &r.wmu[stripeOf(rel, t)]
	mu.Lock()
	defer mu.Unlock()
	changed, err := apply(r.ref, rel, t)
	if err != nil {
		return false, err
	}
	if partitioned {
		if _, err := apply(r.shards[r.ownerOf(t[pos])], rel, t); err != nil {
			return changed, err
		}
		return changed, nil
	}
	for _, eng := range r.shards {
		if _, err := apply(eng, rel, t); err != nil {
			return changed, err
		}
	}
	return changed, nil
}

// AddConstraints installs extra access constraints on every engine of the
// cluster, building their indices shard-locally and bumping every
// engine's version in lockstep (each engine purges its own plan cache).
// Constraints are validated up front, and the replica — the only engine
// holding the full instance — goes first: a constraint the full database
// violates fails there before any shard is touched, and replica success
// implies shard success because every shard's slice is a subset (access
// constraints are anti-monotone). Mutations are serialized against each
// other so concurrent calls cannot skew versions across engines.
func (r *Router) AddConstraints(cs ...access.Constraint) error {
	for _, c := range cs {
		if err := c.Validate(r.schema); err != nil {
			return err
		}
	}
	r.cmu.Lock()
	defer r.cmu.Unlock()
	if err := r.ref.AddConstraints(cs...); err != nil {
		return err
	}
	for _, eng := range r.shards {
		if err := eng.AddConstraints(cs...); err != nil {
			return fmt.Errorf("shard: cluster left inconsistent by partial constraint install: %w", err)
		}
	}
	return nil
}

// RemoveConstraint uninstalls a constraint on every engine, dropping the
// shard-local indices and bumping every version. It reports whether the
// constraint was present.
func (r *Router) RemoveConstraint(c access.Constraint) bool {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	found := false
	for _, eng := range r.engines() {
		if eng.RemoveConstraint(c) {
			found = true
		}
	}
	return found
}

// engines lists every member engine: the shards, then the replica.
func (r *Router) engines() []*core.Engine {
	return append(append(make([]*core.Engine, 0, len(r.shards)+1), r.shards...), r.ref)
}

// AccessSnapshot returns a consistent copy of the installed access
// schema (identical on every engine of a healthy cluster).
func (r *Router) AccessSnapshot() *access.Schema {
	return r.ref.AccessSnapshot()
}

// Version returns the cluster's access-schema generation. All engines
// move in lockstep because every mutation fans out through the router.
func (r *Router) Version() uint64 { return r.ref.Version() }

// CacheStats returns the plan-cache counters summed across every engine
// (shards and replica).
func (r *Router) CacheStats() cache.Stats {
	var out cache.Stats
	for _, eng := range r.engines() {
		s := eng.CacheStats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Purges += s.Purges
		out.Entries += s.Entries
	}
	return out
}

// SetPlanCacheCapacity resizes every engine's plan cache, dropping all
// entries; capacity <= 0 disables caching cluster-wide.
func (r *Router) SetPlanCacheCapacity(capacity int) {
	for _, eng := range r.engines() {
		eng.SetPlanCacheCapacity(capacity)
	}
}

// DBSize returns the logical |D|: the replica's size, which counts every
// tuple exactly once regardless of replication.
func (r *Router) DBSize() int64 { return r.ref.DBSize() }

// IndexEntries returns the logical |I_A|, measured on the replica.
func (r *Router) IndexEntries() int64 { return r.ref.IndexEntries() }

// RouteStats counts routing decisions since the router was built.
type RouteStats struct {
	// Single counts queries answered by exactly one shard (unpartitioned
	// queries and the covered-access fast path).
	Single int64
	// Scattered counts scatter/gather executions (each runs on every
	// shard).
	Scattered int64
	// Fallback counts executions routed to the full replica.
	Fallback int64
}

// RouteStats returns the routing-decision counters.
func (r *Router) RouteStats() RouteStats {
	return RouteStats{
		Single:    r.routed[routeSingle].Load(),
		Scattered: r.routed[routeScatter].Load(),
		Fallback:  r.routed[routeFallback].Load(),
	}
}

// PerShardStats returns one observability snapshot per member engine —
// shards labeled "shard/i" in order, then the replica — for the /stats
// per-shard breakdown. Queries counts executions routed to each engine;
// comparing them across shards exposes routing skew, and comparing
// DBSize exposes data skew.
func (r *Router) PerShardStats() []core.EngineStat {
	out := make([]core.EngineStat, 0, len(r.shards)+1)
	for i, eng := range r.shards {
		st := eng.Stat()
		st.Label = fmt.Sprintf("shard/%d", i)
		st.Queries = r.queries[i].Load()
		out = append(out, st)
	}
	st := r.ref.Stat()
	st.Label = "replica"
	st.Queries = r.queries[r.spec.Shards].Load()
	out = append(out, st)
	return out
}

// String summarizes the partitioning for logs and tools.
func (r *Router) String() string {
	rels := make([]string, 0, len(r.spec.Keys))
	for rel, key := range r.spec.Keys {
		rels = append(rels, rel+"/"+key)
	}
	sort.Strings(rels)
	return fmt.Sprintf("shard.Router{shards: %d, partitioned: %v}", r.spec.Shards, rels)
}

package shard

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// fuzzHarness is built once per fuzz process: a single-engine oracle plus
// routers in several ring states — different shard counts, a cluster that
// has already resharded (epoch > 1), and one frozen mid-copy with a live
// migration — all over identical copies of the same instance.
type fuzzHarnessT struct {
	oracle  *core.Engine
	routers []*Router
	err     error
}

var (
	fuzzOnce sync.Once
	fuzzH    fuzzHarnessT
)

func fuzzHarness() *fuzzHarnessT {
	fuzzOnce.Do(func() {
		build := func() (*Router, error) {
			d, err := workload.ByName("AIRCA")
			if err != nil {
				return nil, err
			}
			db, err := d.Gen(0.02, 11)
			if err != nil {
				return nil, err
			}
			return New(d.Schema, d.Access, db, Spec{Shards: 2, Keys: d.ShardKeys})
		}
		d, err := workload.ByName("AIRCA")
		if err != nil {
			fuzzH.err = err
			return
		}
		db, err := d.Gen(0.02, 11)
		if err != nil {
			fuzzH.err = err
			return
		}
		fuzzH.oracle, err = core.NewEngine(d.Schema, d.Access, db)
		if err != nil {
			fuzzH.err = err
			return
		}
		// N=1 and N=3 straight from New.
		for _, n := range []int{1, 3} {
			dbn, err := d.Gen(0.02, 11)
			if err != nil {
				fuzzH.err = err
				return
			}
			r, err := New(d.Schema, d.Access, dbn, Spec{Shards: n, Keys: d.ShardKeys})
			if err != nil {
				fuzzH.err = err
				return
			}
			fuzzH.routers = append(fuzzH.routers, r)
		}
		// A cluster that lived through 2→4→2 (epoch 3, survivors swept).
		r, err := build()
		if err == nil {
			if _, err = r.Reshard(context.Background(), 4); err == nil {
				_, err = r.Reshard(context.Background(), 2)
			}
		}
		if err != nil {
			fuzzH.err = err
			return
		}
		fuzzH.routers = append(fuzzH.routers, r)
		// A cluster frozen mid-copy: the migration stays live (phase copy,
		// double-routing active) for the rest of the process. The blocked
		// Reshard goroutine is an intentional leak scoped to the test
		// binary.
		frozen, err := build()
		if err != nil {
			fuzzH.err = err
			return
		}
		started := make(chan struct{})
		var once sync.Once
		calls := 0
		frozen.hookMigBatch = func() {
			calls++
			if calls > 2 {
				once.Do(func() { close(started) })
				select {} // freeze forever
			}
		}
		go frozen.Reshard(context.Background(), 4) //nolint:errcheck
		<-started
		fuzzH.routers = append(fuzzH.routers, frozen)
	})
	return &fuzzH
}

// FuzzRouteDecision asserts the router's core contract on arbitrary
// generated queries: whatever the ring state — one shard, several, a
// resharded cluster, or one frozen mid-migration — Execute must return
// exactly the answer of a single engine over the unpartitioned
// instance. The seeds cover every routing strategy; the fuzzer mutates
// them into the weird shapes the analysis must stay conservative on.
func FuzzRouteDecision(f *testing.F) {
	seeds := []string{
		`q(airline) :- ontime(f, 42, d, airline, m, delay)`,
		`q(origin, dest) :- ontime(f, origin, dest, 3, m, delay)`,
		`q(city) :- ontime(123, origin, dest, al, m, delay), airport(origin, city, st)`,
		`q(origin, dest, cause) :- ontime(77, origin, dest, al, m, delay), delaycause(77, cause, mins)`,
		`q(cname) :- carrier(3, cname, country)`,
		`(q(airline) :- ontime(f, 42, d, airline, m, delay)) EXCEPT (q(airline) :- carrier(airline, nm, 0), ontime(f2, 42, d2, airline, m2, delay2))`,
		`(q(o) :- ontime(f, o, d, a, m, x)) UNION (q(o2) :- ontime(f2, o2, d2, a2, m2, x2))`,
	}
	for i, s := range seeds {
		f.Add(uint8(i), s)
	}
	f.Fuzz(func(t *testing.T, pick uint8, src string) {
		h := fuzzHarness()
		if h.err != nil {
			t.Fatalf("harness: %v", h.err)
		}
		router := h.routers[int(pick)%len(h.routers)]
		q, err := router.Parse(src)
		if err != nil {
			t.Skip()
		}
		want, wantRep, errO := h.oracle.Execute(q, core.DefaultOptions())
		got, gotRep, errR := router.Execute(q, core.DefaultOptions())
		if (errO == nil) != (errR == nil) {
			t.Fatalf("error divergence on %q: oracle %v, sharded %v", src, errO, errR)
		}
		if errO != nil {
			return
		}
		if !want.Equal(got) {
			t.Fatalf("answer divergence on %q (router %s): %d rows sharded vs %d oracle",
				src, router, got.Len(), want.Len())
		}
		if wantRep.Covered != gotRep.Covered || wantRep.Bounded != gotRep.Bounded {
			t.Fatalf("verdict divergence on %q: covered %v/%v bounded %v/%v",
				src, gotRep.Covered, wantRep.Covered, gotRep.Bounded, wantRep.Bounded)
		}
	})
}

// FuzzResiduePlan targets the distributed residue executor: generator
// queries biased toward non-distributable shapes (cross-key joins,
// unions and differences over partitioned relations) run against every
// ring state — one shard, several, a resharded cluster, and one frozen
// mid-copy — and must reproduce the single-engine oracle exactly.
// Where FuzzRouteDecision mutates query text, this fuzzer drives the
// generator's parameter space, so every input is a well-formed query
// and the residue planner/executor, not the parser, absorbs the
// fuzzing budget.
func FuzzResiduePlan(f *testing.F) {
	f.Add(uint8(0), int64(1), uint8(2), uint8(1), uint8(0))
	f.Add(uint8(1), int64(2), uint8(3), uint8(2), uint8(1))
	f.Add(uint8(2), int64(3), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(3), int64(4), uint8(4), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, pick uint8, seed int64, sel, join, unidiff uint8) {
		h := fuzzHarness()
		if h.err != nil {
			t.Fatalf("harness: %v", h.err)
		}
		d, err := workload.ByName("AIRCA")
		if err != nil {
			t.Fatal(err)
		}
		router := h.routers[int(pick)%len(h.routers)]
		rng := rand.New(rand.NewSource(seed))
		p := workload.DefaultQueryParams()
		p.Sel = 1 + int(sel)%5
		p.Join = 1 + int(join)%2 // at least one join: bias toward cross-key shapes
		p.UniDiff = int(unidiff) % 2
		q, err := d.RandomQuery(p, rng)
		if err != nil {
			t.Skip()
		}
		if _, err := router.RouteKind(q); err != nil {
			t.Fatalf("RouteKind failed on a generator query: %v", err)
		}
		want, wantRep, errO := h.oracle.Execute(q, core.DefaultOptions())
		got, gotRep, errR := router.Execute(q, core.DefaultOptions())
		if (errO == nil) != (errR == nil) {
			t.Fatalf("error divergence on %q: oracle %v, sharded %v", q.String(), errO, errR)
		}
		if errO != nil {
			return
		}
		if !want.Equal(got) {
			t.Fatalf("answer divergence on %q (router %s): %d rows sharded vs %d oracle",
				q.String(), router, got.Len(), want.Len())
		}
		if wantRep.Covered != gotRep.Covered || wantRep.Bounded != gotRep.Bounded {
			t.Fatalf("verdict divergence on %q: covered %v/%v bounded %v/%v",
				q.String(), gotRep.Covered, wantRep.Covered, gotRep.Bounded, wantRep.Bounded)
		}
	})
}

// The replica apply pipeline: an asynchronous, ordered write queue that
// fixes the cluster's write bottleneck. Before it, every tuple write
// applied synchronously to the full-copy replica under the write stripe
// lock, so the replica's single store lock serialized the entire
// cluster's write load — O(writes) exclusive lock acquisitions on the one
// engine every shard-side write also had to cross. Now the owning shard
// commits synchronously (preserving the per-shard plan-cache invariant
// and the caller's verdict) while the replica write is enqueued onto a
// per-stripe lane and applied later in coalesced batches, one
// store.DB.ApplyBatch — one exclusive lock acquisition — per batch:
// O(batches), not O(writes).
//
// # Ordering
//
// Correctness needs only per-tuple ordering: two writes of the same tuple
// must reach the replica in the order the stripe lock serialized them.
// Every enqueue happens under the caller's write stripe (shard.go), and a
// tuple always hashes to the same stripe, so one FIFO lane per stripe
// preserves exactly the required order; lanes are independent and the
// applier may interleave them freely.
//
// # The watermark fence
//
// Each enqueue takes a ticket from a global counter; the applier's cut —
// taken under qmu held exclusively, which excludes all enqueues — swaps
// every lane and records the counter, so the batch contains precisely the
// ops ticketed up to the cut.
//
// In durable mode the ticket space IS the write-ahead log's LSN space:
// the enqueue appends the op to the log under its lane lock and adopts
// the returned LSN as the ticket (the counter is advanced to it, never
// past it). Constraint changes are logged through the same counter via
// logRecord, so "fence(W)" uniformly means "every logged record with
// LSN <= W has reached the replica" — which is exactly the guarantee a
// checkpoint needs before snapshotting the replica at log position W. After applying a batch the applier
// publishes its cut as the watermark: every op with ticket <= watermark
// is in the replica. A replica-routed read (replica-fallback queries,
// DBSize/IndexEntries, constraint mutations, the reshard copy phase)
// fences first: it reads the ticket counter (or a single lane's highest
// ticket) and waits until the watermark passes it, which drains exactly
// the writes it could depend on — read-your-writes is preserved and
// answers stay identical to a single engine at every instant.
//
// # Lifecycle
//
// There is no resident goroutine. An enqueue that finds no applier
// running starts one; the applier loops — cut, apply, publish — until a
// cut comes back empty and exits under the same exclusive section, so no
// op can slip between its last look and its exit. A router that is
// abandoned drains and goes quiet; nothing needs closing.
package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// lane is one stripe's FIFO of pending replica writes.
type lane struct {
	mu  sync.Mutex
	ops []store.TupleOp
	// last is the highest ticket enqueued on this lane; a fence that only
	// depends on this stripe waits for the watermark to pass it.
	last uint64
}

// applyQueue batches replica writes, preserving per-stripe order and
// exposing the watermark fence. See the package comment at the top of
// this file for the protocol.
type applyQueue struct {
	db *store.DB

	// wal, when non-nil, makes the queue durable: every enqueued op is
	// appended to the log first (log-before-acknowledge) and its LSN
	// becomes the ticket.
	wal *wal.Log

	// qmu orders enqueues against the applier's cut: enqueues hold it
	// shared (ticket assignment and lane append are one atomic step under
	// it), the cut holds it exclusively — so a cut at counter value W has
	// every op ticketed <= W in its swapped lanes.
	qmu   sync.RWMutex
	lanes [wstripes]lane

	// enq is the ticket counter; applied the watermark (every op ticketed
	// <= applied has reached the replica).
	enq     atomic.Uint64
	applied atomic.Uint64

	// running is true while an applier goroutine is live.
	running atomic.Bool
	// paused suppresses applier spawning on enqueue. Tests use it to
	// accumulate a deterministic backlog; fences still spawn, so no reader
	// can be wedged by it.
	paused atomic.Bool

	// fmu/fcond park fencing readers until the watermark passes their
	// ticket.
	fmu   sync.Mutex
	fcond *sync.Cond

	// batches counts ApplyBatch calls (= replica lock acquisitions),
	// maxBatch the largest single batch, errors batches whose application
	// reported a store rejection (writes are validated before enqueue, so
	// any error is a bug).
	batches  atomic.Int64
	maxBatch atomic.Int64
	errors   atomic.Int64

	// errmu/firstErr retain the first apply or log failure; health
	// surfaces it so the serving layer can report degraded.
	errmu    sync.Mutex
	firstErr error
}

// newApplyQueue returns an idle queue applying to db. A non-nil w makes
// it durable (tickets become log LSNs).
func newApplyQueue(db *store.DB, w *wal.Log) *applyQueue {
	q := &applyQueue{db: db, wal: w}
	q.fcond = sync.NewCond(&q.fmu)
	return q
}

// maxTicket advances the ticket counter to at least v. LSNs are handed
// out monotonically by the log, but two enqueues on different lanes may
// publish them out of order; CAS-max keeps the counter consistent.
func (q *applyQueue) maxTicket(v uint64) {
	for {
		cur := q.enq.Load()
		if cur >= v || q.enq.CompareAndSwap(cur, v) {
			return
		}
	}
}

// enqueue appends one replica write to its stripe's lane and returns its
// ticket. The caller must hold the write stripe lock for stripe, which is
// what orders same-tuple enqueues. In durable mode the op is appended to
// the write-ahead log first — under the lane lock, so log order equals
// lane (and hence replica apply) order per tuple — and a log failure
// rejects the write before anything is enqueued.
func (q *applyQueue) enqueue(stripe uint64, rel string, t value.Tuple, del bool) (uint64, error) {
	op := store.TupleOp{Rel: rel, T: t, Del: del}
	q.qmu.RLock()
	ln := &q.lanes[stripe]
	ln.mu.Lock()
	var ticket uint64
	if q.wal != nil {
		lsn, err := q.wal.Append(wal.Record{Kind: wal.KindTuple, Op: op})
		if err != nil {
			ln.mu.Unlock()
			q.qmu.RUnlock()
			q.fail(err)
			return 0, err
		}
		ticket = lsn
		q.maxTicket(lsn)
	} else {
		ticket = q.enq.Add(1)
	}
	ln.ops = append(ln.ops, op)
	ln.last = ticket
	ln.mu.Unlock()
	q.qmu.RUnlock()
	if !q.paused.Load() {
		q.spawn()
	}
	return ticket, nil
}

// logRecord appends a non-tuple record (a constraint change) to the log
// and folds its LSN into the ticket space so fences cover it. The record
// is not lane-queued — constraint changes are applied to the replica
// synchronously by the router — but the watermark must still be able to
// pass its LSN, which the empty-cut publish in run guarantees. Callers
// serialize constraint changes (Router.cmu), so ordering needs no lane.
func (q *applyQueue) logRecord(rec wal.Record) error {
	if q.wal == nil {
		return nil
	}
	lsn, err := q.wal.Append(rec)
	if err != nil {
		q.fail(err)
		return err
	}
	q.maxTicket(lsn)
	return nil
}

// spawn starts an applier if none is running.
func (q *applyQueue) spawn() {
	if q.running.CompareAndSwap(false, true) {
		go q.run()
	}
}

// run is the applier loop: cut, apply, publish, until a cut is empty.
func (q *applyQueue) run() {
	for {
		q.qmu.Lock()
		cut := q.enq.Load()
		var batch []store.TupleOp
		for i := range q.lanes {
			ln := &q.lanes[i]
			if len(ln.ops) == 0 {
				continue
			}
			batch = append(batch, ln.ops...)
			ln.ops = nil
		}
		if len(batch) == 0 {
			// Exit inside the exclusive section: any enqueue after it sees
			// running == false and spawns a fresh applier, so no op is left
			// behind. Still publish the cut — tickets may exist with no
			// lane op (constraint records via logRecord), and a fence on
			// such a ticket must terminate.
			q.publish(cut)
			q.running.Store(false)
			q.qmu.Unlock()
			return
		}
		q.qmu.Unlock()

		if err := q.db.ApplyBatch(batch); err != nil {
			q.errors.Add(1)
			q.fail(err)
		}
		q.batches.Add(1)
		if n := int64(len(batch)); n > q.maxBatch.Load() {
			q.maxBatch.Store(n) // single applier: no concurrent max race
		}
		q.publish(cut)
	}
}

// publish advances the watermark to cut and wakes fencing readers. The
// guard keeps it monotone even if a stale cut is replayed.
func (q *applyQueue) publish(cut uint64) {
	q.fmu.Lock()
	if q.applied.Load() < cut {
		q.applied.Store(cut)
		q.fcond.Broadcast()
	}
	q.fmu.Unlock()
}

// fail retains the first apply or log error for health reporting.
func (q *applyQueue) fail(err error) {
	q.errmu.Lock()
	if q.firstErr == nil {
		q.firstErr = err
	}
	q.errmu.Unlock()
}

// health returns the first retained apply/log error, or nil.
func (q *applyQueue) health() error {
	q.errmu.Lock()
	defer q.errmu.Unlock()
	return q.firstErr
}

// fence blocks until every op ticketed <= ticket has been applied. It
// spawns an applier if none is running (covering the paused test mode and
// the spawn/exit race), so it always terminates.
func (q *applyQueue) fence(ticket uint64) {
	if ticket == 0 || q.applied.Load() >= ticket {
		return
	}
	q.spawn()
	q.fmu.Lock()
	for q.applied.Load() < ticket {
		q.fcond.Wait()
	}
	q.fmu.Unlock()
}

// fenceAll drains everything enqueued so far: read-your-writes for a
// reader that may depend on any prior write.
func (q *applyQueue) fenceAll() {
	q.fence(q.enq.Load())
}

// fenceStripe drains only the writes enqueued on one stripe. The caller
// must hold that write stripe lock, which freezes the lane's last ticket;
// the reshard copy phase uses it to make per-row replica presence probes
// exact without draining the whole queue per row.
func (q *applyQueue) fenceStripe(stripe uint64) {
	ln := &q.lanes[stripe]
	ln.mu.Lock()
	last := ln.last
	ln.mu.Unlock()
	q.fence(last)
}

// ApplyQueueStats is an observability snapshot of the replica apply
// pipeline, exposed via Router.ApplyQueueStats and GET /stats.
type ApplyQueueStats struct {
	// Enqueued counts replica writes accepted since the router was built;
	// Applied is the watermark (writes that have reached the replica).
	// Their difference is Depth, the current backlog — the replica's
	// watermark lag in ops.
	Enqueued, Applied, Depth int64
	// Batches counts batched store applications — replica write-lock
	// acquisitions. Enqueued/Batches is the realized coalescing factor.
	Batches int64
	// MaxBatch is the largest batch applied so far.
	MaxBatch int64
	// Errors counts batch applications in which the store rejected at
	// least one op. Writes are validated before they are enqueued, so a
	// non-zero value indicates a bug.
	Errors int64
}

// stats snapshots the counters. The watermark is read before the ticket
// counter so the derived Depth can never go negative when the applier
// advances between the two loads.
func (q *applyQueue) stats() ApplyQueueStats {
	app := int64(q.applied.Load())
	enq := int64(q.enq.Load())
	return ApplyQueueStats{
		Enqueued: enq,
		Applied:  app,
		Depth:    enq - app,
		Batches:  q.batches.Load(),
		MaxBatch: q.maxBatch.Load(),
		Errors:   q.errors.Load(),
	}
}

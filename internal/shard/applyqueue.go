// The broadcast apply pipeline: an asynchronous, ordered write queue with
// PER-RELATION lanes and watermarks. It exists so broadcast-replicated
// relations — the only relations whose writes fan out to every shard —
// do not serialize the whole cluster's write path: the anchor shard
// (member 0) commits synchronously and supplies the caller's verdict,
// while the copies destined for the other members are enqueued here and
// applied later in coalesced batches, one store.ApplyBatch — one
// exclusive lock acquisition per engine — per batch: O(batches), not
// O(writes × members).
//
// Partitioned writes never queue: they commit synchronously on their
// owner(s). In durable mode they still pass through enqueue so the
// write-ahead log records them in ticket order, but they contribute no
// lane op.
//
// # Ordering
//
// Correctness needs only per-tuple ordering: two writes of the same tuple
// must reach every engine in the order the write stripe serialized them.
// A tuple always belongs to one relation, every enqueue happens under the
// caller's write stripe (shard.go), and a relation maps to exactly one
// lane — so lane order per tuple equals stripe order. A lane's ops are
// applied under the lane's apply mutex, held across the swap AND the
// store application, so two drains of the same lane (the background
// applier and a synchronous fence) can never reorder batches.
//
// # Per-relation watermarks
//
// Each lane tracks the highest ticket enqueued on it (last) and the
// highest ticket it has applied (applied). A reader that depends only on
// relation R fences R's lane: it drains R's pending ops synchronously and
// returns — relations with deep backlogs on other lanes are untouched,
// which is what keeps read-your-writes O(the reader's own dependencies)
// after the full-copy replica's removal. fenceAll remains for operations
// that depend on everything (checkpoints, constraint changes).
//
// # Tickets and durability
//
// Tickets come from a global counter; in durable mode the ticket space IS
// the write-ahead log's LSN space: the enqueue appends the op to the log
// under its lane lock and adopts the returned LSN as the ticket, and
// constraint changes are logged through the same counter via logRecord.
// "fence(W)" therefore uniformly means "every logged record with LSN <= W
// has been applied everywhere it targets" — exactly what a checkpoint
// needs before assembling a snapshot at log position W. The global cut is
// taken under qmu held exclusively, which excludes all enqueues, so a cut
// at counter value W has every op ticketed <= W in its lanes.
//
// # Lifecycle
//
// There is no resident goroutine. An enqueue that finds no applier
// running starts one; the applier loops — cut, drain every lane, publish
// — until a cut comes back empty and exits under the same exclusive
// section, so no op can slip between its last look and its exit.
package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// laneOp is one queued broadcast write: the tuple op plus the engines it
// must still reach. Targets are resolved at enqueue time, under the ring
// state and migration phase the acknowledged write committed under, so a
// later ring change cannot re-aim an already-acknowledged write.
type laneOp struct {
	op      store.TupleOp
	targets []*core.Engine
}

// relLane is one relation's FIFO of pending broadcast writes plus its
// watermark pair.
type relLane struct {
	mu  sync.Mutex
	ops []laneOp
	// last is the highest ticket enqueued on this lane; a fence that only
	// depends on this relation waits for the lane watermark to pass it.
	last uint64
	// applied is the lane watermark: every op ticketed <= applied has
	// reached all its targets.
	applied atomic.Uint64
	// amu serializes drains of this lane, held across swap AND apply, so
	// a synchronous fence and the background applier cannot reorder two
	// batches of the same lane.
	amu sync.Mutex
	// drains counts drain passes that applied at least one op; the
	// per-relation fence tests pin that fencing R leaves S's counter
	// unchanged.
	drains atomic.Int64
}

// applyQueue batches broadcast writes per relation, preserving per-tuple
// order and exposing per-relation watermark fences. See the package
// comment at the top of this file for the protocol.
type applyQueue struct {
	// wal, when non-nil, makes the queue durable: every enqueued op is
	// appended to the log first (log-before-acknowledge) and its LSN
	// becomes the ticket.
	wal *wal.Log

	// qmu orders enqueues against the applier's global cut: enqueues hold
	// it shared (ticket assignment and lane append are one atomic step
	// under it), the cut holds it exclusively.
	qmu   sync.RWMutex
	lanes map[string]*relLane

	// enq is the global ticket counter; applied the global watermark.
	enq     atomic.Uint64
	applied atomic.Uint64

	// enqOps / appliedOps count lane ops (not tickets): observability for
	// the backlog depth, unaffected by WAL-only tickets of partitioned
	// writes.
	enqOps     atomic.Int64
	appliedOps atomic.Int64

	// running is true while a background applier goroutine is live.
	running atomic.Bool
	// paused suppresses applier spawning on enqueue. Tests use it to
	// accumulate a deterministic backlog; fences still drain, so no
	// reader can be wedged by it.
	paused atomic.Bool

	// fmu/fcond park global-fence readers until the global watermark
	// passes their ticket.
	fmu   sync.Mutex
	fcond *sync.Cond

	// batches counts per-engine ApplyBatch calls (= engine write-lock
	// acquisitions), maxBatch the largest single batch, errors batches
	// whose application reported a store rejection (writes are validated
	// before enqueue, so any error is a bug).
	batches  atomic.Int64
	maxBatch atomic.Int64
	errors   atomic.Int64

	// errmu/firstErr retain the first apply or log failure; health
	// surfaces it so the serving layer can report degraded.
	errmu    sync.Mutex
	firstErr error
}

// newApplyQueue returns an idle queue with one lane per relation of
// schema. A non-nil w makes it durable (tickets become log LSNs).
func newApplyQueue(schema ra.Schema, w *wal.Log) *applyQueue {
	q := &applyQueue{wal: w, lanes: make(map[string]*relLane, len(schema))}
	for rel := range schema {
		q.lanes[rel] = &relLane{}
	}
	q.fcond = sync.NewCond(&q.fmu)
	return q
}

// maxTicket advances the ticket counter to at least v. LSNs are handed
// out monotonically by the log, but two enqueues on different lanes may
// publish them out of order; CAS-max keeps the counter consistent.
func (q *applyQueue) maxTicket(v uint64) {
	for {
		cur := q.enq.Load()
		if cur >= v || q.enq.CompareAndSwap(cur, v) {
			return
		}
	}
}

// enqueue records one acknowledged write: it appends the op to the
// relation's lane for the given target engines (none for a partitioned
// write, whose owners already committed synchronously) and returns its
// ticket. The caller must hold the tuple's write stripe lock, which is
// what orders same-tuple enqueues. In durable mode the op is appended to
// the write-ahead log first — under the lane lock, so log order equals
// lane (and hence apply) order per tuple — and a log failure rejects the
// write before anything is enqueued.
func (q *applyQueue) enqueue(rel string, t value.Tuple, del bool, targets []*core.Engine) (uint64, error) {
	op := store.TupleOp{Rel: rel, T: t, Del: del}
	q.qmu.RLock()
	ln := q.lanes[rel]
	ln.mu.Lock()
	var ticket uint64
	if q.wal != nil {
		lsn, err := q.wal.Append(wal.Record{Kind: wal.KindTuple, Op: op})
		if err != nil {
			ln.mu.Unlock()
			q.qmu.RUnlock()
			q.fail(err)
			return 0, err
		}
		ticket = lsn
		q.maxTicket(lsn)
	} else {
		ticket = q.enq.Add(1)
	}
	if len(targets) > 0 {
		ln.ops = append(ln.ops, laneOp{op: op, targets: targets})
		ln.last = ticket
		q.enqOps.Add(1)
	}
	ln.mu.Unlock()
	q.qmu.RUnlock()
	if len(targets) > 0 && !q.paused.Load() {
		q.spawn()
	}
	return ticket, nil
}

// logRecord appends a non-tuple record (a constraint change) to the log
// and folds its LSN into the ticket space so fences cover it. The record
// is not lane-queued — constraint changes are applied to every engine
// synchronously by the router — but the watermark must still be able to
// pass its LSN, which the empty-cut publish in run guarantees. Callers
// serialize constraint changes (Router.cmu), so ordering needs no lane.
func (q *applyQueue) logRecord(rec wal.Record) error {
	if q.wal == nil {
		return nil
	}
	lsn, err := q.wal.Append(rec)
	if err != nil {
		q.fail(err)
		return err
	}
	q.maxTicket(lsn)
	return nil
}

// spawn starts a background applier if none is running.
func (q *applyQueue) spawn() {
	if q.running.CompareAndSwap(false, true) {
		go q.run()
	}
}

// run is the background applier loop: global cut, drain every lane,
// publish, until a cut is empty.
func (q *applyQueue) run() {
	for {
		q.qmu.Lock()
		cut := q.enq.Load()
		busy := false
		for _, ln := range q.lanes {
			ln.mu.Lock()
			if len(ln.ops) > 0 {
				busy = true
			}
			ln.mu.Unlock()
			if busy {
				break
			}
		}
		if !busy {
			// Exit inside the exclusive section: any enqueue after it sees
			// running == false and spawns a fresh applier, so no op is left
			// behind. Still publish the cut — tickets may exist with no
			// lane op (partitioned writes in durable mode, constraint
			// records via logRecord), and a fence on such a ticket must
			// terminate.
			q.publish(cut)
			q.running.Store(false)
			q.qmu.Unlock()
			return
		}
		q.qmu.Unlock()

		for _, ln := range q.lanes {
			q.drainLane(ln)
		}
		// Every op ticketed <= cut was in some lane before the exclusive
		// section above (enqueues hold qmu shared), and every lane has now
		// been drained at least once since, so the global watermark may
		// advance to the cut.
		q.publish(cut)
	}
}

// drainLane applies one lane's pending ops, grouped per target engine in
// lane order, and advances the lane watermark. The lane apply mutex is
// held across swap and application so concurrent drains (background
// applier vs a fencing reader) cannot reorder two batches of one lane.
func (q *applyQueue) drainLane(ln *relLane) {
	ln.amu.Lock()
	defer ln.amu.Unlock()
	ln.mu.Lock()
	ops := ln.ops
	ln.ops = nil
	last := ln.last
	ln.mu.Unlock()
	if len(ops) > 0 {
		// Group per engine, preserving lane order within each group: a
		// tuple's ops stay ordered because they all target the same
		// engines in the same lane sequence.
		groups := make(map[*core.Engine][]store.TupleOp)
		var order []*core.Engine
		for _, lo := range ops {
			for _, eng := range lo.targets {
				if groups[eng] == nil {
					order = append(order, eng)
				}
				groups[eng] = append(groups[eng], lo.op)
			}
		}
		for _, eng := range order {
			batch := groups[eng]
			if err := eng.ApplyBatch(batch); err != nil {
				q.errors.Add(1)
				q.fail(err)
			}
			q.batches.Add(1)
			if n := int64(len(batch)); n > q.maxBatch.Load() {
				q.maxBatch.Store(n) // amu serializes per lane; cross-lane race only loses a stat update
			}
		}
		q.appliedOps.Add(int64(len(ops)))
		ln.drains.Add(1)
	}
	// Monotone under amu: concurrent drains of the same lane serialize.
	if ln.applied.Load() < last {
		ln.applied.Store(last)
	}
}

// publish advances the global watermark to cut and wakes fencing readers.
// The guard keeps it monotone even if a stale cut is replayed.
func (q *applyQueue) publish(cut uint64) {
	q.fmu.Lock()
	if q.applied.Load() < cut {
		q.applied.Store(cut)
		q.fcond.Broadcast()
	}
	q.fmu.Unlock()
}

// fail retains the first apply or log error for health reporting.
func (q *applyQueue) fail(err error) {
	q.errmu.Lock()
	if q.firstErr == nil {
		q.firstErr = err
	}
	q.errmu.Unlock()
}

// health returns the first retained apply/log error, or nil.
func (q *applyQueue) health() error {
	q.errmu.Lock()
	defer q.errmu.Unlock()
	return q.firstErr
}

// fence blocks until every op ticketed <= ticket has been applied,
// globally. It spawns an applier if none is running (covering the paused
// test mode and the spawn/exit race), so it always terminates.
func (q *applyQueue) fence(ticket uint64) {
	if ticket == 0 || q.applied.Load() >= ticket {
		return
	}
	q.spawn()
	q.fmu.Lock()
	for q.applied.Load() < ticket {
		q.fcond.Wait()
	}
	q.fmu.Unlock()
}

// fenceAll drains everything enqueued so far: read-your-writes for a
// reader that may depend on any prior write (checkpoints, constraint
// changes, full-cluster observability reads).
func (q *applyQueue) fenceAll() {
	q.fence(q.enq.Load())
}

// fenceRel drains only the writes pending for one relation — the
// per-relation watermark fence. A reader touching broadcast relation R
// calls it before reading any non-anchor member; relations with deep
// backlogs on other lanes are not drained, so the fence costs O(R's own
// backlog). The drain is synchronous on the caller (no parking on the
// background applier), which also covers the paused test mode.
func (q *applyQueue) fenceRel(rel string) {
	ln := q.lanes[rel]
	if ln == nil {
		return
	}
	ln.mu.Lock()
	last := ln.last
	ln.mu.Unlock()
	if ln.applied.Load() >= last {
		return
	}
	q.drainLane(ln)
}

// laneStats reports one lane's (depth, drain count) for tests.
func (q *applyQueue) laneStats(rel string) (depth int, drains int64) {
	ln := q.lanes[rel]
	if ln == nil {
		return 0, 0
	}
	ln.mu.Lock()
	depth = len(ln.ops)
	ln.mu.Unlock()
	return depth, ln.drains.Load()
}

// ApplyQueueStats is an observability snapshot of the broadcast apply
// pipeline, exposed via Router.ApplyQueueStats and GET /stats.
type ApplyQueueStats struct {
	// Enqueued counts broadcast copy-ops accepted since the router was
	// built; Applied is how many have reached all their target engines.
	// Their difference is Depth, the current backlog across all lanes.
	Enqueued, Applied, Depth int64
	// Batches counts batched store applications — engine write-lock
	// acquisitions. Enqueued/Batches is the realized coalescing factor.
	Batches int64
	// MaxBatch is the largest batch applied so far.
	MaxBatch int64
	// Errors counts batch applications in which the store rejected at
	// least one op. Writes are validated before they are enqueued, so a
	// non-zero value indicates a bug.
	Errors int64
}

// stats snapshots the counters. Applied is read before Enqueued so the
// derived Depth can never go negative when a drain lands between the two
// loads.
func (q *applyQueue) stats() ApplyQueueStats {
	app := q.appliedOps.Load()
	enq := q.enqOps.Load()
	return ApplyQueueStats{
		Enqueued: enq,
		Applied:  app,
		Depth:    enq - app,
		Batches:  q.batches.Load(),
		MaxBatch: q.maxBatch.Load(),
		Errors:   q.errors.Load(),
	}
}

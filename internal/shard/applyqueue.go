// The replica apply pipeline: an asynchronous, ordered write queue that
// fixes the cluster's write bottleneck. Before it, every tuple write
// applied synchronously to the full-copy replica under the write stripe
// lock, so the replica's single store lock serialized the entire
// cluster's write load — O(writes) exclusive lock acquisitions on the one
// engine every shard-side write also had to cross. Now the owning shard
// commits synchronously (preserving the per-shard plan-cache invariant
// and the caller's verdict) while the replica write is enqueued onto a
// per-stripe lane and applied later in coalesced batches, one
// store.DB.ApplyBatch — one exclusive lock acquisition — per batch:
// O(batches), not O(writes).
//
// # Ordering
//
// Correctness needs only per-tuple ordering: two writes of the same tuple
// must reach the replica in the order the stripe lock serialized them.
// Every enqueue happens under the caller's write stripe (shard.go), and a
// tuple always hashes to the same stripe, so one FIFO lane per stripe
// preserves exactly the required order; lanes are independent and the
// applier may interleave them freely.
//
// # The watermark fence
//
// Each enqueue takes a ticket from a global counter; the applier's cut —
// taken under qmu held exclusively, which excludes all enqueues — swaps
// every lane and records the counter, so the batch contains precisely the
// ops ticketed up to the cut. After applying a batch the applier
// publishes its cut as the watermark: every op with ticket <= watermark
// is in the replica. A replica-routed read (replica-fallback queries,
// DBSize/IndexEntries, constraint mutations, the reshard copy phase)
// fences first: it reads the ticket counter (or a single lane's highest
// ticket) and waits until the watermark passes it, which drains exactly
// the writes it could depend on — read-your-writes is preserved and
// answers stay identical to a single engine at every instant.
//
// # Lifecycle
//
// There is no resident goroutine. An enqueue that finds no applier
// running starts one; the applier loops — cut, apply, publish — until a
// cut comes back empty and exits under the same exclusive section, so no
// op can slip between its last look and its exit. A router that is
// abandoned drains and goes quiet; nothing needs closing.
package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/store"
	"repro/internal/value"
)

// lane is one stripe's FIFO of pending replica writes.
type lane struct {
	mu  sync.Mutex
	ops []store.TupleOp
	// last is the highest ticket enqueued on this lane; a fence that only
	// depends on this stripe waits for the watermark to pass it.
	last uint64
}

// applyQueue batches replica writes, preserving per-stripe order and
// exposing the watermark fence. See the package comment at the top of
// this file for the protocol.
type applyQueue struct {
	db *store.DB

	// qmu orders enqueues against the applier's cut: enqueues hold it
	// shared (ticket assignment and lane append are one atomic step under
	// it), the cut holds it exclusively — so a cut at counter value W has
	// every op ticketed <= W in its swapped lanes.
	qmu   sync.RWMutex
	lanes [wstripes]lane

	// enq is the ticket counter; applied the watermark (every op ticketed
	// <= applied has reached the replica).
	enq     atomic.Uint64
	applied atomic.Uint64

	// running is true while an applier goroutine is live.
	running atomic.Bool
	// paused suppresses applier spawning on enqueue. Tests use it to
	// accumulate a deterministic backlog; fences still spawn, so no reader
	// can be wedged by it.
	paused atomic.Bool

	// fmu/fcond park fencing readers until the watermark passes their
	// ticket.
	fmu   sync.Mutex
	fcond *sync.Cond

	// batches counts ApplyBatch calls (= replica lock acquisitions),
	// maxBatch the largest single batch, errors batches whose application
	// reported a store rejection (writes are validated before enqueue, so
	// any error is a bug).
	batches  atomic.Int64
	maxBatch atomic.Int64
	errors   atomic.Int64
}

// newApplyQueue returns an idle queue applying to db.
func newApplyQueue(db *store.DB) *applyQueue {
	q := &applyQueue{db: db}
	q.fcond = sync.NewCond(&q.fmu)
	return q
}

// enqueue appends one replica write to its stripe's lane and returns its
// ticket. The caller must hold the write stripe lock for stripe, which is
// what orders same-tuple enqueues.
func (q *applyQueue) enqueue(stripe uint64, rel string, t value.Tuple, del bool) uint64 {
	q.qmu.RLock()
	ln := &q.lanes[stripe]
	ln.mu.Lock()
	ticket := q.enq.Add(1)
	ln.ops = append(ln.ops, store.TupleOp{Rel: rel, T: t, Del: del})
	ln.last = ticket
	ln.mu.Unlock()
	q.qmu.RUnlock()
	if !q.paused.Load() {
		q.spawn()
	}
	return ticket
}

// spawn starts an applier if none is running.
func (q *applyQueue) spawn() {
	if q.running.CompareAndSwap(false, true) {
		go q.run()
	}
}

// run is the applier loop: cut, apply, publish, until a cut is empty.
func (q *applyQueue) run() {
	for {
		q.qmu.Lock()
		cut := q.enq.Load()
		var batch []store.TupleOp
		for i := range q.lanes {
			ln := &q.lanes[i]
			if len(ln.ops) == 0 {
				continue
			}
			batch = append(batch, ln.ops...)
			ln.ops = nil
		}
		if len(batch) == 0 {
			// Exit inside the exclusive section: any enqueue after it sees
			// running == false and spawns a fresh applier, so no op is left
			// behind.
			q.running.Store(false)
			q.qmu.Unlock()
			return
		}
		q.qmu.Unlock()

		if err := q.db.ApplyBatch(batch); err != nil {
			q.errors.Add(1)
		}
		q.batches.Add(1)
		if n := int64(len(batch)); n > q.maxBatch.Load() {
			q.maxBatch.Store(n) // single applier: no concurrent max race
		}
		q.fmu.Lock()
		q.applied.Store(cut)
		q.fcond.Broadcast()
		q.fmu.Unlock()
	}
}

// fence blocks until every op ticketed <= ticket has been applied. It
// spawns an applier if none is running (covering the paused test mode and
// the spawn/exit race), so it always terminates.
func (q *applyQueue) fence(ticket uint64) {
	if ticket == 0 || q.applied.Load() >= ticket {
		return
	}
	q.spawn()
	q.fmu.Lock()
	for q.applied.Load() < ticket {
		q.fcond.Wait()
	}
	q.fmu.Unlock()
}

// fenceAll drains everything enqueued so far: read-your-writes for a
// reader that may depend on any prior write.
func (q *applyQueue) fenceAll() {
	q.fence(q.enq.Load())
}

// fenceStripe drains only the writes enqueued on one stripe. The caller
// must hold that write stripe lock, which freezes the lane's last ticket;
// the reshard copy phase uses it to make per-row replica presence probes
// exact without draining the whole queue per row.
func (q *applyQueue) fenceStripe(stripe uint64) {
	ln := &q.lanes[stripe]
	ln.mu.Lock()
	last := ln.last
	ln.mu.Unlock()
	q.fence(last)
}

// ApplyQueueStats is an observability snapshot of the replica apply
// pipeline, exposed via Router.ApplyQueueStats and GET /stats.
type ApplyQueueStats struct {
	// Enqueued counts replica writes accepted since the router was built;
	// Applied is the watermark (writes that have reached the replica).
	// Their difference is Depth, the current backlog — the replica's
	// watermark lag in ops.
	Enqueued, Applied, Depth int64
	// Batches counts batched store applications — replica write-lock
	// acquisitions. Enqueued/Batches is the realized coalescing factor.
	Batches int64
	// MaxBatch is the largest batch applied so far.
	MaxBatch int64
	// Errors counts batch applications in which the store rejected at
	// least one op. Writes are validated before they are enqueued, so a
	// non-zero value indicates a bug.
	Errors int64
}

// stats snapshots the counters. The watermark is read before the ticket
// counter so the derived Depth can never go negative when the applier
// advances between the two loads.
func (q *applyQueue) stats() ApplyQueueStats {
	app := int64(q.applied.Load())
	enq := int64(q.enq.Load())
	return ApplyQueueStats{
		Enqueued: enq,
		Applied:  app,
		Depth:    enq - app,
		Batches:  q.batches.Load(),
		MaxBatch: q.maxBatch.Load(),
		Errors:   q.errors.Load(),
	}
}

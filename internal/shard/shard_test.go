package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

// buildPair returns a single engine and a sharded router over identical
// copies of one dataset instance.
func buildPair(t *testing.T, name string, shards int) (*core.Engine, *Router, *workload.Dataset) {
	t.Helper()
	d, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	dbSingle, err := d.Gen(0.05, 2016)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d.Schema, d.Access, dbSingle)
	if err != nil {
		t.Fatal(err)
	}
	dbShard, err := d.Gen(0.05, 2016)
	if err != nil {
		t.Fatal(err)
	}
	router, err := New(d.Schema, d.Access, dbShard, Spec{Shards: shards, Keys: d.ShardKeys})
	if err != nil {
		t.Fatal(err)
	}
	return eng, router, d
}

// TestShardedDifferential asserts the core guarantee: for every workload
// template (covered and uncovered) and every shard count, the sharded
// router returns exactly the single-engine row set and the same coverage
// and boundedness verdicts.
func TestShardedDifferential(t *testing.T) {
	for _, name := range []string{"AIRCA", "TFACC", "MCBM"} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%d", name, shards), func(t *testing.T) {
				eng, router, d := buildPair(t, name, shards)
				for _, tpl := range d.Templates() {
					q1, err := eng.Parse(tpl.Src)
					if err != nil {
						t.Fatalf("%s: parse: %v", tpl.Name, err)
					}
					want, wantRep, err := eng.Execute(q1, core.DefaultOptions())
					if err != nil {
						t.Fatalf("%s: single engine: %v", tpl.Name, err)
					}
					q2, err := router.Parse(tpl.Src)
					if err != nil {
						t.Fatalf("%s: parse: %v", tpl.Name, err)
					}
					got, gotRep, err := router.Execute(q2, core.DefaultOptions())
					if err != nil {
						t.Fatalf("%s: sharded: %v", tpl.Name, err)
					}
					if !want.Equal(got) {
						t.Errorf("%s: sharded rows differ from single engine\nwant %d rows:\n%s\ngot %d rows:\n%s",
							tpl.Name, want.Len(), want.String(), got.Len(), got.String())
					}
					if want.Len() != got.Len() {
						t.Errorf("%s: row count %d vs %d", tpl.Name, want.Len(), got.Len())
					}
					if wantRep.Covered != gotRep.Covered {
						t.Errorf("%s: covered verdict %v vs %v", tpl.Name, wantRep.Covered, gotRep.Covered)
					}
					if wantRep.Bounded != gotRep.Bounded {
						t.Errorf("%s: bounded verdict %v vs %v", tpl.Name, wantRep.Bounded, gotRep.Bounded)
					}
				}
			})
		}
	}
}

// TestShardedDifferentialRandom widens the differential net beyond the
// templates: random generator queries (covered or not) must agree with
// the single engine too.
func TestShardedDifferentialRandom(t *testing.T) {
	for _, name := range []string{"AIRCA", "TFACC", "MCBM"} {
		t.Run(name, func(t *testing.T) {
			eng, router, d := buildPair(t, name, 3)
			rng := rand.New(rand.NewSource(7))
			p := workload.DefaultQueryParams()
			for i := 0; i < 40; i++ {
				p.Sel = 1 + rng.Intn(5)
				p.Join = rng.Intn(3)
				p.UniDiff = rng.Intn(2)
				q, err := d.RandomQuery(p, rng)
				if err != nil {
					t.Fatal(err)
				}
				want, wantRep, err := eng.Execute(q, core.DefaultOptions())
				if err != nil {
					t.Fatalf("query %d: single engine: %v", i, err)
				}
				got, gotRep, err := router.Execute(q, core.DefaultOptions())
				if err != nil {
					t.Fatalf("query %d: sharded: %v", i, err)
				}
				if !want.Equal(got) {
					t.Errorf("query %d (%s): rows differ: %d vs %d\n%s\nvs\n%s",
						i, q.String(), want.Len(), got.Len(), want.String(), got.String())
				}
				if wantRep.Bounded != gotRep.Bounded {
					t.Errorf("query %d: bounded verdict %v vs %v", i, wantRep.Bounded, gotRep.Bounded)
				}
			}
		})
	}
}

// TestRoutingStrategies pins the router's strategy choice on the AIRCA
// templates: origin-bound queries take the single-shard fast path,
// key-unbound single-occurrence queries scatter, and the fid⋈origin
// cross-key join takes the distributed residue path.
func TestRoutingStrategies(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 4)
	cases := []struct {
		src  string
		kind routeKind
	}{
		// ontime.origin pinned to 42 on both sides of the difference.
		{`(q(airline) :- ontime(f, 42, d, airline, m, delay)) EXCEPT (q(airline) :- carrier(airline, nm, 0), ontime(f2, 42, d2, airline, m2, delay2))`, routeSingle},
		// Broadcast relations only.
		{`q(cname) :- carrier(3, cname, country)`, routeSingle},
		// ontime unbound on its partition key: distributes, scatter.
		{`q(origin, dest) :- ontime(f, origin, dest, 3, m, delay)`, routeScatter},
		// ontime (by origin) joined with delaycause (by fid) on fid, with
		// only fid bound: keys on different attributes, not co-located.
		{`q(origin, dest, cause) :- ontime(77, origin, dest, al, m, delay), delaycause(77, cause, mins)`, routeResidue},
	}
	st := router.state.Load()
	for _, tc := range cases {
		q, err := router.Parse(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		norm, err := ra.Normalize(q, router.Schema())
		if err != nil {
			t.Fatal(err)
		}
		if dec := router.route(norm, st.ring, len(st.members), router.part.Load()); dec.kind != tc.kind {
			t.Errorf("route(%q) = %v, want %v", tc.src, dec.kind, tc.kind)
		}
	}
	// The fast path must pick the shard that owns the constant.
	q, err := router.Parse(`q(airline) :- ontime(f, 42, d, airline, m, delay)`)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := ra.Normalize(q, router.Schema())
	if err != nil {
		t.Fatal(err)
	}
	dec := router.route(norm, st.ring, len(st.members), router.part.Load())
	if dec.kind != routeSingle {
		t.Fatalf("origin-bound query did not fast-path: %v", dec.kind)
	}
	if !dec.keyed {
		t.Error("origin-bound fast path not marked keyed")
	}
	if want := router.ownerOf(value.NewInt(42)); dec.shard != want {
		t.Errorf("fast path chose shard %d, owner of 42 is %d", dec.shard, want)
	}
}

// TestWritesRouteToOwner asserts that a partitioned insert lands on
// exactly one shard, stays queryable through the router, and keeps
// Version unchanged (the per-shard cache invariant on the cluster).
func TestWritesRouteToOwner(t *testing.T) {
	d, err := workload.ByName("AIRCA")
	if err != nil {
		t.Fatal(err)
	}
	db, err := d.Gen(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	router, err := New(d.Schema, d.Access, db, Spec{Shards: 4, Keys: d.ShardKeys})
	if err != nil {
		t.Fatal(err)
	}
	v0 := router.Version()
	// Warm a cached plan over the partitioned relation.
	q, err := router.Parse(`q(airline) :- ontime(f, 97, d, airline, m, delay)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	tup := value.Tuple{value.NewInt(990001), value.NewInt(97), value.NewInt(12),
		value.NewInt(7), value.NewInt(1), value.NewInt(30)}
	changed, err := router.Insert("ontime", tup)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("insert of a fresh tuple reported no change")
	}
	owner := router.ownerOf(value.NewInt(97))
	for i, m := range router.state.Load().members {
		rows, err := m.eng.DB().Rows("ontime")
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range rows {
			if r.Equal(tup) {
				found = true
			}
		}
		if found != (i == owner) {
			t.Errorf("shard %d: tuple present=%v, owner is %d", i, found, owner)
		}
	}
	// The cached plan must see the new tuple without any invalidation.
	table, rep, err := router.Execute(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Error("repeat query after insert missed the plan cache")
	}
	found := false
	for _, r := range table.Tuples() {
		if r[0].Equal(value.NewInt(7)) {
			found = true
		}
	}
	if !found {
		t.Error("cached plan did not observe the routed insert")
	}
	if router.Version() != v0 {
		t.Errorf("tuple write moved Version %d -> %d", v0, router.Version())
	}
	if _, err := router.Delete("ontime", tup); err != nil {
		t.Fatal(err)
	}
}

// TestConstraintFanOut asserts access-schema changes reach every member
// engine and bump all versions in lockstep.
func TestConstraintFanOut(t *testing.T) {
	d, err := workload.ByName("AIRCA")
	if err != nil {
		t.Fatal(err)
	}
	db, err := d.Gen(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	router, err := New(d.Schema, d.Access, db, Spec{Shards: 3, Keys: d.ShardKeys})
	if err != nil {
		t.Fatal(err)
	}
	v0 := router.Version()
	c := access.Constraint{Rel: "plane", X: []string{"model"}, Y: []string{"tailnum"}, N: 2000}
	if err := router.AddConstraints(c); err != nil {
		t.Fatal(err)
	}
	for _, st := range router.PerShardStats() {
		if st.Version != v0+1 {
			t.Errorf("%s: version %d, want %d", st.Label, st.Version, v0+1)
		}
	}
	if !router.RemoveConstraint(c) {
		t.Error("RemoveConstraint did not find the installed constraint")
	}
	for _, st := range router.PerShardStats() {
		if st.Version != v0+2 {
			t.Errorf("%s after remove: version %d, want %d", st.Label, st.Version, v0+2)
		}
	}
}

// TestDeriveKeys checks the automatic partition-key policy on AIRCA: the
// big fact tables get their most-indexed attribute, small dimension
// tables stay broadcast.
func TestDeriveKeys(t *testing.T) {
	d, err := workload.ByName("AIRCA")
	if err != nil {
		t.Fatal(err)
	}
	db, err := d.Gen(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys := DeriveKeys(d.Schema, d.Access, db, DefaultMinPartitionRows)
	if keys["ontime"] != "origin" {
		t.Errorf("ontime key = %q, want origin", keys["ontime"])
	}
	if keys["delaycause"] != "fid" {
		t.Errorf("delaycause key = %q, want fid", keys["delaycause"])
	}
	for _, rel := range []string{"airport", "carrier"} {
		if k, ok := keys[rel]; ok {
			t.Errorf("small relation %s partitioned by %q, want broadcast", rel, k)
		}
	}
}

// TestScatterGatherUnderChurn is the -race test: concurrent queries over
// every routing strategy while writers churn tuples through the router
// and a constraint toggler fans out version bumps. It asserts freedom
// from data races, error-free execution, and version lockstep at the end.
func TestScatterGatherUnderChurn(t *testing.T) {
	d, err := workload.ByName("AIRCA")
	if err != nil {
		t.Fatal(err)
	}
	db, err := d.Gen(0.05, 2016)
	if err != nil {
		t.Fatal(err)
	}
	router, err := New(d.Schema, d.Access, db, Spec{Shards: 4, Keys: d.ShardKeys})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`q(airline) :- ontime(f, 42, d, airline, m, delay)`,                                             // single-shard fast path
		`q(origin, dest) :- ontime(f, origin, dest, 3, m, delay)`,                                       // scatter (uncovered → baseline per shard)
		`q(city) :- ontime(123, origin, dest, al, m, delay), airport(origin, city, st)`,                 // scatter, covered
		`q(origin, dest, cause) :- ontime(77, origin, dest, al, m, delay), delaycause(77, cause, mins)`, // distributed residue
		`q(cname) :- carrier(3, cname, country)`,                                                        // broadcast-only single shard
	}
	parsed := make([]ra.Query, len(queries))
	for i, src := range queries {
		q, err := router.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		parsed[i] = q
	}
	// Storm material comes from the seed instance, which New read but did
	// not consume.
	rows, err := db.Rows("ontime")
	if err != nil {
		t.Fatal(err)
	}
	sample := rows[:32]

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	const clients, writers, opsPerClient = 8, 3, 60
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				q := parsed[(c+i)%len(parsed)]
				if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
					errCh <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				tup := sample[(w*opsPerClient+i)%len(sample)]
				if _, err := router.Delete("ontime", tup); err != nil {
					errCh <- fmt.Errorf("writer %d delete: %w", w, err)
					return
				}
				if _, err := router.Insert("ontime", tup); err != nil {
					errCh <- fmt.Errorf("writer %d insert: %w", w, err)
					return
				}
			}
		}(w)
	}
	// One goroutine toggles a constraint, forcing version fan-out and
	// cache purges concurrent with scatter/gather.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := access.Constraint{Rel: "plane", X: []string{"model"}, Y: []string{"tailnum"}, N: 5000}
		for i := 0; i < 10; i++ {
			if err := router.AddConstraints(c); err != nil {
				errCh <- fmt.Errorf("add constraint: %w", err)
				return
			}
			router.RemoveConstraint(c)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	stats := router.PerShardStats()
	for _, st := range stats[1:] {
		if st.Version != stats[0].Version {
			t.Errorf("version skew after churn: %s at %d, %s at %d",
				stats[0].Label, stats[0].Version, st.Label, st.Version)
		}
	}
	rs := router.RouteStats()
	if rs.Single == 0 || rs.Scattered == 0 || rs.Residue == 0 {
		t.Errorf("expected all routing strategies exercised, got %+v", rs)
	}
}

// TestRouterServiceParity asserts Router satisfies the aggregate
// observability surface: logical DBSize matches a single engine over the
// same data, and CacheStats aggregates across members.
func TestRouterServiceParity(t *testing.T) {
	eng, router, _ := buildPair(t, "MCBM", 4)
	if eng.DBSize() != router.DBSize() {
		t.Errorf("logical DBSize: single %d, sharded %d", eng.DBSize(), router.DBSize())
	}
	q, err := router.Parse(`q(plan_id, city_id) :- subscriber(1001, plan_id, city_id, status)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	cs := router.CacheStats()
	if cs.Hits == 0 {
		t.Errorf("aggregated cache stats show no hits after a repeat: %+v", cs)
	}
	if got := len(router.PerShardStats()); got != 4 {
		t.Errorf("PerShardStats returned %d entries, want 4 shards", got)
	}
}

// TestConcurrentConstraintMutations pins the router-level serialization
// of access-schema changes: concurrent Add/Remove interleavings must
// never leave engines with divergent versions or schemas.
func TestConcurrentConstraintMutations(t *testing.T) {
	d, err := workload.ByName("AIRCA")
	if err != nil {
		t.Fatal(err)
	}
	db, err := d.Gen(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	router, err := New(d.Schema, d.Access, db, Spec{Shards: 3, Keys: d.ShardKeys})
	if err != nil {
		t.Fatal(err)
	}
	c := access.Constraint{Rel: "plane", X: []string{"model"}, Y: []string{"tailnum"}, N: 5000}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := router.AddConstraints(c); err != nil {
					t.Error(err)
					return
				}
				router.RemoveConstraint(c)
			}
		}()
	}
	wg.Wait()
	stats := router.PerShardStats()
	for _, st := range stats[1:] {
		if st.Version != stats[0].Version {
			t.Fatalf("version skew: %s at %d, %s at %d",
				stats[0].Label, stats[0].Version, st.Label, st.Version)
		}
	}
	want := router.AccessSnapshot().Len()
	for i, m := range router.state.Load().members {
		if got := m.eng.AccessSnapshot().Len(); got != want {
			t.Errorf("shard %d has %d constraints, router reports %d", i, got, want)
		}
	}
}

package shard

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/value"
)

// freshOntime fabricates an ontime tuple with a distinct flight id and
// origin i, outside the generated id range.
func freshOntime(i int64) value.Tuple {
	return value.Tuple{value.NewInt(700000 + i), value.NewInt(i), value.NewInt(12),
		value.NewInt(7), value.NewInt(1), value.NewInt(30)}
}

// freshCarrier fabricates a carrier tuple (a broadcast relation in AIRCA)
// with a distinct airline id outside the generated range.
func freshCarrier(i int64) value.Tuple {
	return value.Tuple{value.NewInt(9000 + i), value.NewInt(900), value.NewInt(1)}
}

// freshPlane fabricates a plane tuple (another broadcast relation) with a
// distinct tailnum outside the generated range.
func freshPlane(i int64) value.Tuple {
	return value.Tuple{value.NewInt(90000 + i), value.NewInt(1), value.NewInt(5), value.NewInt(2001)}
}

// TestApplyBatching is the acceptance check for the broadcast write path:
// with the applier paused, N broadcast writes commit synchronously on the
// anchor but accumulate their non-anchor copies as queue backlog, and
// draining them costs exactly ONE batched application per target engine —
// one write-lock acquisition — instead of N.
func TestApplyBatching(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	router.aq.paused.Store(true)
	s0 := router.ApplyQueueStats()
	const n = 200
	for i := int64(0); i < n; i++ {
		if _, err := router.Insert("carrier", freshCarrier(i)); err != nil {
			t.Fatal(err)
		}
	}
	mid := router.ApplyQueueStats()
	if mid.Depth != n || mid.Enqueued != s0.Enqueued+n {
		t.Fatalf("after %d paused writes: depth %d, enqueued %d (want %d backlogged)",
			n, mid.Depth, mid.Enqueued, n)
	}
	if mid.Batches != s0.Batches {
		t.Fatalf("paused applier still ran %d batches", mid.Batches-s0.Batches)
	}
	members := router.state.Load().members
	// The anchor committed synchronously despite the backlog; the other
	// member has not seen the last write yet.
	for i := int64(0); i < n; i++ {
		if ok, _ := members[0].eng.DB().Has("carrier", freshCarrier(i)); !ok {
			t.Fatalf("write %d not on the anchor while the lane lagged", i)
		}
	}
	if ok, _ := members[1].eng.DB().Has("carrier", freshCarrier(n-1)); ok {
		t.Fatal("non-anchor member applied synchronously; expected a queued copy")
	}
	router.aq.paused.Store(false)
	router.aq.fenceAll()
	s1 := router.ApplyQueueStats()
	if s1.Depth != 0 || s1.Applied != s1.Enqueued {
		t.Fatalf("fence left backlog: %+v", s1)
	}
	if got := s1.Batches - s0.Batches; got != 1 {
		t.Errorf("draining %d queued writes took %d lock acquisitions, want 1 (O(batches), not O(writes))", n, got)
	}
	if s1.MaxBatch < n {
		t.Errorf("MaxBatch = %d, want >= %d", s1.MaxBatch, n)
	}
	if s1.Errors != 0 {
		t.Errorf("apply queue recorded %d store errors", s1.Errors)
	}
	for i := int64(0); i < n; i++ {
		if ok, _ := members[1].eng.DB().Has("carrier", freshCarrier(i)); !ok {
			t.Fatalf("non-anchor member missing write %d after drain", i)
		}
	}
}

// TestFenceReadYourWrites pins the per-relation watermark fence on the
// read path: an acknowledged broadcast write not yet applied to the
// non-anchor members is still observed by any query that reads the
// relation, because Execute fences the relation's lane first.
func TestFenceReadYourWrites(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	size0 := router.DBSize()
	router.aq.paused.Store(true)
	tup := freshCarrier(1)
	if _, err := router.Insert("carrier", tup); err != nil {
		t.Fatal(err)
	}
	members := router.state.Load().members
	if ok, _ := members[1].eng.DB().Has("carrier", tup); ok {
		t.Fatal("non-anchor member applied synchronously; expected a queued copy")
	}
	if got := router.DBSize(); got != size0+1 {
		t.Fatalf("DBSize = %d after acknowledged write, want %d", got, size0+1)
	}
	// Any read of the relation fences its lane — wherever it routes.
	q, err := router.Parse(`q(cname) :- carrier(9001, cname, country)`)
	if err != nil {
		t.Fatal(err)
	}
	table, _, err := router.Execute(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 1 {
		t.Fatalf("read-your-writes: query over the written tuple returned %d rows, want 1", table.Len())
	}
	if s := router.ApplyQueueStats(); s.Depth != 0 {
		t.Errorf("carrier read left a backlog of %d (fence must drain the lane)", s.Depth)
	}
	if ok, _ := members[1].eng.DB().Has("carrier", tup); !ok {
		t.Fatal("read fence did not drain the lane")
	}

	// Same for deletes: a fenced read must not see the deleted tuple on
	// any member.
	if _, err := router.Delete("carrier", tup); err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if ok, _ := members[1].eng.DB().Has("carrier", tup); ok {
		t.Error("fenced member still holds a deleted tuple")
	}
	router.aq.paused.Store(false)
}

// TestPerRelationFenceIsolation pins the point of per-relation lanes: a
// read that depends only on relation R drains R's lane and leaves an
// unrelated relation's deep backlog untouched — the fence costs O(R's own
// backlog), not O(total backlog). The drain counter of the backlogged
// lane pins that it was NOT drained, not merely that its depth survived.
func TestPerRelationFenceIsolation(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	router.aq.paused.Store(true)
	const deep = 50
	for i := int64(0); i < deep; i++ {
		if _, err := router.Insert("carrier", freshCarrier(i)); err != nil {
			t.Fatal(err)
		}
	}
	tup := freshPlane(1)
	if _, err := router.Insert("plane", tup); err != nil {
		t.Fatal(err)
	}
	cDepth0, cDrains0 := router.aq.laneStats("carrier")
	pDepth0, _ := router.aq.laneStats("plane")
	if cDepth0 != deep || pDepth0 != 1 {
		t.Fatalf("backlog setup: carrier depth %d (want %d), plane depth %d (want 1)", cDepth0, deep, pDepth0)
	}

	// A query reading only plane fences only plane's lane.
	q, err := router.Parse(`q(model) :- plane(90001, airline, model, year)`)
	if err != nil {
		t.Fatal(err)
	}
	table, _, err := router.Execute(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 1 {
		t.Fatalf("plane read returned %d rows, want 1 (read-your-writes through the lane fence)", table.Len())
	}
	pDepth1, _ := router.aq.laneStats("plane")
	cDepth1, cDrains1 := router.aq.laneStats("carrier")
	if pDepth1 != 0 {
		t.Errorf("plane lane depth %d after a plane read, want 0", pDepth1)
	}
	if cDepth1 != deep {
		t.Errorf("carrier lane depth %d after a plane read, want %d (unrelated backlog must survive)", cDepth1, deep)
	}
	if cDrains1 != cDrains0 {
		t.Errorf("carrier lane was drained %d times by a plane read, want 0", cDrains1-cDrains0)
	}

	// fenceAll still drains everything.
	router.aq.paused.Store(false)
	router.aq.fenceAll()
	if s := router.ApplyQueueStats(); s.Depth != 0 {
		t.Errorf("fenceAll left a backlog of %d", s.Depth)
	}
}

// TestDoubleRouteCountedDistinctly is the regression test for the
// route-stats mislabeling: a keyed fast-path query that double-routes to
// two owners mid-migration is a gather, and must be counted as Double —
// not Single — so RouteStats and /stats do not under-report gather load
// while a reshard is in flight.
func TestDoubleRouteCountedDistinctly(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)

	// Freeze a 2→4 migration in its copy phase.
	hold := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	calls := 0
	router.hookMigBatch = func() {
		calls++
		if calls > 2 {
			once.Do(func() { close(started) })
			<-hold
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := router.Reshard(context.Background(), 4)
		done <- err
	}()
	<-started

	mig := router.mig.Load()
	if mig == nil {
		t.Fatal("no live migration after freeze")
	}
	// A key whose owner differs between the rings double-routes; one whose
	// owner agrees stays a plain single.
	moved, stayed := int64(-1), int64(-1)
	for k := int64(0); k < 1000 && (moved < 0 || stayed < 0); k++ {
		v := value.NewInt(k)
		oldM := mig.oldMembers[mig.oldRing.OwnerOf(v)]
		newM := mig.newMembers[mig.newRing.OwnerOf(v)]
		if oldM != newM && moved < 0 {
			moved = k
		}
		if oldM == newM && stayed < 0 {
			stayed = k
		}
	}
	if moved < 0 || stayed < 0 {
		t.Fatal("could not find both a moved and an unmoved key")
	}

	exec := func(key int64) {
		t.Helper()
		src := `q(airline) :- ontime(f, ` + value.NewInt(key).String() + `, d, airline, m, delay)`
		q, err := router.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}

	rs0 := router.RouteStats()
	exec(moved)
	rs1 := router.RouteStats()
	if rs1.Double != rs0.Double+1 {
		t.Errorf("mid-move keyed read: Double %d → %d, want +1", rs0.Double, rs1.Double)
	}
	if rs1.Single != rs0.Single {
		t.Errorf("mid-move keyed read mis-counted as Single (%d → %d)", rs0.Single, rs1.Single)
	}
	exec(stayed)
	rs2 := router.RouteStats()
	if rs2.Single != rs1.Single+1 || rs2.Double != rs1.Double {
		t.Errorf("unmoved keyed read: Single %d → %d, Double %d → %d, want Single +1 only",
			rs1.Single, rs2.Single, rs1.Double, rs2.Double)
	}

	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("unfrozen reshard failed: %v", err)
	}
	router.hookMigBatch = nil
}

// TestGatherFirstErrorPath pins gather's error contract under the worker
// pools: when one shard errors mid-scatter, Execute returns that error
// (first in member order), discards every sibling result, counts the
// decision exactly once, and the router keeps serving afterwards.
func TestGatherFirstErrorPath(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 3)
	// Break shard 1 through a side channel the engine cannot see: its
	// bounded plans will fail their index fetches.
	broken := router.state.Load().members[1]
	broken.eng.DB().DropIndexes()

	q, err := router.Parse(`q(city) :- ontime(123, origin, dest, al, m, delay), airport(origin, city, st)`)
	if err != nil {
		t.Fatal(err)
	}
	rs0 := router.RouteStats()
	var q0 [3]int64
	for i, m := range router.state.Load().members {
		q0[i] = m.queries.Load()
	}
	table, _, err := router.Execute(q, core.DefaultOptions())
	if err == nil {
		t.Fatal("scatter over a broken shard returned no error")
	}
	if !strings.Contains(err.Error(), "no index") {
		t.Fatalf("error = %v, want the broken shard's fetch failure", err)
	}
	if table != nil {
		t.Error("sibling results not discarded: non-nil table alongside the error")
	}
	rs1 := router.RouteStats()
	if rs1.Scattered != rs0.Scattered+1 {
		t.Errorf("Scattered %d → %d, want exactly +1", rs0.Scattered, rs1.Scattered)
	}
	if rs1.Single != rs0.Single || rs1.Residue != rs0.Residue || rs1.Double != rs0.Double {
		t.Errorf("error path corrupted unrelated counters: %+v → %+v", rs0, rs1)
	}
	for i, m := range router.state.Load().members {
		if got := m.queries.Load(); got != q0[i]+1 {
			t.Errorf("shard %d query counter %d → %d, want +1 (every member executed)", i, q0[i], got)
		}
	}
	// The pools and the router survive the error: a keyed read on an
	// unbroken shard still answers.
	key := int64(-1)
	for k := int64(0); k < 1000; k++ {
		if router.ownerOf(value.NewInt(k)) != 1 {
			key = k
			break
		}
	}
	if key < 0 {
		t.Fatal("no key owned by an unbroken shard")
	}
	fb, err := router.Parse(`q(airline) :- ontime(f, ` + value.NewInt(key).String() + `, d, airline, m, delay)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Execute(fb, core.DefaultOptions()); err != nil {
		t.Fatalf("router stopped serving after a gather error: %v", err)
	}
}

// TestReshardPrewarmsFreshEngines asserts the routing-aware prewarm: the
// plan caches of engines created by a growing Reshard are compiled from
// the router's query history before the flip, so they start warm.
func TestReshardPrewarmsFreshEngines(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	for _, src := range []string{
		`q(airline) :- ontime(f, 42, d, airline, m, delay)`,
		`q(city) :- ontime(123, origin, dest, al, m, delay), airport(origin, city, st)`,
		`q(cname) :- carrier(3, cname, country)`,
	} {
		q, err := router.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := router.Execute(q, core.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := router.Reshard(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	members := router.state.Load().members
	if len(members) != 4 {
		t.Fatalf("expected 4 members after growth, got %d", len(members))
	}
	for i := 2; i < 4; i++ {
		if got := members[i].eng.CacheStats().Entries; got < 3 {
			t.Errorf("fresh shard %d has %d prewarmed plan-cache entries, want >= 3", i, got)
		}
	}
	// A keyed repeat right after the flip hits a warm cache wherever the
	// key now lives.
	q, err := router.Parse(`q(airline) :- ontime(f, 42, d, airline, m, delay)`)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := router.Execute(q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Error("first keyed repeat after growth missed the plan cache despite prewarming")
	}
}

// TestWorkerPoolBoundsConcurrency pins the pool contract: at most limit
// tasks run on pool workers at once, plus the submitter itself when the
// queue overflows into inline execution.
func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	const limit = 2
	p := newWorkerPool(limit)
	var running, maxRunning atomic.Int32
	var wg sync.WaitGroup
	const tasks = 40
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		p.submit(func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				m := maxRunning.Load()
				if n <= m || maxRunning.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
		})
	}
	wg.Wait()
	// limit pool workers + the submitting goroutine's inline overflow.
	if got := maxRunning.Load(); got > limit+1 {
		t.Errorf("observed %d concurrent tasks, want <= %d", got, limit+1)
	}
	if p.active.Load() != 0 {
		t.Errorf("%d workers still resident after drain", p.active.Load())
	}
}

// TestMutateValidation pins the up-front write validation: unknown
// relations and arity mismatches fail before anything is applied or
// enqueued.
func TestMutateValidation(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	s0 := router.ApplyQueueStats()
	if _, err := router.Insert("nosuch", value.Tuple{value.NewInt(1)}); err == nil {
		t.Error("insert into unknown relation accepted")
	}
	if _, err := router.Delete("nosuch", value.Tuple{value.NewInt(1)}); err == nil {
		t.Error("delete from unknown relation accepted")
	}
	if _, err := router.Insert("ontime", value.Tuple{value.NewInt(1)}); err == nil {
		t.Error("insert with wrong arity accepted")
	}
	if s1 := router.ApplyQueueStats(); s1.Enqueued != s0.Enqueued {
		t.Errorf("rejected writes were enqueued: %d → %d", s0.Enqueued, s1.Enqueued)
	}
}

// TestRouterWriteVerdicts asserts the anchor-side verdict reports set
// semantics over the cluster for both partitioned and broadcast writes.
func TestRouterWriteVerdicts(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	tup := freshOntime(9)
	if ch, err := router.Insert("ontime", tup); err != nil || !ch {
		t.Fatalf("fresh insert: changed=%v err=%v", ch, err)
	}
	if ch, err := router.Insert("ontime", tup); err != nil || ch {
		t.Fatalf("duplicate insert: changed=%v err=%v, want no-op", ch, err)
	}
	if ch, err := router.Delete("ontime", tup); err != nil || !ch {
		t.Fatalf("delete of present tuple: changed=%v err=%v", ch, err)
	}
	if ch, err := router.Delete("ontime", tup); err != nil || ch {
		t.Fatalf("delete of absent tuple: changed=%v err=%v, want no-op", ch, err)
	}
	// A replicated relation routes to every shard; the verdict still
	// reflects the cluster state exactly once.
	rep := value.Tuple{value.NewInt(9001), value.NewStr("Test Air"), value.NewInt(1)}
	if ch, err := router.Insert("carrier", rep); err != nil || !ch {
		t.Fatalf("replicated insert: changed=%v err=%v", ch, err)
	}
	if ch, err := router.Insert("carrier", rep); err != nil || ch {
		t.Fatalf("replicated duplicate: changed=%v err=%v", ch, err)
	}
	if ch, err := router.Delete("carrier", rep); err != nil || !ch {
		t.Fatalf("replicated delete: changed=%v err=%v", ch, err)
	}
}

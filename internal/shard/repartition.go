// Online repartitioning: Repartition changes ONE relation's placement —
// key to key (rekey), key to broadcast (promote), or broadcast to key
// (demote) — while queries and writes keep flowing, and every
// intermediate state answers exactly like a single engine. It reuses the
// three-phase protocol of Reshard (rebalance.go) with the ring held fixed
// and the placement assignment moving instead:
//
//	prepare  Build the target partState (generation + 1). Publish the
//	         migration, pass a stripe barrier, then fence the relation's
//	         apply-queue lane: from here every write to the relation is
//	         synchronous on all its targets (mutate checks rp), so the
//	         lane stays empty for the whole move and per-tuple ordering
//	         needs no queue reasoning.
//	copy     Readers stay on the old assignment; writes double-apply
//	         under both (writeTargets' rp branch, same phase rules as
//	         Reshard). Rows are streamed to the placements the new
//	         assignment adds, stripe-locked and presence-checked at the
//	         source so a concurrent delete is never resurrected. A demote
//	         copies nothing: every member already holds the full
//	         relation, a superset of any keyed slice.
//	flip     Swap the partState atomically (generation + 1). Routing
//	         decisions cached under the old generation die with the
//	         stamp. The read fence is then taken and released so no
//	         query routed under the old assignment is still running when
//	         cleanup starts.
//	cleanup  Sweep each member clean of the copies the new assignment no
//	         longer places on it (a promote sweeps nothing). Inserts
//	         already go only to new placements, so the sweep converges;
//	         deletes cover both placements until the migration clears.
//
// Surplus copies mid-move are sound for every read strategy: single-shard
// reads route to a placement that is complete under the readers' current
// assignment, and scatter, residue and gather merges are set unions, so
// an extra copy of a tuple on a non-owning shard can only re-contribute a
// row the owner already contributed. Cancelling ctx during copy aborts
// and rolls back (sweep by the old assignment); after the flip the
// remaining work is bounded local cleanup and runs to completion.
package shard

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// repartition is the shared state of one in-flight placement change,
// published on Router.rp for the write path. It reuses Reshard's phase
// constants; mig and rp are mutually exclusive (both run under rmu).
type repartition struct {
	rel          string
	oldPS, newPS *partState
	phase        atomic.Int32
	moved        atomic.Int64
}

// RepartitionReport summarizes a completed Repartition.
type RepartitionReport struct {
	// Rel is the relation whose placement changed; From and To name the
	// placements ("broadcast" or the partition-key attribute).
	Rel, From, To string
	// Moved is the number of row copies streamed to new placements.
	Moved int64
	// Gen is the placement generation after the flip.
	Gen uint64
	// Duration is the wall time of the whole operation.
	Duration time.Duration
}

// placementName renders a relation's placement under ps for reports.
func placementName(ps *partState, rel string) string {
	if key, ok := ps.keys[rel]; ok {
		return key
	}
	return "broadcast"
}

// Repartition moves one relation to a new placement while the cluster
// keeps serving: newKey names the partition-key attribute, or is empty to
// broadcast the relation to every shard. Every query answered at any
// point during the move is exactly the single-engine answer; no engine
// version moves. It returns ErrReshardInProgress when a Reshard or
// another Repartition is still running, and a no-op report when the
// relation already has the requested placement.
//
// Cancelling ctx during the copy phase aborts and rolls the placement
// back; after the internal flip the operation is committed and runs its
// bounded cleanup regardless of ctx.
func (r *Router) Repartition(ctx context.Context, rel, newKey string) (*RepartitionReport, error) {
	attrs, ok := r.schema[rel]
	if !ok {
		return nil, fmt.Errorf("shard: unknown relation %q", rel)
	}
	newPos := -1
	if newKey != "" {
		for i, a := range attrs {
			if a == newKey {
				newPos = i
				break
			}
		}
		if newPos < 0 {
			return nil, fmt.Errorf("shard: relation %s has no attribute %q to partition by", rel, newKey)
		}
	}
	if !r.rmu.TryLock() {
		return nil, ErrReshardInProgress
	}
	defer r.rmu.Unlock()
	start := time.Now()
	oldPS := r.part.Load()
	// keys[rel] is "" exactly when the relation is broadcast, and "" also
	// encodes "broadcast" as a target, so one comparison covers all no-ops.
	if oldPS.keys[rel] == newKey {
		return &RepartitionReport{Rel: rel, From: placementName(oldPS, rel), To: placementName(oldPS, rel), Gen: oldPS.gen}, nil
	}
	// As in Reshard: shed the views before moving a relation wholesale
	// rather than delta-maintaining them through the copy and sweep.
	r.PurgeMaterializations()

	// Prepare: the target assignment, one generation ahead.
	newPS := &partState{
		gen:    oldPS.gen + 1,
		keys:   make(map[string]string, len(oldPS.keys)+1),
		keyPos: make(map[string]int, len(oldPS.keyPos)+1),
	}
	for k, v := range oldPS.keys {
		newPS.keys[k] = v
	}
	for k, v := range oldPS.keyPos {
		newPS.keyPos[k] = v
	}
	if newKey == "" {
		delete(newPS.keys, rel)
		delete(newPS.keyPos, rel)
	} else {
		newPS.keys[rel] = newKey
		newPS.keyPos[rel] = newPos
	}
	rp := &repartition{rel: rel, oldPS: oldPS, newPS: newPS}
	st := r.state.Load()

	// Publish, drain in-flight stable-mode writes, then empty the
	// relation's lane: writes past the barrier see rp and go synchronous,
	// so the lane stays empty until the migration clears.
	r.rp.Store(rp)
	r.stripeBarrier()
	r.aq.fenceRel(rel)
	if err := r.repartitionCopy(ctx, rp, st); err != nil {
		rp.phase.Store(phaseAbort)
		r.stripeBarrier()
		r.repartitionSweep(oldPS, rel, st)
		r.rp.Store(nil)
		return nil, err
	}

	// Flip: readers move to the new assignment atomically; decisions
	// cached under the old generation are dead on arrival. The read fence
	// drains queries routed under the old assignment before the sweep
	// deletes the copies they may still be reading.
	r.part.Store(newPS)
	rp.phase.Store(phaseCleanup)
	r.rs.Lock()
	r.rs.Unlock() //nolint:staticcheck // immediate unlock: the pair is a reader drain, not a critical section
	r.stripeBarrier()
	r.repartitionSweep(newPS, rel, st)
	r.rp.Store(nil)
	r.resRepartitions.Add(1)
	return &RepartitionReport{
		Rel:      rel,
		From:     placementName(oldPS, rel),
		To:       placementName(newPS, rel),
		Moved:    rp.moved.Load(),
		Gen:      newPS.gen,
		Duration: time.Since(start),
	}, nil
}

// repartitionCopy streams every row of the moving relation to the
// placements the new assignment adds. The source is each member's own
// slice (disjoint under a keyed old assignment); rows are copied under
// their write stripe and only if still present at the source, so the copy
// can never resurrect a concurrently deleted tuple — rows written during
// the phase are double-applied by writeTargets and need no copying. A
// demote (broadcast → keyed) copies nothing: the new owner of every
// tuple already holds it.
func (r *Router) repartitionCopy(ctx context.Context, rp *repartition, st *ringState) error {
	if _, wasKeyed := rp.oldPS.keyPos[rp.rel]; !wasKeyed {
		return nil // demote: every member already holds every row
	}
	for _, m := range st.members {
		rows, err := m.eng.DB().Rows(rp.rel)
		if err != nil {
			return err
		}
		for i, t := range rows {
			if i%migBatchRows == 0 {
				if err := r.migStep(ctx); err != nil {
					return err
				}
			}
			var added bool
			mu := &r.wmu[stripeOf(rp.rel, t)]
			mu.Lock()
			ok, err := m.eng.DB().Has(rp.rel, t)
			if err == nil && ok {
				for _, tgt := range rp.newPS.placement(rp.rel, t, st) {
					if tgt == m {
						continue
					}
					if _, err = tgt.eng.Insert(rp.rel, t); err != nil {
						break
					}
					added = true
				}
			}
			mu.Unlock()
			if err != nil {
				return err
			}
			if added {
				rp.moved.Add(1)
			}
		}
	}
	return nil
}

// repartitionSweep deletes from every member the copies of the moving
// relation that assignment ps does not place on it: the cleanup sweep
// under the new assignment, and the abort sweep under the old one. A
// broadcast assignment sweeps nothing.
func (r *Router) repartitionSweep(ps *partState, rel string, st *ringState) {
	pos, keyed := ps.keyPos[rel]
	if !keyed {
		return
	}
	for i, m := range st.members {
		rows, err := m.eng.DB().Rows(rel)
		if err != nil {
			continue
		}
		for j, t := range rows {
			if j%migBatchRows == 0 {
				_ = r.migStep(nil)
			}
			if st.ring.OwnerOf(t[pos]) == i {
				continue
			}
			mu := &r.wmu[stripeOf(rel, t)]
			mu.Lock()
			_, _ = m.eng.Delete(rel, t)
			mu.Unlock()
		}
	}
}

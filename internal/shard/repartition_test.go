package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// TestRepartitionChaosDifferential drives all three placement moves —
// rekey (ontime origin → dest), promote (delaycause fid → broadcast)
// and demote (back to fid) — under concurrent writers on both moving
// relations, with oracle checks before, during and after each move.
// The probe set covers every routing strategy including the residue
// shapes, so the moves are exercised under the readers they can hurt.
func TestRepartitionChaosDifferential(t *testing.T) {
	w := newChaosWorld(t, 3)
	router := w.router

	tokens := make(chan struct{}, 1)
	router.hookMigBatch = func() {
		select {
		case tokens <- struct{}{}:
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// One writer per moving relation, each on a fresh disjoint range so
	// router/oracle pairs cannot interleave into divergent states.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := int64(0); !stop.Load(); n++ {
			fresh := value.Tuple{value.NewInt(810000 + n%64), value.NewInt(n % 97), value.NewInt(12),
				value.NewInt(7), value.NewInt(1), value.NewInt(30)}
			if err := w.applyBoth(false, "ontime", fresh); err != nil {
				errCh <- fmt.Errorf("ontime writer: %w", err)
				return
			}
			if err := w.applyBoth(true, "ontime", fresh); err != nil {
				errCh <- fmt.Errorf("ontime writer: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := int64(0); !stop.Load(); n++ {
			fresh := value.Tuple{value.NewInt(730000 + n%64), value.NewInt(3), value.NewInt(9)}
			if err := w.applyBoth(false, "delaycause", fresh); err != nil {
				errCh <- fmt.Errorf("delaycause writer: %w", err)
				return
			}
			if err := w.applyBoth(true, "delaycause", fresh); err != nil {
				errCh <- fmt.Errorf("delaycause writer: %w", err)
				return
			}
		}
	}()

	// move runs one Repartition while the main goroutine interleaves
	// mid-move checks every time a migration batch completes.
	move := func(rel, key, label string) *RepartitionReport {
		done := make(chan struct{})
		var rep *RepartitionReport
		var err error
		go func() {
			rep, err = router.Repartition(context.Background(), rel, key)
			close(done)
		}()
		mid := 0
		for {
			select {
			case <-done:
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if mid == 0 {
					t.Logf("%s: no mid-move checks ran (fast move)", label)
				}
				return rep
			case <-tokens:
				if router.rp.Load() != nil {
					w.check("during " + label)
					mid++
				}
			}
		}
	}

	w.check("before rekey")
	v0 := router.Version()
	rep := move("ontime", "dest", "rekey ontime origin→dest")
	if rep.From != "origin" || rep.To != "dest" || rep.Moved == 0 {
		t.Errorf("rekey report %+v, want origin→dest with rows moved", rep)
	}
	w.check("after rekey")
	assertPlacement(t, "after rekey", router)

	rep = move("delaycause", "", "promote delaycause")
	if rep.From != "fid" || rep.To != "broadcast" || rep.Moved == 0 {
		t.Errorf("promote report %+v, want fid→broadcast with rows moved", rep)
	}
	w.check("after promote")
	assertPlacement(t, "after promote", router)

	rep = move("delaycause", "fid", "demote delaycause")
	if rep.From != "broadcast" || rep.To != "fid" {
		t.Errorf("demote report %+v, want broadcast→fid", rep)
	}
	if rep.Moved != 0 {
		t.Errorf("demote moved %d rows; a demote must copy nothing", rep.Moved)
	}
	w.check("after demote")
	assertPlacement(t, "after demote", router)

	// Placement moves, like tuple movement, must never bump Version.
	if v1 := router.Version(); v1 != v0 {
		t.Errorf("repartitions bumped Version %d → %d", v0, v1)
	}
	if got := router.ResidueStats().Repartitions; got != 3 {
		t.Errorf("ResidueStats.Repartitions = %d, want 3", got)
	}

	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestRepartitionAbort cancels a rekey mid-copy and proves the rollback:
// the placement assignment and its generation are untouched, the copies
// already streamed are swept back out, and answers still match the
// oracle.
func TestRepartitionAbort(t *testing.T) {
	eng, router, _ := buildPair(t, "AIRCA", 3)
	gen0 := router.part.Load().gen

	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	router.hookMigBatch = func() {
		calls++
		if calls == 3 {
			cancel()
		}
	}
	if _, err := router.Repartition(ctx, "ontime", "dest"); err == nil {
		t.Fatal("cancelled repartition reported success")
	}
	router.hookMigBatch = nil

	ps := router.part.Load()
	if ps.gen != gen0 || ps.keys["ontime"] != "origin" {
		t.Fatalf("abort left placement gen=%d key=%q, want gen=%d key=origin",
			ps.gen, ps.keys["ontime"], gen0)
	}
	if router.rp.Load() != nil {
		t.Fatal("abort left the repartition published")
	}
	assertPlacement(t, "after abort", router)

	for _, src := range []string{
		`q(airline) :- ontime(f, 42, d, airline, m, delay)`,
		`q(origin, dest) :- ontime(f, origin, dest, 3, m, delay)`,
		`q(origin, cause) :- ontime(f, origin, dest, al, m, delay), delaycause(f, cause, mins)`,
	} {
		q, err := router.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.Execute(q, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := router.Execute(q, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Errorf("%s after abort: %d rows sharded vs %d oracle", src, got.Len(), want.Len())
		}
	}
}

// TestRepartitionValidation pins the argument checks and the no-op path.
func TestRepartitionValidation(t *testing.T) {
	_, router, _ := buildPair(t, "AIRCA", 2)
	ctx := context.Background()
	if _, err := router.Repartition(ctx, "nosuch", "x"); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := router.Repartition(ctx, "ontime", "altitude"); err == nil {
		t.Error("unknown attribute accepted")
	}
	rep, err := router.Repartition(ctx, "ontime", "origin")
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != "origin" || rep.To != "origin" || rep.Moved != 0 {
		t.Errorf("no-op repartition report %+v", rep)
	}
}

// TestAutoDemoteOnGrowth proves the broadcast threshold: a broadcast
// relation written past Spec.BroadcastMaxRows is demoted to partitioned
// by the background Repartition, and answers keep matching the oracle
// throughout and after.
func TestAutoDemoteOnGrowth(t *testing.T) {
	d, err := workload.ByName("AIRCA")
	if err != nil {
		t.Fatal(err)
	}
	db, err := d.Gen(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Shards: 3, Keys: d.ShardKeys, BroadcastMaxRows: 32}
	router, err := New(d.Schema, d.Access, db, spec)
	if err != nil {
		t.Fatal(err)
	}
	odb, err := d.Gen(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.NewEngine(d.Schema, d.Access, odb)
	if err != nil {
		t.Fatal(err)
	}
	if _, bc := router.part.Load().keys["carrier"]; bc {
		t.Fatal("carrier not broadcast at boot")
	}

	// Push carrier well past the 32-row threshold on both sides.
	for i := 0; i < 64; i++ {
		tup := value.Tuple{value.NewInt(int64(9600 + i)), value.NewInt(int64(900 + i)), value.NewInt(2)}
		if _, err := router.Insert("carrier", tup); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.Insert("carrier", tup); err != nil {
			t.Fatal(err)
		}
	}

	// The demote runs on a background goroutine; wait for the flip.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if key, keyed := router.part.Load().keys["carrier"]; keyed {
			if key == "" {
				t.Fatalf("demoted carrier to an empty key")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("carrier not demoted after growing to %d rows (threshold %d)",
				router.sizes["carrier"].Load(), spec.BroadcastMaxRows)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Wait for the full move (sweep included) before placement checks.
	deadline = time.Now().Add(10 * time.Second)
	for router.rp.Load() != nil {
		if time.Now().After(deadline) {
			t.Fatal("demote migration still published after 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := router.ResidueStats().Repartitions; got != 1 {
		t.Errorf("ResidueStats.Repartitions = %d, want 1", got)
	}
	assertPlacement(t, "after auto-demote", router)

	for _, src := range []string{
		`q(cname) :- carrier(3, cname, country)`,
		`q(cname) :- carrier(9610, cname, country)`,
		`q(origin, cause) :- ontime(f, origin, dest, al, m, delay), delaycause(f, cause, mins)`,
	} {
		q, err := router.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.Execute(q, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := router.Execute(q, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Errorf("%s after auto-demote: %d rows sharded vs %d oracle", src, got.Len(), want.Len())
		}
	}
}

// Semi-join reduction and hash-shuffle join for the distributed residue
// executor (residue.go): evaluating a product whose two sides are
// partitioned off their keys, without co-locating the data first.
//
// Both branches are evaluated distributed (each shard computes its
// fragment, the router unions), then joined on their linked equality
// classes in three steps:
//
//  1. link discovery — an equality class containing an attribute of each
//     branch scope is a join link; residue.go's package comment proves
//     filtering on links early is exact.
//  2. semi-join reduction — the smaller role: the left branch's link-key
//     set is built once, and right rows whose key has no left partner are
//     dropped before any row is handed to the shuffle, bounding the
//     shuffled volume by the join's selectivity.
//  3. shuffle — surviving rows of both sides are bucketed by link-key
//     hash, one bucket per member, and the per-bucket hash joins run
//     concurrently on the member worker pools (pool.go). Equal keys land
//     in equal buckets, so the bucket joins partition the true join;
//     bucket outputs are disjoint in their link columns and merge by set
//     union.
//
// Everything runs in one process, so "shipping" a row to a bucket is an
// assignment, not a network hop; BytesShipped in ResidueStats accounts
// the encoded row volume the buckets received, which is what the shuffle
// would put on the wire in a multi-node deployment.
//
// A product with no link (a true cross product surviving normalization)
// is joined router-side by nested loops — there is no key to shuffle on.
package shard

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/value"
)

// joinProduct evaluates a non-co-located product: both branches
// distributed, then semi-join reduction and a hash shuffle on the linked
// equality classes.
func (re *residueEval) joinProduct(t *ra.Product) (*exec.Table, []ra.Attr, error) {
	l, la, err := re.eval(t.L)
	if err != nil {
		return nil, nil, err
	}
	rt, ra2, err := re.eval(t.R)
	if err != nil {
		return nil, nil, err
	}
	outCols := append(append([]string{}, l.Cols...), rt.Cols...)
	outAttrs := append(append([]ra.Attr{}, la...), ra2...)

	// Link discovery: one (left position, right position) pair per
	// equality class that spans both scopes.
	type link struct{ li, ri int }
	var links []link
	seen := map[ra.Attr]bool{}
	for i, a := range la {
		root := re.cl.find(a)
		if seen[root] {
			continue
		}
		for j, b := range ra2 {
			if re.cl.find(b) == root {
				links = append(links, link{li: i, ri: j})
				seen[root] = true
				break
			}
		}
	}

	if len(links) == 0 {
		// No join key: a residual cross product, joined by nested loops
		// router-side.
		out := exec.NewTable(outCols)
		for _, a := range l.Tuples() {
			for _, b := range rt.Tuples() {
				out.Add(concatRows(a, b))
			}
		}
		return out, outAttrs, nil
	}

	lpos := make([]int, len(links))
	rpos := make([]int, len(links))
	for i, lk := range links {
		lpos[i] = lk.li
		rpos[i] = lk.ri
	}
	keyOf := func(row value.Tuple, pos []int) string {
		k := make(value.Tuple, len(pos))
		for i, p := range pos {
			k[i] = row[p]
		}
		return k.Key()
	}

	// Semi-join reduction: right rows without a left partner never reach
	// the shuffle.
	re.r.resSemiJoins.Add(1)
	lkeys := make(map[string]bool, l.Len())
	for _, row := range l.Tuples() {
		lkeys[keyOf(row, lpos)] = true
	}

	// Shuffle: bucket both sides by link-key hash, one bucket per member.
	re.r.resShuffles.Add(1)
	nb := len(re.st.members)
	lbuckets := make([][]value.Tuple, nb)
	rbuckets := make([][]value.Tuple, nb)
	lkeyed := make([][]string, nb)
	rkeyed := make([][]string, nb)
	var shipped int64
	for _, row := range l.Tuples() {
		k := keyOf(row, lpos)
		b := int(hashKey(k) % uint64(nb))
		lbuckets[b] = append(lbuckets[b], row)
		lkeyed[b] = append(lkeyed[b], k)
		shipped += int64(len(row.Key()))
	}
	for _, row := range rt.Tuples() {
		k := keyOf(row, rpos)
		if !lkeys[k] {
			continue
		}
		b := int(hashKey(k) % uint64(nb))
		rbuckets[b] = append(rbuckets[b], row)
		rkeyed[b] = append(rkeyed[b], k)
		shipped += int64(len(row.Key()))
	}
	re.r.resBytesShipped.Add(shipped)

	// Per-bucket hash joins on the member pools; outputs merge by set
	// union (disjoint across buckets: the link columns differ).
	results := make([]*exec.Table, nb)
	var wg sync.WaitGroup
	for b := range results {
		if len(lbuckets[b]) == 0 || len(rbuckets[b]) == 0 {
			continue
		}
		b := b
		wg.Add(1)
		re.st.members[b].pool.submit(func() {
			defer wg.Done()
			results[b] = bucketJoin(outCols, lbuckets[b], lkeyed[b], rbuckets[b], rkeyed[b])
		})
	}
	wg.Wait()
	out := exec.NewTable(outCols)
	for _, t := range results {
		if t == nil {
			continue
		}
		for _, row := range t.Tuples() {
			out.Add(row)
		}
	}
	return out, outAttrs, nil
}

// bucketJoin hash-joins one bucket: right rows are grouped by link key,
// left rows probe, and matching pairs concatenate in (left, right) column
// order.
func bucketJoin(cols []string, lrows []value.Tuple, lkeys []string, rrows []value.Tuple, rkeys []string) *exec.Table {
	byKey := make(map[string][]value.Tuple, len(rrows))
	for i, row := range rrows {
		byKey[rkeys[i]] = append(byKey[rkeys[i]], row)
	}
	out := exec.NewTable(cols)
	for i, a := range lrows {
		for _, b := range byKey[lkeys[i]] {
			out.Add(concatRows(a, b))
		}
	}
	return out
}

// concatRows appends two rows into a fresh tuple.
func concatRows(a, b value.Tuple) value.Tuple {
	row := make(value.Tuple, 0, len(a)+len(b))
	row = append(row, a...)
	row = append(row, b...)
	return row
}

// Semi-join reduction and hash-shuffle join for the distributed residue
// executor (residue.go): evaluating a product whose two sides are
// partitioned off their keys, without co-locating the data first.
//
// Both branches are evaluated distributed (each shard computes its
// fragment, the router unions), then joined on their linked equality
// classes in three steps, all batched through exec.ShuffleJoin:
//
//  1. link discovery — an equality class containing an attribute of each
//     branch scope is a join link; residue.go's package comment proves
//     filtering on links early is exact.
//  2. semi-join reduction — the smaller role: the left branch's link-key
//     set is built once over its key columns, and right rows whose key has
//     no left partner are dropped before any row is handed to the shuffle,
//     bounding the shuffled volume by the join's selectivity.
//  3. shuffle — surviving rows of both sides are bucketed by link-key
//     hash, one bucket per member, and the per-bucket hash joins run
//     concurrently on the member worker pools (pool.go). Both sides are
//     brought into one handle space first, so equal keys land in equal
//     buckets; the bucket joins partition the true join, their outputs are
//     disjoint in their link columns and merge by set union.
//
// Everything runs in one process, so "shipping" a row to a bucket is an
// assignment, not a network hop; BytesShipped in ResidueStats accounts
// the encoded row volume the buckets received, which is what the shuffle
// would put on the wire in a multi-node deployment.
//
// A product with no link (a true cross product surviving normalization)
// is joined router-side by a columnar cross product — there is no key to
// shuffle on.
package shard

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/ra"
)

// joinProduct evaluates a non-co-located product: both branches
// distributed, then semi-join reduction and a hash shuffle on the linked
// equality classes.
func (re *residueEval) joinProduct(t *ra.Product) (*exec.Table, []ra.Attr, error) {
	l, la, err := re.eval(t.L)
	if err != nil {
		return nil, nil, err
	}
	rt, ra2, err := re.eval(t.R)
	if err != nil {
		return nil, nil, err
	}
	outAttrs := append(append([]ra.Attr{}, la...), ra2...)

	// Link discovery: one (left position, right position) pair per
	// equality class that spans both scopes.
	type link struct{ li, ri int }
	var links []link
	seen := map[ra.Attr]bool{}
	for i, a := range la {
		root := re.cl.find(a)
		if seen[root] {
			continue
		}
		for j, b := range ra2 {
			if re.cl.find(b) == root {
				links = append(links, link{li: i, ri: j})
				seen[root] = true
				break
			}
		}
	}

	if len(links) == 0 {
		// No join key: a residual cross product, joined router-side.
		return exec.CrossTables(l, rt), outAttrs, nil
	}

	lpos := make([]int, len(links))
	rpos := make([]int, len(links))
	for i, lk := range links {
		lpos[i] = lk.li
		rpos[i] = lk.ri
	}

	// Semi-join reduction and shuffle, batched: right rows without a left
	// partner never reach a bucket.
	re.r.resSemiJoins.Add(1)
	re.r.resShuffles.Add(1)
	sj := exec.NewShuffleJoin(l, rt, lpos, rpos, len(re.st.members))
	re.r.resBytesShipped.Add(sj.BytesShipped())

	// Per-bucket hash joins on the member pools; outputs merge by set
	// union (disjoint across buckets: the link columns differ).
	results := make([]*exec.Table, sj.Buckets())
	var wg sync.WaitGroup
	for b := range results {
		b := b
		wg.Add(1)
		re.st.members[b].pool.submit(func() {
			defer wg.Done()
			results[b] = sj.JoinBucket(b)
		})
	}
	wg.Wait()
	outCols := append(append([]string{}, l.Cols...), rt.Cols...)
	return exec.UnionTables(outCols, results...), outAttrs, nil
}

package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("Put did not refresh the value")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Single shard so LRU order is global and deterministic.
	c := New(3, 1)
	c.Put("a", 0)
	c.Put("b", 0)
	c.Put("c", 0)
	// Touch a so b is now least recently used.
	c.Get("a")
	c.Put("d", 0)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(64, 8)
	for i := 0; i < 10_000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("cache grew to %d entries, capacity 64", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
}

func TestPurge(t *testing.T) {
	c := New(16, 4)
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("entries survived Purge")
	}
	if st := c.Stats(); st.Purges == 0 {
		t.Fatal("purge counter not incremented")
	}
	if _, ok := c.Get("k3"); ok {
		t.Fatal("purged key still served")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("zero stats should have 0 hit rate")
	}
	s = Stats{Hits: 9, Misses: 1}
	if r := s.HitRate(); r != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", r)
	}
}

// TestConcurrentSameKey pins the Get/Put race on a single hot key: Put's
// same-key refresh rewrites the entry value under the shard lock, so Get
// must copy the value inside the critical section (caught by -race).
func TestConcurrentSameKey(t *testing.T) {
	c := New(8, 1)
	c.Put("hot", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if g%2 == 0 {
					c.Put("hot", i)
				} else if v, ok := c.Get("hot"); !ok || v == nil {
					t.Error("hot key vanished")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrent hammers all operations from many goroutines; run with
// -race in CI.
func TestConcurrent(t *testing.T) {
	c := New(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%300)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
				if i%500 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 128 {
		t.Fatalf("capacity exceeded: %d", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

// TestCountersExactUnderConcurrentEviction is the regression test for the
// torn-counter drift: hits and misses used to be bumped after the shard
// lock dropped, so a concurrent Stats (or a racing Get on the same shard)
// could observe the promotion without the count. The invariant is exact:
// after any concurrent mix of Gets under eviction pressure, Hits + Misses
// equals the number of Get calls issued — no lookup lost, none double
// counted. Run with -race in CI.
func TestCountersExactUnderConcurrentEviction(t *testing.T) {
	const (
		goroutines = 8
		getsPer    = 3000
		keys       = 64
	)
	// Capacity far below the key population: every Put round evicts, so
	// Gets constantly flip between hit and miss on the same shard.
	c := New(8, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners keep eviction pressure on without issuing Gets.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Put(fmt.Sprintf("k%d", (g*31+i)%keys), i)
				i++
			}
		}(g)
	}
	// Snapshotters race Stats against the counter updates.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Stats()
				if st.Hits < 0 || st.Misses < 0 {
					t.Error("negative counter snapshot")
					return
				}
			}
		}()
	}
	var getters sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		getters.Add(1)
		go func(g int) {
			defer getters.Done()
			for i := 0; i < getsPer; i++ {
				c.Get(fmt.Sprintf("k%d", (g*13+i)%keys))
			}
		}(g)
	}
	getters.Wait()
	close(stop)
	wg.Wait()
	st := c.Stats()
	if got, want := st.Hits+st.Misses, int64(goroutines*getsPer); got != want {
		t.Fatalf("hits (%d) + misses (%d) = %d, want exactly %d Gets", st.Hits, st.Misses, got, want)
	}
}

// TestGetTouchHitCounts pins the per-entry repeat counter GetTouch feeds
// the materialization admission: it grows by exactly one per lookup,
// survives Put refreshes, and resets when the entry is reborn after
// eviction or purge.
func TestGetTouchHitCounts(t *testing.T) {
	c := New(8, 1)
	c.Put("k", 1)
	for want := int64(1); want <= 5; want++ {
		if _, n, ok := c.GetTouch("k"); !ok || n != want {
			t.Fatalf("lookup %d: n = %d ok = %v", want, n, ok)
		}
	}
	c.Put("k", 2) // refresh: value changes, count survives
	if v, n, ok := c.GetTouch("k"); !ok || n != 6 || v.(int) != 2 {
		t.Fatalf("after refresh: v = %v n = %d ok = %v", v, n, ok)
	}
	if _, n, ok := c.GetTouch("absent"); ok || n != 0 {
		t.Fatalf("miss returned n = %d ok = %v", n, ok)
	}
	c.Purge()
	c.Put("k", 3)
	if _, n, _ := c.GetTouch("k"); n != 1 {
		t.Fatalf("count survived rebirth: n = %d", n)
	}
}

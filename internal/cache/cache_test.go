package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("Put did not refresh the value")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Single shard so LRU order is global and deterministic.
	c := New(3, 1)
	c.Put("a", 0)
	c.Put("b", 0)
	c.Put("c", 0)
	// Touch a so b is now least recently used.
	c.Get("a")
	c.Put("d", 0)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(64, 8)
	for i := 0; i < 10_000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("cache grew to %d entries, capacity 64", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
}

func TestPurge(t *testing.T) {
	c := New(16, 4)
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("entries survived Purge")
	}
	if st := c.Stats(); st.Purges == 0 {
		t.Fatal("purge counter not incremented")
	}
	if _, ok := c.Get("k3"); ok {
		t.Fatal("purged key still served")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("zero stats should have 0 hit rate")
	}
	s = Stats{Hits: 9, Misses: 1}
	if r := s.HitRate(); r != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", r)
	}
}

// TestConcurrentSameKey pins the Get/Put race on a single hot key: Put's
// same-key refresh rewrites the entry value under the shard lock, so Get
// must copy the value inside the critical section (caught by -race).
func TestConcurrentSameKey(t *testing.T) {
	c := New(8, 1)
	c.Put("hot", 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if g%2 == 0 {
					c.Put("hot", i)
				} else if v, ok := c.Get("hot"); !ok || v == nil {
					t.Error("hot key vanished")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrent hammers all operations from many goroutines; run with
// -race in CI.
func TestConcurrent(t *testing.T) {
	c := New(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%300)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
				if i%500 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 128 {
		t.Fatalf("capacity exceeded: %d", n)
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

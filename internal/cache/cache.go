// Package cache provides a sharded, size-bounded LRU cache used as the
// engine's plan cache: compiled query artifacts (coverage verdict, covered
// rewrite, minimized access schema, bounded plan) are stored under a
// canonical fingerprint of the query so repeated Execute calls skip the
// PTIME analysis pipeline and go straight to plan execution.
//
// The cache is safe for concurrent use. Keys are strings (fingerprints);
// values are opaque. Each shard holds its own mutex, hash map and intrusive
// LRU list, so concurrent readers on different shards never contend.
// Eviction is per-shard LRU with a global capacity divided evenly across
// shards.
package cache

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64 // Get found a live entry
	Misses    int64 // Get found nothing
	Evictions int64 // entries displaced by capacity pressure
	Purges    int64 // entries dropped by Purge (invalidation)
	Entries   int   // live entries right now
}

// HitRate returns Hits / (Hits + Misses), or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded LRU cache with a fixed total capacity.
type Cache struct {
	shards []shard
	mask   uint64
	seed   maphash.Seed

	hits, misses, evictions, purges atomic.Int64
}

type shard struct {
	mu  sync.Mutex
	m   map[string]*entry
	cap int
	// Intrusive doubly-linked LRU list; head.next is most recent,
	// head.prev least recent.
	head entry
}

type entry struct {
	key        string
	val        any
	hits       int64 // lifetime Get count, read/written under the shard lock
	prev, next *entry
}

// New creates a cache holding at most capacity entries spread over the
// given number of shards. The shard count is rounded up to a power of two;
// capacity below the shard count is raised so every shard holds at least
// one entry. New(0, n) or New(n, 0) panic.
func New(capacity, shards int) *Cache {
	if capacity <= 0 || shards <= 0 {
		panic("cache: capacity and shards must be positive")
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1), seed: maphash.MakeSeed()}
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[string]*entry)
		s.cap = perShard
		s.head.next = &s.head
		s.head.prev = &s.head
	}
	return c
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)&c.mask]
}

// Get returns the value cached under key and whether it was present,
// promoting the entry to most recently used.
func (c *Cache) Get(key string) (any, bool) {
	v, _, ok := c.GetTouch(key)
	return v, ok
}

// GetTouch is Get plus the entry's lifetime hit count after this lookup
// (0 on a miss). The count is the repeat-frequency signal the engine's
// materialization admission weighs against execution cost; it survives
// promotions and value refreshes and dies with the entry on eviction or
// purge.
func (c *Cache) GetTouch(key string) (any, int64, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.m[key]
	var (
		val any
		n   int64
	)
	if ok {
		// Copy the value inside the critical section: a concurrent Put on
		// the same key rewrites e.val under the lock, and reading it after
		// unlock would race. The global counters are bumped here too, so a
		// quiescent Stats read agrees exactly with the lookups performed —
		// updating them after unlock let a concurrent snapshot observe the
		// promotion without the hit.
		val = e.val
		e.hits++
		n = e.hits
		s.unlink(e)
		s.pushFront(e)
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	return val, n, true
}

// Put stores val under key, evicting the least recently used entry of the
// key's shard when the shard is full. Storing an existing key refreshes its
// value and recency.
func (c *Cache) Put(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.val = val
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.head.prev
		s.unlink(lru)
		delete(s.m, lru.key)
		c.evictions.Add(1)
	}
	e := &entry{key: key, val: val}
	s.m[key] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Purge drops every entry, counting them as purges (not evictions). It is
// the invalidation hammer for events that outdate all plans at once.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		c.purges.Add(int64(len(s.m)))
		s.m = make(map[string]*entry)
		s.head.next = &s.head
		s.head.prev = &s.head
		s.mu.Unlock()
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Purges:    c.purges.Load(),
		Entries:   c.Len(),
	}
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard) pushFront(e *entry) {
	e.next = s.head.next
	e.prev = &s.head
	s.head.next.prev = e
	s.head.next = e
}

package parser

import (
	"testing"

	"repro/internal/ra"
)

// FuzzParse asserts that the parser never panics on arbitrary input, and
// that for every accepted query parse → Format → parse is stable: the
// printed form re-parses to a fingerprint-equal query and re-prints to the
// same text. Parser output is always inside the printable fragment, so a
// Format error on an accepted query is a bug.
func FuzzParse(f *testing.F) {
	for _, src := range roundTripSrcs {
		f.Add(src)
	}
	// Template queries from the benchmark workloads, plus malformed input.
	for _, src := range []string{
		`q(airline) :- ontime(f, 42, d, airline, m, delay)`, // wrong schema: must error, not panic
		`q(cid) :- friend(0,f), dine(f,cid,5,2015), cafe(cid,'nyc')`,
		`(q(x) :- call(cid, 42, x, 7, dur)) EXCEPT (q(x) :- call(cid2, 42, x, 7, dur2), sms(mid, 42, x, 7))`,
		`q(`, `q() :- `, `q(x) :-`, `q(x) :- r(x`, `q(x) :- r(x,)`,
		`q(x) :- r(x, 'unterminated`, `q(x) :- r(x, y))`, `)) UNION`,
		`q(x) :- r(x, y), `, `q(x) :- unknown(x)`, `q(x,) :- r(x, y)`,
		"q(x) :- r(x, y)\x00", `q(☃) :- r(☃, y)`,
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, fmtSchema)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out, err := Format(q, fmtSchema)
		if err != nil {
			t.Fatalf("parser output not formattable: %v\nsrc: %q", err, src)
		}
		q2, err := Parse(out, fmtSchema)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\nsrc: %q\nout: %q", err, src, out)
		}
		fp1, err := ra.Fingerprint(q, fmtSchema)
		if err != nil {
			t.Fatalf("fingerprint of parsed query: %v", err)
		}
		fp2, err := ra.Fingerprint(q2, fmtSchema)
		if err != nil {
			t.Fatalf("fingerprint of re-parsed query: %v", err)
		}
		if fp1 != fp2 {
			t.Fatalf("round trip changed the query:\nsrc: %q\nout: %q", src, out)
		}
		out2, err := Format(q2, fmtSchema)
		if err != nil || out != out2 {
			t.Fatalf("printing is not stable: %v\n1: %q\n2: %q", err, out, out2)
		}
	})
}

// Package parser implements a compact textual language for RA queries used
// by the command-line tools and tests: conjunctive rules in a Datalog-like
// syntax combined with UNION and EXCEPT.
//
//	q(cid) :- friend(0, f), dine(f, cid, 5, 2015), cafe(cid, 'nyc')
//
// Variables are bare identifiers (shared variables express equi-joins),
// constants are integer literals or quoted strings, and `_` is an anonymous
// variable. Rules may be parenthesized and combined:
//
//	(q(c) :- r(c,1)) UNION (q(c) :- s(c,2)) EXCEPT (q(c) :- t(c))
//
// EXCEPT and UNION associate left with equal precedence, as in SQL's
// left-to-right evaluation of set operators at the same level.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/value"
)

// Parse parses src into an RA query over schema s. The result is
// normalized (all relation occurrences distinct).
func Parse(src string, s ra.Schema) (ra.Query, error) {
	p := &parser{lex: newLexer(src), schema: s}
	q, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.lex.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after query", p.lex.peek().text)
	}
	return ra.Normalize(q, s)
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokRule // :-
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	cur  token
	init bool
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peek() token {
	if !l.init {
		l.cur = l.scan()
		l.init = true
	}
	return l.cur
}

func (l *lexer) next() token {
	t := l.peek()
	l.init = false
	return t
}

func (l *lexer) scan() token {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}
	case c == ':' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
		l.pos += 2
		return token{tokRule, ":-", start}
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{tokString, l.src[start:], start} // unterminated; caller errors
		}
		l.pos++
		return token{tokString, l.src[start:l.pos], start}
	case c == '-' || (c >= '0' && c <= '9'):
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], start}
	default:
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			l.pos++
		}
		if l.pos == start {
			l.pos++ // skip unknown byte; reported by parser
			return token{tokIdent, l.src[start:l.pos], start}
		}
		return token{tokIdent, l.src[start:l.pos], start}
	}
}

type parser struct {
	lex    *lexer
	schema ra.Schema
	occSeq int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: %s (at offset %d)", fmt.Sprintf(format, args...), p.lex.peek().pos)
}

// parseExpr := term ((UNION|EXCEPT) term)*
func (p *parser) parseExpr() (ra.Query, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.peek()
		if t.kind != tokIdent {
			return left, nil
		}
		switch strings.ToUpper(t.text) {
		case "UNION":
			p.lex.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = ra.U(left, right)
		case "EXCEPT":
			p.lex.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = ra.D(left, right)
		default:
			return left, nil
		}
	}
}

// parseTerm := '(' expr ')' | rule
func (p *parser) parseTerm() (ra.Query, error) {
	if p.lex.peek().kind == tokLParen {
		// Could be a parenthesized expression; rules always start with an
		// identifier, so a '(' here must open an expression.
		p.lex.next()
		q, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if t := p.lex.next(); t.kind != tokRParen {
			return nil, p.errf("expected ')', got %q", t.text)
		}
		return q, nil
	}
	return p.parseRule()
}

// parseRule := ident '(' vars ')' ':-' atom (',' atom)*
func (p *parser) parseRule() (ra.Query, error) {
	head := p.lex.next()
	if head.kind != tokIdent {
		return nil, p.errf("expected rule head, got %q", head.text)
	}
	headVars, err := p.parseNameList()
	if err != nil {
		return nil, err
	}
	if t := p.lex.next(); t.kind != tokRule {
		return nil, p.errf("expected ':-', got %q", t.text)
	}

	var preds []ra.Pred
	firstOcc := map[string]ra.Attr{} // variable -> first attribute binding
	atoms := 0
	var rels []ra.Query
	for {
		relTok := p.lex.next()
		if relTok.kind != tokIdent {
			return nil, p.errf("expected relation atom, got %q", relTok.text)
		}
		base := relTok.text
		attrs, err := p.schema.Attrs(base)
		if err != nil {
			return nil, p.errf("unknown relation %q", base)
		}
		p.occSeq++
		occ := fmt.Sprintf("%s_o%d", base, p.occSeq)
		rels = append(rels, ra.R(base, occ))
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		if len(args) != len(attrs) {
			return nil, p.errf("relation %s has %d attributes, got %d arguments", base, len(attrs), len(args))
		}
		for i, a := range args {
			attr := ra.A(occ, attrs[i])
			switch a.kind {
			case argConst:
				preds = append(preds, ra.EqC(attr, a.val))
			case argVar:
				if a.name == "_" {
					continue
				}
				if prev, ok := firstOcc[a.name]; ok {
					preds = append(preds, ra.Eq(prev, attr))
				} else {
					firstOcc[a.name] = attr
				}
			}
		}
		atoms++
		if p.lex.peek().kind != tokComma {
			break
		}
		p.lex.next()
	}
	if atoms == 0 {
		return nil, p.errf("rule body is empty")
	}

	out := make([]ra.Attr, len(headVars))
	for i, v := range headVars {
		attr, ok := firstOcc[v]
		if !ok {
			return nil, p.errf("head variable %q does not occur in the body", v)
		}
		out[i] = attr
	}
	return ra.Proj(ra.Sel(ra.Prod(rels...), preds...), out...), nil
}

func (p *parser) parseNameList() ([]string, error) {
	if t := p.lex.next(); t.kind != tokLParen {
		return nil, p.errf("expected '(', got %q", t.text)
	}
	var names []string
	for {
		t := p.lex.next()
		if t.kind != tokIdent {
			return nil, p.errf("expected variable name, got %q", t.text)
		}
		names = append(names, t.text)
		sep := p.lex.next()
		if sep.kind == tokRParen {
			return names, nil
		}
		if sep.kind != tokComma {
			return nil, p.errf("expected ',' or ')', got %q", sep.text)
		}
	}
}

type argKind int

const (
	argVar argKind = iota
	argConst
)

type arg struct {
	kind argKind
	name string
	val  value.Value
}

func (p *parser) parseArgList() ([]arg, error) {
	if t := p.lex.next(); t.kind != tokLParen {
		return nil, p.errf("expected '(', got %q", t.text)
	}
	var args []arg
	for {
		t := p.lex.next()
		var a arg
		switch t.kind {
		case tokIdent:
			a = arg{kind: argVar, name: t.text}
		case tokNumber:
			a = arg{kind: argConst, val: value.Parse(t.text)}
		case tokString:
			if len(t.text) < 2 || t.text[len(t.text)-1] != t.text[0] {
				return nil, p.errf("unterminated string literal %q", t.text)
			}
			a = arg{kind: argConst, val: value.NewStr(t.text[1 : len(t.text)-1])}
		default:
			return nil, p.errf("expected argument, got %q", t.text)
		}
		args = append(args, a)
		sep := p.lex.next()
		if sep.kind == tokRParen {
			return args, nil
		}
		if sep.kind != tokComma {
			return nil, p.errf("expected ',' or ')', got %q", sep.text)
		}
	}
}

// ParseConstraints parses an access schema: one constraint per line in the
// R(X -> Y, N) syntax; blank lines and lines starting with '#' are skipped.
func ParseConstraints(src string, s ra.Schema) (*access.Schema, error) {
	var cs []access.Constraint
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := access.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("parser: line %d: %w", i+1, err)
		}
		if err := c.Validate(s); err != nil {
			return nil, fmt.Errorf("parser: line %d: %w", i+1, err)
		}
		cs = append(cs, c)
	}
	return access.NewSchema(cs...), nil
}

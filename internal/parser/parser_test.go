package parser

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

func schema() ra.Schema { return workload.FacebookSchema() }

func TestParseSingleRule(t *testing.T) {
	q, err := Parse("q(cid) :- friend(0, f), dine(f, cid, 5, 2015), cafe(cid, 'nyc')", schema())
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := q.(*ra.Project)
	if !ok {
		t.Fatalf("top node %T, want projection", q)
	}
	if len(proj.Attrs) != 1 {
		t.Errorf("projection arity %d", len(proj.Attrs))
	}
	rels := ra.Relations(q)
	if len(rels) != 3 {
		t.Fatalf("%d relations", len(rels))
	}
	if err := ra.Validate(q, schema()); err != nil {
		t.Fatalf("parsed query invalid: %v", err)
	}
	// Count predicates: 4 constants + 2 join equalities.
	sel := proj.In.(*ra.Select)
	if len(sel.Preds) != 6 {
		t.Errorf("%d predicates, want 6: %v", len(sel.Preds), sel.Preds)
	}
}

func TestParseSharedVariableJoins(t *testing.T) {
	q, err := Parse("q(a, b) :- friend(a, b), friend(b, a)", schema())
	if err != nil {
		t.Fatal(err)
	}
	sel := q.(*ra.Project).In.(*ra.Select)
	if len(sel.Preds) != 2 {
		t.Errorf("self-join should give 2 equalities, got %v", sel.Preds)
	}
}

func TestParseAnonymousVariable(t *testing.T) {
	q, err := Parse("q(p) :- dine(p, _, _, 2015)", schema())
	if err != nil {
		t.Fatal(err)
	}
	sel := q.(*ra.Project).In.(*ra.Select)
	// Only the constant 2015 produces a predicate; _ binds nothing.
	if len(sel.Preds) != 1 {
		t.Errorf("%d predicates, want 1", len(sel.Preds))
	}
}

func TestParseStringsAndNegatives(t *testing.T) {
	q, err := Parse(`q(c) :- cafe(c, "nyc"), dine(-1, c, 5, 2015)`, schema())
	if err != nil {
		t.Fatal(err)
	}
	var sawNyc, sawNeg bool
	sel := q.(*ra.Project).In.(*ra.Select)
	for _, p := range sel.Preds {
		if ec, ok := p.(ra.EqConst); ok {
			if ec.C == value.NewStr("nyc") {
				sawNyc = true
			}
			if ec.C == value.NewInt(-1) {
				sawNeg = true
			}
		}
	}
	if !sawNyc || !sawNeg {
		t.Errorf("constants not parsed: nyc=%v neg=%v", sawNyc, sawNeg)
	}
}

func TestParseUnionExcept(t *testing.T) {
	src := `(q(c) :- cafe(c, 'nyc')) UNION (q(c) :- cafe(c, 'sf')) EXCEPT (q(c) :- dine(0, c, 5, 2015))`
	q, err := Parse(src, schema())
	if err != nil {
		t.Fatal(err)
	}
	// Left associativity: (A ∪ B) − C.
	d, ok := q.(*ra.Diff)
	if !ok {
		t.Fatalf("top node %T, want difference", q)
	}
	if _, ok := d.L.(*ra.Union); !ok {
		t.Errorf("left of EXCEPT should be the union, got %T", d.L)
	}
}

func TestParseNormalizesOccurrences(t *testing.T) {
	q, err := Parse("q(a) :- friend(a, b), friend(b, c), friend(c, a)", schema())
	if err != nil {
		t.Fatal(err)
	}
	rels := ra.Relations(q)
	seen := map[string]bool{}
	for _, r := range rels {
		if seen[r.Name] {
			t.Fatalf("duplicate occurrence %s", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // empty
		"q(c)",                              // no body
		"q(c) :- nosuch(c)",                 // unknown relation
		"q(c) :- friend(a)",                 // wrong arity
		"q(c) :- friend(a, b)",              // head var not in body
		"q(c) :- friend(a, b) trailing",     // junk after query
		"q(c) :- friend(a, b), cafe(c, 'x'", // unterminated
		"q(c) :- friend(a, b,, c)",          // bad arg
		"q c) :- friend(a, b)",              // missing paren
	}
	for _, src := range cases {
		if _, err := Parse(src, schema()); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseUnterminatedString(t *testing.T) {
	if _, err := Parse(`q(c) :- cafe(c, 'nyc)`, schema()); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParseConstraints(t *testing.T) {
	src := `
# A0 of Example 1
friend(pid -> fid, 5000)
dine((pid,year,month) -> cid, 31)

cafe(cid -> city, 1)
`
	A, err := ParseConstraints(src, schema())
	if err != nil {
		t.Fatal(err)
	}
	if A.Len() != 3 {
		t.Errorf("parsed %d constraints, want 3", A.Len())
	}
	if _, err := ParseConstraints("nosuch(a -> b, 1)", schema()); err == nil {
		t.Error("constraint on unknown relation accepted")
	}
	if _, err := ParseConstraints("friend(pid -> fid)", schema()); err == nil {
		t.Error("malformed constraint accepted")
	}
}

// TestParseRoundTripSemantics: the parsed Example 1 Q1 is covered and
// equivalent in structure to the handwritten version (same coverage
// outcome and same answer on data).
func TestParsedQ1MatchesHandwritten(t *testing.T) {
	fb, db, err := workload.GenFacebook(workload.DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse("q(cid) :- friend(0, f), dine(f, cid, 5, 2015), cafe(cid, 'nyc')", fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	handwritten, err := ra.Normalize(fb.Q1(), fb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := exec.RunBaseline(parsed, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := exec.RunBaseline(handwritten, fb.Schema, db)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("parsed and handwritten Q1 disagree:\n%s\nvs\n%s", a, b)
	}
}

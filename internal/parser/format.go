package parser

import (
	"fmt"
	"strings"

	"repro/internal/ra"
	"repro/internal/value"
)

// Format renders q back into the rule language, the inverse of Parse for
// queries in rule shape: SPC blocks π(σ(R1 × … × Rn)) combined with UNION
// and EXCEPT. The printed text re-parses to a query with the same
// canonical fingerprint (parse→print→parse is stable up to ra.Canonical).
//
// Queries outside the rule-language fragment — nested selections inside a
// product operand, projections of a bare set operation, equality classes
// bound to two different constants, or a projected class bound to a
// constant — return an error: the syntax cannot express them positionally.
func Format(q ra.Query, s ra.Schema) (string, error) {
	f := &formatter{schema: s}
	return f.expr(q)
}

type formatter struct {
	schema ra.Schema
	varSeq int
}

func (f *formatter) expr(q ra.Query) (string, error) {
	switch t := q.(type) {
	case *ra.Union:
		l, err := f.expr(t.L)
		if err != nil {
			return "", err
		}
		r, err := f.expr(t.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s) UNION (%s)", l, r), nil
	case *ra.Diff:
		l, err := f.expr(t.L)
		if err != nil {
			return "", err
		}
		r, err := f.expr(t.R)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s) EXCEPT (%s)", l, r), nil
	default:
		return f.rule(q)
	}
}

// rule renders one SPC block as a conjunctive rule.
func (f *formatter) rule(q ra.Query) (string, error) {
	proj, ok := q.(*ra.Project)
	if !ok {
		return "", fmt.Errorf("parser: query block %T is not a projection; not in rule shape", q)
	}
	body := proj.In
	var preds []ra.Pred
	for {
		sel, ok := body.(*ra.Select)
		if !ok {
			break
		}
		preds = append(preds, sel.Preds...)
		body = sel.In
	}
	atoms, err := productAtoms(body)
	if err != nil {
		return "", err
	}

	// Union-find the equality classes of the conjunction.
	parent := map[ra.Attr]ra.Attr{}
	var find func(a ra.Attr) ra.Attr
	find = func(a ra.Attr) ra.Attr {
		p, ok := parent[a]
		if !ok {
			parent[a] = a
			return a
		}
		if p == a {
			return a
		}
		r := find(p)
		parent[a] = r
		return r
	}
	union := func(a, b ra.Attr) {
		ra_, rb := find(a), find(b)
		if ra_ != rb {
			parent[rb] = ra_
		}
	}
	consts := map[ra.Attr][]value.Value{}
	for _, p := range preds {
		switch t := p.(type) {
		case ra.EqAttr:
			union(t.L, t.R)
		case ra.EqConst:
			find(t.A)
			consts[t.A] = append(consts[t.A], t.C)
		}
	}
	classConst := map[ra.Attr][]value.Value{} // root -> distinct constants
	for a, cs := range consts {
		r := find(a)
		for _, c := range cs {
			dup := false
			for _, old := range classConst[r] {
				if old == c {
					dup = true
					break
				}
			}
			if !dup {
				classConst[r] = append(classConst[r], c)
			}
		}
	}
	classSize := map[ra.Attr]int{} // root -> member count
	for a := range parent {
		classSize[find(a)]++
	}

	// Head classes need variables.
	headClass := map[ra.Attr]bool{}
	for _, a := range proj.Attrs {
		headClass[find(a)] = true
	}

	// Assign variable names per class, in body scan order, to classes that
	// need one: joined (≥ 2 members) or projected.
	varOf := map[ra.Attr]string{}
	for _, atom := range atoms {
		attrs, err := f.schema.Attrs(atom.Base)
		if err != nil {
			return "", err
		}
		for _, name := range attrs {
			a := ra.Attr{Rel: atom.Name, Name: name}
			root := find(a)
			if varOf[root] != "" {
				continue
			}
			if headClass[root] || classSize[root] > 1 {
				f.varSeq++
				varOf[root] = fmt.Sprintf("v%d", f.varSeq)
			}
		}
	}

	// Render atoms.
	var sb strings.Builder
	var headVars []string
	for _, a := range proj.Attrs {
		root := find(a)
		if len(classConst[root]) > 0 {
			return "", fmt.Errorf("parser: projected attribute %s is bound to a constant; not expressible as a rule head", a)
		}
		headVars = append(headVars, varOf[root])
	}
	sb.WriteString("q(")
	sb.WriteString(strings.Join(headVars, ", "))
	sb.WriteString(") :- ")
	for i, atom := range atoms {
		if i > 0 {
			sb.WriteString(", ")
		}
		attrs, _ := f.schema.Attrs(atom.Base)
		args := make([]string, len(attrs))
		for j, name := range attrs {
			a := ra.Attr{Rel: atom.Name, Name: name}
			root := find(a)
			cs := classConst[root]
			switch {
			case len(cs) > 1:
				return "", fmt.Errorf("parser: attribute %s equated to %d different constants; rule syntax holds one per position", a, len(cs))
			case len(cs) == 1:
				if headClass[root] {
					return "", fmt.Errorf("parser: projected class of %s carries a constant; not expressible", a)
				}
				lit, err := formatConst(cs[0])
				if err != nil {
					return "", err
				}
				args[j] = lit
			case varOf[root] != "":
				args[j] = varOf[root]
			default:
				args[j] = "_"
			}
		}
		sb.WriteString(atom.Base)
		sb.WriteString("(")
		sb.WriteString(strings.Join(args, ", "))
		sb.WriteString(")")
	}
	return sb.String(), nil
}

// productAtoms flattens a product tree whose leaves must all be relation
// occurrences.
func productAtoms(q ra.Query) ([]*ra.Relation, error) {
	switch t := q.(type) {
	case *ra.Relation:
		return []*ra.Relation{t}, nil
	case *ra.Product:
		l, err := productAtoms(t.L)
		if err != nil {
			return nil, err
		}
		r, err := productAtoms(t.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	default:
		return nil, fmt.Errorf("parser: %T inside a rule body product; not in rule shape", q)
	}
}

// formatConst renders a constant as a literal token. Strings pick whichever
// quote they do not contain (the lexer has no escapes); integer-looking or
// identifier-looking strings stay quoted so they re-parse as strings.
func formatConst(v value.Value) (string, error) {
	switch v.K {
	case value.Int:
		return v.String(), nil
	case value.Str:
		if !strings.Contains(v.S, "'") {
			return "'" + v.S + "'", nil
		}
		if !strings.Contains(v.S, `"`) {
			return `"` + v.S + `"`, nil
		}
		return "", fmt.Errorf("parser: string constant %q contains both quote kinds; not expressible", v.S)
	default:
		return "", fmt.Errorf("parser: cannot format %v constant", v.K)
	}
}

package parser_test

import (
	"fmt"
	"log"

	"repro/internal/parser"
	"repro/internal/ra"
)

// ExampleFormat shows the rule language round trip: Parse reads a
// Datalog-style rule into relational algebra, Format renders the algebra
// back. The printed text re-parses to a query with the same canonical
// fingerprint, which is how the HTTP benchmark ships pool queries as text.
func ExampleFormat() {
	schema := ra.Schema{
		"friend": {"pid", "fid"},
		"dine":   {"pid", "cid"},
	}
	q, err := parser.Parse("q(c) :- friend(0, buddy), dine(buddy, c)", schema)
	if err != nil {
		log.Fatal(err)
	}
	text, err := parser.Format(q, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text)

	back, err := parser.Parse(text, schema)
	if err != nil {
		log.Fatal(err)
	}
	f1, _ := ra.Fingerprint(q, schema)
	f2, _ := ra.Fingerprint(back, schema)
	fmt.Println("round trip preserves the fingerprint:", f1 == f2)
	// Output:
	// q(v2) :- friend(0, v1), dine(v1, v2)
	// round trip preserves the fingerprint: true
}

package parser

import (
	"testing"

	"repro/internal/ra"
)

var fmtSchema = ra.Schema{
	"friend": {"pid", "fid"},
	"dine":   {"pid", "cid", "month", "year"},
	"cafe":   {"cid", "city"},
	"r":      {"a", "b"},
	"s":      {"b", "c"},
}

// roundTripSrcs are rule-language queries that must survive
// parse → format → parse with an unchanged canonical fingerprint.
var roundTripSrcs = []string{
	`q(cid) :- friend(0, f), dine(f, cid, 5, 2015), cafe(cid, 'nyc')`,
	`q(x) :- r(x, y), s(y, z)`,
	`q(x, x) :- r(x, _)`,
	`q(a) :- r(a, 7)`,
	`q(c) :- cafe(c, "nyc")`,
	`q(x) :- r(x, y), s(y, -3)`,
	`(q(c) :- r(c, 1)) UNION (q(c) :- s(c, 2))`,
	`(q(c) :- r(c, 1)) EXCEPT (q(c) :- s(c, 2))`,
	`(q(c) :- r(c, 1)) UNION (q(c) :- s(c, 2)) EXCEPT (q(c) :- r(c, 9))`,
	`q(x) :- r(x, b), r(b, x)`,
	`q(y) :- dine(p, y, m, 2015), cafe(y, city), friend(0, p)`,
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range roundTripSrcs {
		src := src
		t.Run(src, func(t *testing.T) {
			q, err := Parse(src, fmtSchema)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			out, err := Format(q, fmtSchema)
			if err != nil {
				t.Fatalf("format: %v", err)
			}
			q2, err := Parse(out, fmtSchema)
			if err != nil {
				t.Fatalf("re-parse of %q: %v", out, err)
			}
			fp1, err := ra.Fingerprint(q, fmtSchema)
			if err != nil {
				t.Fatal(err)
			}
			fp2, err := ra.Fingerprint(q2, fmtSchema)
			if err != nil {
				t.Fatal(err)
			}
			if fp1 != fp2 {
				t.Errorf("fingerprint changed across round trip:\n in: %s\nout: %s", src, out)
			}
			// Printing is stable: formatting the re-parse gives the same text.
			out2, err := Format(q2, fmtSchema)
			if err != nil {
				t.Fatalf("re-format: %v", err)
			}
			if out != out2 {
				t.Errorf("format not stable:\n1: %s\n2: %s", out, out2)
			}
		})
	}
}

func TestFormatRejectsNonRuleShapes(t *testing.T) {
	// A bare relation is not in rule shape (no projection).
	if _, err := Format(ra.R("r", "r1"), fmtSchema); err == nil {
		t.Error("expected error for bare relation")
	}
	// Projection over a union is outside the fragment.
	u := ra.U(ra.R("r", "r1"), ra.R("s", "s1"))
	if _, err := Format(ra.Proj(u, ra.A("r1", "a")), fmtSchema); err == nil {
		t.Error("expected error for projection over union")
	}
}

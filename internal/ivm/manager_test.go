package ivm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// mkView materializes a trivial single-relation view the manager tests
// can admit; each call gets its own db so views are independent.
func mkView(t *testing.T) *View {
	t.Helper()
	s := ra.Schema{"r": {"a"}}
	db := store.NewDB(s)
	if _, err := db.Insert("r", value.Tuple{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	norm, err := ra.Normalize(ra.Proj(ra.R("r", "r1"), ra.A("r1", "a")), s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Materialize(norm, s, db, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestManagerBudgetNeverExceeded is the budget property: whatever the
// admission order, the live-view count never passes the configured
// budget — checked after every admission across a randomized run.
func TestManagerBudgetNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, budget := range []int{1, 3, 8} {
		m := NewManager(Config{Budget: budget, MinHits: 1, MinScore: 0, MaxViewRows: 0})
		for i := 0; i < 4*budget; i++ {
			m.Admit(fmt.Sprintf("k%d", i), mkView(t), nil)
			// Random serves shuffle the benefit ordering between admissions.
			for j := 0; j < rng.Intn(4); j++ {
				m.Serve(fmt.Sprintf("k%d", rng.Intn(i+1)))
			}
			if got := m.Len(); got > budget {
				t.Fatalf("budget %d: %d live views after %d admissions", budget, got, i+1)
			}
		}
		st := m.Stats()
		if st.Materialized != budget {
			t.Fatalf("budget %d: final live = %d", budget, st.Materialized)
		}
		if st.Admitted != int64(4*budget) || st.Evicted != int64(3*budget) {
			t.Fatalf("budget %d: admitted %d evicted %d", budget, st.Admitted, st.Evicted)
		}
	}
}

// TestManagerEvictionByBenefit is the eviction-order property: the victim
// is always the least-served view, least recently served on ties.
func TestManagerEvictionByBenefit(t *testing.T) {
	m := NewManager(Config{Budget: 3, MinHits: 1, MinScore: 0})
	for _, k := range []string{"cold", "warm", "hot"} {
		m.Admit(k, mkView(t), nil)
	}
	m.Serve("hot")
	m.Serve("hot")
	m.Serve("warm")
	m.Admit("new", mkView(t), nil) // evicts "cold": zero serves
	if m.Has("cold") {
		t.Fatal("cold should have been evicted first (fewest serves)")
	}
	for _, k := range []string{"warm", "hot", "new"} {
		if !m.Has(k) {
			t.Fatalf("%s should have survived", k)
		}
	}
	// new and a re-admitted cold both have zero serves; cold's admission
	// is more recent, so new (older last-use) is the tie-break victim.
	m.Admit("cold", mkView(t), nil) // evicts new: zero serves, oldest
	if m.Has("new") {
		t.Fatal("new should have lost the zero-serve tie (least recently used)")
	}
	if !m.Has("cold") {
		t.Fatal("cold should be live again")
	}
}

// TestManagerPurgeAll is the purge property: after PurgeAll not a single
// view (or denial) survives, whatever was admitted before.
func TestManagerPurgeAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewManager(Config{Budget: 16, MinHits: 1, MinScore: 0})
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		m.Admit(keys[i], mkView(t), nil)
		if rng.Intn(2) == 0 {
			m.Serve(keys[i])
		}
	}
	m.Deny("rejected")
	m.PurgeAll()
	if got := m.Len(); got != 0 {
		t.Fatalf("%d views live after PurgeAll", got)
	}
	for _, k := range keys {
		if m.Has(k) {
			t.Fatalf("%s survived PurgeAll", k)
		}
		if _, _, ok := m.Serve(k); ok {
			t.Fatalf("%s still serves after PurgeAll", k)
		}
	}
	if m.Denied("rejected") {
		t.Fatal("denial cache survived PurgeAll")
	}
	if st := m.Stats(); st.Purged != int64(len(keys)) {
		t.Fatalf("Purged = %d, want %d", st.Purged, len(keys))
	}
}

// TestManagerAdmission pins the admission formula: repeats and score must
// both pass, denials and live views block re-admission, and a disabled
// config admits nothing.
func TestManagerAdmission(t *testing.T) {
	m := NewManager(Config{Budget: 4, MinHits: 3, MinScore: 30})
	if m.ShouldAdmit("k", 2, 1000) {
		t.Fatal("admitted below MinHits")
	}
	if m.ShouldAdmit("k", 5, 1) {
		t.Fatal("admitted below MinScore")
	}
	if !m.ShouldAdmit("k", 3, 10) {
		t.Fatal("3 hits × cost 10 = 30 should admit")
	}
	m.Admit("k", mkView(t), nil)
	if m.ShouldAdmit("k", 100, 100) {
		t.Fatal("re-admitted a live key")
	}
	m.Deny("bad")
	if m.ShouldAdmit("bad", 100, 100) {
		t.Fatal("admitted a denied key")
	}
	off := NewManager(Config{})
	if off.ShouldAdmit("k", 1000, 1000) {
		t.Fatal("disabled config admitted")
	}
}

// TestManagerFallbackDropsView: an inapplicable delta (row cap hit on
// Apply) must drop exactly the failing view and count a fallback; healthy
// views keep serving.
func TestManagerFallbackDropsView(t *testing.T) {
	s := ra.Schema{"r": {"a"}}
	db := store.NewDB(s)
	norm, err := ra.Normalize(ra.Proj(ra.R("r", "r1"), ra.A("r1", "a")), s)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Materialize(norm, s, db, nil, 1) // cap 1: second row kills it
	if err != nil {
		t.Fatal(err)
	}
	healthy := mkView(t)
	m := NewManager(Config{Budget: 4, MinHits: 1, MinScore: 0})
	m.Admit("capped", capped, nil)
	m.Admit("healthy", healthy, nil)
	ops := []store.TupleOp{
		{Rel: "r", T: value.Tuple{value.NewInt(1)}},
		{Rel: "r", T: value.Tuple{value.NewInt(2)}},
	}
	for _, op := range ops {
		if _, err := db.Insert(op.Rel, op.T); err != nil {
			t.Fatal(err)
		}
	}
	m.OnWrite(ops)
	if m.Has("capped") {
		t.Fatal("over-cap view should have been dropped")
	}
	if !m.Has("healthy") {
		t.Fatal("healthy view should survive a sibling's fallback")
	}
	if st := m.Stats(); st.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", st.Fallbacks)
	}
}

// TestManagerTracks pins the write-path pre-check: only relations some
// live view reads are tracked, and eviction/purge untracks them.
func TestManagerTracks(t *testing.T) {
	m := NewManager(Config{Budget: 4, MinHits: 1, MinScore: 0})
	if m.Tracks("r") {
		t.Fatal("empty manager tracks r")
	}
	m.Admit("k", mkView(t), nil)
	if !m.Tracks("r") {
		t.Fatal("admitted view over r not tracked")
	}
	if m.Tracks("s") {
		t.Fatal("tracking a relation no view reads")
	}
	m.PurgeAll()
	if m.Tracks("r") {
		t.Fatal("still tracking after purge")
	}
}

package ivm

import (
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// testSchema is a tiny three-relation schema whose shapes cover every
// delta rule: r and u are union/diff-compatible, r joins s on c.
func testSchema() ra.Schema {
	return ra.Schema{
		"r": {"a", "b", "c"},
		"s": {"c", "d"},
		"u": {"a", "b", "c"},
	}
}

func seedDB(t *testing.T, s ra.Schema, rows map[string][]value.Tuple) *store.DB {
	t.Helper()
	db := store.NewDB(s)
	for rel, ts := range rows {
		for _, tu := range ts {
			if _, err := db.Insert(rel, tu); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func tup(vals ...int64) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.NewInt(v)
	}
	return t
}

// checkView materializes q over db, then replays ops one at a time —
// store first, then the view's delta path — and requires the published
// answer to equal a fresh re-execution of the query after every single
// op. Ops that do not change the store are not dispatched, matching the
// engine's contract with View.Apply.
func checkView(t *testing.T, s ra.Schema, db *store.DB, q ra.Query, ops []store.TupleOp) {
	t.Helper()
	norm, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	v, err := Materialize(norm, s, db, nil, 0)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	want, _, err := exec.RunBaseline(norm, s, db)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !v.Published().Equal(want) {
		t.Fatalf("initial materialization differs from baseline:\nview: %s\nwant: %s",
			v.Published().String(), want.String())
	}
	for i, op := range ops {
		var changed bool
		if op.Del {
			changed, err = db.Delete(op.Rel, op.T)
		} else {
			changed, err = db.Insert(op.Rel, op.T)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !changed {
			continue
		}
		if err := v.Apply(op); err != nil {
			t.Fatalf("op %d (%+v): apply: %v", i, op, err)
		}
		want, _, err := exec.RunBaseline(norm, s, db)
		if err != nil {
			t.Fatalf("op %d: baseline: %v", i, err)
		}
		if !v.Published().Equal(want) {
			t.Fatalf("op %d (%+v): maintained answer diverged\nview: %s\nwant: %s",
				i, op, v.Published().String(), want.String())
		}
	}
}

func TestViewSelect(t *testing.T) {
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{
		"r": {tup(1, 10, 100), tup(2, 10, 200), tup(3, 20, 300)},
	})
	q := ra.Proj(
		ra.Sel(ra.R("r", "r1"), ra.EqC(ra.A("r1", "b"), value.NewInt(10))),
		ra.A("r1", "a"), ra.A("r1", "c"),
	)
	checkView(t, s, db, q, []store.TupleOp{
		{Rel: "r", T: tup(4, 10, 400)},            // enters the selection
		{Rel: "r", T: tup(5, 99, 500)},            // filtered out
		{Rel: "r", T: tup(1, 10, 100), Del: true}, // leaves the answer
		{Rel: "r", T: tup(3, 20, 300), Del: true}, // was never in it
	})
}

func TestViewProjectCounts(t *testing.T) {
	// Two source rows project to the same answer row: deleting one must
	// keep the row (count 2 → 1), deleting both must drop it.
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{
		"r": {tup(1, 10, 100), tup(1, 20, 200)},
	})
	q := ra.Proj(ra.R("r", "r1"), ra.A("r1", "a"))
	checkView(t, s, db, q, []store.TupleOp{
		{Rel: "r", T: tup(1, 10, 100), Del: true}, // count 2 → 1: row stays
		{Rel: "r", T: tup(1, 20, 200), Del: true}, // count 1 → 0: row drops
		{Rel: "r", T: tup(1, 30, 300)},            // row returns
	})
}

func TestViewJoin(t *testing.T) {
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{
		"r": {tup(1, 10, 100), tup(2, 20, 200)},
		"s": {tup(100, 7), tup(300, 9)},
	})
	q := ra.Proj(
		ra.Join(ra.R("r", "r1"), ra.R("s", "s1"),
			ra.Eq(ra.A("r1", "c"), ra.A("s1", "c"))),
		ra.A("r1", "a"), ra.A("s1", "d"),
	)
	checkView(t, s, db, q, []store.TupleOp{
		{Rel: "s", T: tup(200, 8)},                // completes a dangling r row
		{Rel: "r", T: tup(3, 30, 300)},            // completes a dangling s row
		{Rel: "s", T: tup(100, 7), Del: true},     // kills the first join result
		{Rel: "r", T: tup(3, 30, 300), Del: true}, // kills the later one
		{Rel: "r", T: tup(4, 40, 200)},            // second match on s(200,8)
	})
}

func TestViewSelfJoin(t *testing.T) {
	// r joined with itself on c: one base write feeds both occurrences,
	// exercising the sequential chain rule across leaves.
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{
		"r": {tup(1, 10, 100), tup(2, 20, 100), tup(3, 30, 300)},
	})
	q := ra.Proj(
		ra.Join(ra.R("r", "r1"), ra.R("r", "r2"),
			ra.Eq(ra.A("r1", "c"), ra.A("r2", "c"))),
		ra.A("r1", "a"), ra.A("r2", "a"),
	)
	checkView(t, s, db, q, []store.TupleOp{
		{Rel: "r", T: tup(4, 40, 100)},            // pairs with two existing rows and itself
		{Rel: "r", T: tup(1, 10, 100), Del: true}, // removes its whole pair row/column
		{Rel: "r", T: tup(3, 30, 300), Del: true}, // the lone self-pair goes
	})
}

func TestViewUnion(t *testing.T) {
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{
		"r": {tup(1, 10, 100)},
		"u": {tup(1, 10, 100), tup(2, 20, 200)},
	})
	q := ra.U(
		ra.Proj(ra.R("r", "r1"), ra.A("r1", "a")),
		ra.Proj(ra.R("u", "u1"), ra.A("u1", "a")),
	)
	checkView(t, s, db, q, []store.TupleOp{
		{Rel: "u", T: tup(1, 10, 100), Del: true}, // still derived from r
		{Rel: "r", T: tup(1, 10, 100), Del: true}, // now it drops
		{Rel: "u", T: tup(3, 30, 300)},
		{Rel: "r", T: tup(3, 99, 99)}, // duplicate answer value via the other arm
	})
}

func TestViewDiff(t *testing.T) {
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{
		"r": {tup(1, 10, 100), tup(2, 20, 200)},
		"u": {tup(2, 99, 99)},
	})
	q := ra.D(
		ra.Proj(ra.R("r", "r1"), ra.A("r1", "a")),
		ra.Proj(ra.R("u", "u1"), ra.A("u1", "a")),
	)
	checkView(t, s, db, q, []store.TupleOp{
		{Rel: "u", T: tup(1, 5, 5)},               // right side gains 1: answer loses it
		{Rel: "u", T: tup(1, 5, 5), Del: true},    // membership flips back
		{Rel: "u", T: tup(2, 99, 99), Del: true},  // 2 re-enters the answer
		{Rel: "r", T: tup(2, 20, 200), Del: true}, // and leaves again from the left
		{Rel: "r", T: tup(3, 30, 300)},            // plain left insert
		{Rel: "u", T: tup(3, 1, 1)},               // immediately subtracted
	})
}

// TestViewStorm is the per-operator differential storm: every query shape
// above under a random write stream, answer re-checked against a fresh
// re-execution after every applied op.
func TestViewStorm(t *testing.T) {
	s := testSchema()
	shapes := map[string]func() ra.Query{
		"select": func() ra.Query {
			return ra.Proj(
				ra.Sel(ra.R("r", "r1"), ra.EqC(ra.A("r1", "b"), value.NewInt(1))),
				ra.A("r1", "a"))
		},
		"join": func() ra.Query {
			return ra.Proj(
				ra.Join(ra.R("r", "r1"), ra.R("s", "s1"),
					ra.Eq(ra.A("r1", "c"), ra.A("s1", "c"))),
				ra.A("r1", "a"), ra.A("s1", "d"))
		},
		"selfjoin": func() ra.Query {
			return ra.Proj(
				ra.Join(ra.R("r", "r1"), ra.R("r", "r2"),
					ra.Eq(ra.A("r1", "c"), ra.A("r2", "c"))),
				ra.A("r1", "a"), ra.A("r2", "b"))
		},
		"union": func() ra.Query {
			return ra.U(
				ra.Proj(ra.R("r", "r1"), ra.A("r1", "a")),
				ra.Proj(ra.R("u", "u1"), ra.A("u1", "a")))
		},
		"diff": func() ra.Query {
			return ra.D(
				ra.Proj(ra.R("r", "r1"), ra.A("r1", "a")),
				ra.Proj(ra.R("u", "u1"), ra.A("u1", "a")))
		},
	}
	arity := map[string]int{"r": 3, "s": 2, "u": 3}
	rels := []string{"r", "s", "u"}
	for name, mk := range shapes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name))))
			db := store.NewDB(s)
			// Tiny value domain [0, 4): collisions, duplicate projections
			// and membership flips happen constantly.
			randTup := func(n int) value.Tuple {
				tu := make(value.Tuple, n)
				for i := range tu {
					tu[i] = value.NewInt(rng.Int63n(4))
				}
				return tu
			}
			for i := 0; i < 30; i++ {
				rel := rels[rng.Intn(len(rels))]
				_, _ = db.Insert(rel, randTup(arity[rel]))
			}
			var ops []store.TupleOp
			for i := 0; i < 120; i++ {
				rel := rels[rng.Intn(len(rels))]
				ops = append(ops, store.TupleOp{
					Rel: rel,
					T:   randTup(arity[rel]),
					Del: rng.Intn(2) == 0,
				})
			}
			checkView(t, s, db, mk(), ops)
		})
	}
}

// TestViewRowCap exercises ErrViewTooLarge on both paths: a build whose
// tables exceed the cap must be rejected, and a live view that grows past
// it must fail its Apply (the manager then drops it as a fallback).
func TestViewRowCap(t *testing.T) {
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{
		"r": {tup(1, 10, 100), tup(2, 20, 200), tup(3, 30, 300)},
	})
	q := ra.Proj(ra.R("r", "r1"), ra.A("r1", "a"))
	norm, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(norm, s, db, nil, 2); err == nil {
		t.Fatal("expected ErrViewTooLarge on build, got nil")
	}
	v, err := Materialize(norm, s, db, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	grow := []store.TupleOp{
		{Rel: "r", T: tup(4, 40, 400)},
		{Rel: "r", T: tup(5, 50, 500)},
		{Rel: "r", T: tup(6, 60, 600)},
	}
	var applyErr error
	for _, op := range grow {
		if _, err := db.Insert(op.Rel, op.T); err != nil {
			t.Fatal(err)
		}
		if applyErr = v.Apply(op); applyErr != nil {
			break
		}
	}
	if applyErr == nil {
		t.Fatal("expected a row-cap failure while growing the view")
	}
}

// TestViewColumnLabels checks the published snapshot adopts the caller's
// column labels when the arity matches and falls back to attribute names
// otherwise.
func TestViewColumnLabels(t *testing.T) {
	s := testSchema()
	db := seedDB(t, s, map[string][]value.Tuple{"r": {tup(1, 10, 100)}})
	q := ra.Proj(ra.R("r", "r1"), ra.A("r1", "a"), ra.A("r1", "b"))
	norm, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Materialize(norm, s, db, []string{"x", "y"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Published().Cols; len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("cols = %v, want [x y]", got)
	}
	v2, err := Materialize(norm, s, db, []string{"wrong"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.Published().Cols; len(got) != 2 {
		t.Fatalf("fallback cols = %v, want arity 2", got)
	}
}

package ivm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workload"
)

// deltaHarness is built once per fuzz process: the AIRCA dataset plus a
// sample of its live rows per relation, so mutated op streams hit real
// join partners instead of missing everything.
type deltaHarnessT struct {
	d       *workload.Dataset
	rels    []string
	samples map[string][]value.Tuple
	err     error
}

var (
	deltaOnce sync.Once
	deltaH    deltaHarnessT
)

func deltaHarness() *deltaHarnessT {
	deltaOnce.Do(func() {
		d, err := workload.ByName("AIRCA")
		if err != nil {
			deltaH.err = err
			return
		}
		db, err := d.Gen(0.02, 11)
		if err != nil {
			deltaH.err = err
			return
		}
		deltaH.d = d
		deltaH.samples = map[string][]value.Tuple{}
		for rel := range d.Schema {
			rows, err := db.Rows(rel)
			if err != nil {
				deltaH.err = err
				return
			}
			if len(rows) > 64 {
				rows = rows[:64]
			}
			if len(rows) > 0 {
				deltaH.rels = append(deltaH.rels, rel)
				deltaH.samples[rel] = rows
			}
		}
	})
	return &deltaH
}

// FuzzDeltaPlan is the delta-oracle fuzzer: a generator query is
// materialized, a random tuple-op stream (deletes and reinserts of
// sampled rows plus mutated near-misses) is folded through the delta
// rules, and after every applied op the maintained answer must equal a
// fresh re-execution of the query over the mutated database. The fuzzer
// drives the generator's parameter space and the op stream's seed, so
// every input is well-formed and the delta rules absorb the whole budget.
func FuzzDeltaPlan(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(1), uint8(0), uint8(10))
	f.Add(int64(2), uint8(4), uint8(2), uint8(1), uint8(16))
	f.Add(int64(3), uint8(1), uint8(0), uint8(1), uint8(8))
	f.Add(int64(4), uint8(6), uint8(2), uint8(0), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, sel, join, unidiff, nops uint8) {
		h := deltaHarness()
		if h.err != nil {
			t.Fatalf("harness: %v", h.err)
		}
		// Every run mutates its own copy of the instance.
		db, err := h.d.Gen(0.02, 11)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		p := workload.DefaultQueryParams()
		p.Sel = int(sel) % 7
		p.Join = int(join) % 3
		p.UniDiff = int(unidiff) % 2
		q, err := h.d.RandomQuery(p, rng)
		if err != nil {
			t.Skip()
		}
		v, err := Materialize(q, h.d.Schema, db, nil, 1<<18)
		if errors.Is(err, ErrViewTooLarge) {
			t.Skip() // a legitimate denial, not a bug
		}
		if err != nil {
			t.Fatalf("materialize failed on a generator query %q: %v", q.String(), err)
		}
		for i := 0; i < 3+int(nops)%24; i++ {
			rel := h.rels[rng.Intn(len(h.rels))]
			rows := h.samples[rel]
			tu := rows[rng.Intn(len(rows))]
			if rng.Intn(3) == 0 {
				// Near-miss: clone and nudge one column, so inserts of
				// genuinely new tuples (and deletes that miss) occur too.
				tu = append(value.Tuple{}, tu...)
				c := rng.Intn(len(tu))
				if tu[c].K == value.Int {
					tu[c] = value.NewInt(tu[c].I + int64(rng.Intn(3)) - 1)
				} else {
					tu[c] = value.NewStr(tu[c].S + "x")
				}
			}
			op := store.TupleOp{Rel: rel, T: tu, Del: rng.Intn(2) == 0}
			var changed bool
			if op.Del {
				changed, err = db.Delete(op.Rel, op.T)
			} else {
				changed, err = db.Insert(op.Rel, op.T)
			}
			if err != nil || !changed {
				continue
			}
			if err := v.Apply(op); err != nil {
				if errors.Is(err, ErrViewTooLarge) {
					t.Skip()
				}
				t.Fatalf("op %d (%+v): apply: %v", i, op, err)
			}
			want, _, err := exec.RunBaseline(q, h.d.Schema, db)
			if err != nil {
				t.Fatalf("op %d: baseline: %v", i, err)
			}
			if !v.Published().Equal(want) {
				t.Fatalf("delta-maintained answer diverged from re-execution on %q after op %d (%+v):\nview %d rows, want %d rows",
					q.String(), i, op, v.Published().Len(), want.Len())
			}
		}
	})
}

// TestDeltaPlanSeeds replays the fuzz seed corpus as a plain test, so the
// delta-oracle property is exercised on every `go test` run (the fuzzer
// itself only runs in the dedicated smoke job).
func TestDeltaPlanSeeds(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		h := deltaHarness()
		if h.err != nil {
			t.Fatalf("harness: %v", h.err)
		}
		rng := rand.New(rand.NewSource(seed))
		db, err := h.d.Gen(0.02, 11)
		if err != nil {
			t.Fatal(err)
		}
		p := workload.DefaultQueryParams()
		p.Sel = int(seed) % 7
		p.Join = int(seed) % 3
		p.UniDiff = int(seed) % 2
		q, err := h.d.RandomQuery(p, rng)
		if err != nil {
			continue
		}
		v, err := Materialize(q, h.d.Schema, db, nil, 1<<18)
		if errors.Is(err, ErrViewTooLarge) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: materialize %q: %v", seed, q.String(), err)
		}
		for i := 0; i < 10; i++ {
			rel := h.rels[rng.Intn(len(h.rels))]
			rows := h.samples[rel]
			op := store.TupleOp{Rel: rel, T: rows[rng.Intn(len(rows))], Del: rng.Intn(2) == 0}
			var changed bool
			if op.Del {
				changed, err = db.Delete(op.Rel, op.T)
			} else {
				changed, err = db.Insert(op.Rel, op.T)
			}
			if err != nil || !changed {
				continue
			}
			if err := v.Apply(op); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, i, err)
			}
			want, _, err := exec.RunBaseline(q, h.d.Schema, db)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Published().Equal(want) {
				t.Fatalf("seed %d: diverged on %q after op %d", seed, q.String(), i)
			}
		}
	}
}

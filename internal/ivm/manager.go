package ivm

import (
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/store"
)

// Config tunes admission and eviction of materialized answers.
type Config struct {
	// Budget is the maximum number of live views; <= 0 disables
	// materialization entirely.
	Budget int
	// MinHits is the minimum plan-cache repeat count before a fingerprint
	// is considered for materialization.
	MinHits int64
	// MinScore is the admission threshold on hits × measured execution
	// cost (tuples accessed per run): a query must be both repeated and
	// expensive to earn a view.
	MinScore float64
	// MaxViewRows caps the total counted rows a single view may hold
	// across all of its node tables (<= 0 = unlimited). Queries whose
	// materialization would exceed it are denied and keep re-executing.
	MaxViewRows int
}

// DefaultConfig is the admission policy engines start with: up to 64
// views, admitted after 3 repeats once hits × cost passes 32, each capped
// at 256k counted rows.
func DefaultConfig() Config {
	return Config{Budget: 64, MinHits: 3, MinScore: 32, MaxViewRows: 1 << 18}
}

// Enabled reports whether the config admits any materialization.
func (c Config) Enabled() bool { return c.Budget > 0 }

// Stats is a snapshot of the materialization counters.
type Stats struct {
	// Materialized is the number of live views right now; Budget the
	// configured ceiling.
	Materialized int
	Budget       int
	// Admitted / Evicted / Purged count view lifecycle events: admissions,
	// budget-pressure evictions, and invalidation purges (version bumps,
	// reshard, repartition).
	Admitted, Evicted, Purged int64
	// Hits counts reads served from a materialized answer; DeltaApplies
	// counts tuple writes folded into a view.
	Hits, DeltaApplies int64
	// Fallbacks counts views dropped because a delta could not be applied
	// (the reader falls back to plan execution); Denied counts
	// materialization attempts rejected at build time (too large, or an
	// unsupported shape).
	Fallbacks, Denied int64
}

// Merge returns the element-wise sum of two snapshots, for cluster-wide
// aggregation across shard engines.
func (s Stats) Merge(o Stats) Stats {
	s.Materialized += o.Materialized
	s.Budget += o.Budget
	s.Admitted += o.Admitted
	s.Evicted += o.Evicted
	s.Purged += o.Purged
	s.Hits += o.Hits
	s.DeltaApplies += o.DeltaApplies
	s.Fallbacks += o.Fallbacks
	s.Denied += o.Denied
	return s
}

// entry is one live view keyed by its serving key.
type entry struct {
	key  string
	view *View
	// info is an opaque compile artifact the owning engine stored at
	// admission, returned verbatim on every Serve so the engine can fill
	// its execution report without recompiling.
	info any
	// hits is the benefit counter (serves since admission); last is the
	// manager-clock timestamp of the most recent serve. Eviction takes the
	// minimum (hits, last): lowest benefit first, least recently used on
	// ties.
	hits atomic.Int64
	last atomic.Int64
}

// maxDenied bounds the negative-admission cache so a hostile query stream
// cannot grow it without bound.
const maxDenied = 4096

// Manager owns the live views of one engine: admission scoring, the view
// budget, benefit-based eviction, per-relation write routing and the
// lifecycle counters. All methods are safe for concurrent use; the
// ordering contract for OnWrite is inherited from View.Apply.
type Manager struct {
	cfg   Config
	clock atomic.Int64

	hits, admitted, evicted, purged atomic.Int64
	deltaApplies, fallbacks, denied atomic.Int64

	mu    sync.RWMutex
	views map[string]*entry
	byRel map[string]map[*entry]bool
	deny  map[string]bool
}

// NewManager creates an empty manager with the given policy.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:   cfg,
		views: map[string]*entry{},
		byRel: map[string]map[*entry]bool{},
		deny:  map[string]bool{},
	}
}

// Config returns the admission policy the manager was built with.
func (m *Manager) Config() Config { return m.cfg }

// Len returns the number of live views.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.views)
}

// Tracks reports whether any live view depends on base relation rel —
// the fast pre-check on the write path.
func (m *Manager) Tracks(rel string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byRel[rel]) > 0
}

// Serve returns the published answer of the view under key, the opaque
// admission info, and whether a view was live. The returned table is
// shared and read-only.
func (m *Manager) Serve(key string) (*exec.Table, any, bool) {
	m.mu.RLock()
	e := m.views[key]
	m.mu.RUnlock()
	if e == nil {
		return nil, nil, false
	}
	t := e.view.Published()
	if t == nil {
		return nil, nil, false
	}
	e.hits.Add(1)
	e.last.Store(m.clock.Add(1))
	m.hits.Add(1)
	return t, e.info, true
}

// Has reports whether a view is live under key.
func (m *Manager) Has(key string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.views[key] != nil
}

// ShouldAdmit applies the admission formula: the key has no live view and
// was not previously denied, the repeat count passed MinHits, and
// hits × cost passed MinScore.
func (m *Manager) ShouldAdmit(key string, hits int64, cost float64) bool {
	if !m.cfg.Enabled() {
		return false
	}
	m.mu.RLock()
	_, live := m.views[key]
	denied := m.deny[key]
	m.mu.RUnlock()
	if live || denied {
		return false
	}
	return hits >= m.cfg.MinHits && float64(hits)*cost >= m.cfg.MinScore
}

// Denied reports whether key was rejected at a previous build attempt.
func (m *Manager) Denied(key string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.deny[key]
}

// Deny records a failed materialization so the engine stops re-attempting
// the build on every execution. The negative cache is dropped on PurgeAll.
func (m *Manager) Deny(key string) {
	m.denied.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.deny) < maxDenied {
		m.deny[key] = true
	}
}

// Admit installs a view under key, evicting lowest-benefit views while the
// budget is exceeded. info is returned verbatim by Serve. Admitting a key
// that is already live is a no-op.
func (m *Manager) Admit(key string, v *View, info any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.views[key] != nil {
		return
	}
	for len(m.views) >= m.cfg.Budget {
		m.evictLocked()
	}
	e := &entry{key: key, view: v, info: info}
	e.last.Store(m.clock.Add(1))
	m.views[key] = e
	for _, rel := range v.BaseRels() {
		if m.byRel[rel] == nil {
			m.byRel[rel] = map[*entry]bool{}
		}
		m.byRel[rel][e] = true
	}
	m.admitted.Add(1)
}

// evictLocked removes the lowest-benefit view: minimum serve count, least
// recently served on ties. Called with m.mu held exclusively.
func (m *Manager) evictLocked() {
	var victim *entry
	for _, e := range m.views {
		if victim == nil {
			victim = e
			continue
		}
		eh, vh := e.hits.Load(), victim.hits.Load()
		if eh < vh || (eh == vh && e.last.Load() < victim.last.Load()) {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	m.removeLocked(victim)
	m.evicted.Add(1)
}

// removeLocked unregisters an entry from the key and relation maps.
func (m *Manager) removeLocked(e *entry) {
	delete(m.views, e.key)
	for _, rel := range e.view.BaseRels() {
		if set := m.byRel[rel]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(m.byRel, rel)
			}
		}
	}
}

// OnWrite folds already-applied store writes into every view that depends
// on their relations, in op order. A view whose delta application fails is
// dropped (counted as a fallback): subsequent reads of its key re-execute
// the plan and may re-admit a fresh view later.
func (m *Manager) OnWrite(ops []store.TupleOp) {
	var dead []*entry
	for _, op := range ops {
		m.mu.RLock()
		set := m.byRel[op.Rel]
		es := make([]*entry, 0, len(set))
		for e := range set {
			es = append(es, e)
		}
		m.mu.RUnlock()
		for _, e := range es {
			if err := e.view.Apply(op); err != nil {
				dead = append(dead, e)
				continue
			}
			m.deltaApplies.Add(1)
		}
	}
	if len(dead) > 0 {
		m.mu.Lock()
		for _, e := range dead {
			if m.views[e.key] == e {
				m.removeLocked(e)
				m.fallbacks.Add(1)
			}
		}
		m.mu.Unlock()
	}
}

// PurgeAll drops every live view and the negative-admission cache — the
// invalidation hammer for access-schema generation bumps, reshard and
// repartition.
func (m *Manager) PurgeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purged.Add(int64(len(m.views)))
	m.views = map[string]*entry{}
	m.byRel = map[string]map[*entry]bool{}
	m.deny = map[string]bool{}
}

// Stats returns a snapshot of the materialization counters.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	live := len(m.views)
	m.mu.RUnlock()
	return Stats{
		Materialized: live,
		Budget:       m.cfg.Budget,
		Admitted:     m.admitted.Load(),
		Evicted:      m.evicted.Load(),
		Purged:       m.purged.Load(),
		Hits:         m.hits.Load(),
		DeltaApplies: m.deltaApplies.Load(),
		Fallbacks:    m.fallbacks.Load(),
		Denied:       m.denied.Load(),
	}
}

// Package ivm maintains materialized answers for hot queries under tuple
// writes — incremental view maintenance in the counting style of
// Berkholz/Keppeler/Schweikardt's answer-maintenance setting. A View
// mirrors the normalized RA tree of one query with counted intermediate
// tables and applies per-operator delta rules (selection, projection,
// product, union, difference) to every tuple write, so a repeated read of
// a hot fingerprint becomes a pointer load of the last published answer
// snapshot instead of a plan execution. The Manager decides which
// fingerprints earn a view (repeat count × measured execution cost),
// bounds how many live at once, evicts by benefit, and purges everything
// on access-schema generation bumps.
package ivm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// ErrViewTooLarge aborts a materialization (or drops a live view) whose
// counted tables exceed the configured row cap: maintaining it would cost
// more memory and delta work than re-executing the plan.
var ErrViewTooLarge = errors.New("ivm: materialization exceeds the row cap")

// crow is one counted tuple: n is the number of derivations of t at this
// node. Membership under set semantics is n > 0; counts may pass through
// zero transiently while a delta chain is in flight and the entry is
// dropped the moment it lands on exactly zero.
type crow struct {
	t value.Tuple
	n int64
}

// drow is one delta row: the tuple and its signed derivation-count change.
type drow struct {
	t value.Tuple
	n int64
}

// node mirrors one operator of the (pushdown-rewritten) query tree. Only
// nodes whose counted table is ever read again — the root, and children of
// Product (sibling join scans) and Diff (membership counts) — materialize
// rows; the rest transform deltas in flight and store nothing.
type node struct {
	q        ra.Query
	parent   *node
	childIdx int
	children []*node
	// attrs is the positional output scope of this node.
	attrs []ra.Attr
	// rows is the counted table, nil when this node stores nothing.
	rows map[string]*crow
	// preds caches the selection condition (Select nodes).
	preds []ra.Pred
	// pos caches projection positions into the child scope (Project nodes).
	pos []int
	// jkey, set on the children of a Product that sits directly under a
	// Select whose attribute equalities link the two operands, holds this
	// child's half of the join key (positions into its scope, pair-ordered
	// with the sibling's); jidx indexes rows by that key so the delta rule
	// probes matching sibling rows instead of scanning the table. The key
	// may cover only some predicates — the Select above re-filters, so a
	// partial key is sound.
	jkey []int
	jidx map[string]map[string]*crow
}

// buildIndex (re)builds the join-key index over the node's counted table.
func (n *node) buildIndex() {
	n.jidx = make(map[string]map[string]*crow)
	for k, c := range n.rows {
		n.indexAdd(k, c)
	}
}

func (n *node) indexAdd(k string, c *crow) {
	jk := c.t.Project(n.jkey).Key()
	b := n.jidx[jk]
	if b == nil {
		b = map[string]*crow{}
		n.jidx[jk] = b
	}
	b[k] = c
}

func (n *node) indexDel(k string, t value.Tuple) {
	jk := t.Project(n.jkey).Key()
	if b := n.jidx[jk]; b != nil {
		delete(b, k)
		if len(b) == 0 {
			delete(n.jidx, jk)
		}
	}
}

// View is the materialized answer of one normalized query plus the counted
// node tables needed to maintain it under tuple writes. Apply is
// serialized by the view's own mutex; the published answer snapshot is an
// immutable table swapped atomically. Publication is lazy: a root-changing
// delta only marks the snapshot dirty, and the next reader rebuilds it
// once — so a burst of writes between two reads pays one O(answer)
// rebuild instead of one per write.
type View struct {
	mu     sync.Mutex
	root   *node
	leaves map[string][]*node // base relation → leaf occurrences
	rels   []string           // distinct base relations, for registration
	// maxRows caps the total counted rows across materialized nodes
	// (<= 0 = unlimited); nrows is the current total.
	maxRows int
	nrows   int
	cols    []string
	// published is the last consistent answer snapshot. It is read-only by
	// contract: Serve hands it to callers without copying. dirty means root
	// membership changed since it was built; Published refreshes it then.
	published atomic.Pointer[exec.Table]
	dirty     atomic.Bool
}

// Materialize builds a view for the normalized query norm over the current
// contents of db. cols labels the published answer columns (the executed
// result's labels, so a materialized hit is indistinguishable from a plan
// execution); maxRows caps the total counted rows (<= 0 = unlimited). The
// caller must exclude concurrent writes to db for the duration — the
// engine holds its materialization lock exclusively — or the initial scan
// would race the delta stream.
func Materialize(norm ra.Query, s ra.Schema, db *store.DB, cols []string, maxRows int) (*View, error) {
	q := pushdown(ra.Clone(norm), s)
	if err := ra.Validate(q, s); err != nil {
		// A pushdown bug must surface as a fallback, never a wrong answer.
		return nil, fmt.Errorf("ivm: pushdown broke the query: %w", err)
	}
	v := &View{leaves: map[string][]*node{}, maxRows: maxRows}
	root, err := v.build(q, s, nil, 0)
	if err != nil {
		return nil, err
	}
	v.root = root
	setJoinKeys(root)
	seen := map[string]bool{}
	for rel := range v.leaves {
		if !seen[rel] {
			seen[rel] = true
			v.rels = append(v.rels, rel)
		}
	}
	if len(cols) == len(root.attrs) {
		v.cols = cols
	} else {
		v.cols = make([]string, len(root.attrs))
		for i, a := range root.attrs {
			v.cols[i] = a.String()
		}
	}
	if _, err := v.eval(root, db); err != nil {
		return nil, err
	}
	v.publishLocked()
	return v, nil
}

// BaseRels returns the distinct base relations the view depends on.
func (v *View) BaseRels() []string { return v.rels }

// Published returns the current answer snapshot, rebuilding it first if
// writes changed root membership since the last read. The table is shared
// and must be treated as read-only. A write that completed before this
// call is always reflected (it set dirty before returning); a concurrent
// one may be ordered either side of the snapshot.
func (v *View) Published() *exec.Table {
	if v.dirty.Load() {
		v.mu.Lock()
		if v.dirty.Load() {
			v.publishLocked()
			v.dirty.Store(false)
		}
		v.mu.Unlock()
	}
	return v.published.Load()
}

// Rows returns the total counted rows held across materialized nodes.
func (v *View) Rows() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.nrows
}

// build constructs the node tree for q, computing scopes and operator
// caches. Materialized tables are allocated lazily by eval.
func (v *View) build(q ra.Query, s ra.Schema, parent *node, idx int) (*node, error) {
	attrs, err := ra.OutAttrs(q, s)
	if err != nil {
		return nil, err
	}
	n := &node{q: q, parent: parent, childIdx: idx, attrs: attrs}
	for i, c := range q.Children() {
		cn, err := v.build(c, s, n, i)
		if err != nil {
			return nil, err
		}
		n.children = append(n.children, cn)
	}
	switch t := q.(type) {
	case *ra.Relation:
		v.leaves[t.Base] = append(v.leaves[t.Base], n)
	case *ra.Select:
		n.preds = t.Preds
	case *ra.Project:
		n.pos = make([]int, len(t.Attrs))
		for i, a := range t.Attrs {
			p := exec.AttrIndex(n.children[0].attrs, a)
			if p < 0 {
				return nil, fmt.Errorf("ivm: projection attribute %s out of scope", a)
			}
			n.pos[i] = p
		}
	}
	return n, nil
}

// setJoinKeys walks the built tree and, for every Product directly under
// a Select, extracts the equality atoms that link the two operands into
// pair-ordered join-key positions on the children. Predicates the key
// cannot express stay with the Select, which filters above the product
// either way.
func setJoinKeys(n *node) {
	if _, ok := n.q.(*ra.Product); ok && n.parent != nil {
		if _, sel := n.parent.q.(*ra.Select); sel {
			l, r := n.children[0], n.children[1]
			var lk, rk []int
			for _, pr := range n.parent.preds {
				eq, ok := pr.(ra.EqAttr)
				if !ok {
					continue
				}
				li, ri := exec.AttrIndex(l.attrs, eq.L), exec.AttrIndex(r.attrs, eq.R)
				if li < 0 || ri < 0 {
					li, ri = exec.AttrIndex(l.attrs, eq.R), exec.AttrIndex(r.attrs, eq.L)
				}
				if li >= 0 && ri >= 0 {
					lk = append(lk, li)
					rk = append(rk, ri)
				}
			}
			if len(lk) > 0 {
				l.jkey, r.jkey = lk, rk
			}
		}
	}
	for _, c := range n.children {
		setJoinKeys(c)
	}
}

// needsRows reports whether a node's counted table is read after the
// initial build: the root (it is the answer), Product children (the
// sibling scan of the join delta rule) and Diff children (membership
// counts for the flip rule).
func (n *node) needsRows() bool {
	if n.parent == nil {
		return true
	}
	switch n.parent.q.(type) {
	case *ra.Product, *ra.Diff:
		return true
	}
	return false
}

// eval computes the counted table of n bottom-up from the store, retaining
// it on nodes that need it and charging every retained or transient table
// against the row cap.
func (v *View) eval(n *node, db *store.DB) (map[string]*crow, error) {
	var m map[string]*crow
	switch q := n.q.(type) {
	case *ra.Relation:
		rows, err := db.Rows(q.Base)
		if err != nil {
			return nil, err
		}
		m = make(map[string]*crow, len(rows))
		for _, t := range rows {
			m[t.Key()] = &crow{t: t, n: 1}
		}
	case *ra.Select:
		in, err := v.eval(n.children[0], db)
		if err != nil {
			return nil, err
		}
		m = make(map[string]*crow)
		for k, r := range in {
			ok, err := exec.PredsHold(r.t, n.children[0].attrs, n.preds)
			if err != nil {
				return nil, err
			}
			if ok {
				m[k] = &crow{t: r.t, n: r.n}
			}
		}
	case *ra.Project:
		in, err := v.eval(n.children[0], db)
		if err != nil {
			return nil, err
		}
		m = make(map[string]*crow)
		for _, r := range in {
			p := r.t.Project(n.pos)
			k := p.Key()
			if c := m[k]; c != nil {
				c.n += r.n
			} else {
				m[k] = &crow{t: p, n: r.n}
			}
		}
	case *ra.Product:
		l, err := v.eval(n.children[0], db)
		if err != nil {
			return nil, err
		}
		r, err := v.eval(n.children[1], db)
		if err != nil {
			return nil, err
		}
		m = make(map[string]*crow)
		add := func(a, b *crow) error {
			t := concat(a.t, b.t)
			k := t.Key()
			if c := m[k]; c != nil {
				c.n += a.n * b.n
			} else {
				m[k] = &crow{t: t, n: a.n * b.n}
			}
			if v.maxRows > 0 && len(m) > v.maxRows {
				return ErrViewTooLarge
			}
			return nil
		}
		lc, rc := n.children[0], n.children[1]
		if lc.jkey != nil {
			// Hash join on the extracted key: pairs it skips fail the
			// parent Select's equalities and would die there anyway.
			buckets := make(map[string][]*crow, len(r))
			for _, b := range r {
				jk := b.t.Project(rc.jkey).Key()
				buckets[jk] = append(buckets[jk], b)
			}
			for _, a := range l {
				for _, b := range buckets[a.t.Project(lc.jkey).Key()] {
					if err := add(a, b); err != nil {
						return nil, err
					}
				}
			}
		} else {
			for _, a := range l {
				for _, b := range r {
					if err := add(a, b); err != nil {
						return nil, err
					}
				}
			}
		}
	case *ra.Union:
		l, err := v.eval(n.children[0], db)
		if err != nil {
			return nil, err
		}
		r, err := v.eval(n.children[1], db)
		if err != nil {
			return nil, err
		}
		m = l
		for k, b := range r {
			if c := m[k]; c != nil {
				c.n += b.n
			} else {
				m[k] = &crow{t: b.t, n: b.n}
			}
		}
	case *ra.Diff:
		l, err := v.eval(n.children[0], db)
		if err != nil {
			return nil, err
		}
		r, err := v.eval(n.children[1], db)
		if err != nil {
			return nil, err
		}
		m = make(map[string]*crow)
		for k, a := range l {
			if a.n <= 0 {
				continue
			}
			if b := r[k]; b == nil || b.n <= 0 {
				m[k] = &crow{t: a.t, n: 1}
			}
		}
	default:
		return nil, fmt.Errorf("ivm: no delta rule for node %T", n.q)
	}
	if v.maxRows > 0 && len(m) > v.maxRows {
		return nil, ErrViewTooLarge
	}
	if n.needsRows() {
		n.rows = m
		if n.jkey != nil {
			n.buildIndex()
		}
		v.nrows += len(m)
		if v.maxRows > 0 && v.nrows > v.maxRows {
			return nil, ErrViewTooLarge
		}
	}
	return m, nil
}

// Apply folds one already-applied store write into the view. The caller
// must guarantee the write actually changed the store (a duplicate insert
// or a missing delete must not reach here) and that writes to the same
// tuple arrive in store order; the engine's per-tuple write stripes
// provide both. A non-nil error means the view can no longer be
// maintained and must be dropped.
func (v *View) Apply(op store.TupleOp) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	sign := int64(1)
	if op.Del {
		sign = -1
	}
	changed := false
	// Occurrences of the same base relation propagate sequentially: each
	// leaf's delta updates the node tables in place before the next leaf
	// fires, which is exactly the chain rule for self-joins.
	for _, leaf := range v.leaves[op.Rel] {
		c, err := v.propagate(leaf, []drow{{t: op.T, n: sign}})
		if err != nil {
			return err
		}
		changed = changed || c
	}
	if changed {
		v.dirty.Store(true)
	}
	return nil
}

// propagate walks a delta from one node up to the root, applying it to
// every materialized table on the way and transforming it through each
// parent operator. It reports whether a non-empty delta reached the root.
func (v *View) propagate(n *node, d []drow) (bool, error) {
	for len(d) > 0 {
		if n.rows != nil {
			if err := v.applyRows(n, d); err != nil {
				return false, err
			}
		}
		if n.parent == nil {
			return true, nil
		}
		var err error
		d, err = v.transform(n.parent, n.childIdx, d)
		if err != nil {
			return false, err
		}
		n = n.parent
	}
	return false, nil
}

// applyRows folds a delta into a node's counted table.
func (v *View) applyRows(n *node, d []drow) error {
	for _, dr := range d {
		k := dr.t.Key()
		c := n.rows[k]
		if c == nil {
			c = &crow{t: dr.t, n: dr.n}
			n.rows[k] = c
			if n.jidx != nil {
				n.indexAdd(k, c)
			}
			v.nrows++
			if v.maxRows > 0 && v.nrows > v.maxRows {
				return ErrViewTooLarge
			}
			continue
		}
		c.n += dr.n
		if c.n == 0 {
			delete(n.rows, k)
			if n.jidx != nil {
				n.indexDel(k, c.t)
			}
			v.nrows--
		}
	}
	return nil
}

// transform maps a delta arriving from child idx into parent p's scope —
// the per-operator delta rules.
func (v *View) transform(p *node, idx int, d []drow) ([]drow, error) {
	switch p.q.(type) {
	case *ra.Select:
		out := d[:0:0]
		for _, dr := range d {
			ok, err := exec.PredsHold(dr.t, p.children[0].attrs, p.preds)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, dr)
			}
		}
		return out, nil
	case *ra.Project:
		merged := map[string]*drow{}
		var order []string
		for _, dr := range d {
			t := dr.t.Project(p.pos)
			k := t.Key()
			if m := merged[k]; m != nil {
				m.n += dr.n
			} else {
				merged[k] = &drow{t: t, n: dr.n}
				order = append(order, k)
			}
		}
		out := make([]drow, 0, len(order))
		for _, k := range order {
			if m := merged[k]; m.n != 0 {
				out = append(out, *m)
			}
		}
		return out, nil
	case *ra.Product:
		// Δ(L×R) from one side is the delta joined against the sibling's
		// current table: the delta entered through exactly one leaf, so the
		// sibling is untouched by it and "current" is both its old and new
		// state — the bilinear rule needs no old-value bookkeeping.
		sib, me := p.children[1-idx], p.children[idx]
		if sib.rows == nil {
			return nil, fmt.Errorf("ivm: product sibling not materialized")
		}
		merged := map[string]*drow{}
		var order []string
		for _, dr := range d {
			// Probe only join-key matches when the key exists; skipped
			// sibling rows fail the parent Select's equalities anyway.
			pool := sib.rows
			if sib.jidx != nil && me.jkey != nil {
				pool = sib.jidx[dr.t.Project(me.jkey).Key()]
			}
			for _, b := range pool {
				var t value.Tuple
				if idx == 0 {
					t = concat(dr.t, b.t)
				} else {
					t = concat(b.t, dr.t)
				}
				k := t.Key()
				if m := merged[k]; m != nil {
					m.n += dr.n * b.n
				} else {
					merged[k] = &drow{t: t, n: dr.n * b.n}
					order = append(order, k)
				}
			}
		}
		out := make([]drow, 0, len(order))
		for _, k := range order {
			if m := merged[k]; m.n != 0 {
				out = append(out, *m)
			}
		}
		return out, nil
	case *ra.Union:
		// Counts add; operand scopes are positionally compatible, so the
		// delta passes through unchanged.
		return d, nil
	case *ra.Diff:
		// Membership flips: out(t) = 1 iff count_L(t) > 0 ∧ count_R(t) = 0.
		// The child's table is already updated, so its pre-delta count is
		// (new − δ); emit ±1 exactly when membership changed.
		l, r := p.children[0], p.children[1]
		if l.rows == nil || r.rows == nil {
			return nil, fmt.Errorf("ivm: diff children not materialized")
		}
		out := d[:0:0]
		for _, dr := range d {
			k := dr.t.Key()
			var before, after bool
			if idx == 0 {
				newL := count(l, k)
				rIn := count(r, k) > 0
				before = newL-dr.n > 0 && !rIn
				after = newL > 0 && !rIn
			} else {
				lIn := count(l, k) > 0
				newR := count(r, k)
				before = lIn && newR-dr.n <= 0
				after = lIn && newR <= 0
			}
			if before == after {
				continue
			}
			// The emitted tuple must carry the LEFT operand's scope; the
			// operands are positionally compatible, so the delta tuple's
			// values are already correct.
			if after {
				out = append(out, drow{t: dr.t, n: 1})
			} else {
				out = append(out, drow{t: dr.t, n: -1})
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ivm: no delta rule for node %T", p.q)
	}
}

func count(n *node, key string) int64 {
	if c := n.rows[key]; c != nil {
		return c.n
	}
	return 0
}

// publishLocked swaps in a fresh immutable answer snapshot built from the
// root's positive-count rows. Called with v.mu held.
func (v *View) publishLocked() {
	t := exec.NewTableSized(v.cols, len(v.root.rows))
	for _, c := range v.root.rows {
		if c.n > 0 {
			t.Add(c.t)
		}
	}
	v.published.Store(t)
}

func concat(a, b value.Tuple) value.Tuple {
	t := make(value.Tuple, 0, len(a)+len(b))
	t = append(t, a...)
	return append(t, b...)
}

// pushdown sinks every selection atom to the lowest node whose scope
// covers it: constant predicates land on their relation occurrence (so
// leaf tables and leaf deltas are pre-filtered) and join predicates land
// directly above their lowest product. Atoms never sink through Union or
// Diff (the right operand renames attributes positionally) — they stay
// put there, which is always sound.
func pushdown(q ra.Query, s ra.Schema) ra.Query {
	switch t := q.(type) {
	case *ra.Select:
		out := pushdown(t.In, s)
		for _, p := range t.Preds {
			out = sink(out, p, s)
		}
		return out
	case *ra.Project:
		return &ra.Project{In: pushdown(t.In, s), Attrs: t.Attrs}
	case *ra.Product:
		return &ra.Product{L: pushdown(t.L, s), R: pushdown(t.R, s)}
	case *ra.Union:
		return &ra.Union{L: pushdown(t.L, s), R: pushdown(t.R, s)}
	case *ra.Diff:
		return &ra.Diff{L: pushdown(t.L, s), R: pushdown(t.R, s)}
	default:
		return q
	}
}

// sink places one predicate as low as its attribute scope allows.
func sink(q ra.Query, p ra.Pred, s ra.Schema) ra.Query {
	switch t := q.(type) {
	case *ra.Select:
		return &ra.Select{In: sink(t.In, p, s), Preds: t.Preds}
	case *ra.Project:
		// Projection attributes keep their names, so a predicate over the
		// output scope is over the input scope too.
		return &ra.Project{In: sink(t.In, p, s), Attrs: t.Attrs}
	case *ra.Product:
		if covers(t.L, p, s) {
			return &ra.Product{L: sink(t.L, p, s), R: t.R}
		}
		if covers(t.R, p, s) {
			return &ra.Product{L: t.L, R: sink(t.R, p, s)}
		}
		return wrapSel(q, p)
	default:
		return wrapSel(q, p)
	}
}

func covers(q ra.Query, p ra.Pred, s ra.Schema) bool {
	attrs, err := ra.OutAttrs(q, s)
	if err != nil {
		return false
	}
	var need []ra.Attr
	switch t := p.(type) {
	case ra.EqAttr:
		need = []ra.Attr{t.L, t.R}
	case ra.EqConst:
		need = []ra.Attr{t.A}
	default:
		return false
	}
	for _, a := range need {
		if exec.AttrIndex(attrs, a) < 0 {
			return false
		}
	}
	return true
}

func wrapSel(q ra.Query, p ra.Pred) ra.Query {
	if sel, ok := q.(*ra.Select); ok {
		return &ra.Select{In: sel.In, Preds: append(append([]ra.Pred{}, sel.Preds...), p)}
	}
	return &ra.Select{In: q, Preds: []ra.Pred{p}}
}

// Package follower implements read replicas over the write-ahead log.
//
// A follower Node bootstraps from the primary's newest checkpoint
// (GET /wal/snapshot), opens a durable engine on its local copy, and then
// tails the primary's log (GET /wal/stream) from its applied watermark,
// feeding every record through the engine's normal apply path so the
// store, indices, IVM views and plan cache stay warm. The follower keeps
// its own write-ahead log in strict LSN parity with the primary: "the
// write at LSN T" is the same event on both sides, which is what makes
// crash recovery local — a restarted follower recovers from its own
// checkpoint + log and resumes the stream at exactly the next LSN, with
// zero primary-side state.
//
// A Node is a read-only core.Service: queries execute locally, mutations
// fail with ErrReadOnly. Reads can carry a read-your-writes fence — the
// front end calls WaitLSN with the client's MinLSN stamp and the query
// blocks until the applied watermark reaches it.
package follower

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ivm"
	"repro/internal/ra"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// ErrReadOnly is returned by every mutating method of a follower: all
// writes go to the primary and arrive here through the replication
// stream.
var ErrReadOnly = errors.New("follower: read-only replica; write to the primary")

// Defaults for Config fields left zero.
const (
	// DefaultStallAfter is how long without any stream traffic (records
	// or heartbeats) before Health reports the follower degraded.
	DefaultStallAfter = 10 * time.Second
	// DefaultAckEvery is the cadence of applied-watermark acks to the
	// primary's /wal/ack (purely observational).
	DefaultAckEvery = time.Second
	// DefaultReconnectMin and DefaultReconnectMax bound the exponential
	// backoff between stream reconnect attempts.
	DefaultReconnectMin = 100 * time.Millisecond
	DefaultReconnectMax = 2 * time.Second
)

// Config configures a follower Node.
type Config struct {
	// Primary is the primary's base URL, e.g. "http://127.0.0.1:8080".
	Primary string
	// DataDir is the follower's own data directory (checkpoints + log).
	// It must not be shared with the primary or another follower.
	DataDir string
	// ID is the identity the follower streams and acks under, shown in
	// the primary's replication /stats. Default "follower-<pid>".
	ID string
	// WAL tunes the follower's local log (fsync policy, segment size).
	WAL wal.Options
	// CheckpointEvery is the local checkpoint cadence in applied records
	// (core.DefaultCheckpointEvery when zero; negative disables).
	CheckpointEvery int64
	// StallAfter is how long without stream traffic before Health
	// degrades. 0 means DefaultStallAfter.
	StallAfter time.Duration
	// AckEvery is the applied-watermark ack cadence. 0 means
	// DefaultAckEvery.
	AckEvery time.Duration
	// ReconnectMin and ReconnectMax bound the reconnect backoff. 0 means
	// the defaults.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Logger receives connection and recovery events. nil means
	// slog.Default.
	Logger *slog.Logger
}

// withDefaults resolves zero Config fields.
func (c Config) withDefaults() Config {
	if c.ID == "" {
		c.ID = fmt.Sprintf("follower-%d", os.Getpid())
	}
	if c.StallAfter == 0 {
		c.StallAfter = DefaultStallAfter
	}
	if c.AckEvery == 0 {
		c.AckEvery = DefaultAckEvery
	}
	if c.ReconnectMin == 0 {
		c.ReconnectMin = DefaultReconnectMin
	}
	if c.ReconnectMax == 0 {
		c.ReconnectMax = DefaultReconnectMax
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Node is a read replica: a local durable engine kept in LSN parity with
// the primary by tailing its replication stream. It implements
// core.Service (read-only) and the front end's optional interfaces, so
// server.New serves it exactly like a primary — plus the WaitLSN fence
// and the follower /stats block.
type Node struct {
	cfg    Config
	cli    *server.Client
	schema ra.Schema

	eng atomic.Pointer[core.Engine]

	applied    atomic.Uint64 // last LSN applied locally
	primaryLSN atomic.Uint64 // last LSN observed on the primary
	streaming  atomic.Bool
	records    atomic.Int64
	reconnects atomic.Int64
	snapshots  atomic.Int64

	// resumedFrom is the watermark recovered from local state at Open
	// (0 when the follower bootstrapped fresh).
	resumedFrom uint64

	mu          sync.Mutex
	notify      chan struct{} // closed and replaced on every advance
	lastContact time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// Open bootstraps (or resumes) a follower against cfg.Primary and starts
// tailing its log. ctx bounds the bootstrap phase only — schema fetch
// and, on a fresh DataDir, the checkpoint download; the tail loop runs
// until Close. The primary must be reachable at Open (the schema is
// fetched from it); an existing DataDir resumes from its own recovered
// state without downloading a snapshot.
func Open(ctx context.Context, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Primary == "" {
		return nil, errors.New("follower: Config.Primary is required")
	}
	if cfg.DataDir == "" {
		return nil, errors.New("follower: Config.DataDir is required")
	}
	n := &Node{cfg: cfg, cli: server.NewClient(cfg.Primary)}
	sch, err := n.cli.Schema(ctx)
	if err != nil {
		return nil, fmt.Errorf("follower: fetching schema from %s: %w", cfg.Primary, err)
	}
	n.schema = ra.Schema(sch.Relations)
	resumed := wal.HasState(cfg.DataDir)
	if !resumed {
		if err := n.fetchSnapshot(ctx); err != nil {
			return nil, err
		}
	}
	eng, err := n.openEngine()
	if err != nil {
		return nil, err
	}
	n.eng.Store(eng)
	if st, ok := eng.DurabilityStats(); ok {
		n.applied.Store(st.LastLSN)
		n.primaryLSN.Store(st.LastLSN)
		if resumed {
			n.resumedFrom = st.LastLSN
		}
	}
	n.lastContact = time.Now()
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.done = make(chan struct{})
	cfg.Logger.Info("follower open",
		"id", cfg.ID, "primary", cfg.Primary, "applied", n.applied.Load(), "resumed", resumed)
	go n.tailLoop()
	return n, nil
}

// fetchSnapshot downloads the primary's newest checkpoint into DataDir.
func (n *Node) fetchSnapshot(ctx context.Context) error {
	body, lsn, err := n.cli.WALSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("follower: downloading checkpoint from %s: %w", n.cfg.Primary, err)
	}
	defer body.Close()
	got, err := wal.InstallCheckpoint(n.cfg.DataDir, body)
	if err != nil {
		return fmt.Errorf("follower: installing checkpoint: %w", err)
	}
	if got != lsn {
		return fmt.Errorf("follower: checkpoint LSN mismatch: header says %d, primary advertised %d", got, lsn)
	}
	n.snapshots.Add(1)
	return nil
}

// openEngine opens the local durable engine over DataDir (recovery wins
// over the seed arguments, so the installed checkpoint + local log decide
// the state).
func (n *Node) openEngine() (*core.Engine, error) {
	return core.OpenDurable(n.schema, nil, store.NewDB(n.schema), core.DurableConfig{
		Dir:             n.cfg.DataDir,
		WAL:             n.cfg.WAL,
		CheckpointEvery: n.cfg.CheckpointEvery,
	})
}

// tailLoop streams, applies, and reconnects with exponential backoff
// until Close. A 410 from the primary (our position predates its
// retained log) triggers a re-bootstrap from a fresh snapshot.
func (n *Node) tailLoop() {
	defer close(n.done)
	backoff := n.cfg.ReconnectMin
	for {
		before := n.applied.Load()
		err := n.streamOnce()
		if n.ctx.Err() != nil {
			return
		}
		if n.applied.Load() > before {
			backoff = n.cfg.ReconnectMin // made progress; reset backoff
		}
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusGone {
			n.cfg.Logger.Warn("follower position pruned on primary; re-bootstrapping", "id", n.cfg.ID, "applied", n.applied.Load())
			if rbErr := n.rebootstrap(); rbErr != nil {
				n.cfg.Logger.Error("follower re-bootstrap failed", "id", n.cfg.ID, "err", rbErr)
			} else {
				backoff = n.cfg.ReconnectMin
				continue
			}
		} else if err != nil && !errors.Is(err, context.Canceled) {
			n.cfg.Logger.Warn("follower stream ended", "id", n.cfg.ID, "applied", n.applied.Load(), "err", err)
		}
		select {
		case <-n.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > n.cfg.ReconnectMax {
			backoff = n.cfg.ReconnectMax
		}
	}
}

// streamOnce opens one replication stream at the applied watermark and
// applies frames until the stream ends or errors.
func (n *Node) streamOnce() error {
	body, err := n.cli.WALStream(n.ctx, n.applied.Load(), n.cfg.ID)
	if err != nil {
		return err
	}
	defer body.Close()
	n.reconnects.Add(1)
	n.streaming.Store(true)
	defer n.streaming.Store(false)
	n.touchContact()

	lastAck := time.Now()
	var ackedLSN uint64
	maybeAck := func() {
		lsn := n.applied.Load()
		if lsn == ackedLSN || time.Since(lastAck) < n.cfg.AckEvery {
			return
		}
		ackCtx, cancel := context.WithTimeout(n.ctx, n.cfg.AckEvery)
		err := n.cli.WALAck(ackCtx, n.cfg.ID, lsn)
		cancel()
		if err == nil {
			ackedLSN = lsn
		}
		lastAck = time.Now()
	}
	err = wal.ReadFrames(body, func(rec wal.Record) error {
		n.touchContact()
		if rec.Kind == wal.KindHeartbeat {
			if rec.LSN > n.primaryLSN.Load() {
				n.primaryLSN.Store(rec.LSN)
			}
			maybeAck()
			return nil
		}
		if rec.LSN <= n.applied.Load() {
			return nil // duplicate of an already-applied record
		}
		if err := n.apply(rec); err != nil {
			return err
		}
		maybeAck()
		return nil
	})
	// Best-effort final ack so the primary's lag figures settle.
	if lsn := n.applied.Load(); lsn > ackedLSN {
		ackCtx, cancel := context.WithTimeout(context.Background(), n.cfg.AckEvery)
		_ = n.cli.WALAck(ackCtx, n.cfg.ID, lsn)
		cancel()
	}
	if err == nil {
		err = io.ErrUnexpectedEOF // the stream never ends on its own
	}
	return err
}

// apply feeds one streamed record through the engine's normal apply path
// and verifies LSN parity: after the apply, the local log's last LSN must
// equal the record's. The engine appends to the local log itself on every
// tuple write; the two constraint cases it would silently dedupe (adding
// one already installed, removing one not installed) are journaled
// directly so parity holds regardless.
func (n *Node) apply(rec wal.Record) error {
	eng := n.eng.Load()
	if want := n.applied.Load() + 1; rec.LSN != want {
		return fmt.Errorf("follower: stream gap: got LSN %d, want %d", rec.LSN, want)
	}
	var err error
	switch rec.Kind {
	case wal.KindTuple:
		if rec.Op.Del {
			_, err = eng.Delete(rec.Op.Rel, rec.Op.T)
		} else {
			_, err = eng.Insert(rec.Op.Rel, rec.Op.T)
		}
	case wal.KindAddConstraint:
		if hasConstraint(eng, rec.Con) {
			err = journal(eng, rec)
		} else {
			err = eng.AddConstraints(rec.Con)
		}
	case wal.KindRemoveConstraint:
		if hasConstraint(eng, rec.Con) {
			eng.RemoveConstraint(rec.Con)
		} else {
			err = journal(eng, rec)
		}
	default:
		return fmt.Errorf("follower: unknown record kind %d at LSN %d", rec.Kind, rec.LSN)
	}
	if err != nil {
		return fmt.Errorf("follower: applying LSN %d: %w", rec.LSN, err)
	}
	st, ok := eng.DurabilityStats()
	if !ok || st.LastLSN != rec.LSN {
		return fmt.Errorf("follower: LSN divergence after applying %d: local log at %d", rec.LSN, st.LastLSN)
	}
	if rec.LSN > n.primaryLSN.Load() {
		n.primaryLSN.Store(rec.LSN)
	}
	n.records.Add(1)
	n.advance(rec.LSN)
	return nil
}

// hasConstraint reports whether the engine currently has con installed.
func hasConstraint(eng *core.Engine, con access.Constraint) bool {
	key := con.Key()
	for _, c := range eng.AccessSnapshot().Constraints {
		if c.Key() == key {
			return true
		}
	}
	return false
}

// journal appends rec to the local log without applying it — the apply
// would be a no-op the engine refuses to journal itself (constraint
// dedup), but the follower must consume the LSN to stay in parity.
// Replay of constraint records is idempotent, so recovery tolerates the
// duplicate. Safe because the follower applies from a single goroutine
// with no other writers.
func journal(eng *core.Engine, rec wal.Record) error {
	lsn, err := eng.WAL().Append(wal.Record{Kind: rec.Kind, Con: rec.Con})
	if err == nil && lsn != rec.LSN {
		return fmt.Errorf("follower: journal assigned LSN %d, want %d", lsn, rec.LSN)
	}
	return err
}

// advance publishes a new applied watermark and wakes WaitLSN blockers.
func (n *Node) advance(lsn uint64) {
	n.applied.Store(lsn)
	n.mu.Lock()
	if n.notify != nil {
		close(n.notify)
		n.notify = nil
	}
	n.mu.Unlock()
}

// touchContact records traffic from the primary for the stall check.
func (n *Node) touchContact() {
	n.mu.Lock()
	n.lastContact = time.Now()
	n.mu.Unlock()
}

// rebootstrap discards local log state and restarts from the primary's
// newest checkpoint: the follower fell so far behind that its position
// was pruned. The old engine keeps serving concurrent readers until the
// swap; the applied watermark only ever jumps forward.
func (n *Node) rebootstrap() error {
	old := n.eng.Load()
	_ = old.Close() // stop the old log's timers; queries keep working
	for _, pat := range []string{"wal-*.seg", "checkpoint-*.snap"} {
		matches, err := filepath.Glob(filepath.Join(n.cfg.DataDir, pat))
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil {
				return err
			}
		}
	}
	if err := n.fetchSnapshot(n.ctx); err != nil {
		return err
	}
	eng, err := n.openEngine()
	if err != nil {
		return err
	}
	n.eng.Store(eng)
	if st, ok := eng.DurabilityStats(); ok {
		n.advance(st.LastLSN)
		if st.LastLSN > n.primaryLSN.Load() {
			n.primaryLSN.Store(st.LastLSN)
		}
	}
	n.cfg.Logger.Info("follower re-bootstrapped", "id", n.cfg.ID, "applied", n.applied.Load())
	return nil
}

// WaitLSN blocks until the applied watermark reaches lsn or ctx ends —
// the read-your-writes fence behind QueryRequest.MinLSN.
func (n *Node) WaitLSN(ctx context.Context, lsn uint64) error {
	for {
		if n.applied.Load() >= lsn {
			return nil
		}
		n.mu.Lock()
		if n.notify == nil {
			n.notify = make(chan struct{})
		}
		ch := n.notify
		n.mu.Unlock()
		if n.applied.Load() >= lsn {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// FollowerStatus reports the follower-side replication view for /stats.
func (n *Node) FollowerStatus() server.FollowerStatsWire {
	n.mu.Lock()
	lc := n.lastContact
	n.mu.Unlock()
	return server.FollowerStatsWire{
		Primary:            n.cfg.Primary,
		ID:                 n.cfg.ID,
		AppliedLSN:         n.applied.Load(),
		PrimaryLSN:         n.primaryLSN.Load(),
		Streaming:          n.streaming.Load(),
		LastContactSeconds: time.Since(lc).Seconds(),
		RecordsApplied:     n.records.Load(),
		Reconnects:         n.reconnects.Load(),
		SnapshotsFetched:   n.snapshots.Load(),
	}
}

// ResumedFrom returns the watermark recovered from local state at Open
// (0 when the follower bootstrapped from a downloaded snapshot).
func (n *Node) ResumedFrom() uint64 { return n.resumedFrom }

// AppliedLSN returns the applied watermark.
func (n *Node) AppliedLSN() uint64 { return n.applied.Load() }

// Health reports nil while the local engine is intact and the stream has
// seen traffic within StallAfter; otherwise the error describes the
// degradation (GET /healthz turns it into 503).
func (n *Node) Health() error {
	if err := n.eng.Load().Health(); err != nil {
		return err
	}
	n.mu.Lock()
	lc := n.lastContact
	n.mu.Unlock()
	if since := time.Since(lc); since > n.cfg.StallAfter {
		return fmt.Errorf("follower: no contact with primary for %v (threshold %v)",
			since.Round(time.Millisecond), n.cfg.StallAfter)
	}
	return nil
}

// Close stops the tail loop, waits for it, and closes the local engine.
func (n *Node) Close() error {
	n.cancel()
	<-n.done
	return n.eng.Load().Close()
}

// Schema returns the relational schema (fetched from the primary).
func (n *Node) Schema() ra.Schema { return n.eng.Load().Schema() }

// Parse parses a rule-language query against the follower's schema.
func (n *Node) Parse(src string) (ra.Query, error) { return n.eng.Load().Parse(src) }

// Execute runs a query against the local replica.
func (n *Node) Execute(q ra.Query, opts core.Options) (*exec.Table, *core.Report, error) {
	return n.eng.Load().Execute(q, opts)
}

// Insert fails with ErrReadOnly: write to the primary.
func (n *Node) Insert(rel string, t value.Tuple) (bool, error) { return false, ErrReadOnly }

// Delete fails with ErrReadOnly: write to the primary.
func (n *Node) Delete(rel string, t value.Tuple) (bool, error) { return false, ErrReadOnly }

// AddConstraints fails with ErrReadOnly: install constraints on the
// primary and they replicate here.
func (n *Node) AddConstraints(cs ...access.Constraint) error { return ErrReadOnly }

// RemoveConstraint refuses (read-only) and reports false.
func (n *Node) RemoveConstraint(c access.Constraint) bool { return false }

// AccessSnapshot returns the replicated access schema.
func (n *Node) AccessSnapshot() *access.Schema { return n.eng.Load().AccessSnapshot() }

// Version returns the local engine's data version.
func (n *Node) Version() uint64 { return n.eng.Load().Version() }

// CacheStats returns the local plan-cache counters.
func (n *Node) CacheStats() cache.Stats { return n.eng.Load().CacheStats() }

// SetPlanCacheCapacity resizes the local plan cache.
func (n *Node) SetPlanCacheCapacity(capacity int) { n.eng.Load().SetPlanCacheCapacity(capacity) }

// DBSize returns total tuples across the replica's base relations.
func (n *Node) DBSize() int64 { return n.eng.Load().DBSize() }

// IndexEntries returns total index entries on the replica.
func (n *Node) IndexEntries() int64 { return n.eng.Load().IndexEntries() }

// IVMStats returns the local materialized-answer counters: views are
// maintained on the follower by the replicated writes flowing through
// the normal apply path.
func (n *Node) IVMStats() ivm.Stats { return n.eng.Load().IVMStats() }

// SetIVMConfig enables (or disables) incremental view maintenance on the
// local replica. Purely local: each follower decides its own budget.
func (n *Node) SetIVMConfig(cfg ivm.Config) { n.eng.Load().SetIVMConfig(cfg) }

// DurabilityStats exposes the local log counters (the follower is itself
// durable).
func (n *Node) DurabilityStats() (wal.Stats, bool) { return n.eng.Load().DurabilityStats() }

// WAL exposes the follower's local log: because it is in LSN parity with
// the primary, a follower can itself serve /wal/stream to downstream
// followers (cascading replication).
func (n *Node) WAL() *wal.Log { return n.eng.Load().WAL() }

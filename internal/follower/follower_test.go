package follower

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/ra"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
)

// testSchema is the Example-1 graph-search scenario used across the repo.
func testSchema() (ra.Schema, *access.Schema) {
	schema := ra.Schema{
		"friend": {"pid", "fid"},
		"cafe":   {"cid", "city"},
		"dine":   {"pid", "cid"},
	}
	A := access.NewSchema(
		access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000},
		access.Constraint{Rel: "dine", X: []string{"pid"}, Y: []string{"cid"}, N: 31},
		access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1},
	)
	return schema, A
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startPrimary opens a durable engine in its own directory and serves it
// over a loopback listener.
func startPrimary(t testing.TB, walOpts wal.Options, ckEvery int64) (*core.Engine, *server.Client, string) {
	t.Helper()
	schema, A := testSchema()
	eng, err := core.OpenDurable(schema, A, store.NewDB(schema), core.DurableConfig{
		Dir:             t.TempDir(),
		WAL:             walOpts,
		CheckpointEvery: ckEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	cli, url := serveOver(t, eng)
	return eng, cli, url
}

// serveOver serves any core.Service on a loopback listener, returning a
// ready client and the base URL.
func serveOver(t testing.TB, svc core.Service) (*server.Client, string) {
	return serveOverCfg(t, svc, server.Config{})
}

// serveOverCfg is serveOver with an explicit server configuration.
func serveOverCfg(t testing.TB, svc core.Service, cfg server.Config) (*server.Client, string) {
	t.Helper()
	cfg.Logger = quietLogger()
	srv := server.New(svc, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	cli := server.NewClient(srv.Addr())
	if err := cli.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return cli, srv.Addr()
}

// openFollower opens a follower node against primary and serves it.
func openFollower(t testing.TB, primary, dir string) (*Node, *server.Client) {
	t.Helper()
	n, err := Open(context.Background(), Config{
		Primary:  "http://" + primary,
		DataDir:  dir,
		ID:       "test-" + dir[len(dir)-8:],
		AckEvery: 10 * time.Millisecond,
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	cli, _ := serveOver(t, n)
	return n, cli
}

// rowKeys sorts a response's rows into canonical tuple keys.
func rowKeys(resp *server.QueryResponse) []string {
	keys := make([]string, 0, len(resp.Rows))
	for _, tup := range resp.RowTuples() {
		keys = append(keys, tup.Key())
	}
	sort.Strings(keys)
	return keys
}

// seedRows writes the standard scenario through the primary's HTTP front
// end and returns the final batch LSN.
func seedRows(t testing.TB, cli *server.Client) uint64 {
	t.Helper()
	ctx := context.Background()
	var lsn uint64
	for _, batch := range []struct {
		rel  string
		rows []value.Tuple
	}{
		{"friend", []value.Tuple{
			{value.NewInt(0), value.NewInt(1)},
			{value.NewInt(0), value.NewInt(2)},
		}},
		{"dine", []value.Tuple{
			{value.NewInt(1), value.NewInt(10)},
			{value.NewInt(2), value.NewInt(11)},
		}},
		{"cafe", []value.Tuple{
			{value.NewInt(10), value.NewStr("nyc")},
			{value.NewInt(11), value.NewStr("sf")},
		}},
	} {
		resp, err := cli.Insert(ctx, batch.rel, batch.rows)
		if err != nil {
			t.Fatal(err)
		}
		if resp.LSN == 0 {
			t.Fatal("durable primary must stamp MutateResponse.LSN")
		}
		lsn = resp.LSN
	}
	return lsn
}

const friendQuery = "q(city) :- friend(0, f), dine(f, c), cafe(c, city)"

// fencedQuery runs query on cli with a MinLSN read-your-writes fence.
func fencedQuery(t testing.TB, cli *server.Client, query string, minLSN uint64) *server.QueryResponse {
	t.Helper()
	resp, err := cli.QueryOpts(context.Background(), server.QueryRequest{Query: query, MinLSN: minLSN})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFollowerServesReplicatedReads(t *testing.T) {
	eng, pcli, purl := startPrimary(t, wal.Options{}, -1)
	_, f1 := openFollower(t, purl, t.TempDir())
	_, f2 := openFollower(t, purl, t.TempDir())

	lsn := seedRows(t, pcli)
	want := rowKeys(fencedQuery(t, pcli, friendQuery, 0))
	if len(want) != 2 {
		t.Fatalf("primary answered %d rows, want 2", len(want))
	}
	for i, fcli := range []*server.Client{f1, f2} {
		resp := fencedQuery(t, fcli, friendQuery, lsn)
		if got := rowKeys(resp); strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("follower %d diverges: got %v want %v", i+1, got, want)
		}
		if !resp.Covered || !resp.Bounded {
			t.Fatalf("follower %d lost coverage: covered=%v bounded=%v", i+1, resp.Covered, resp.Bounded)
		}
	}

	// A delete and an insert replicate too, and the fence makes them
	// visible without sleeps.
	ctx := context.Background()
	if _, err := pcli.Delete(ctx, "dine", []value.Tuple{{value.NewInt(2), value.NewInt(11)}}); err != nil {
		t.Fatal(err)
	}
	ins, err := pcli.Insert(ctx, "cafe", []value.Tuple{{value.NewInt(12), value.NewStr("la")}})
	if err != nil {
		t.Fatal(err)
	}
	want = rowKeys(fencedQuery(t, pcli, friendQuery, 0))
	for i, fcli := range []*server.Client{f1, f2} {
		if got := rowKeys(fencedQuery(t, fcli, friendQuery, ins.LSN)); strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("follower %d diverges after delete: got %v want %v", i+1, got, want)
		}
	}

	// A constraint change replicates through the same stream: removing
	// cafe's constraint uncovers the query on primary and followers alike.
	con := access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1}
	if !eng.RemoveConstraint(con) {
		t.Fatal("primary should have the cafe constraint installed")
	}
	st, _ := eng.DurabilityStats()
	for i, fcli := range []*server.Client{f1, f2} {
		if resp := fencedQuery(t, fcli, friendQuery, st.LastLSN); resp.Covered {
			t.Fatalf("follower %d still covered after constraint removal", i+1)
		}
	}
	if err := eng.AddConstraints(con); err != nil {
		t.Fatal(err)
	}
	st, _ = eng.DurabilityStats()
	for i, fcli := range []*server.Client{f1, f2} {
		if resp := fencedQuery(t, fcli, friendQuery, st.LastLSN); !resp.Covered {
			t.Fatalf("follower %d not covered after constraint re-add", i+1)
		}
	}
}

func TestFollowerFenceTimesOut(t *testing.T) {
	_, pcli, purl := startPrimary(t, wal.Options{}, -1)
	lsn := seedRows(t, pcli)
	n, err := Open(context.Background(), Config{
		Primary: "http://" + purl, DataDir: t.TempDir(), Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if err := n.WaitLSN(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	// A fence far beyond the primary's LSN cannot be satisfied: the read
	// must answer 504 when the server deadline passes, not hang forever
	// or return stale data.
	fcli, _ := serveOverCfg(t, n, server.Config{RequestTimeout: 300 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = fcli.QueryOpts(ctx, server.QueryRequest{Query: friendQuery, MinLSN: lsn + 1_000_000})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("want 504 APIError for unreachable fence, got %v", err)
	}
}

func TestFollowerRestartResumesLocally(t *testing.T) {
	_, pcli, purl := startPrimary(t, wal.Options{}, -1)
	lsn := seedRows(t, pcli)
	dir := t.TempDir()
	n1, _ := openFollower(t, purl, dir)
	if err := n1.WaitLSN(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	if n1.ResumedFrom() != 0 {
		t.Fatalf("fresh follower claims resume from %d", n1.ResumedFrom())
	}
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes land while the follower is down.
	ins, err := pcli.Insert(context.Background(), "friend", []value.Tuple{{value.NewInt(0), value.NewInt(3)}})
	if err != nil {
		t.Fatal(err)
	}

	n2, fcli := openFollower(t, purl, dir)
	if n2.ResumedFrom() == 0 {
		t.Fatal("restarted follower should resume from local state")
	}
	if n2.FollowerStatus().SnapshotsFetched != 0 {
		t.Fatal("resume must not download a snapshot")
	}
	want := rowKeys(fencedQuery(t, pcli, friendQuery, 0))
	if got := rowKeys(fencedQuery(t, fcli, friendQuery, ins.LSN)); strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("resumed follower diverges: got %v want %v", got, want)
	}
}

func TestFollowerRebootstrapsAfterPrune(t *testing.T) {
	// Small segments + aggressive checkpoints so the primary prunes the
	// log past a stopped follower's position.
	eng, pcli, purl := startPrimary(t, wal.Options{SegmentBytes: 512}, -1)
	lsn := seedRows(t, pcli)
	dir := t.TempDir()
	n1, _ := openFollower(t, purl, dir)
	if err := n1.WaitLSN(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}

	// Push the log far past the follower and checkpoint twice: segment
	// pruning keeps only the tail, so the follower's position is gone.
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		for j := 0; j < 40; j++ {
			if _, err := pcli.Insert(ctx, "friend", []value.Tuple{{value.NewInt(int64(100 + i)), value.NewInt(int64(j))}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	log := eng.WAL()
	oldest, ok := log.OldestLSN()
	if !ok || oldest <= lsn+1 {
		t.Skipf("primary did not prune past the follower (oldest %d, follower at %d)", oldest, lsn)
	}

	n2, fcli := openFollower(t, purl, dir)
	last := log.LastLSN()
	if err := n2.WaitLSN(ctx, last); err != nil {
		t.Fatal(err)
	}
	if n2.FollowerStatus().SnapshotsFetched == 0 {
		t.Fatal("pruned follower must re-bootstrap from a snapshot")
	}
	want := rowKeys(fencedQuery(t, pcli, friendQuery, 0))
	if got := rowKeys(fencedQuery(t, fcli, friendQuery, last)); strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("re-bootstrapped follower diverges: got %v want %v", got, want)
	}
}

func TestFollowerIsReadOnly(t *testing.T) {
	_, pcli, purl := startPrimary(t, wal.Options{}, -1)
	seedRows(t, pcli)
	n, fcli := openFollower(t, purl, t.TempDir())

	if _, err := n.Insert("friend", value.Tuple{value.NewInt(9), value.NewInt(9)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert: want ErrReadOnly, got %v", err)
	}
	if _, err := n.Delete("friend", value.Tuple{value.NewInt(0), value.NewInt(1)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete: want ErrReadOnly, got %v", err)
	}
	if err := n.AddConstraints(access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 1}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AddConstraints: want ErrReadOnly, got %v", err)
	}
	if n.RemoveConstraint(access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1}) {
		t.Fatal("RemoveConstraint on a follower must refuse")
	}
	// And over HTTP: the front end surfaces the refusal as an error.
	if _, err := fcli.Insert(context.Background(), "friend", []value.Tuple{{value.NewInt(9), value.NewInt(9)}}); err == nil {
		t.Fatal("HTTP insert against a follower must fail")
	}
}

func TestFollowerHealthDegradesOnStall(t *testing.T) {
	schema, A := testSchema()
	eng, err := core.OpenDurable(schema, A, store.NewDB(schema), core.DurableConfig{
		Dir: t.TempDir(), CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{Logger: quietLogger()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	pcli := server.NewClient(srv.Addr())
	if err := pcli.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	n, err := Open(context.Background(), Config{
		Primary:    "http://" + srv.Addr(),
		DataDir:    t.TempDir(),
		StallAfter: 150 * time.Millisecond,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Health(); err != nil {
		t.Fatalf("fresh follower must be healthy, got %v", err)
	}

	// Kill the primary: the stream dies, reconnects fail, and within
	// StallAfter the follower reports itself degraded.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n.Health() != nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("follower stayed healthy after losing its primary")
}

func TestReplicationStatsBlocks(t *testing.T) {
	_, pcli, purl := startPrimary(t, wal.Options{}, -1)
	lsn := seedRows(t, pcli)
	n, fcli := openFollower(t, purl, t.TempDir())
	if err := n.WaitLSN(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}

	// Follower-side /stats carries its replica view.
	fstats, err := fcli.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fstats.Follower == nil {
		t.Fatal("follower /stats missing follower block")
	}
	if fstats.Follower.AppliedLSN < lsn || !fstats.Follower.Streaming {
		t.Fatalf("follower block %+v: want applied >= %d and streaming", fstats.Follower, lsn)
	}
	if fstats.Replication != nil {
		t.Fatal("a follower with no downstream followers should omit the replication block")
	}

	// Primary-side /stats names the follower once its ack lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		pstats, err := pcli.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if pstats.Replication != nil {
			var fw *server.FollowerConnWire
			for i := range pstats.Replication.Followers {
				if pstats.Replication.Followers[i].ID == n.cfg.ID {
					fw = &pstats.Replication.Followers[i]
				}
			}
			if fw != nil && fw.Connected && fw.AckedLSN >= lsn {
				if fw.LagRecords != 0 {
					t.Fatalf("caught-up follower shows lag %d", fw.LagRecords)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never reported follower ack; last stats %+v", pstats.Replication)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestFollowerCascadesStream(t *testing.T) {
	// A follower serves /wal/stream itself (LSN parity makes its local
	// log identical), so a second-tier follower can tail the first.
	_, pcli, purl := startPrimary(t, wal.Options{}, -1)
	lsn := seedRows(t, pcli)
	mid, _ := openFollower(t, purl, t.TempDir())
	if err := mid.WaitLSN(context.Background(), lsn); err != nil {
		t.Fatal(err)
	}
	midCli, midURL := serveOver(t, mid)
	_ = midCli
	leaf, leafCli := openFollower(t, midURL, t.TempDir())

	ins, err := pcli.Insert(context.Background(), "friend", []value.Tuple{{value.NewInt(0), value.NewInt(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := leaf.WaitLSN(context.Background(), ins.LSN); err != nil {
		t.Fatal(err)
	}
	want := rowKeys(fencedQuery(t, pcli, friendQuery, 0))
	if got := rowKeys(fencedQuery(t, leafCli, friendQuery, ins.LSN)); strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("second-tier follower diverges: got %v want %v", got, want)
	}
}

package follower

// The follower crash harness: a child process runs a follower node
// tailing a primary hosted by the parent, publishing its applied
// watermark to a side file. The parent SIGKILLs the child mid-stream,
// keeps writing, then reopens the same data directory and proves the
// follower resumes from its own recovered LSN — no snapshot download,
// zero primary-side state — and converges to a state differentially
// identical to the primary.

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/wal"
)

// Environment handed to the SIGKILL child; TestFollowerCrashChild is
// inert unless both are set.
const (
	crashChildPrimaryEnv = "BOUNDED_FOLLOWER_CHILD_PRIMARY"
	crashChildDirEnv     = "BOUNDED_FOLLOWER_CHILD_DIR"
)

// appliedPath is the side file where the child publishes its applied
// watermark (written atomically via rename).
func appliedPath(dir string) string { return filepath.Join(dir, "applied") }

// TestFollowerCrashChild is the victim process of
// TestFollowerCrashResume: it opens a follower in the directory named by
// the environment, tails the parent's primary, and publishes every
// applied watermark until the parent kills it.
func TestFollowerCrashChild(t *testing.T) {
	primary, dir := os.Getenv(crashChildPrimaryEnv), os.Getenv(crashChildDirEnv)
	if primary == "" || dir == "" {
		t.Skip("crash child: run only as a subprocess of TestFollowerCrashResume")
	}
	n, err := Open(context.Background(), Config{
		Primary: primary,
		DataDir: dir,
		ID:      "crash-child",
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tmp := appliedPath(dir) + ".tmp"
	for {
		lsn := n.AppliedLSN()
		if err := os.WriteFile(tmp, []byte(strconv.FormatUint(lsn, 10)), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, appliedPath(dir)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

// readApplied returns the last applied LSN the child published, or 0.
func readApplied(dir string) uint64 {
	b, err := os.ReadFile(appliedPath(dir))
	if err != nil {
		return 0
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// TestFollowerCrashResume re-executes this test binary as a child
// follower, SIGKILLs it mid-stream while the primary keeps writing, then
// reopens the same directory and requires (a) resume from the locally
// recovered LSN with no snapshot download, and (b) a fenced differential
// identical to the primary once caught up.
func TestFollowerCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot re-exec test binary: %v", err)
	}
	_, pcli, purl := startPrimary(t, wal.Options{}, -1)
	seedRows(t, pcli)

	// Write storm against the primary for the whole life of the child:
	// the kill lands mid-stream, not in a quiet moment.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			row := []value.Tuple{{value.NewInt(int64(i % 50)), value.NewInt(int64(1000 + i%97))}}
			if _, err := pcli.Insert(ctx, "friend", row); err != nil {
				return
			}
			if i%3 == 0 {
				if _, err := pcli.Delete(ctx, "friend", row); err != nil {
					return
				}
			}
		}
	}()
	defer func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		wg.Wait()
	}()

	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run=^TestFollowerCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashChildPrimaryEnv+"=http://"+purl,
		crashChildDirEnv+"="+dir)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the child apply a healthy stretch of the stream, then kill it
	// with no warning whatsoever.
	deadline := time.Now().Add(30 * time.Second)
	for readApplied(dir) < 40 {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("child never applied 40 records; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // the kill makes the child's exit status uninteresting

	// The primary keeps writing past the kill, then the storm stops and
	// the surviving directory is reopened.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	n, fcli := openFollower(t, purl, dir)
	if n.ResumedFrom() == 0 {
		t.Fatal("killed follower must resume from locally recovered state")
	}
	st := n.FollowerStatus()
	if st.SnapshotsFetched != 0 {
		t.Fatalf("resume downloaded %d snapshots; local recovery should need none", st.SnapshotsFetched)
	}

	pstats, err := pcli.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pstats.Durability == nil {
		t.Fatal("primary /stats missing durability block")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := n.WaitLSN(ctx, pstats.Durability.LastLSN); err != nil {
		t.Fatalf("resumed follower never caught up to LSN %d: %v", pstats.Durability.LastLSN, err)
	}
	for _, q := range []string{
		friendQuery,
		"q(f) :- friend(0, f)",
		"q(city) :- cafe(10, city)",
	} {
		want := rowKeys(fencedQuery(t, pcli, q, 0))
		if got := rowKeys(fencedQuery(t, fcli, q, pstats.Durability.LastLSN)); strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("resumed follower diverges on %q: got %v want %v", q, got, want)
		}
	}
}

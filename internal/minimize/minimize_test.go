package minimize

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/ra"
	"repro/internal/value"
	"repro/internal/workload"
)

// example9 builds Q1 and A1 = A0 ∪ {ψ5: dine((pid,year) → cid, 366)} from
// Example 9.
func example9() (ra.Query, ra.Schema, *access.Schema) {
	fb := &workload.Facebook{
		Schema: workload.FacebookSchema(),
		Access: workload.FacebookAccess(),
		Me:     value.NewInt(0),
	}
	a1 := access.NewSchema(append(append([]access.Constraint{}, fb.Access.Constraints...),
		access.Constraint{Rel: "dine", X: []string{"pid", "year"}, Y: []string{"cid"}, N: 366})...)
	return fb.Q1(), fb.Schema, a1
}

func checkRes(t *testing.T, q ra.Query, s ra.Schema, A *access.Schema) *cover.Result {
	t.Helper()
	norm, err := ra.Normalize(q, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Check(norm, s, A)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("query not covered in test setup")
	}
	return res
}

func keys(A *access.Schema) map[string]bool {
	out := map[string]bool{}
	for _, c := range A.Constraints {
		out[c.Key()] = true
	}
	return out
}

// TestMinAExample9 reproduces Example 9: under A1, minA drops ψ5 (N=366)
// and ψ3, keeping {ψ1, ψ2, ψ4}.
func TestMinAExample9(t *testing.T) {
	q, s, a1 := example9()
	res := checkRes(t, q, s, a1)
	am, err := MinA(res, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := keys(am)
	for _, want := range []string{"friend(pid->fid)", "dine(pid,year,month->cid)", "cafe(cid->city)"} {
		if !k[want] {
			t.Errorf("Am missing %s: %v", want, k)
		}
	}
	if k["dine(pid,year->cid)"] {
		t.Error("minA kept ψ5 (N=366) over ψ2 (N=31)")
	}
	if k["dine(pid,cid->pid,cid)"] {
		t.Error("minA kept unnecessary ψ3")
	}
	// Minimality guarantee of Theorem 10(1).
	minimal, err := IsMinimal(res.Query, s, am)
	if err != nil {
		t.Fatal(err)
	}
	if !minimal {
		t.Error("minA result is not minimal")
	}
	// Q stays covered under Am.
	if check, _ := cover.Check(res.Query, s, am); !check.Covered {
		t.Error("Q not covered by Am")
	}
}

func TestMinARejectsUncovered(t *testing.T) {
	fb := &workload.Facebook{
		Schema: workload.FacebookSchema(),
		Access: workload.FacebookAccess(),
		Me:     value.NewInt(0),
	}
	norm, _ := ra.Normalize(fb.Q2(), fb.Schema)
	res, err := cover.Check(norm, fb.Schema, fb.Access)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinA(res, DefaultOptions()); err == nil {
		t.Error("MinA accepted an uncovered query")
	}
}

func TestMinADAGExample10(t *testing.T) {
	q, s, a1 := example9()
	res := checkRes(t, q, s, a1)
	if !IsAcyclic(res) {
		t.Skip("instance unexpectedly cyclic")
	}
	am, err := MinADAG(res)
	if err != nil {
		t.Fatal(err)
	}
	k := keys(am)
	// Example 10: shortest hyperpath to cid uses ψ2 (31), not ψ5 (366).
	if k["dine(pid,year->cid)"] {
		t.Errorf("minADAG chose ψ5 over cheaper ψ2: %v", k)
	}
	if !k["dine(pid,year,month->cid)"] {
		t.Errorf("minADAG missing ψ2: %v", k)
	}
	if check, _ := cover.Check(res.Query, s, am); !check.Covered {
		t.Error("minADAG result does not cover Q")
	}
	// minADAG must not cost more than the full schema.
	if am.SumN() > a1.SumN() {
		t.Errorf("minADAG increased ΣN: %d > %d", am.SumN(), a1.SumN())
	}
}

func TestMinAEElementaryCase(t *testing.T) {
	s := ra.Schema{"r": {"a", "b"}, "s": {"b", "c"}}
	A := access.NewSchema(
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 4},   // unit
		access.Constraint{Rel: "s", X: []string{"b"}, Y: []string{"c"}, N: 7},   // unit
		access.Constraint{Rel: "s", X: []string{"b"}, Y: []string{"c"}, N: 7},   // dup, dropped
		access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"a"}, N: 1},   // indexing
		access.Constraint{Rel: "s", X: []string{"b"}, Y: []string{"b"}, N: 1},   // indexing
		access.Constraint{Rel: "r", X: []string{"b"}, Y: []string{"a"}, N: 100}, // expensive unit
	)
	if !IsElementary(A) {
		t.Fatal("schema should be elementary")
	}
	q := ra.Proj(
		ra.Sel(ra.Prod(ra.R("r", "r1"), ra.R("s", "s1")),
			ra.EqC(ra.A("r1", "a"), value.NewInt(1)),
			ra.Eq(ra.A("r1", "b"), ra.A("s1", "b"))),
		ra.A("s1", "b"),
	)
	res := checkRes(t, q, s, A)
	am, err := MinAE(res)
	if err != nil {
		t.Fatal(err)
	}
	k := keys(am)
	if k["r(b->a)"] {
		t.Error("minAE kept expensive irrelevant constraint")
	}
	if check, _ := cover.Check(res.Query, s, am); !check.Covered {
		t.Error("minAE result does not cover Q")
	}
}

func TestMinAENonElementaryRejected(t *testing.T) {
	q, s, a1 := example9()
	res := checkRes(t, q, s, a1)
	if IsElementary(a1) {
		t.Fatal("A1 should not be elementary (ψ2 has |X|=3)")
	}
	if _, err := MinAE(res); err == nil {
		t.Error("MinAE accepted a non-elementary instance")
	}
}

// TestMinimizersNeverIncreaseCost: on the benchmark datasets, all three
// minimizers (where applicable) return covering subsets with ΣN ≤ ΣN(A).
func TestMinimizersNeverIncreaseCost(t *testing.T) {
	d := workload.Airca()
	qsrc := []ra.Query{}
	// Build a few simple covered queries over single relations.
	q1 := ra.Proj(
		ra.Sel(ra.R("ontime", "o1"), ra.EqC(ra.A("o1", "origin"), value.NewInt(3))),
		ra.A("o1", "airline"),
	)
	qsrc = append(qsrc, q1)
	for _, q := range qsrc {
		res := checkRes(t, q, d.Schema, d.Access)
		am, err := MinA(res, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if am.SumN() > d.Access.SumN() {
			t.Errorf("minA increased ΣN")
		}
		if minimal, _ := IsMinimal(res.Query, d.Schema, am); !minimal {
			t.Error("minA not minimal")
		}
		if IsAcyclic(res) {
			amd, err := MinADAG(res)
			if err != nil {
				t.Fatal(err)
			}
			if amd.SumN() > d.Access.SumN() {
				t.Errorf("minADAG increased ΣN")
			}
		}
	}
}

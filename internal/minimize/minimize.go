// Package minimize implements the access minimization problem AMP(Q,A) of
// Section 6: find a subset Am ⊆ A that still covers Q while minimizing
// Σ_{R(X→Y,N)∈Am} N. The problem is NP-complete and not in APX (Theorem 9),
// so the package provides the paper's heuristics: the general greedy minA
// (Theorem 10(1)), the shortest-hyperpath minADAG for acyclic instances
// (Theorem 10(2)) and the Steiner-arborescence minAE for elementary
// instances (Theorem 10(3)).
package minimize

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/hypergraph"
	"repro/internal/plan"
	"repro/internal/ra"
)

// Options tunes the greedy heuristic minA. C1 and C2 are the user-tunable
// normalizing coefficients of the weight w(φ) = C1·Nφ / (C2·(covloss+1)).
type Options struct {
	C1, C2 float64
}

// DefaultOptions uses C1 = C2 = 1 as in Example 9.
func DefaultOptions() Options { return Options{C1: 1, C2: 1} }

// MinA runs the general greedy heuristic: it iteratively removes the
// removable constraint of maximum weight until the remaining set is
// minimal. The result always covers the query (Theorem 10(1)).
func MinA(res *cover.Result, opts Options) (*access.Schema, error) {
	if !res.Covered {
		return nil, fmt.Errorf("minimize: query is not covered")
	}
	if opts.C1 == 0 {
		opts.C1 = 1
	}
	if opts.C2 == 0 {
		opts.C2 = 1
	}
	cur := access.NewSchema(res.Access.Constraints...)
	baseCov := coveredCount(res)

	// Seeding: select the constraints on minimum-weight hyperpaths to the
	// needed classes (the Dijkstra-style search is valid on cyclic
	// hypergraphs too), plus the chosen indexing constraints. This both
	// shrinks the quadratic greedy loop's candidate set and starts from
	// cheap derivations — e.g. an N=6 chain is preferred over an N=304
	// shortcut even before the greedy refinement. Coverage is re-verified;
	// on failure we fall back to the full schema.
	if seed, err := shortestPathSupport(res); err == nil && len(seed) < cur.Len() {
		trial := cur.Subset(seed)
		tr, err := cover.Check(res.Query, res.Schema, trial)
		if err != nil {
			return nil, err
		}
		if tr.Covered {
			cur = trial
			baseCov = coveredCount(tr)
		}
	}
	for {
		type cand struct {
			key    string
			weight float64
		}
		var best *cand
		var bestRes *cover.Result
		var bestSchema *access.Schema
		for _, c := range cur.Constraints {
			trial := cur.Without(c.Key())
			tr, err := cover.Check(res.Query, res.Schema, trial)
			if err != nil {
				return nil, err
			}
			if !tr.Covered {
				continue
			}
			loss := baseCov - coveredCount(tr)
			if loss < 0 {
				loss = 0
			}
			w := (opts.C1 * float64(c.N)) / (opts.C2 * float64(loss+1))
			if best == nil || w > best.weight || (w == best.weight && c.Key() < best.key) {
				best = &cand{key: c.Key(), weight: w}
				bestRes = tr
				bestSchema = trial
			}
		}
		if best == nil {
			return cur, nil
		}
		cur = bestSchema
		baseCov = coveredCount(bestRes)
	}
}

// coveredCount is |cov(Q,A)| summed over the max SPC sub-queries.
func coveredCount(res *cover.Result) int {
	n := 0
	for _, sub := range res.Subs {
		n += len(sub.Cov.Order)
	}
	return n
}

// IsMinimal verifies that removing any single constraint from Am breaks
// coverage — the guarantee of Theorem 10(1).
func IsMinimal(q ra.Query, s ra.Schema, Am *access.Schema) (bool, error) {
	for _, c := range Am.Constraints {
		tr, err := cover.Check(q, s, Am.Without(c.Key()))
		if err != nil {
			return false, err
		}
		if tr.Covered {
			return false, nil
		}
	}
	return true, nil
}

// IsAcyclic reports whether (Q,A) is an acyclic instance: the attribute
// dependency relation imposed by A is not recursive (Section 6.1).
// Derivation arcs that add nothing — an FD whose derived classes are all
// in its own head, such as a membership constraint X → X — are ignored:
// they create syntactic 2-cycles but no recursive dependency.
func IsAcyclic(res *cover.Result) bool {
	g, _ := plan.Hypergraph(res)
	// Collect, per Y~ node, the classes it splits into.
	splits := map[hypergraph.NodeID][]hypergraph.NodeID{}
	for _, e := range g.Edges {
		if _, ok := e.Payload.(plan.SplitEdge); ok {
			splits[e.Head[0]] = append(splits[e.Head[0]], e.Tail)
		}
	}
	// Build the class-level digraph: head class → derived class, skipping
	// classes already in the head.
	n := g.NumNodes()
	adj := make([][]hypergraph.NodeID, n)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		if _, ok := e.Payload.(plan.FDEdge); !ok {
			continue
		}
		inHead := map[hypergraph.NodeID]bool{}
		for _, h := range e.Head {
			inHead[h] = true
		}
		for _, c := range splits[e.Tail] {
			if inHead[c] {
				continue // no-op derivation (e.g. membership X → X)
			}
			for _, h := range e.Head {
				adj[h] = append(adj[h], c)
				indeg[c]++
			}
		}
	}
	var queue []hypergraph.NodeID
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, hypergraph.NodeID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return seen == n
}

// IsElementary reports whether every constraint of A is an indexing
// constraint R(X→X,1) or a unit constraint (|X| = |Y| = 1).
func IsElementary(A *access.Schema) bool {
	for _, c := range A.Constraints {
		if !c.IsIndexing() && !c.IsUnit() {
			return false
		}
	}
	return true
}

// MinADAG solves the acyclic case via weighted shortest hyperpaths from the
// dummy root r to every node of X̂Q \ X̂QC, plus a minimum-N indexing
// constraint per relation occurrence (Theorem 10(2)). It returns an error
// when the instance is not acyclic.
func MinADAG(res *cover.Result) (*access.Schema, error) {
	if !res.Covered {
		return nil, fmt.Errorf("minimize: query is not covered")
	}
	if !IsAcyclic(res) {
		return nil, fmt.Errorf("minimize: instance is not acyclic")
	}
	keep, err := shortestPathSupport(res)
	if err != nil {
		return nil, err
	}
	return finish(res, keep)
}

// shortestPathSupport returns the keys of the constraints on minimum-weight
// hyperpaths from r to every needed class, plus the chosen indexing
// constraints and the hyperpaths covering their X sides. The Dijkstra-style
// search is correct on the raw (possibly syntactically cyclic) hypergraph
// as long as weights are non-negative, so no-op membership cycles need no
// special casing; MinADAG gates on acyclicity only for its approximation
// bound, while MinA uses this as a cost-aware seed on any instance.
func shortestPathSupport(res *cover.Result) (map[string]bool, error) {
	g, root := plan.Hypergraph(res)
	costs := g.ShortestHyperpaths(root)
	keep := map[string]bool{}

	addPath := func(target hypergraph.NodeID) error {
		edges, ok := costs.HyperpathEdges(g, target)
		if !ok {
			return fmt.Errorf("minimize: no hyperpath to %s", g.Label(target))
		}
		for _, ei := range edges {
			if f, isFD := g.Edges[ei].Payload.(plan.FDEdge); isFD {
				keep[f.AC.Base.Key()] = true
			}
		}
		return nil
	}

	for si, sub := range res.Subs {
		// Targets: needed non-constant classes.
		constSet := map[ra.Attr]bool{}
		for _, c := range sub.ConstClasses {
			constSet[c] = true
		}
		for _, rep := range sub.XHat {
			if constSet[rep] {
				continue
			}
			node, ok := g.Lookup(plan.ClassLabel(si, rep))
			if !ok {
				return nil, fmt.Errorf("minimize: no node for class %s", rep)
			}
			if err := addPath(node); err != nil {
				return nil, err
			}
		}
		// Indexing constraints: the chosen minimum-N index per occurrence,
		// plus hyperpaths making their X sides covered.
		for rel, ac := range sub.IndexBy {
			keep[ac.Base.Key()] = true
			for _, x := range ac.XAttrs(rel) {
				rep := sub.Classes.Rep(x)
				if constSet[rep] {
					continue
				}
				node, ok := g.Lookup(plan.ClassLabel(si, rep))
				if !ok {
					return nil, fmt.Errorf("minimize: no node for class %s", rep)
				}
				if err := addPath(node); err != nil {
					return nil, err
				}
			}
		}
	}
	return keep, nil
}

// MinAE solves the elementary case by reduction to the directed minimum
// Steiner arborescence problem on the graph of unit constraints
// (Lemma 11). The dminSAP sub-problem is approximated with the greedy
// nearest-terminal algorithm (the level-1 specialization of Charikar et
// al.; see DESIGN.md). It returns an error when the instance is not
// elementary.
func MinAE(res *cover.Result) (*access.Schema, error) {
	if !res.Covered {
		return nil, fmt.Errorf("minimize: query is not covered")
	}
	if !IsElementary(res.Access) {
		return nil, fmt.Errorf("minimize: instance is not elementary")
	}
	g, root := plan.Hypergraph(res)
	keep := map[string]bool{}

	// Terminals: needed non-constant classes across sub-queries, plus the X
	// classes of the chosen indexing constraints.
	var terminals []hypergraph.NodeID
	seen := map[hypergraph.NodeID]bool{}
	addTerminal := func(node hypergraph.NodeID) {
		if !seen[node] {
			seen[node] = true
			terminals = append(terminals, node)
		}
	}
	for si, sub := range res.Subs {
		constSet := map[ra.Attr]bool{}
		for _, c := range sub.ConstClasses {
			constSet[c] = true
		}
		for _, rep := range sub.XHat {
			if constSet[rep] {
				continue
			}
			if node, ok := g.Lookup(plan.ClassLabel(si, rep)); ok {
				addTerminal(node)
			}
		}
		for rel, ac := range sub.IndexBy {
			keep[ac.Base.Key()] = true
			for _, x := range ac.XAttrs(rel) {
				rep := sub.Classes.Rep(x)
				if !constSet[rep] {
					if node, ok := g.Lookup(plan.ClassLabel(si, rep)); ok {
						addTerminal(node)
					}
				}
			}
		}
	}
	edges, err := steinerArborescence(g, root, terminals)
	if err != nil {
		return nil, err
	}
	for _, ei := range edges {
		if f, isFD := g.Edges[ei].Payload.(plan.FDEdge); isFD {
			keep[f.AC.Base.Key()] = true
		}
	}
	return finish(res, keep)
}

// steinerArborescence greedily grows a tree from root: repeatedly attach
// the terminal with the cheapest shortest derivation from the current tree
// (edges already in the tree become free). In the elementary case every
// hyperedge head is a single node, so shortest derivations are shortest
// paths and the classic |VT|-approximation bound applies.
func steinerArborescence(g *hypergraph.Graph, root hypergraph.NodeID, terminals []hypergraph.NodeID) ([]int, error) {
	chosen := map[int]bool{}
	remaining := append([]hypergraph.NodeID{}, terminals...)
	for len(remaining) > 0 {
		// Shortest hyperpaths with chosen edges free.
		saved := make(map[int]int64, len(chosen))
		for ei := range chosen {
			saved[ei] = g.Edges[ei].Weight
			g.Edges[ei].Weight = 0
		}
		costs := g.ShortestHyperpaths(root)
		for ei, w := range saved {
			g.Edges[ei].Weight = w
		}
		// Pick the cheapest remaining terminal.
		bestIdx, bestCost := -1, int64(0)
		for i, t := range remaining {
			edges, ok := costs.HyperpathEdges(g, t)
			if !ok {
				return nil, fmt.Errorf("minimize: terminal %s unreachable", g.Label(t))
			}
			var c int64
			for _, ei := range edges {
				if !chosen[ei] {
					c += g.Edges[ei].Weight
				}
			}
			if bestIdx < 0 || c < bestCost {
				bestIdx, bestCost = i, c
			}
		}
		t := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		edges, _ := costs.HyperpathEdges(g, t)
		for _, ei := range edges {
			chosen[ei] = true
		}
	}
	out := make([]int, 0, len(chosen))
	for ei := range chosen {
		out = append(out, ei)
	}
	sort.Ints(out)
	return out, nil
}

// finish turns the kept constraint keys into a schema and verifies
// coverage, falling back to the full schema's greedy minimization if the
// specialized algorithm under-selected (cannot happen on well-formed
// instances, but we never return a non-covering set).
func finish(res *cover.Result, keep map[string]bool) (*access.Schema, error) {
	Am := res.Access.Subset(keep)
	check, err := cover.Check(res.Query, res.Schema, Am)
	if err != nil {
		return nil, err
	}
	if check.Covered {
		return Am, nil
	}
	return MinA(res, DefaultOptions())
}

// Package workload provides the datasets and query workloads of the
// experimental study (Section 8): synthetic stand-ins for AIRCA, TFACC and
// MCBM with the same schema shapes and access constraints, the Facebook
// graph-search scenario of Example 1, and the random RA query generator
// parameterized by #-sel, #-join and #-unidiff.
//
// The paper's datasets are proprietary or impractically large (60–90 GB);
// the generators here produce data satisfying the same kinds of access
// constraints at laptop scale, preserving the behaviour bounded evaluation
// depends on (see DESIGN.md, "Substitutions").
package workload

import (
	"math/rand"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// Facebook is the graph-search scenario of Example 1: relations
// friend(pid,fid), dine(pid,cid,month,year), cafe(cid,city), with the
// access schema A0 (ψ1–ψ4).
type Facebook struct {
	Schema ra.Schema
	Access *access.Schema
	// Me is the constant p0 of Example 1.
	Me value.Value
}

// FacebookSchema returns the relational schema R0 of Example 1.
func FacebookSchema() ra.Schema {
	return ra.Schema{
		"friend": {"pid", "fid"},
		"dine":   {"pid", "cid", "month", "year"},
		"cafe":   {"cid", "city"},
	}
}

// FacebookAccess returns the access schema A0 of Example 1:
// ψ1 friend(pid→fid,5000), ψ2 dine((pid,year,month)→cid,31),
// ψ3 dine((pid,cid)→(pid,cid),1), ψ4 cafe(cid→city,1).
func FacebookAccess() *access.Schema {
	return access.NewSchema(
		access.Constraint{Rel: "friend", X: []string{"pid"}, Y: []string{"fid"}, N: 5000},
		access.Constraint{Rel: "dine", X: []string{"pid", "year", "month"}, Y: []string{"cid"}, N: 31},
		access.Constraint{Rel: "dine", X: []string{"pid", "cid"}, Y: []string{"pid", "cid"}, N: 1},
		access.Constraint{Rel: "cafe", X: []string{"cid"}, Y: []string{"city"}, N: 1},
	)
}

// FacebookConfig controls the generated population.
type FacebookConfig struct {
	Persons       int // number of persons (≥ 2)
	MaxFriends    int // friends per person, ≤ 5000
	Cafes         int // number of restaurants
	Cities        int // number of cities; city 0 is "nyc"
	DinesPerMonth int // dines per person per month, ≤ 31
	Months        int // months of history to generate (from may/2015 back)
	Seed          int64
}

// DefaultFacebookConfig is a small but non-trivial population.
func DefaultFacebookConfig() FacebookConfig {
	return FacebookConfig{
		Persons:       500,
		MaxFriends:    20,
		Cafes:         200,
		Cities:        10,
		DinesPerMonth: 4,
		Months:        6,
		Seed:          1,
	}
}

// GenFacebook builds a database satisfying A0 for the given configuration.
// Person 0 is "me" (p0).
func GenFacebook(cfg FacebookConfig) (*Facebook, *store.DB, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	fb := &Facebook{
		Schema: FacebookSchema(),
		Access: FacebookAccess(),
		Me:     value.NewInt(0),
	}
	db := store.NewDB(fb.Schema)

	cities := make([]value.Value, cfg.Cities)
	cities[0] = value.NewStr("nyc")
	for i := 1; i < cfg.Cities; i++ {
		cities[i] = value.NewStr(cityName(i))
	}
	for c := 0; c < cfg.Cafes; c++ {
		city := cities[rng.Intn(cfg.Cities)]
		if _, err := db.Insert("cafe", value.Tuple{value.NewInt(int64(c)), city}); err != nil {
			return nil, nil, err
		}
	}
	for p := 0; p < cfg.Persons; p++ {
		nf := 1 + rng.Intn(cfg.MaxFriends)
		for f := 0; f < nf; f++ {
			fid := rng.Intn(cfg.Persons)
			if fid == p {
				continue
			}
			if _, err := db.Insert("friend", value.Tuple{value.NewInt(int64(p)), value.NewInt(int64(fid))}); err != nil {
				return nil, nil, err
			}
		}
		// Dining history going back cfg.Months months from may 2015.
		year, month := 2015, 5
		for m := 0; m < cfg.Months; m++ {
			for d := 0; d < cfg.DinesPerMonth; d++ {
				cid := rng.Intn(cfg.Cafes)
				t := value.Tuple{
					value.NewInt(int64(p)), value.NewInt(int64(cid)),
					value.NewInt(int64(month)), value.NewInt(int64(year)),
				}
				if _, err := db.Insert("dine", t); err != nil {
					return nil, nil, err
				}
			}
			month--
			if month == 0 {
				month = 12
				year--
			}
		}
	}
	if err := db.BuildIndexes(fb.Access); err != nil {
		return nil, nil, err
	}
	return fb, db, nil
}

func cityName(i int) string {
	names := []string{"nyc", "sf", "la", "chicago", "boston", "seattle", "austin", "denver", "miami", "portland"}
	if i < len(names) {
		return names[i]
	}
	return "city" + string(rune('a'+i%26))
}

// Q1 is the covered sub-query of Example 1: restaurants in nyc where my
// friends dined in May 2015.
func (fb *Facebook) Q1() ra.Query {
	may, y2015, nyc := value.NewInt(5), value.NewInt(2015), value.NewStr("nyc")
	return ra.Proj(
		ra.Sel(
			ra.Prod(ra.R("friend", "friend"), ra.R("dine", "dine"), ra.R("cafe", "cafe")),
			ra.EqC(ra.A("friend", "pid"), fb.Me),
			ra.Eq(ra.A("friend", "fid"), ra.A("dine", "pid")),
			ra.EqC(ra.A("dine", "month"), may),
			ra.EqC(ra.A("dine", "year"), y2015),
			ra.Eq(ra.A("dine", "cid"), ra.A("cafe", "cid")),
			ra.EqC(ra.A("cafe", "city"), nyc),
		),
		ra.A("cafe", "cid"),
	)
}

// Q2 is the unbounded sub-query of Example 1: all restaurants I have dined
// in (not fetchable under A0).
func (fb *Facebook) Q2() ra.Query {
	return ra.Proj(
		ra.Sel(ra.R("dine", "dine2"), ra.EqC(ra.A("dine2", "pid"), fb.Me)),
		ra.A("dine2", "cid"),
	)
}

// Q0 is the Graph Search query of Example 1: Q1 − Q2. It is boundedly
// evaluable under A0 but not covered (its rewriting Q0Prime is).
func (fb *Facebook) Q0() ra.Query { return ra.D(fb.Q1(), fb.Q2()) }

// Q3 is the covered replacement for Q2: Q1 ⋈ Q2, restaurants from Q1 that I
// have dined in, checkable via ψ3 one tuple at a time.
func (fb *Facebook) Q3() ra.Query {
	may, y2015, nyc := value.NewInt(5), value.NewInt(2015), value.NewStr("nyc")
	return ra.Proj(
		ra.Sel(
			ra.Prod(ra.R("friend", "friend_b"), ra.R("dine", "dine_b"), ra.R("cafe", "cafe_b"), ra.R("dine", "dine2")),
			ra.EqC(ra.A("friend_b", "pid"), fb.Me),
			ra.Eq(ra.A("friend_b", "fid"), ra.A("dine_b", "pid")),
			ra.EqC(ra.A("dine_b", "month"), may),
			ra.EqC(ra.A("dine_b", "year"), y2015),
			ra.Eq(ra.A("dine_b", "cid"), ra.A("cafe_b", "cid")),
			ra.EqC(ra.A("cafe_b", "city"), nyc),
			ra.EqC(ra.A("dine2", "pid"), fb.Me),
			ra.Eq(ra.A("dine2", "cid"), ra.A("cafe_b", "cid")),
		),
		ra.A("cafe_b", "cid"),
	)
}

// Q0Prime is the covered A0-equivalent of Q0: Q1 − Q3 (Example 1).
func (fb *Facebook) Q0Prime() ra.Query { return ra.D(fb.Q1(), fb.Q3()) }

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// Dataset bundles a relational schema, its access schema, a scalable data
// generator and the metadata the random query generator needs (join edges
// and constant domains). AIRCA, TFACC and MCBM are instances.
type Dataset struct {
	Name   string
	Schema ra.Schema
	Access *access.Schema
	// Gen populates a database at the given scale factor (1.0 = full size)
	// and builds the indices of Access.
	Gen func(scale float64, seed int64) (*store.DB, error)
	// JoinEdges lists natural equi-join edges between base relations, used
	// by the query generator.
	JoinEdges []JoinEdge
	// Domains maps "rel.attr" to the sampler for constants of that
	// attribute, used for random selections.
	Domains map[string]func(rng *rand.Rand) value.Value
	// ShardKeys is the intended horizontal-partitioning assignment for
	// internal/shard: relation → partition-key attribute, chosen so that
	// the dataset's hot templates either bind the key (single-shard
	// routing) or join partitioned relations on their keys
	// (co-partitioned scatter). Relations absent from the map are small
	// or join-shared and replicate to every shard.
	ShardKeys map[string]string
}

// JoinEdge is a joinable attribute pair between two base relations.
type JoinEdge struct {
	RelA, AttrA string
	RelB, AttrB string
}

// cons is shorthand for building a constraint.
func cons(rel string, x []string, y []string, n int) access.Constraint {
	return access.Constraint{Rel: rel, X: x, Y: y, N: n}
}

// Domain returns the constant sampler for rel.attr, falling back to small
// non-negative integers.
func (d *Dataset) Domain(rel, attr string) func(*rand.Rand) value.Value {
	if f, ok := d.Domains[rel+"."+attr]; ok {
		return f
	}
	return func(rng *rand.Rand) value.Value { return value.NewInt(int64(rng.Intn(10))) }
}

func intDomain(n int) func(*rand.Rand) value.Value {
	return func(rng *rand.Rand) value.Value { return value.NewInt(int64(rng.Intn(n))) }
}

func oneBased(n int) func(*rand.Rand) value.Value {
	return func(rng *rand.Rand) value.Value { return value.NewInt(int64(1 + rng.Intn(n))) }
}

func yearDomain(lo, hi int) func(*rand.Rand) value.Value {
	return func(rng *rand.Rand) value.Value { return value.NewInt(int64(lo + rng.Intn(hi-lo+1))) }
}

// i64 wraps an int as an integer Value.
func i64(i int) value.Value { return value.NewInt(int64(i)) }

// scaled applies a scale factor with a floor of 1.
func scaled(n int, scale float64) int {
	out := int(float64(n) * scale)
	if out < 1 {
		out = 1
	}
	return out
}

// addMemberships augments a dataset's access schema with single-attribute
// membership constraints R(a → a, 1) for every attribute — ψ3-style
// indices that hold on every instance by construction. They give the
// access schema the redundancy the paper's larger constraint sets have
// (266/84/366 constraints) and enable difference guards and existence
// checks.
func addMemberships(d *Dataset) {
	for _, rel := range d.Schema.Relations() {
		for _, a := range d.Schema[rel] {
			d.Access = appendConstraint(d.Access, access.Constraint{
				Rel: rel, X: []string{a}, Y: []string{a}, N: 1,
			})
		}
	}
}

// appendConstraint grows an access schema (creating it on first use),
// skipping duplicates.
func appendConstraint(s *access.Schema, c access.Constraint) *access.Schema {
	if s == nil {
		return access.NewSchema(c)
	}
	for _, old := range s.Constraints {
		if old.Key() == c.Key() {
			return s
		}
	}
	s.Constraints = append(s.Constraints, c)
	return s
}

// AccessFraction returns ⌈f·‖A‖⌉ constraints of the dataset's access
// schema, the knob of the "varying ‖A‖" experiments (Fig. 5(d,h,l),
// Fig. 6). Constraints are drawn in a deterministic shuffled order so
// every prefix mixes relations, as when constraints are discovered
// incrementally; prefixes are nested (f ≤ f' ⇒ subset).
func (d *Dataset) AccessFraction(f float64) *access.Schema {
	n := int(f*float64(d.Access.Len()) + 0.5)
	if n > d.Access.Len() {
		n = d.Access.Len()
	}
	if n < 0 {
		n = 0
	}
	shuffled := append([]access.Constraint{}, d.Access.Constraints...)
	rng := rand.New(rand.NewSource(77))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	return access.NewSchema(shuffled[:n]...)
}

// Validate checks internal consistency of the dataset definition.
func (d *Dataset) Validate() error {
	if err := d.Access.Validate(d.Schema); err != nil {
		return fmt.Errorf("dataset %s: %w", d.Name, err)
	}
	for _, e := range d.JoinEdges {
		if !d.Schema.HasAttr(e.RelA, e.AttrA) || !d.Schema.HasAttr(e.RelB, e.AttrB) {
			return fmt.Errorf("dataset %s: bad join edge %+v", d.Name, e)
		}
	}
	return nil
}

// All returns the three benchmark datasets of Section 8.
func All() []*Dataset {
	return []*Dataset{Airca(), Tfacc(), Mcbm()}
}

// ByName returns the dataset with the given (case-sensitive) name.
func ByName(name string) (*Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown dataset %q", name)
}

package workload

import (
	"math/rand"

	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// Tfacc is the synthetic stand-in for the UK traffic accident dataset
// (TFACC) of Section 8: Road Safety Data joined with NaPTAN public
// transport nodes. Constraints follow the paper's examples, e.g.
// accident((date, police_force) → aid, 304): each police force handled at
// most 304 accidents in a single day.
func Tfacc() *Dataset {
	shardKeys := map[string]string{
		// The accident-centric relations co-partition on aid, so
		// accident ⋈ vehicle ⋈ casualty ⋈ weather chains stay
		// shard-local and scatter exactly; the geography tables
		// (naptan_stop, locality, district, road, force) replicate.
		"accident":      "aid",
		"vehicle":       "aid",
		"casualty":      "aid",
		"weather":       "aid",
		"accident_road": "aid",
	}
	schema := ra.Schema{
		"accident":      {"aid", "date", "police_force", "severity", "district"},
		"vehicle":       {"aid", "vid", "vtype", "age_band"},
		"casualty":      {"aid", "cid", "class", "severity"},
		"naptan_stop":   {"atco", "locality", "stype", "district"},
		"locality":      {"locality", "district", "region"},
		"district":      {"district", "region", "pop_band"},
		"road":          {"road_id", "class", "district"},
		"accident_road": {"aid", "road_id"},
		"weather":       {"aid", "cond"},
		"force":         {"police_force", "fname", "region"},
	}
	acc := []struct {
		rel string
		x   []string
		y   []string
		n   int
	}{
		{"accident", []string{"aid"}, []string{"date", "police_force", "severity", "district"}, 1},
		{"accident", []string{"date", "police_force"}, []string{"aid"}, 304},
		{"accident", nil, []string{"police_force"}, 51},
		{"accident", nil, []string{"severity"}, 3},
		{"accident", []string{"district"}, []string{"police_force"}, 1},
		{"vehicle", []string{"aid", "vid"}, []string{"vtype", "age_band"}, 1},
		{"vehicle", []string{"aid"}, []string{"vid"}, 16},
		{"vehicle", nil, []string{"vtype"}, 20},
		{"casualty", []string{"aid", "cid"}, []string{"class", "severity"}, 1},
		{"casualty", []string{"aid"}, []string{"cid"}, 30},
		{"casualty", nil, []string{"class"}, 3},
		{"naptan_stop", []string{"atco"}, []string{"locality", "stype", "district"}, 1},
		{"naptan_stop", []string{"locality"}, []string{"atco"}, 40},
		{"naptan_stop", nil, []string{"stype"}, 12},
		{"naptan_stop", []string{"district"}, []string{"locality"}, 25},
		{"locality", []string{"locality"}, []string{"district", "region"}, 1},
		{"locality", []string{"district"}, []string{"locality"}, 25},
		{"locality", nil, []string{"region"}, 12},
		{"district", []string{"district"}, []string{"region", "pop_band"}, 1},
		{"district", []string{"region"}, []string{"district"}, 40},
		{"district", nil, []string{"region"}, 12},
		{"road", []string{"road_id"}, []string{"class", "district"}, 1},
		{"road", []string{"district"}, []string{"road_id"}, 30},
		{"road", nil, []string{"class"}, 6},
		{"accident_road", []string{"aid"}, []string{"road_id"}, 2},
		{"accident_road", []string{"aid", "road_id"}, []string{"aid", "road_id"}, 1},
		{"weather", []string{"aid"}, []string{"cond"}, 1},
		{"weather", nil, []string{"cond"}, 9},
		{"force", []string{"police_force"}, []string{"fname", "region"}, 1},
		{"force", []string{"region"}, []string{"police_force"}, 10},
		{"force", nil, []string{"police_force"}, 51},
	}
	d := &Dataset{
		Name:      "TFACC",
		Schema:    schema,
		ShardKeys: shardKeys,
		JoinEdges: []JoinEdge{
			{"accident", "aid", "vehicle", "aid"},
			{"accident", "aid", "casualty", "aid"},
			{"accident", "aid", "weather", "aid"},
			{"accident", "aid", "accident_road", "aid"},
			{"accident", "police_force", "force", "police_force"},
			{"accident", "district", "district", "district"},
			{"accident", "district", "naptan_stop", "district"},
			{"accident_road", "road_id", "road", "road_id"},
			{"naptan_stop", "locality", "locality", "locality"},
			{"locality", "district", "district", "district"},
			{"road", "district", "district", "district"},
			{"force", "region", "district", "region"},
		},
		Domains: map[string]func(*rand.Rand) value.Value{
			"accident.aid":          intDomain(24000),
			"accident.date":         intDomain(tfaccDates),
			"accident.police_force": intDomain(51),
			"accident.severity":     oneBased(3),
			"accident.district":     intDomain(tfaccDistricts),
			"vehicle.vtype":         intDomain(20),
			"vehicle.age_band":      intDomain(8),
			"casualty.class":        oneBased(3),
			"casualty.severity":     oneBased(3),
			"naptan_stop.atco":      intDomain(tfaccDistricts * 12),
			"naptan_stop.locality":  intDomain(tfaccLocalities),
			"naptan_stop.stype":     intDomain(12),
			"naptan_stop.district":  intDomain(tfaccDistricts),
			"locality.locality":     intDomain(tfaccLocalities),
			"locality.district":     intDomain(tfaccDistricts),
			"locality.region":       intDomain(12),
			"district.district":     intDomain(tfaccDistricts),
			"district.region":       intDomain(12),
			"district.pop_band":     intDomain(6),
			"road.road_id":          intDomain(tfaccDistricts * 20),
			"road.class":            intDomain(6),
			"road.district":         intDomain(tfaccDistricts),
			"weather.cond":          intDomain(9),
			"force.police_force":    intDomain(51),
			"force.region":          intDomain(12),
			"accident_road.road_id": intDomain(tfaccDistricts * 20),
		},
	}
	for _, a := range acc {
		d.Access = appendConstraint(d.Access, cons(a.rel, a.x, a.y, a.n))
	}
	addMemberships(d)
	d.Gen = func(scale float64, seed int64) (*store.DB, error) {
		return genTfacc(d, scale, seed)
	}
	return d
}

const (
	tfaccDates      = 400
	tfaccForces     = 51
	tfaccDistricts  = 120
	tfaccLocalities = 360
	tfaccAccidents  = 24000 // at scale 1
)

func genTfacc(d *Dataset, scale float64, seed int64) (*store.DB, error) {
	rng := rand.New(rand.NewSource(seed))
	db := store.NewDB(d.Schema)

	// district: district → (region, pop_band); ≤ 40 districts per region.
	for dist := 0; dist < tfaccDistricts; dist++ {
		t := value.Tuple{i64(dist), i64(dist % 12), i64(dist % 6)}
		if _, err := db.Insert("district", t); err != nil {
			return nil, err
		}
	}
	// locality: ≤ 25 localities per district (360/120 = 3).
	for loc := 0; loc < tfaccLocalities; loc++ {
		dist := loc % tfaccDistricts
		t := value.Tuple{i64(loc), i64(dist), i64(dist % 12)}
		if _, err := db.Insert("locality", t); err != nil {
			return nil, err
		}
	}
	// naptan_stop: ≤ 12 stops per district, ≤ 40 per locality.
	for s := 0; s < tfaccDistricts*12; s++ {
		dist := s % tfaccDistricts
		loc := dist // one locality per district hosts the stops
		t := value.Tuple{i64(s), i64(loc), i64(s % 12), i64(dist)}
		if _, err := db.Insert("naptan_stop", t); err != nil {
			return nil, err
		}
	}
	// road: 20 roads per district.
	for r := 0; r < tfaccDistricts*20; r++ {
		dist := r % tfaccDistricts
		t := value.Tuple{i64(r), i64(r % 6), i64(dist)}
		if _, err := db.Insert("road", t); err != nil {
			return nil, err
		}
	}
	// force: police_force → region functionally; ≤ 10 forces per region.
	for f := 0; f < tfaccForces; f++ {
		t := value.Tuple{i64(f), i64(f), i64(f % 12)}
		if _, err := db.Insert("force", t); err != nil {
			return nil, err
		}
	}

	nAcc := scaled(tfaccAccidents, scale)
	for a := 0; a < nAcc; a++ {
		date := rng.Intn(tfaccDates)
		// district determines police_force (district % 51) so the
		// accident(district → police_force, 1) constraint holds.
		dist := rng.Intn(tfaccDistricts)
		pf := dist % tfaccForces
		sev := 1 + rng.Intn(3)
		t := value.Tuple{i64(a), i64(date), i64(pf), i64(sev), i64(dist)}
		if _, err := db.Insert("accident", t); err != nil {
			return nil, err
		}
		// vehicles: 1–3 per accident, attributes functional in (aid, vid).
		nv := 1 + rng.Intn(3)
		for v := 0; v < nv; v++ {
			vt := value.Tuple{i64(a), i64(v), i64((a + v) % 20), i64((a*3 + v) % 8)}
			if _, err := db.Insert("vehicle", vt); err != nil {
				return nil, err
			}
		}
		// casualties: 0–4 per accident.
		for c := 0; c < rng.Intn(5); c++ {
			ct := value.Tuple{i64(a), i64(c), i64(1 + (a+c)%3), i64(1 + (a*7+c)%3)}
			if _, err := db.Insert("casualty", ct); err != nil {
				return nil, err
			}
		}
		// weather: exactly one condition per accident.
		wt := value.Tuple{i64(a), i64((a * 13) % 9)}
		if _, err := db.Insert("weather", wt); err != nil {
			return nil, err
		}
		// accident_road: 1–2 roads, within the accident's district.
		for r := 0; r < 1+rng.Intn(2); r++ {
			road := dist + tfaccDistricts*rng.Intn(20)
			rt := value.Tuple{i64(a), i64(road)}
			if _, err := db.Insert("accident_road", rt); err != nil {
				return nil, err
			}
		}
	}
	if err := db.BuildIndexes(d.Access); err != nil {
		return nil, err
	}
	return db, nil
}

package workload_test

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/workload"
)

// TestTemplatesCoverageMatchesDeclaration parses every template and checks
// its declared coverage status under the dataset's full access schema.
func TestTemplatesCoverageMatchesDeclaration(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			tpls := d.Templates()
			if len(tpls) < 5 {
				t.Fatalf("only %d templates", len(tpls))
			}
			for _, tpl := range tpls {
				q, err := parser.Parse(tpl.Src, d.Schema)
				if err != nil {
					t.Fatalf("%s: %v", tpl.Name, err)
				}
				res, err := cover.Check(q, d.Schema, d.Access)
				if err != nil {
					t.Fatalf("%s: %v", tpl.Name, err)
				}
				if res.Covered != tpl.Covered {
					t.Errorf("%s: covered = %v, declared %v\n%s",
						tpl.Name, res.Covered, tpl.Covered, res.Explain())
				}
			}
		})
	}
}

// TestTemplatesDifferential executes every covered template both ways.
func TestTemplatesDifferential(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			db, err := d.Gen(1.0/16, 21)
			if err != nil {
				t.Fatal(err)
			}
			for _, tpl := range d.Templates() {
				if !tpl.Covered {
					continue
				}
				q, err := parser.Parse(tpl.Src, d.Schema)
				if err != nil {
					t.Fatal(err)
				}
				res, err := cover.Check(q, d.Schema, d.Access)
				if err != nil {
					t.Fatal(err)
				}
				p, err := plan.Build(res)
				if err != nil {
					t.Fatalf("%s: %v", tpl.Name, err)
				}
				got, st, err := exec.Run(p, db)
				if err != nil {
					t.Fatalf("%s: %v", tpl.Name, err)
				}
				want, _, err := exec.RunBaseline(q, d.Schema, db)
				if err != nil {
					t.Fatalf("%s: %v", tpl.Name, err)
				}
				if !got.Equal(want) {
					t.Errorf("%s: bounded answer differs from baseline\nbounded:\n%s\nbaseline:\n%s",
						tpl.Name, got, want)
				}
				if st.Scanned != 0 {
					t.Errorf("%s: bounded plan scanned", tpl.Name)
				}
			}
		})
	}
}

package workload_test

import (
	"math/rand"
	"testing"

	"repro/internal/cover"
	"repro/internal/workload"
)

func TestDatasetsValid(t *testing.T) {
	for _, d := range workload.All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// TestGeneratedDataSatisfiesConstraints is the ground truth of the
// experimental substrate: every generated instance must satisfy its access
// schema, otherwise bounded plans would be incorrect.
func TestGeneratedDataSatisfiesConstraints(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			db, err := d.Gen(0.1, 7)
			if err != nil {
				t.Fatalf("gen: %v", err)
			}
			if db.Size() == 0 {
				t.Fatal("generator produced no data")
			}
			if err := db.SatisfiesAll(d.Access); err != nil {
				t.Fatalf("constraints violated: %v", err)
			}
		})
	}
}

func TestDataScalesWithFactor(t *testing.T) {
	d := workload.Airca()
	small, err := d.Gen(1.0/32, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := d.Gen(0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if large.Size() < small.Size()*2 {
		t.Errorf("scaling had little effect: %d vs %d tuples", small.Size(), large.Size())
	}
}

// TestRandomQueriesCoverage reproduces the qualitative finding of Fig. 6:
// with the full access schema a majority of generated queries are covered,
// and coverage is monotone in the number of constraints.
func TestRandomQueriesCoverage(t *testing.T) {
	for _, d := range workload.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			params := workload.DefaultQueryParams()
			const n = 60
			coveredFull, coveredNone := 0, 0
			empty := d.AccessFraction(0)
			for i := 0; i < n; i++ {
				params.Sel = 4 + rng.Intn(6)
				params.Join = rng.Intn(4)
				params.UniDiff = rng.Intn(3)
				q, err := d.RandomQuery(params, rng)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				full, err := cover.Check(q, d.Schema, d.Access)
				if err != nil {
					t.Fatalf("check full: %v", err)
				}
				if full.Covered {
					coveredFull++
				}
				none, err := cover.Check(q, d.Schema, empty)
				if err != nil {
					t.Fatalf("check empty: %v", err)
				}
				if none.Covered {
					coveredNone++
				}
			}
			if coveredNone != 0 {
				t.Errorf("%d queries covered with zero constraints", coveredNone)
			}
			if coveredFull < n/4 {
				t.Errorf("only %d/%d queries covered under full A — generator too adversarial", coveredFull, n)
			}
			if coveredFull == n {
				t.Errorf("all queries covered — generator produces no negative cases")
			}
			t.Logf("%s: %d/%d covered under full A", d.Name, coveredFull, n)
		})
	}
}

package workload

import (
	"math/rand"

	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// Mcbm is the synthetic stand-in for the Huawei mobile communication
// benchmark (MCBM) of Section 8: 12 relations simulating subscribers,
// calls, messaging, cells, billing and devices, with the bounded fan-out
// constraints typical of telecom data (e.g. at most 50 calls per caller per
// day).
func Mcbm() *Dataset {
	schema := ra.Schema{
		"subscriber": {"sid", "plan_id", "city_id", "status"},
		"call":       {"call_id", "caller", "callee", "day", "dur"},
		"sms":        {"msg_id", "sender", "receiver", "day"},
		"plan":       {"plan_id", "pname", "price_band"},
		"cell":       {"cell_id", "city_id", "band"},
		"attach":     {"sid", "cell_id", "day"},
		"city":       {"city_id", "cname", "region"},
		"bill":       {"sid", "month", "amount_band"},
		"topup":      {"topup_id", "sid", "day", "amount_band"},
		"device":     {"imei", "sid", "vendor", "model"},
		"complaint":  {"case_id", "sid", "day", "category"},
		"roaming":    {"sid", "country", "month"},
	}
	acc := []struct {
		rel string
		x   []string
		y   []string
		n   int
	}{
		{"subscriber", []string{"sid"}, []string{"plan_id", "city_id", "status"}, 1},
		{"subscriber", nil, []string{"status"}, 4},
		{"subscriber", []string{"sid"}, []string{"sid"}, 1},
		{"call", []string{"call_id"}, []string{"caller", "callee", "day", "dur"}, 1},
		{"call", []string{"caller", "day"}, []string{"call_id"}, 50},
		{"call", []string{"caller", "day"}, []string{"callee"}, 50},
		{"call", nil, []string{"day"}, 31},
		{"call", []string{"caller", "callee"}, []string{"caller", "callee"}, 1},
		{"sms", []string{"msg_id"}, []string{"sender", "receiver", "day"}, 1},
		{"sms", []string{"sender", "day"}, []string{"receiver"}, 80},
		{"plan", []string{"plan_id"}, []string{"pname", "price_band"}, 1},
		{"plan", nil, []string{"plan_id"}, 30},
		{"plan", []string{"price_band"}, []string{"plan_id"}, 10},
		{"cell", []string{"cell_id"}, []string{"city_id", "band"}, 1},
		{"cell", []string{"city_id"}, []string{"cell_id"}, 100},
		{"cell", nil, []string{"band"}, 5},
		{"attach", []string{"sid", "day"}, []string{"cell_id"}, 20},
		{"attach", []string{"sid", "cell_id"}, []string{"sid", "cell_id"}, 1},
		{"city", []string{"city_id"}, []string{"cname", "region"}, 1},
		{"city", []string{"region"}, []string{"city_id"}, 20},
		{"city", nil, []string{"region"}, 15},
		{"bill", []string{"sid", "month"}, []string{"amount_band"}, 1},
		{"bill", nil, []string{"month"}, 12},
		{"topup", []string{"topup_id"}, []string{"sid", "day", "amount_band"}, 1},
		{"topup", []string{"sid", "day"}, []string{"topup_id"}, 10},
		{"topup", nil, []string{"amount_band"}, 8},
		{"device", []string{"imei"}, []string{"sid", "vendor", "model"}, 1},
		{"device", []string{"sid"}, []string{"imei"}, 5},
		{"device", nil, []string{"vendor"}, 12},
		{"complaint", []string{"case_id"}, []string{"sid", "day", "category"}, 1},
		{"complaint", []string{"sid", "day"}, []string{"case_id"}, 5},
		{"complaint", nil, []string{"category"}, 12},
		{"roaming", []string{"sid", "month"}, []string{"country"}, 10},
		{"roaming", []string{"sid", "country", "month"}, []string{"sid", "country", "month"}, 1},
		{"roaming", nil, []string{"country"}, 40},
	}
	d := &Dataset{
		Name:   "MCBM",
		Schema: schema,
		// Everything subscriber-centric co-partitions on the subscriber
		// id (caller / sender / sid), so per-subscriber templates pin one
		// shard; the small reference tables (plan, cell, city) replicate.
		ShardKeys: map[string]string{
			"subscriber": "sid",
			"call":       "caller",
			"sms":        "sender",
			"attach":     "sid",
			"bill":       "sid",
			"topup":      "sid",
			"device":     "sid",
			"complaint":  "sid",
			"roaming":    "sid",
		},
		JoinEdges: []JoinEdge{
			{"subscriber", "plan_id", "plan", "plan_id"},
			{"subscriber", "city_id", "city", "city_id"},
			{"subscriber", "sid", "call", "caller"},
			{"subscriber", "sid", "sms", "sender"},
			{"subscriber", "sid", "attach", "sid"},
			{"subscriber", "sid", "bill", "sid"},
			{"subscriber", "sid", "topup", "sid"},
			{"subscriber", "sid", "device", "sid"},
			{"subscriber", "sid", "complaint", "sid"},
			{"subscriber", "sid", "roaming", "sid"},
			{"attach", "cell_id", "cell", "cell_id"},
			{"cell", "city_id", "city", "city_id"},
			{"call", "caller", "sms", "sender"},
		},
		Domains: map[string]func(*rand.Rand) value.Value{
			"subscriber.sid":     intDomain(mcbmSubscribers),
			"subscriber.plan_id": intDomain(30),
			"subscriber.city_id": intDomain(mcbmCities),
			"subscriber.status":  intDomain(4),
			"call.caller":        intDomain(mcbmSubscribers),
			"call.callee":        intDomain(mcbmSubscribers),
			"call.day":           oneBased(31),
			"call.dur":           intDomain(3600),
			"sms.sender":         intDomain(mcbmSubscribers),
			"sms.receiver":       intDomain(mcbmSubscribers),
			"sms.day":            oneBased(31),
			"plan.plan_id":       intDomain(30),
			"plan.price_band":    intDomain(10),
			"cell.cell_id":       intDomain(mcbmCities * 100),
			"cell.city_id":       intDomain(mcbmCities),
			"cell.band":          intDomain(5),
			"attach.day":         oneBased(31),
			"city.city_id":       intDomain(mcbmCities),
			"city.region":        intDomain(15),
			"bill.month":         oneBased(12),
			"bill.amount_band":   intDomain(8),
			"topup.day":          oneBased(31),
			"topup.amount_band":  intDomain(8),
			"device.vendor":      intDomain(12),
			"device.model":       intDomain(50),
			"complaint.day":      oneBased(31),
			"complaint.category": intDomain(12),
			"roaming.country":    intDomain(40),
			"roaming.month":      oneBased(12),
		},
	}
	for _, a := range acc {
		d.Access = appendConstraint(d.Access, cons(a.rel, a.x, a.y, a.n))
	}
	addMemberships(d)
	d.Gen = func(scale float64, seed int64) (*store.DB, error) {
		return genMcbm(d, scale, seed)
	}
	return d
}

const (
	mcbmSubscribers = 4000 // at scale 1
	mcbmCities      = 60
	mcbmPlans       = 30
)

func genMcbm(d *Dataset, scale float64, seed int64) (*store.DB, error) {
	rng := rand.New(rand.NewSource(seed))
	db := store.NewDB(d.Schema)
	nSubs := scaled(mcbmSubscribers, scale)

	for c := 0; c < mcbmCities; c++ {
		t := value.Tuple{i64(c), i64(c), i64(c % 15)}
		if _, err := db.Insert("city", t); err != nil {
			return nil, err
		}
	}
	for p := 0; p < mcbmPlans; p++ {
		t := value.Tuple{i64(p), i64(p), i64(p % 10)}
		if _, err := db.Insert("plan", t); err != nil {
			return nil, err
		}
	}
	// cells: 100 per city.
	for c := 0; c < mcbmCities*100; c++ {
		t := value.Tuple{i64(c), i64(c % mcbmCities), i64(c % 5)}
		if _, err := db.Insert("cell", t); err != nil {
			return nil, err
		}
	}

	callID, msgID, topupID, caseID := 0, 0, 0, 0
	for s := 0; s < nSubs; s++ {
		city := rng.Intn(mcbmCities)
		t := value.Tuple{i64(s), i64(rng.Intn(mcbmPlans)), i64(city), i64(rng.Intn(4))}
		if _, err := db.Insert("subscriber", t); err != nil {
			return nil, err
		}
		// Calls: a few active days, ≤ 8 calls per day (≪ 50).
		for _, day := range someDays(rng, 3, 31) {
			for k := 0; k < 1+rng.Intn(7); k++ {
				callee := rng.Intn(mcbmSubscribers)
				ct := value.Tuple{i64(callID), i64(s), i64(callee), i64(day), i64(rng.Intn(3600))}
				callID++
				if _, err := db.Insert("call", ct); err != nil {
					return nil, err
				}
			}
		}
		// SMS: ≤ 12 per active day (≪ 80).
		for _, day := range someDays(rng, 2, 31) {
			for k := 0; k < 1+rng.Intn(11); k++ {
				mt := value.Tuple{i64(msgID), i64(s), i64(rng.Intn(mcbmSubscribers)), i64(day)}
				msgID++
				if _, err := db.Insert("sms", mt); err != nil {
					return nil, err
				}
			}
		}
		// Attachments: ≤ 6 cells per day (≪ 20), in the home city.
		for _, day := range someDays(rng, 2, 31) {
			for k := 0; k < 1+rng.Intn(5); k++ {
				cell := city + mcbmCities*rng.Intn(100)
				at := value.Tuple{i64(s), i64(cell), i64(day)}
				if _, err := db.Insert("attach", at); err != nil {
					return nil, err
				}
			}
		}
		// Bills: one per month, amount a function of (sid, month).
		for m := 1; m <= 12; m++ {
			bt := value.Tuple{i64(s), i64(m), i64((s + m) % 8)}
			if _, err := db.Insert("bill", bt); err != nil {
				return nil, err
			}
		}
		// Topups: ≤ 3 per day on a couple of days.
		for _, day := range someDays(rng, 2, 31) {
			for k := 0; k < 1+rng.Intn(2); k++ {
				tt := value.Tuple{i64(topupID), i64(s), i64(day), i64(rng.Intn(8))}
				topupID++
				if _, err := db.Insert("topup", tt); err != nil {
					return nil, err
				}
			}
		}
		// Devices: 1–2 per subscriber.
		nd := 1 + rng.Intn(2)
		for k := 0; k < nd; k++ {
			imei := s*2 + k
			dt := value.Tuple{i64(imei), i64(s), i64((s + k) % 12), i64((s*3 + k) % 50)}
			if _, err := db.Insert("device", dt); err != nil {
				return nil, err
			}
		}
		// Complaints: sparse.
		if rng.Intn(5) == 0 {
			day := 1 + rng.Intn(31)
			ct := value.Tuple{i64(caseID), i64(s), i64(day), i64(rng.Intn(12))}
			caseID++
			if _, err := db.Insert("complaint", ct); err != nil {
				return nil, err
			}
		}
		// Roaming: sparse, ≤ 3 countries per month.
		if rng.Intn(4) == 0 {
			month := 1 + rng.Intn(12)
			for k := 0; k < 1+rng.Intn(3); k++ {
				rt := value.Tuple{i64(s), i64(rng.Intn(40)), i64(month)}
				if _, err := db.Insert("roaming", rt); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := db.BuildIndexes(d.Access); err != nil {
		return nil, err
	}
	return db, nil
}

// someDays picks k distinct days in [1, max].
func someDays(rng *rand.Rand, k, max int) []int {
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		d := 1 + rng.Intn(max)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

package workload

import (
	"math/rand"

	"repro/internal/ra"
	"repro/internal/store"
	"repro/internal/value"
)

// Airca is the synthetic stand-in for the US Air Carrier dataset (AIRCA) of
// Section 8: 7 tables modelled on the BTS Flight On-Time Performance and
// Carrier Statistics data, with access constraints of the kinds the paper
// extracted — e.g. ontime(origin → airline, 28): each airport hosts
// carriers of at most 28 airlines.
func Airca() *Dataset {
	schema := ra.Schema{
		"ontime":     {"fid", "origin", "dest", "airline", "month", "delay"},
		"airport":    {"code", "city", "state"},
		"carrier":    {"airline", "cname", "country"},
		"segment":    {"airline", "origin", "dest", "month", "pax"},
		"market":     {"airline", "market_id", "pax"},
		"plane":      {"tailnum", "airline", "model", "year"},
		"delaycause": {"fid", "cause", "minutes"},
	}
	acc := []struct {
		rel string
		x   []string
		y   []string
		n   int
	}{
		{"ontime", []string{"fid"}, []string{"origin", "dest", "airline", "month", "delay"}, 1},
		{"ontime", []string{"origin"}, []string{"airline"}, 28},
		{"ontime", []string{"origin", "dest"}, []string{"airline"}, 12},
		{"ontime", []string{"origin", "month"}, []string{"dest"}, 60},
		{"ontime", nil, []string{"month"}, 12},
		{"ontime", []string{"origin", "dest"}, []string{"origin", "dest"}, 1},
		{"airport", []string{"code"}, []string{"city", "state"}, 1},
		{"airport", []string{"city"}, []string{"code"}, 8},
		{"airport", []string{"state"}, []string{"code"}, 30},
		{"airport", nil, []string{"state"}, 60},
		{"carrier", []string{"airline"}, []string{"cname", "country"}, 1},
		{"carrier", []string{"country"}, []string{"airline"}, 40},
		{"carrier", nil, []string{"airline"}, 40},
		{"segment", []string{"airline", "origin", "dest", "month"}, []string{"pax"}, 1},
		{"segment", []string{"airline", "month"}, []string{"origin", "dest"}, 60},
		{"segment", []string{"airline", "origin", "dest", "month"}, []string{"airline", "origin", "dest", "month"}, 1},
		{"market", []string{"airline", "market_id"}, []string{"pax"}, 1},
		{"market", []string{"airline"}, []string{"market_id"}, 40},
		{"plane", []string{"tailnum"}, []string{"airline", "model", "year"}, 1},
		{"plane", []string{"airline"}, []string{"model"}, 20},
		{"plane", nil, []string{"model"}, 30},
		{"delaycause", []string{"fid", "cause"}, []string{"minutes"}, 1},
		{"delaycause", []string{"fid"}, []string{"cause"}, 5},
		{"delaycause", nil, []string{"cause"}, 5},
	}
	d := &Dataset{
		Name:   "AIRCA",
		Schema: schema,
		// ontime is the fact table: partition by origin, the key the
		// template workload binds (airlines/carriers/routes of an
		// airport). delaycause partitions by fid, its only index prefix.
		// The dimension tables (airport, carrier, plane, market, segment)
		// replicate so joins against them stay shard-local.
		ShardKeys: map[string]string{
			"ontime":     "origin",
			"delaycause": "fid",
		},
		JoinEdges: []JoinEdge{
			{"ontime", "origin", "airport", "code"},
			{"ontime", "dest", "airport", "code"},
			{"ontime", "airline", "carrier", "airline"},
			{"ontime", "fid", "delaycause", "fid"},
			{"ontime", "airline", "plane", "airline"},
			{"ontime", "origin", "segment", "origin"},
			{"segment", "airline", "carrier", "airline"},
			{"segment", "origin", "airport", "code"},
			{"market", "airline", "carrier", "airline"},
			{"plane", "airline", "carrier", "airline"},
		},
		Domains: map[string]func(*rand.Rand) value.Value{
			"ontime.fid":        intDomain(20000),
			"ontime.origin":     intDomain(150),
			"ontime.dest":       intDomain(150),
			"ontime.airline":    intDomain(28),
			"ontime.month":      oneBased(12),
			"ontime.delay":      intDomain(120),
			"airport.code":      intDomain(150),
			"airport.city":      intDomain(90),
			"airport.state":     intDomain(50),
			"carrier.airline":   intDomain(28),
			"carrier.cname":     intDomain(28),
			"carrier.country":   intDomain(6),
			"segment.airline":   intDomain(28),
			"segment.origin":    intDomain(150),
			"segment.dest":      intDomain(150),
			"segment.month":     oneBased(12),
			"market.airline":    intDomain(28),
			"market.market_id":  intDomain(40),
			"plane.tailnum":     intDomain(840),
			"plane.airline":     intDomain(28),
			"plane.model":       intDomain(20),
			"plane.year":        yearDomain(1990, 2014),
			"delaycause.fid":    intDomain(20000),
			"delaycause.cause":  intDomain(5),
			"delaycause.minute": intDomain(120),
		},
	}
	for _, a := range acc {
		d.Access = appendConstraint(d.Access, cons(a.rel, a.x, a.y, a.n))
	}
	addMemberships(d)
	d.Gen = func(scale float64, seed int64) (*store.DB, error) {
		return genAirca(d, scale, seed)
	}
	return d
}

const (
	aircaAirports = 150
	aircaAirlines = 28
	aircaStates   = 50
	aircaCities   = 90
	aircaFlights  = 20000 // at scale 1
)

func genAirca(d *Dataset, scale float64, seed int64) (*store.DB, error) {
	rng := rand.New(rand.NewSource(seed))
	db := store.NewDB(d.Schema)
	nFlights := scaled(aircaFlights, scale)

	// airport: code → (city, state) functionally; ≤ 30 codes per state,
	// ≤ 8 per city by construction (150 codes / 50 states / 90 cities).
	for code := 0; code < aircaAirports; code++ {
		t := value.Tuple{i64(code), i64(code % aircaCities), i64(code % aircaStates)}
		if _, err := db.Insert("airport", t); err != nil {
			return nil, err
		}
	}
	// carrier: one row per airline.
	for al := 0; al < aircaAirlines; al++ {
		t := value.Tuple{i64(al), i64(al), i64(al % 6)}
		if _, err := db.Insert("carrier", t); err != nil {
			return nil, err
		}
	}
	// ontime: airline determined by (origin, seq mod k) with k ≤ 28 so each
	// origin hosts at most 28 airlines; (origin,dest) pairs reuse at most
	// 12 airlines.
	for f := 0; f < nFlights; f++ {
		origin := rng.Intn(aircaAirports)
		// Each origin serves at most 40 destinations, keeping
		// ontime((origin,month) → dest, 60) valid by construction.
		dest := (origin*53 + rng.Intn(40)*17) % aircaAirports
		airline := airlineFor(origin, dest, rng)
		month := 1 + rng.Intn(12)
		delay := rng.Intn(120)
		t := value.Tuple{i64(f), i64(origin), i64(dest), i64(airline), i64(month), i64(delay)}
		if _, err := db.Insert("ontime", t); err != nil {
			return nil, err
		}
		// delaycause: up to 2 causes per flight; minutes is a function of
		// (fid, cause) so delaycause((fid,cause) → minutes, 1) holds.
		for c := 0; c < rng.Intn(3); c++ {
			ct := value.Tuple{i64(f), i64(c), i64((f*7 + c*13) % 120)}
			if _, err := db.Insert("delaycause", ct); err != nil {
				return nil, err
			}
		}
	}
	// segment: each airline serves ≤ 50 routes, one row per (route, month).
	nSegAirlines := aircaAirlines
	for al := 0; al < nSegAirlines; al++ {
		routes := 10 + rng.Intn(40)
		for r := 0; r < routes; r++ {
			origin := (al*37 + r*11) % aircaAirports
			dest := (al*53 + r*17) % aircaAirports
			for month := 1; month <= 12; month++ {
				if rng.Float64() > scale { // thin out at small scales
					continue
				}
				// pax is a function of the key so the key constraint holds.
				pax := (al*1009 + origin*31 + dest*17 + month*7) % 5000
				t := value.Tuple{i64(al), i64(origin), i64(dest), i64(month), i64(pax)}
				if _, err := db.Insert("segment", t); err != nil {
					return nil, err
				}
			}
		}
	}
	// market: ≤ 40 markets per airline.
	for al := 0; al < aircaAirlines; al++ {
		for m := 0; m < 5+rng.Intn(35); m++ {
			t := value.Tuple{i64(al), i64(m), i64(rng.Intn(100000))}
			if _, err := db.Insert("market", t); err != nil {
				return nil, err
			}
		}
	}
	// plane: 30 tail numbers per airline, ≤ 20 models per airline.
	nPlanes := scaled(aircaAirlines*30, scale) + aircaAirlines
	for p := 0; p < nPlanes; p++ {
		al := p % aircaAirlines
		t := value.Tuple{i64(p), i64(al), i64((p / aircaAirlines) % 20), i64(1990 + p%25)}
		if _, err := db.Insert("plane", t); err != nil {
			return nil, err
		}
	}
	if err := db.BuildIndexes(d.Access); err != nil {
		return nil, err
	}
	return db, nil
}

// airlineFor keeps fan-outs bounded: each origin hosts ≤ 28 airlines and
// each (origin,dest) pair ≤ 12.
func airlineFor(origin, dest int, rng *rand.Rand) int {
	k := 1 + (origin % 12) // airlines on this route
	pick := rng.Intn(k)
	return (origin*7 + dest*13 + pick*3) % aircaAirlines
}

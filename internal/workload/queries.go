package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ra"
)

// QueryParams controls the random RA query generator of Section 8: the
// number #-sel of equality atoms in selection conditions, #-join of
// equi-joins, and #-unidiff of union and set-difference operators.
type QueryParams struct {
	Sel     int
	Join    int
	UniDiff int
	// OutArity is the projection width (default 1).
	OutArity int
	// Bias is the probability of choosing selection attributes that occur
	// on the X side of some access constraint (making fetchable chains
	// likely); the paper generates queries "using attributes that occurred
	// in the access constraints". Default 0.75.
	Bias float64
}

// DefaultQueryParams picks mid-range values from the paper's sweeps.
func DefaultQueryParams() QueryParams {
	return QueryParams{Sel: 6, Join: 2, UniDiff: 1, OutArity: 1, Bias: 0.75}
}

// RandomQuery generates a random RA query against the dataset: #-unidiff+1
// SPC blocks combined with UNION/EXCEPT, each block a join tree over the
// dataset's join edges with #-sel constant selections. The result is
// normalized.
func (d *Dataset) RandomQuery(p QueryParams, rng *rand.Rand) (ra.Query, error) {
	if p.OutArity <= 0 {
		p.OutArity = 1
	}
	if p.Bias == 0 {
		p.Bias = 0.75
	}
	gen := &queryGen{d: d, rng: rng, p: p}
	blocks := p.UniDiff + 1
	q, err := gen.block()
	if err != nil {
		return nil, err
	}
	for b := 1; b < blocks; b++ {
		nxt, err := gen.block()
		if err != nil {
			return nil, err
		}
		if rng.Intn(2) == 0 {
			q = ra.U(q, nxt)
		} else {
			q = ra.D(q, nxt)
		}
	}
	return ra.Normalize(q, d.Schema)
}

type queryGen struct {
	d      *Dataset
	rng    *rand.Rand
	p      QueryParams
	occSeq int
}

type occ struct {
	name string
	base string
}

func (g *queryGen) newOcc(base string) occ {
	g.occSeq++
	return occ{name: fmt.Sprintf("%s_q%d", base, g.occSeq), base: base}
}

// block builds one SPC query: a connected join tree plus constant
// selections and a projection.
func (g *queryGen) block() (ra.Query, error) {
	rels := g.d.Schema.Relations()
	start := g.newOcc(rels[g.rng.Intn(len(rels))])
	occs := []occ{start}
	var preds []ra.Pred

	for j := 0; j < g.p.Join; j++ {
		// Join edges incident to an included base relation.
		type cand struct {
			existing occ
			exAttr   string
			newBase  string
			newAttr  string
		}
		var cands []cand
		for _, e := range g.d.JoinEdges {
			for _, o := range occs {
				if o.base == e.RelA {
					cands = append(cands, cand{o, e.AttrA, e.RelB, e.AttrB})
				}
				if o.base == e.RelB {
					cands = append(cands, cand{o, e.AttrB, e.RelA, e.AttrA})
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		c := cands[g.rng.Intn(len(cands))]
		n := g.newOcc(c.newBase)
		occs = append(occs, n)
		preds = append(preds, ra.Eq(ra.A(c.existing.name, c.exAttr), ra.A(n.name, c.newAttr)))
	}

	// Constant selections, biased toward X-side attributes of constraints.
	// Each (occurrence, attribute) pair is selected at most once: two
	// different constants on one attribute make the query provably empty,
	// which real workloads avoid.
	usedSel := map[ra.Attr]bool{}
	for sIdx := 0; sIdx < g.p.Sel; sIdx++ {
		var attr ra.Attr
		var base string
		found := false
		for tries := 0; tries < 20; tries++ {
			o := occs[g.rng.Intn(len(occs))]
			a := ra.A(o.name, g.pickSelAttr(o.base))
			if !usedSel[a] {
				attr, base, found = a, o.base, true
				break
			}
		}
		if !found {
			break // all attributes already constrained
		}
		usedSel[attr] = true
		preds = append(preds, ra.EqC(attr, g.d.Domain(base, attr.Name)(g.rng)))
	}

	// Projection: prefer Y-side attributes of constraints.
	out := make([]ra.Attr, g.p.OutArity)
	for i := range out {
		o := occs[g.rng.Intn(len(occs))]
		out[i] = ra.A(o.name, g.pickOutAttr(o.base))
	}

	qs := make([]ra.Query, len(occs))
	for i, o := range occs {
		qs[i] = ra.R(o.base, o.name)
	}
	return ra.Proj(ra.Sel(ra.Prod(qs...), preds...), out...), nil
}

func (g *queryGen) pickSelAttr(base string) string {
	attrs := g.d.Schema[base]
	if g.rng.Float64() < g.p.Bias {
		var xs []string
		for _, c := range g.d.Access.ForRel(base) {
			xs = append(xs, c.X...)
		}
		if len(xs) > 0 {
			return xs[g.rng.Intn(len(xs))]
		}
	}
	return attrs[g.rng.Intn(len(attrs))]
}

func (g *queryGen) pickOutAttr(base string) string {
	attrs := g.d.Schema[base]
	if g.rng.Float64() < g.p.Bias {
		var ys []string
		for _, c := range g.d.Access.ForRel(base) {
			ys = append(ys, c.Y...)
		}
		if len(ys) > 0 {
			return ys[g.rng.Intn(len(ys))]
		}
	}
	return attrs[g.rng.Intn(len(attrs))]
}

package workload

// Template is a named, fixed benchmark query in the rule syntax. Each
// dataset ships a suite of templates modelled on the kinds of analyses its
// real-world counterpart supports; they complement the random generator
// with a reproducible workload (MCBM's generation "complied with the
// provided query templates" in the paper).
type Template struct {
	Name string
	// Src is the query in the rule language of internal/parser.
	Src string
	// Covered records whether the template is covered under the dataset's
	// full access schema (asserted by tests).
	Covered bool
}

// Templates returns the fixed query suite for the dataset.
func (d *Dataset) Templates() []Template {
	switch d.Name {
	case "AIRCA":
		return aircaTemplates
	case "TFACC":
		return tfaccTemplates
	case "MCBM":
		return mcbmTemplates
	default:
		return nil
	}
}

var aircaTemplates = []Template{
	{
		Name:    "airlines-from-origin",
		Src:     `q(airline) :- ontime(f, 42, d, airline, m, delay)`,
		Covered: true,
	},
	{
		Name:    "carriers-of-origin-with-country",
		Src:     `q(airline, country) :- ontime(f, 42, d, airline, m, delay), carrier(airline, nm, country)`,
		Covered: true,
	},
	{
		Name:    "route-airlines",
		Src:     `q(airline) :- ontime(f, 10, 25, airline, m, delay)`,
		Covered: true,
	},
	{
		Name:    "flight-by-id-with-causes",
		Src:     `q(origin, dest, cause) :- ontime(77, origin, dest, al, m, delay), delaycause(77, cause, mins)`,
		Covered: true,
	},
	{
		Name:    "airport-city-of-flight",
		Src:     `q(city) :- ontime(123, origin, dest, al, m, delay), airport(origin, city, st)`,
		Covered: true,
	},
	{
		Name: "served-minus-home",
		// Airlines flying out of airport 42 except those registered in
		// country 0 — difference over covered SPC blocks.
		Src:     `(q(airline) :- ontime(f, 42, d, airline, m, delay)) EXCEPT (q(airline) :- carrier(airline, nm, 0), ontime(f2, 42, d2, airline, m2, delay2))`,
		Covered: true,
	},
	{
		Name: "all-flights-of-airline",
		// Not covered: ontime cannot be accessed by airline alone.
		Src:     `q(origin, dest) :- ontime(f, origin, dest, 3, m, delay)`,
		Covered: false,
	},
}

var tfaccTemplates = []Template{
	{
		Name:    "accidents-of-force-day",
		Src:     `q(aid) :- accident(aid, 100, 7, sev, dist)`,
		Covered: true,
	},
	{
		Name:    "casualties-of-accident",
		Src:     `q(cid, class) :- casualty(1234, cid, class, sev)`,
		Covered: true,
	},
	{
		Name:    "force-day-casualty-severity",
		Src:     `q(aid, csev) :- accident(aid, 100, 7, sev, dist), casualty(aid, cid, class, csev)`,
		Covered: true,
	},
	{
		Name:    "accident-weather-vehicles",
		Src:     `q(cond, vtype) :- accident(aid, 200, 3, sev, dist), weather(aid, cond), vehicle(aid, vid, vtype, age)`,
		Covered: true,
	},
	{
		Name:    "stops-in-accident-district",
		Src:     `q(atco) :- accident(aid, 50, 11, sev, dist), naptan_stop(atco, loc, stype, dist)`,
		Covered: true,
	},
	{
		Name: "accidents-by-severity",
		// Not covered: severity alone gives no bounded access to accident.
		Src:     `q(aid) :- accident(aid, d, pf, 3, dist)`,
		Covered: false,
	},
}

var mcbmTemplates = []Template{
	{
		Name:    "subscriber-profile",
		Src:     `q(plan_id, city_id) :- subscriber(1001, plan_id, city_id, status)`,
		Covered: true,
	},
	{
		Name:    "calls-of-day",
		Src:     `q(callee) :- call(cid, 42, callee, 7, dur)`,
		Covered: true,
	},
	{
		Name:    "callees-profiles",
		Src:     `q(callee, plan_id) :- call(cid, 42, callee, 7, dur), subscriber(callee, plan_id, city, status)`,
		Covered: true,
	},
	{
		Name:    "cells-visited",
		Src:     `q(cell, band) :- attach(99, cell, 3), cell(cell, city, band)`,
		Covered: true,
	},
	{
		Name:    "bill-of-month",
		Src:     `q(amount) :- bill(1001, 6, amount)`,
		Covered: true,
	},
	{
		Name: "called-but-never-messaged",
		// Callees of subscriber 42 on day 7 he never messaged that day;
		// the EXCEPT side joins back to the covered positive side.
		Src:     `(q(x) :- call(cid, 42, x, 7, dur)) EXCEPT (q(x) :- call(cid2, 42, x, 7, dur2), sms(mid, 42, x, 7))`,
		Covered: true,
	},
	{
		Name: "heavy-callers",
		// Not covered: no access path to call by duration.
		Src:     `q(caller) :- call(cid, caller, callee, d, 3599)`,
		Covered: false,
	},
}

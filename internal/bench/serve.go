// Serving-layer benchmark: replays a Zipf-skewed mix of repeated workload
// queries against a mutating database from N goroutines, the regime the
// plan cache and the incrementally maintained ⟨A, I_A⟩ indexes are built
// for. It reports throughput, plan-cache hit rate, and the cold-compile vs
// cache-hit speedup on the hottest query. With Transport "http" the same
// replay drives the network front end (internal/server) over a loopback
// listener instead of calling the engine in-process, so the two numbers
// bracket the cost of the HTTP/JSON boundary. With Transport "sharded"
// (or Shards > 0) the replay drives the scatter/gather router of
// internal/shard over N engines, pricing horizontal partitioning against
// the single-engine baseline.
package bench

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/follower"
	"repro/internal/ivm"
	"repro/internal/parser"
	"repro/internal/ra"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

// ServeConfig tunes the serving benchmark.
type ServeConfig struct {
	// Dataset is AIRCA, TFACC or MCBM.
	Dataset string
	// Scale and Seed parameterize data generation.
	Scale float64
	Seed  int64
	// Clients is the number of concurrent query goroutines.
	Clients int
	// Writers is the number of goroutines churning tuples (delete +
	// reinsert of sampled rows) while queries run.
	Writers int
	// Ops is the total number of queries replayed across all clients.
	Ops int
	// PoolSize caps the number of distinct workload queries replayed;
	// the Zipf draw selects among them.
	PoolSize int
	// ZipfS is the Zipf skew exponent (> 1; larger = more skewed).
	ZipfS float64
	// CacheSize overrides the engine's plan-cache capacity (0 = default).
	CacheSize int
	// LatencyProbes is how many timed runs the cold/hot comparison uses.
	LatencyProbes int
	// Transport selects how clients reach the engine: "engine" (default,
	// in-process Execute calls), "http" (the internal/server front end
	// over a loopback listener, queries shipped as rule text and answers
	// as JSON) or "sharded" (the internal/shard scatter/gather router,
	// called in-process).
	Transport string
	// Shards is the partition count for the sharded transport (a zero on
	// that transport means DefaultShards). Setting it on the http
	// transport serves the sharded cluster behind the front end.
	Shards int
	// ReshardTo, when > 0, triggers an online Reshard to that shard count
	// once half the replay ops have completed, pricing a live migration
	// under load. Requires a sharded serving layer (Shards > 0 or the
	// sharded transport).
	ReshardTo int
	// WriteMix is the fraction of client ops (in [0, 1)) replayed as tuple
	// writes — a delete+reinsert pair of a sampled live row — instead of
	// queries. It prices the write path directly: on a sharded layer every
	// such op crosses the anchor synchronously and the per-relation apply
	// queue asynchronously. 0 keeps the replay read-only apart from the
	// background Writers churn.
	WriteMix float64
	// ResidueMix is the fraction of client query ops (in [0, 1)) drawn from
	// a pool of non-distributable queries — shapes the router must hand to
	// the distributed residue executor (semi-join + shuffle) instead of
	// routing whole. It prices residue decomposition against single-shard
	// and scatter routing. Requires a sharded serving layer.
	ResidueMix float64
	// Followers is the number of read replicas behind the follower
	// transport: reads round-robin across them with a read-your-writes
	// MinLSN fence while writes go to the primary. 0 sends reads to the
	// primary itself (the single-node baseline the replica runs are
	// compared against). Only meaningful with Transport "follower".
	Followers int
	// Durable, when Dir is set, serves a crash-safe engine (or router)
	// that write-ahead-logs every tuple op to that directory before
	// acknowledging it, pricing durability against the in-memory write
	// path. The directory must be fresh — benchmarking over recovered
	// state would measure replay, not serving. Combine with WriteMix to
	// make the fsync policy visible in throughput.
	Durable core.DurableConfig
	// IVMOff disables incremental answer maintenance on the serving layer
	// (engines keep it on by default). Two runs differing only here price
	// materialized serving against plan-cache-only execution — pair with
	// WriteMix so the delta-maintenance cost on the write path is in the
	// measured mix too.
	IVMOff bool
}

// DefaultShards is the partition count used by the sharded transport when
// ServeConfig.Shards is zero.
const DefaultShards = 4

// DefaultServeConfig keeps a full run well under a second in -short test
// settings while still exercising real concurrency.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Dataset:       "AIRCA",
		Scale:         0.05,
		Seed:          2016,
		Clients:       8,
		Writers:       2,
		Ops:           4000,
		PoolSize:      40,
		ZipfS:         1.2,
		LatencyProbes: 25,
		Transport:     TransportEngine,
	}
}

// Transport values for ServeConfig.
const (
	TransportEngine  = "engine"
	TransportHTTP    = "http"
	TransportSharded = "sharded"
	// TransportFollower serves a durable primary over loopback HTTP plus
	// ServeConfig.Followers read replicas tailing its log; client reads
	// round-robin across the replicas with a MinLSN fence and writes go
	// to the primary, pricing read scale-out against the single node.
	TransportFollower = "follower"
)

// ServeResult reports one serving-benchmark run.
type ServeResult struct {
	Dataset string
	// Transport is the client path the replay used: "engine" for
	// in-process Execute calls, "http" for the loopback front end,
	// "sharded" for the scatter/gather router.
	Transport string
	// Followers is the read-replica count behind the follower transport
	// (0 elsewhere, and for its primary-only baseline run).
	Followers int
	// Shards is the partition count behind the replay (0 = unsharded) and
	// Routes the router's routing-decision counters (zero when unsharded).
	Shards int
	Routes shard.RouteStats
	// Residue is the distributed residue-executor snapshot at the end of a
	// sharded run; ResidueOps counts client ops replayed from the residue
	// pool under ResidueMix and ResidueQPS is their completion rate.
	Residue    shard.ResidueStats
	ResidueOps int64
	ResidueQPS float64
	// Procs and CPUs record the execution parallelism of the host
	// (GOMAXPROCS and the physical CPU count) so throughput numbers carry
	// their own context — sharded QPS ≈ baseline on a 1-vCPU box is the
	// expected reading, not a regression.
	Procs, CPUs int
	// Reshard reports the mid-replay migration when ReshardTo was set.
	Reshard  *shard.ReshardReport
	Ops      int
	Errors   int
	Duration time.Duration
	// QPS is completed queries per wall-clock second across all clients.
	QPS float64
	// MeanLatency is total per-request client time divided by completed
	// ops — on the http transport it includes JSON encoding and the
	// loopback round trip, so MeanLatency(http) − MeanLatency(engine)
	// prices the network boundary.
	MeanLatency time.Duration
	// Cache holds the plan-cache counter deltas over the serving phase
	// (the cold/hot latency probes are excluded); HitRate is the hit
	// fraction of those same counters. Entries is the live count at the
	// end of the run.
	Cache   cache.Stats
	HitRate float64
	// Mutations counts tuple writes applied during the run; WriteOps the
	// client ops that were delete+reinsert pairs under WriteMix (each
	// contributes two Mutations).
	Mutations int64
	WriteOps  int64
	// Apply is the apply-queue snapshot at the end of a sharded run:
	// Enqueued/Batches is the realized write coalescing.
	Apply shard.ApplyQueueStats
	// Durability is the write-ahead-log snapshot at the end of a durable
	// run (nil when the serving layer is in-memory). QPS here vs an
	// in-memory run with the same WriteMix prices the logging policy.
	Durability *wal.Stats
	// IVM is the materialized-answer snapshot at the end of the run
	// (summed across engines on a sharded layer); IVMOn records whether
	// maintenance was enabled. Hits vs Ops is the fraction of the replay
	// served in O(answer) without running a plan.
	IVM   ivm.Stats
	IVMOn bool
	// AllocsPerOp and AllocBytesPerOp are the process-wide heap
	// allocation deltas over the replay divided by completed ops, and
	// GCCycles / GCPause the garbage-collection cycles and total
	// stop-the-world pause the replay incurred. Writers and maintenance
	// goroutines are included — this is the serving cost, not a per-plan
	// micro-benchmark (see `make bench-exec` for those).
	AllocsPerOp     int64
	AllocBytesPerOp int64
	GCCycles        uint32
	GCPause         time.Duration
	// ColdLatency is the Execute latency floor (minimum over probes,
	// averaged across the probe set) with the plan cache bypassed — the
	// full compile pipeline; HotLatency the same floor for a plan-cache
	// hit; Speedup their ratio. Floors, not medians: both paths do
	// deterministic work, so the minimum is the signal and the spread
	// above it is scheduler/GC noise.
	ColdLatency, HotLatency time.Duration
	Speedup                 float64
}

// Format renders the result as an aligned report.
func (r *ServeResult) Format(w io.Writer) {
	fmt.Fprintf(w, "# serving benchmark on %s (transport: %s)\n", r.Dataset, r.Transport)
	fmt.Fprintf(w, "host\tGOMAXPROCS=%d, %d CPUs\n", r.Procs, r.CPUs)
	if r.Transport == TransportFollower {
		if r.Followers > 0 {
			fmt.Fprintf(w, "followers\t%d read replicas (fenced reads round-robin, writes to primary)\n", r.Followers)
		} else {
			fmt.Fprintf(w, "followers\t0 (primary-only baseline)\n")
		}
	}
	if r.Shards > 0 {
		fmt.Fprintf(w, "shards\t%d (routed: %d single-shard, %d double-routed, %d scatter, %d residue)\n",
			r.Shards, r.Routes.Single, r.Routes.Double, r.Routes.Scattered, r.Routes.Residue)
	}
	if r.ResidueOps > 0 {
		fmt.Fprintf(w, "residue\t%d ops at %.0f queries/s (%d semi-joins, %d shuffles, %d bytes shipped, %d broadcast rels)\n",
			r.ResidueOps, r.ResidueQPS, r.Residue.SemiJoins, r.Residue.Shuffles,
			r.Residue.BytesShipped, r.Residue.BroadcastRels)
	}
	if r.Reshard != nil {
		fmt.Fprintf(w, "reshard\t%d→%d mid-replay: %d keyed rows moved, %d seeded, %v (ring epoch %d)\n",
			r.Reshard.From, r.Reshard.To, r.Reshard.Moved, r.Reshard.Seeded,
			r.Reshard.Duration.Round(time.Millisecond), r.Reshard.Epoch)
	}
	fmt.Fprintf(w, "ops\t%d (errors %d)\n", r.Ops, r.Errors)
	fmt.Fprintf(w, "duration\t%v\n", r.Duration.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput\t%.0f queries/s\n", r.QPS)
	fmt.Fprintf(w, "mean latency\t%v per query\n", r.MeanLatency)
	fmt.Fprintf(w, "memory\t%d allocs/op (%d B/op), %d GC cycles, %v total pause\n",
		r.AllocsPerOp, r.AllocBytesPerOp, r.GCCycles, r.GCPause.Round(time.Microsecond))
	fmt.Fprintf(w, "cache\thits %d  misses %d  evictions %d  hit-rate %.1f%%\n",
		r.Cache.Hits, r.Cache.Misses, r.Cache.Evictions, 100*r.HitRate)
	fmt.Fprintf(w, "mutations\t%d tuple writes during run (%d write ops in the client mix)\n",
		r.Mutations, r.WriteOps)
	if r.IVMOn {
		fmt.Fprintf(w, "ivm\t%d views live (budget %d): %d hits served O(answer), %d delta applies, %d admitted, %d evicted, %d fallbacks, %d denied\n",
			r.IVM.Materialized, r.IVM.Budget, r.IVM.Hits, r.IVM.DeltaApplies,
			r.IVM.Admitted, r.IVM.Evicted, r.IVM.Fallbacks, r.IVM.Denied)
	} else {
		fmt.Fprintf(w, "ivm\toff (plan-cache-only baseline)\n")
	}
	if r.Shards > 0 && r.Apply.Enqueued > 0 {
		avg := float64(r.Apply.Enqueued) / float64(max(r.Apply.Batches, 1))
		fmt.Fprintf(w, "apply queue\t%d ops in %d batches (avg %.1f ops/lock), max batch %d, depth %d at end\n",
			r.Apply.Enqueued, r.Apply.Batches, avg, r.Apply.MaxBatch, r.Apply.Depth)
	}
	if r.Durability != nil {
		d := r.Durability
		fmt.Fprintf(w, "durability\tfsync=%s  %d wal appends to lsn %d, %d segments (%d bytes), %d checkpoints\n",
			d.Fsync, d.Appends, d.LastLSN, d.Segments, d.SegmentBytes, d.Checkpoints)
		if d.Fsyncs > 0 {
			mean := float64(d.FsyncTotalMicros) / float64(d.Fsyncs)
			fmt.Fprintf(w, "fsync\t%d calls, mean %.0fµs\n", d.Fsyncs, mean)
		}
	}
	fmt.Fprintf(w, "latency floor\tcold %v  hot %v  speedup %.1fx\n",
		r.ColdLatency, r.HotLatency, r.Speedup)
}

// Serve runs the serving benchmark: build the dataset, assemble a pool of
// distinct workload queries (templates plus covered generator queries),
// then replay Ops Zipf-distributed draws from Clients goroutines while
// Writers churn tuples underneath. Tuple churn is deliberately concurrent:
// bounded incremental index maintenance keeps every cached plan valid, so
// the cache keeps serving throughout.
func Serve(cfg ServeConfig) (*ServeResult, error) {
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("bench: Clients must be >= 1, got %d", cfg.Clients)
	}
	if cfg.Writers < 0 {
		return nil, fmt.Errorf("bench: Writers must be >= 0, got %d", cfg.Writers)
	}
	if cfg.Ops < cfg.Clients {
		return nil, fmt.Errorf("bench: Ops (%d) must be >= Clients (%d)", cfg.Ops, cfg.Clients)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("bench: ZipfS must be > 1 (Zipf skew exponent), got %g", cfg.ZipfS)
	}
	if cfg.WriteMix < 0 || cfg.WriteMix >= 1 {
		return nil, fmt.Errorf("bench: WriteMix must be in [0, 1), got %g", cfg.WriteMix)
	}
	if cfg.ResidueMix < 0 || cfg.ResidueMix >= 1 {
		return nil, fmt.Errorf("bench: ResidueMix must be in [0, 1), got %g", cfg.ResidueMix)
	}
	transport := cfg.Transport
	if transport == "" {
		transport = TransportEngine
	}
	if transport != TransportEngine && transport != TransportHTTP &&
		transport != TransportSharded && transport != TransportFollower {
		// Validated before data generation like the other config errors:
		// a typo must not cost a full dataset build first.
		return nil, fmt.Errorf("bench: unknown transport %q (want %q, %q, %q or %q)",
			transport, TransportEngine, TransportHTTP, TransportSharded, TransportFollower)
	}
	if cfg.Followers < 0 {
		return nil, fmt.Errorf("bench: Followers must be >= 0, got %d", cfg.Followers)
	}
	if cfg.Followers > 0 && transport != TransportFollower {
		return nil, fmt.Errorf("bench: Followers needs the %q transport, got %q", TransportFollower, transport)
	}
	if transport == TransportFollower {
		if cfg.Durable.Dir == "" {
			return nil, fmt.Errorf("bench: the follower transport needs a durable primary (set Durable.Dir)")
		}
		if cfg.Shards > 0 {
			return nil, fmt.Errorf("bench: the follower transport replicates a single durable engine; Shards must be 0")
		}
	}
	shards := cfg.Shards
	if transport == TransportSharded && shards < 1 {
		shards = DefaultShards
	}
	if cfg.ReshardTo < 0 {
		return nil, fmt.Errorf("bench: ReshardTo must be >= 0, got %d", cfg.ReshardTo)
	}
	if cfg.ReshardTo > 0 && shards < 1 {
		return nil, fmt.Errorf("bench: ReshardTo needs a sharded serving layer (set Shards or the sharded transport)")
	}
	if cfg.ResidueMix > 0 && shards < 1 {
		return nil, fmt.Errorf("bench: ResidueMix needs a sharded serving layer (set Shards or the sharded transport)")
	}
	durable := cfg.Durable.Dir != ""
	if durable && wal.HasState(cfg.Durable.Dir) {
		// Opening existing state would replay it into the generated
		// dataset — the run would price recovery, not serving.
		return nil, fmt.Errorf("bench: durable dir %s already holds log state; point the benchmark at a fresh directory", cfg.Durable.Dir)
	}
	d, err := workload.ByName(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	db, err := d.Gen(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The serving engine: durable when a log directory is set and the
	// layer is unsharded (a sharded durable layer logs at the router
	// instead, and eng stays a plain probe engine over the same db).
	var eng *core.Engine
	if durable && shards == 0 {
		eng, err = core.OpenDurable(d.Schema, d.Access, db, cfg.Durable)
	} else {
		eng, err = core.NewEngine(d.Schema, d.Access, db)
	}
	if err != nil {
		return nil, err
	}
	if cfg.CacheSize > 0 {
		eng.SetPlanCacheCapacity(cfg.CacheSize)
	}
	if cfg.IVMOff {
		eng.SetIVMConfig(ivm.Config{})
	}
	pool, err := servePool(eng, d, cfg)
	if err != nil {
		return nil, err
	}

	// The served Service: the engine itself, or the scatter/gather router
	// over it. The router partitions db across its shards at construction;
	// eng (still on db) keeps working as the cold/hot probe engine either
	// way.
	var svc core.Service = eng
	var router *shard.Router
	if shards > 0 {
		spec := shard.Spec{
			Shards:        shards,
			Keys:          d.ShardKeys,
			PlanCacheSize: cfg.CacheSize,
		}
		if durable {
			router, err = shard.OpenDurable(d.Schema, d.Access, db, spec, cfg.Durable)
		} else {
			router, err = shard.New(d.Schema, d.Access, db, spec)
		}
		if err != nil {
			return nil, err
		}
		if cfg.IVMOff {
			router.SetIVMConfig(ivm.Config{})
		}
		svc = router
	}

	// Under ResidueMix the replay mixes in queries the router must
	// decompose (residue routing). They ride in the same driver pool after
	// the Zipf-drawn base entries; clients index past baseLen to reach them.
	baseLen := len(pool)
	var residueLen int
	if cfg.ResidueMix > 0 {
		rpool, err := serveResiduePool(eng, router, d, cfg)
		if err != nil {
			return nil, err
		}
		residueLen = len(rpool)
		pool = append(pool, rpool...)
	}

	var drv serveDriver
	switch transport {
	case TransportHTTP:
		drv, err = newHTTPDriver(svc, d.Schema, pool)
	case TransportFollower:
		drv, err = newFollowerDriver(svc, d.Schema, pool, cfg)
	default:
		drv = &engineDriver{eng: svc, pool: pool, opts: core.DefaultOptions()}
	}
	if err != nil {
		return nil, err
	}
	defer drv.close()

	res := &ServeResult{
		Dataset:   cfg.Dataset,
		Transport: transport,
		Followers: cfg.Followers,
		Shards:    shards,
		Procs:     runtime.GOMAXPROCS(0),
		CPUs:      runtime.NumCPU(),
	}

	// Cold vs hot latency over a probe set of pool queries, before the
	// serving phase. Summing per-query floors across the set weights the
	// mix the way a replay does: join templates with expensive compiles
	// dominate, single-atom lookups contribute their (small) constant.
	if cfg.LatencyProbes > 0 {
		probeSet := pool
		if len(probeSet) > 8 {
			probeSet = probeSet[:8]
		}
		var coldSum, hotSum time.Duration
		for _, q := range probeSet {
			cold, hot, err := coldHot(eng, q, cfg.LatencyProbes)
			if err != nil {
				return nil, err
			}
			coldSum += cold
			hotSum += hot
		}
		res.ColdLatency = coldSum / time.Duration(len(probeSet))
		res.HotLatency = hotSum / time.Duration(len(probeSet))
		if hotSum > 0 {
			res.Speedup = float64(coldSum) / float64(hotSum)
		}
	}

	// Serving phase. The plan-cache delta is read from wherever the
	// replayed queries actually execute: the served service by default,
	// or the replica engines for a transport whose reads land elsewhere.
	cacheSrc := svc.CacheStats
	if cs, ok := drv.(cacheStatser); ok {
		cacheSrc = cs.cacheStats
	}
	before := cacheSrc()
	var (
		clientWG   sync.WaitGroup
		writerWG   sync.WaitGroup
		completed  atomic.Int64
		errCount   atomic.Int64
		mutations  atomic.Int64
		writeOps   atomic.Int64
		residueOps atomic.Int64
		latencyNs  atomic.Int64
		stop       atomic.Bool
	)
	perClient := cfg.Ops / cfg.Clients
	// Halfway signal for the mid-replay reshard: completed.Add returns a
	// unique value per op, so exactly one client observes the half mark
	// and closes the channel — no polling. stopCh mirrors stop for
	// waiters that must also wake when an early-aborted replay never
	// reaches the mark.
	half := int64(cfg.Ops / 2)
	halfway := make(chan struct{})
	if half == 0 {
		close(halfway)
	}
	stopCh := make(chan struct{})

	// One shared sample of live rows per relation: writers churn them in
	// the background, and WriteMix client ops replay them in the
	// foreground. Delete-then-reinsert keeps the instance satisfying A at
	// every quiescent point.
	sampleRels, samples := writeSamples(d.Schema, db)

	for w := 0; w < cfg.Writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(w)))
			for !stop.Load() && len(sampleRels) > 0 {
				rel := sampleRels[rng.Intn(len(sampleRels))]
				rows := samples[rel]
				t := rows[rng.Intn(len(rows))]
				if err := drv.delete(rel, t); err != nil {
					errCount.Add(1)
					return
				}
				if err := drv.insert(rel, t); err != nil {
					errCount.Add(1)
					return
				}
				mutations.Add(2)
			}
		}(w)
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(baseLen-1))
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if cfg.WriteMix > 0 && len(sampleRels) > 0 && rng.Float64() < cfg.WriteMix {
					rel := sampleRels[rng.Intn(len(sampleRels))]
					rows := samples[rel]
					t := rows[rng.Intn(len(rows))]
					if err := drv.delete(rel, t); err != nil {
						errCount.Add(1)
						return
					}
					if err := drv.insert(rel, t); err != nil {
						errCount.Add(1)
						return
					}
					mutations.Add(2)
					writeOps.Add(1)
				} else if residueLen > 0 && rng.Float64() < cfg.ResidueMix {
					if err := drv.query(baseLen + rng.Intn(residueLen)); err != nil {
						errCount.Add(1)
						return
					}
					residueOps.Add(1)
				} else if err := drv.query(int(zipf.Uint64())); err != nil {
					errCount.Add(1)
					return
				}
				latencyNs.Add(int64(time.Since(t0)))
				if completed.Add(1) == half {
					close(halfway)
				}
			}
		}(c)
	}
	// Mid-replay reshard: wait for half the ops, migrate live, record the
	// accounting. Joined after the clients so the result always carries it.
	reshardDone := make(chan struct{})
	if cfg.ReshardTo > 0 {
		go func() {
			defer close(reshardDone)
			select {
			case <-halfway:
			case <-stopCh:
			}
			if completed.Load() < half {
				// Replay died early (client errors); nothing left to price.
				return
			}
			rep, err := router.Reshard(context.Background(), cfg.ReshardTo)
			if err != nil {
				errCount.Add(1)
				return
			}
			res.Reshard = rep
		}()
	} else {
		close(reshardDone)
	}
	// Clients are bounded loops; writers churn until the clients finish.
	clientWG.Wait()
	res.Duration = time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	stop.Store(true)
	close(stopCh)
	writerWG.Wait()
	// Join the resharder after stop is set, so an early-aborted replay
	// (client errors before the halfway mark) releases it instead of
	// deadlocking on a level of completed ops that will never come.
	<-reshardDone
	res.Ops = int(completed.Load())
	res.Errors = int(errCount.Load())
	res.Mutations = mutations.Load()
	res.WriteOps = writeOps.Load()
	if res.Duration > 0 {
		res.QPS = float64(res.Ops) / res.Duration.Seconds()
	}
	if res.Ops > 0 {
		res.MeanLatency = time.Duration(latencyNs.Load() / int64(res.Ops))
		res.AllocsPerOp = int64(memAfter.Mallocs-memBefore.Mallocs) / int64(res.Ops)
		res.AllocBytesPerOp = int64(memAfter.TotalAlloc-memBefore.TotalAlloc) / int64(res.Ops)
	}
	res.GCCycles = memAfter.NumGC - memBefore.NumGC
	res.GCPause = time.Duration(memAfter.PauseTotalNs - memBefore.PauseTotalNs)
	after := cacheSrc()
	if router != nil {
		res.Routes = router.RouteStats()
		res.Apply = router.ApplyQueueStats()
		res.Residue = router.ResidueStats()
	}
	res.IVMOn = !cfg.IVMOff
	if res.IVMOn {
		if is, ok := drv.(ivmStatser); ok {
			res.IVM = is.ivmStats()
		} else if router != nil {
			res.IVM = router.IVMStats()
		} else {
			res.IVM = eng.IVMStats()
		}
	}
	res.ResidueOps = residueOps.Load()
	if res.Duration > 0 {
		res.ResidueQPS = float64(res.ResidueOps) / res.Duration.Seconds()
	}
	res.Cache = cache.Stats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Purges:    after.Purges - before.Purges,
		Entries:   after.Entries,
	}
	res.HitRate = res.Cache.HitRate()
	if durable {
		// Snapshot the log counters before Close seals the segments, then
		// close cleanly: an append/fsync failure the replay never saw
		// (because SyncInterval absorbs it) still surfaces as an error.
		if router != nil {
			if st, ok := router.DurabilityStats(); ok {
				res.Durability = &st
			}
			if err := router.Close(); err != nil {
				return nil, fmt.Errorf("bench: closing durable router: %w", err)
			}
		} else {
			if st, ok := eng.DurabilityStats(); ok {
				res.Durability = &st
			}
			if err := eng.Close(); err != nil {
				return nil, fmt.Errorf("bench: closing durable engine: %w", err)
			}
		}
	}
	return res, nil
}

// serveDriver abstracts the client path of the replay: the engine driver
// calls Execute in-process, the HTTP driver round-trips every operation
// through the network front end over loopback.
type serveDriver interface {
	// query replays pool entry i.
	query(i int) error
	// insert / delete apply one tuple write.
	insert(rel string, t value.Tuple) error
	delete(rel string, t value.Tuple) error
	// close releases transport resources (the loopback server).
	close()
}

// cacheStatser is an optional serveDriver refinement for transports whose
// reads execute somewhere other than the served service: the report's
// plan-cache hit rate must come from the engines that answered the
// queries, not from a primary that only saw the writes.
type cacheStatser interface {
	cacheStats() cache.Stats
}

// ivmStatser mirrors cacheStatser for the materialized-answer counters.
type ivmStatser interface {
	ivmStats() ivm.Stats
}

// engineDriver is the in-process client path over any core.Service — a
// single engine or the sharded router.
type engineDriver struct {
	eng  core.Service
	pool []ra.Query
	opts core.Options
}

func (d *engineDriver) query(i int) error {
	_, _, err := d.eng.Execute(d.pool[i], d.opts)
	return err
}

func (d *engineDriver) insert(rel string, t value.Tuple) error {
	_, err := d.eng.Insert(rel, t)
	return err
}

func (d *engineDriver) delete(rel string, t value.Tuple) error {
	_, err := d.eng.Delete(rel, t)
	return err
}

func (d *engineDriver) close() {}

// httpDriver serves eng on a loopback listener and replays through the
// typed client, shipping queries as rule text the way a remote caller
// would. Pool queries are pre-rendered once (parser.Format) so the replay
// measures the wire path, not repeated formatting.
type httpDriver struct {
	srv   *server.Server
	cli   *server.Client
	texts []string
}

func newHTTPDriver(eng core.Service, schema ra.Schema, pool []ra.Query) (*httpDriver, error) {
	texts := make([]string, len(pool))
	for i, q := range pool {
		text, err := parser.Format(q, schema)
		if err != nil {
			return nil, fmt.Errorf("bench: pool query %d not expressible as rule text: %w", i, err)
		}
		texts[i] = text
	}
	srv := server.New(eng, server.Config{
		Logger: slog.New(slog.DiscardHandler),
		// The replay is a throughput test; don't cap rows or let the
		// default timeout interfere at high concurrency.
		MaxRows:        -1,
		RequestTimeout: time.Minute,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln) //nolint:errcheck
	cli := server.NewClient(srv.Addr())
	if err := cli.WaitReady(context.Background(), 10*time.Second); err != nil {
		srv.Shutdown(context.Background()) //nolint:errcheck
		return nil, err
	}
	return &httpDriver{srv: srv, cli: cli, texts: texts}, nil
}

func (d *httpDriver) query(i int) error {
	_, err := d.cli.Query(context.Background(), d.texts[i])
	return err
}

func (d *httpDriver) insert(rel string, t value.Tuple) error {
	_, err := d.cli.Insert(context.Background(), rel, []value.Tuple{t})
	return err
}

func (d *httpDriver) delete(rel string, t value.Tuple) error {
	_, err := d.cli.Delete(context.Background(), rel, []value.Tuple{t})
	return err
}

func (d *httpDriver) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = d.srv.Shutdown(ctx)
}

// followerDriver serves the durable primary on a loopback listener, opens
// cfg.Followers read replicas tailing its log (each with its own data
// directory under the primary's and its own loopback front end), and
// replays reads round-robin across the replicas with a read-your-writes
// MinLSN fence. Writes go to the primary and advance the fence, so every
// read observes all writes the replay acknowledged before it — the
// correctness contract the replicas are priced under.
type followerDriver struct {
	svc       core.Service
	primary   *server.Server
	pcli      *server.Client
	nodes     []*follower.Node
	srvs      []*server.Server
	readClis  []*server.Client
	texts     []string
	next      atomic.Uint64
	lastWrite atomic.Uint64
}

func newFollowerDriver(eng core.Service, schema ra.Schema, pool []ra.Query, cfg ServeConfig) (*followerDriver, error) {
	texts := make([]string, len(pool))
	for i, q := range pool {
		text, err := parser.Format(q, schema)
		if err != nil {
			return nil, fmt.Errorf("bench: pool query %d not expressible as rule text: %w", i, err)
		}
		texts[i] = text
	}
	quiet := slog.New(slog.DiscardHandler)
	serveOne := func(svc core.Service) (*server.Server, *server.Client, error) {
		srv := server.New(svc, server.Config{
			Logger:         quiet,
			MaxRows:        -1,
			RequestTimeout: time.Minute,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		go srv.Serve(ln) //nolint:errcheck
		cli := server.NewClient(srv.Addr())
		if err := cli.WaitReady(context.Background(), 10*time.Second); err != nil {
			srv.Shutdown(context.Background()) //nolint:errcheck
			return nil, nil, err
		}
		return srv, cli, nil
	}
	psrv, pcli, err := serveOne(eng)
	if err != nil {
		return nil, err
	}
	d := &followerDriver{svc: eng, primary: psrv, pcli: pcli, texts: texts}
	for i := 0; i < cfg.Followers; i++ {
		// The replica directories live under the primary's data dir; the
		// log's segment listing matches exact file-name patterns, so the
		// subdirectories are invisible to it.
		node, err := follower.Open(context.Background(), follower.Config{
			Primary: "http://" + psrv.Addr(),
			DataDir: filepath.Join(cfg.Durable.Dir, fmt.Sprintf("follower-%d", i)),
			ID:      fmt.Sprintf("bench-follower-%d", i),
			Logger:  quiet,
		})
		if err != nil {
			d.close()
			return nil, fmt.Errorf("bench: opening follower %d: %w", i, err)
		}
		d.nodes = append(d.nodes, node)
		fsrv, fcli, err := serveOne(node)
		if err != nil {
			d.close()
			return nil, fmt.Errorf("bench: serving follower %d: %w", i, err)
		}
		d.srvs = append(d.srvs, fsrv)
		d.readClis = append(d.readClis, fcli)
	}
	if len(d.readClis) == 0 {
		// Primary-only baseline: reads hit the primary's front end too, so
		// the replica runs differ only in where reads land.
		d.readClis = []*server.Client{pcli}
	}
	return d, nil
}

// cacheStats sums the plan-cache counters of the replicas the replayed
// reads round-robin across; the primary-only baseline reads the served
// service directly.
func (d *followerDriver) cacheStats() cache.Stats {
	if len(d.nodes) == 0 {
		return d.svc.CacheStats()
	}
	var sum cache.Stats
	for _, n := range d.nodes {
		st := n.CacheStats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.Purges += st.Purges
		sum.Entries += st.Entries
	}
	return sum
}

// ivmStats merges the replicas' materialized-answer counters — the views
// the replayed reads were actually served from, maintained by the
// replication stream rather than direct writes.
func (d *followerDriver) ivmStats() ivm.Stats {
	if len(d.nodes) == 0 {
		if eng, ok := d.svc.(*core.Engine); ok {
			return eng.IVMStats()
		}
		return ivm.Stats{}
	}
	var sum ivm.Stats
	for _, n := range d.nodes {
		sum = sum.Merge(n.IVMStats())
	}
	return sum
}

func (d *followerDriver) query(i int) error {
	cli := d.readClis[d.next.Add(1)%uint64(len(d.readClis))]
	_, err := cli.QueryOpts(context.Background(), server.QueryRequest{
		Query:  d.texts[i],
		MinLSN: d.lastWrite.Load(),
	})
	return err
}

// advanceFence raises the read fence to the LSN of an acknowledged write.
func (d *followerDriver) advanceFence(lsn uint64) {
	for {
		cur := d.lastWrite.Load()
		if lsn <= cur || d.lastWrite.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

func (d *followerDriver) insert(rel string, t value.Tuple) error {
	resp, err := d.pcli.Insert(context.Background(), rel, []value.Tuple{t})
	if err == nil {
		d.advanceFence(resp.LSN)
	}
	return err
}

func (d *followerDriver) delete(rel string, t value.Tuple) error {
	resp, err := d.pcli.Delete(context.Background(), rel, []value.Tuple{t})
	if err == nil {
		d.advanceFence(resp.LSN)
	}
	return err
}

func (d *followerDriver) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, srv := range d.srvs {
		_ = srv.Shutdown(ctx)
	}
	for _, n := range d.nodes {
		_ = n.Close()
	}
	_ = d.primary.Shutdown(ctx)
}

// servePool assembles the distinct-query pool: parsed covered templates
// first, then random covered generator queries up to cfg.PoolSize. On the
// http transport the pool is additionally restricted to queries
// expressible in the rule language, since that is how they travel.
func servePool(eng *core.Engine, d *workload.Dataset, cfg ServeConfig) ([]ra.Query, error) {
	needText := cfg.Transport == TransportHTTP || cfg.Transport == TransportFollower
	var pool []ra.Query
	for _, tpl := range d.Templates() {
		if len(pool) >= cfg.PoolSize {
			break
		}
		if !tpl.Covered {
			continue
		}
		q, err := eng.Parse(tpl.Src)
		if err != nil {
			return nil, err
		}
		pool = append(pool, q)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	p := workload.DefaultQueryParams()
	for tries := 0; len(pool) < cfg.PoolSize && tries < cfg.PoolSize*50; tries++ {
		p.Sel = 3 + rng.Intn(5)
		p.Join = rng.Intn(3)
		p.UniDiff = rng.Intn(2)
		q, err := d.RandomQuery(p, rng)
		if err != nil {
			return nil, err
		}
		res, err := eng.Check(q)
		if err != nil || !res.Covered {
			continue
		}
		if needText {
			if _, err := parser.Format(q, d.Schema); err != nil {
				continue
			}
		}
		pool = append(pool, q)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("bench: no covered queries for %s", cfg.Dataset)
	}
	return pool, nil
}

// serveResiduePool assembles the non-distributable query pool for
// ResidueMix: random covered generator queries, kept only when the
// router's own classification would hand them to the distributed residue
// executor. Join- and difference-heavy parameters make such shapes
// common; the pool is small on purpose (residue plans are the expensive
// tail, the mix fraction prices them, not their variety).
func serveResiduePool(eng *core.Engine, router *shard.Router, d *workload.Dataset, cfg ServeConfig) ([]ra.Query, error) {
	needText := cfg.Transport == TransportHTTP
	want := cfg.PoolSize / 4
	if want < 4 {
		want = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	p := workload.DefaultQueryParams()
	var pool []ra.Query
	for tries := 0; len(pool) < want && tries < want*400; tries++ {
		p.Sel = 2 + rng.Intn(4)
		p.Join = 1 + rng.Intn(2)
		p.UniDiff = rng.Intn(2)
		q, err := d.RandomQuery(p, rng)
		if err != nil {
			return nil, err
		}
		kind, err := router.RouteKind(q)
		if err != nil || kind != "residue" {
			continue
		}
		res, err := eng.Check(q)
		if err != nil || !res.Covered {
			continue
		}
		if needText {
			if _, err := parser.Format(q, d.Schema); err != nil {
				continue
			}
		}
		pool = append(pool, q)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("bench: no covered residue-routed queries for %s (ResidueMix needs shapes the router cannot distribute)", cfg.Dataset)
	}
	return pool, nil
}

// coldHot measures the Execute latency floor of q through the full
// compile pipeline (cache bypassed) and through a plan-cache hit. The
// minimum over the probes is reported: both paths do deterministic work,
// so the floor is the signal and everything above it is scheduler and GC
// noise that would otherwise dominate run-to-run variance.
func coldHot(eng *core.Engine, q ra.Query, probes int) (cold, hot time.Duration, err error) {
	coldOpts := core.DefaultOptions()
	coldOpts.Cache = false
	colds := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		t0 := time.Now()
		if _, _, err := eng.Execute(q, coldOpts); err != nil {
			return 0, 0, err
		}
		colds = append(colds, time.Since(t0))
	}

	hotOpts := core.DefaultOptions()
	// Warm the cache, then time hits only.
	if _, _, err := eng.Execute(q, hotOpts); err != nil {
		return 0, 0, err
	}
	hots := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		t0 := time.Now()
		_, rep, err := eng.Execute(q, hotOpts)
		if err != nil {
			return 0, 0, err
		}
		if !rep.CacheHit {
			return 0, 0, fmt.Errorf("bench: warm execution missed the cache")
		}
		hots = append(hots, time.Since(t0))
	}
	return minOf(colds), minOf(hots), nil
}

func minOf(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[0]
}

// writeSamples collects up to 64 live rows per relation for the churn
// writers and the WriteMix client ops, returning the relations that have
// any (so pickers never land on an empty sample).
func writeSamples(schema ra.Schema, db *store.DB) ([]string, map[string][]value.Tuple) {
	samples := map[string][]value.Tuple{}
	var rels []string
	for _, rel := range schema.Relations() {
		rows, err := db.Rows(rel)
		if err != nil || len(rows) == 0 {
			continue
		}
		n := 64
		if n > len(rows) {
			n = len(rows)
		}
		samples[rel] = rows[:n]
		rels = append(rels, rel)
	}
	return rels, samples
}
